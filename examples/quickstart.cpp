// Quickstart: simulate a parallel disk array, build the Section 4.1
// deterministic dictionary on it, and watch the I/O counters confirm the
// paper's headline guarantees: 1 parallel I/O per lookup, 2 per update —
// deterministically, not just in expectation.
//
//   ./quickstart [num_keys]
#include <cstdio>
#include <cstdlib>

#include "core/basic_dict.hpp"
#include "core/dictionary.hpp"
#include "pdm/disk_array.hpp"
#include "pdm/io_stats.hpp"
#include "workload/workload.hpp"

int main(int argc, char** argv) {
  using namespace pddict;
  const std::uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10000;

  // A parallel disk model machine: D = 16 disks, blocks of B = 64 items of
  // 16 bytes. One parallel I/O moves one block from each disk.
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});

  // The dictionary needs D = d = O(log u) disks; satellite data rides inline.
  core::BasicDictParams params;
  params.universe_size = std::uint64_t{1} << 40;
  params.capacity = n;
  params.value_bytes = 8;
  params.degree = 16;
  core::BasicDict dict(disks, /*first_disk=*/0, /*base_block=*/0, params);

  std::printf("pddict quickstart: deterministic dictionary on %u disks\n",
              disks.geometry().num_disks);
  std::printf("  capacity N = %llu, buckets v = %llu, bucket capacity = %u\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(dict.num_buckets()),
              dict.bucket_capacity());

  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, n,
                                      params.universe_size, /*seed=*/42);
  pdm::IoProbe insert_probe(disks);
  for (core::Key k : keys) dict.insert(k, core::value_for_key(k, 8));
  std::printf("  inserted %llu keys in %llu parallel I/Os (%.2f per insert)\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(insert_probe.ios()),
              static_cast<double>(insert_probe.ios()) / n);

  pdm::IoProbe lookup_probe(disks);
  std::uint64_t found = 0;
  for (core::Key k : keys) found += dict.lookup(k).found;
  std::printf("  %llu/%llu lookups hit in %llu parallel I/Os (%.2f per lookup)\n",
              static_cast<unsigned long long>(found),
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(lookup_probe.ios()),
              static_cast<double>(lookup_probe.ios()) / n);

  // Worst case — the paper's point — not just the average:
  std::uint64_t worst = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    pdm::IoProbe probe(disks);
    dict.lookup(keys[i]);
    worst = std::max(worst, probe.ios());
  }
  std::printf("  worst-case lookup over 1000 samples: %llu parallel I/O(s)\n",
              static_cast<unsigned long long>(worst));
  std::printf("  max bucket load: %u (bucket capacity %u)\n",
              dict.peek_max_load(), dict.bucket_capacity());
  return found == n && worst == 1 ? 0 : 1;
}
