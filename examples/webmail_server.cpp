// Webmail / http server example (paper §1.2).
//
// "These typically have to retrieve small quantities of information at a
// time, typically fitting within a block, but from a very large data set, in
// a highly random fashion." And crucially: "the file system often needs to
// offer a real-time guarantee ... which essentially prohibits randomized
// solutions."
//
// This example stores mailbox-index entries in (i) the dynamic deterministic
// dictionary of Theorem 7 and (ii) a striped hash table, then replays a mixed
// lookup/update workload and reports the *latency distribution* in parallel
// I/Os. The averages are similar — the tails are not: the deterministic
// structure's worst case is a hard bound, while the hash table's depends on
// luck with the key set (we use the shared-low-bits adversarial pattern to
// make it visible even at this scale).
//
//   ./webmail_server [num_users] [ops]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "baselines/striped_hash.hpp"
#include "core/dynamic_dict.hpp"
#include "pdm/allocator.hpp"
#include "pdm/io_stats.hpp"
#include "workload/workload.hpp"

namespace {

struct LatencyHistogram {
  std::map<std::uint64_t, std::uint64_t> counts;
  void add(std::uint64_t ios) { ++counts[ios]; }
  std::uint64_t worst() const {
    return counts.empty() ? 0 : counts.rbegin()->first;
  }
  double average() const {
    std::uint64_t total = 0, n = 0;
    for (auto [ios, c] : counts) {
      total += ios * c;
      n += c;
    }
    return n ? static_cast<double>(total) / n : 0.0;
  }
  void print(const char* name) const {
    std::printf("  %-24s avg %.3f  worst %llu   distribution:", name,
                average(), static_cast<unsigned long long>(worst()));
    for (auto [ios, c] : counts)
      std::printf("  %llu I/O x%llu", static_cast<unsigned long long>(ios),
                  static_cast<unsigned long long>(c));
    std::printf("\n");
  }
};

template <typename Dict>
LatencyHistogram replay(Dict& dict, pddict::pdm::DiskArray& disks,
                        const std::vector<pddict::core::Key>& mailboxes,
                        const pddict::workload::QueryTrace& trace) {
  LatencyHistogram hist;
  for (pddict::core::Key q : trace.queries) {
    pddict::pdm::IoProbe probe(disks);
    dict.lookup(q);
    hist.add(probe.ios());
  }
  (void)mailboxes;
  return hist;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pddict;
  const std::uint64_t users =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;
  const std::uint64_t ops =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000;
  const std::size_t entry_bytes = 32;  // mailbox index entry

  std::printf("webmail_server: %llu mailboxes, %llu random lookups\n",
              static_cast<unsigned long long>(users),
              static_cast<unsigned long long>(ops));

  // Adversarial key pattern: mailbox ids that share low bits (e.g. sharded
  // user ids). Deterministic structures don't care; weak hashing would.
  auto mailboxes = workload::generate_keys(
      workload::KeyPattern::kSharedLowBits, users, std::uint64_t{1} << 40, 7);
  auto trace = workload::make_query_trace(mailboxes, std::uint64_t{1} << 40,
                                          ops, 0.9, 1.0, 99);

  // ---- Theorem 7 dynamic dictionary (needs 2d disks) ----
  pdm::DiskArray det_disks(pdm::Geometry{48, 64, 16, 0});
  pdm::DiskAllocator alloc;
  core::DynamicDictParams dp;
  dp.universe_size = std::uint64_t{1} << 40;
  dp.capacity = users + 1000;  // headroom for the update phase below
  dp.value_bytes = entry_bytes;
  dp.epsilon_op = 0.5;
  dp.degree = 24;
  core::DynamicDict det(det_disks, 0, alloc, dp);
  for (core::Key m : mailboxes) det.insert(m, core::value_for_key(m, entry_bytes));

  // ---- striped hashing baseline on the same disk budget ----
  pdm::DiskArray hash_disks(pdm::Geometry{48, 64, 16, 0});
  baselines::StripedHashParams hp;
  hp.universe_size = std::uint64_t{1} << 40;
  hp.capacity = users;
  hp.value_bytes = entry_bytes;
  baselines::StripedHashDict hash(hash_disks, 0, hp);
  for (core::Key m : mailboxes)
    hash.insert(m, core::value_for_key(m, entry_bytes));

  std::printf("\nlookup latency (parallel I/Os):\n");
  auto det_hist = replay(det, det_disks, mailboxes, trace);
  det_hist.print("deterministic (Thm 7)");
  auto hash_hist = replay(hash, hash_disks, mailboxes, trace);
  hash_hist.print("striped hashing");

  std::printf("\nupdate latency (parallel I/Os):\n");
  LatencyHistogram det_up, hash_up;
  auto new_users = workload::generate_keys(workload::KeyPattern::kSparseRandom,
                                           500, std::uint64_t{1} << 40, 1234);
  for (core::Key m : new_users) {
    pdm::IoProbe p1(det_disks);
    det.insert(m, core::value_for_key(m, entry_bytes));
    det_up.add(p1.ios());
    pdm::IoProbe p2(hash_disks);
    hash.insert(m, core::value_for_key(m, entry_bytes));
    hash_up.add(p2.ios());
  }
  det_up.print("deterministic (Thm 7)");
  hash_up.print("striped hashing");

  std::printf("\nreal-time guarantee: deterministic worst case is a hard "
              "bound (%llu I/Os);\nhashing worst case depends on the key "
              "set's luck.\n",
              static_cast<unsigned long long>(
                  std::max(det_hist.worst(), det_up.worst())));
  return 0;
}
