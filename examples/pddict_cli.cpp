// pddict_cli — a minimal persistent key-value store shell over the
// deterministic dictionary and the file-backed disk array.
//
//   ./pddict_cli <directory> [command...]            one-shot mode
//   ./pddict_cli <directory>                         interactive (stdin)
//
// Commands:
//   put <key> <value-string>   insert (value padded/truncated to 48 bytes)
//   get <key>                  lookup
//   del <key>                  erase
//   stats                      size + I/O counters + estimated latencies,
//                              per-disk utilization and the session span tree
//   profile                    I/O flame table (self vs. child attribution)
//   help / quit
//
// Diagnostic modes (no store directory):
//   ./pddict_cli doctor [--n <keys>] [--bound-report <path>]
// runs a small Theorem 7 workload on the dynamic dictionary with the
// operation attributor and the instantiated paper-bound monitor attached,
// prints the per-op histograms, the worst-op ring and the bound margin
// table, and exits nonzero if any bound was violated. --bound-report writes
// the pddict-bound-report JSON (with the op attribution embedded) for
// tools/validate_bench_json. The telemetry sampler + health watchdog run
// throughout, so doctor also prints the watchdog verdict (worker stalls,
// queue high water, dirty-frame floods, bound-margin breaches, cost-model
// divergence) plus the round-phase wall-time table and calibrated cost
// model (obs/cost_conformance).
//
//   ./pddict_cli top [--n <keys>] [--rounds <r>] [--interval-ms <ms>]
//                    [--telemetry <path>] [--inject-stall <ns>]
// the live view: runs the same workload in slices and after each slice
// prints a refreshed dashboard from the *telemetry path itself* — the
// latest sampler frame (per-source cumulative I/O, cache and executor
// state), a streaming log-linear histogram of per-op wall latencies, and
// any watchdog alerts. --telemetry also appends every frame as JSONL.
// --inject-stall <ns> delays every backend transfer by that much (a test
// hook on the executor) to demonstrate a worker-stall alert end to end.
//
// Observability flags (may appear anywhere on the command line):
//   --trace <path>        stream every I/O event + span as JSON-lines
//   --trace-event <path>  write a Chrome/Perfetto timeline of the session
//                         at exit (chrome://tracing or ui.perfetto.dev)
//   --cache-frames <n>    interpose an n-frame buffer pool (the PDM's
//                         internal memory M/B) over the file backend; hot
//                         blocks then cost zero parallel I/Os and dirty
//                         blocks are written back in coalesced batches at
//                         eviction / close. `stats` shows the hit rate.
//
// The store is self-describing: its parameters live in a one-block manifest,
// so any later invocation on the same directory reopens it.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/dynamic_dict.hpp"
#include "core/manifest.hpp"
#include "obs/bound_monitor.hpp"
#include "obs/histogram.hpp"
#include "obs/op_attribution.hpp"
#include "obs/profile.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_event.hpp"
#include "pdm/allocator.hpp"
#include "pdm/cost_model.hpp"
#include "pdm/file_backend.hpp"
#include "workload/workload.hpp"

namespace {

using namespace pddict;

constexpr pdm::Geometry kGeom{16, 64, 16, 0};
constexpr std::size_t kValueBytes = 48;

core::BasicDictParams default_params() {
  core::BasicDictParams p;
  p.universe_size = std::uint64_t{1} << 60;
  p.capacity = 1 << 20;
  p.value_bytes = kValueBytes;
  p.degree = 16;
  p.seed = 0xc11;
  return p;
}

std::vector<std::byte> encode_value(const std::string& text) {
  std::vector<std::byte> v(kValueBytes, std::byte{0});
  std::memcpy(v.data(), text.data(), std::min(text.size(), kValueBytes - 1));
  return v;
}

std::string decode_value(std::span<const std::byte> bytes) {
  std::string s(reinterpret_cast<const char*>(bytes.data()),
                strnlen(reinterpret_cast<const char*>(bytes.data()),
                        bytes.size()));
  return s;
}

int run_command(core::BasicDict& store, pdm::DiskArray& disks,
                obs::SpanAggregator& spans,
                const std::vector<std::string>& args) {
  if (args.empty() || args[0] == "help") {
    std::printf("commands: put <key> <value> | get <key> | del <key> | "
                "stats | profile | quit\n");
    return 0;
  }
  if (args[0] == "put" && args.size() >= 3) {
    obs::Span span(disks, "cli_put");
    core::Key key = std::strtoull(args[1].c_str(), nullptr, 10);
    bool fresh = store.insert(key, encode_value(args[2]));
    std::printf("%s\n", fresh ? "OK" : "EXISTS");
    return 0;
  }
  if (args[0] == "get" && args.size() >= 2) {
    obs::Span span(disks, "cli_get");
    core::Key key = std::strtoull(args[1].c_str(), nullptr, 10);
    auto r = store.lookup(key);
    if (r.found)
      std::printf("%s\n", decode_value(r.value).c_str());
    else
      std::printf("NOT_FOUND\n");
    return r.found ? 0 : 1;
  }
  if (args[0] == "del" && args.size() >= 2) {
    obs::Span span(disks, "cli_del");
    core::Key key = std::strtoull(args[1].c_str(), nullptr, 10);
    std::printf("%s\n", store.erase(key) ? "DELETED" : "NOT_FOUND");
    return 0;
  }
  if (args[0] == "stats") {
    auto spin = pdm::DiskCostModel::spinning();
    auto nvme = pdm::DiskCostModel::nvme();
    pdm::IoStats one_lookup{1, 1, 0, 16, 0};
    std::printf("records:            %llu\n",
                static_cast<unsigned long long>(store.size()));
    std::printf("buckets:            %llu (max load %u / capacity %u)\n",
                static_cast<unsigned long long>(store.num_buckets()),
                store.peek_max_load(), store.bucket_capacity());
    std::printf("session I/O:        %llu parallel rounds\n",
                static_cast<unsigned long long>(disks.stats().parallel_ios));
    if (disks.cache_enabled()) {
      pdm::CacheStats c = disks.cache_stats();
      double rate = c.hits + c.misses
                        ? static_cast<double>(c.hits) /
                              static_cast<double>(c.hits + c.misses)
                        : 0.0;
      std::printf("buffer pool:        %zu frames, %llu hits / %llu misses "
                  "(%.1f%%), %llu blocks written back\n",
                  disks.cache_frames(),
                  static_cast<unsigned long long>(c.hits),
                  static_cast<unsigned long long>(c.misses), 100.0 * rate,
                  static_cast<unsigned long long>(c.flushed_blocks));
    }
    std::printf("per-lookup latency: %.2f ms spinning / %.3f ms NVMe "
                "(1 parallel I/O, guaranteed)\n",
                spin.elapsed_ms(one_lookup, kGeom),
                nvme.elapsed_ms(one_lookup, kGeom));

    std::printf("\nper-disk utilization (mean %.3f of %u slots per round):\n",
                disks.mean_utilization(), kGeom.num_disks);
    std::printf("  %4s %12s %12s %12s %12s\n", "disk", "reads", "writes",
                "rounds", "idle slots");
    const auto& counters = disks.disk_counters();
    for (std::size_t i = 0; i < counters.size(); ++i) {
      std::printf("  %4zu %12llu %12llu %12llu %12llu\n", i,
                  static_cast<unsigned long long>(counters[i].blocks_read),
                  static_cast<unsigned long long>(counters[i].blocks_written),
                  static_cast<unsigned long long>(counters[i].rounds_active),
                  static_cast<unsigned long long>(counters[i].idle_slots));
    }
    std::printf("round utilization histogram (slots used -> rounds):\n ");
    const auto& hist = disks.round_utilization();
    for (std::size_t k = 1; k < hist.size(); ++k)
      if (hist[k]) std::printf(" %zu:%llu", k,
                               static_cast<unsigned long long>(hist[k]));
    std::printf("\n");

    if (!spans.nodes().empty()) {
      std::printf("\nsession span tree:\n%s", spans.render().c_str());
    }
    return 0;
  }
  if (args[0] == "profile") {
    if (spans.nodes().empty())
      std::printf("no spans recorded yet\n");
    else
      std::fputs(spans.profile().render_flame(20).c_str(), stdout);
    return 0;
  }
  std::printf("unknown command (try 'help')\n");
  return 2;
}

core::DynamicDictParams doctor_params(std::uint64_t n, double eps) {
  core::DynamicDictParams p;
  p.universe_size = std::uint64_t{1} << 40;
  p.capacity = n;
  p.value_bytes = 16;
  p.epsilon_op = eps;
  p.stripe_factor = 2.0;
  p.degree = core::DynamicDict::degree_for(p);
  return p;
}

/// `pddict_cli doctor` — self-check of the observability layer against the
/// paper bounds: a small Theorem 7 workload on the dynamic dictionary with
/// the OpAttributor and the instantiated BoundMonitor attached live, plus
/// the telemetry sampler + health watchdog watching the run from the side.
int run_doctor(std::uint64_t n, const std::string& report_path) {
  // Install the sampler *before* the array exists so it self-registers, and
  // wire the watchdog in so every tick also evaluates the health rules.
  auto watchdog = std::make_shared<obs::HealthWatchdog>();
  obs::TelemetrySampler::Options topt;
  topt.interval_ms = 25;
  auto sampler = std::make_shared<obs::TelemetrySampler>(topt);
  sampler->set_watchdog(watchdog);
  obs::set_default_telemetry(sampler);
  // Round-phase profiler: installed before the array exists so it attaches
  // at construction; doctor prints the phase table + model fit at the end
  // and the watchdog's model_divergence rule watches it live.
  auto conformance = std::make_shared<obs::CostConformance>();
  obs::set_default_cost_conformance(conformance);
  sampler->start();

  bool ok = false;
  {
    const double eps = 0.5;
    core::DynamicDictParams p = doctor_params(n, eps);
    pdm::DiskArray disks(pdm::Geometry{2 * p.degree, 64, 16, 0});
    pdm::DiskAllocator alloc;
    core::DynamicDict dict(disks, 0, alloc, p);

    auto attributor = std::make_shared<obs::OpAttributor>();
    auto monitor = std::make_shared<obs::BoundMonitor>(
        "dynamic_dict", obs::thm7_rules(eps, dict.levels()));
    disks.add_sink(attributor);
    disks.add_sink(monitor);
    // A second watchdog probe over the live bound margins: a margin > 1.0
    // raises bound_margin_breach the moment it happens, not at exit.
    std::uint64_t bounds_id = watchdog->add_source(
        "paper_bounds", [monitor] {
          obs::HealthSample h;
          h.has_bounds = true;
          h.worst_margin = monitor->worst_margin();
          h.bound_violations = monitor->violations();
          return h;
        });

    std::printf("=== pddict doctor: Theorem 7 workload on the dynamic "
                "dictionary ===\n");
    std::printf("n = %llu keys, eps = %.2f, degree d = %u, %u levels, "
                "D = %u disks\n\n",
                static_cast<unsigned long long>(n), eps, p.degree,
                dict.levels(), 2 * p.degree);

    auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, n,
                                        p.universe_size, 0xd0c);
    for (core::Key k : keys) dict.insert(k, core::value_for_key(k, 16));
    for (core::Key k : keys) dict.lookup(k);
    auto misses = workload::make_query_trace(keys, p.universe_size,
                                             n / 2 ? n / 2 : 1, 0.0, 1.0, 4)
                      .queries;
    for (core::Key k : misses) dict.lookup(k);
    for (std::size_t i = 0; i < keys.size(); i += 4) dict.erase(keys[i]);

    std::fputs(attributor->render().c_str(), stdout);
    std::printf("\n");
    std::fputs(monitor->render().c_str(), stdout);
    std::printf("\n");
    std::fputs(conformance->render().c_str(), stdout);

    watchdog->check_now();
    std::printf("\n");
    std::fputs(watchdog->render().c_str(), stdout);
    watchdog->remove_source(bounds_id);

    if (!report_path.empty()) {
      obs::Json report = monitor->report();
      report.set("op_attribution", attributor->to_json());
      std::ofstream out(report_path);
      if (!out) {
        std::fprintf(stderr, "doctor: cannot write %s\n", report_path.c_str());
        obs::set_default_telemetry(nullptr);
        return 2;
      }
      report.write(out, 2);
      out << '\n';
      std::printf("\n[bound report written to %s]\n", report_path.c_str());
    }
    ok = monitor->violations() == 0 && watchdog->total_alerts() == 0;
  }
  obs::set_default_cost_conformance(nullptr);
  obs::set_default_telemetry(nullptr);
  sampler->stop();
  std::printf("\ntelemetry: %llu frames sampled, %llu health alerts\n",
              static_cast<unsigned long long>(sampler->frames_emitted()),
              static_cast<unsigned long long>(watchdog->total_alerts()));
  std::printf("doctor verdict: %s\n",
              ok ? "all instantiated paper bounds hold, watchdog quiet"
                 : "FAILURE — see margin table / health events above");
  return ok ? 0 : 1;
}

/// `pddict_cli top` — the live dashboard. Runs the doctor workload in
/// slices; after each slice prints the latest telemetry frame's per-source
/// counters, the streaming wall-latency histogram and any watchdog alerts.
/// Everything shown flows through the same sampler a scraper would read.
int run_top(std::uint64_t n, std::uint64_t rounds, std::uint64_t interval_ms,
            const std::string& telemetry_path, std::uint64_t inject_stall_ns,
            std::size_t io_threads) {
  obs::WatchdogConfig wcfg;
  if (inject_stall_ns) {
    // Alert threshold well under the injected delay, so a sampler tick
    // landing anywhere but the very start of an in-flight job trips the
    // stall rule.
    wcfg.stall_ns = std::max<std::uint64_t>(inject_stall_ns / 8, 1'000'000);
  }
  auto watchdog = std::make_shared<obs::HealthWatchdog>(wcfg);
  obs::TelemetrySampler::Options topt;
  topt.interval_ms = interval_ms ? interval_ms : 50;
  topt.jsonl_path = telemetry_path;
  auto sampler = std::make_shared<obs::TelemetrySampler>(topt);
  sampler->set_watchdog(watchdog);
  obs::set_default_telemetry(sampler);
  // Live round-phase attribution for the dashboard's per-slice phase line.
  auto conformance = std::make_shared<obs::CostConformance>();
  obs::set_default_cost_conformance(conformance);
  sampler->start();
  {
    const double eps = 0.5;
    core::DynamicDictParams p = doctor_params(n, eps);
    pdm::DiskArray disks(pdm::Geometry{2 * p.degree, 64, 16, 0});
    if (inject_stall_ns && !io_threads) io_threads = 2;
    if (io_threads) disks.set_io_threads(io_threads);
    pdm::DiskAllocator alloc;
    core::DynamicDict dict(disks, 0, alloc, p);
    // Inject the stall only once the dictionary exists: construction does
    // orders of magnitude more transfers than the sliced workload, and the
    // demo is about catching a slow disk mid-flight, not a slow build.
    if (inject_stall_ns) disks.set_exec_job_delay_for_testing(inject_stall_ns);

    auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, n,
                                        p.universe_size, 0x701);
    obs::LatencyHistogram lat;  // wall ns per dictionary operation
    std::printf("=== pddict top: %llu keys over %llu rounds, sampling every "
                "%llu ms ===\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(rounds),
                static_cast<unsigned long long>(topt.interval_ms));
    if (rounds == 0) rounds = 1;
    const std::size_t slice = (keys.size() + rounds - 1) / rounds;
    std::size_t done = 0;
    for (std::uint64_t r = 1; r <= rounds && done < keys.size(); ++r) {
      std::size_t end = std::min(done + slice, keys.size());
      for (; done < end; ++done) {
        core::Key k = keys[done];
        auto t0 = std::chrono::steady_clock::now();
        dict.insert(k, core::value_for_key(k, 16));
        dict.lookup(k);
        lat.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
      }
      obs::Json frame = sampler->sample_now();
      std::printf("\n-- round %llu/%llu · %zu/%zu keys · frame seq %lld · "
                  "alerts %llu --\n",
                  static_cast<unsigned long long>(r),
                  static_cast<unsigned long long>(rounds), done, keys.size(),
                  static_cast<long long>(frame.find("seq")->as_int()),
                  static_cast<unsigned long long>(watchdog->total_alerts()));
      if (const obs::Json* sources = frame.find("sources")) {
        for (const auto& [name, snap] : sources->as_object()) {
          const obs::Json* io = snap.find("io");
          if (!io) continue;
          std::printf("  %-8s %8lld parallel I/Os  %10lld read  %10lld "
                      "written",
                      name.c_str(), static_cast<long long>(
                                        io->find("parallel_ios")->as_int()),
                      static_cast<long long>(io->find("blocks_read")->as_int()),
                      static_cast<long long>(
                          io->find("blocks_written")->as_int()));
          if (const obs::Json* exec = snap.find("exec"))
            std::printf("  [%lld threads, %lld jobs]",
                        static_cast<long long>(
                            exec->find("io_threads")->as_int()),
                        static_cast<long long>(exec->find("jobs")->as_int()));
          std::printf("\n");
        }
      }
      std::printf("  op wall ns: p50 %llu  p95 %llu  p99 %llu  max %llu  "
                  "(%llu ops)\n",
                  static_cast<unsigned long long>(lat.p50()),
                  static_cast<unsigned long long>(lat.p95()),
                  static_cast<unsigned long long>(lat.p99()),
                  static_cast<unsigned long long>(lat.max()),
                  static_cast<unsigned long long>(lat.count()));
      std::printf("  %s\n", conformance->render_line().c_str());
    }
    if (watchdog->total_alerts()) {
      std::printf("\n");
      std::fputs(watchdog->render().c_str(), stdout);
    }
  }
  obs::set_default_cost_conformance(nullptr);
  obs::set_default_telemetry(nullptr);
  sampler->stop();
  std::printf("\n[%llu frames sampled (%llu dropped from ring), %llu health "
              "alerts]\n",
              static_cast<unsigned long long>(sampler->frames_emitted()),
              static_cast<unsigned long long>(sampler->frames_dropped()),
              static_cast<unsigned long long>(watchdog->total_alerts()));
  if (!telemetry_path.empty())
    std::printf("[telemetry written to %s]\n", telemetry_path.c_str());
  // An injected stall MUST have been caught — exit nonzero if the watchdog
  // missed it, so the demo doubles as an end-to-end check.
  if (inject_stall_ns) return watchdog->total_alerts() ? 0 : 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --trace / --trace-event / doctor / top flags before positional
  // parsing.
  std::string trace_path, trace_event_path, bound_report_path, telemetry_path;
  std::uint64_t doctor_n = 1500;
  std::uint64_t top_rounds = 8;
  std::uint64_t top_interval_ms = 50;
  std::uint64_t inject_stall_ns = 0;
  std::size_t cache_frames = 0;
  std::size_t io_threads = 0;
  auto parse_io_threads = [](const char* text) -> std::size_t {
    if (std::string_view(text) == "auto") return pdm::kAutoIoThreads;
    return std::strtoull(text, nullptr, 10);
  };
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc)
      trace_path = argv[++i];
    else if (arg.rfind("--trace=", 0) == 0)
      trace_path = arg.substr(8);
    else if (arg == "--trace-event" && i + 1 < argc)
      trace_event_path = argv[++i];
    else if (arg.rfind("--trace-event=", 0) == 0)
      trace_event_path = arg.substr(14);
    else if (arg == "--bound-report" && i + 1 < argc)
      bound_report_path = argv[++i];
    else if (arg.rfind("--bound-report=", 0) == 0)
      bound_report_path = arg.substr(15);
    else if (arg == "--n" && i + 1 < argc)
      doctor_n = std::strtoull(argv[++i], nullptr, 10);
    else if (arg.rfind("--n=", 0) == 0)
      doctor_n = std::strtoull(arg.c_str() + 4, nullptr, 10);
    else if (arg == "--cache-frames" && i + 1 < argc)
      cache_frames = std::strtoull(argv[++i], nullptr, 10);
    else if (arg.rfind("--cache-frames=", 0) == 0)
      cache_frames = std::strtoull(arg.c_str() + 15, nullptr, 10);
    else if (arg == "--io-threads" && i + 1 < argc)
      io_threads = parse_io_threads(argv[++i]);
    else if (arg.rfind("--io-threads=", 0) == 0)
      io_threads = parse_io_threads(arg.c_str() + 13);
    else if (arg == "--telemetry" && i + 1 < argc)
      telemetry_path = argv[++i];
    else if (arg.rfind("--telemetry=", 0) == 0)
      telemetry_path = arg.substr(12);
    else if (arg == "--rounds" && i + 1 < argc)
      top_rounds = std::strtoull(argv[++i], nullptr, 10);
    else if (arg.rfind("--rounds=", 0) == 0)
      top_rounds = std::strtoull(arg.c_str() + 9, nullptr, 10);
    else if (arg == "--interval-ms" && i + 1 < argc)
      top_interval_ms = std::strtoull(argv[++i], nullptr, 10);
    else if (arg.rfind("--interval-ms=", 0) == 0)
      top_interval_ms = std::strtoull(arg.c_str() + 14, nullptr, 10);
    else if (arg == "--inject-stall" && i + 1 < argc)
      inject_stall_ns = std::strtoull(argv[++i], nullptr, 10);
    else if (arg.rfind("--inject-stall=", 0) == 0)
      inject_stall_ns = std::strtoull(arg.c_str() + 15, nullptr, 10);
    else
      positional.push_back(std::move(arg));
  }
  if (positional.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--trace <path>] [--trace-event <path>] "
                 "[--cache-frames <n>] [--io-threads <n|auto>] "
                 "<directory> [command args...]\n"
                 "       %s doctor [--n <keys>] [--bound-report <path>]\n"
                 "       %s top [--n <keys>] [--rounds <r>] "
                 "[--interval-ms <ms>] [--telemetry <path>] "
                 "[--inject-stall <ns>] [--io-threads <n|auto>]\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }
  if (positional[0] == "doctor")
    return run_doctor(doctor_n ? doctor_n : 1, bound_report_path);
  if (positional[0] == "top")
    return run_top(doctor_n ? doctor_n : 1, top_rounds, top_interval_ms,
                   telemetry_path, inject_stall_ns, io_threads);
  std::filesystem::path dir = positional[0];
  std::filesystem::create_directories(dir);
  pdm::DiskArray disks(kGeom, pdm::Model::kParallelDisks,
                       std::make_unique<pdm::FileBackend>(kGeom, dir));
  if (cache_frames) disks.enable_cache(cache_frames);
  // Execution knob only: every count the CLI prints is identical for any
  // thread count — parallel workers change wall time, not rounds.
  if (io_threads) disks.set_io_threads(io_threads);
  auto spans = std::make_shared<obs::SpanAggregator>();
  std::shared_ptr<obs::JsonLinesSink> jsonl;
  std::shared_ptr<obs::RingBufferSink> ring;
  std::vector<std::shared_ptr<obs::Sink>> sinks{spans};
  if (!trace_path.empty()) {
    jsonl = std::make_shared<obs::JsonLinesSink>(trace_path,
                                                 /*record_addrs=*/true);
    sinks.push_back(jsonl);
  }
  if (!trace_event_path.empty()) {
    ring = std::make_shared<obs::RingBufferSink>(std::size_t{1} << 16);
    sinks.push_back(ring);
  }
  disks.set_sink(sinks.size() == 1
                     ? std::static_pointer_cast<obs::Sink>(spans)
                     : std::make_shared<obs::MultiSink>(std::move(sinks)));
  auto finish_traces = [&] {
    if (jsonl) {
      jsonl->flush();
      std::printf("[trace written to %s (%llu lines)]\n", trace_path.c_str(),
                  static_cast<unsigned long long>(jsonl->lines_written()));
    }
    if (ring &&
        obs::write_trace_event_file(trace_event_path, ring->events(),
                                    ring->spans(), kGeom.num_disks))
      std::printf("[trace-event timeline written to %s]\n",
                  trace_event_path.c_str());
  };
  core::BasicDict store = core::open_store(disks, default_params());

  if (positional.size() > 1) {  // one-shot
    std::vector<std::string> args(positional.begin() + 1, positional.end());
    int rc = run_command(store, disks, *spans, args);
    core::close_store(disks, store);  // fast reopen next time
    disks.flush_cache();  // persist deferred writes before the files close
    finish_traces();
    return rc;
  }
  std::printf("pddict store at %s (%llu records). 'help' for commands.\n",
              dir.c_str(), static_cast<unsigned long long>(store.size()));
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream iss(line);
    std::vector<std::string> args;
    std::string tok;
    while (iss >> tok) args.push_back(tok);
    if (!args.empty() && args[0] == "quit") break;
    run_command(store, disks, *spans, args);
  }
  core::close_store(disks, store);
  disks.flush_cache();
  finish_traces();
  return 0;
}
