// Batch ingestion with parallel dictionary instances (paper, §4 intro).
//
// "We can make any constant number of parallel instances of our dictionaries.
// This allows insertions of a constant number of elements in the same number
// of parallel I/Os as one insertion."
//
// Scenario: a storage front-end receives writes in batches (e.g. a commit
// group). With c = 4 instances on 4·d disks, each wave of up to 4 keys costs
// the same 2 parallel I/Os as a single insertion — a 4× ingestion speedup for
// the same worst-case guarantees. The example ingests a key stream both ways
// and compares total parallel I/Os and estimated wall time on spinning disks.
//
//   ./batch_ingest [keys]
#include <cstdio>
#include <cstdlib>

#include "core/basic_dict.hpp"
#include "core/parallel_group.hpp"
#include "pdm/allocator.hpp"
#include "pdm/cost_model.hpp"
#include "pdm/io_stats.hpp"
#include "workload/workload.hpp"

int main(int argc, char** argv) {
  using namespace pddict;
  const std::uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const std::uint32_t c = 4, d = 16;

  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, n,
                                      std::uint64_t{1} << 40, 77);

  // Single instance on d disks.
  pdm::DiskArray single_disks(pdm::Geometry{d, 64, 16, 0});
  core::BasicDictParams sp;
  sp.universe_size = std::uint64_t{1} << 40;
  sp.capacity = n;
  sp.value_bytes = 8;
  sp.degree = d;
  core::BasicDict single(single_disks, 0, 0, sp);
  pdm::IoProbe single_probe(single_disks);
  for (core::Key k : keys) single.insert(k, core::value_for_key(k, 8));

  // c parallel instances on c*d disks, fed in batches of c.
  pdm::DiskArray group_disks(pdm::Geometry{c * d, 64, 16, 0});
  pdm::DiskAllocator alloc;
  core::ParallelGroupParams gp;
  gp.universe_size = std::uint64_t{1} << 40;
  gp.capacity = n;
  gp.value_bytes = 8;
  gp.degree = d;
  gp.instances = c;
  core::ParallelDictGroup group(group_disks, 0, alloc, gp);
  pdm::IoProbe group_probe(group_disks);
  // Instance-aware batching: queue keys per instance and emit a wave as soon
  // as every instance has work, so each wave of c keys really costs 2 I/Os.
  {
    std::vector<std::vector<core::Key>> queues(c);
    std::vector<std::vector<std::byte>> values(c);
    auto flush_wave = [&](bool force) {
      while (true) {
        std::vector<core::ParallelDictGroup::BatchItem> batch;
        for (std::uint32_t i = 0; i < c; ++i) {
          if (queues[i].empty()) continue;
          values[i] = core::value_for_key(queues[i].back(), 8);
          batch.push_back({queues[i].back(), values[i]});
        }
        if (batch.empty()) return;
        if (!force && batch.size() < c) return;  // wait for a full wave
        group.insert_batch(batch);
        for (auto& q : queues)
          if (!q.empty()) q.pop_back();
      }
    };
    for (core::Key k : keys) {
      queues[group.instance_of(k)].push_back(k);
      flush_wave(false);
    }
    flush_wave(true);
  }

  auto model = pdm::DiskCostModel::spinning();
  double single_ms =
      model.elapsed_ms(single_probe.delta(), single_disks.geometry());
  double group_ms =
      model.elapsed_ms(group_probe.delta(), group_disks.geometry());

  std::printf("batch_ingest: %llu keys\n\n", static_cast<unsigned long long>(n));
  std::printf("  %-34s %12s %14s\n", "configuration", "par. I/Os",
              "est. spinning");
  std::printf("  %-34s %12llu %12.0f ms\n", "1 instance, one-by-one",
              static_cast<unsigned long long>(single_probe.ios()), single_ms);
  std::printf("  %-34s %12llu %12.0f ms\n", "4 instances, batches of 4",
              static_cast<unsigned long long>(group_probe.ios()), group_ms);
  std::printf("\n  ingestion speedup: %.2fx  (lookups remain 1 parallel I/O "
              "in both)\n",
              static_cast<double>(single_probe.ios()) / group_probe.ios());

  // Sanity: everything is retrievable from the group.
  std::uint64_t found = 0;
  for (core::Key k : keys) found += group.lookup(k).found;
  return found == n ? 0 : 1;
}
