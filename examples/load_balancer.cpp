// Standalone use of the Section 3 deterministic load balancing scheme —
// "that may be of independent interest".
//
// Scenario: assign incoming objects (each replicated k times) to storage
// servers on-line, with no randomness and no central directory — only the
// expander's neighbor function. The example compares the greedy d-choice
// scheme against naive single-choice placement, and against the Lemma 3
// analytic bound.
//
//   ./load_balancer [objects] [servers]
#include <cstdio>
#include <cstdlib>

#include "core/load_balance.hpp"
#include "expander/seeded_expander.hpp"
#include "util/prng.hpp"

int main(int argc, char** argv) {
  using namespace pddict;
  const std::uint64_t objects =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;
  std::uint64_t servers = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 512;
  const std::uint32_t d = 16;  // choices per object
  const std::uint32_t k = 4;   // replicas per object
  servers = (servers + d - 1) / d * d;  // striped right side

  expander::SeededExpander graph(std::uint64_t{1} << 48, servers, d, 0xbeef);
  core::LoadBalancer balanced(graph, k);
  std::vector<std::uint64_t> naive(servers, 0);

  util::SplitMix64 rng(1);
  for (std::uint64_t i = 0; i < objects; ++i) {
    std::uint64_t object_id = rng.next();
    balanced.assign(object_id);
    // Naive: all k replicas to the object's first-choice server.
    naive[graph.neighbor(object_id, 0)] += k;
  }

  std::uint64_t naive_max = 0;
  for (auto load : naive) naive_max = std::max(naive_max, load);
  double average =
      static_cast<double>(k) * objects / static_cast<double>(servers);
  double bound = core::lemma3_bound(objects, servers, d, k, 1.0 / 6, 1.0 / 2);

  std::printf("load_balancer: %llu objects x %u replicas over %llu servers "
              "(d = %u choices)\n\n",
              static_cast<unsigned long long>(objects), k,
              static_cast<unsigned long long>(servers), d);
  std::printf("  average load                 %10.1f\n", average);
  std::printf("  greedy d-choice max load     %10llu\n",
              static_cast<unsigned long long>(balanced.max_load()));
  std::printf("  Lemma 3 bound                %10.1f\n", bound);
  std::printf("  naive single-choice max load %10llu\n\n",
              static_cast<unsigned long long>(naive_max));
  std::printf("  greedy overhead over average: %.2fx;  naive: %.2fx\n",
              balanced.max_load() / average, naive_max / average);
  return balanced.max_load() <= static_cast<std::uint64_t>(bound) ? 0 : 1;
}
