// File-system example (paper §1.2).
//
// "A dictionary can be used to implement the basic functionality of a file
// system: let keys consist of a file name and a block number, and associate
// them with the contents of the given block number of the given file."
//
// This example builds exactly that on the PDM simulator, twice: once over a
// B-tree (how commercial file systems do it — typically 3 accesses per random
// block) and once over the one-probe static dictionary of Theorem 6. It then
// replays the same random-access trace against both and reports the per-read
// parallel-I/O cost — the 3-vs-1 gap the paper's introduction argues "can
// have a tremendous impact".
//
//   ./file_system [num_files] [accesses]
#include <cstdio>
#include <cstdlib>

#include "baselines/btree.hpp"
#include "core/static_dict.hpp"
#include "pdm/allocator.hpp"
#include "pdm/disk_array.hpp"
#include "pdm/io_stats.hpp"
#include "workload/workload.hpp"

int main(int argc, char** argv) {
  using namespace pddict;
  const std::uint64_t num_files =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  const std::uint64_t accesses =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000;

  // The "block contents" stored per (file, block#) key: a pointer-sized
  // handle to the data extent (the paper: satellite data can also be a
  // pointer followed in one extra I/O).
  constexpr std::size_t kHandleBytes = 8;

  auto trace = workload::make_fs_trace(num_files, /*mean_blocks_per_file=*/16,
                                       accesses, /*zipf_theta=*/0.9,
                                       /*seed=*/2026);
  const std::uint64_t n = trace.all_blocks.size();
  std::printf("file_system: %llu files, %llu (file,block) keys, %llu reads\n",
              static_cast<unsigned long long>(num_files),
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(accesses));

  std::vector<std::byte> handles;
  handles.reserve(n * kHandleBytes);
  for (core::Key k : trace.all_blocks) {
    auto v = core::value_for_key(k, kHandleBytes);
    handles.insert(handles.end(), v.begin(), v.end());
  }

  // ---- B-tree file system ----
  pdm::DiskArray btree_disks(pdm::Geometry{16, 64, 16, 0});
  baselines::BTreeParams bp;
  bp.universe_size = std::uint64_t{1} << 40;
  bp.value_bytes = kHandleBytes;
  baselines::BTreeDict btree(btree_disks, 0, bp);
  for (std::size_t i = 0; i < n; ++i)
    btree.insert(trace.all_blocks[i],
                 std::span<const std::byte>(handles).subspan(
                     i * kHandleBytes, kHandleBytes));
  pdm::IoProbe btree_probe(btree_disks);
  std::uint64_t btree_hits = 0;
  for (core::Key a : trace.accesses) btree_hits += btree.lookup(a).found;
  double btree_cost = static_cast<double>(btree_probe.ios()) / accesses;

  // ---- dictionary file system (Theorem 6, one-probe) ----
  pdm::DiskArray dict_disks(pdm::Geometry{16, 64, 16, 0});
  pdm::DiskAllocator alloc;
  core::StaticDictParams sp;
  sp.universe_size = std::uint64_t{1} << 40;
  sp.capacity = n;
  sp.value_bytes = kHandleBytes;
  sp.degree = 16;
  sp.layout = core::StaticLayout::kIdentifiers;
  core::StaticDict dict(dict_disks, 0, alloc, sp, trace.all_blocks, handles);
  pdm::IoProbe dict_probe(dict_disks);
  std::uint64_t dict_hits = 0;
  for (core::Key a : trace.accesses) dict_hits += dict.lookup(a).found;
  double dict_cost = static_cast<double>(dict_probe.ios()) / accesses;

  std::printf("\n  %-28s %12s %16s\n", "file system implementation",
              "hits", "I/Os per read");
  std::printf("  %-28s %12llu %16.3f   (height %u)\n", "B-tree (fanout BD)",
              static_cast<unsigned long long>(btree_hits), btree_cost,
              btree.height());
  std::printf("  %-28s %12llu %16.3f\n", "expander dictionary (Thm 6)",
              static_cast<unsigned long long>(dict_hits), dict_cost);
  std::printf("\n  speedup: %.2fx fewer parallel I/Os per random block read\n",
              btree_cost / dict_cost);
  return (btree_hits == accesses && dict_hits == accesses) ? 0 : 1;
}
