// Persistent key-value store on the file-backed disk array.
//
// The deterministic dictionaries are reconstructible from (parameters, seed)
// alone — no index structure or central directory exists on disk (paper,
// §1.1) — so "opening" a store is just re-instantiating the structure over
// the same files. This example runs two phases in one process to emulate a
// restart: phase 1 creates a store under a directory and fills it; phase 2
// reopens it, recovers the size counter by scanning, verifies the data and
// keeps writing.
//
//   ./persistent_store [dir] [keys]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/basic_dict.hpp"
#include "pdm/file_backend.hpp"
#include "pdm/io_stats.hpp"
#include "workload/workload.hpp"

namespace {

using namespace pddict;

constexpr pdm::Geometry kGeom{16, 64, 16, 0};

core::BasicDictParams store_params(std::uint64_t capacity) {
  core::BasicDictParams p;
  p.universe_size = std::uint64_t{1} << 40;
  p.capacity = capacity;
  p.value_bytes = 16;
  p.degree = 16;
  p.seed = 0x5704e;  // part of the store's identity, like a superblock field
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path dir =
      argc > 1 ? argv[1]
               : std::filesystem::temp_directory_path() / "pddict_store";
  const std::uint64_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5000;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, n,
                                      std::uint64_t{1} << 40, 123);

  std::printf("persistent_store: %llu records under %s\n\n",
              static_cast<unsigned long long>(n), dir.c_str());
  {
    pdm::DiskArray disks(kGeom, pdm::Model::kParallelDisks,
                         std::make_unique<pdm::FileBackend>(kGeom, dir));
    core::BasicDict store(disks, 0, 0, store_params(n + 1000));
    for (core::Key k : keys) store.insert(k, core::value_for_key(k, 16));
    std::printf("  phase 1: wrote %llu records (%llu parallel I/Os), "
                "closing store\n",
                static_cast<unsigned long long>(store.size()),
                static_cast<unsigned long long>(disks.stats().parallel_ios));
  }  // files closed — "process exit"

  {
    pdm::DiskArray disks(kGeom, pdm::Model::kParallelDisks,
                         std::make_unique<pdm::FileBackend>(kGeom, dir));
    core::BasicDict store(disks, 0, 0, store_params(n + 1000));
    store.recover_size();
    std::printf("  phase 2: reopened, recovered size = %llu\n",
                static_cast<unsigned long long>(store.size()));
    std::uint64_t found = 0;
    pdm::IoProbe probe(disks);
    for (core::Key k : keys) found += store.lookup(k).found;
    std::printf("  verified %llu/%llu records at %.2f parallel I/Os per "
                "lookup\n",
                static_cast<unsigned long long>(found),
                static_cast<unsigned long long>(n),
                static_cast<double>(probe.ios()) / n);
    store.insert(42424242, core::value_for_key(42424242, 16));
    std::printf("  store remains writable after recovery\n");
    std::uint64_t bytes = 0;
    for (auto& entry : std::filesystem::directory_iterator(dir))
      bytes += std::filesystem::file_size(entry);
    std::printf("\n  on-disk footprint: %.1f MiB across %u disk files\n",
                static_cast<double>(bytes) / (1024 * 1024), kGeom.num_disks);
    std::filesystem::remove_all(dir);
    return found == n ? 0 : 1;
  }
}
