file(REMOVE_RECURSE
  "../bench/bench_bandwidth_curve"
  "../bench/bench_bandwidth_curve.pdb"
  "CMakeFiles/bench_bandwidth_curve.dir/bench_bandwidth_curve.cpp.o"
  "CMakeFiles/bench_bandwidth_curve.dir/bench_bandwidth_curve.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bandwidth_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
