# Empty compiler generated dependencies file for bench_bandwidth_curve.
# This may be replaced when dependencies are built.
