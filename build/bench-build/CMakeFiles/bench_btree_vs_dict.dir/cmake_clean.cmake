file(REMOVE_RECURSE
  "../bench/bench_btree_vs_dict"
  "../bench/bench_btree_vs_dict.pdb"
  "CMakeFiles/bench_btree_vs_dict.dir/bench_btree_vs_dict.cpp.o"
  "CMakeFiles/bench_btree_vs_dict.dir/bench_btree_vs_dict.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_btree_vs_dict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
