# Empty compiler generated dependencies file for bench_btree_vs_dict.
# This may be replaced when dependencies are built.
