file(REMOVE_RECURSE
  "../bench/bench_micro_expander"
  "../bench/bench_micro_expander.pdb"
  "CMakeFiles/bench_micro_expander.dir/bench_micro_expander.cpp.o"
  "CMakeFiles/bench_micro_expander.dir/bench_micro_expander.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_expander.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
