# Empty compiler generated dependencies file for bench_micro_expander.
# This may be replaced when dependencies are built.
