# Empty compiler generated dependencies file for bench_ablation_expander.
# This may be replaced when dependencies are built.
