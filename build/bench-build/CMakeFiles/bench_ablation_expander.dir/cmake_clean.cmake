file(REMOVE_RECURSE
  "../bench/bench_ablation_expander"
  "../bench/bench_ablation_expander.pdb"
  "CMakeFiles/bench_ablation_expander.dir/bench_ablation_expander.cpp.o"
  "CMakeFiles/bench_ablation_expander.dir/bench_ablation_expander.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_expander.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
