# Empty compiler generated dependencies file for bench_lemma3_load.
# This may be replaced when dependencies are built.
