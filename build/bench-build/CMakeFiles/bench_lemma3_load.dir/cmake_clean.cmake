file(REMOVE_RECURSE
  "../bench/bench_lemma3_load"
  "../bench/bench_lemma3_load.pdb"
  "CMakeFiles/bench_lemma3_load.dir/bench_lemma3_load.cpp.o"
  "CMakeFiles/bench_lemma3_load.dir/bench_lemma3_load.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma3_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
