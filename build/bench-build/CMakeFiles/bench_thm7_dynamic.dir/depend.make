# Empty dependencies file for bench_thm7_dynamic.
# This may be replaced when dependencies are built.
