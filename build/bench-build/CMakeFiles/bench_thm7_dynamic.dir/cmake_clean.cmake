file(REMOVE_RECURSE
  "../bench/bench_thm7_dynamic"
  "../bench/bench_thm7_dynamic.pdb"
  "CMakeFiles/bench_thm7_dynamic.dir/bench_thm7_dynamic.cpp.o"
  "CMakeFiles/bench_thm7_dynamic.dir/bench_thm7_dynamic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm7_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
