# Empty compiler generated dependencies file for bench_thm6_static.
# This may be replaced when dependencies are built.
