file(REMOVE_RECURSE
  "../bench/bench_thm6_static"
  "../bench/bench_thm6_static.pdb"
  "CMakeFiles/bench_thm6_static.dir/bench_thm6_static.cpp.o"
  "CMakeFiles/bench_thm6_static.dir/bench_thm6_static.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm6_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
