# Empty dependencies file for bench_expander_quality.
# This may be replaced when dependencies are built.
