file(REMOVE_RECURSE
  "../bench/bench_expander_quality"
  "../bench/bench_expander_quality.pdb"
  "CMakeFiles/bench_expander_quality.dir/bench_expander_quality.cpp.o"
  "CMakeFiles/bench_expander_quality.dir/bench_expander_quality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_expander_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
