file(REMOVE_RECURSE
  "../bench/bench_ablation_striping"
  "../bench/bench_ablation_striping.pdb"
  "CMakeFiles/bench_ablation_striping.dir/bench_ablation_striping.cpp.o"
  "CMakeFiles/bench_ablation_striping.dir/bench_ablation_striping.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
