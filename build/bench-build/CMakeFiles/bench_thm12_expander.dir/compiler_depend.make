# Empty compiler generated dependencies file for bench_thm12_expander.
# This may be replaced when dependencies are built.
