file(REMOVE_RECURSE
  "../bench/bench_thm12_expander"
  "../bench/bench_thm12_expander.pdb"
  "CMakeFiles/bench_thm12_expander.dir/bench_thm12_expander.cpp.o"
  "CMakeFiles/bench_thm12_expander.dir/bench_thm12_expander.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm12_expander.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
