# Empty dependencies file for bench_fig1_table.
# This may be replaced when dependencies are built.
