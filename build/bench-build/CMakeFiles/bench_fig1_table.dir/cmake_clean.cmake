file(REMOVE_RECURSE
  "../bench/bench_fig1_table"
  "../bench/bench_fig1_table.pdb"
  "CMakeFiles/bench_fig1_table.dir/bench_fig1_table.cpp.o"
  "CMakeFiles/bench_fig1_table.dir/bench_fig1_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
