file(REMOVE_RECURSE
  "../bench/bench_ablation_hashing"
  "../bench/bench_ablation_hashing.pdb"
  "CMakeFiles/bench_ablation_hashing.dir/bench_ablation_hashing.cpp.o"
  "CMakeFiles/bench_ablation_hashing.dir/bench_ablation_hashing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
