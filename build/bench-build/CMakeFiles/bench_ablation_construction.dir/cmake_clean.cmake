file(REMOVE_RECURSE
  "../bench/bench_ablation_construction"
  "../bench/bench_ablation_construction.pdb"
  "CMakeFiles/bench_ablation_construction.dir/bench_ablation_construction.cpp.o"
  "CMakeFiles/bench_ablation_construction.dir/bench_ablation_construction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
