# Empty compiler generated dependencies file for bench_ablation_construction.
# This may be replaced when dependencies are built.
