file(REMOVE_RECURSE
  "libpddict_expander.a"
)
