file(REMOVE_RECURSE
  "CMakeFiles/pddict_expander.dir/preprocessed.cpp.o"
  "CMakeFiles/pddict_expander.dir/preprocessed.cpp.o.d"
  "CMakeFiles/pddict_expander.dir/seeded_expander.cpp.o"
  "CMakeFiles/pddict_expander.dir/seeded_expander.cpp.o.d"
  "CMakeFiles/pddict_expander.dir/semi_explicit.cpp.o"
  "CMakeFiles/pddict_expander.dir/semi_explicit.cpp.o.d"
  "CMakeFiles/pddict_expander.dir/table_expander.cpp.o"
  "CMakeFiles/pddict_expander.dir/table_expander.cpp.o.d"
  "CMakeFiles/pddict_expander.dir/telescope.cpp.o"
  "CMakeFiles/pddict_expander.dir/telescope.cpp.o.d"
  "CMakeFiles/pddict_expander.dir/verify.cpp.o"
  "CMakeFiles/pddict_expander.dir/verify.cpp.o.d"
  "libpddict_expander.a"
  "libpddict_expander.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pddict_expander.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
