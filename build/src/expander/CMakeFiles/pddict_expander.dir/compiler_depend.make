# Empty compiler generated dependencies file for pddict_expander.
# This may be replaced when dependencies are built.
