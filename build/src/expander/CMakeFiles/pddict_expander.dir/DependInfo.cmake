
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expander/preprocessed.cpp" "src/expander/CMakeFiles/pddict_expander.dir/preprocessed.cpp.o" "gcc" "src/expander/CMakeFiles/pddict_expander.dir/preprocessed.cpp.o.d"
  "/root/repo/src/expander/seeded_expander.cpp" "src/expander/CMakeFiles/pddict_expander.dir/seeded_expander.cpp.o" "gcc" "src/expander/CMakeFiles/pddict_expander.dir/seeded_expander.cpp.o.d"
  "/root/repo/src/expander/semi_explicit.cpp" "src/expander/CMakeFiles/pddict_expander.dir/semi_explicit.cpp.o" "gcc" "src/expander/CMakeFiles/pddict_expander.dir/semi_explicit.cpp.o.d"
  "/root/repo/src/expander/table_expander.cpp" "src/expander/CMakeFiles/pddict_expander.dir/table_expander.cpp.o" "gcc" "src/expander/CMakeFiles/pddict_expander.dir/table_expander.cpp.o.d"
  "/root/repo/src/expander/telescope.cpp" "src/expander/CMakeFiles/pddict_expander.dir/telescope.cpp.o" "gcc" "src/expander/CMakeFiles/pddict_expander.dir/telescope.cpp.o.d"
  "/root/repo/src/expander/verify.cpp" "src/expander/CMakeFiles/pddict_expander.dir/verify.cpp.o" "gcc" "src/expander/CMakeFiles/pddict_expander.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pddict_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
