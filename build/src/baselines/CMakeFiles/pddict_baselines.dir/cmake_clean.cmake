file(REMOVE_RECURSE
  "CMakeFiles/pddict_baselines.dir/btree.cpp.o"
  "CMakeFiles/pddict_baselines.dir/btree.cpp.o.d"
  "CMakeFiles/pddict_baselines.dir/cuckoo_dict.cpp.o"
  "CMakeFiles/pddict_baselines.dir/cuckoo_dict.cpp.o.d"
  "CMakeFiles/pddict_baselines.dir/dhp_dict.cpp.o"
  "CMakeFiles/pddict_baselines.dir/dhp_dict.cpp.o.d"
  "CMakeFiles/pddict_baselines.dir/striped_hash.cpp.o"
  "CMakeFiles/pddict_baselines.dir/striped_hash.cpp.o.d"
  "CMakeFiles/pddict_baselines.dir/trick_dict.cpp.o"
  "CMakeFiles/pddict_baselines.dir/trick_dict.cpp.o.d"
  "libpddict_baselines.a"
  "libpddict_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pddict_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
