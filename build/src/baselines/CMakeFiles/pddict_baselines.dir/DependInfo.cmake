
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/btree.cpp" "src/baselines/CMakeFiles/pddict_baselines.dir/btree.cpp.o" "gcc" "src/baselines/CMakeFiles/pddict_baselines.dir/btree.cpp.o.d"
  "/root/repo/src/baselines/cuckoo_dict.cpp" "src/baselines/CMakeFiles/pddict_baselines.dir/cuckoo_dict.cpp.o" "gcc" "src/baselines/CMakeFiles/pddict_baselines.dir/cuckoo_dict.cpp.o.d"
  "/root/repo/src/baselines/dhp_dict.cpp" "src/baselines/CMakeFiles/pddict_baselines.dir/dhp_dict.cpp.o" "gcc" "src/baselines/CMakeFiles/pddict_baselines.dir/dhp_dict.cpp.o.d"
  "/root/repo/src/baselines/striped_hash.cpp" "src/baselines/CMakeFiles/pddict_baselines.dir/striped_hash.cpp.o" "gcc" "src/baselines/CMakeFiles/pddict_baselines.dir/striped_hash.cpp.o.d"
  "/root/repo/src/baselines/trick_dict.cpp" "src/baselines/CMakeFiles/pddict_baselines.dir/trick_dict.cpp.o" "gcc" "src/baselines/CMakeFiles/pddict_baselines.dir/trick_dict.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pddict_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pdm/CMakeFiles/pddict_pdm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pddict_util.dir/DependInfo.cmake"
  "/root/repo/build/src/expander/CMakeFiles/pddict_expander.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
