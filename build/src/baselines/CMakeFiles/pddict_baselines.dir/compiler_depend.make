# Empty compiler generated dependencies file for pddict_baselines.
# This may be replaced when dependencies are built.
