file(REMOVE_RECURSE
  "libpddict_baselines.a"
)
