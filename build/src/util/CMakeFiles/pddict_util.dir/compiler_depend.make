# Empty compiler generated dependencies file for pddict_util.
# This may be replaced when dependencies are built.
