file(REMOVE_RECURSE
  "libpddict_util.a"
)
