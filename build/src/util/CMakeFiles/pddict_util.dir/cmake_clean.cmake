file(REMOVE_RECURSE
  "CMakeFiles/pddict_util.dir/bits.cpp.o"
  "CMakeFiles/pddict_util.dir/bits.cpp.o.d"
  "CMakeFiles/pddict_util.dir/hash.cpp.o"
  "CMakeFiles/pddict_util.dir/hash.cpp.o.d"
  "libpddict_util.a"
  "libpddict_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pddict_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
