file(REMOVE_RECURSE
  "CMakeFiles/pddict_workload.dir/workload.cpp.o"
  "CMakeFiles/pddict_workload.dir/workload.cpp.o.d"
  "libpddict_workload.a"
  "libpddict_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pddict_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
