file(REMOVE_RECURSE
  "libpddict_workload.a"
)
