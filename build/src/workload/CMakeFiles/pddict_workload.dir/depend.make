# Empty dependencies file for pddict_workload.
# This may be replaced when dependencies are built.
