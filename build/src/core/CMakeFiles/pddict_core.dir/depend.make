# Empty dependencies file for pddict_core.
# This may be replaced when dependencies are built.
