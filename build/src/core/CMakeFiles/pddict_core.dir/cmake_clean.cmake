file(REMOVE_RECURSE
  "CMakeFiles/pddict_core.dir/basic_dict.cpp.o"
  "CMakeFiles/pddict_core.dir/basic_dict.cpp.o.d"
  "CMakeFiles/pddict_core.dir/bucket_dict.cpp.o"
  "CMakeFiles/pddict_core.dir/bucket_dict.cpp.o.d"
  "CMakeFiles/pddict_core.dir/dictionary.cpp.o"
  "CMakeFiles/pddict_core.dir/dictionary.cpp.o.d"
  "CMakeFiles/pddict_core.dir/dynamic_dict.cpp.o"
  "CMakeFiles/pddict_core.dir/dynamic_dict.cpp.o.d"
  "CMakeFiles/pddict_core.dir/field_array.cpp.o"
  "CMakeFiles/pddict_core.dir/field_array.cpp.o.d"
  "CMakeFiles/pddict_core.dir/full_dict.cpp.o"
  "CMakeFiles/pddict_core.dir/full_dict.cpp.o.d"
  "CMakeFiles/pddict_core.dir/full_dynamic_dict.cpp.o"
  "CMakeFiles/pddict_core.dir/full_dynamic_dict.cpp.o.d"
  "CMakeFiles/pddict_core.dir/load_balance.cpp.o"
  "CMakeFiles/pddict_core.dir/load_balance.cpp.o.d"
  "CMakeFiles/pddict_core.dir/manifest.cpp.o"
  "CMakeFiles/pddict_core.dir/manifest.cpp.o.d"
  "CMakeFiles/pddict_core.dir/multilevel_wide.cpp.o"
  "CMakeFiles/pddict_core.dir/multilevel_wide.cpp.o.d"
  "CMakeFiles/pddict_core.dir/parallel_group.cpp.o"
  "CMakeFiles/pddict_core.dir/parallel_group.cpp.o.d"
  "CMakeFiles/pddict_core.dir/pointer_dict.cpp.o"
  "CMakeFiles/pddict_core.dir/pointer_dict.cpp.o.d"
  "CMakeFiles/pddict_core.dir/static_dict.cpp.o"
  "CMakeFiles/pddict_core.dir/static_dict.cpp.o.d"
  "CMakeFiles/pddict_core.dir/wide_dict.cpp.o"
  "CMakeFiles/pddict_core.dir/wide_dict.cpp.o.d"
  "libpddict_core.a"
  "libpddict_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pddict_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
