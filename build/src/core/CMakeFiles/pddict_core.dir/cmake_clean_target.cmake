file(REMOVE_RECURSE
  "libpddict_core.a"
)
