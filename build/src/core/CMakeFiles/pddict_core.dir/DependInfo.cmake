
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/basic_dict.cpp" "src/core/CMakeFiles/pddict_core.dir/basic_dict.cpp.o" "gcc" "src/core/CMakeFiles/pddict_core.dir/basic_dict.cpp.o.d"
  "/root/repo/src/core/bucket_dict.cpp" "src/core/CMakeFiles/pddict_core.dir/bucket_dict.cpp.o" "gcc" "src/core/CMakeFiles/pddict_core.dir/bucket_dict.cpp.o.d"
  "/root/repo/src/core/dictionary.cpp" "src/core/CMakeFiles/pddict_core.dir/dictionary.cpp.o" "gcc" "src/core/CMakeFiles/pddict_core.dir/dictionary.cpp.o.d"
  "/root/repo/src/core/dynamic_dict.cpp" "src/core/CMakeFiles/pddict_core.dir/dynamic_dict.cpp.o" "gcc" "src/core/CMakeFiles/pddict_core.dir/dynamic_dict.cpp.o.d"
  "/root/repo/src/core/field_array.cpp" "src/core/CMakeFiles/pddict_core.dir/field_array.cpp.o" "gcc" "src/core/CMakeFiles/pddict_core.dir/field_array.cpp.o.d"
  "/root/repo/src/core/full_dict.cpp" "src/core/CMakeFiles/pddict_core.dir/full_dict.cpp.o" "gcc" "src/core/CMakeFiles/pddict_core.dir/full_dict.cpp.o.d"
  "/root/repo/src/core/full_dynamic_dict.cpp" "src/core/CMakeFiles/pddict_core.dir/full_dynamic_dict.cpp.o" "gcc" "src/core/CMakeFiles/pddict_core.dir/full_dynamic_dict.cpp.o.d"
  "/root/repo/src/core/load_balance.cpp" "src/core/CMakeFiles/pddict_core.dir/load_balance.cpp.o" "gcc" "src/core/CMakeFiles/pddict_core.dir/load_balance.cpp.o.d"
  "/root/repo/src/core/manifest.cpp" "src/core/CMakeFiles/pddict_core.dir/manifest.cpp.o" "gcc" "src/core/CMakeFiles/pddict_core.dir/manifest.cpp.o.d"
  "/root/repo/src/core/multilevel_wide.cpp" "src/core/CMakeFiles/pddict_core.dir/multilevel_wide.cpp.o" "gcc" "src/core/CMakeFiles/pddict_core.dir/multilevel_wide.cpp.o.d"
  "/root/repo/src/core/parallel_group.cpp" "src/core/CMakeFiles/pddict_core.dir/parallel_group.cpp.o" "gcc" "src/core/CMakeFiles/pddict_core.dir/parallel_group.cpp.o.d"
  "/root/repo/src/core/pointer_dict.cpp" "src/core/CMakeFiles/pddict_core.dir/pointer_dict.cpp.o" "gcc" "src/core/CMakeFiles/pddict_core.dir/pointer_dict.cpp.o.d"
  "/root/repo/src/core/static_dict.cpp" "src/core/CMakeFiles/pddict_core.dir/static_dict.cpp.o" "gcc" "src/core/CMakeFiles/pddict_core.dir/static_dict.cpp.o.d"
  "/root/repo/src/core/wide_dict.cpp" "src/core/CMakeFiles/pddict_core.dir/wide_dict.cpp.o" "gcc" "src/core/CMakeFiles/pddict_core.dir/wide_dict.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pdm/CMakeFiles/pddict_pdm.dir/DependInfo.cmake"
  "/root/repo/build/src/expander/CMakeFiles/pddict_expander.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pddict_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
