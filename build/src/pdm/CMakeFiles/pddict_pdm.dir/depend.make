# Empty dependencies file for pddict_pdm.
# This may be replaced when dependencies are built.
