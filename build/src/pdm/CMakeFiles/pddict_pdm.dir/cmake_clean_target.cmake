file(REMOVE_RECURSE
  "libpddict_pdm.a"
)
