file(REMOVE_RECURSE
  "CMakeFiles/pddict_pdm.dir/disk_array.cpp.o"
  "CMakeFiles/pddict_pdm.dir/disk_array.cpp.o.d"
  "CMakeFiles/pddict_pdm.dir/ext_sort.cpp.o"
  "CMakeFiles/pddict_pdm.dir/ext_sort.cpp.o.d"
  "CMakeFiles/pddict_pdm.dir/extent_store.cpp.o"
  "CMakeFiles/pddict_pdm.dir/extent_store.cpp.o.d"
  "CMakeFiles/pddict_pdm.dir/file_backend.cpp.o"
  "CMakeFiles/pddict_pdm.dir/file_backend.cpp.o.d"
  "CMakeFiles/pddict_pdm.dir/record_stream.cpp.o"
  "CMakeFiles/pddict_pdm.dir/record_stream.cpp.o.d"
  "CMakeFiles/pddict_pdm.dir/striped_view.cpp.o"
  "CMakeFiles/pddict_pdm.dir/striped_view.cpp.o.d"
  "libpddict_pdm.a"
  "libpddict_pdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pddict_pdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
