
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdm/disk_array.cpp" "src/pdm/CMakeFiles/pddict_pdm.dir/disk_array.cpp.o" "gcc" "src/pdm/CMakeFiles/pddict_pdm.dir/disk_array.cpp.o.d"
  "/root/repo/src/pdm/ext_sort.cpp" "src/pdm/CMakeFiles/pddict_pdm.dir/ext_sort.cpp.o" "gcc" "src/pdm/CMakeFiles/pddict_pdm.dir/ext_sort.cpp.o.d"
  "/root/repo/src/pdm/extent_store.cpp" "src/pdm/CMakeFiles/pddict_pdm.dir/extent_store.cpp.o" "gcc" "src/pdm/CMakeFiles/pddict_pdm.dir/extent_store.cpp.o.d"
  "/root/repo/src/pdm/file_backend.cpp" "src/pdm/CMakeFiles/pddict_pdm.dir/file_backend.cpp.o" "gcc" "src/pdm/CMakeFiles/pddict_pdm.dir/file_backend.cpp.o.d"
  "/root/repo/src/pdm/record_stream.cpp" "src/pdm/CMakeFiles/pddict_pdm.dir/record_stream.cpp.o" "gcc" "src/pdm/CMakeFiles/pddict_pdm.dir/record_stream.cpp.o.d"
  "/root/repo/src/pdm/striped_view.cpp" "src/pdm/CMakeFiles/pddict_pdm.dir/striped_view.cpp.o" "gcc" "src/pdm/CMakeFiles/pddict_pdm.dir/striped_view.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pddict_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
