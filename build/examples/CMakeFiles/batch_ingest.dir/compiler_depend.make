# Empty compiler generated dependencies file for batch_ingest.
# This may be replaced when dependencies are built.
