file(REMOVE_RECURSE
  "CMakeFiles/batch_ingest.dir/batch_ingest.cpp.o"
  "CMakeFiles/batch_ingest.dir/batch_ingest.cpp.o.d"
  "batch_ingest"
  "batch_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
