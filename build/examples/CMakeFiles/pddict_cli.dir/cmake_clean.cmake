file(REMOVE_RECURSE
  "CMakeFiles/pddict_cli.dir/pddict_cli.cpp.o"
  "CMakeFiles/pddict_cli.dir/pddict_cli.cpp.o.d"
  "pddict_cli"
  "pddict_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pddict_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
