# Empty dependencies file for pddict_cli.
# This may be replaced when dependencies are built.
