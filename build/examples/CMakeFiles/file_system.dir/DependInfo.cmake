
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/file_system.cpp" "examples/CMakeFiles/file_system.dir/file_system.cpp.o" "gcc" "examples/CMakeFiles/file_system.dir/file_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/pddict_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pddict_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pddict_core.dir/DependInfo.cmake"
  "/root/repo/build/src/expander/CMakeFiles/pddict_expander.dir/DependInfo.cmake"
  "/root/repo/build/src/pdm/CMakeFiles/pddict_pdm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pddict_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
