file(REMOVE_RECURSE
  "CMakeFiles/file_system.dir/file_system.cpp.o"
  "CMakeFiles/file_system.dir/file_system.cpp.o.d"
  "file_system"
  "file_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
