# Empty dependencies file for file_system.
# This may be replaced when dependencies are built.
