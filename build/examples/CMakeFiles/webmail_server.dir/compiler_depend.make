# Empty compiler generated dependencies file for webmail_server.
# This may be replaced when dependencies are built.
