file(REMOVE_RECURSE
  "CMakeFiles/webmail_server.dir/webmail_server.cpp.o"
  "CMakeFiles/webmail_server.dir/webmail_server.cpp.o.d"
  "webmail_server"
  "webmail_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webmail_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
