# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/pdm_test[1]_include.cmake")
include("/root/repo/build/tests/expander_test[1]_include.cmake")
include("/root/repo/build/tests/load_balance_test[1]_include.cmake")
include("/root/repo/build/tests/basic_dict_test[1]_include.cmake")
include("/root/repo/build/tests/static_dict_test[1]_include.cmake")
include("/root/repo/build/tests/dynamic_dict_test[1]_include.cmake")
include("/root/repo/build/tests/full_dict_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/conformance_test[1]_include.cmake")
include("/root/repo/build/tests/field_array_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/pointer_dict_test[1]_include.cmake")
include("/root/repo/build/tests/file_backend_test[1]_include.cmake")
include("/root/repo/build/tests/concurrent_test[1]_include.cmake")
include("/root/repo/build/tests/full_dynamic_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/manifest_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
