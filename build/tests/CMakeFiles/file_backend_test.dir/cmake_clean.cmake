file(REMOVE_RECURSE
  "CMakeFiles/file_backend_test.dir/file_backend_test.cpp.o"
  "CMakeFiles/file_backend_test.dir/file_backend_test.cpp.o.d"
  "file_backend_test"
  "file_backend_test.pdb"
  "file_backend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
