# Empty compiler generated dependencies file for full_dict_test.
# This may be replaced when dependencies are built.
