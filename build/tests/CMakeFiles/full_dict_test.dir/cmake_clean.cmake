file(REMOVE_RECURSE
  "CMakeFiles/full_dict_test.dir/full_dict_test.cpp.o"
  "CMakeFiles/full_dict_test.dir/full_dict_test.cpp.o.d"
  "full_dict_test"
  "full_dict_test.pdb"
  "full_dict_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_dict_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
