# Empty dependencies file for static_dict_test.
# This may be replaced when dependencies are built.
