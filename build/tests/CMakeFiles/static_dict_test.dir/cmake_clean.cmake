file(REMOVE_RECURSE
  "CMakeFiles/static_dict_test.dir/static_dict_test.cpp.o"
  "CMakeFiles/static_dict_test.dir/static_dict_test.cpp.o.d"
  "static_dict_test"
  "static_dict_test.pdb"
  "static_dict_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_dict_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
