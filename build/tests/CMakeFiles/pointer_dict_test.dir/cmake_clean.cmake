file(REMOVE_RECURSE
  "CMakeFiles/pointer_dict_test.dir/pointer_dict_test.cpp.o"
  "CMakeFiles/pointer_dict_test.dir/pointer_dict_test.cpp.o.d"
  "pointer_dict_test"
  "pointer_dict_test.pdb"
  "pointer_dict_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pointer_dict_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
