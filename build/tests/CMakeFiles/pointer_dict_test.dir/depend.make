# Empty dependencies file for pointer_dict_test.
# This may be replaced when dependencies are built.
