# Empty compiler generated dependencies file for full_dynamic_test.
# This may be replaced when dependencies are built.
