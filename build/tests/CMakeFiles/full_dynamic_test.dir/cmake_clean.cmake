file(REMOVE_RECURSE
  "CMakeFiles/full_dynamic_test.dir/full_dynamic_test.cpp.o"
  "CMakeFiles/full_dynamic_test.dir/full_dynamic_test.cpp.o.d"
  "full_dynamic_test"
  "full_dynamic_test.pdb"
  "full_dynamic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_dynamic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
