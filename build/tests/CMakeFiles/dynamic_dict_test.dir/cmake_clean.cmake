file(REMOVE_RECURSE
  "CMakeFiles/dynamic_dict_test.dir/dynamic_dict_test.cpp.o"
  "CMakeFiles/dynamic_dict_test.dir/dynamic_dict_test.cpp.o.d"
  "dynamic_dict_test"
  "dynamic_dict_test.pdb"
  "dynamic_dict_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_dict_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
