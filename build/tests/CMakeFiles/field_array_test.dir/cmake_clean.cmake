file(REMOVE_RECURSE
  "CMakeFiles/field_array_test.dir/field_array_test.cpp.o"
  "CMakeFiles/field_array_test.dir/field_array_test.cpp.o.d"
  "field_array_test"
  "field_array_test.pdb"
  "field_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
