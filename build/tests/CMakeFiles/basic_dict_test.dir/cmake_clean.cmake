file(REMOVE_RECURSE
  "CMakeFiles/basic_dict_test.dir/basic_dict_test.cpp.o"
  "CMakeFiles/basic_dict_test.dir/basic_dict_test.cpp.o.d"
  "basic_dict_test"
  "basic_dict_test.pdb"
  "basic_dict_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/basic_dict_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
