# Empty compiler generated dependencies file for basic_dict_test.
# This may be replaced when dependencies are built.
