file(REMOVE_RECURSE
  "CMakeFiles/load_balance_test.dir/load_balance_test.cpp.o"
  "CMakeFiles/load_balance_test.dir/load_balance_test.cpp.o.d"
  "load_balance_test"
  "load_balance_test.pdb"
  "load_balance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_balance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
