file(REMOVE_RECURSE
  "CMakeFiles/pdm_test.dir/pdm_test.cpp.o"
  "CMakeFiles/pdm_test.dir/pdm_test.cpp.o.d"
  "pdm_test"
  "pdm_test.pdb"
  "pdm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
