# Empty dependencies file for pdm_test.
# This may be replaced when dependencies are built.
