// Edge-case coverage: striped-view misuse, record streams at block
// boundaries, manifest corruption, multi-level parameter sweeps, and
// degenerate geometries.
#include <gtest/gtest.h>

#include "core/manifest.hpp"
#include "core/multilevel_wide.hpp"
#include "pdm/block.hpp"
#include "pdm/record_stream.hpp"
#include "pdm/striped_view.hpp"
#include "workload/workload.hpp"

namespace pddict {
namespace {

TEST(StripedViewEdge, SizeMismatchAndRangeErrors) {
  pdm::DiskArray disks(pdm::Geometry{4, 8, 8, 0});
  pdm::StripedView view(disks, 0, 3);
  EXPECT_THROW(view.write(0, std::vector<std::byte>(7)),
               std::invalid_argument);
  EXPECT_THROW(view.write(3, std::vector<std::byte>(view.logical_block_bytes())),
               std::out_of_range);
  // Unbounded view accepts any index.
  pdm::StripedView unbounded(disks, 0, 0);
  EXPECT_NO_THROW(unbounded.read(1000000));
}

TEST(RecordStreamEdge, ExactBlockBoundaryAndPartialTail) {
  pdm::DiskArray disks(pdm::Geometry{2, 8, 8, 0});  // stripe = 128 B
  pdm::StripedView view(disks, 0, 0);
  const std::size_t rec = 32;  // exactly 4 records per logical block
  for (std::uint64_t n : {4ull, 8ull, 5ull, 1ull}) {
    pdm::RecordWriter w(view, 0, rec);
    std::vector<std::byte> buf(rec);
    for (std::uint64_t i = 0; i < n; ++i) {
      pdm::store_pod<std::uint64_t>(buf, 0, i * 7 + n);
      w.push(buf);
    }
    w.finish();
    EXPECT_EQ(w.records_written(), n);
    EXPECT_EQ(w.blocks_used(), (n + 3) / 4);
    pdm::RecordReader r(view, 0, n, rec);
    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_FALSE(r.exhausted());
      EXPECT_EQ(pdm::load_pod<std::uint64_t>(
                    pdm::Block(r.head().begin(), r.head().end()), 0),
                i * 7 + n);
      r.pop();
    }
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(ManifestEdge, CorruptVersionDetected) {
  pdm::DiskArray disks(pdm::Geometry{4, 16, 8, 0});
  core::StoreManifest m;
  m.params.universe_size = 1 << 20;
  m.params.capacity = 10;
  m.params.degree = 8;
  core::write_manifest(disks, m);
  // Mangle the version field.
  pdm::Block block = disks.peek({0, 0});
  pdm::store_pod<std::uint32_t>(block, 8, 999);
  disks.poke({0, 0}, block);
  EXPECT_THROW(core::read_manifest(disks), std::runtime_error);
  // Mangle the magic: treated as a fresh disk, not an error.
  pdm::store_pod<std::uint64_t>(block, 0, 0);
  disks.poke({0, 0}, block);
  EXPECT_FALSE(core::read_manifest(disks).has_value());
}

TEST(ManifestEdge, TooSmallBlocksRejected) {
  pdm::DiskArray disks(pdm::Geometry{4, 4, 8, 0});  // 32-byte blocks
  core::StoreManifest m;
  EXPECT_THROW(core::write_manifest(disks, m), std::invalid_argument);
}

struct MlCase {
  std::uint32_t levels;
  double cap_fraction;
  std::size_t sigma;
};

class MultiLevelSweep : public ::testing::TestWithParam<MlCase> {};

TEST_P(MultiLevelSweep, OneProbeFullBandwidthAcrossParameters) {
  auto [levels, cap, sigma] = GetParam();
  pdm::DiskArray disks(pdm::Geometry{16 * levels, 64, 16, 0});
  pdm::DiskAllocator alloc;
  core::MultiLevelWideParams p;
  p.universe_size = std::uint64_t{1} << 36;
  p.capacity = 400;
  p.value_bytes = sigma;
  p.degree = 16;
  p.levels = levels;
  p.cap_fraction = cap;
  core::MultiLevelWideDict dict(disks, 0, alloc, p);
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, 400,
                                      p.universe_size, levels * 100 + sigma);
  for (core::Key k : keys) {
    pdm::IoProbe probe(disks);
    ASSERT_TRUE(dict.insert(k, core::value_for_key(k, sigma)));
    ASSERT_EQ(probe.ios(), 2u);
  }
  for (core::Key k : keys) {
    pdm::IoProbe probe(disks);
    auto r = dict.lookup(k);
    ASSERT_EQ(probe.ios(), 1u);
    ASSERT_TRUE(r.found);
    ASSERT_EQ(r.value, core::value_for_key(k, sigma));
  }
}

INSTANTIATE_TEST_SUITE_P(Params, MultiLevelSweep,
                         ::testing::Values(MlCase{2, 0.5, 64},
                                           MlCase{3, 0.5, 200},
                                           MlCase{3, 0.25, 64},
                                           MlCase{4, 0.4, 400}));

TEST(GeometryEdge, SingleByteItemsWork) {
  // item_bytes = 1: blocks of 256 single-byte items.
  pdm::DiskArray disks(pdm::Geometry{16, 256, 1, 0});
  core::BasicDictParams p;
  p.universe_size = 1 << 20;
  p.capacity = 200;
  p.value_bytes = 8;
  p.degree = 16;
  core::BasicDict dict(disks, 0, 0, p);
  for (core::Key k = 1; k <= 200; ++k)
    ASSERT_TRUE(dict.insert(k, core::value_for_key(k, 8)));
  for (core::Key k = 1; k <= 200; ++k)
    ASSERT_TRUE(dict.lookup(k).found);
}

TEST(GeometryEdge, BlocksTooSmallForRecordRejected) {
  pdm::DiskArray disks(pdm::Geometry{16, 1, 8, 0});  // 8-byte blocks
  core::BasicDictParams p;
  p.universe_size = 1 << 20;
  p.capacity = 10;
  p.value_bytes = 64;
  p.degree = 16;
  EXPECT_THROW(core::BasicDict(disks, 0, 0, p), std::invalid_argument);
}

}  // namespace
}  // namespace pddict
