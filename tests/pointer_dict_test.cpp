// Tests for the extent store and the pointer-indirection dictionary
// (the §4.1 "satellite data via pointer, one extra I/O" remark).
#include <gtest/gtest.h>

#include "core/pointer_dict.hpp"
#include "pdm/extent_store.hpp"
#include "pdm/io_stats.hpp"
#include "workload/workload.hpp"

namespace pddict {
namespace {

pdm::DiskArray make_disks() {
  return pdm::DiskArray(pdm::Geometry{16, 64, 16, 0});  // stripe = 16 KiB
}

TEST(ExtentStore, AppendReadRoundTripVariousSizes) {
  auto disks = make_disks();
  pdm::ExtentStore store(pdm::StripedView(disks, 0, 1 << 20));
  std::vector<std::vector<std::byte>> payloads;
  std::vector<std::uint64_t> ids;
  for (std::size_t size : {std::size_t{1}, std::size_t{100}, std::size_t{16384}, std::size_t{16385}, std::size_t{50000}}) {
    payloads.push_back(core::value_for_key(size, size));
    ids.push_back(store.append(payloads.back()));
  }
  for (std::size_t i = 0; i < ids.size(); ++i)
    EXPECT_EQ(store.read(ids[i]), payloads[i]) << i;
  EXPECT_EQ(store.num_extents(), 5u);
  EXPECT_THROW(store.read(99), std::out_of_range);
  EXPECT_THROW(store.append({}), std::invalid_argument);
}

TEST(ExtentStore, IoCostIsCeilOverStripe) {
  auto disks = make_disks();
  pdm::ExtentStore store(pdm::StripedView(disks, 0, 1 << 20));
  auto small = core::value_for_key(1, 1000);       // < 1 stripe
  auto big = core::value_for_key(2, 40000);        // 3 stripes
  pdm::IoProbe p1(disks);
  std::uint64_t id1 = store.append(small);
  EXPECT_EQ(p1.ios(), 1u);
  pdm::IoProbe p2(disks);
  std::uint64_t id2 = store.append(big);
  EXPECT_EQ(p2.ios(), 3u);
  pdm::IoProbe p3(disks);
  store.read(id1);
  EXPECT_EQ(p3.ios(), 1u);
  pdm::IoProbe p4(disks);
  store.read(id2);
  EXPECT_EQ(p4.ios(), 3u);
}

TEST(PointerDict, TwoIoLookupsForStripeSizedRecords) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  core::PointerDictParams p;
  p.universe_size = std::uint64_t{1} << 40;
  p.capacity = 300;
  p.degree = 16;
  core::PointerDict dict(disks, 0, alloc, p);
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, 300,
                                      p.universe_size, 4);
  // Variable-size records, up to one stripe.
  for (std::size_t i = 0; i < keys.size(); ++i) {
    std::size_t size = 100 + (i * 53) % 16000;
    pdm::IoProbe probe(disks);
    ASSERT_TRUE(dict.insert(keys[i], core::value_for_key(keys[i], size)));
    EXPECT_EQ(probe.ios(), 3u) << "read + extent write + index write";
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    std::size_t size = 100 + (i * 53) % 16000;
    pdm::IoProbe probe(disks);
    auto r = dict.lookup(keys[i]);
    EXPECT_EQ(probe.ios(), 2u) << "pointer + one extent stripe";
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.value, core::value_for_key(keys[i], size));
  }
  // Misses cost only the pointer probe.
  pdm::IoProbe probe(disks);
  EXPECT_FALSE(dict.lookup(123).found);
  EXPECT_EQ(probe.ios(), 1u);
}

TEST(PointerDict, DuplicateDoesNotLeakExtents) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  core::PointerDictParams p;
  p.universe_size = 1 << 20;
  p.capacity = 10;
  p.degree = 16;
  core::PointerDict dict(disks, 0, alloc, p);
  EXPECT_TRUE(dict.insert(7, core::value_for_key(7, 500)));
  std::uint64_t extents_before = dict.extents().num_extents();
  EXPECT_FALSE(dict.insert(7, core::value_for_key(7, 999)));
  EXPECT_EQ(dict.extents().num_extents(), extents_before);
  EXPECT_EQ(dict.lookup(7).value, core::value_for_key(7, 500));
  EXPECT_TRUE(dict.erase(7));
  EXPECT_FALSE(dict.lookup(7).found);
}

TEST(PointerDict, UnboundedRecordsScaleLinearly) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  core::PointerDictParams p;
  p.universe_size = 1 << 20;
  p.capacity = 4;
  p.degree = 16;
  core::PointerDict dict(disks, 0, alloc, p);
  // A 10-stripe record: far beyond every Figure 1 in-dictionary bandwidth.
  std::size_t size = 10 * 16384;
  dict.insert(1, core::value_for_key(1, size));
  pdm::IoProbe probe(disks);
  auto r = dict.lookup(1);
  EXPECT_EQ(probe.ios(), 11u);  // 1 pointer + 10 stripes
  EXPECT_EQ(r.value.size(), size);
}

}  // namespace
}  // namespace pddict
