// Dictionary conformance suite: one reference-model battery applied to EVERY
// dynamic Dictionary implementation in the library — the paper's structures
// and all baselines. Each implementation must behave exactly like a
// std::unordered_map under an arbitrary seeded interleaving of inserts,
// lookups and erases (where supported).
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <unordered_map>

#include "baselines/btree.hpp"
#include "baselines/cuckoo_dict.hpp"
#include "baselines/dhp_dict.hpp"
#include "baselines/striped_hash.hpp"
#include "baselines/trick_dict.hpp"
#include "core/basic_dict.hpp"
#include "core/bucket_dict.hpp"
#include "core/dynamic_dict.hpp"
#include "core/full_dict.hpp"
#include "core/full_dynamic_dict.hpp"
#include "core/multilevel_wide.hpp"
#include "core/parallel_group.hpp"
#include "core/wide_dict.hpp"
#include "pdm/allocator.hpp"
#include "util/prng.hpp"

namespace pddict {
namespace {

constexpr std::uint64_t kUniverse = std::uint64_t{1} << 36;
constexpr std::uint64_t kCapacity = 512;
constexpr std::size_t kValueBytes = 16;

struct Fixture {
  std::unique_ptr<pdm::DiskArray> disks;
  std::unique_ptr<pdm::DiskAllocator> alloc;
  std::unique_ptr<core::Dictionary> dict;
};

struct Impl {
  const char* name;
  std::function<Fixture()> make;
};

Fixture make_disks_fixture(std::uint32_t num_disks) {
  Fixture f;
  f.disks = std::make_unique<pdm::DiskArray>(
      pdm::Geometry{num_disks, 64, 16, 0});
  f.alloc = std::make_unique<pdm::DiskAllocator>();
  return f;
}

const Impl kImpls[] = {
    {"BasicDict",
     [] {
       Fixture f = make_disks_fixture(16);
       core::BasicDictParams p;
       p.universe_size = kUniverse;
       p.capacity = kCapacity;
       p.value_bytes = kValueBytes;
       p.degree = 16;
       f.dict = std::make_unique<core::BasicDict>(*f.disks, 0, 0, p);
       return f;
     }},
    {"BucketDict",
     [] {
       Fixture f;
       f.disks = std::make_unique<pdm::DiskArray>(pdm::Geometry{16, 4, 16, 0});
       f.alloc = std::make_unique<pdm::DiskAllocator>();
       f.dict = std::make_unique<core::BasicDict>(
           *f.disks, 0, 0,
           core::bucket_dict_params(kUniverse, kCapacity, kValueBytes,
                                    f.disks->geometry(), 16, 16));
       return f;
     }},
    {"WideDict",
     [] {
       Fixture f = make_disks_fixture(16);
       core::WideDictParams p;
       p.universe_size = kUniverse;
       p.capacity = kCapacity;
       p.value_bytes = kValueBytes;
       p.degree = 16;
       f.dict = std::make_unique<core::WideDict>(*f.disks, 0, 0, p);
       return f;
     }},
    {"DynamicDict",
     [] {
       Fixture f = make_disks_fixture(48);
       core::DynamicDictParams p;
       p.universe_size = kUniverse;
       p.capacity = kCapacity;
       p.value_bytes = kValueBytes;
       p.degree = 24;
       f.dict = std::make_unique<core::DynamicDict>(*f.disks, 0, *f.alloc, p);
       return f;
     }},
    {"FullDict",
     [] {
       Fixture f = make_disks_fixture(32);
       core::FullDictParams p;
       p.universe_size = kUniverse;
       p.value_bytes = kValueBytes;
       p.degree = 16;
       f.dict = std::make_unique<core::FullDict>(*f.disks, 0, *f.alloc, p);
       return f;
     }},
    {"MultiLevelWide",
     [] {
       Fixture f = make_disks_fixture(48);
       core::MultiLevelWideParams p;
       p.universe_size = kUniverse;
       p.capacity = kCapacity;
       p.value_bytes = kValueBytes;
       p.degree = 16;
       f.dict =
           std::make_unique<core::MultiLevelWideDict>(*f.disks, 0, *f.alloc, p);
       return f;
     }},
    {"ParallelDictGroup",
     [] {
       Fixture f = make_disks_fixture(32);
       core::ParallelGroupParams p;
       p.universe_size = kUniverse;
       p.capacity = kCapacity;
       p.value_bytes = kValueBytes;
       p.degree = 16;
       p.instances = 2;
       f.dict =
           std::make_unique<core::ParallelDictGroup>(*f.disks, 0, *f.alloc, p);
       return f;
     }},
    {"FullDynamicDict",
     [] {
       Fixture f = make_disks_fixture(96);
       core::FullDynamicParams p;
       p.universe_size = kUniverse;
       p.value_bytes = kValueBytes;
       p.degree = 24;
       f.dict =
           std::make_unique<core::FullDynamicDict>(*f.disks, 0, *f.alloc, p);
       return f;
     }},
    {"StripedHashDict",
     [] {
       Fixture f = make_disks_fixture(16);
       baselines::StripedHashParams p;
       p.universe_size = kUniverse;
       p.capacity = kCapacity;
       p.value_bytes = kValueBytes;
       f.dict = std::make_unique<baselines::StripedHashDict>(*f.disks, 0, p);
       return f;
     }},
    {"DhpDict",
     [] {
       Fixture f = make_disks_fixture(16);
       baselines::DhpDictParams p;
       p.universe_size = kUniverse;
       p.capacity = kCapacity;
       p.value_bytes = kValueBytes;
       f.dict = std::make_unique<baselines::DhpDict>(*f.disks, 0, p);
       return f;
     }},
    {"CuckooDict",
     [] {
       Fixture f = make_disks_fixture(16);
       baselines::CuckooDictParams p;
       p.universe_size = kUniverse;
       p.capacity = kCapacity;
       p.value_bytes = kValueBytes;
       f.dict = std::make_unique<baselines::CuckooDict>(*f.disks, 0, p);
       return f;
     }},
    {"TrickDict",
     [] {
       Fixture f = make_disks_fixture(16);
       baselines::TrickDictParams p;
       p.universe_size = kUniverse;
       p.capacity = kCapacity;
       p.value_bytes = kValueBytes;
       f.dict = std::make_unique<baselines::TrickDict>(
           *f.disks, 0, std::uint64_t{1} << 24, p);
       return f;
     }},
    {"BTreeDict",
     [] {
       Fixture f = make_disks_fixture(16);
       baselines::BTreeParams p;
       p.universe_size = kUniverse;
       p.value_bytes = kValueBytes;
       f.dict = std::make_unique<baselines::BTreeDict>(*f.disks, 0, p);
       return f;
     }},
};

class Conformance : public ::testing::TestWithParam<Impl> {};

TEST_P(Conformance, MatchesReferenceModelUnderRandomOps) {
  Fixture f = GetParam().make();
  std::unordered_map<core::Key, std::vector<std::byte>> reference;
  util::SplitMix64 rng(0xc0f0);
  const std::uint64_t key_space = 400;  // dense enough for hits and misses

  for (int op = 0; op < 3000; ++op) {
    core::Key k = 1 + rng.next_below(key_space);
    switch (rng.next_below(4)) {
      case 0:    // insert
      case 1: {  // (weighted 2x)
        if (reference.size() >= kCapacity - 8) break;  // stay under N
        auto value = core::value_for_key(k, kValueBytes, rng.next_below(7));
        bool inserted = f.dict->insert(k, value);
        bool expected = !reference.contains(k);
        ASSERT_EQ(inserted, expected) << GetParam().name << " op " << op;
        if (inserted) reference.emplace(k, value);
        break;
      }
      case 2: {  // erase
        bool erased = f.dict->erase(k);
        ASSERT_EQ(erased, reference.erase(k) > 0)
            << GetParam().name << " op " << op;
        break;
      }
      default: {  // lookup
        auto r = f.dict->lookup(k);
        auto it = reference.find(k);
        ASSERT_EQ(r.found, it != reference.end())
            << GetParam().name << " op " << op << " key " << k;
        if (r.found) {
          ASSERT_EQ(r.value, it->second) << GetParam().name;
        }
        break;
      }
    }
    ASSERT_EQ(f.dict->size(), reference.size()) << GetParam().name;
  }
  // Final sweep: every reference entry answered correctly.
  for (const auto& [k, v] : reference) {
    auto r = f.dict->lookup(k);
    ASSERT_TRUE(r.found) << GetParam().name;
    ASSERT_EQ(r.value, v) << GetParam().name;
  }
}

TEST_P(Conformance, MissesOutsideKeySpaceNeverFound) {
  Fixture f = GetParam().make();
  for (core::Key k = 1; k <= 100; ++k)
    f.dict->insert(k, core::value_for_key(k, kValueBytes));
  util::SplitMix64 rng(77);
  for (int i = 0; i < 500; ++i) {
    core::Key miss = 1000 + rng.next_below(kUniverse - 2000);
    EXPECT_FALSE(f.dict->lookup(miss).found) << GetParam().name;
  }
}

TEST_P(Conformance, ValueBytesReported) {
  Fixture f = GetParam().make();
  EXPECT_EQ(f.dict->value_bytes(), kValueBytes) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, Conformance,
                         ::testing::ValuesIn(kImpls),
                         [](const ::testing::TestParamInfo<Impl>& info) {
                           return info.param.name;
                         });

// ---- the "no data movement" property (paper, Section 1.1) ----
// "If we fix the capacity of the data structure and there are no deletions,
// no piece of data is ever moved, once inserted."

TEST(NoDataMovement, BasicDictRecordsNeverMove) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  core::BasicDictParams p;
  p.universe_size = kUniverse;
  p.capacity = 2000;
  p.value_bytes = 8;
  p.degree = 16;
  core::BasicDict dict(disks, 0, 0, p);

  auto locate = [&](core::Key k) {
    auto addrs = dict.probe_addrs(k);
    std::vector<pdm::Block> blocks;
    blocks.reserve(addrs.size());
    for (const auto& a : addrs) blocks.push_back(disks.peek(a));
    auto probe = dict.inspect(k, blocks);
    EXPECT_TRUE(probe.found);
    return probe.found_stripe;
  };

  std::vector<core::Key> watched;
  std::vector<std::uint32_t> homes;
  for (core::Key k = 1; k <= 50; ++k) {
    dict.insert(k, core::value_for_key(k, 8));
    watched.push_back(k);
    homes.push_back(locate(k));
  }
  // Flood with 1900 more insertions; the watched records must not move.
  for (core::Key k = 1000; k < 2900; ++k)
    dict.insert(k, core::value_for_key(k, 8));
  for (std::size_t i = 0; i < watched.size(); ++i)
    EXPECT_EQ(locate(watched[i]), homes[i])
        << "record moved after later insertions";
}

}  // namespace
}  // namespace pddict
