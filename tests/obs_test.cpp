// Observability layer verification: per-disk accounting, the
// round-utilization histogram invariant, span nesting, sink bounding and the
// JSON round trip the CI schema gate depends on.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/concurrent_dict.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "pdm/disk_array.hpp"
#include "workload/workload.hpp"

namespace pddict {
namespace {

pdm::Block zero_block(const pdm::Geometry& g) {
  return pdm::Block(g.block_bytes(), std::byte{0});
}

// ---- per-disk counters ----

TEST(DiskCounters, MatchManualAccounting) {
  pdm::DiskArray disks(pdm::Geometry{4, 8, 8, 0});
  // Round 1: one block on each of disks 0..2; disk 3 idle.
  std::vector<pdm::BlockAddr> addrs{{0, 0}, {1, 0}, {2, 0}};
  std::vector<pdm::Block> out;
  EXPECT_EQ(disks.read_batch(addrs, out), 1u);
  // Two blocks on disk 0 -> two rounds; disk 1 busy in one of them.
  std::vector<std::pair<pdm::BlockAddr, pdm::Block>> writes{
      {{0, 1}, zero_block(disks.geometry())},
      {{0, 2}, zero_block(disks.geometry())},
      {{1, 1}, zero_block(disks.geometry())}};
  EXPECT_EQ(disks.write_batch(writes), 2u);

  auto c = disks.disk_counters();
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c[0].blocks_read, 1u);
  EXPECT_EQ(c[0].blocks_written, 2u);
  EXPECT_EQ(c[0].rounds_active, 3u);
  EXPECT_EQ(c[0].idle_slots, 0u);
  EXPECT_EQ(c[1].blocks_read, 1u);
  EXPECT_EQ(c[1].blocks_written, 1u);
  EXPECT_EQ(c[1].rounds_active, 2u);
  EXPECT_EQ(c[1].idle_slots, 1u);  // idle in one of the two write rounds
  EXPECT_EQ(c[2].blocks_read, 1u);
  EXPECT_EQ(c[2].rounds_active, 1u);
  EXPECT_EQ(c[2].idle_slots, 2u);
  EXPECT_EQ(c[3].blocks_read, 0u);
  EXPECT_EQ(c[3].rounds_active, 0u);
  EXPECT_EQ(c[3].idle_slots, 3u);  // idle in all three rounds
}

TEST(DiskCounters, DuplicateReadsCountOneTransfer) {
  pdm::DiskArray disks(pdm::Geometry{2, 8, 8, 0});
  std::vector<pdm::BlockAddr> addrs{{0, 5}, {0, 5}, {0, 5}};
  std::vector<pdm::Block> out;
  EXPECT_EQ(disks.read_batch(addrs, out), 1u);
  EXPECT_EQ(disks.disk_counters()[0].blocks_read, 1u);
}

TEST(DiskCounters, ResetStatsZeroesEverything) {
  pdm::DiskArray disks(pdm::Geometry{2, 8, 8, 0});
  std::vector<pdm::BlockAddr> addrs{{0, 0}, {1, 0}};
  std::vector<pdm::Block> out;
  disks.read_batch(addrs, out);
  disks.reset_stats();
  EXPECT_EQ(disks.stats().parallel_ios, 0u);
  for (const auto& c : disks.disk_counters()) {
    EXPECT_EQ(c.blocks_read, 0u);
    EXPECT_EQ(c.rounds_active, 0u);
    EXPECT_EQ(c.idle_slots, 0u);
  }
  for (std::uint64_t h : disks.round_utilization()) EXPECT_EQ(h, 0u);
}

// ---- round-utilization histogram ----

// The histogram invariant: sum over k of k * hist[k] equals the number of
// blocks transferred, in both machine models and for any batch mix.
void expect_histogram_invariant(const pdm::DiskArray& disks) {
  auto hist = disks.round_utilization();
  ASSERT_EQ(hist.size(), disks.geometry().num_disks + 1u);
  EXPECT_EQ(hist[0], 0u);
  std::uint64_t weighted = 0, rounds = 0;
  for (std::size_t k = 0; k < hist.size(); ++k) {
    weighted += k * hist[k];
    rounds += hist[k];
  }
  EXPECT_EQ(weighted, disks.stats().blocks_read + disks.stats().blocks_written);
  EXPECT_EQ(rounds, disks.stats().parallel_ios);
}

TEST(RoundUtilization, InvariantHoldsOnMixedBatches) {
  pdm::DiskArray disks(pdm::Geometry{8, 8, 8, 0});
  std::vector<pdm::Block> out;
  // Full-width batch: one round using all 8 slots.
  std::vector<pdm::BlockAddr> full;
  for (std::uint32_t d = 0; d < 8; ++d) full.push_back({d, 0});
  disks.read_batch(full, out);
  // Skewed batch: 3 blocks on disk 0, 1 on disk 1 -> rounds of width 2,1,1.
  std::vector<pdm::BlockAddr> skew{{0, 1}, {0, 2}, {0, 3}, {1, 1}};
  disks.read_batch(skew, out);
  auto hist = disks.round_utilization();
  EXPECT_EQ(hist[8], 1u);
  EXPECT_EQ(hist[2], 1u);
  EXPECT_EQ(hist[1], 2u);
  expect_histogram_invariant(disks);
  EXPECT_NEAR(disks.mean_utilization(), (8 + 2 + 1 + 1) / (4.0 * 8), 1e-9);
}

TEST(RoundUtilization, InvariantHoldsInHeadModel) {
  pdm::DiskArray disks(pdm::Geometry{4, 8, 8, 0}, pdm::Model::kParallelHeads);
  std::vector<pdm::Block> out;
  // 6 distinct blocks, all on disk 0: head model moves any 4 per round ->
  // one full round (4) + one partial (2).
  std::vector<pdm::BlockAddr> addrs;
  for (std::uint64_t b = 0; b < 6; ++b) addrs.push_back({0, b});
  EXPECT_EQ(disks.read_batch(addrs, out), 2u);
  auto hist = disks.round_utilization();
  EXPECT_EQ(hist[4], 1u);
  EXPECT_EQ(hist[2], 1u);
  expect_histogram_invariant(disks);
  // The head model has no per-disk slots, so no idle accrues.
  for (const auto& c : disks.disk_counters()) EXPECT_EQ(c.idle_slots, 0u);
}

TEST(RoundUtilization, InvariantHoldsUnderDictionaryWorkload) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  core::BasicDictParams p;
  p.universe_size = std::uint64_t{1} << 36;
  p.capacity = 500;
  p.value_bytes = 8;
  p.degree = 16;
  core::BasicDict dict(disks, 0, 0, p);
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, 500,
                                      p.universe_size, 17);
  for (core::Key k : keys) dict.insert(k, core::value_for_key(k, 8));
  for (core::Key k : keys) dict.lookup(k);
  expect_histogram_invariant(disks);
}

// ---- spans ----

TEST(Span, NoSinkMeansInactive) {
  pdm::DiskArray disks(pdm::Geometry{2, 8, 8, 0});
  obs::Span span(disks, "lookup");
  EXPECT_FALSE(span.active());
}

TEST(Span, NestingProducesSlashJoinedPaths) {
  pdm::DiskArray disks(pdm::Geometry{2, 8, 8, 0});
  auto ring = std::make_shared<obs::RingBufferSink>(16);
  disks.set_sink(ring);
  {
    obs::Span outer(disks, "insert");
    {
      obs::Span inner(disks, "rebuild");
      std::vector<pdm::BlockAddr> addrs{{0, 0}};
      std::vector<pdm::Block> out;
      disks.read_batch(addrs, out);
    }
  }
  auto spans = ring->spans();
  ASSERT_EQ(spans.size(), 2u);  // inner closes first
  EXPECT_EQ(spans[0].path, "insert/rebuild");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[0].io.parallel_ios, 1u);
  EXPECT_EQ(spans[1].path, "insert");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_EQ(spans[1].io.parallel_ios, 1u);  // outer charged the nested I/O
  disks.set_sink(nullptr);
}

TEST(Span, AggregatorFoldsRepeatsAndRendersTree) {
  pdm::DiskArray disks(pdm::Geometry{2, 8, 8, 0});
  auto agg = std::make_shared<obs::SpanAggregator>();
  disks.set_sink(agg);
  for (int i = 0; i < 3; ++i) {
    obs::Span outer(disks, "op");
    obs::Span inner(disks, "phase");
    std::vector<pdm::BlockAddr> addrs{{0, static_cast<std::uint64_t>(i)}};
    std::vector<pdm::Block> out;
    disks.read_batch(addrs, out);
  }
  auto nodes = agg->nodes();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes.at("op").count, 3u);
  EXPECT_EQ(nodes.at("op").io.parallel_ios, 3u);
  EXPECT_EQ(nodes.at("op/phase").count, 3u);
  EXPECT_EQ(nodes.at("op/phase").depth, 1u);
  EXPECT_EQ(agg->io_events(), 3u);
  std::string tree = agg->render();
  EXPECT_NE(tree.find("op"), std::string::npos);
  EXPECT_NE(tree.find("  phase"), std::string::npos) << tree;
  // to_json: one entry per path.
  obs::Json j = agg->to_json();
  ASSERT_TRUE(j.is_array());
  EXPECT_EQ(j.as_array().size(), 2u);
  disks.set_sink(nullptr);
}

TEST(Span, MoveTransfersOwnershipOfClose) {
  pdm::DiskArray disks(pdm::Geometry{2, 8, 8, 0});
  auto ring = std::make_shared<obs::RingBufferSink>(4);
  disks.set_sink(ring);
  {
    obs::Span a(disks, "moved");
    obs::Span b(std::move(a));
    EXPECT_FALSE(a.active());
    EXPECT_TRUE(b.active());
  }
  EXPECT_EQ(ring->spans().size(), 1u);  // closed exactly once
  disks.set_sink(nullptr);
}

// ---- ring buffer bounding (the trace_ growth fix) ----

TEST(RingBufferSink, BoundsMemoryAndCountsDrops) {
  obs::RingBufferSink ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    obs::IoEvent ev;
    ev.rounds = i;
    ring.on_io(ev);
  }
  auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().rounds, 6u);  // oldest retained
  EXPECT_EQ(events.back().rounds, 9u);
  EXPECT_EQ(ring.dropped_events(), 6u);
}

TEST(RingBufferSink, DiskArrayTraceIsBounded) {
  pdm::DiskArray disks(pdm::Geometry{2, 8, 8, 0});
  disks.enable_trace(3);
  std::vector<pdm::Block> out;
  for (std::uint64_t b = 0; b < 8; ++b) {
    std::vector<pdm::BlockAddr> addrs{{0, b}};
    disks.read_batch(addrs, out);
  }
  auto trace = disks.trace();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.back().addrs[0].block, 7u);
  EXPECT_EQ(disks.trace_dropped(), 5u);
  disks.clear_trace();
  EXPECT_TRUE(disks.trace().empty());
}

// ---- JSON-lines sink ----

TEST(JsonLinesSink, EmitsOneParseableObjectPerLine) {
  auto path = std::filesystem::temp_directory_path() / "pddict_obs_test.jsonl";
  {
    pdm::DiskArray disks(pdm::Geometry{2, 8, 8, 0});
    auto sink = std::make_shared<obs::JsonLinesSink>(path.string(), true);
    disks.set_sink(sink);
    {
      obs::Span span(disks, "phase");
      std::vector<pdm::BlockAddr> addrs{{0, 1}, {1, 2}};
      std::vector<pdm::Block> out;
      disks.read_batch(addrs, out);
    }
    disks.set_sink(nullptr);  // destroys the sink, flushing the file
    EXPECT_EQ(sink->lines_written(), 2u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int io_lines = 0, span_lines = 0;
  while (std::getline(in, line)) {
    std::string err;
    auto parsed = obs::parse_json(line, &err);
    ASSERT_TRUE(parsed.has_value()) << err << " in: " << line;
    const obs::Json* type = parsed->find("type");
    ASSERT_NE(type, nullptr);
    if (type->as_string() == "io") {
      ++io_lines;
      EXPECT_EQ(parsed->find("blocks")->as_int(), 2);
      ASSERT_NE(parsed->find("addrs"), nullptr);
    } else if (type->as_string() == "span") {
      ++span_lines;
      EXPECT_EQ(parsed->find("path")->as_string(), "phase");
    }
  }
  EXPECT_EQ(io_lines, 1);
  EXPECT_EQ(span_lines, 1);
  std::filesystem::remove(path);
}

// ---- metrics registry ----

TEST(MetricsRegistry, ExportsJsonAndCsv) {
  obs::MetricsRegistry reg;
  reg.count("ops.lookup", 3);
  reg.count("ops.lookup", 2);
  reg.gauge("utilization", 0.75);
  reg.histogram("rounds", {0, 4, 2});
  EXPECT_EQ(reg.counter_value("ops.lookup"), 5u);
  EXPECT_EQ(reg.gauge_value("utilization"), 0.75);
  EXPECT_EQ(reg.histogram_value("rounds").size(), 3u);

  obs::Json j = reg.to_json();
  EXPECT_EQ(j.find("counters")->find("ops.lookup")->as_int(), 5);
  EXPECT_EQ(j.find("gauges")->find("utilization")->as_double(), 0.75);
  EXPECT_EQ(j.find("histograms")->find("rounds")->as_array()[1].as_int(), 4);

  std::ostringstream csv;
  reg.to_csv(csv);
  std::string text = csv.str();
  EXPECT_NE(text.find("counter,ops.lookup,,5"), std::string::npos) << text;
  EXPECT_NE(text.find("histogram,rounds,1,4"), std::string::npos) << text;
}

TEST(MetricsRegistry, DiskArrayExportUsesPrefix) {
  pdm::DiskArray disks(pdm::Geometry{2, 8, 8, 0});
  std::vector<pdm::BlockAddr> addrs{{0, 0}, {1, 0}};
  std::vector<pdm::Block> out;
  disks.read_batch(addrs, out);
  obs::MetricsRegistry reg;
  disks.export_metrics(reg, "pdm");
  EXPECT_EQ(reg.counter_value("pdm.parallel_ios"), 1u);
  EXPECT_EQ(reg.counter_value("pdm.disk.0.blocks_read"), 1u);
  EXPECT_EQ(reg.counter_value("pdm.disk.1.blocks_read"), 1u);
  auto hist = reg.histogram_value("pdm.round_utilization");
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[2], 1u);
  EXPECT_EQ(reg.gauge_value("pdm.mean_utilization"), 1.0);
}

// ---- JSON round trip ----

TEST(Json, RoundTripPreservesStructure) {
  obs::Json root = obs::Json::object();
  root.set("int", 42);
  root.set("neg", -7);
  root.set("float", 2.5);
  root.set("bool", true);
  root.set("null", nullptr);
  root.set("str", "quote\" backslash\\ newline\n unicode\x01");
  obs::Json arr = obs::Json::array();
  arr.push_back(1);
  arr.push_back("two");
  root.set("arr", std::move(arr));

  for (int indent : {-1, 2}) {
    std::string text = indent < 0 ? root.dump() : root.dump(indent);
    std::string err;
    auto parsed = obs::parse_json(text, &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    EXPECT_EQ(parsed->find("int")->as_int(), 42);
    EXPECT_EQ(parsed->find("neg")->as_int(), -7);
    EXPECT_EQ(parsed->find("float")->as_double(), 2.5);
    EXPECT_TRUE(parsed->find("bool")->as_bool());
    EXPECT_TRUE(parsed->find("null")->is_null());
    EXPECT_EQ(parsed->find("str")->as_string(),
              "quote\" backslash\\ newline\n unicode\x01");
    EXPECT_EQ(parsed->find("arr")->as_array()[1].as_string(), "two");
    // Insertion order survives the round trip (diffable reports).
    EXPECT_EQ(parsed->as_object().front().first, "int");
  }
}

TEST(Json, ParserRejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "1.2.3",
                          "\"unterminated", "{\"a\":1} trailing", "nan",
                          "{'single':1}"}) {
    std::string err;
    EXPECT_FALSE(obs::parse_json(bad, &err).has_value()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(Json, ParserAcceptsUnicodeEscapes) {
  auto parsed = obs::parse_json("\"a\\u00e9b\\u0041\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_string(), "a\xc3\xa9"
                                 "bA");
}

// ---- thread safety under concurrent dictionary load ----

TEST(SinkThreadSafety, ConcurrentDictWithAggregatorAndTrace) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  auto agg = std::make_shared<obs::SpanAggregator>();
  disks.set_sink(agg);
  disks.enable_trace(64);  // small ring: forces constant eviction
  core::BasicDictParams p;
  p.universe_size = std::uint64_t{1} << 36;
  p.capacity = 2000;
  p.value_bytes = 8;
  p.degree = 16;
  core::ConcurrentBasicDict dict(disks, 0, 0, p);
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom,
                                      1600, p.universe_size, 23);
  constexpr int kThreads = 4;
  const std::size_t per_thread = keys.size() / kThreads;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = t * per_thread; i < (t + 1) * per_thread; ++i) {
        obs::Span span(disks, "worker_insert");
        dict.insert(keys[i], core::value_for_key(keys[i], 8));
      }
      for (std::size_t i = t * per_thread; i < (t + 1) * per_thread; ++i) {
        obs::Span span(disks, "worker_lookup");
        EXPECT_TRUE(dict.lookup(keys[i]).found);
      }
    });
  }
  for (auto& th : threads) th.join();
  auto nodes = agg->nodes();
  EXPECT_EQ(nodes.at("worker_insert").count, keys.size() / kThreads * kThreads);
  EXPECT_EQ(nodes.at("worker_lookup").count, keys.size() / kThreads * kThreads);
  EXPECT_GT(agg->io_events(), 0u);
  // The bounded trace stayed bounded under load.
  EXPECT_LE(disks.trace().size(), 64u);
  EXPECT_GT(disks.trace_dropped(), 0u);
  expect_histogram_invariant(disks);
  disks.set_sink(nullptr);
}

}  // namespace
}  // namespace pddict
