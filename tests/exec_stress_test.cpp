// Concurrency stress for the per-disk I/O execution engine: worker threads
// hammer a ConcurrentBasicDict — every lookup/insert drives batched reads
// and writes through the executor's disk workers — while a chaos thread
// reconfigures the engine (set_io_threads across serial/1/4/D), toggles the
// buffer pool and rebases counters. Under ThreadSanitizer
// (-DPDDICT_SANITIZE=thread) this is the regression test for races between
// executor workers, the scheduling lock and reconfiguration; without TSan it
// still verifies the dictionary and the round accounting stay consistent
// while the execution engine churns underneath them.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstring>
#include <thread>
#include <vector>

#include "core/concurrent_dict.hpp"
#include "pdm/disk_array.hpp"
#include "pdm/io_executor.hpp"

namespace pddict::core {
namespace {

pdm::Geometry geom() { return pdm::Geometry{8, 64, 16, 0}; }

BasicDictParams params() {
  BasicDictParams p;
  p.universe_size = 1u << 20;
  p.capacity = 4096;
  p.value_bytes = 8;
  p.degree = 8;
  return p;
}

void hammer_with_executor_chaos(pdm::DiskArray& disks, bool toggle_cache) {
  ConcurrentBasicDict dict(disks, 0, 0, params());

  constexpr int kWorkers = 4;
  constexpr Key kKeysPerWorker = 300;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> inserted{0};

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      std::vector<std::byte> value(8);
      for (Key i = 1; i <= kKeysPerWorker; ++i) {
        Key key = static_cast<Key>(w) * kKeysPerWorker + i;
        std::memcpy(value.data(), &key, sizeof(Key));
        if (dict.insert(key, value)) inserted.fetch_add(1);
        auto r = dict.lookup(key);
        EXPECT_TRUE(r.found);
        if (i % 3 == 0) {
          EXPECT_TRUE(dict.erase(key));
          inserted.fetch_sub(1);
        }
      }
    });
  }

  // Chaos thread: reconfigure the execution engine mid-traffic. Every
  // set_io_threads tears down one worker pool and spawns another while the
  // dictionary keeps submitting batches; exec_stats/reset_stats read and
  // rebase the engine's atomic counters concurrently with its workers.
  std::thread chaos([&] {
    const std::size_t ladder[] = {0, 1, 4, 8, pdm::kAutoIoThreads};
    int round = 0;
    while (!stop.load()) {
      disks.set_io_threads(ladder[round % 5]);
      (void)disks.exec_stats();
      (void)disks.stats_snapshot();
      (void)disks.io_threads();
      if (toggle_cache && round % 7 == 3)
        disks.enable_cache(round % 2 ? 32 : 48);
      if (++round % 4 == 0) disks.reset_stats();
      std::this_thread::yield();
    }
  });

  for (auto& t : workers) t.join();
  stop.store(true);
  chaos.join();
  disks.set_io_threads(0);

  // The dictionary stayed consistent through every engine reconfiguration.
  EXPECT_EQ(dict.size(), inserted.load());
  for (Key key = 1; key <= kKeysPerWorker; ++key) {
    auto r = dict.lookup(key);
    EXPECT_EQ(r.found, key % 3 != 0);
    if (r.found) {
      Key stored;
      std::memcpy(&stored, r.value.data(), sizeof(Key));
      EXPECT_EQ(stored, key);
    }
  }
}

TEST(ExecStress, ReconfigureEngineUnderConcurrentTraffic) {
  pdm::DiskArray disks(geom());
  hammer_with_executor_chaos(disks, /*toggle_cache=*/false);
}

TEST(ExecStress, EngineAndCacheChurnTogether) {
  pdm::DiskArray disks(geom());
  disks.set_io_threads(4);
  hammer_with_executor_chaos(disks, /*toggle_cache=*/true);
}

TEST(ExecStress, ConcurrentDictionariesShareNoEngineState) {
  // Two arrays with independent engines running concurrently: executor state
  // (workers, counters) must be fully per-array; the process-wide default is
  // read only at construction.
  pdm::set_default_io_threads(4);
  pdm::DiskArray a(geom());
  pdm::DiskArray b(geom());
  pdm::set_default_io_threads(0);
  EXPECT_EQ(a.io_threads(), 4u);
  EXPECT_EQ(b.io_threads(), 4u);
  std::thread ta([&] { hammer_with_executor_chaos(a, false); });
  std::thread tb([&] { hammer_with_executor_chaos(b, true); });
  ta.join();
  tb.join();
}

}  // namespace
}  // namespace pddict::core
