// Tests for the global-rebuilding wrapper (unbounded size + deletions).
#include <gtest/gtest.h>

#include "core/full_dict.hpp"
#include "pdm/io_stats.hpp"
#include "workload/workload.hpp"

namespace pddict::core {
namespace {

pdm::DiskArray make_disks() {
  return pdm::DiskArray(pdm::Geometry{32, 64, 16, 0});
}

FullDictParams params_for(std::size_t value_bytes = 8) {
  FullDictParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.value_bytes = value_bytes;
  p.degree = 16;
  p.initial_capacity = 32;
  return p;
}

TEST(FullDict, GrowsFarBeyondInitialCapacity) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  FullDict dict(disks, 0, alloc, params_for());
  const std::uint64_t n = 2000;  // 62× the initial capacity
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, n,
                                      std::uint64_t{1} << 32, 2);
  for (Key k : keys) ASSERT_TRUE(dict.insert(k, value_for_key(k, 8)));
  EXPECT_EQ(dict.size(), n);
  EXPECT_GE(dict.rebuilds(), 4u);
  for (Key k : keys) {
    auto r = dict.lookup(k);
    ASSERT_TRUE(r.found) << k;
    EXPECT_EQ(r.value, value_for_key(k, 8));
  }
}

TEST(FullDict, OperationsHaveConstantWorstCaseIo) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  auto p = params_for();
  FullDict dict(disks, 0, alloc, p);
  std::uint64_t worst_insert = 0, worst_lookup = 0;
  for (Key k = 1; k <= 3000; ++k) {
    pdm::IoProbe probe(disks);
    dict.insert(k, value_for_key(k, 8));
    worst_insert = std::max(worst_insert, probe.ios());
  }
  for (Key k = 1; k <= 3000; k += 7) {
    pdm::IoProbe probe(disks);
    dict.lookup(k);
    worst_lookup = std::max(worst_lookup, probe.ios());
  }
  EXPECT_EQ(worst_lookup, 1u) << "combined two-structure probe is 1 I/O";
  // Insert: probe (1) + write (1) + migration of moves_per_op buckets, each a
  // drain (2) + per-record inserts (2 each, bucket loads are small constants).
  EXPECT_LE(worst_insert, 2u + 3u * p.moves_per_op * 4u);
}

TEST(FullDict, DeleteThenResurrectionImpossible) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  FullDict dict(disks, 0, alloc, params_for());
  // Force interleaved deletes during migrations.
  for (Key k = 1; k <= 500; ++k) dict.insert(k, value_for_key(k, 8));
  for (Key k = 1; k <= 500; k += 2) EXPECT_TRUE(dict.erase(k));
  for (Key k = 1; k <= 500; ++k) {
    bool expected = (k % 2) == 0;
    EXPECT_EQ(dict.lookup(k).found, expected) << k;
  }
  // Keep mutating so any pending migration completes; deleted keys must
  // never reappear.
  for (Key k = 1000; k < 1600; ++k) dict.insert(k, value_for_key(k, 8));
  for (Key k = 1; k <= 500; k += 2) EXPECT_FALSE(dict.lookup(k).found) << k;
}

TEST(FullDict, TombstoneDominanceTriggersShrinkRebuild) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  FullDict dict(disks, 0, alloc, params_for());
  for (Key k = 1; k <= 600; ++k) dict.insert(k, value_for_key(k, 8));
  std::uint64_t before = dict.rebuilds();
  for (Key k = 1; k <= 590; ++k) dict.erase(k);
  EXPECT_GT(dict.rebuilds(), before);
  for (Key k = 591; k <= 600; ++k) EXPECT_TRUE(dict.lookup(k).found);
  EXPECT_EQ(dict.size(), 10u);
}

TEST(FullDict, ReinsertAfterEraseAcrossRebuilds) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  FullDict dict(disks, 0, alloc, params_for());
  for (int round = 0; round < 3; ++round) {
    for (Key k = 1; k <= 300; ++k)
      EXPECT_TRUE(dict.insert(k, value_for_key(k, 8, round))) << round;
    for (Key k = 1; k <= 300; ++k)
      EXPECT_EQ(dict.lookup(k).value, value_for_key(k, 8, round));
    for (Key k = 1; k <= 300; ++k) EXPECT_TRUE(dict.erase(k));
  }
  EXPECT_EQ(dict.size(), 0u);
}

TEST(FullDict, DuplicateRejectedAcrossStructures) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  FullDict dict(disks, 0, alloc, params_for());
  for (Key k = 1; k <= 40; ++k) dict.insert(k, value_for_key(k, 8));
  // Likely mid-migration now; duplicates must be caught wherever they live.
  for (Key k = 1; k <= 40; ++k)
    EXPECT_FALSE(dict.insert(k, value_for_key(k, 8, 1)));
  EXPECT_EQ(dict.size(), 40u);
}

}  // namespace
}  // namespace pddict::core
