// Tests for the round-phase profiler + cost-model conformance layer
// (obs/cost_conformance, the DiskArray recording hooks, and the watchdog's
// model_divergence rule).
//
// Contracts pinned here:
//   * Calibration is honest least squares: on synthetic batches generated
//     from an exact linear model the fit recovers the coefficients and the
//     measured/predicted ratio is 1; a parameter configured >= 0 is held
//     fixed through the fit rather than re-estimated.
//   * recent_ratio() stays 1.0 (the watchdog's "no divergence") until
//     kMinRatioBatches batches arrived, then reports real divergence.
//   * The caller-clock phases tile: plan + exec + reconcile == total for
//     every DiskArray-recorded batch, so the report's unattributed time is
//     exactly zero and the validator's reconciliation invariant holds by
//     construction, not by tolerance.
//   * Conformance is pure observability — attaching a collector (and
//     changing io_threads under it) never moves a single accounted counter.
//   * Satellite fixes ride along: the executor's max_queue_depth is sampled
//     at dequeue (nonzero whenever one worker drains a multi-disk batch),
//     and DiskArray::telemetry_json keeps "io.*" monotone across
//     reset_stats().
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/cost_conformance.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "pdm/disk_array.hpp"

namespace pddict::obs {
namespace {

using pdm::Block;
using pdm::BlockAddr;
using pdm::DiskArray;
using pdm::Geometry;

constexpr Geometry kGeom{8, 16, 8, 0};

/// A synthetic single-worker batch with perfectly tiling phases.
RoundPhaseSample sample(std::uint32_t runs, std::uint32_t blocks,
                        std::uint64_t exec_ns, bool write = false,
                        bool flush = false) {
  RoundPhaseSample s;
  s.write = write;
  s.flush = flush;
  s.rounds = 1;
  s.blocks = blocks;
  s.busy_disks = 1;
  s.worker_runs = {runs};
  s.worker_blocks = {blocks};
  s.plan_ns = 10;
  s.exec_ns = exec_ns;
  s.transfer_ns = exec_ns;
  s.reconcile_ns = 5;
  s.total_ns = 10 + exec_ns + 5;
  return s;
}

/// The same deterministic batch workload the telemetry tests use.
void run_batches(DiskArray& disks, int steps) {
  for (int step = 0; step < steps; ++step) {
    std::vector<std::pair<BlockAddr, Block>> writes;
    for (std::uint32_t d = 0; d < kGeom.num_disks; ++d) {
      Block b(kGeom.block_bytes());
      for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<std::byte>((step + d + i) & 0xff);
      writes.emplace_back(BlockAddr{d, static_cast<std::uint64_t>(step % 8)},
                          std::move(b));
    }
    disks.write_batch(writes);
    std::vector<BlockAddr> reads;
    for (std::uint32_t d = 0; d < kGeom.num_disks; ++d)
      reads.push_back({d, static_cast<std::uint64_t>(step % 8)});
    std::vector<Block> out;
    disks.read_batch(reads, out);
  }
}

double field(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  return v && v->is_number() ? v->as_double() : -1.0;
}

// ---- calibration ----

TEST(CostConformanceTest, CalibrationRecoversLinearCoefficients) {
  // exec_ns = 100 + 50*runs + 10*blocks, runs/blocks varied on coprime
  // cycles so the design matrix is full rank. The fit must recover the
  // coefficients essentially exactly and report a unit ratio.
  CostConformance cc;  // all three parameters unknown -> fitted
  for (std::uint64_t i = 0; i < 200; ++i) {
    std::uint32_t runs = 1 + static_cast<std::uint32_t>(i % 7);
    std::uint32_t blocks = 1 + static_cast<std::uint32_t>((i * 3) % 13);
    cc.record(sample(runs, blocks, 100 + 50ull * runs + 10ull * blocks));
  }
  EXPECT_EQ(cc.batches(), 200u);
  EXPECT_NEAR(cc.recent_ratio(), 1.0, 1e-6);

  Json r = cc.report();
  const Json* model = r.find("model");
  ASSERT_NE(model, nullptr);
  EXPECT_NEAR(field(*model, "overhead_ns"), 100.0, 1e-3);
  EXPECT_NEAR(field(*model, "seek_ns"), 50.0, 1e-3);
  EXPECT_NEAR(field(*model, "transfer_ns_per_block"), 10.0, 1e-3);
  const Json* fit = r.find("fit");
  ASSERT_NE(fit, nullptr);
  EXPECT_NEAR(field(*fit, "ratio"), 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(field(*fit, "within_2x_frac"), 1.0);
}

TEST(CostConformanceTest, ConfiguredParameterHeldFixedThroughFit) {
  // A parameter >= 0 is configured (e.g. a FileBackend's simulated seek
  // latency): the fit must subtract its contribution and estimate only the
  // unknowns, reporting the configured value untouched and flagged fixed.
  CostConformance::Options opt;
  opt.seek_ns = 1000.0;
  CostConformance cc(opt);
  for (std::uint64_t i = 0; i < 200; ++i) {
    std::uint32_t runs = 1 + static_cast<std::uint32_t>(i % 5);
    std::uint32_t blocks = 1 + static_cast<std::uint32_t>((i * 2) % 11);
    cc.record(sample(runs, blocks, 500 + 1000ull * runs + 20ull * blocks));
  }
  Json r = cc.report();
  const Json* model = r.find("model");
  ASSERT_NE(model, nullptr);
  EXPECT_DOUBLE_EQ(field(*model, "seek_ns"), 1000.0);
  EXPECT_NEAR(field(*model, "overhead_ns"), 500.0, 1e-3);
  EXPECT_NEAR(field(*model, "transfer_ns_per_block"), 20.0, 1e-3);
  const Json* fixed = model->find("fixed");
  ASSERT_NE(fixed, nullptr);
  EXPECT_TRUE(fixed->find("seek_ns")->as_bool());
  EXPECT_FALSE(fixed->find("overhead_ns")->as_bool());
  EXPECT_FALSE(fixed->find("transfer_ns_per_block")->as_bool());
  EXPECT_NEAR(cc.recent_ratio(), 1.0, 1e-6);
}

TEST(CostConformanceTest, RecentRatioNeutralUntilMinBatches) {
  // Fully configured model (nothing to fit), measured exec always 10x the
  // prediction. Below kMinRatioBatches the ratio must read exactly 1.0 —
  // the watchdog treats that as "no divergence" — then snap to the real 10x.
  CostConformance::Options opt;
  opt.overhead_ns = 100.0;
  opt.seek_ns = 0.0;
  opt.transfer_ns_per_block = 0.0;
  opt.calibrate = false;
  CostConformance cc(opt);
  for (std::size_t i = 0; i + 1 < CostConformance::kMinRatioBatches; ++i) {
    cc.record(sample(1, 1, 1000));
    EXPECT_DOUBLE_EQ(cc.recent_ratio(), 1.0) << "batch " << i;
  }
  cc.record(sample(1, 1, 1000));  // the kMinRatioBatches-th batch arms it
  EXPECT_NEAR(cc.recent_ratio(), 10.0, 1e-6);
}

// ---- report schema + attribution ----

TEST(CostConformanceTest, ReportSchemaClassesAndExactAttribution) {
  CostConformance cc;
  for (int i = 0; i < 20; ++i) {
    cc.record(sample(2, 4, 1000));                              // read/r1
    cc.record(sample(2, 4, 1000, /*write=*/true));              // write/r1
    cc.record(sample(2, 4, 1000, /*write=*/true, /*flush=*/true));  // flush
  }
  Json r = cc.report();
  EXPECT_EQ(r.find("schema")->as_string(), CostConformance::kSchema);
  EXPECT_EQ(r.find("version")->as_int(), CostConformance::kVersion);
  EXPECT_EQ(r.find("batches")->as_int(), 60);

  // Every sample tiles (10 + exec + 5 == total), so attribution reconciles
  // with zero slack.
  const Json* attr = r.find("attribution");
  ASSERT_NE(attr, nullptr);
  EXPECT_DOUBLE_EQ(field(*attr, "attributed_ns"), field(*attr, "total_ns"));
  EXPECT_DOUBLE_EQ(field(*attr, "unattributed_ns"), 0.0);
  EXPECT_DOUBLE_EQ(field(*attr, "unattributed_frac"), 0.0);

  // One class per direction at this batch shape; batches partition exactly.
  const Json* classes = r.find("classes");
  ASSERT_NE(classes, nullptr);
  ASSERT_TRUE(classes->is_array());
  std::set<std::string> names;
  double class_batches = 0;
  for (const Json& c : classes->as_array()) {
    names.insert(c.find("name")->as_string());
    class_batches += field(c, "batches");
  }
  EXPECT_EQ(names, (std::set<std::string>{"read/r1", "write/r1", "flush/r1"}));
  EXPECT_DOUBLE_EQ(class_batches, 60.0);

  // Caller-clock phase histograms carry one sample per batch.
  const Json* phases = r.find("phases");
  ASSERT_NE(phases, nullptr);
  for (const char* key : {"plan", "exec", "reconcile", "total"})
    EXPECT_EQ(phases->find(key)->find("count")->as_int(), 60) << key;
}

// ---- DiskArray integration ----

TEST(CostConformanceTest, DiskArrayPhasesTileTotalExactly) {
  // The default-collector hook attaches at construction (like the default
  // sink), and every recorded batch's plan/exec/reconcile are disjoint
  // intervals of one clock — so the aggregated report reconciles with zero
  // unattributed time, not just within the validator's tolerance.
  auto cc = std::make_shared<CostConformance>();
  set_default_cost_conformance(cc);
  {
    DiskArray disks(kGeom);
    EXPECT_EQ(disks.cost_conformance(), cc);
    run_batches(disks, 8);

    HealthSample h = disks.health_sample();
    EXPECT_TRUE(h.has_model);
    EXPECT_EQ(h.model_batches, cc->batches());
  }
  set_default_cost_conformance(nullptr);

  EXPECT_GT(cc->batches(), 0u);
  Json r = cc->report();
  const Json* attr = r.find("attribution");
  ASSERT_NE(attr, nullptr);
  EXPECT_GT(field(*attr, "total_ns"), 0.0);
  EXPECT_DOUBLE_EQ(field(*attr, "unattributed_ns"), 0.0);
  EXPECT_DOUBLE_EQ(field(*attr, "attributed_ns"), field(*attr, "total_ns"));
}

TEST(CostConformanceTest, AccountingUntouchedByCollectorAndThreads) {
  // Pure observability: the same workload must charge identical counters
  // with no collector, with a collector, and with a collector plus the
  // parallel engine.
  auto run = [](bool attach, std::size_t threads) {
    DiskArray disks(kGeom);
    if (attach)
      disks.set_cost_conformance(std::make_shared<CostConformance>());
    if (threads) disks.set_io_threads(threads);
    run_batches(disks, 6);
    return disks.stats_snapshot();
  };
  pdm::IoStats base = run(false, 0);
  for (auto [attach, threads] :
       {std::pair<bool, std::size_t>{true, 0}, {true, 2}}) {
    pdm::IoStats got = run(attach, threads);
    EXPECT_EQ(got.parallel_ios, base.parallel_ios);
    EXPECT_EQ(got.read_rounds, base.read_rounds);
    EXPECT_EQ(got.write_rounds, base.write_rounds);
    EXPECT_EQ(got.blocks_read, base.blocks_read);
    EXPECT_EQ(got.blocks_written, base.blocks_written);
  }
}

TEST(CostConformanceTest, SerialExecutionHasNoQueueOrJoinTime) {
  // On the serial path the exec section IS the backend transfer: the queue
  // and join attribution counters must stay zero while transfer carries the
  // whole section.
  auto cc = std::make_shared<CostConformance>();
  DiskArray disks(kGeom);
  disks.set_cost_conformance(cc);
  run_batches(disks, 4);
  Json r = cc->report();
  const Json* phases = r.find("phases");
  ASSERT_NE(phases, nullptr);
  EXPECT_EQ(phases->find("queue")->find("sum")->as_int(), 0);
  EXPECT_EQ(phases->find("join")->find("sum")->as_int(), 0);
  EXPECT_GT(phases->find("transfer")->find("sum")->as_int(), 0);
}

TEST(CostConformanceTest, MaxQueueDepthObservedAtDequeue) {
  // One worker owns all 8 disks, so each batch enqueues 8 per-disk jobs on
  // one queue; the depth counter — now sampled at dequeue as well as submit
  // — must have seen a backlog.
  DiskArray disks(kGeom);
  disks.set_io_threads(1);
  run_batches(disks, 4);
  pdm::IoExecutor::Stats es = disks.exec_stats();
  EXPECT_GT(es.jobs, 0u);
  EXPECT_GE(es.max_queue_depth, 1u);
}

TEST(CostConformanceTest, TelemetryJsonCarriesCostSection) {
  auto cc = std::make_shared<CostConformance>();
  DiskArray disks(kGeom);
  disks.set_cost_conformance(cc);
  run_batches(disks, 2);
  Json t = disks.telemetry_json();
  const Json* cost = t.find("cost");
  ASSERT_NE(cost, nullptr);
  EXPECT_GT(cost->find("batches")->as_int(), 0);
  EXPECT_GT(field(*cost, "recent_ratio"), 0.0);
  const Json* phase = cost->find("phase_ns");
  ASSERT_NE(phase, nullptr);
  EXPECT_GT(phase->find("total")->as_int(), 0);
}

// ---- watchdog rule ----

TEST(CostConformanceTest, WatchdogModelDivergenceRisingEdge) {
  HealthWatchdog dog;  // default model_divergence bound: 4.0
  double ratio = 5.0;
  std::uint64_t batches = 0;
  dog.add_source("model", [&] {
    HealthSample h;
    h.has_model = true;
    h.model_ratio = ratio;
    h.model_batches = batches;
    return h;
  });

  // Cold model (no batches yet): even a wild ratio must not alert.
  EXPECT_TRUE(dog.check_now().empty());

  batches = 100;
  auto fresh = dog.check_now();
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].kind, "model_divergence");
  EXPECT_DOUBLE_EQ(fresh[0].measured, 5.0);

  // Still diverged: the edge was already reported.
  EXPECT_TRUE(dog.check_now().empty());

  // Recovery clears; divergence on the OTHER side (model over-predicts by
  // more than the bound) is a fresh edge.
  ratio = 1.0;
  EXPECT_TRUE(dog.check_now().empty());
  ratio = 0.2;
  EXPECT_EQ(dog.check_now().size(), 1u);

  EXPECT_EQ(dog.alert_counts().at("model_divergence"), 2u);
}

// ---- telemetry reset-safety (satellite) ----

TEST(CostConformanceTest, TelemetryIoMonotoneAcrossResetStats) {
  // Bench ladders call reset_stats() per rung; the emitted "io.*" series
  // must never move backwards even though stats() rebases to zero.
  DiskArray disks(kGeom);
  run_batches(disks, 4);
  std::int64_t before =
      disks.telemetry_json().find("io")->find("parallel_ios")->as_int();
  ASSERT_GT(before, 0);

  disks.reset_stats();
  EXPECT_EQ(disks.stats_snapshot().parallel_ios, 0u);
  EXPECT_EQ(disks.telemetry_json().find("io")->find("parallel_ios")->as_int(),
            before);

  run_batches(disks, 2);
  EXPECT_GT(disks.telemetry_json().find("io")->find("parallel_ios")->as_int(),
            before);
}

}  // namespace
}  // namespace pddict::obs
