// Operation-level I/O attribution: OpScope ownership and thread tagging,
// IoEvent/SpanRecord op stamping through DiskArray and Span, the
// OpAttributor's exact per-op reconstruction (histograms, worst-K ring,
// rebuild amortization, untagged-event meter), and the MultiSink mutation
// semantics the attribution pipeline relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/basic_dict.hpp"
#include "core/dynamic_dict.hpp"
#include "core/full_dict.hpp"
#include "obs/op_attribution.hpp"
#include "obs/op_context.hpp"
#include "obs/span.hpp"
#include "pdm/allocator.hpp"
#include "pdm/disk_array.hpp"
#include "workload/workload.hpp"

namespace pddict {
namespace {

/// Sink that records every OpRecord it is handed.
class RecordingSink : public obs::NullSink {
 public:
  void on_op(const obs::OpRecord& record) override {
    records.push_back(record);
  }
  std::vector<obs::OpRecord> records;
};

// ---- OpScope ownership and thread-local tagging ----

TEST(OpScope, OutermostScopeOwnsAndEmitsOneRecord) {
  RecordingSink sink;
  pdm::IoStats live{};
  ASSERT_EQ(obs::current_op_id(), 0u);
  {
    obs::OpScope op(&sink, live, obs::OpKind::kLookup, "basic_dict", 3);
    EXPECT_TRUE(op.owner());
    EXPECT_NE(op.id(), 0u);
    EXPECT_EQ(obs::current_op_id(), op.id());
    EXPECT_EQ(obs::current_op_kind(), obs::OpKind::kLookup);
    live.parallel_ios += 2;
    live.blocks_read += 8;
    op.set_outcome(obs::OpOutcome::kHit);
  }
  EXPECT_EQ(obs::current_op_id(), 0u);  // closed scopes clear the thread
  ASSERT_EQ(sink.records.size(), 1u);
  const obs::OpRecord& r = sink.records[0];
  EXPECT_EQ(r.kind, obs::OpKind::kLookup);
  EXPECT_EQ(r.outcome, obs::OpOutcome::kHit);
  EXPECT_EQ(r.structure, "basic_dict");
  EXPECT_EQ(r.batch, 3u);
  EXPECT_EQ(r.io.parallel_ios, 2u);
  EXPECT_EQ(r.io.blocks_read, 8u);
}

TEST(OpScope, NestedScopeInheritsIdAndEmitsNothing) {
  RecordingSink sink;
  pdm::IoStats live{};
  std::uint64_t outer_id = 0;
  {
    obs::OpScope outer(&sink, live, obs::OpKind::kInsert, "full_dict");
    outer_id = outer.id();
    {
      // FullDict::insert delegating to BasicDict::insert: the inner scope
      // must inherit, so attribution follows the user-facing call.
      obs::OpScope inner(&sink, live, obs::OpKind::kInsert, "basic_dict");
      EXPECT_FALSE(inner.owner());
      EXPECT_EQ(inner.id(), outer_id);
      EXPECT_EQ(obs::current_op_id(), outer_id);
    }
    EXPECT_TRUE(sink.records.empty());  // inner close emitted nothing
    EXPECT_EQ(obs::current_op_id(), outer_id);  // outer still open
  }
  ASSERT_EQ(sink.records.size(), 1u);
  EXPECT_EQ(sink.records[0].structure, "full_dict");
}

TEST(OpScope, IdsAreUniqueAcrossScopes) {
  RecordingSink sink;
  pdm::IoStats live{};
  std::uint64_t first;
  {
    obs::OpScope op(&sink, live, obs::OpKind::kLookup);
    first = op.id();
  }
  obs::OpScope op(&sink, live, obs::OpKind::kErase);
  EXPECT_GT(op.id(), first);
}

TEST(OpScope, NullSinkIsInactive) {
  pdm::IoStats live{};
  obs::OpScope op(nullptr, live, obs::OpKind::kLookup);
  EXPECT_FALSE(op.owner());
  EXPECT_EQ(op.id(), 0u);
  EXPECT_EQ(obs::current_op_id(), 0u);
}

TEST(OpScope, ScopesAreIndependentPerThread) {
  RecordingSink sink;
  pdm::IoStats live{};
  obs::OpScope op(&sink, live, obs::OpKind::kInsert);
  std::uint64_t other_thread_id = 99;
  std::thread t([&] { other_thread_id = obs::current_op_id(); });
  t.join();
  EXPECT_EQ(other_thread_id, 0u);  // the op is open on this thread only
  EXPECT_EQ(obs::current_op_id(), op.id());
}

// ---- stamping through DiskArray and Span ----

TEST(OpTagging, DiskArrayStampsEventsAndSpanStampsRecords) {
  pdm::DiskArray disks(pdm::Geometry{4, 8, 8, 0});
  auto ring = std::make_shared<obs::RingBufferSink>(64);
  disks.set_sink(ring);
  std::uint64_t op_id = 0;
  {
    obs::OpScope op(disks, obs::OpKind::kLookup, "test");
    op_id = op.id();
    obs::Span span(disks, "probe");
    std::vector<pdm::BlockAddr> addrs{{0, 0}, {1, 0}};
    std::vector<pdm::Block> out;
    disks.read_batch(addrs, out);
  }
  ASSERT_NE(op_id, 0u);
  auto events = ring->events();
  ASSERT_FALSE(events.empty());
  for (const auto& e : events) {
    EXPECT_EQ(e.op_id, op_id);
    EXPECT_EQ(e.op_kind, obs::OpKind::kLookup);
  }
  auto spans = ring->spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].op_id, op_id);
  ASSERT_EQ(ring->ops().size(), 1u);
  EXPECT_EQ(ring->ops()[0].id, op_id);
}

TEST(OpTagging, IoOutsideAnyScopeStaysUntagged) {
  pdm::DiskArray disks(pdm::Geometry{4, 8, 8, 0});
  auto ring = std::make_shared<obs::RingBufferSink>(16);
  disks.set_sink(ring);
  std::vector<pdm::BlockAddr> addrs{{0, 0}};
  std::vector<pdm::Block> out;
  disks.read_batch(addrs, out);
  ASSERT_EQ(ring->events().size(), 1u);
  EXPECT_EQ(ring->events()[0].op_id, 0u);
}

// The PR's acceptance criterion: every I/O event emitted while a dictionary
// operation is in flight carries that operation's (non-zero) id.
TEST(OpTagging, EveryDictionaryIoEventCarriesAnOpId) {
  core::DynamicDictParams p;
  p.universe_size = std::uint64_t{1} << 40;
  p.capacity = 400;
  p.value_bytes = 16;
  p.epsilon_op = 0.5;
  p.stripe_factor = 2.0;
  p.degree = core::DynamicDict::degree_for(p);
  pdm::DiskArray disks(pdm::Geometry{2 * p.degree, 64, 16, 0});
  pdm::DiskAllocator alloc;
  core::DynamicDict dict(disks, 0, alloc, p);

  // Attach after construction: only operation traffic is captured.
  auto ring = std::make_shared<obs::RingBufferSink>(std::size_t{1} << 16);
  disks.set_sink(ring);
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom,
                                      400, p.universe_size, 17);
  for (core::Key k : keys) dict.insert(k, core::value_for_key(k, 16));
  for (core::Key k : keys) dict.lookup(k);
  dict.lookup(p.universe_size - 1);  // miss
  for (std::size_t i = 0; i < keys.size(); i += 3) dict.erase(keys[i]);

  auto events = ring->events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(ring->dropped_events(), 0u);
  for (const auto& e : events) {
    ASSERT_NE(e.op_id, 0u) << "untagged I/O event during a dictionary op";
    EXPECT_NE(e.op_kind, obs::OpKind::kNone);
  }
  for (const auto& s : ring->spans()) EXPECT_NE(s.op_id, 0u);
  // One OpRecord per user-facing call, nested scopes notwithstanding.
  EXPECT_EQ(ring->ops().size(),
            keys.size() + keys.size() + 1 + (keys.size() + 2) / 3);
}

// ---- OpAttributor ----

TEST(OpAttributor, ReconstructsExactPerOpCostsForBasicDict) {
  pdm::DiskArray disks(pdm::Geometry{16, 32, 16, 0});
  auto attr = std::make_shared<obs::OpAttributor>();
  disks.set_sink(attr);
  core::BasicDictParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.capacity = 500;
  p.value_bytes = 8;
  p.degree = 16;
  core::BasicDict dict(disks, 0, 0, p);
  const std::uint64_t n = 200;
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, n,
                                      p.universe_size, 5);
  for (core::Key k : keys) dict.insert(k, core::value_for_key(k, 8));
  for (core::Key k : keys) dict.lookup(k);

  auto kinds = attr->kind_stats();
  ASSERT_TRUE(kinds.count("insert"));
  ASSERT_TRUE(kinds.count("lookup"));
  EXPECT_EQ(kinds["insert"].ops, n);
  EXPECT_EQ(kinds["lookup"].ops, n);
  // Section 4.1 guarantees: lookup is exactly 1 round, insert exactly 2.
  EXPECT_EQ(kinds["lookup"].hist[1], n);
  EXPECT_EQ(kinds["lookup"].parallel_ios, n);
  EXPECT_EQ(kinds["insert"].hist[2], n);
  EXPECT_EQ(kinds["insert"].parallel_ios, 2 * n);
  EXPECT_EQ(attr->finished_ops(), 2 * n);
  EXPECT_EQ(attr->untagged_events(), 0u);

  auto worst = attr->worst_ops();
  ASSERT_FALSE(worst.empty());
  EXPECT_LE(worst.size(), obs::OpAttributor::kDefaultWorstK);
  for (std::size_t i = 1; i < worst.size(); ++i)
    EXPECT_GE(worst[i - 1].parallel_ios, worst[i].parallel_ios);
  EXPECT_EQ(worst[0].parallel_ios, 2u);  // an insert
  EXPECT_FALSE(worst[0].spans.empty());
  // Per-disk counts reconcile with the op's block total.
  std::uint64_t per_disk_sum = 0;
  for (std::uint64_t b : worst[0].per_disk) per_disk_sum += b;
  EXPECT_EQ(per_disk_sum, worst[0].blocks);

  // Render + JSON shapes exist and carry the headline numbers.
  EXPECT_NE(attr->render().find("lookup"), std::string::npos);
  obs::Json j = attr->to_json();
  EXPECT_EQ(j.find("finished_ops")->as_int(),
            static_cast<std::int64_t>(2 * n));
  EXPECT_TRUE(j.find("kinds")->find("lookup"));
}

TEST(OpAttributor, CountsUntaggedEventsAsObservabilityGap) {
  pdm::DiskArray disks(pdm::Geometry{4, 8, 8, 0});
  auto attr = std::make_shared<obs::OpAttributor>();
  disks.set_sink(attr);
  std::vector<pdm::BlockAddr> addrs{{0, 0}, {1, 0}};
  std::vector<pdm::Block> out;
  disks.read_batch(addrs, out);  // no OpScope open
  EXPECT_EQ(attr->untagged_events(), 1u);
  EXPECT_EQ(attr->finished_ops(), 0u);
}

TEST(OpAttributor, SyntheticRebuildSpansAmortizeIntoKindStats) {
  obs::OpAttributor attr;
  obs::IoEvent ev{};
  ev.op_id = 42;
  ev.op_kind = obs::OpKind::kInsert;
  ev.rounds = 3;
  attr.on_io(ev);
  obs::SpanRecord rebuild{};
  rebuild.path = "insert/rebuild";
  rebuild.op_id = 42;
  rebuild.io.parallel_ios = 2;
  attr.on_span(rebuild);
  obs::SpanRecord other{};
  other.path = "insert/probe";  // leaf != "rebuild": not amortized
  other.op_id = 42;
  other.io.parallel_ios = 1;
  attr.on_span(other);
  obs::OpRecord op{};
  op.id = 42;
  op.kind = obs::OpKind::kInsert;
  attr.on_op(op);

  auto kinds = attr.kind_stats();
  ASSERT_TRUE(kinds.count("insert"));
  EXPECT_EQ(kinds["insert"].rebuild_ios, 2u);
  EXPECT_EQ(kinds["insert"].rebuild_spans, 1u);
  EXPECT_EQ(kinds["insert"].parallel_ios, 3u);
  auto worst = attr.worst_ops();
  ASSERT_EQ(worst.size(), 1u);
  EXPECT_EQ(worst[0].spans.size(), 2u);
}

TEST(OpAttributor, FullDictMigrationChargesRebuildSpans) {
  pdm::DiskArray disks(pdm::Geometry{32, 64, 16, 0});
  auto attr = std::make_shared<obs::OpAttributor>();
  disks.set_sink(attr);
  pdm::DiskAllocator alloc;
  core::FullDictParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.value_bytes = 8;
  p.degree = 16;
  p.initial_capacity = 32;
  core::FullDict dict(disks, 0, alloc, p);
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom,
                                      400, std::uint64_t{1} << 32, 9);
  for (core::Key k : keys) dict.insert(k, core::value_for_key(k, 8));
  ASSERT_GT(dict.rebuilds(), 0u);  // growth forced at least one migration
  auto kinds = attr->kind_stats();
  ASSERT_TRUE(kinds.count("insert"));
  // The Overmars–van Leeuwen migration ran under insert ops and its I/O is
  // attributed to them via the "rebuild" spans — the Thm 7-style amortized
  // accounting the attributor reports as "rebuild share".
  EXPECT_GT(kinds["insert"].rebuild_ios, 0u);
  EXPECT_GT(kinds["insert"].rebuild_spans, 0u);
  EXPECT_LE(kinds["insert"].rebuild_ios, kinds["insert"].parallel_ios);
  EXPECT_EQ(attr->untagged_events(), 0u);
}

// ---- MultiSink mutation semantics (the doctor pipeline wires attributor +
// monitor into one array through these) ----

TEST(MultiSink, AddAndRemoveChangeFutureDeliveryOnly) {
  auto a = std::make_shared<obs::RingBufferSink>(16);
  auto b = std::make_shared<obs::RingBufferSink>(16);
  obs::MultiSink multi({a});
  obs::IoEvent ev{};
  ev.rounds = 1;
  multi.on_io(ev);
  EXPECT_EQ(a->events().size(), 1u);

  multi.add(b);
  EXPECT_EQ(multi.size(), 2u);
  multi.on_io(ev);
  EXPECT_EQ(a->events().size(), 2u);
  EXPECT_EQ(b->events().size(), 1u);

  EXPECT_TRUE(multi.remove(b.get()));
  EXPECT_FALSE(multi.remove(b.get()));  // already gone
  multi.on_io(ev);
  multi.on_op(obs::OpRecord{});
  EXPECT_EQ(a->events().size(), 3u);
  EXPECT_EQ(a->ops().size(), 1u);
  // After remove() returned, no new delivery starts to the removed sink.
  EXPECT_EQ(b->events().size(), 1u);
  EXPECT_EQ(b->ops().size(), 0u);
}

TEST(MultiSink, RemovalDuringInFlightDeliveryIsSafe) {
  // A sink whose delivery blocks until the main thread has removed (and
  // dropped) the sink that comes after it in the fan-out list: the in-flight
  // emission must still complete against its snapshot without touching freed
  // memory, and the removed sink must not be invoked for later events.
  class GateSink : public obs::NullSink {
   public:
    std::atomic<bool> entered{false};
    std::atomic<bool> release{false};
    void on_io(const obs::IoEvent&) override {
      entered = true;
      while (!release) std::this_thread::yield();
    }
  };
  // Counts into test-owned storage so delivery can be asserted even after
  // the sink object itself has been destroyed.
  class CountingSink : public obs::NullSink {
   public:
    explicit CountingSink(std::atomic<std::uint64_t>* count) : count_(count) {}
    void on_io(const obs::IoEvent&) override { ++*count_; }

   private:
    std::atomic<std::uint64_t>* count_;
  };

  std::atomic<std::uint64_t> delivered{0};
  auto gate = std::make_shared<GateSink>();
  auto counter = std::make_shared<CountingSink>(&delivered);
  obs::MultiSink multi({gate, counter});

  std::thread emitter([&] {
    obs::IoEvent ev{};
    multi.on_io(ev);  // blocks inside gate with counter still in snapshot
  });
  while (!gate->entered) std::this_thread::yield();
  EXPECT_TRUE(multi.remove(counter.get()));
  std::weak_ptr<obs::Sink> weak = counter;
  counter.reset();  // snapshot inside the in-flight emission keeps it alive
  EXPECT_FALSE(weak.expired());
  gate->release = true;
  emitter.join();
  // The in-flight emission finished delivering to its snapshot (counter got
  // the event exactly once), then the snapshot released the last reference.
  EXPECT_EQ(delivered, 1u);
  EXPECT_TRUE(weak.expired());

  // New emissions reach only the surviving sink.
  obs::IoEvent ev{};
  multi.on_io(ev);
  EXPECT_EQ(multi.size(), 1u);
  EXPECT_EQ(delivered, 1u);  // the removed sink was never invoked again
}

TEST(MultiSink, ConcurrentEmitAndMutateStress) {
  auto stable = std::make_shared<obs::RingBufferSink>(4);
  obs::MultiSink multi({stable});
  std::atomic<bool> stop{false};
  std::thread emitter([&] {
    obs::IoEvent ev{};
    obs::OpRecord op{};
    while (!stop) {
      multi.on_io(ev);
      multi.on_op(op);
    }
  });
  for (int i = 0; i < 500; ++i) {
    auto transient = std::make_shared<obs::RingBufferSink>(4);
    multi.add(transient);
    multi.remove(transient.get());
  }
  stop = true;
  emitter.join();
  EXPECT_EQ(multi.size(), 1u);
}

}  // namespace
}  // namespace pddict
