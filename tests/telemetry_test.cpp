// Tests for the live-telemetry layer (obs/histogram, obs/telemetry).
//
// Three contracts pinned here:
//   * LatencyHistogram percentiles agree with the documented nearest-rank
//     convention — exactly for values under the sub-bucket width (the per-op
//     parallel-I/O domain the bench reports come from, so default reports
//     stay byte-identical), and within one log-linear bucket (a 1/128
//     relative error) everywhere else; concurrent recording and shard
//     merging are both equivalent to one serial pass over the same multiset.
//   * The sampler's time series always ends on a source's exact end-of-run
//     counters: the "source_removed" frame taken by the DiskArray destructor
//     must equal the IoStats read just before destruction, with gapless seq
//     and documented reasons throughout.
//   * The watchdog raises on rising edges only (with the bound-violation
//     re-arm), and a genuinely stalled executor worker — forced through the
//     job-delay test hook — is detected while the batch is still running.
//
// The chaos case at the bottom is the TSan target (-DPDDICT_SANITIZE=thread
// build tree, like sink_stress_test): arrays registering/unregistering while
// scrapers sample, render and check health concurrently.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/telemetry.hpp"
#include "pdm/disk_array.hpp"

namespace pddict::obs {
namespace {

using pdm::Block;
using pdm::BlockAddr;
using pdm::DiskArray;
using pdm::Geometry;

constexpr Geometry kGeom{8, 16, 8, 0};

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The documented reference: nearest-rank with rank = floor(q*n), clamped.
std::uint64_t nearest_rank(std::vector<std::uint64_t> v, double q) {
  std::sort(v.begin(), v.end());
  auto rank = static_cast<std::size_t>(q * static_cast<double>(v.size()));
  if (rank >= v.size()) rank = v.size() - 1;
  return v[rank];
}

/// A small deterministic batch workload against the raw PDM interface.
void run_batches(DiskArray& disks, int steps) {
  for (int step = 0; step < steps; ++step) {
    std::vector<std::pair<BlockAddr, Block>> writes;
    for (std::uint32_t d = 0; d < kGeom.num_disks; ++d) {
      Block b(kGeom.block_bytes());
      for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<std::byte>((step + d + i) & 0xff);
      writes.emplace_back(BlockAddr{d, static_cast<std::uint64_t>(step % 8)},
                          std::move(b));
    }
    disks.write_batch(writes);
    std::vector<BlockAddr> reads;
    for (std::uint32_t d = 0; d < kGeom.num_disks; ++d)
      reads.push_back({d, static_cast<std::uint64_t>(step % 8)});
    std::vector<Block> out;
    disks.read_batch(reads, out);
  }
}

// ---- histogram ----

TEST(LatencyHistogramTest, SmallValuesMatchNearestRankExactly) {
  // Values below the sub-bucket count (128) land in unit-width buckets, so
  // every quantile must equal the nearest-rank answer exactly. This is the
  // property that keeps default bench reports byte-identical after the
  // sample-vector -> histogram switch.
  LatencyHistogram hist;
  std::vector<std::uint64_t> values;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    std::uint64_t v = mix(i) % 128;
    values.push_back(v);
    hist.record(v);
  }
  for (double q : {0.0, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999})
    EXPECT_EQ(hist.value_at_quantile(q), nearest_rank(values, q)) << "q=" << q;
  EXPECT_EQ(hist.count(), values.size());
  EXPECT_EQ(hist.min(), *std::min_element(values.begin(), values.end()));
  EXPECT_EQ(hist.max(), *std::max_element(values.begin(), values.end()));
}

TEST(LatencyHistogramTest, LargeValuesWithinOneLogLinearBucket) {
  // Above the sub-bucket range the histogram may round up to its bucket's
  // upper edge — never down, and never by more than the bucket width, which
  // is a 1/128 relative error at 7 sub-bucket bits.
  LatencyHistogram hist;
  std::vector<std::uint64_t> values;
  for (std::uint64_t i = 0; i < 50'000; ++i) {
    std::uint64_t v = 1 + mix(i) % 1'000'000'000;
    values.push_back(v);
    hist.record(v);
  }
  for (double q : {0.50, 0.90, 0.95, 0.99}) {
    std::uint64_t exact = nearest_rank(values, q);
    std::uint64_t approx = hist.value_at_quantile(q);
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(approx, exact + exact / 128 + 1) << "q=" << q;
  }
  std::uint64_t sum = 0;
  for (std::uint64_t v : values) sum += v;
  EXPECT_EQ(hist.sum(), sum);
  EXPECT_EQ(hist.max(), *std::max_element(values.begin(), values.end()));
}

TEST(LatencyHistogramTest, ConcurrentRecordMatchesSerial) {
  // record() is lock-free; any interleaving of the same multiset must yield
  // the same histogram as a serial pass.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  LatencyHistogram concurrent;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        concurrent.record(mix(t * kPerThread + i) % 500'000);
    });
  }
  for (std::thread& t : threads) t.join();

  LatencyHistogram serial;
  for (int t = 0; t < kThreads; ++t)
    for (std::uint64_t i = 0; i < kPerThread; ++i)
      serial.record(mix(t * kPerThread + i) % 500'000);

  EXPECT_EQ(concurrent.count(), serial.count());
  EXPECT_EQ(concurrent.sum(), serial.sum());
  EXPECT_EQ(concurrent.min(), serial.min());
  EXPECT_EQ(concurrent.max(), serial.max());
  for (double q : {0.50, 0.95, 0.99, 0.999})
    EXPECT_EQ(concurrent.value_at_quantile(q), serial.value_at_quantile(q));
}

TEST(LatencyHistogramTest, ShardMergeMatchesSingle) {
  // Per-thread shards merged at the end are equivalent to one shared
  // histogram — the aggregation pattern bench_util uses.
  constexpr int kShards = 4;
  constexpr std::uint64_t kPerShard = 10'000;
  std::vector<LatencyHistogram> shards(kShards);
  std::vector<std::thread> threads;
  for (int t = 0; t < kShards; ++t) {
    threads.emplace_back([&shards, t] {
      for (std::uint64_t i = 0; i < kPerShard; ++i)
        shards[static_cast<std::size_t>(t)].record(
            mix(0xabc + t * kPerShard + i) % 1'000'000);
    });
  }
  for (std::thread& t : threads) t.join();
  LatencyHistogram merged;
  for (const LatencyHistogram& shard : shards) merged.merge(shard);

  LatencyHistogram single;
  for (int t = 0; t < kShards; ++t)
    for (std::uint64_t i = 0; i < kPerShard; ++i)
      single.record(mix(0xabc + t * kPerShard + i) % 1'000'000);

  EXPECT_EQ(merged.count(), single.count());
  EXPECT_EQ(merged.sum(), single.sum());
  EXPECT_EQ(merged.min(), single.min());
  EXPECT_EQ(merged.max(), single.max());
  for (double q : {0.50, 0.95, 0.99})
    EXPECT_EQ(merged.value_at_quantile(q), single.value_at_quantile(q));
}

TEST(LatencyHistogramTest, EmptyShardMergeIsIdentity) {
  // bench_util folds per-thread shards with merge(); threads that never
  // recorded must not perturb the result. The empty side's internal min
  // sentinel (~0) in particular must never leak into the merged extremes.
  LatencyHistogram full;
  for (std::uint64_t v : {7ull, 42ull, 99ull, 1'000'000ull}) full.record(v);
  std::uint64_t count = full.count(), sum = full.sum();

  LatencyHistogram empty;
  full.merge(empty);  // full <- empty: identity
  EXPECT_EQ(full.count(), count);
  EXPECT_EQ(full.sum(), sum);
  EXPECT_EQ(full.min(), 7u);
  EXPECT_EQ(full.max(), 1'000'000u);

  LatencyHistogram fresh;
  fresh.merge(full);  // empty <- full: exact copy
  EXPECT_EQ(fresh.count(), full.count());
  EXPECT_EQ(fresh.sum(), full.sum());
  EXPECT_EQ(fresh.min(), full.min());
  EXPECT_EQ(fresh.max(), full.max());
  for (double q : {0.0, 0.5, 0.95, 1.0})
    EXPECT_EQ(fresh.value_at_quantile(q), full.value_at_quantile(q))
        << "q=" << q;

  LatencyHistogram still_empty;
  still_empty.merge(empty);  // empty <- empty stays empty
  EXPECT_EQ(still_empty.count(), 0u);
  EXPECT_EQ(still_empty.min(), 0u);
  EXPECT_EQ(still_empty.max(), 0u);
  EXPECT_EQ(still_empty.value_at_quantile(0.5), 0u);
}

TEST(LatencyHistogramTest, TopBucketSaturation) {
  // The final bucket's upper edge is exactly UINT64_MAX, so quantiles over
  // values near the top of the range saturate there instead of overflowing
  // the bucket-edge arithmetic.
  constexpr std::uint64_t kTop = ~std::uint64_t{0};
  std::size_t last = LatencyHistogram::bucket_index(kTop);
  EXPECT_EQ(last, LatencyHistogram::kNumBuckets - 1);
  EXPECT_EQ(LatencyHistogram::bucket_upper(last), kTop);
  EXPECT_LE(LatencyHistogram::bucket_lower(last), kTop - 1);

  LatencyHistogram hist;
  hist.record(kTop);
  hist.record(kTop - 1);
  hist.record(LatencyHistogram::bucket_lower(last));
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.max(), kTop);
  EXPECT_EQ(hist.min(), LatencyHistogram::bucket_lower(last));
  // All three samples share the top bucket, so every quantile reports its
  // upper edge. (sum() wraps modulo 2^64 at this magnitude — not asserted.)
  for (double q : {0.0, 0.5, 0.999, 1.0})
    EXPECT_EQ(hist.value_at_quantile(q), kTop) << "q=" << q;
}

TEST(LatencyHistogramTest, QuantileBoundariesClamp) {
  // q = 0 is the smallest recorded value, q = 1 clamps its nearest-rank
  // index to the largest, and out-of-range q never indexes outside the
  // recorded distribution. Empty histograms answer 0 everywhere.
  LatencyHistogram empty;
  for (double q : {-1.0, 0.0, 0.5, 1.0, 2.0})
    EXPECT_EQ(empty.value_at_quantile(q), 0u) << "q=" << q;

  LatencyHistogram hist;
  for (std::uint64_t v = 1; v <= 100; ++v) hist.record(v);
  EXPECT_EQ(hist.value_at_quantile(0.0), 1u);
  EXPECT_EQ(hist.value_at_quantile(1.0), 100u);
  EXPECT_EQ(hist.value_at_quantile(-0.5), 1u);  // clamps to q=0, not the max
  EXPECT_EQ(hist.value_at_quantile(1.5), 100u);
  // A single-value histogram answers that value at every quantile.
  LatencyHistogram one;
  one.record(17);
  for (double q : {0.0, 0.5, 1.0})
    EXPECT_EQ(one.value_at_quantile(q), 17u) << "q=" << q;
}

// ---- watchdog rules ----

TEST(HealthWatchdogTest, BoundMarginRisingEdgeAndViolationRearm) {
  HealthWatchdog dog;
  double margin = 0.5;
  std::uint64_t violations = 0;
  dog.add_source("bounds", [&] {
    HealthSample h;
    h.has_bounds = true;
    h.worst_margin = margin;
    h.bound_violations = violations;
    return h;
  });

  EXPECT_TRUE(dog.check_now().empty());  // healthy

  margin = 1.5;
  violations = 1;
  auto fresh = dog.check_now();
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].kind, "bound_margin_breach");
  EXPECT_EQ(fresh[0].source, "bounds");
  EXPECT_DOUBLE_EQ(fresh[0].measured, 1.5);

  // Unchanged bad state: rising edge already reported.
  EXPECT_TRUE(dog.check_now().empty());

  // A NEW violation re-arms the edge even though the margin never recovered.
  violations = 2;
  EXPECT_EQ(dog.check_now().size(), 1u);

  // Recovery clears; the next breach is a fresh edge.
  margin = 0.8;
  EXPECT_TRUE(dog.check_now().empty());
  margin = 1.2;
  EXPECT_EQ(dog.check_now().size(), 1u);

  EXPECT_EQ(dog.total_alerts(), 3u);
  EXPECT_EQ(dog.alert_counts().at("bound_margin_breach"), 3u);
}

TEST(HealthWatchdogTest, DirtyFrameFloodRisingEdge) {
  HealthWatchdog dog;
  std::size_t dirty = 10;
  std::uint64_t id = dog.add_source("cache", [&] {
    HealthSample h;
    h.has_cache = true;
    h.cache_capacity = 10;
    h.cache_dirty_frames = dirty;
    return h;
  });

  auto fresh = dog.check_now();
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].kind, "dirty_frame_flood");
  EXPECT_TRUE(dog.check_now().empty());  // still flooded, already reported
  dirty = 0;
  EXPECT_TRUE(dog.check_now().empty());  // recovered
  dirty = 10;
  EXPECT_EQ(dog.check_now().size(), 1u);  // fresh edge

  dog.remove_source(id);
  EXPECT_TRUE(dog.check_now().empty());
}

TEST(HealthWatchdogTest, ForcedWorkerStallRaisesAlert) {
  // The acceptance scenario: delay every backend transfer via the executor's
  // test hook, then watch the watchdog catch a worker mid-stall while the
  // batch is still executing. health_sample() deliberately bypasses the
  // array's scheduling lock (held for the whole batch), so the probe works
  // exactly when it is needed.
  DiskArray disks(kGeom);
  disks.set_io_threads(2);
  disks.set_exec_job_delay_for_testing(20'000'000);  // 20 ms per transfer

  WatchdogConfig cfg;
  cfg.stall_ns = 2'000'000;  // 2 ms — every delayed job trips it
  HealthWatchdog dog(cfg);
  dog.add_source("pdm", [&] { return disks.health_sample(); });

  std::thread writer([&] { run_batches(disks, 4); });
  bool stalled = false;
  for (int i = 0; i < 5000 && !stalled; ++i) {
    for (const HealthEvent& e : dog.check_now())
      if (e.kind == "worker_stall") stalled = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  writer.join();
  disks.set_exec_job_delay_for_testing(0);
  EXPECT_TRUE(stalled) << "watchdog missed a 20 ms transfer stall";
  EXPECT_GE(dog.alert_counts().at("worker_stall"), 1u);
}

// ---- sampler ----

TEST(TelemetrySamplerTest, SeriesEndsOnExactEndOfRunCounters) {
  TelemetrySampler::Options opt;
  opt.interval_ms = 5;
  auto sampler = std::make_shared<TelemetrySampler>(opt);
  sampler->set_watchdog(std::make_shared<HealthWatchdog>());
  set_default_telemetry(sampler);
  sampler->start();

  pdm::IoStats end;
  {
    DiskArray disks(kGeom);  // self-registers with the default sampler
    run_batches(disks, 16);
    end = disks.stats();
  }  // destructor takes the "source_removed" frame, then unregisters

  set_default_telemetry(nullptr);
  sampler->stop();

  std::vector<Json> frames = sampler->frames();
  ASSERT_GE(frames.size(), 4u);  // start, source_added, source_removed, final
  EXPECT_EQ(frames.front().find("reason")->as_string(), "start");
  EXPECT_EQ(frames.back().find("reason")->as_string(), "final");

  // Gapless seq (ring never overflowed at this scale).
  for (std::size_t i = 0; i < frames.size(); ++i)
    EXPECT_EQ(frames[i].find("seq")->as_int(), static_cast<std::int64_t>(i));

  // The last frame still carrying the source is its end-of-run record.
  const Json* final_snap = nullptr;
  std::string reason;
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    const Json* sources = it->find("sources");
    if (!sources || sources->as_object().empty()) continue;
    final_snap = &sources->as_object().begin()->second;
    reason = it->find("reason")->as_string();
    break;
  }
  ASSERT_NE(final_snap, nullptr);
  EXPECT_EQ(reason, "source_removed");
  const Json* io = final_snap->find("io");
  ASSERT_NE(io, nullptr);
  EXPECT_EQ(io->find("parallel_ios")->as_int(),
            static_cast<std::int64_t>(end.parallel_ios));
  EXPECT_EQ(io->find("read_rounds")->as_int(),
            static_cast<std::int64_t>(end.read_rounds));
  EXPECT_EQ(io->find("write_rounds")->as_int(),
            static_cast<std::int64_t>(end.write_rounds));
  EXPECT_EQ(io->find("blocks_read")->as_int(),
            static_cast<std::int64_t>(end.blocks_read));
  EXPECT_EQ(io->find("blocks_written")->as_int(),
            static_cast<std::int64_t>(end.blocks_written));
}

TEST(TelemetrySamplerTest, PrometheusRenderCoversIoCounters) {
  auto sampler = std::make_shared<TelemetrySampler>();
  set_default_telemetry(sampler);
  {
    DiskArray disks(kGeom);
    run_batches(disks, 2);
    sampler->sample_now();
    std::string text = sampler->render_prometheus();
    EXPECT_NE(text.find("pddict_io_parallel_ios{source=\"pdm#"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("pddict_io_blocks_read{source=\"pdm#"),
              std::string::npos);
  }
  set_default_telemetry(nullptr);
}

TEST(TelemetrySamplerTest, StartStopChaosUnderConcurrentScrapes) {
  // The TSan case: arrays come and go (register/unregister + frames from
  // their ctor/dtor), a scraper hammers sample_now/render/frames, a health
  // poller drives the watchdog, and the main thread cycles start/stop.
  TelemetrySampler::Options opt;
  opt.interval_ms = 1;
  opt.ring_capacity = 64;
  auto sampler = std::make_shared<TelemetrySampler>(opt);
  auto dog = std::make_shared<HealthWatchdog>();
  sampler->set_watchdog(dog);
  set_default_telemetry(sampler);
  sampler->start();

  std::atomic<bool> go{true};
  std::thread arrays([&] {
    for (int i = 0; i < 10; ++i) {
      DiskArray disks(kGeom);
      disks.set_io_threads(2);
      run_batches(disks, 2);
    }
  });
  std::thread scraper([&] {
    while (go.load(std::memory_order_relaxed)) {
      sampler->sample_now();
      sampler->render_prometheus();
      sampler->frames_emitted();
      std::this_thread::yield();
    }
  });
  std::thread health([&] {
    while (go.load(std::memory_order_relaxed)) {
      dog->check_now();
      dog->alert_counts();
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    sampler->stop();
    sampler->start();
  }
  arrays.join();
  go.store(false, std::memory_order_relaxed);
  scraper.join();
  health.join();
  set_default_telemetry(nullptr);
  sampler->stop();

  // Every array contributed a source_added and a source_removed frame on top
  // of whatever the interval thread and the scraper produced.
  EXPECT_GE(sampler->frames_emitted(), 20u);
  // The ring is bounded; overflow must be counted, not silent.
  EXPECT_EQ(sampler->frames_emitted(),
            sampler->frames_dropped() + sampler->frames().size());
}

}  // namespace
}  // namespace pddict::obs
