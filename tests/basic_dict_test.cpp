// Tests for the Section 4.1 basic dictionary: correctness, the 1-I/O lookup /
// 2-I/O update guarantees, the small-B bucket variant, and the wide
// (full-bandwidth) variant.
#include <gtest/gtest.h>

#include <map>

#include "core/basic_dict.hpp"
#include "core/bucket_dict.hpp"
#include "core/wide_dict.hpp"
#include "pdm/io_stats.hpp"
#include "workload/workload.hpp"

namespace pddict::core {
namespace {

pdm::DiskArray make_disks(std::uint32_t d = 16, std::uint32_t block_items = 32,
                          std::uint32_t item_bytes = 16) {
  return pdm::DiskArray(pdm::Geometry{d, block_items, item_bytes, 0});
}

BasicDictParams small_params(std::uint64_t capacity = 1000,
                             std::size_t value_bytes = 8,
                             std::uint32_t degree = 16) {
  BasicDictParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.capacity = capacity;
  p.value_bytes = value_bytes;
  p.degree = degree;
  return p;
}

TEST(BasicDict, InsertLookupRoundTrip) {
  auto disks = make_disks();
  BasicDict dict(disks, 0, 0, small_params());
  for (Key k : {Key{1}, Key{77}, Key{1u << 30}}) {
    EXPECT_TRUE(dict.insert(k, value_for_key(k, 8)));
  }
  EXPECT_EQ(dict.size(), 3u);
  for (Key k : {Key{1}, Key{77}, Key{1u << 30}}) {
    auto r = dict.lookup(k);
    ASSERT_TRUE(r.found) << k;
    EXPECT_EQ(r.value, value_for_key(k, 8));
  }
  EXPECT_FALSE(dict.lookup(2).found);
}

TEST(BasicDict, DuplicateInsertRejected) {
  auto disks = make_disks();
  BasicDict dict(disks, 0, 0, small_params());
  EXPECT_TRUE(dict.insert(5, value_for_key(5, 8)));
  EXPECT_FALSE(dict.insert(5, value_for_key(5, 8, 1)));
  EXPECT_EQ(dict.size(), 1u);
  // Original value intact.
  EXPECT_EQ(dict.lookup(5).value, value_for_key(5, 8));
}

TEST(BasicDict, LookupIsOneParallelIoInsertIsTwo) {
  auto disks = make_disks();
  BasicDict dict(disks, 0, 0, small_params());
  for (Key k = 0; k < 200; ++k) dict.insert(k * 17, value_for_key(k * 17, 8));
  for (Key k = 0; k < 200; ++k) {
    pdm::IoProbe probe(disks);
    dict.lookup(k * 17);
    EXPECT_EQ(probe.ios(), 1u) << "lookup must be exactly one parallel I/O";
  }
  {
    pdm::IoProbe probe(disks);
    dict.lookup(999999);  // miss
    EXPECT_EQ(probe.ios(), 1u);
  }
  pdm::IoProbe probe(disks);
  dict.insert(424242, value_for_key(424242, 8));
  EXPECT_EQ(probe.ios(), 2u) << "insert = 1 read + 1 write";
}

TEST(BasicDict, EraseMarksWithoutMoving) {
  auto disks = make_disks();
  BasicDict dict(disks, 0, 0, small_params());
  for (Key k = 100; k < 120; ++k) dict.insert(k, value_for_key(k, 8));
  EXPECT_TRUE(dict.erase(110));
  EXPECT_FALSE(dict.erase(110));
  EXPECT_FALSE(dict.lookup(110).found);
  EXPECT_EQ(dict.size(), 19u);
  // Every other key unaffected.
  for (Key k = 100; k < 120; ++k)
    if (k != 110) {
      EXPECT_TRUE(dict.lookup(k).found);
    }
  // Erase costs 1 read + 1 write.
  pdm::IoProbe probe(disks);
  dict.erase(111);
  EXPECT_EQ(probe.ios(), 2u);
  // Reinsert after erase works.
  EXPECT_TRUE(dict.insert(110, value_for_key(110, 8, 9)));
  EXPECT_EQ(dict.lookup(110).value, value_for_key(110, 8, 9));
}

TEST(BasicDict, TombstoneSlotsReusedAcrossEraseInsertCycles) {
  auto disks = make_disks();
  const std::uint64_t n = 500;
  BasicDict dict(disks, 0, 0, small_params(n));
  for (Key k = 1; k <= n; ++k) dict.insert(k, value_for_key(k, 8));
  std::uint32_t baseline = dict.peek_max_load();
  // Many erase/reinsert cycles: without slot reuse the bucket counts would
  // inflate by one per cycle and eventually overflow.
  for (int cycle = 0; cycle < 20; ++cycle) {
    for (Key k = 1; k <= n; ++k) ASSERT_TRUE(dict.erase(k));
    for (Key k = 1; k <= n; ++k)
      ASSERT_TRUE(dict.insert(k, value_for_key(k, 8, cycle)));
  }
  EXPECT_EQ(dict.peek_max_load(), baseline)
      << "erase/insert cycles must not inflate bucket loads";
  for (Key k = 1; k <= n; ++k)
    EXPECT_EQ(dict.lookup(k).value, value_for_key(k, 8, 19));
}

TEST(BasicDict, RejectsBadInputs) {
  auto disks = make_disks();
  BasicDict dict(disks, 0, 0, small_params());
  EXPECT_THROW(dict.insert(kTombstone, value_for_key(1, 8)),
               std::invalid_argument);
  EXPECT_THROW(dict.lookup(std::uint64_t{1} << 33), std::invalid_argument);
  EXPECT_THROW(dict.insert(1, value_for_key(1, 4)), std::invalid_argument);
  BasicDictParams p = small_params();
  p.degree = 64;  // more stripes than disks
  EXPECT_THROW(BasicDict(disks, 0, 0, p), std::invalid_argument);
}

TEST(BasicDict, CapacityEnforced) {
  auto disks = make_disks();
  BasicDict dict(disks, 0, 0, small_params(10));
  for (Key k = 0; k < 10; ++k) EXPECT_TRUE(dict.insert(k, value_for_key(k, 8)));
  EXPECT_THROW(dict.insert(10, value_for_key(10, 8)), CapacityError);
  EXPECT_FALSE(dict.insert(3, value_for_key(3, 8)));  // dup still detected
}

TEST(BasicDict, FullCapacityLoadStaysBounded) {
  // Fill to capacity; the deterministic balancing must keep every bucket
  // within its block (no overflow, i.e. no CapacityError).
  auto disks = make_disks(16, 64, 16);
  const std::uint64_t n = 4000;
  BasicDict dict(disks, 0, 0, small_params(n));
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, n,
                                      std::uint64_t{1} << 32, 7);
  for (Key k : keys) ASSERT_TRUE(dict.insert(k, value_for_key(k, 8)));
  for (Key k : keys) ASSERT_TRUE(dict.lookup(k).found);
  EXPECT_LE(dict.peek_max_load(), dict.bucket_capacity());
  // Average load sanity: max is average plus the Lemma 3 log-term slack.
  double avg = static_cast<double>(n) / dict.num_buckets();
  EXPECT_LE(dict.peek_max_load(), avg + 12);
}

TEST(BasicDict, AdversarialKeyPatternsStillWork) {
  for (auto pattern :
       {workload::KeyPattern::kDenseSequential,
        workload::KeyPattern::kClustered, workload::KeyPattern::kSharedLowBits}) {
    auto disks = make_disks();
    const std::uint64_t n = 1500;
    BasicDict dict(disks, 0, 0, small_params(n));
    auto keys =
        workload::generate_keys(pattern, n, std::uint64_t{1} << 32, 11);
    for (Key k : keys) ASSERT_TRUE(dict.insert(k, value_for_key(k, 8)));
    for (Key k : keys) EXPECT_TRUE(dict.lookup(k).found);
  }
}

TEST(BasicDict, ZeroValueBytesMembershipOnly) {
  auto disks = make_disks();
  BasicDict dict(disks, 0, 0, small_params(100, 0));
  EXPECT_TRUE(dict.insert(42, {}));
  EXPECT_TRUE(dict.lookup(42).found);
  EXPECT_TRUE(dict.lookup(42).value.empty());
}

TEST(BasicDict, OffsetPlacementIsolation) {
  // Two dictionaries on the same disks at different bases don't interfere.
  auto disks = make_disks();
  BasicDict a(disks, 0, 0, small_params(100));
  BasicDict b(disks, 0, 10000, small_params(100));
  a.insert(7, value_for_key(7, 8, 1));
  b.insert(7, value_for_key(7, 8, 2));
  EXPECT_EQ(a.lookup(7).value, value_for_key(7, 8, 1));
  EXPECT_EQ(b.lookup(7).value, value_for_key(7, 8, 2));
  a.erase(7);
  EXPECT_TRUE(b.lookup(7).found);
}

// ---- small-B variant (bucket_dict) ----

TEST(BucketDict, WorksWithTinyBlocks) {
  // Blocks of 2 items × 16 bytes: far below log N — the atomic-heap regime.
  pdm::DiskArray disks(pdm::Geometry{16, 2, 16, 0});
  auto dict =
      make_bucket_dict(disks, 0, 0, std::uint64_t{1} << 32, 500, 8, 16, 16);
  EXPECT_GT(dict.bucket_blocks(), 1u);
  for (Key k = 0; k < 500; ++k)
    ASSERT_TRUE(dict.insert(k * 3 + 1, value_for_key(k * 3 + 1, 8)));
  for (Key k = 0; k < 500; ++k)
    EXPECT_TRUE(dict.lookup(k * 3 + 1).found);
  // O(1) I/Os: exactly bucket_blocks rounds per lookup.
  pdm::IoProbe probe(disks);
  dict.lookup(1);
  EXPECT_EQ(probe.ios(), dict.bucket_blocks());
}

TEST(BucketDict, ParamsComputeConstantBlocks) {
  pdm::Geometry tiny{16, 1, 16, 0};
  auto p = bucket_dict_params(1 << 20, 1000, 8, tiny, 16);
  EXPECT_GE(p.bucket_blocks, 16u);  // 1 record per block → ~17 blocks
  EXPECT_LE(p.bucket_blocks, 32u);
}

// ---- wide (full-bandwidth) variant ----

TEST(WideDict, LargeSatelliteRoundTripInOneIo) {
  auto disks = make_disks(16, 64, 16);  // stripe = 16 KiB
  WideDictParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.capacity = 200;
  p.degree = 16;
  p.value_bytes = 400;  // needs k=8 fragments of 50 bytes
  WideDict dict(disks, 0, 0, p);
  EXPECT_EQ(dict.fragments(), 8u);
  for (Key k = 0; k < 200; ++k)
    ASSERT_TRUE(dict.insert(k * 5 + 2, value_for_key(k * 5 + 2, 400)));
  for (Key k = 0; k < 200; ++k) {
    pdm::IoProbe probe(disks);
    auto r = dict.lookup(k * 5 + 2);
    EXPECT_EQ(probe.ios(), 1u) << "full record in one parallel I/O";
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.value, value_for_key(k * 5 + 2, 400));
  }
  EXPECT_FALSE(dict.lookup(3).found);
}

TEST(WideDict, InsertIsTwoIos) {
  auto disks = make_disks(16, 64, 16);
  WideDictParams p;
  p.universe_size = 1 << 20;
  p.capacity = 100;
  p.degree = 16;
  p.value_bytes = 256;
  WideDict dict(disks, 0, 0, p);
  pdm::IoProbe probe(disks);
  dict.insert(1, value_for_key(1, 256));
  EXPECT_EQ(probe.ios(), 2u);
  EXPECT_FALSE(dict.insert(1, value_for_key(1, 256)));
}

TEST(WideDict, EraseRemovesAllFragments) {
  auto disks = make_disks(16, 64, 16);
  WideDictParams p;
  p.universe_size = 1 << 20;
  p.capacity = 100;
  p.degree = 16;
  p.value_bytes = 200;
  WideDict dict(disks, 0, 0, p);
  dict.insert(9, value_for_key(9, 200));
  dict.insert(10, value_for_key(10, 200));
  EXPECT_TRUE(dict.erase(9));
  EXPECT_FALSE(dict.erase(9));
  EXPECT_FALSE(dict.lookup(9).found);
  EXPECT_EQ(dict.lookup(10).value, value_for_key(10, 200));
}

TEST(WideDict, BandwidthLimitEnforced) {
  pdm::DiskArray disks(pdm::Geometry{16, 4, 16, 0});  // tiny blocks: 64 B
  WideDictParams p;
  p.universe_size = 1 << 20;
  p.capacity = 100;
  p.degree = 16;
  p.value_bytes = 4096;  // fragment of 512 B cannot fit a 64-B block
  EXPECT_THROW(WideDict(disks, 0, 0, p), std::invalid_argument);
  EXPECT_GT(WideDict::max_bandwidth(pdm::Geometry{16, 64, 16, 0}, 16, 1000),
            0u);
}

TEST(WideDict, RejectsKNotBelowD) {
  auto disks = make_disks();
  WideDictParams p;
  p.universe_size = 1 << 20;
  p.capacity = 10;
  p.degree = 16;
  p.fragments = 16;
  p.value_bytes = 64;
  EXPECT_THROW(WideDict(disks, 0, 0, p), std::invalid_argument);
}

}  // namespace
}  // namespace pddict::core
