// Unit tests for the util layer: integer math, PRNG, bit storage, hashing.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "util/bits.hpp"
#include "util/hash.hpp"
#include "util/math.hpp"
#include "util/prng.hpp"

namespace pddict::util {
namespace {

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div<std::uint64_t>(0, 3), 0u);
  EXPECT_EQ(ceil_div<std::uint64_t>(1, 3), 1u);
  EXPECT_EQ(ceil_div<std::uint64_t>(3, 3), 1u);
  EXPECT_EQ(ceil_div<std::uint64_t>(4, 3), 2u);
  EXPECT_EQ(ceil_div<std::uint64_t>(~std::uint64_t{0} - 1, 2),
            (~std::uint64_t{0}) / 2);
}

TEST(Math, Logs) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Math, BitsFor) {
  EXPECT_EQ(bits_for(1), 1u);
  EXPECT_EQ(bits_for(2), 1u);
  EXPECT_EQ(bits_for(3), 2u);
  EXPECT_EQ(bits_for(256), 8u);
  EXPECT_EQ(bits_for(257), 9u);
}

TEST(Math, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(63));
  EXPECT_EQ(round_up_pow2(0), 1u);
  EXPECT_EQ(round_up_pow2(5), 8u);
  EXPECT_EQ(round_up(13, 5), 15u);
}

TEST(Prng, DeterministicAndDispersed) {
  SplitMix64 a(42), b(42), c(43);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t x = a.next();
    EXPECT_EQ(x, b.next());
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_NE(SplitMix64(42).next(), c.next());
}

TEST(Prng, NextBelowInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Bits, SetGetSingleBits) {
  BitVector bv(130);
  bv.set_bit(0, true);
  bv.set_bit(63, true);
  bv.set_bit(64, true);
  bv.set_bit(129, true);
  EXPECT_TRUE(bv.get_bit(0));
  EXPECT_TRUE(bv.get_bit(63));
  EXPECT_TRUE(bv.get_bit(64));
  EXPECT_TRUE(bv.get_bit(129));
  EXPECT_FALSE(bv.get_bit(1));
  bv.set_bit(63, false);
  EXPECT_FALSE(bv.get_bit(63));
}

TEST(Bits, FieldRoundTripAcrossWordBoundaries) {
  // Property sweep: every width at several straddling offsets.
  for (unsigned width = 1; width <= 64; ++width) {
    for (std::size_t pos : {std::size_t{0}, std::size_t{1}, std::size_t{60},
                            std::size_t{63}, std::size_t{64}, std::size_t{100},
                            std::size_t{127}}) {
      BitVector bv(256);
      std::uint64_t value = 0x123456789abcdef0ULL;
      if (width < 64) value &= (std::uint64_t{1} << width) - 1;
      bv.set_field(pos, width, value);
      EXPECT_EQ(bv.get_field(pos, width), value)
          << "width=" << width << " pos=" << pos;
      // Neighbors untouched.
      if (pos > 0) {
        EXPECT_FALSE(bv.get_bit(pos - 1));
      }
      EXPECT_FALSE(bv.get_bit(pos + width));
    }
  }
}

TEST(Bits, FieldOverwriteClearsOldBits) {
  BitVector bv(128);
  bv.set_field(10, 20, 0xFFFFF);
  bv.set_field(10, 20, 0x1);
  EXPECT_EQ(bv.get_field(10, 20), 0x1u);
}

TEST(Bits, UnaryCodec) {
  BitVector bv(256);
  BitWriter w(bv, 0, 256);
  for (std::uint64_t n : {0u, 1u, 2u, 7u, 31u}) w.write_unary(n);
  BitReader r(bv, 0, 256);
  for (std::uint64_t n : {0u, 1u, 2u, 7u, 31u}) EXPECT_EQ(r.read_unary(), n);
  EXPECT_EQ(r.position(), w.position());
}

TEST(Bits, ReaderWriterMixedFields) {
  BitVector bv(512);
  BitWriter w(bv, 3, 512);
  w.write_bit(true);
  w.write_unary(5);
  w.write_field(17, 0x1ABCD);
  w.write_unary(0);
  w.write_field(33, 0x123456789ULL);
  BitReader r(bv, 3, 512);
  EXPECT_TRUE(r.read_bit());
  EXPECT_EQ(r.read_unary(), 5u);
  EXPECT_EQ(r.read_field(17), 0x1ABCDu);
  EXPECT_EQ(r.read_unary(), 0u);
  EXPECT_EQ(r.read_field(33), 0x123456789ULL);
}

TEST(Bits, CopyBitsBytesRoundTrip) {
  // Property: bytes -> BitVector -> bytes is the identity on the copied
  // window, for many offsets and lengths.
  std::vector<std::byte> src(64);
  SplitMix64 rng(99);
  for (auto& b : src) b = static_cast<std::byte>(rng.next() & 0xff);
  for (std::size_t src_bit : {0u, 1u, 5u, 13u, 64u, 250u}) {
    for (std::size_t nbits : {1u, 7u, 8u, 63u, 64u, 65u, 200u}) {
      BitVector mid(512);
      copy_bits_from_bytes(src.data(), src_bit, mid, 3, nbits);
      std::vector<std::byte> dst(64, std::byte{0});
      copy_bits_to_bytes(mid, 3, dst.data(), src_bit, nbits);
      for (std::size_t i = 0; i < nbits; ++i) {
        std::size_t p = src_bit + i;
        bool sb = (std::to_integer<unsigned>(src[p >> 3]) >> (p & 7)) & 1;
        bool db = (std::to_integer<unsigned>(dst[p >> 3]) >> (p & 7)) & 1;
        EXPECT_EQ(sb, db) << "src_bit=" << src_bit << " nbits=" << nbits
                          << " i=" << i;
      }
    }
  }
}

TEST(Hash, Mulmod61Matches128BitReference) {
  SplitMix64 rng(1);
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t a = rng.next() % kMersenne61;
    std::uint64_t b = rng.next() % kMersenne61;
    unsigned __int128 ref =
        (static_cast<unsigned __int128>(a) * b) % kMersenne61;
    EXPECT_EQ(mulmod61(a, b), static_cast<std::uint64_t>(ref));
  }
}

TEST(Hash, PolyHashDeterministicWithinRange) {
  PolyHash h(8, 1000, 123);
  PolyHash h2(8, 1000, 123);
  for (std::uint64_t x = 0; x < 500; ++x) {
    EXPECT_LT(h(x), 1000u);
    EXPECT_EQ(h(x), h2(x));
  }
}

TEST(Hash, PolyHashSpreadsUniformly) {
  // Chi-square-flavoured sanity check: bucket occupancy close to uniform.
  const std::uint64_t range = 64;
  const int n = 64000;
  PolyHash h(8, range, 2024);
  std::vector<int> counts(range, 0);
  for (int x = 0; x < n; ++x) ++counts[h(static_cast<std::uint64_t>(x))];
  double expected = static_cast<double>(n) / range;
  for (auto c : counts) {
    EXPECT_GT(c, expected * 0.7);
    EXPECT_LT(c, expected * 1.3);
  }
}

TEST(Hash, DifferentSeedsDiffer) {
  PolyHash a(4, 1 << 20, 1), b(4, 1 << 20, 2);
  int same = 0;
  for (std::uint64_t x = 0; x < 1000; ++x) same += (a(x) == b(x));
  EXPECT_LT(same, 10);
}

TEST(Hash, SaltedMixDependsOnBothInputs) {
  EXPECT_NE(salted_mix(1, 2), salted_mix(1, 3));
  EXPECT_NE(salted_mix(1, 2), salted_mix(2, 2));
  EXPECT_EQ(salted_mix(77, 88), salted_mix(77, 88));
}

}  // namespace
}  // namespace pddict::util
