// Tests for the file-backed block storage: raw backend semantics, identical
// I/O accounting, and dictionary persistence across "process restarts"
// (reopening the same directory with the same deterministic parameters).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <limits>

#include "core/basic_dict.hpp"
#include "pdm/file_backend.hpp"
#include "pdm/io_stats.hpp"
#include "workload/workload.hpp"

namespace pddict::pdm {
namespace {

class FileBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pddict_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->line()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(FileBackendTest, RawRoundTripAndFreshZeroSemantics) {
  Geometry geom{4, 16, 8, 0};
  FileBackend backend(geom, dir_.string());
  Block b(geom.block_bytes(), std::byte{0x5a});
  backend.store({2, 100}, b);
  EXPECT_EQ(backend.load({2, 100}), b);
  // Never-written blocks (including holes before EOF) read zero.
  Block zero(geom.block_bytes(), std::byte{0});
  EXPECT_EQ(backend.load({2, 50}), zero);
  EXPECT_EQ(backend.load({3, 0}), zero);
  // Erase restores zero.
  backend.erase_range(2, 1, 100, 1);
  EXPECT_EQ(backend.load({2, 100}), zero);
}

TEST_F(FileBackendTest, EraseRangeOverflowClamps) {
  // Regression: wrapping first_disk + num_disks / base + count bounds used
  // to make the erase a silent no-op (mirrors MemoryBackend).
  Geometry geom{4, 16, 8, 0};
  FileBackend backend(geom, dir_.string());
  Block b(geom.block_bytes(), std::byte{0x5a});
  Block zero(geom.block_bytes(), std::byte{0});
  backend.store({0, 3}, b);
  backend.store({3, 9}, b);
  backend.erase_range(0, std::numeric_limits<std::uint32_t>::max(), 2,
                      std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(backend.load({0, 3}), zero);
  EXPECT_EQ(backend.load({3, 9}), zero);
  // Blocks below `base` survive a wrapping-count erase.
  backend.store({1, 1}, b);
  backend.erase_range(1, 1, 2, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(backend.load({1, 1}), b);
}

TEST_F(FileBackendTest, EraseRangePunchHoleAndFallbackAgree) {
  // erase_range has two implementations — FALLOC_FL_PUNCH_HOLE and the
  // portable zero-write loop. Both must produce the same observable state:
  // erased blocks read zero, untouched neighbors survive, blocks_in_use is
  // unchanged (the hole keeps the file size).
  Geometry geom{2, 16, 8, 0};
  for (bool punch : {true, false}) {
    auto sub = dir_ / (punch ? "punch" : "fallback");
    std::filesystem::create_directories(sub);
    FileBackend backend(geom, sub.string());
    backend.set_punch_hole_for_testing(punch);
    Block b(geom.block_bytes(), std::byte{0x5a});
    Block zero(geom.block_bytes(), std::byte{0});
    for (std::uint64_t blk : {0ull, 1ull, 2ull, 3ull, 4ull})
      backend.store({0, blk}, b);
    std::uint64_t in_use = backend.blocks_in_use();
    backend.erase_range(0, 1, 1, 3);  // blocks 1..3
    EXPECT_EQ(backend.load({0, 0}), b) << "punch=" << punch;
    for (std::uint64_t blk : {1ull, 2ull, 3ull})
      EXPECT_EQ(backend.load({0, blk}), zero) << "punch=" << punch;
    EXPECT_EQ(backend.load({0, 4}), b) << "punch=" << punch;
    EXPECT_EQ(backend.blocks_in_use(), in_use) << "punch=" << punch;
  }
}

TEST_F(FileBackendTest, BatchedTransfersMatchPerBlockCalls) {
  // load_batch/store_batch coalesce contiguous runs into preadv/pwritev;
  // the result must equal per-block load/store for mixed patterns:
  // contiguous runs, gaps, several disks, unwritten (EOF) blocks.
  Geometry geom{3, 16, 8, 0};
  FileBackend backend(geom, dir_.string());
  std::vector<BlockAddr> addrs{{0, 5}, {0, 6}, {0, 7}, {0, 20},
                               {1, 0}, {1, 2}, {2, 9}};
  std::vector<Block> blocks;
  for (std::size_t i = 0; i < addrs.size(); ++i)
    blocks.emplace_back(geom.block_bytes(),
                        std::byte{static_cast<unsigned char>(0x10 + i)});
  std::vector<BlockWrite> writes;
  for (std::size_t i = 0; i < addrs.size(); ++i)
    writes.push_back({addrs[i], &blocks[i]});
  backend.store_batch(writes);
  for (std::size_t i = 0; i < addrs.size(); ++i)
    EXPECT_EQ(backend.load(addrs[i]), blocks[i]) << i;

  // Read back through the batched path, including never-written addresses
  // (must come back zero) and out-of-order submission (the backend sorts).
  std::vector<BlockAddr> raddrs{{2, 9}, {0, 7}, {0, 5}, {1, 1},
                                {0, 6}, {2, 40}, {1, 0}, {1, 2}};
  std::vector<Block> out(raddrs.size());
  std::vector<BlockRead> reads;
  for (std::size_t i = 0; i < raddrs.size(); ++i)
    reads.push_back({raddrs[i], &out[i]});
  backend.load_batch(reads);
  // load_batch may reorder the span; check through the read entries.
  for (const BlockRead& r : reads)
    EXPECT_EQ(*r.out, backend.load(r.addr))
        << r.addr.disk << ":" << r.addr.block;
}

TEST_F(FileBackendTest, MidFileShortReadsRetriedToFullBlock) {
  // Regression for the short-read-as-EOF bug: any pread returning fewer
  // bytes than asked used to be treated as end-of-file, silently serving a
  // zero tail for the rest of the block. Capping transfers at 17 bytes (not
  // a divisor of the 128-byte block) forces every load through the retry
  // loop's partial-progress branch.
  Geometry geom{2, 16, 8, 0};
  FileBackend backend(geom, dir_.string());
  auto patterned = [&](int tag) {
    Block b(geom.block_bytes());
    for (std::size_t i = 0; i < b.size(); ++i)
      b[i] = static_cast<std::byte>((tag * 37 + i * 11 + 1) & 0xff);
    return b;
  };
  Block b0 = patterned(0), b1 = patterned(1), b2 = patterned(2);
  backend.store({0, 0}, b0);
  backend.store({0, 1}, b1);
  backend.store({1, 4}, b2);

  FileBackend::FaultInjection f;
  f.max_transfer_bytes = 17;
  backend.set_fault_injection_for_testing(f);
  EXPECT_EQ(backend.load({0, 0}), b0);
  EXPECT_EQ(backend.load({0, 1}), b1);
  // Batched path: the vectored call degrades to capped single reads, so the
  // continuation loop must walk the iovec in sub-block steps.
  std::vector<Block> out(3);
  std::vector<BlockRead> reads{
      {{0, 0}, &out[0]}, {{0, 1}, &out[1]}, {{1, 4}, &out[2]}};
  backend.load_batch(reads);
  EXPECT_EQ(out[0], b0);
  EXPECT_EQ(out[1], b1);
  EXPECT_EQ(out[2], b2);
  // True EOF (got == 0) still means fresh-disk zeros, not an error.
  EXPECT_EQ(backend.load({1, 9}), Block(geom.block_bytes(), std::byte{0}));
}

TEST_F(FileBackendTest, EintrIsRetriedOnEveryPath) {
  Geometry geom{2, 16, 8, 0};
  FileBackend backend(geom, dir_.string());
  FileBackend::FaultInjection f;
  f.eintr_every = 2;  // every other syscall is interrupted
  f.max_transfer_bytes = 32;  // and successful ones make partial progress
  backend.set_fault_injection_for_testing(f);

  Block b(geom.block_bytes(), std::byte{0xc3});
  backend.store({0, 2}, b);
  EXPECT_EQ(backend.load({0, 2}), b);
  std::vector<Block> out(2);
  Block b2(geom.block_bytes(), std::byte{0x3c});
  std::vector<BlockWrite> writes{{{1, 0}, &b}, {{1, 1}, &b2}};
  backend.store_batch(writes);
  std::vector<BlockRead> reads{{{1, 0}, &out[0]}, {{1, 1}, &out[1]}};
  backend.load_batch(reads);
  EXPECT_EQ(out[0], b);
  EXPECT_EQ(out[1], b2);
}

TEST_F(FileBackendTest, ZeroByteWriteRaisesShortWriteError) {
  // A write that consumes 0 bytes has no errno to report; retrying would
  // spin forever. The old code here threw a std::system_error built from
  // whatever *stale* errno was lying around — now it is a dedicated type.
  Geometry geom{2, 16, 8, 0};
  FileBackend backend(geom, dir_.string());
  FileBackend::FaultInjection f;
  f.zero_writes = true;
  backend.set_fault_injection_for_testing(f);
  Block b(geom.block_bytes(), std::byte{0x11});
  EXPECT_THROW(backend.store({0, 0}, b), ShortWriteError);
  std::vector<BlockWrite> writes{{{0, 0}, &b}};
  EXPECT_THROW(backend.store_batch(writes), ShortWriteError);
  // Reads are unaffected and the backend stays usable once faults clear.
  backend.set_fault_injection_for_testing({});
  backend.store({0, 0}, b);
  EXPECT_EQ(backend.load({0, 0}), b);
}

TEST_F(FileBackendTest, SimulatedSeekLatencyCostsWallTime) {
  Geometry geom{1, 16, 8, 0};
  FileBackend backend(geom, dir_.string(), /*seek_latency_us=*/2000);
  EXPECT_EQ(backend.seek_latency_us(), 2000u);
  auto start = std::chrono::steady_clock::now();
  backend.load({0, 0});
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            2000);
}

TEST_F(FileBackendTest, AccountingIdenticalToMemoryBackend) {
  Geometry geom{4, 16, 8, 0};
  DiskArray file_disks(geom, Model::kParallelDisks,
                       std::make_unique<FileBackend>(geom, dir_.string()));
  DiskArray mem_disks(geom);
  std::vector<BlockAddr> addrs{{0, 0}, {1, 0}, {1, 1}, {3, 7}};
  std::vector<Block> out;
  EXPECT_EQ(file_disks.read_batch(addrs, out),
            mem_disks.read_batch(addrs, out));
  EXPECT_EQ(file_disks.stats().parallel_ios, mem_disks.stats().parallel_ios);
}

TEST_F(FileBackendTest, DataSurvivesReopen) {
  Geometry geom{4, 16, 8, 0};
  Block b(geom.block_bytes(), std::byte{0x7e});
  {
    FileBackend backend(geom, dir_.string());
    backend.store({1, 42}, b);
  }  // closed
  FileBackend reopened(geom, dir_.string());
  EXPECT_EQ(reopened.load({1, 42}), b);
  EXPECT_GT(reopened.blocks_in_use(), 0u);
}

TEST_F(FileBackendTest, DictionaryPersistsAcrossRestart) {
  Geometry geom{16, 64, 16, 0};
  core::BasicDictParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.capacity = 500;
  p.value_bytes = 8;
  p.degree = 16;
  p.seed = 0xfeed;  // the structure is deterministic in (params, seed)
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, 400,
                                      p.universe_size, 6);
  {
    DiskArray disks(geom, Model::kParallelDisks,
                    std::make_unique<FileBackend>(geom, dir_.string()));
    core::BasicDict dict(disks, 0, 0, p);
    for (auto k : keys) ASSERT_TRUE(dict.insert(k, core::value_for_key(k, 8)));
  }  // "process exits"

  DiskArray disks(geom, Model::kParallelDisks,
                  std::make_unique<FileBackend>(geom, dir_.string()));
  core::BasicDict dict(disks, 0, 0, p);  // same params + seed + layout
  dict.recover_size();
  EXPECT_EQ(dict.size(), 400u);
  for (auto k : keys) {
    auto r = dict.lookup(k);
    ASSERT_TRUE(r.found) << k;
    EXPECT_EQ(r.value, core::value_for_key(k, 8));
  }
  EXPECT_FALSE(dict.lookup(999999999).found);
  // And it remains fully operational.
  EXPECT_TRUE(dict.insert(424243, core::value_for_key(424243, 8)));
  EXPECT_TRUE(dict.erase(keys[0]));
}

TEST_F(FileBackendTest, WrongSeedFindsNothing) {
  // Determinism cuts both ways: reopening with a different expander seed
  // probes different buckets and must simply miss (not crash).
  Geometry geom{16, 64, 16, 0};
  core::BasicDictParams p;
  p.universe_size = 1 << 20;
  p.capacity = 50;
  p.value_bytes = 8;
  p.degree = 16;
  p.seed = 1;
  {
    DiskArray disks(geom, Model::kParallelDisks,
                    std::make_unique<FileBackend>(geom, dir_.string()));
    core::BasicDict dict(disks, 0, 0, p);
    dict.insert(7, core::value_for_key(7, 8));
  }
  p.seed = 2;
  DiskArray disks(geom, Model::kParallelDisks,
                  std::make_unique<FileBackend>(geom, dir_.string()));
  core::BasicDict dict(disks, 0, 0, p);
  // May or may not find it (one colliding bucket is possible); must not
  // return a wrong value if found.
  auto r = dict.lookup(7);
  if (r.found) {
    EXPECT_EQ(r.value, core::value_for_key(7, 8));
  }
}

}  // namespace
}  // namespace pddict::pdm
