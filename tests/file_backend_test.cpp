// Tests for the file-backed block storage: raw backend semantics, identical
// I/O accounting, and dictionary persistence across "process restarts"
// (reopening the same directory with the same deterministic parameters).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>

#include "core/basic_dict.hpp"
#include "pdm/file_backend.hpp"
#include "pdm/io_stats.hpp"
#include "workload/workload.hpp"

namespace pddict::pdm {
namespace {

class FileBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pddict_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->line()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(FileBackendTest, RawRoundTripAndFreshZeroSemantics) {
  Geometry geom{4, 16, 8, 0};
  FileBackend backend(geom, dir_.string());
  Block b(geom.block_bytes(), std::byte{0x5a});
  backend.store({2, 100}, b);
  EXPECT_EQ(backend.load({2, 100}), b);
  // Never-written blocks (including holes before EOF) read zero.
  Block zero(geom.block_bytes(), std::byte{0});
  EXPECT_EQ(backend.load({2, 50}), zero);
  EXPECT_EQ(backend.load({3, 0}), zero);
  // Erase restores zero.
  backend.erase_range(2, 1, 100, 1);
  EXPECT_EQ(backend.load({2, 100}), zero);
}

TEST_F(FileBackendTest, EraseRangeOverflowClamps) {
  // Regression: wrapping first_disk + num_disks / base + count bounds used
  // to make the erase a silent no-op (mirrors MemoryBackend).
  Geometry geom{4, 16, 8, 0};
  FileBackend backend(geom, dir_.string());
  Block b(geom.block_bytes(), std::byte{0x5a});
  Block zero(geom.block_bytes(), std::byte{0});
  backend.store({0, 3}, b);
  backend.store({3, 9}, b);
  backend.erase_range(0, std::numeric_limits<std::uint32_t>::max(), 2,
                      std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(backend.load({0, 3}), zero);
  EXPECT_EQ(backend.load({3, 9}), zero);
  // Blocks below `base` survive a wrapping-count erase.
  backend.store({1, 1}, b);
  backend.erase_range(1, 1, 2, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(backend.load({1, 1}), b);
}

TEST_F(FileBackendTest, AccountingIdenticalToMemoryBackend) {
  Geometry geom{4, 16, 8, 0};
  DiskArray file_disks(geom, Model::kParallelDisks,
                       std::make_unique<FileBackend>(geom, dir_.string()));
  DiskArray mem_disks(geom);
  std::vector<BlockAddr> addrs{{0, 0}, {1, 0}, {1, 1}, {3, 7}};
  std::vector<Block> out;
  EXPECT_EQ(file_disks.read_batch(addrs, out),
            mem_disks.read_batch(addrs, out));
  EXPECT_EQ(file_disks.stats().parallel_ios, mem_disks.stats().parallel_ios);
}

TEST_F(FileBackendTest, DataSurvivesReopen) {
  Geometry geom{4, 16, 8, 0};
  Block b(geom.block_bytes(), std::byte{0x7e});
  {
    FileBackend backend(geom, dir_.string());
    backend.store({1, 42}, b);
  }  // closed
  FileBackend reopened(geom, dir_.string());
  EXPECT_EQ(reopened.load({1, 42}), b);
  EXPECT_GT(reopened.blocks_in_use(), 0u);
}

TEST_F(FileBackendTest, DictionaryPersistsAcrossRestart) {
  Geometry geom{16, 64, 16, 0};
  core::BasicDictParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.capacity = 500;
  p.value_bytes = 8;
  p.degree = 16;
  p.seed = 0xfeed;  // the structure is deterministic in (params, seed)
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, 400,
                                      p.universe_size, 6);
  {
    DiskArray disks(geom, Model::kParallelDisks,
                    std::make_unique<FileBackend>(geom, dir_.string()));
    core::BasicDict dict(disks, 0, 0, p);
    for (auto k : keys) ASSERT_TRUE(dict.insert(k, core::value_for_key(k, 8)));
  }  // "process exits"

  DiskArray disks(geom, Model::kParallelDisks,
                  std::make_unique<FileBackend>(geom, dir_.string()));
  core::BasicDict dict(disks, 0, 0, p);  // same params + seed + layout
  dict.recover_size();
  EXPECT_EQ(dict.size(), 400u);
  for (auto k : keys) {
    auto r = dict.lookup(k);
    ASSERT_TRUE(r.found) << k;
    EXPECT_EQ(r.value, core::value_for_key(k, 8));
  }
  EXPECT_FALSE(dict.lookup(999999999).found);
  // And it remains fully operational.
  EXPECT_TRUE(dict.insert(424243, core::value_for_key(424243, 8)));
  EXPECT_TRUE(dict.erase(keys[0]));
}

TEST_F(FileBackendTest, WrongSeedFindsNothing) {
  // Determinism cuts both ways: reopening with a different expander seed
  // probes different buckets and must simply miss (not crash).
  Geometry geom{16, 64, 16, 0};
  core::BasicDictParams p;
  p.universe_size = 1 << 20;
  p.capacity = 50;
  p.value_bytes = 8;
  p.degree = 16;
  p.seed = 1;
  {
    DiskArray disks(geom, Model::kParallelDisks,
                    std::make_unique<FileBackend>(geom, dir_.string()));
    core::BasicDict dict(disks, 0, 0, p);
    dict.insert(7, core::value_for_key(7, 8));
  }
  p.seed = 2;
  DiskArray disks(geom, Model::kParallelDisks,
                  std::make_unique<FileBackend>(geom, dir_.string()));
  core::BasicDict dict(disks, 0, 0, p);
  // May or may not find it (one colliding bucket is possible); must not
  // return a wrong value if found.
  auto r = dict.lookup(7);
  if (r.found) {
    EXPECT_EQ(r.value, core::value_for_key(7, 8));
  }
}

}  // namespace
}  // namespace pddict::pdm
