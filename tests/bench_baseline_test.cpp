// Baseline diff engine: flattening (name-keyed rows), the tolerance
// taxonomy (exact for deterministic I/O counts, % bands for wall time,
// direction flips for higher-better metrics, structural gating for
// configuration drift), and the synthetic-regression property the CTest
// perf gate relies on: +1 parallel I/O must flip the diff to failing.
#include <gtest/gtest.h>

#include <string>

#include "obs/bench_baseline.hpp"
#include "obs/json.hpp"

namespace pddict {
namespace {

using obs::DiffKind;
using obs::Json;

Json parse(const std::string& text) {
  std::string err;
  auto parsed = obs::parse_json(text, &err);
  EXPECT_TRUE(parsed.has_value()) << err << " in: " << text;
  return parsed ? *parsed : Json();
}

/// Minimal single-bench report with one tweakable lookup cost.
std::string report_text(int parallel_ios, double wall_ms = 100.0,
                        double utilization = 0.9, int capacity = 4096,
                        const char* row_name = "dict") {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                R"({"schema":"pddict-bench-report","version":1,
                    "bench":"bench_x","params":{"capacity":%d},
                    "rows":[{"name":"%s","parallel_ios":%d,
                             "mean_utilization":%g,"build_wall_ms":%g}]})",
                capacity, row_name, parallel_ios, utilization, wall_ms);
  return buf;
}

const obs::DiffEntry* find_entry(const obs::DiffResult& result,
                                 const std::string& needle) {
  for (const auto& e : result.entries)
    if (e.path.find(needle) != std::string::npos) return &e;
  return nullptr;
}

TEST(BenchBaseline, FlattenKeysRowsByNameNotIndex) {
  Json doc = parse(
      R"({"bench":"b","rows":[{"name":"alpha","ios":1},
                              {"name":"beta","ios":2}]})");
  auto flat = obs::flatten_baseline(doc);
  bool saw_alpha = false, saw_beta = false;
  for (const auto& m : flat) {
    if (m.path == "b/rows[alpha]/ios") {
      saw_alpha = true;
      EXPECT_EQ(m.number, 1.0);
    }
    if (m.path == "b/rows[beta]/ios") saw_beta = true;
  }
  EXPECT_TRUE(saw_alpha);
  EXPECT_TRUE(saw_beta);

  // Same rows, reordered: identical flat set -> empty diff.
  Json reordered = parse(
      R"({"bench":"b","rows":[{"name":"beta","ios":2},
                              {"name":"alpha","ios":1}]})");
  auto result = obs::diff_baselines(doc, reordered);
  EXPECT_TRUE(result.entries.empty());
  EXPECT_TRUE(result.ok());
}

TEST(BenchBaseline, IdenticalReportsDiffClean) {
  Json a = parse(report_text(7));
  auto result = obs::diff_baselines(a, a);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.entries.empty());
  EXPECT_GT(result.compared, 0u);
}

TEST(BenchBaseline, OneExtraParallelIoIsARegression) {
  // The property the CI gate is built on: deterministic I/O counts compare
  // exactly, so a single extra round anywhere fails the diff.
  Json before = parse(report_text(7));
  Json after = parse(report_text(8));
  auto result = obs::diff_baselines(before, after);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.regressions, 1u);
  const obs::DiffEntry* e = find_entry(result, "parallel_ios");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, DiffKind::kRegression);
  EXPECT_EQ(e->before, 7.0);
  EXPECT_EQ(e->after, 8.0);
  // Ranked first and rendered in the table.
  EXPECT_EQ(result.entries.front().kind, DiffKind::kRegression);
  std::string table = obs::render_diff(result);
  EXPECT_NE(table.find("REGRESSION"), std::string::npos) << table;
  EXPECT_NE(table.find("parallel_ios"), std::string::npos) << table;

  // The same delta downward is an improvement, not a failure.
  auto better = obs::diff_baselines(after, before);
  EXPECT_TRUE(better.ok());
  EXPECT_EQ(better.improvements, 1u);
}

TEST(BenchBaseline, HigherBetterMetricsRegressDownward) {
  Json before = parse(report_text(7, 100.0, /*utilization=*/0.9));
  Json after = parse(report_text(7, 100.0, /*utilization=*/0.5));
  auto result = obs::diff_baselines(before, after);
  EXPECT_FALSE(result.ok());
  const obs::DiffEntry* e = find_entry(result, "mean_utilization");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, DiffKind::kRegression);
  // And upward movement is an improvement.
  EXPECT_TRUE(obs::diff_baselines(after, before).ok());
}

TEST(BenchBaseline, WallTimeComparesWithinBandOnly) {
  Json before = parse(report_text(7, /*wall_ms=*/100.0));
  Json inside = parse(report_text(7, /*wall_ms=*/130.0));   // +30% < 50%
  Json outside = parse(report_text(7, /*wall_ms=*/200.0));  // +100%

  EXPECT_TRUE(obs::diff_baselines(before, inside).entries.empty());

  auto gated = obs::diff_baselines(before, outside);
  EXPECT_FALSE(gated.ok());
  const obs::DiffEntry* e = find_entry(gated, "build_wall_ms");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->wall);

  // --ignore-wall: still reported, no longer gating.
  obs::DiffOptions lenient;
  lenient.gate_wall = false;
  auto reported = obs::diff_baselines(before, outside, lenient);
  EXPECT_TRUE(reported.ok());
  e = find_entry(reported, "build_wall_ms");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, DiffKind::kChange);

  // Tighter band flips the inside case.
  obs::DiffOptions strict;
  strict.wall_tol_pct = 10.0;
  EXPECT_FALSE(obs::diff_baselines(before, inside, strict).ok());
}

TEST(BenchBaseline, HigherBetterWallMetricsRegressDownwardWithinBand) {
  // speedup_wall is wall-derived (%-band, never exact) but higher-better:
  // losing the executor's overlap shows up as the speedup DROPPING.
  auto doc = [](double speedup) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  R"({"schema":"pddict-bench-report","bench":"t","rows":[)"
                  R"({"name":"r","speedup_wall":%g}]})",
                  speedup);
    return parse(buf);
  };
  // Within the 50% band: no entry at all.
  EXPECT_TRUE(obs::diff_baselines(doc(4.0), doc(3.0)).entries.empty());
  // A collapse to ~serial gates — and in the DOWNWARD direction.
  auto result = obs::diff_baselines(doc(4.0), doc(1.1));
  EXPECT_FALSE(result.ok());
  const obs::DiffEntry* e = find_entry(result, "speedup_wall");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, DiffKind::kRegression);
  EXPECT_TRUE(e->wall);
  // The same move upward is an improvement, not a regression.
  EXPECT_TRUE(obs::diff_baselines(doc(1.1), doc(4.0)).ok());
}

TEST(BenchBaseline, QueueDepthIsBandedLikeWallTime) {
  // max_queue_depth reflects worker scheduling, not round accounting: small
  // run-to-run drift must not gate.
  auto doc = [](int depth) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  R"({"schema":"pddict-bench-report","bench":"t","rows":[)"
                  R"({"name":"r","exec_max_queue_depth":%d}]})",
                  depth);
    return parse(buf);
  };
  EXPECT_TRUE(obs::diff_baselines(doc(8), doc(10)).entries.empty());
  auto result = obs::diff_baselines(doc(8), doc(32));
  const obs::DiffEntry* e = find_entry(result, "exec_max_queue_depth");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->wall);
}

TEST(BenchBaseline, ConfigurationDriftGatesEvenWhenNumbersImprove) {
  // Halving the workload halves every I/O count; without structural gating
  // that would read as a spectacular improvement.
  Json before = parse(report_text(7, 100.0, 0.9, /*capacity=*/4096));
  Json after = parse(report_text(3, 100.0, 0.9, /*capacity=*/2048));
  auto result = obs::diff_baselines(before, after);
  EXPECT_FALSE(result.ok());
  const obs::DiffEntry* e = find_entry(result, "params/capacity");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, DiffKind::kRegression);
}

TEST(BenchBaseline, RemovedMetricGatesAddedDoesNot) {
  Json before = parse(report_text(7));
  Json renamed = parse(report_text(7, 100.0, 0.9, 4096, "dict_v2"));
  // Renaming the row removes every old metric and adds new ones: the
  // removals gate (a vanished measurement is how regressions hide).
  auto result = obs::diff_baselines(before, renamed);
  EXPECT_FALSE(result.ok());
  const obs::DiffEntry* removed = find_entry(result, "rows[dict]/");
  ASSERT_NE(removed, nullptr);
  EXPECT_EQ(removed->kind, DiffKind::kRemoved);
  const obs::DiffEntry* added = find_entry(result, "rows[dict_v2]/");
  ASSERT_NE(added, nullptr);
  EXPECT_EQ(added->kind, DiffKind::kAdded);

  // Pure addition (extra metric in the new baseline) does not gate.
  Json extra = parse(
      R"({"bench":"bench_x","params":{"capacity":4096},
          "rows":[{"name":"dict","parallel_ios":7,"mean_utilization":0.9,
                   "build_wall_ms":100,"p99":3}]})");
  auto grown = obs::diff_baselines(before, extra);
  EXPECT_TRUE(grown.ok());
  ASSERT_EQ(grown.entries.size(), 1u);
  EXPECT_EQ(grown.entries.front().kind, DiffKind::kAdded);
}

TEST(BenchBaseline, ConsolidatedBaselinesComparePerBench) {
  auto baseline = [&](int ios_a, int ios_b) {
    return parse(std::string(R"({"schema":"pddict-bench-baseline","version":1,
        "git_rev":"abc","benches":{
          "bench_a":{"wall_ms":5,"report":)") + report_text(ios_a) +
                 R"(},"bench_b":{"wall_ms":6,"report":)" + report_text(ios_b) +
                 "}}}");
  };
  Json before = baseline(7, 9);
  Json after = baseline(7, 10);  // only bench_b regressed
  auto result = obs::diff_baselines(before, after, {.gate_wall = false});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.regressions, 1u);
  const obs::DiffEntry* e = find_entry(result, "bench_b/");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, DiffKind::kRegression);
  EXPECT_EQ(find_entry(result, "git_rev"), nullptr);  // provenance not diffed
}

TEST(BenchBaseline, StringDriftIsAVisibleChange) {
  Json before =
      parse(R"js({"bench":"b","rows":[{"name":"r","bound":"O(1)"}]})js");
  Json after =
      parse(R"js({"bench":"b","rows":[{"name":"r","bound":"O(log n)"}]})js");
  auto result = obs::diff_baselines(before, after);
  EXPECT_TRUE(result.ok());  // annotations don't gate...
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries.front().kind, DiffKind::kChange);  // ...but show
}

TEST(BenchBaseline, MalformedDocumentThrows) {
  EXPECT_THROW(obs::diff_baselines(Json(42), Json(42)), std::runtime_error);
}

}  // namespace
}  // namespace pddict
