// Determinism suite for the per-disk I/O execution engine (io_executor).
//
// The invariant under test is the tentpole contract: the executor changes
// WHEN transfers happen, never what the model charges or what the blocks
// contain. Every accounting artifact — IoStats, per-disk counters, the
// round-utilization histogram, cache hit/miss/flush counters — and every
// block's final contents must be byte-identical for io_threads in
// {0, 1, 4, D}, on both MemoryBackend and FileBackend, cached and uncached.
//
// Also covered here: the dedup semantics of the uncached batch paths (each
// distinct block is loaded exactly once per batch; a duplicate write keeps
// its last contents), executor error propagation, and exec_stats lifecycle.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <vector>

#include "pdm/disk_array.hpp"
#include "pdm/file_backend.hpp"
#include "pdm/io_executor.hpp"

namespace pddict::pdm {
namespace {

constexpr std::uint32_t kDisks = 8;
const Geometry kGeom{kDisks, 16, 8, 0};

Block pattern_block(std::uint64_t tag) {
  Block b(kGeom.block_bytes());
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = static_cast<std::byte>((tag * 131 + i * 17) & 0xff);
  return b;
}

/// Deterministic mixed workload: interleaved read/write batches with
/// duplicate addresses, full stripes, skewed per-disk loads and re-reads of
/// dirty blocks. Returns every read result concatenated, so callers can
/// compare contents — not just counters — across configurations.
///
/// With `async` set, batches go through submit_read_batch/submit_write_batch
/// and each step's futures are joined only after the NEXT step's batches are
/// in flight — up to four batches outstanding — exercising cross-batch
/// pipelining. Submission order (and therefore every accounted count) is
/// identical to the synchronous schedule; the per-disk FIFO keeps the
/// read-after-write contents identical too.
std::vector<Block> run_workload(DiskArray& disks, bool async = false) {
  std::vector<Block> all_reads;
  BatchFuture pending_write, pending_read;
  auto join_pending = [&] {
    if (pending_read.valid()) {
      std::vector<Block> out;
      pending_read.get(out);
      for (Block& b : out) all_reads.push_back(std::move(b));
    }
    if (pending_write.valid()) pending_write.wait();
  };
  std::uint64_t lcg = 12345;
  auto next = [&lcg](std::uint64_t mod) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return (lcg >> 33) % mod;
  };
  for (int step = 0; step < 20; ++step) {
    std::vector<std::pair<BlockAddr, Block>> writes;
    std::size_t n_writes = 1 + next(2 * kDisks);
    for (std::size_t i = 0; i < n_writes; ++i) {
      BlockAddr a{static_cast<std::uint32_t>(next(kDisks)), next(24)};
      writes.emplace_back(a, pattern_block(step * 1000 + i));
    }
    // Duplicate address within one batch: last write must win.
    if (writes.size() > 1) writes.push_back(writes.front());
    if (!writes.empty())
      writes.back().second = pattern_block(step * 1000 + 999);

    std::vector<BlockAddr> reads;
    std::size_t n_reads = 1 + next(3 * kDisks);
    for (std::size_t i = 0; i < n_reads; ++i)
      reads.push_back({static_cast<std::uint32_t>(next(kDisks)), next(24)});
    reads.push_back(reads.front());  // duplicate read

    if (async) {
      BatchFuture wf = disks.submit_write_batch(writes);
      BatchFuture rf = disks.submit_read_batch(reads);
      join_pending();  // previous step joins only after this step is queued
      pending_write = std::move(wf);
      pending_read = std::move(rf);
    } else {
      disks.write_batch(writes);
      std::vector<Block> out;
      disks.read_batch(reads, out);
      for (Block& b : out) all_reads.push_back(std::move(b));
    }
  }
  join_pending();
  return all_reads;
}

struct Snapshot {
  IoStats io;
  std::vector<DiskCounters> per_disk;
  std::vector<std::uint64_t> hist;
  CacheStats cache;
  std::vector<Block> read_contents;
  std::vector<Block> final_contents;
};

bool same_counters(const std::vector<DiskCounters>& x,
                   const std::vector<DiskCounters>& y) {
  if (x.size() != y.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i)
    if (x[i].blocks_read != y[i].blocks_read ||
        x[i].blocks_written != y[i].blocks_written ||
        x[i].rounds_active != y[i].rounds_active ||
        x[i].idle_slots != y[i].idle_slots)
      return false;
  return true;
}

Snapshot run_config(std::unique_ptr<BlockBackend> backend, std::size_t threads,
                    std::size_t cache_frames, bool async = false) {
  DiskArray disks(kGeom, Model::kParallelDisks, std::move(backend));
  disks.set_io_threads(threads);
  if (cache_frames) disks.enable_cache(cache_frames);
  Snapshot s;
  s.read_contents = run_workload(disks, async);
  if (cache_frames) disks.flush_cache();
  s.io = disks.stats_snapshot();
  s.per_disk = disks.disk_counters();
  s.hist = disks.round_utilization();
  s.cache = disks.cache_stats();
  for (std::uint32_t d = 0; d < kDisks; ++d)
    for (std::uint64_t b = 0; b < 24; ++b)
      s.final_contents.push_back(disks.peek({d, b}));
  return s;
}

void expect_identical(const Snapshot& base, const Snapshot& got,
                      const std::string& label) {
  EXPECT_EQ(base.io.parallel_ios, got.io.parallel_ios) << label;
  EXPECT_EQ(base.io.read_rounds, got.io.read_rounds) << label;
  EXPECT_EQ(base.io.write_rounds, got.io.write_rounds) << label;
  EXPECT_EQ(base.io.blocks_read, got.io.blocks_read) << label;
  EXPECT_EQ(base.io.blocks_written, got.io.blocks_written) << label;
  EXPECT_TRUE(same_counters(base.per_disk, got.per_disk)) << label;
  EXPECT_EQ(base.hist, got.hist) << label;
  EXPECT_EQ(base.cache.hits, got.cache.hits) << label;
  EXPECT_EQ(base.cache.misses, got.cache.misses) << label;
  EXPECT_EQ(base.cache.evictions, got.cache.evictions) << label;
  EXPECT_EQ(base.cache.dirty_evictions, got.cache.dirty_evictions) << label;
  EXPECT_EQ(base.cache.flushed_blocks, got.cache.flushed_blocks) << label;
  EXPECT_EQ(base.cache.flush_rounds, got.cache.flush_rounds) << label;
  EXPECT_EQ(base.read_contents, got.read_contents) << label;
  EXPECT_EQ(base.final_contents, got.final_contents) << label;
}

class IoExecutorDeterminism : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "pddict_io_exec_test";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<BlockBackend> make_backend(bool file, const std::string& sub) {
    if (!file) return std::make_unique<MemoryBackend>(kGeom);
    auto d = dir_ / sub;
    std::filesystem::create_directories(d);
    return std::make_unique<FileBackend>(kGeom, d.string());
  }

  std::filesystem::path dir_;
};

TEST_F(IoExecutorDeterminism, CountersAndContentsIdenticalAcrossThreadCounts) {
  // The full matrix: {sync, async} × io_threads × {memory, file} ×
  // {uncached, cached}. One baseline per (backend, frames) cell — the
  // serial synchronous run — against which every other combination must be
  // byte-identical, including the pipelined submit/join schedule.
  for (bool file : {false, true}) {
    for (std::size_t frames : {std::size_t{0}, std::size_t{12}}) {
      Snapshot base;
      bool first = true;
      for (bool async : {false, true}) {
        for (std::size_t threads : {std::size_t{0}, std::size_t{1},
                                    std::size_t{4}, std::size_t{kDisks}}) {
          std::string label = std::string(file ? "file" : "memory") +
                              " frames=" + std::to_string(frames) +
                              " threads=" + std::to_string(threads) +
                              (async ? " async" : " sync");
          Snapshot got = run_config(
              make_backend(file, (async ? "a" : "s") + std::to_string(threads) +
                                     "_f" + std::to_string(frames)),
              threads, frames, async);
          if (first) {
            base = std::move(got);
            first = false;
            continue;
          }
          expect_identical(base, got, label);
        }
      }
    }
  }
}

/// Wraps a MemoryBackend and counts block transfers (atomically — batched
/// calls run concurrently on executor workers).
class CountingBackend final : public BlockBackend {
 public:
  explicit CountingBackend(const Geometry& geom) : inner_(geom) {}

  Block load(const BlockAddr& addr) override {
    loads_.fetch_add(1);
    return inner_.load(addr);
  }
  void store(const BlockAddr& addr, const Block& block) override {
    stores_.fetch_add(1);
    inner_.store(addr, block);
  }
  void load_batch(std::span<BlockRead> reads) override {
    loads_.fetch_add(reads.size());
    inner_.load_batch(reads);
  }
  void store_batch(std::span<BlockWrite> writes) override {
    stores_.fetch_add(writes.size());
    inner_.store_batch(writes);
  }
  void erase_range(std::uint32_t first_disk, std::uint32_t num_disks,
                   std::uint64_t base, std::uint64_t count) override {
    inner_.erase_range(first_disk, num_disks, base, count);
  }
  std::uint64_t blocks_in_use() const override {
    return inner_.blocks_in_use();
  }

  std::uint64_t loads() const { return loads_.load(); }
  std::uint64_t stores() const { return stores_.load(); }

 private:
  MemoryBackend inner_;
  std::atomic<std::uint64_t> loads_{0};
  std::atomic<std::uint64_t> stores_{0};
};

TEST(IoExecutorDedup, UncachedReadBatchLoadsEachDistinctBlockOnce) {
  for (std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    auto backend = std::make_unique<CountingBackend>(kGeom);
    CountingBackend* counter = backend.get();
    DiskArray disks(kGeom, Model::kParallelDisks, std::move(backend));
    disks.set_io_threads(threads);
    disks.write_block({1, 5}, pattern_block(7));
    std::uint64_t stores_before = counter->stores();
    std::uint64_t loads_before = counter->loads();
    // 6 submissions, 3 distinct.
    std::vector<BlockAddr> addrs{{1, 5}, {0, 2}, {1, 5}, {0, 2},
                                 {1, 5}, {3, 0}};
    std::vector<Block> out;
    disks.read_batch(addrs, out);
    EXPECT_EQ(counter->loads() - loads_before, 3u) << "threads=" << threads;
    EXPECT_EQ(counter->stores(), stores_before);
    // Fan-out preserves submission order and duplicates see the same bytes.
    ASSERT_EQ(out.size(), addrs.size());
    EXPECT_EQ(out[0], pattern_block(7));
    EXPECT_EQ(out[2], out[0]);
    EXPECT_EQ(out[4], out[0]);
    EXPECT_EQ(out[1], out[3]);
    EXPECT_EQ(out[1], Block(kGeom.block_bytes(), std::byte{0}));
  }
}

TEST(IoExecutorDedup, UncachedWriteBatchStoresLastDuplicateOnce) {
  for (std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    auto backend = std::make_unique<CountingBackend>(kGeom);
    CountingBackend* counter = backend.get();
    DiskArray disks(kGeom, Model::kParallelDisks, std::move(backend));
    disks.set_io_threads(threads);
    // 4 submissions, 2 distinct; {2,9} written twice — last must win.
    std::vector<std::pair<BlockAddr, Block>> writes;
    writes.emplace_back(BlockAddr{2, 9}, pattern_block(1));
    writes.emplace_back(BlockAddr{5, 1}, pattern_block(2));
    writes.emplace_back(BlockAddr{2, 9}, pattern_block(3));
    writes.emplace_back(BlockAddr{5, 1}, pattern_block(4));
    disks.write_batch(writes);
    EXPECT_EQ(counter->stores(), 2u) << "threads=" << threads;
    EXPECT_EQ(disks.peek({2, 9}), pattern_block(3)) << "threads=" << threads;
    EXPECT_EQ(disks.peek({5, 1}), pattern_block(4)) << "threads=" << threads;
    // The accounting still charges the submitted batch's plan.
    EXPECT_EQ(disks.stats().blocks_written, 2u);
  }
}

class ThrowingBackend final : public BlockBackend {
 public:
  explicit ThrowingBackend(const Geometry& geom,
                           std::vector<std::uint32_t> bad_disks = {3})
      : inner_(geom), bad_disks_(std::move(bad_disks)) {}
  Block load(const BlockAddr& addr) override {
    for (std::uint32_t bad : bad_disks_)
      if (addr.disk == bad)
        throw std::runtime_error("disk " + std::to_string(bad) +
                                 " is on fire");
    return inner_.load(addr);
  }
  void store(const BlockAddr& addr, const Block& block) override {
    inner_.store(addr, block);
  }
  void erase_range(std::uint32_t fd, std::uint32_t nd, std::uint64_t b,
                   std::uint64_t c) override {
    inner_.erase_range(fd, nd, b, c);
  }
  std::uint64_t blocks_in_use() const override {
    return inner_.blocks_in_use();
  }

 private:
  MemoryBackend inner_;
  std::vector<std::uint32_t> bad_disks_;
};

TEST(IoExecutorErrors, WorkerExceptionPropagatesToSubmitter) {
  for (std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    DiskArray disks(kGeom, Model::kParallelDisks,
                    std::make_unique<ThrowingBackend>(kGeom));
    disks.set_io_threads(threads);
    std::vector<BlockAddr> addrs{{0, 0}, {3, 0}, {5, 1}};
    std::vector<Block> out;
    EXPECT_THROW(disks.read_batch(addrs, out), std::runtime_error)
        << "threads=" << threads;
    // The array remains usable after the failed batch.
    std::vector<BlockAddr> ok{{0, 1}, {1, 1}};
    EXPECT_EQ(disks.read_batch(ok, out), 1u);
  }
}

TEST(IoExecutorErrors, TwoWorkersThrowingInOneBatchLosesNoException) {
  // Disks 3 and 5 both throw; with 4 workers they belong to different
  // workers (3 % 4 and 5 % 4), so two exceptions race for the completion.
  // The first one wins and propagates; the second must be *counted* as
  // suppressed, never silently dropped.
  DiskArray disks(kGeom, Model::kParallelDisks,
                  std::make_unique<ThrowingBackend>(
                      kGeom, std::vector<std::uint32_t>{3, 5}));
  disks.set_io_threads(4);
  std::vector<BlockAddr> addrs;
  for (std::uint32_t d = 0; d < kDisks; ++d) addrs.push_back({d, 0});
  std::vector<Block> out;
  EXPECT_THROW(disks.read_batch(addrs, out), std::runtime_error);
  EXPECT_EQ(disks.exec_stats().suppressed_errors, 1u);

  // Deferred join surfaces the same behavior through a BatchFuture.
  BatchFuture f = disks.submit_read_batch(addrs);
  EXPECT_THROW(f.get(out), std::runtime_error);
  EXPECT_EQ(disks.exec_stats().suppressed_errors, 2u);

  disks.reset_stats();
  EXPECT_EQ(disks.exec_stats().suppressed_errors, 0u);
}

TEST(IoExecutorConfig, ResolveThreadsSemantics) {
  EXPECT_EQ(IoExecutor::resolve_threads(0, 16), 0u);
  EXPECT_EQ(IoExecutor::resolve_threads(3, 16), 3u);
  EXPECT_EQ(IoExecutor::resolve_threads(64, 16), 16u);  // clamp to D
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  EXPECT_EQ(IoExecutor::resolve_threads(kAutoIoThreads, 1000),
            std::min<std::size_t>(hw, 1000));
  EXPECT_EQ(IoExecutor::resolve_threads(kAutoIoThreads, 2),
            std::min<std::size_t>(hw, 2));
}

TEST(IoExecutorConfig, SetIoThreadsReconfiguresAndDefaultPropagates) {
  DiskArray serial(kGeom);
  EXPECT_EQ(serial.io_threads(), 0u);

  serial.set_io_threads(4);
  EXPECT_EQ(serial.io_threads(), 4u);
  serial.set_io_threads(100);  // clamped to D
  EXPECT_EQ(serial.io_threads(), kDisks);
  serial.set_io_threads(0);
  EXPECT_EQ(serial.io_threads(), 0u);

  // Process-wide default: new arrays pick it up at construction.
  set_default_io_threads(2);
  DiskArray defaulted(kGeom);
  EXPECT_EQ(defaulted.io_threads(), 2u);
  set_default_io_threads(0);
  DiskArray back_to_serial(kGeom);
  EXPECT_EQ(back_to_serial.io_threads(), 0u);
}

TEST(IoExecutorConfig, ExecStatsAccumulateAndReset) {
  DiskArray disks(kGeom);
  disks.set_io_threads(4);
  std::vector<std::pair<BlockAddr, Block>> writes;
  for (std::uint32_t d = 0; d < kDisks; ++d)
    writes.emplace_back(BlockAddr{d, 0}, pattern_block(d));
  disks.write_batch(writes);
  std::vector<BlockAddr> addrs;
  for (std::uint32_t d = 0; d < kDisks; ++d) addrs.push_back({d, 0});
  std::vector<Block> out;
  disks.read_batch(addrs, out);

  IoExecutor::Stats s = disks.exec_stats();
  EXPECT_EQ(s.batches, 2u);
  EXPECT_EQ(s.jobs, 2u * kDisks);  // one per busy disk per batch
  EXPECT_GT(s.wall_ns, 0u);
  EXPECT_GE(s.max_queue_depth, 1u);
  ASSERT_EQ(s.disk_jobs.size(), kDisks);
  for (std::uint32_t d = 0; d < kDisks; ++d) EXPECT_EQ(s.disk_jobs[d], 2u);

  disks.reset_stats();
  s = disks.exec_stats();
  EXPECT_EQ(s.batches, 0u);
  EXPECT_EQ(s.jobs, 0u);
  EXPECT_EQ(s.wall_ns, 0u);

  // Serial arrays report empty exec stats.
  DiskArray serial(kGeom);
  EXPECT_EQ(serial.exec_stats().batches, 0u);
  EXPECT_TRUE(serial.exec_stats().disk_jobs.empty());
}

}  // namespace
}  // namespace pddict::pdm
