// Unit tests for the bit-packed on-disk field array underlying the
// Section 4.2/4.3 dictionaries.
#include <gtest/gtest.h>

#include "core/field_array.hpp"
#include "pdm/io_stats.hpp"
#include "util/prng.hpp"

namespace pddict::core {
namespace {

pdm::DiskArray make_disks(std::uint32_t d = 8, std::uint32_t items = 16,
                          std::uint32_t item_bytes = 8) {
  return pdm::DiskArray(pdm::Geometry{d, items, item_bytes, 0});
}

TEST(FieldArray, GeometryDerivation) {
  auto disks = make_disks();  // 128-byte blocks = 1024 bits
  FieldArray fa(disks, 0, 0, 8 * 100, 33, 8);
  EXPECT_EQ(fa.fields_per_stripe(), 100u);
  EXPECT_EQ(fa.fields_per_block(), 1024u / 33u);  // 31, no straddling
  EXPECT_EQ(fa.blocks_per_stripe(), (100 + 30) / 31);
  EXPECT_EQ(fa.total_blocks(), fa.blocks_per_stripe() * 8);
}

TEST(FieldArray, AddressesMapStripesToDisks) {
  auto disks = make_disks(8);
  FieldArray fa(disks, 0, 7, 8 * 40, 100, 8);
  for (std::uint64_t f = 0; f < fa.num_fields(); ++f) {
    auto addr = fa.addr_of(f);
    EXPECT_EQ(addr.disk, f / fa.fields_per_stripe());
    EXPECT_GE(addr.block, 7u);
    EXPECT_LT(addr.block, 7 + fa.blocks_per_stripe());
  }
}

TEST(FieldArray, SetGetRoundTripAllFieldsInBlock) {
  auto disks = make_disks();
  const std::uint32_t bits = 29;
  FieldArray fa(disks, 0, 0, 8 * 64, bits, 8);
  pdm::Block block(disks.geometry().block_bytes(), std::byte{0});
  util::SplitMix64 rng(5);
  // Fill every field of one block with random values, then read all back —
  // catches any overlap between adjacent packed fields.
  std::vector<std::uint64_t> expect;
  for (std::uint64_t f = 0; f < fa.fields_per_block(); ++f) {
    std::uint64_t v = rng.next() & ((std::uint64_t{1} << bits) - 1);
    if (v == 0) v = 1;
    util::BitVector bv(bits);
    bv.set_field(0, bits, v);
    fa.set(block, f, bv);
    expect.push_back(v);
  }
  for (std::uint64_t f = 0; f < fa.fields_per_block(); ++f) {
    EXPECT_EQ(fa.get(block, f).get_field(0, bits), expect[f]) << f;
    EXPECT_FALSE(fa.is_empty(block, f));
  }
}

TEST(FieldArray, EmptyMeansAllZero) {
  auto disks = make_disks();
  FieldArray fa(disks, 0, 0, 8 * 16, 70, 8);
  pdm::Block block(disks.geometry().block_bytes(), std::byte{0});
  EXPECT_TRUE(fa.is_empty(block, 0));
  util::BitVector bv(70);
  bv.set_bit(69, true);  // a single high bit
  fa.set(block, 0, bv);
  EXPECT_FALSE(fa.is_empty(block, 0));
  // Clearing restores emptiness.
  fa.set(block, 0, util::BitVector(70));
  EXPECT_TRUE(fa.is_empty(block, 0));
}

TEST(FieldArray, ReadFieldsAcrossStripesIsOneRound) {
  auto disks = make_disks(8);
  // 50-bit fields in 1024-bit blocks: 20 per block, 100 per stripe.
  FieldArray fa(disks, 0, 0, 8 * 100, 50, 8);
  // One field per stripe: all on distinct disks.
  std::vector<std::uint64_t> fields;
  for (std::uint32_t s = 0; s < 8; ++s)
    fields.push_back(s * fa.fields_per_stripe() + 3 * s);
  pdm::IoProbe probe(disks);
  auto bits = fa.read_fields(fields);
  EXPECT_EQ(probe.ios(), 1u);
  EXPECT_EQ(bits.size(), 8u);

  // Multiple blocks of the same stripe serialize.
  std::vector<std::uint64_t> same_stripe{0, fa.fields_per_block(),
                                         2 * fa.fields_per_block()};
  pdm::IoProbe probe2(disks);
  fa.read_fields(same_stripe);
  EXPECT_EQ(probe2.ios(), 3u);
}

TEST(FieldArray, PersistedThroughDiskWrites) {
  auto disks = make_disks();
  FieldArray fa(disks, 0, 0, 8 * 16, 40, 8);
  std::uint64_t field = 5;
  util::BitVector bv(40);
  bv.set_field(0, 40, 0xABCDE12345ULL & ((1ull << 40) - 1));
  pdm::Block block = disks.read_block(fa.addr_of(field));
  fa.set(block, field, bv);
  disks.write_block(fa.addr_of(field), block);
  auto out = fa.read_fields(std::vector<std::uint64_t>{field});
  EXPECT_EQ(out[0], bv);
}

TEST(FieldArray, ConstructorValidation) {
  auto disks = make_disks(4);
  EXPECT_THROW(FieldArray(disks, 0, 0, 10, 8, 4), std::invalid_argument);
  EXPECT_THROW(FieldArray(disks, 0, 0, 0, 8, 4), std::invalid_argument);
  EXPECT_THROW(FieldArray(disks, 0, 0, 8, 0, 4), std::invalid_argument);
  EXPECT_THROW(FieldArray(disks, 2, 0, 16, 8, 4), std::invalid_argument);
  // Field wider than a block (128 B = 1024 bits).
  EXPECT_THROW(FieldArray(disks, 0, 0, 8, 2000, 4), std::invalid_argument);
}

}  // namespace
}  // namespace pddict::core
