// Tests for the buffer-pool cache: standalone BufferPool semantics (CLOCK
// eviction, pin/unpin, dirty write-back hand-off) and the cached DiskArray —
// zero-cost hits, miss/flush round accounting, and the exact reconciliation
// invariants between CacheStats and IoStats the bench gate relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <vector>

#include "core/basic_dict.hpp"
#include "pdm/buffer_pool.hpp"
#include "pdm/disk_array.hpp"
#include "util/prng.hpp"

namespace pddict::pdm {
namespace {

Geometry small_geom(std::uint32_t disks = 4, std::uint32_t block_items = 8,
                    std::uint32_t item_bytes = 8) {
  return Geometry{disks, block_items, item_bytes, 0};
}

Block filled(const Geometry& g, std::byte v) {
  return Block(g.block_bytes(), v);
}

TEST(BufferPool, LookupHitMissCounting) {
  BufferPool pool(4, 1);
  Geometry g = small_geom();
  Block out;
  EXPECT_FALSE(pool.lookup({0, 0}, out));
  pool.put({0, 0}, filled(g, std::byte{1}), false);
  EXPECT_TRUE(pool.lookup({0, 0}, out));
  EXPECT_EQ(out[0], std::byte{1});
  CacheStats s = pool.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(BufferPool, EvictsAtCapacityAndReturnsDirtyVictims) {
  BufferPool pool(2, 1);
  Geometry g = small_geom();
  EXPECT_TRUE(pool.put({0, 0}, filled(g, std::byte{1}), true).empty());
  EXPECT_TRUE(pool.put({0, 1}, filled(g, std::byte{2}), false).empty());
  // Third insert must evict one of the two (both unreferenced after the
  // CLOCK sweep clears their bits); only the dirty one comes back.
  auto v1 = pool.put({0, 2}, filled(g, std::byte{3}), false);
  auto v2 = pool.put({0, 3}, filled(g, std::byte{4}), false);
  std::size_t dirty_back = v1.size() + v2.size();
  EXPECT_EQ(dirty_back, 1u);
  const auto& victim = v1.empty() ? v2[0] : v1[0];
  EXPECT_EQ(victim.first, (BlockAddr{0, 0}));
  EXPECT_EQ(victim.second[0], std::byte{1});
  CacheStats s = pool.stats();
  EXPECT_EQ(s.evictions, 2u);
  EXPECT_EQ(s.dirty_evictions, 1u);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(BufferPool, ClockGivesSecondChanceToReferencedFrames) {
  BufferPool pool(2, 1);
  Geometry g = small_geom();
  pool.put({0, 0}, filled(g, std::byte{1}), false);
  pool.put({0, 1}, filled(g, std::byte{2}), false);
  // Inserting a third block sweeps both reference bits clear and evicts
  // {0,0} (first under the hand); the newly installed {0,2} enters with its
  // bit set.
  pool.put({0, 2}, filled(g, std::byte{3}), false);
  EXPECT_FALSE(pool.contains({0, 0}));
  // The next eviction must pass over {0,2} (second chance: bit still set)
  // and take {0,1}, whose bit the previous sweep cleared.
  pool.put({0, 3}, filled(g, std::byte{4}), false);
  EXPECT_TRUE(pool.contains({0, 2}));
  EXPECT_FALSE(pool.contains({0, 1}));
}

TEST(BufferPool, PinnedFramesAreNotEvicted) {
  BufferPool pool(2, 1);
  Geometry g = small_geom();
  pool.put({0, 0}, filled(g, std::byte{1}), false);
  pool.put({0, 1}, filled(g, std::byte{2}), false);
  ASSERT_TRUE(pool.pin({0, 0}));
  pool.put({0, 2}, filled(g, std::byte{3}), false);
  EXPECT_TRUE(pool.contains({0, 0}));
  // All pinned: the shard grows past capacity rather than deadlock.
  ASSERT_TRUE(pool.pin({0, 2}));
  pool.put({0, 3}, filled(g, std::byte{4}), false);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_TRUE(pool.unpin({0, 0}));
  EXPECT_FALSE(pool.unpin({0, 0}));  // pin count already zero
  EXPECT_FALSE(pool.pin({1, 7}));    // absent
}

TEST(BufferPool, DirtyBitSurvivesCleanOverwrite) {
  BufferPool pool(2, 1);
  Geometry g = small_geom();
  pool.put({0, 0}, filled(g, std::byte{1}), true);
  pool.put({0, 0}, filled(g, std::byte{2}), false);  // clean re-fill
  auto dirty = pool.take_dirty();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0].second[0], std::byte{2});  // newest contents, still dirty
  EXPECT_TRUE(pool.take_dirty().empty());       // now clean, still resident
  EXPECT_TRUE(pool.contains({0, 0}));
}

TEST(BufferPool, InvalidateRangeIsWrapSafe) {
  BufferPool pool(8, 2);
  Geometry g = small_geom();
  pool.put({0, 1}, filled(g, std::byte{1}), true);
  pool.put({1, 5}, filled(g, std::byte{2}), true);
  pool.put({3, 9}, filled(g, std::byte{3}), true);
  pool.invalidate_range(1, std::numeric_limits<std::uint32_t>::max(), 4,
                        std::numeric_limits<std::uint64_t>::max());
  EXPECT_TRUE(pool.contains({0, 1}));   // disk below range
  EXPECT_FALSE(pool.contains({1, 5}));
  EXPECT_FALSE(pool.contains({3, 9}));
  pool.invalidate({0, 1});
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_TRUE(pool.take_dirty().empty());  // invalidate discards dirty data
}

TEST(BufferPool, RejectsZeroCapacity) {
  EXPECT_THROW(BufferPool(0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Cached DiskArray integration.

TEST(CachedDiskArray, HitsCostZeroParallelIos) {
  CachedDiskArray disks(small_geom(), /*frames=*/8);
  ASSERT_TRUE(disks.cache_enabled());
  EXPECT_EQ(disks.cache_frames(), 8u);
  std::vector<BlockAddr> addrs{{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  std::vector<Block> out;
  EXPECT_EQ(disks.read_batch(addrs, out), 1u);  // cold: one round of misses
  EXPECT_EQ(disks.stats().parallel_ios, 1u);
  EXPECT_EQ(disks.read_batch(addrs, out), 0u);  // warm: all hits, free
  EXPECT_EQ(disks.stats().parallel_ios, 1u);
  CacheStats c = disks.cache_stats();
  EXPECT_EQ(c.misses, 4u);
  EXPECT_EQ(c.hits, 4u);
}

TEST(CachedDiskArray, WritesAreDeferredUntilFlush) {
  CachedDiskArray disks(small_geom(), /*frames=*/8);
  Geometry g = disks.geometry();
  std::vector<std::pair<BlockAddr, Block>> writes;
  for (std::uint32_t d = 0; d < 4; ++d)
    writes.emplace_back(BlockAddr{d, 0},
                        filled(g, static_cast<std::byte>(d)));
  EXPECT_EQ(disks.write_batch(writes), 0u);  // absorbed by the pool
  EXPECT_EQ(disks.stats().parallel_ios, 0u);
  EXPECT_EQ(disks.blocks_in_use(), 0u);      // backend untouched
  // peek serves the dirty frames (newest data), accounting-free.
  EXPECT_EQ(disks.peek({2, 0})[0], std::byte{2});
  EXPECT_EQ(disks.flush_cache(), 1u);        // one coalesced write-back round
  EXPECT_EQ(disks.stats().write_rounds, 1u);
  EXPECT_EQ(disks.blocks_in_use(), 4u);
  EXPECT_EQ(disks.flush_cache(), 0u);        // nothing dirty anymore
  CacheStats c = disks.cache_stats();
  EXPECT_EQ(c.flushed_blocks, 4u);
  EXPECT_EQ(c.flush_rounds, 1u);
}

TEST(CachedDiskArray, ReadBackMatchesUncachedSemantics) {
  // Same operation sequence against a cached and an uncached array must
  // produce identical data (only the round accounting differs).
  Geometry g = small_geom();
  DiskArray plain(g);
  CachedDiskArray cached(g, /*frames=*/3);  // small: constant eviction churn
  util::SplitMix64 rng(42);
  std::map<std::uint64_t, std::byte> reference;
  for (int step = 0; step < 500; ++step) {
    BlockAddr a{static_cast<std::uint32_t>(rng.next() % 4), rng.next() % 16};
    if (rng.next() % 2 == 0) {
      auto v = static_cast<std::byte>(rng.next() % 251 + 1);
      std::pair<BlockAddr, Block> w{a, filled(g, v)};
      plain.write_batch({&w, 1});
      cached.write_batch({&w, 1});
      reference[a.disk * 1000 + a.block] = v;
    } else {
      std::vector<Block> p, c;
      plain.read_batch({&a, 1}, p);
      cached.read_batch({&a, 1}, c);
      EXPECT_EQ(p[0], c[0]) << "step " << step;
      auto it = reference.find(a.disk * 1000 + a.block);
      EXPECT_EQ(c[0][0], it == reference.end() ? std::byte{0} : it->second);
    }
  }
  // The cache can only help: never more rounds than the uncached run.
  EXPECT_LE(cached.stats().parallel_ios, plain.stats().parallel_ios);
}

TEST(CachedDiskArray, ReconciliationInvariantsHoldExactly) {
  CachedDiskArray disks(small_geom(), /*frames=*/3);
  util::SplitMix64 rng(7);
  Geometry g = disks.geometry();
  std::uint64_t distinct_read_requests = 0;
  for (int step = 0; step < 300; ++step) {
    std::vector<BlockAddr> addrs;
    for (int i = 0; i < 3; ++i)
      addrs.push_back({static_cast<std::uint32_t>(rng.next() % 4),
                       rng.next() % 8});
    if (rng.next() % 2 == 0) {
      std::vector<Block> out;
      disks.read_batch(addrs, out);
      std::sort(addrs.begin(), addrs.end());
      distinct_read_requests += static_cast<std::uint64_t>(
          std::unique(addrs.begin(), addrs.end()) - addrs.begin());
    } else {
      std::vector<std::pair<BlockAddr, Block>> writes;
      for (const auto& a : addrs)
        writes.emplace_back(a, filled(g, std::byte{1}));
      disks.write_batch(writes);
    }
  }
  disks.flush_cache();
  CacheStats c = disks.cache_stats();
  const IoStats& io = disks.stats();
  EXPECT_EQ(io.blocks_read, c.misses);
  EXPECT_EQ(io.blocks_written, c.flushed_blocks);
  EXPECT_EQ(c.hits + c.misses, distinct_read_requests);
  EXPECT_EQ(io.write_rounds, c.flush_rounds);
}

TEST(CachedDiskArray, PokeInvalidatesAndDiscardDropsFrames) {
  CachedDiskArray disks(small_geom(), /*frames=*/8);
  Geometry g = disks.geometry();
  std::pair<BlockAddr, Block> w{{1, 2}, filled(g, std::byte{5})};
  disks.write_batch({&w, 1});  // dirty frame
  disks.poke({1, 2}, filled(g, std::byte{9}));
  // The stale dirty frame must not overwrite the poked contents.
  disks.flush_cache();
  EXPECT_EQ(disks.peek({1, 2})[0], std::byte{9});

  disks.write_batch({&w, 1});
  disks.discard_blocks(1, 1, 2, 1);
  disks.flush_cache();
  EXPECT_EQ(disks.peek({1, 2})[0], std::byte{0});  // dirty frame discarded
  EXPECT_EQ(disks.blocks_in_use(), 0u);  // backend copy released as well
}

TEST(CachedDiskArray, ResetStatsZeroesCacheCounters) {
  CachedDiskArray disks(small_geom(), /*frames=*/4);
  std::vector<BlockAddr> addrs{{0, 0}, {1, 1}};
  std::vector<Block> out;
  disks.read_batch(addrs, out);
  disks.read_batch(addrs, out);
  ASSERT_GT(disks.cache_stats().hits, 0u);
  disks.reset_stats();
  CacheStats c = disks.cache_stats();
  EXPECT_EQ(c.hits + c.misses + c.evictions + c.flushed_blocks, 0u);
  // Invariants hold from the fresh epoch.
  disks.read_batch(addrs, out);
  EXPECT_EQ(disks.stats().blocks_read, disks.cache_stats().misses);
}

TEST(CachedDiskArray, EnableDisableFlushesAndPreservesData) {
  DiskArray disks(small_geom());
  Geometry g = disks.geometry();
  EXPECT_FALSE(disks.cache_enabled());
  disks.enable_cache(4);
  std::pair<BlockAddr, Block> w{{0, 1}, filled(g, std::byte{6})};
  disks.write_batch({&w, 1});
  disks.disable_cache();  // must flush the dirty frame, charging rounds
  EXPECT_FALSE(disks.cache_enabled());
  EXPECT_EQ(disks.cache_frames(), 0u);
  EXPECT_EQ(disks.peek({0, 1})[0], std::byte{6});
  EXPECT_EQ(disks.stats().blocks_written, 1u);
}

TEST(CachedDiskArray, BasicDictWorksUnchangedAndCheaper) {
  // The facade claim: BasicDict takes a DiskArray&, so handing it a
  // CachedDiskArray must work verbatim — and cost no more I/O.
  Geometry g = small_geom(4, 64, 16);
  core::BasicDictParams params;
  params.universe_size = 1u << 16;
  params.capacity = 256;
  params.value_bytes = 8;
  params.degree = 4;

  DiskArray plain(g);
  CachedDiskArray cached(g, /*frames=*/64);
  core::BasicDict d1(plain, 0, 0, params);
  core::BasicDict d2(cached, 0, 0, params);
  std::vector<std::byte> value(8, std::byte{0xab});
  for (core::Key k = 1; k <= 200; ++k) {
    ASSERT_TRUE(d1.insert(k, value));
    ASSERT_TRUE(d2.insert(k, value));
  }
  for (core::Key k = 1; k <= 200; ++k) {
    auto r1 = d1.lookup(k);
    auto r2 = d2.lookup(k);
    ASSERT_TRUE(r1.found && r2.found);
    EXPECT_EQ(r1.value, r2.value);
  }
  EXPECT_FALSE(d2.lookup(5000).found);
  EXPECT_TRUE(d2.erase(7));
  EXPECT_FALSE(d2.lookup(7).found);
  EXPECT_EQ(d1.size(), d2.size() + 1);
  cached.flush_cache();
  EXPECT_LE(cached.stats().parallel_ios, plain.stats().parallel_ios);
  // And the reconciliation invariants hold across a real workload too.
  CacheStats c = cached.cache_stats();
  EXPECT_EQ(cached.stats().blocks_read, c.misses);
  EXPECT_EQ(cached.stats().blocks_written, c.flushed_blocks);
}

}  // namespace
}  // namespace pddict::pdm
