// BoundMonitor: rule matching and margin arithmetic on synthetic OpRecords,
// violation detection and logging, gauge directions, live attachment to the
// real structures (each paper bound holds on its own workload), and the
// bench_diff gating path — an injected over-budget operation must surface as
// a regression when the embedding bench reports are diffed.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/basic_dict.hpp"
#include "core/dynamic_dict.hpp"
#include "core/load_balance.hpp"
#include "core/static_dict.hpp"
#include "expander/seeded_expander.hpp"
#include "obs/bench_baseline.hpp"
#include "obs/bound_monitor.hpp"
#include "pdm/allocator.hpp"
#include "pdm/disk_array.hpp"
#include "util/prng.hpp"
#include "workload/workload.hpp"

namespace pddict {
namespace {

obs::BoundRule upper_rule(std::string name, obs::OpKind kind, double bound,
                          obs::BoundMode mode = obs::BoundMode::kPerOp,
                          obs::OpOutcome outcome = obs::OpOutcome::kUnknown,
                          std::string structure = "") {
  obs::BoundRule r;
  r.name = std::move(name);
  r.theorem = "test";
  r.mode = mode;
  r.kind = kind;
  r.outcome = outcome;
  r.structure = std::move(structure);
  r.bound = bound;
  return r;
}

obs::OpRecord op(obs::OpKind kind, std::uint64_t parallel_ios,
                 obs::OpOutcome outcome = obs::OpOutcome::kUnknown,
                 const char* structure = "test_dict",
                 std::uint32_t batch = 1) {
  obs::OpRecord r;
  static std::uint64_t next_id = 1;
  r.id = next_id++;
  r.kind = kind;
  r.outcome = outcome;
  r.structure = structure;
  r.batch = batch;
  r.io.parallel_ios = parallel_ios;
  return r;
}

// ---- matching and margin arithmetic ----

TEST(BoundMonitor, MatchesOnKindOutcomeAndStructure) {
  obs::BoundMonitor m(
      "test_dict",
      {upper_rule("lookup_any", obs::OpKind::kLookup, 2.0),
       upper_rule("lookup_hit", obs::OpKind::kLookup, 2.0,
                  obs::BoundMode::kPerOp, obs::OpOutcome::kHit),
       upper_rule("other_struct", obs::OpKind::kLookup, 2.0,
                  obs::BoundMode::kPerOp, obs::OpOutcome::kUnknown,
                  "somewhere_else")});
  m.on_op(op(obs::OpKind::kLookup, 1, obs::OpOutcome::kMiss));
  m.on_op(op(obs::OpKind::kLookup, 1, obs::OpOutcome::kHit));
  m.on_op(op(obs::OpKind::kInsert, 1));  // wrong kind: matches nothing
  // kUnknown outcome filter is a wildcard; "lookup_hit" saw only the hit;
  // a structure filter naming another dictionary never matches.
  EXPECT_EQ(m.margin("lookup_any"), 0.5);
  EXPECT_EQ(m.margin("lookup_hit"), 0.5);
  EXPECT_EQ(m.margin("other_struct"), 0.0);
  EXPECT_EQ(m.violations(), 0u);
}

TEST(BoundMonitor, PerOpTracksWorstAndBatchDividesCost) {
  obs::BoundMonitor m("test_dict",
                      {upper_rule("insert", obs::OpKind::kInsert, 4.0)});
  m.on_op(op(obs::OpKind::kInsert, 2));
  EXPECT_EQ(m.margin("insert"), 0.5);
  m.on_op(op(obs::OpKind::kInsert, 3));
  EXPECT_EQ(m.margin("insert"), 0.75);
  m.on_op(op(obs::OpKind::kInsert, 1));   // better op: worst margin keeps
  EXPECT_EQ(m.margin("insert"), 0.75);
  // Bounds are per key: a 4-key batch costing 8 rounds is 2 rounds/key.
  m.on_op(op(obs::OpKind::kInsert, 8, obs::OpOutcome::kUnknown, "test_dict",
             4));
  EXPECT_EQ(m.margin("insert"), 0.75);
  EXPECT_EQ(m.violations(), 0u);
  EXPECT_EQ(m.worst_margin(), 0.75);
}

TEST(BoundMonitor, AverageModeBoundsTheRunningMean) {
  obs::BoundMonitor m(
      "test_dict", {upper_rule("insert_avg", obs::OpKind::kInsert, 2.0,
                               obs::BoundMode::kAverage)});
  m.on_op(op(obs::OpKind::kInsert, 1));  // mean 1
  m.on_op(op(obs::OpKind::kInsert, 3));  // mean 2: at the bound, no violation
  EXPECT_DOUBLE_EQ(m.margin("insert_avg"), 1.0);
  EXPECT_EQ(m.violations(), 0u);
  m.on_op(op(obs::OpKind::kInsert, 8));  // mean 4: over
  EXPECT_DOUBLE_EQ(m.margin("insert_avg"), 2.0);
  EXPECT_EQ(m.violations(), 1u);
}

TEST(BoundMonitor, ViolationIsCountedAndLogged) {
  obs::BoundMonitor m("test_dict",
                      {upper_rule("lookup", obs::OpKind::kLookup, 1.0)});
  m.on_op(op(obs::OpKind::kLookup, 1));
  EXPECT_EQ(m.violations(), 0u);  // margin exactly 1.0 is inside the bound
  obs::OpRecord bad = op(obs::OpKind::kLookup, 3);
  m.on_op(bad);
  EXPECT_EQ(m.violations(), 1u);
  EXPECT_DOUBLE_EQ(m.margin("lookup"), 3.0);
  auto log = m.violation_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].rule, "lookup");
  EXPECT_EQ(log[0].measured, 3.0);
  EXPECT_EQ(log[0].bound, 1.0);
  EXPECT_EQ(log[0].op_id, bad.id);
  EXPECT_EQ(log[0].kind, obs::OpKind::kLookup);
}

TEST(BoundMonitor, IsViolationUsesFloatTolerance) {
  EXPECT_FALSE(obs::BoundMonitor::is_violation(1.0));
  EXPECT_FALSE(obs::BoundMonitor::is_violation(1.0 + 1e-12));
  EXPECT_TRUE(obs::BoundMonitor::is_violation(1.0 + 1e-6));
}

TEST(BoundMonitor, GaugeLowerDirectionInvertsTheRatio) {
  obs::BoundRule r;
  r.name = "expansion";
  r.theorem = "test";
  r.mode = obs::BoundMode::kGauge;
  r.direction = obs::BoundDirection::kLowerLimit;
  r.bound = 0.8;
  obs::BoundMonitor m("expander", {r});
  m.observe("expansion", 1.0);  // above the floor: margin 0.8
  EXPECT_DOUBLE_EQ(m.margin("expansion"), 0.8);
  EXPECT_EQ(m.violations(), 0u);
  m.observe("expansion", 0.5);  // below the floor: margin 1.6
  EXPECT_DOUBLE_EQ(m.margin("expansion"), 1.6);
  EXPECT_EQ(m.violations(), 1u);
}

TEST(BoundMonitor, GaugeAcceptsPerObservationBound) {
  obs::BoundRule r;
  r.name = "max_load";
  r.theorem = "test";
  r.mode = obs::BoundMode::kGauge;
  obs::BoundMonitor m("balancer", {r});
  m.observe("max_load", 3.0, 10.0);  // Lemma 3 style: bound moves per call
  m.observe("max_load", 4.0, 5.0);
  EXPECT_DOUBLE_EQ(m.margin("max_load"), 0.8);
  EXPECT_EQ(m.violations(), 0u);
}

TEST(BoundMonitor, ObserveUnknownRuleThrows) {
  obs::BoundMonitor m("test_dict",
                      {upper_rule("lookup", obs::OpKind::kLookup, 1.0)});
  EXPECT_THROW(m.observe("no_such_rule", 1.0), std::invalid_argument);
  EXPECT_THROW(m.observe("no_such_rule", 1.0, 2.0), std::invalid_argument);
}

TEST(BoundMonitor, ReportCarriesSchemaRulesAndViolationLog) {
  obs::BoundMonitor m("test_dict",
                      {upper_rule("lookup", obs::OpKind::kLookup, 1.0)});
  m.on_op(op(obs::OpKind::kLookup, 2));
  obs::Json j = m.report();
  EXPECT_EQ(j.find("schema")->as_string(), "pddict-bound-report");
  EXPECT_EQ(j.find("structure")->as_string(), "test_dict");
  EXPECT_EQ(j.find("violations")->as_int(), 1);
  const auto& rules = j.find("rules")->as_array();
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].find("name")->as_string(), "lookup");
  EXPECT_EQ(rules[0].find("margin")->as_double(), 2.0);
  EXPECT_EQ(rules[0].find("violations")->as_int(), 1);
  EXPECT_EQ(j.find("violation_log")->as_array().size(), 1u);
  EXPECT_NE(m.render().find("total violations: 1"), std::string::npos);
}

// ---- the paper's bounds hold live on the real structures ----

TEST(BoundMonitorLive, DynamicDictSatisfiesTheorem7) {
  core::DynamicDictParams p;
  p.universe_size = std::uint64_t{1} << 40;
  p.capacity = 400;
  p.value_bytes = 16;
  p.epsilon_op = 0.5;
  p.stripe_factor = 2.0;
  p.degree = core::DynamicDict::degree_for(p);
  pdm::DiskArray disks(pdm::Geometry{2 * p.degree, 64, 16, 0});
  pdm::DiskAllocator alloc;
  core::DynamicDict dict(disks, 0, alloc, p);
  auto monitor = std::make_shared<obs::BoundMonitor>(
      "dynamic_dict", obs::thm7_rules(p.epsilon_op, dict.levels()));
  disks.add_sink(monitor);
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom,
                                      400, p.universe_size, 23);
  for (core::Key k : keys) dict.insert(k, core::value_for_key(k, 16));
  for (core::Key k : keys) dict.lookup(k);
  for (std::uint64_t i = 0; i < 100; ++i)
    dict.lookup(p.universe_size - 1 - i);  // misses
  for (std::size_t i = 0; i < keys.size(); i += 4) dict.erase(keys[i]);
  EXPECT_EQ(monitor->violations(), 0u)
      << monitor->render();  // every Thm 7 budget held, per-op and amortized
  EXPECT_DOUBLE_EQ(monitor->margin("lookup_miss"), 1.0);  // exactly 1 I/O
  EXPECT_GT(monitor->margin("insert"), 0.0);
  EXPECT_GT(monitor->margin("erase"), 0.0);
  EXPECT_LE(monitor->worst_margin(), 1.0);
}

TEST(BoundMonitorLive, StaticDictSatisfiesTheorem6) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  pdm::DiskAllocator alloc;
  core::StaticDictParams p;
  p.universe_size = 1 << 30;
  p.capacity = 300;
  p.value_bytes = 16;
  p.degree = 16;
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, 300,
                                      p.universe_size, 2);
  std::vector<std::byte> values(300 * 16, std::byte{1});
  core::StaticDict dict(disks, 0, alloc, p, keys, values);
  auto monitor =
      std::make_shared<obs::BoundMonitor>("static_dict", obs::thm6_rules());
  disks.add_sink(monitor);
  for (core::Key k : keys) dict.lookup(k);
  dict.lookup(p.universe_size - 1);  // misses are one probe too
  EXPECT_EQ(monitor->violations(), 0u) << monitor->render();
  EXPECT_DOUBLE_EQ(monitor->margin("lookup"), 1.0);  // exactly one I/O
}

TEST(BoundMonitorLive, BasicDictSatisfiesSection41Bounds) {
  pdm::DiskArray disks(pdm::Geometry{16, 32, 16, 0});
  auto monitor = std::make_shared<obs::BoundMonitor>(
      "basic_dict", obs::expander_dict_rules());
  disks.add_sink(monitor);
  core::BasicDictParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.capacity = 500;
  p.value_bytes = 8;
  p.degree = 16;
  core::BasicDict dict(disks, 0, 0, p);
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, 300,
                                      p.universe_size, 31);
  for (core::Key k : keys) dict.insert(k, core::value_for_key(k, 8));
  for (core::Key k : keys) dict.lookup(k);
  for (std::size_t i = 0; i < keys.size(); i += 2) dict.erase(keys[i]);
  EXPECT_EQ(monitor->violations(), 0u) << monitor->render();
  EXPECT_DOUBLE_EQ(monitor->margin("lookup"), 1.0);
  EXPECT_DOUBLE_EQ(monitor->margin("insert"), 1.0);  // read + write = 2
}

TEST(BoundMonitorLive, LoadBalancerSatisfiesLemma3) {
  const std::uint32_t d = 16;
  const std::uint64_t v = 16 * 256;
  expander::SeededExpander g(std::uint64_t{1} << 30, v, d, 42);
  core::LoadBalancer lb(g, 1);
  obs::BoundMonitor monitor("load_balancer", obs::lemma3_rules());
  lb.attach_monitor(&monitor, 1.0 / 6, 1.0 / 2);
  util::SplitMix64 rng(7);
  for (std::uint64_t i = 0; i < 4000; ++i)
    lb.assign(rng.next_below(g.left_size()));
  EXPECT_EQ(monitor.violations(), 0u) << monitor.render();
  double margin = monitor.margin("max_load");
  EXPECT_GT(margin, 0.0);  // the gauge really was pushed per assignment
  EXPECT_LE(margin, 1.0);
}

// ---- gating: an over-budget op must fail the bench_diff gate ----

obs::Json wrap_report(const obs::BoundMonitor& monitor) {
  obs::Json j = obs::Json::object();
  j.set("schema", "pddict-bench-report");
  j.set("bench", "bound_gate_test");
  obs::Json bounds = obs::Json::object();
  bounds.set("test_dict", monitor.report());
  j.set("bounds", std::move(bounds));
  return j;
}

TEST(BoundGating, InjectedViolationFailsTheDiffGate) {
  std::vector<obs::BoundRule> rules = {
      upper_rule("lookup", obs::OpKind::kLookup, 1.0)};
  obs::BoundMonitor clean("test_dict", rules);
  clean.on_op(op(obs::OpKind::kLookup, 1));
  obs::BoundMonitor violated("test_dict", rules);
  violated.on_op(op(obs::OpKind::kLookup, 1));
  violated.on_op(op(obs::OpKind::kLookup, 3));  // the injected over-budget op
  ASSERT_EQ(violated.violations(), 1u);

  auto result =
      obs::diff_baselines(wrap_report(clean), wrap_report(violated));
  EXPECT_GT(result.regressions, 0u) << obs::render_diff(result);
  EXPECT_FALSE(result.ok());

  // The gate stays red even when the old baseline already had the violation:
  // a margin above 1.0 on the new side always gates.
  auto still_red =
      obs::diff_baselines(wrap_report(violated), wrap_report(violated));
  EXPECT_GT(still_red.regressions, 0u);

  // And a violation introduced on a path the old baseline lacks (kAdded)
  // gates too — new structures don't get a free pass.
  obs::Json empty = obs::Json::object();
  empty.set("schema", "pddict-bench-report");
  empty.set("bench", "bound_gate_test");
  auto added = obs::diff_baselines(empty, wrap_report(violated));
  EXPECT_GT(added.regressions, 0u);
}

TEST(BoundGating, MarginDriftGatesOnlyBeyondTheBand) {
  std::vector<obs::BoundRule> rules = {
      upper_rule("lookup", obs::OpKind::kLookup, 100.0)};
  obs::BoundMonitor base("test_dict", rules);
  base.on_op(op(obs::OpKind::kLookup, 50));  // margin 0.50
  obs::BoundMonitor near("test_dict", rules);
  near.on_op(op(obs::OpKind::kLookup, 52));  // margin 0.52: 4% drift
  obs::BoundMonitor far("test_dict", rules);
  far.on_op(op(obs::OpKind::kLookup, 60));  // margin 0.60: 20% drift

  obs::DiffOptions options;  // margin_tol_pct = 5 by default
  auto within =
      obs::diff_baselines(wrap_report(base), wrap_report(near), options);
  // 50 -> 52 also moves the "measured" leaf (deterministic I/O count), which
  // legitimately gates; the margin leaf itself must NOT contribute.
  for (const auto& e : within.entries) {
    if (e.kind == obs::DiffKind::kRegression) {
      EXPECT_EQ(e.path.find("margin"), std::string::npos) << e.path;
    }
  }

  auto beyond =
      obs::diff_baselines(wrap_report(base), wrap_report(far), options);
  bool margin_gated = false;
  for (const auto& e : beyond.entries)
    if (e.kind == obs::DiffKind::kRegression &&
        e.path.find("margin") != std::string::npos)
      margin_gated = true;
  EXPECT_TRUE(margin_gated) << obs::render_diff(beyond);

  // Drift away from the bound is an improvement, not a regression.
  auto relaxed =
      obs::diff_baselines(wrap_report(far), wrap_report(base), options);
  for (const auto& e : relaxed.entries) {
    if (e.kind == obs::DiffKind::kRegression) {
      EXPECT_EQ(e.path.find("margin"), std::string::npos) << e.path;
    }
  }
}

}  // namespace
}  // namespace pddict
