// Tests for the expander-graph substrate: neighbor functions, stripes,
// expansion verification, unique-neighbor lemmas, the telescope product and
// the semi-explicit construction.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <cmath>
#include <set>

#include "expander/neighbor_function.hpp"
#include "expander/preprocessed.hpp"
#include "expander/seeded_expander.hpp"
#include "expander/semi_explicit.hpp"
#include "expander/table_expander.hpp"
#include "expander/telescope.hpp"
#include "expander/verify.hpp"

namespace pddict::expander {
namespace {

TEST(SeededExpander, StripedStructureHolds) {
  SeededExpander g(1 << 20, 16 * 64, 16, 7);
  EXPECT_TRUE(g.striped());
  EXPECT_EQ(g.stripe_size(), 64u);
  for (std::uint64_t x : {0ull, 1ull, 999999ull}) {
    for (std::uint32_t i = 0; i < g.degree(); ++i) {
      std::uint64_t y = g.neighbor(x, i);
      EXPECT_GE(y, g.stripe_begin(i));
      EXPECT_LT(y, g.stripe_begin(i) + g.stripe_size());
      EXPECT_EQ(g.stripe_local(x, i), y - g.stripe_begin(i));
    }
  }
}

TEST(SeededExpander, DeterministicPerSeed) {
  SeededExpander a(1000, 80, 8, 1), b(1000, 80, 8, 1), c(1000, 80, 8, 2);
  int diff = 0;
  for (std::uint64_t x = 0; x < 100; ++x)
    for (std::uint32_t i = 0; i < 8; ++i) {
      EXPECT_EQ(a.neighbor(x, i), b.neighbor(x, i));
      diff += a.neighbor(x, i) != c.neighbor(x, i);
    }
  EXPECT_GT(diff, 500);  // different seeds give an essentially different graph
}

TEST(SeededExpander, RejectsBadShape) {
  EXPECT_THROW(SeededExpander(10, 33, 8, 0), std::invalid_argument);
  EXPECT_THROW(SeededExpander(10, 0, 8, 0), std::invalid_argument);
  EXPECT_THROW(SeededExpander(10, 8, 0, 0), std::invalid_argument);
}

TEST(RecommendedDegree, GrowsLogarithmically) {
  EXPECT_EQ(recommended_degree(1ull << 8), 8u);    // floor at 8
  EXPECT_EQ(recommended_degree(1ull << 20), 20u);
  EXPECT_EQ(recommended_degree(1ull << 40), 40u);
  EXPECT_EQ(recommended_degree(1ull << 20, 2.0), 40u);
}

TEST(TableExpander, ValidatesNeighborsAndStripes) {
  // 2 left vertices, degree 2, v = 4 (stripe size 2).
  std::vector<std::uint64_t> good{0, 2, 1, 3};
  TableExpander g(4, 2, good, true);
  EXPECT_EQ(g.neighbor(0, 0), 0u);
  EXPECT_EQ(g.neighbor(1, 1), 3u);
  std::vector<std::uint64_t> out_of_range{0, 4, 1, 3};
  EXPECT_THROW(TableExpander(4, 2, out_of_range, true), std::invalid_argument);
  std::vector<std::uint64_t> stripe_violation{2, 2, 1, 3};
  EXPECT_THROW(TableExpander(4, 2, stripe_violation, true),
               std::invalid_argument);
  TableExpander ok_unstriped(4, 2, stripe_violation, false);
  EXPECT_EQ(ok_unstriped.neighbor(0, 0), 2u);
}

TEST(TableExpander, RandomGraphHasValidShape) {
  auto g = TableExpander::random(100, 40, 8, true, 3);
  EXPECT_EQ(g.left_size(), 100u);
  EXPECT_EQ(g.right_size(), 40u);
  for (std::uint64_t x = 0; x < 100; ++x)
    for (std::uint32_t i = 0; i < 8; ++i) {
      EXPECT_GE(g.neighbor(x, i), i * 5u);
      EXPECT_LT(g.neighbor(x, i), (i + 1) * 5u);
    }
}

TEST(Verify, NeighborhoodSizeExact) {
  // Handcrafted: x0 -> {0,2}, x1 -> {0,3}: Γ({x0,x1}) = {0,2,3}.
  std::vector<std::uint64_t> table{0, 2, 0, 3};
  TableExpander g(4, 2, table, true);
  std::vector<std::uint64_t> s{0, 1};
  EXPECT_EQ(neighborhood_size(g, s), 3u);
}

TEST(Verify, ExhaustiveCatchesBadExpansion) {
  // All left vertices share the same neighbors: worst possible graph.
  std::vector<std::uint64_t> table;
  for (int x = 0; x < 8; ++x) {
    table.push_back(0);
    table.push_back(2);
  }
  TableExpander bad(4, 2, table, true);
  auto report = check_expansion_exhaustive(bad, 4);
  EXPECT_FALSE(report.meets(0.5));
  EXPECT_LT(report.min_ratio, 0.3);

  // A truly random small graph should expand decently for small sets.
  auto good = TableExpander::random(12, 64, 8, true, 11);
  auto report2 = check_expansion_exhaustive(good, 3);
  EXPECT_GT(report2.min_ratio, 0.6);
  EXPECT_GT(report2.sets_checked, 0u);
}

TEST(Verify, SampledAndGreedyRunOnSeededGraphs) {
  SeededExpander g(1 << 16, 16 * 1024, 16, 5);
  std::vector<std::uint64_t> sizes{4, 16, 64, 256};
  auto sampled = check_expansion_sampled(g, sizes, 20, 99);
  EXPECT_EQ(sampled.sets_checked, sizes.size() * 20);
  // Random sets on a pseudorandom graph of these parameters expand well.
  EXPECT_TRUE(sampled.meets(1.0 / 6));
  auto greedy = check_expansion_greedy(g, 256, 32, 99);
  EXPECT_GT(greedy.sets_checked, 0u);
  EXPECT_TRUE(greedy.meets(0.5));  // adversarial ratio degrades but not badly
}

TEST(Verify, UniqueNeighborsHandcrafted) {
  // x0 -> {0,2}, x1 -> {0,3}: Φ = {2,3}; each x has 1 unique neighbor.
  std::vector<std::uint64_t> table{0, 2, 0, 3};
  TableExpander g(4, 2, table, true);
  std::vector<std::uint64_t> s{0, 1};
  auto phi = unique_neighbor_nodes(g, s);
  EXPECT_EQ(phi, (std::vector<std::uint64_t>{2, 3}));
  auto counts = unique_neighbor_counts(g, s);
  EXPECT_EQ(counts, (std::vector<std::uint32_t>{1, 1}));
  // λ = 1/2 → threshold (1-λ)d = 1 → both qualify.
  EXPECT_DOUBLE_EQ(lemma5_fraction(g, s, 0.5), 1.0);
  // λ = 1/4 → threshold 1.5 → none qualify.
  EXPECT_DOUBLE_EQ(lemma5_fraction(g, s, 0.25), 0.0);
}

TEST(Verify, Lemma4HoldsOnRandomGraphs) {
  // |Φ(S)| >= (1-2ε)d|S| with the empirical ε of the sampled check.
  SeededExpander g(1 << 16, 16 * 2048, 16, 21);
  util::SplitMix64 rng(3);
  std::vector<std::uint64_t> s;
  std::set<std::uint64_t> chosen;
  while (chosen.size() < 512) chosen.insert(rng.next_below(g.left_size()));
  s.assign(chosen.begin(), chosen.end());
  auto phi = unique_neighbor_nodes(g, s);
  double eps = 1.0 / 6;
  EXPECT_GE(static_cast<double>(phi.size()),
            (1 - 2 * eps) * g.degree() * s.size());
}

TEST(Verify, Lemma5FractionHighOnSizedGraphs)
{
  // With v = 4·N·d (the static dictionary's sizing), most keys have >= 2d/3
  // unique neighbors.
  const std::uint64_t n = 1000;
  SeededExpander g(1 << 20, 18 * 4 * n, 18, 77);
  std::vector<std::uint64_t> s(n);
  std::iota(s.begin(), s.end(), 5000);
  EXPECT_GE(lemma5_fraction(g, s, 1.0 / 3), 0.5);  // Lemma 5's guarantee
}

TEST(Telescope, ComposesDegreesAndDeduplicates) {
  auto f1 = std::make_shared<TableExpander>(
      TableExpander::random(1 << 12, 256, 4, false, 1));
  auto f2 = std::make_shared<TableExpander>(
      TableExpander::random(256, 128, 4, false, 2));
  TelescopeProduct t(f1, f2);
  EXPECT_EQ(t.degree(), 16u);
  EXPECT_EQ(t.left_size(), std::uint64_t{1} << 12);
  EXPECT_EQ(t.right_size(), 128u);
  for (std::uint64_t x : {0ull, 77ull, 4000ull}) {
    auto ns = t.neighbors(x);
    std::set<std::uint64_t> uniq(ns.begin(), ns.end());
    EXPECT_EQ(uniq.size(), ns.size()) << "multi-edges must be re-mapped";
    for (auto y : ns) EXPECT_LT(y, 128u);
    // Deterministic.
    EXPECT_EQ(ns, t.neighbors(x));
    EXPECT_EQ(t.neighbor(x, 5), ns[5]);
  }
}

TEST(Telescope, RejectsImpossibleComposition) {
  auto f1 = std::make_shared<TableExpander>(
      TableExpander::random(100, 64, 8, false, 1));
  auto f2 = std::make_shared<TableExpander>(
      TableExpander::random(64, 32, 8, false, 2));
  // degree 64 > v2=32: dedup impossible.
  EXPECT_THROW(TelescopeProduct(f1, f2), std::invalid_argument);
  auto f3 = std::make_shared<TableExpander>(
      TableExpander::random(32, 512, 8, false, 2));
  // V1=64 > left of f3=32.
  EXPECT_THROW(TelescopeProduct(f1, f3), std::invalid_argument);
}

TEST(TrivialStripe, CopiesRightSidePerStripe) {
  auto base = std::make_shared<TableExpander>(
      TableExpander::random(1000, 50, 5, false, 9));
  TrivialStripe s(base);
  EXPECT_TRUE(s.striped());
  EXPECT_EQ(s.right_size(), 250u);  // factor d space increase (paper, §5 end)
  EXPECT_EQ(s.stripe_size(), 50u);
  for (std::uint64_t x = 0; x < 100; ++x)
    for (std::uint32_t i = 0; i < 5; ++i) {
      EXPECT_EQ(s.neighbor(x, i), i * 50 + base->neighbor(x, i));
      EXPECT_EQ(s.stripe_local(x, i), base->neighbor(x, i));
    }
}

TEST(Preprocessed, BudgetFollowsCorollary1Formula) {
  // u/v = 2^10, c = 2, eps = 1/2 → (2^10)^2 / (1/2)^2 = 2^22 words, clamped.
  PreprocessedExpander big(1 << 20, 1 << 10, 8, 0.5, 1);
  EXPECT_EQ(big.internal_memory_words(), std::uint64_t{1} << 22);
  // Balanced graph → minimum budget.
  PreprocessedExpander small(1 << 10, 1 << 10, 8, 0.5, 1);
  EXPECT_EQ(small.internal_memory_words(), 64u);
  // More unbalanced → more memory.
  PreprocessedExpander mid(1 << 16, 1 << 10, 8, 0.5, 1);
  EXPECT_GT(mid.internal_memory_words(), small.internal_memory_words());
  EXPECT_LT(mid.internal_memory_words(), big.internal_memory_words());
}

TEST(Preprocessed, NeighborsInRangeAndDeterministic) {
  PreprocessedExpander g(1 << 16, 1 << 10, 8, 0.25, 42);
  PreprocessedExpander g2(1 << 16, 1 << 10, 8, 0.25, 42);
  for (std::uint64_t x = 0; x < 200; ++x)
    for (std::uint32_t i = 0; i < 8; ++i) {
      EXPECT_LT(g.neighbor(x, i), std::uint64_t{1} << 10);
      EXPECT_EQ(g.neighbor(x, i), g2.neighbor(x, i));
    }
}

TEST(SemiExplicit, ReachesTargetSizeWithPolylogDegree) {
  SemiExplicitParams p;
  p.universe_size = std::uint64_t{1} << 36;  // u = N^3
  p.capacity = std::uint64_t{1} << 12;       // N
  p.beta = 0.5;
  p.epsilon = 1.0 / 12;
  SemiExplicitExpander g(p);
  EXPECT_GE(g.levels(), 1u);
  EXPECT_LE(g.right_size(),
            p.capacity * static_cast<std::uint64_t>(g.degree()));
  // Degree follows the Lemma 11 formula d_k = poly(log u / ε′)^k with the
  // per-level degree ceil(log2 u / ε′).
  double per_level = std::ceil(36.0 / g.per_level_epsilon());
  EXPECT_LE(static_cast<double>(g.degree()),
            std::pow(per_level, g.levels()) * 1.01);
  // Internal memory is o(N · degree) words: the whole point of Theorem 12.
  EXPECT_LT(g.internal_memory_words(),
            p.capacity * static_cast<std::uint64_t>(g.degree()));
  // Neighbors valid and deterministic.
  auto ns = g.neighbors(123456789);
  EXPECT_EQ(ns.size(), g.degree());
  for (auto y : ns) EXPECT_LT(y, g.right_size());
  EXPECT_EQ(ns, SemiExplicitExpander(p).neighbors(123456789));
}

TEST(SemiExplicit, LevelAccountingConsistent) {
  SemiExplicitParams p;
  p.universe_size = std::uint64_t{1} << 30;
  p.capacity = 1 << 10;
  p.beta = 0.4;
  SemiExplicitExpander g(p);
  const auto& levels = g.level_info();
  ASSERT_EQ(levels.size(), g.levels());
  std::uint64_t mem = 0;
  std::uint64_t expected_degree = 1;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (i > 0) {
      EXPECT_EQ(levels[i].left_size, levels[i - 1].right_size);
    }
    EXPECT_LT(levels[i].right_size, levels[i].left_size);
    mem += levels[i].internal_memory_words;
    expected_degree *= levels[i].degree;
  }
  EXPECT_EQ(mem, g.internal_memory_words());
  EXPECT_EQ(expected_degree, g.degree());
  EXPECT_GT(g.per_level_epsilon(), 0.0);
}

TEST(SemiExplicit, RejectsDegenerateParameters) {
  SemiExplicitParams p;
  p.universe_size = 1 << 20;
  p.capacity = 1 << 10;
  p.beta = 1.5;
  EXPECT_THROW(SemiExplicitExpander{p}, std::invalid_argument);
  p.beta = 0.5;
  p.epsilon = 0.0;
  EXPECT_THROW(SemiExplicitExpander{p}, std::invalid_argument);
}

}  // namespace
}  // namespace pddict::expander
