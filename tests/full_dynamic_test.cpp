// Tests for global rebuilding over the Theorem 7 dynamic dictionary.
#include <gtest/gtest.h>

#include "core/full_dynamic_dict.hpp"
#include "pdm/io_stats.hpp"
#include "workload/workload.hpp"

namespace pddict::core {
namespace {

pdm::DiskArray make_disks() {
  return pdm::DiskArray(pdm::Geometry{96, 64, 16, 0});  // 4d = 96 at d=24
}

FullDynamicParams params_for() {
  FullDynamicParams p;
  p.universe_size = std::uint64_t{1} << 36;
  p.value_bytes = 32;
  p.epsilon_op = 0.5;
  p.degree = 24;
  p.initial_capacity = 32;
  return p;
}

TEST(FullDynamicDict, GrowsWithFullBandwidthValues) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  FullDynamicDict dict(disks, 0, alloc, params_for());
  const std::uint64_t n = 1500;  // 47x initial capacity
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, n,
                                      std::uint64_t{1} << 36, 8);
  for (Key k : keys) ASSERT_TRUE(dict.insert(k, value_for_key(k, 32)));
  EXPECT_EQ(dict.size(), n);
  EXPECT_GE(dict.rebuilds(), 4u);
  for (Key k : keys) {
    auto r = dict.lookup(k);
    ASSERT_TRUE(r.found) << k;
    EXPECT_EQ(r.value, value_for_key(k, 32));
  }
}

TEST(FullDynamicDict, ConstantWorstCasePerOperation) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  auto p = params_for();
  FullDynamicDict dict(disks, 0, alloc, p);
  std::uint64_t worst_insert = 0, worst_lookup = 0;
  for (Key k = 1; k <= 1200; ++k) {
    pdm::IoProbe probe(disks);
    dict.insert(k, value_for_key(k, 32));
    worst_insert = std::max(worst_insert, probe.ios());
  }
  for (Key k = 1; k <= 1200; k += 5) {
    pdm::IoProbe probe(disks);
    dict.lookup(k);
    worst_lookup = std::max(worst_lookup, probe.ios());
  }
  // Two structures x (1..2 I/Os lookup); inserts add migration work bounded
  // by moves_per_op record moves (each a few I/Os) plus bucket scans.
  EXPECT_LE(worst_lookup, 4u);
  EXPECT_LE(worst_insert, 8u + 8u * p.moves_per_op);
}

TEST(FullDynamicDict, DeletionsAndShrinkRebuild) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  FullDynamicDict dict(disks, 0, alloc, params_for());
  for (Key k = 1; k <= 400; ++k) dict.insert(k, value_for_key(k, 32));
  for (Key k = 1; k <= 390; ++k) EXPECT_TRUE(dict.erase(k));
  EXPECT_EQ(dict.size(), 10u);
  for (Key k = 391; k <= 400; ++k) EXPECT_TRUE(dict.lookup(k).found);
  for (Key k = 1; k <= 390; ++k) EXPECT_FALSE(dict.lookup(k).found);
  // Deleted keys must never resurface across further migrations.
  for (Key k = 1000; k < 1200; ++k) dict.insert(k, value_for_key(k, 32));
  for (Key k = 1; k <= 390; ++k) ASSERT_FALSE(dict.lookup(k).found) << k;
}

TEST(FullDynamicDict, EraseInsertChurnStable) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  FullDynamicDict dict(disks, 0, alloc, params_for());
  for (int round = 0; round < 3; ++round) {
    for (Key k = 1; k <= 200; ++k)
      ASSERT_TRUE(dict.insert(k, value_for_key(k, 32, round)));
    for (Key k = 1; k <= 200; ++k)
      ASSERT_EQ(dict.lookup(k).value, value_for_key(k, 32, round));
    for (Key k = 1; k <= 200; ++k) ASSERT_TRUE(dict.erase(k));
  }
  EXPECT_EQ(dict.size(), 0u);
}

TEST(DynamicDict, DrainSomeRemovesEverythingOnce) {
  pdm::DiskArray disks(pdm::Geometry{48, 64, 16, 0});
  pdm::DiskAllocator alloc;
  DynamicDictParams p;
  p.universe_size = 1 << 20;
  p.capacity = 300;
  p.value_bytes = 16;
  p.degree = 24;
  DynamicDict dict(disks, 0, alloc, p);
  for (Key k = 1; k <= 300; ++k) dict.insert(k, value_for_key(k, 16));
  std::vector<std::pair<Key, std::vector<std::byte>>> all;
  while (true) {
    auto batch = dict.drain_some(8);
    if (batch.empty() && dict.drain_remaining_buckets() == 0) break;
    for (auto& r : batch) all.push_back(std::move(r));
  }
  EXPECT_EQ(all.size(), 300u);
  EXPECT_EQ(dict.size(), 0u);
  std::sort(all.begin(), all.end());
  for (Key k = 1; k <= 300; ++k) {
    EXPECT_EQ(all[k - 1].first, k);
    EXPECT_EQ(all[k - 1].second, value_for_key(k, 16));
  }
}

}  // namespace
}  // namespace pddict::core
