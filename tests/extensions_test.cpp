// Tests for the extension structures: the Section 6 multi-level wide
// dictionary (1-I/O full-bandwidth lookups AND updates), the Section 4 intro
// parallel-instances group (batch insertion at single-insert cost), and the
// disk cost model.
#include <gtest/gtest.h>

#include "core/multilevel_wide.hpp"
#include "core/parallel_group.hpp"
#include "pdm/cost_model.hpp"
#include "pdm/io_stats.hpp"
#include "workload/workload.hpp"

namespace pddict::core {
namespace {

// ---- MultiLevelWideDict (Section 6 sketch) ----

pdm::DiskArray wide_disks() {
  return pdm::DiskArray(pdm::Geometry{48, 64, 16, 0});  // 3 levels x 16 disks
}

MultiLevelWideParams ml_params(std::uint64_t n, std::size_t sigma) {
  MultiLevelWideParams p;
  p.universe_size = std::uint64_t{1} << 40;
  p.capacity = n;
  p.value_bytes = sigma;
  p.degree = 16;
  p.levels = 3;
  return p;
}

TEST(MultiLevelWide, FullBandwidthOneIoLookupAndUpdate) {
  auto disks = wide_disks();
  pdm::DiskAllocator alloc;
  const std::uint64_t n = 600;
  MultiLevelWideDict dict(disks, 0, alloc, ml_params(n, 400));
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, n,
                                      std::uint64_t{1} << 40, 3);
  for (Key k : keys) {
    pdm::IoProbe probe(disks);
    ASSERT_TRUE(dict.insert(k, value_for_key(k, 400)));
    EXPECT_EQ(probe.ios(), 2u) << "Section 6 goal: constant-I/O updates";
  }
  for (Key k : keys) {
    pdm::IoProbe probe(disks);
    auto r = dict.lookup(k);
    EXPECT_EQ(probe.ios(), 1u) << "one-probe full-bandwidth lookup";
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.value, value_for_key(k, 400));
  }
  pdm::IoProbe probe(disks);
  EXPECT_FALSE(dict.lookup(123456789).found);
  EXPECT_EQ(probe.ios(), 1u);
}

TEST(MultiLevelWide, SpillsCascadeThroughLevels) {
  auto disks = wide_disks();
  pdm::DiskAllocator alloc;
  const std::uint64_t n = 1200;
  auto p = ml_params(n, 64);
  p.cap_fraction = 0.3;  // tight caps force spills
  MultiLevelWideDict dict(disks, 0, alloc, p);
  for (Key k = 1; k <= n; ++k)
    ASSERT_TRUE(dict.insert(k, value_for_key(k, 64)));
  const auto& pop = dict.level_population();
  EXPECT_GT(pop[0], pop[1]);
  std::uint64_t total = 0;
  for (auto c : pop) total += c;
  EXPECT_EQ(total, n);
  for (Key k = 1; k <= n; ++k) ASSERT_TRUE(dict.lookup(k).found) << k;
}

TEST(MultiLevelWide, EraseAndDuplicates) {
  auto disks = wide_disks();
  pdm::DiskAllocator alloc;
  MultiLevelWideDict dict(disks, 0, alloc, ml_params(100, 128));
  EXPECT_TRUE(dict.insert(5, value_for_key(5, 128)));
  EXPECT_FALSE(dict.insert(5, value_for_key(5, 128, 1)));
  EXPECT_TRUE(dict.erase(5));
  EXPECT_FALSE(dict.erase(5));
  EXPECT_FALSE(dict.lookup(5).found);
  EXPECT_TRUE(dict.insert(5, value_for_key(5, 128, 2)));
  EXPECT_EQ(dict.lookup(5).value, value_for_key(5, 128, 2));
}

TEST(MultiLevelWide, RejectsBadShapes) {
  auto disks = wide_disks();
  pdm::DiskAllocator alloc;
  auto p = ml_params(100, 64);
  p.levels = 1;
  EXPECT_THROW(MultiLevelWideDict(disks, 0, alloc, p), std::invalid_argument);
  p.levels = 4;  // 4*16 = 64 > 48 disks
  EXPECT_THROW(MultiLevelWideDict(disks, 0, alloc, p), std::invalid_argument);
}

// ---- ParallelDictGroup (Section 4 intro) ----

TEST(ParallelGroup, BatchInsertCostsOneInsertion) {
  pdm::DiskArray disks(pdm::Geometry{64, 64, 16, 0});  // 4 instances x 16
  pdm::DiskAllocator alloc;
  ParallelGroupParams p;
  p.universe_size = std::uint64_t{1} << 40;
  p.capacity = 4000;
  p.value_bytes = 8;
  p.degree = 16;
  p.instances = 4;
  ParallelDictGroup group(disks, 0, alloc, p);

  // Find 4 keys with pairwise distinct instances.
  std::vector<ParallelDictGroup::BatchItem> batch;
  std::vector<std::vector<std::byte>> values;
  std::vector<bool> seen(4, false);
  for (Key k = 1; batch.size() < 4; ++k) {
    std::uint32_t inst = group.instance_of(k);
    if (seen[inst]) continue;
    seen[inst] = true;
    values.push_back(value_for_key(k, 8));
    batch.push_back({k, values.back()});
  }
  pdm::IoProbe probe(disks);
  auto results = group.insert_batch(batch);
  EXPECT_EQ(probe.ios(), 2u)
      << "c keys on distinct instances = cost of ONE insertion";
  for (bool ok : results) EXPECT_TRUE(ok);
  for (const auto& item : batch) {
    pdm::IoProbe lp(disks);
    auto r = group.lookup(item.key);
    EXPECT_EQ(lp.ios(), 1u);
    ASSERT_TRUE(r.found);
  }
}

TEST(ParallelGroup, CollidingBatchSerializesPerWave) {
  pdm::DiskArray disks(pdm::Geometry{32, 64, 16, 0});
  pdm::DiskAllocator alloc;
  ParallelGroupParams p;
  p.universe_size = std::uint64_t{1} << 40;
  p.capacity = 1000;
  p.value_bytes = 8;
  p.degree = 16;
  p.instances = 2;
  ParallelDictGroup group(disks, 0, alloc, p);
  // Three keys forced onto the same instance → 2 waves minimum for 3 items...
  std::vector<Key> same;
  for (Key k = 1; same.size() < 3; ++k)
    if (group.instance_of(k) == 0) same.push_back(k);
  std::vector<std::vector<std::byte>> values;
  std::vector<ParallelDictGroup::BatchItem> batch;
  for (Key k : same) {
    values.push_back(value_for_key(k, 8));
    batch.push_back({k, values.back()});
  }
  pdm::IoProbe probe(disks);
  auto results = group.insert_batch(batch);
  EXPECT_EQ(probe.ios(), 6u) << "3 colliding items = 3 waves of 2 I/Os";
  for (bool ok : results) EXPECT_TRUE(ok);
}

TEST(ParallelGroup, StandardDictionarySemantics) {
  pdm::DiskArray disks(pdm::Geometry{32, 64, 16, 0});
  pdm::DiskAllocator alloc;
  ParallelGroupParams p;
  p.universe_size = std::uint64_t{1} << 40;
  p.capacity = 2000;
  p.value_bytes = 16;
  p.degree = 16;
  p.instances = 2;
  ParallelDictGroup group(disks, 0, alloc, p);
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom,
                                      1000, std::uint64_t{1} << 40, 5);
  for (Key k : keys) ASSERT_TRUE(group.insert(k, value_for_key(k, 16)));
  EXPECT_EQ(group.size(), 1000u);
  for (Key k : keys) EXPECT_EQ(group.lookup(k).value, value_for_key(k, 16));
  EXPECT_FALSE(group.insert(keys[0], value_for_key(keys[0], 16)));
  EXPECT_TRUE(group.erase(keys[0]));
  EXPECT_FALSE(group.lookup(keys[0]).found);
  // Duplicate detection inside insert_batch too.
  std::vector<std::vector<std::byte>> vals{value_for_key(keys[1], 16)};
  std::vector<ParallelDictGroup::BatchItem> batch{{keys[1], vals[0]}};
  auto res = group.insert_batch(batch);
  EXPECT_FALSE(res[0]);
}

// ---- DiskCostModel ----

TEST(CostModel, TranslatesRoundsToTime) {
  pdm::Geometry geom{16, 64, 16, 0};  // 1 KiB blocks
  pdm::IoStats io;
  io.parallel_ios = 100;
  auto spin = pdm::DiskCostModel::spinning();
  auto nvme = pdm::DiskCostModel::nvme();
  double spin_ms = spin.elapsed_ms(io, geom);
  double nvme_ms = nvme.elapsed_ms(io, geom);
  // 100 rounds x (8ms + 6.7ms * 1/1024) ≈ 800ms on spinning disks.
  EXPECT_NEAR(spin_ms, 100 * (8.0 + 6.7 / 1024.0), 1e-9);
  EXPECT_LT(nvme_ms, spin_ms / 50);
  // Zero I/O → zero time.
  EXPECT_EQ(spin.elapsed_ms(pdm::IoStats{}, geom), 0.0);
}

}  // namespace
}  // namespace pddict::core
