// Chrome/Perfetto trace-event export: structure of the emitted JSON array,
// the virtual round clock (including multi-array epoch rebasing), per-track
// monotonicity, and the shared structural validator on both good and
// tampered documents.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/basic_dict.hpp"
#include "obs/span.hpp"
#include "obs/trace_event.hpp"
#include "pdm/disk_array.hpp"
#include "workload/workload.hpp"

namespace pddict {
namespace {

using obs::Json;

obs::IoEvent io_event(std::uint64_t seq, std::uint64_t start_round,
                      std::uint64_t rounds,
                      std::vector<std::uint32_t> per_disk, bool write = false) {
  obs::IoEvent e;
  e.write = write;
  e.rounds = rounds;
  e.seq = seq;
  e.start_round = start_round;
  e.per_disk = std::move(per_disk);
  return e;
}

/// Collects the "X" events of one (pid, tid) track in document order.
std::vector<const Json*> track_events(const Json& doc, int pid, int tid) {
  std::vector<const Json*> out;
  for (const Json& e : doc.as_array()) {
    const Json* ph = e.find("ph");
    if (!ph || ph->as_string() != "X") continue;
    if (e.find("pid")->as_int() == pid && e.find("tid")->as_int() == tid)
      out.push_back(&e);
  }
  return out;
}

std::size_t count_thread_names(const Json& doc, int pid) {
  std::size_t n = 0;
  for (const Json& e : doc.as_array()) {
    const Json* name = e.find("name");
    if (name && name->is_string() && name->as_string() == "thread_name" &&
        e.find("pid")->as_int() == pid)
      ++n;
  }
  return n;
}

TEST(TraceEvent, SyntheticBatchesRenderOneSlicePerBusyDisk) {
  std::vector<obs::IoEvent> events;
  // Batch 0: rounds [0,2), disk 0 busy both rounds, disk 2 busy one.
  events.push_back(io_event(0, 0, 2, {2, 0, 1, 0}));
  // Batch 1: rounds [2,3), disks 1 and 3.
  events.push_back(io_event(1, 2, 1, {0, 1, 0, 1}, /*write=*/true));
  std::vector<obs::SpanRecord> spans;
  obs::SpanRecord s;
  s.path = "op";
  s.io.parallel_ios = 3;
  s.start_round = 0;
  spans.push_back(s);

  Json doc = obs::trace_events_to_json(events, spans, 4);
  std::string err;
  EXPECT_TRUE(obs::validate_trace_events(doc, &err)) << err;

  // One named track per disk, busy or not, plus one per span path.
  EXPECT_EQ(count_thread_names(doc, obs::kTraceDiskPid), 4u);
  EXPECT_EQ(count_thread_names(doc, obs::kTraceSpanPid), 1u);

  auto disk0 = track_events(doc, obs::kTraceDiskPid, 0);
  ASSERT_EQ(disk0.size(), 1u);
  EXPECT_EQ(disk0[0]->find("name")->as_string(), "read");
  EXPECT_EQ(disk0[0]->find("ts")->as_int(), 0);
  EXPECT_EQ(disk0[0]->find("dur")->as_int(), 2);
  auto disk1 = track_events(doc, obs::kTraceDiskPid, 1);
  ASSERT_EQ(disk1.size(), 1u);
  EXPECT_EQ(disk1[0]->find("name")->as_string(), "write");
  EXPECT_EQ(disk1[0]->find("ts")->as_int(), 2);  // second batch starts there
  auto disk2 = track_events(doc, obs::kTraceDiskPid, 2);
  ASSERT_EQ(disk2.size(), 1u);
  EXPECT_EQ(disk2[0]->find("dur")->as_int(), 1);  // busy 1 of the 2 rounds

  auto span_track = track_events(doc, obs::kTraceSpanPid, 0);
  ASSERT_EQ(span_track.size(), 1u);
  EXPECT_EQ(span_track[0]->find("dur")->as_int(), 3);
  EXPECT_EQ(span_track[0]->find("args")->find("path")->as_string(), "op");
}

TEST(TraceEvent, CounterRestartOpensNewEpoch) {
  // Two arrays' streams concatenated: the second starts back at round 0 and
  // must land *after* the first on the virtual clock, keeping ts monotone.
  std::vector<obs::IoEvent> events;
  events.push_back(io_event(0, 0, 3, {3}));
  events.push_back(io_event(1, 3, 2, {2}));  // first array ends at round 5
  events.push_back(io_event(0, 0, 4, {4}));  // second array restarts at 0
  Json doc = obs::trace_events_to_json(events, {}, 1);
  std::string err;
  EXPECT_TRUE(obs::validate_trace_events(doc, &err)) << err;
  auto disk0 = track_events(doc, obs::kTraceDiskPid, 0);
  ASSERT_EQ(disk0.size(), 3u);
  EXPECT_EQ(disk0[0]->find("ts")->as_int(), 0);
  EXPECT_EQ(disk0[1]->find("ts")->as_int(), 3);
  EXPECT_EQ(disk0[2]->find("ts")->as_int(), 5);  // rebased past epoch end
}

TEST(TraceEvent, DerivesDiskCountFromEvents) {
  std::vector<obs::IoEvent> events;
  events.push_back(io_event(0, 0, 1, {0, 0, 0, 0, 0, 1}));  // widest: 6 disks
  events.push_back(io_event(1, 1, 1, {1}));
  Json doc = obs::trace_events_to_json(events, {}, /*num_disks=*/0);
  EXPECT_EQ(count_thread_names(doc, obs::kTraceDiskPid), 6u);
}

TEST(TraceEvent, ValidatorRejectsTamperedDocuments) {
  std::vector<obs::IoEvent> events;
  events.push_back(io_event(0, 0, 1, {1, 1}));
  Json good = obs::trace_events_to_json(events, {}, 2);
  std::string err;
  ASSERT_TRUE(obs::validate_trace_events(good, &err)) << err;

  Json not_array = Json::object();
  EXPECT_FALSE(obs::validate_trace_events(not_array, &err));

  // ts going backwards on a track.
  std::vector<obs::IoEvent> back{io_event(0, 5, 1, {1}),
                                 io_event(1, 6, 1, {1})};
  Json doc = obs::trace_events_to_json(back, {}, 1);
  for (Json& e : doc.as_array())
    if (const Json* ph = e.find("ph"); ph && ph->as_string() == "X") {
      if (e.find("ts")->as_int() == 6) e.set("ts", 1);  // tamper second slice
    }
  EXPECT_FALSE(obs::validate_trace_events(doc, &err));
  EXPECT_NE(err.find("backwards"), std::string::npos) << err;

  // An X event on a track no thread_name metadata introduced.
  Json orphan = obs::trace_events_to_json(events, {}, 2);
  Json stray = Json::object();
  stray.set("name", "read");
  stray.set("ph", "X");
  stray.set("ts", 99);
  stray.set("dur", 1);
  stray.set("pid", obs::kTraceDiskPid);
  stray.set("tid", 7);  // only disks 0..1 are named
  orphan.push_back(std::move(stray));
  EXPECT_FALSE(obs::validate_trace_events(orphan, &err));
  EXPECT_NE(err.find("thread_name"), std::string::npos) << err;
}

TEST(TraceEvent, RealWorkloadExportsValidTimeline) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  auto ring = std::make_shared<obs::RingBufferSink>(1 << 12);
  disks.set_sink(ring);
  core::BasicDictParams p;
  p.universe_size = std::uint64_t{1} << 36;
  p.capacity = 800;
  p.value_bytes = 8;
  p.degree = 16;
  core::BasicDict dict(disks, 0, 0, p);
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, 500,
                                      p.universe_size, 41);
  {
    obs::Span insert_phase(disks, "inserts");
    for (core::Key k : keys) dict.insert(k, core::value_for_key(k, 8));
  }
  {
    obs::Span lookup_phase(disks, "lookups");
    for (core::Key k : keys) dict.lookup(k);
  }
  disks.set_sink(nullptr);

  auto events = ring->events();
  auto spans = ring->spans();
  ASSERT_FALSE(events.empty());
  // The dictionary instruments its own operations, so alongside the two
  // phase spans there are ~2 per key; the phases must be among them.
  ASSERT_GE(spans.size(), 2u);
  bool saw_inserts = false, saw_lookups = false;
  for (const auto& s : spans) {
    saw_inserts |= s.path == "inserts";
    saw_lookups |= s.path == "lookups";
  }
  EXPECT_TRUE(saw_inserts);
  EXPECT_TRUE(saw_lookups);
  Json doc = obs::trace_events_to_json(events, spans, 16);
  std::string err;
  EXPECT_TRUE(obs::validate_trace_events(doc, &err)) << err;
  EXPECT_EQ(count_thread_names(doc, obs::kTraceDiskPid), 16u);
  for (const Json& e : doc.as_array()) {
    const Json* ph = e.find("ph");
    if (ph && ph->as_string() == "X" &&
        e.find("pid")->as_int() == obs::kTraceDiskPid) {
      EXPECT_LT(e.find("tid")->as_int(), 16);
    }
  }

  // The file round trip stays strict JSON and re-validates after parsing.
  auto path = std::filesystem::temp_directory_path() / "pddict_trace_test.json";
  ASSERT_TRUE(obs::write_trace_event_file(path.string(), events, spans, 16));
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = obs::parse_json(buf.str(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_TRUE(obs::validate_trace_events(*parsed, &err)) << err;
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace pddict
