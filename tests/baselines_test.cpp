// Tests for the randomized baselines of Figure 1 and the B-tree comparator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/btree.hpp"
#include "baselines/cuckoo_dict.hpp"
#include "baselines/dhp_dict.hpp"
#include "baselines/striped_hash.hpp"
#include "baselines/trick_dict.hpp"
#include "pdm/allocator.hpp"
#include "pdm/io_stats.hpp"
#include "util/prng.hpp"
#include "workload/workload.hpp"

namespace pddict::baselines {
namespace {

using core::Key;
using core::value_for_key;

pdm::DiskArray make_disks(std::uint32_t d = 8, std::uint32_t items = 32,
                          std::uint32_t item_bytes = 16) {
  return pdm::DiskArray(pdm::Geometry{d, items, item_bytes, 0});
}

// ---- StripedHashDict ----

TEST(StripedHash, RoundTripAndTypicalCosts) {
  auto disks = make_disks();
  StripedHashParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.capacity = 1000;
  p.value_bytes = 8;
  StripedHashDict dict(disks, 0, p);
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom,
                                      1000, std::uint64_t{1} << 32, 4);
  for (Key k : keys) ASSERT_TRUE(dict.insert(k, value_for_key(k, 8)));
  EXPECT_EQ(dict.size(), 1000u);
  std::uint64_t lookup_ios = 0;
  for (Key k : keys) {
    pdm::IoProbe probe(disks);
    auto r = dict.lookup(k);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.value, value_for_key(k, 8));
    lookup_ios += probe.ios();
  }
  // 1 I/O whp: the average stays essentially 1 (no or few overflows).
  EXPECT_LE(static_cast<double>(lookup_ios) / keys.size(), 1.1);
  EXPECT_FALSE(dict.insert(keys[0], value_for_key(keys[0], 8)));
  EXPECT_TRUE(dict.erase(keys[0]));
  EXPECT_FALSE(dict.lookup(keys[0]).found);
}

TEST(StripedHash, OverflowChainsFormWhenOverfull) {
  // Cram far beyond the configured capacity: chains must form and the whp
  // guarantee visibly degrade — the failure mode Figure 1 footnotes.
  auto disks = make_disks(4, 8, 16);
  StripedHashParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.capacity = 64;
  p.value_bytes = 8;
  p.fill_target = 0.9;
  StripedHashDict dict(disks, 0, p);
  for (Key k = 1; k <= 500; ++k) dict.insert(k, value_for_key(k, 8));
  EXPECT_GT(dict.overflow_blocks_allocated(), 0u);
  EXPECT_GT(dict.longest_chain(), 1u);
  for (Key k = 1; k <= 500; ++k) ASSERT_TRUE(dict.lookup(k).found);
}

// ---- DhpDict ----

TEST(Dhp, LookupAlwaysOneIo) {
  auto disks = make_disks();
  DhpDictParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.capacity = 800;
  p.value_bytes = 16;
  DhpDict dict(disks, 0, p);
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, 800,
                                      std::uint64_t{1} << 32, 6);
  for (Key k : keys) ASSERT_TRUE(dict.insert(k, value_for_key(k, 16)));
  for (Key k : keys) {
    pdm::IoProbe probe(disks);
    ASSERT_TRUE(dict.lookup(k).found);
    EXPECT_EQ(probe.ios(), 1u);
  }
  pdm::IoProbe probe(disks);
  EXPECT_FALSE(dict.lookup(12345678).found);
  EXPECT_EQ(probe.ios(), 1u);
}

TEST(Dhp, RebuildOnOverflowKeepsEverything) {
  // A tiny table with aggressive fill forces bucket overflows → rebuilds.
  auto disks = make_disks(2, 4, 16);
  DhpDictParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.capacity = 40;
  p.value_bytes = 8;
  p.fill_target = 0.95;
  DhpDict dict(disks, 0, p);
  for (Key k = 1; k <= 40; ++k) ASSERT_TRUE(dict.insert(k, value_for_key(k, 8)));
  for (Key k = 1; k <= 40; ++k) ASSERT_TRUE(dict.lookup(k).found);
  // Erase and reinsert still fine after whatever rebuilds happened.
  EXPECT_TRUE(dict.erase(7));
  EXPECT_FALSE(dict.lookup(7).found);
  EXPECT_TRUE(dict.insert(7, value_for_key(7, 8)));
}

// ---- CuckooDict ----

TEST(Cuckoo, OneIoLookupsAndBandwidth) {
  auto disks = make_disks(8, 32, 16);  // stripe 4096 B, cell 2048 B
  CuckooDictParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.capacity = 400;
  p.value_bytes = 1500;  // close to the BD/2 bandwidth
  ASSERT_LE(p.value_bytes, CuckooDict::max_bandwidth(disks.geometry()));
  CuckooDict dict(disks, 0, p);
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, 400,
                                      std::uint64_t{1} << 32, 8);
  for (Key k : keys) ASSERT_TRUE(dict.insert(k, value_for_key(k, 1500)));
  for (Key k : keys) {
    pdm::IoProbe probe(disks);
    auto r = dict.lookup(k);
    EXPECT_EQ(probe.ios(), 1u) << "cuckoo lookup reads both cells at once";
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.value, value_for_key(k, 1500));
  }
  EXPECT_FALSE(dict.lookup(999999999).found);
  EXPECT_FALSE(dict.insert(keys[0], value_for_key(keys[0], 1500)));
  EXPECT_TRUE(dict.erase(keys[0]));
  EXPECT_FALSE(dict.lookup(keys[0]).found);
}

TEST(Cuckoo, SurvivesHighLoadWithEvictionsOrRehashes) {
  auto disks = make_disks(4, 8, 16);
  CuckooDictParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.capacity = 300;
  p.value_bytes = 8;
  p.load_factor = 0.48;  // close to the cuckoo threshold
  CuckooDict dict(disks, 0, p);
  for (Key k = 1; k <= 300; ++k)
    ASSERT_TRUE(dict.insert(k, value_for_key(k, 8))) << k;
  for (Key k = 1; k <= 300; ++k) ASSERT_TRUE(dict.lookup(k).found);
  EXPECT_GT(dict.longest_walk(), 0u);  // evictions definitely happened
}

TEST(Cuckoo, RejectsOversizeRecordsAndOddDisks) {
  auto disks = make_disks(8, 4, 16);  // cell = 4*64/2... 4 disks/side × 64 B
  CuckooDictParams p;
  p.universe_size = 1 << 20;
  p.capacity = 10;
  p.value_bytes = 4096;
  EXPECT_THROW(CuckooDict(disks, 0, p), std::invalid_argument);
  pdm::DiskArray odd(pdm::Geometry{3, 8, 16, 0});
  p.value_bytes = 8;
  EXPECT_THROW(CuckooDict(odd, 0, p), std::invalid_argument);
}

// ---- TrickDict ----

TEST(Trick, AverageCloseToOneIoAndFullBandwidth) {
  auto disks = make_disks(8, 32, 16);
  TrickDictParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.capacity = 500;
  p.value_bytes = 2000;  // Θ(BD) bandwidth: most of a 4 KiB stripe
  p.epsilon = 0.25;
  ASSERT_LE(p.value_bytes, TrickDict::max_bandwidth(disks.geometry()));
  pdm::DiskAllocator alloc;
  std::uint64_t front_base = alloc.reserve(1 << 20);
  std::uint64_t back_base = alloc.reserve(1 << 20);
  TrickDict dict(disks, front_base, back_base, p);
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, 500,
                                      std::uint64_t{1} << 32, 10);
  pdm::IoProbe insert_probe(disks);
  for (Key k : keys) ASSERT_TRUE(dict.insert(k, value_for_key(k, 2000)));
  double avg_insert =
      static_cast<double>(insert_probe.ios()) / keys.size();
  EXPECT_LE(avg_insert, 2.0 + 2 * p.epsilon);

  pdm::IoProbe lookup_probe(disks);
  for (Key k : keys) {
    auto r = dict.lookup(k);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.value, value_for_key(k, 2000));
  }
  double avg_lookup =
      static_cast<double>(lookup_probe.ios()) / keys.size();
  EXPECT_LE(avg_lookup, 1.0 + 2 * p.epsilon);
  EXPECT_GE(avg_lookup, 1.0);
  // Misses, duplicates, erases.
  EXPECT_FALSE(dict.lookup(42424242).found);
  EXPECT_FALSE(dict.insert(keys[0], value_for_key(keys[0], 2000)));
  EXPECT_TRUE(dict.erase(keys[0]));
  EXPECT_FALSE(dict.lookup(keys[0]).found);
}

TEST(Trick, CollisionsLandInBackstop) {
  auto disks = make_disks(4, 8, 16);
  TrickDictParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.capacity = 64;
  p.value_bytes = 8;
  p.epsilon = 1.0;  // tiny front table → plenty of collisions
  TrickDict dict(disks, 0, 1 << 20, p);
  for (Key k = 1; k <= 64; ++k) ASSERT_TRUE(dict.insert(k, value_for_key(k, 8)));
  EXPECT_GT(dict.marked_cells(), 0u);
  EXPECT_GT(dict.backstop_size(), 0u);
  for (Key k = 1; k <= 64; ++k) ASSERT_TRUE(dict.lookup(k).found) << k;
}

// ---- BTreeDict ----

TEST(BTree, SortedAndRandomInsertLookup) {
  auto disks = make_disks(8, 16, 16);
  BTreeParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.value_bytes = 16;
  BTreeDict tree(disks, 0, p);
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom,
                                      3000, std::uint64_t{1} << 32, 12);
  for (Key k : keys) ASSERT_TRUE(tree.insert(k, value_for_key(k, 16)));
  EXPECT_EQ(tree.size(), 3000u);
  for (Key k : keys) {
    auto r = tree.lookup(k);
    ASSERT_TRUE(r.found) << k;
    EXPECT_EQ(r.value, value_for_key(k, 16));
  }
  EXPECT_FALSE(tree.lookup(keys[0] ^ 1).found | tree.lookup(4).found);
}

TEST(BTree, SequentialInsertionSplitsCorrectly) {
  auto disks = make_disks(4, 8, 16);  // small fanout → deep tree
  BTreeParams p;
  p.universe_size = 1 << 24;
  p.value_bytes = 8;
  BTreeDict tree(disks, 0, p);
  for (Key k = 1; k <= 2000; ++k)
    ASSERT_TRUE(tree.insert(k, value_for_key(k, 8))) << k;
  EXPECT_GE(tree.height(), 2u);
  for (Key k = 1; k <= 2000; ++k) ASSERT_TRUE(tree.lookup(k).found) << k;
  EXPECT_FALSE(tree.lookup(2001).found);
}

TEST(BTree, LookupCostIsHeight) {
  auto disks = make_disks(8, 16, 16);
  BTreeParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.value_bytes = 8;
  BTreeDict tree(disks, 0, p);
  for (Key k = 1; k <= 5000; ++k) tree.insert(k * 2, value_for_key(k, 8));
  for (Key probe_key : {Key{2}, Key{5000}, Key{9998}}) {
    pdm::IoProbe probe(disks);
    tree.lookup(probe_key);
    EXPECT_EQ(probe.ios(), tree.height());
  }
  // Height matches the Θ(log_{BD} n) shape.
  double fanout = tree.internal_fanout();
  double expected =
      std::ceil(std::log(5000.0 / tree.leaf_capacity()) / std::log(fanout)) + 1;
  EXPECT_LE(tree.height(), static_cast<std::uint32_t>(expected) + 1);
}

TEST(BTree, EraseIsLazyAndReinsertRevives) {
  auto disks = make_disks(4, 16, 16);
  BTreeParams p;
  p.universe_size = 1 << 24;
  p.value_bytes = 8;
  BTreeDict tree(disks, 0, p);
  for (Key k = 1; k <= 100; ++k) tree.insert(k, value_for_key(k, 8));
  EXPECT_TRUE(tree.erase(50));
  EXPECT_FALSE(tree.erase(50));
  EXPECT_FALSE(tree.lookup(50).found);
  EXPECT_EQ(tree.size(), 99u);
  EXPECT_TRUE(tree.insert(50, value_for_key(50, 8, 3)));
  EXPECT_EQ(tree.lookup(50).value, value_for_key(50, 8, 3));
}

TEST(BTree, RangeScanSortedAndComplete) {
  auto disks = make_disks(4, 16, 16);
  BTreeParams p;
  p.universe_size = 1 << 24;
  p.value_bytes = 8;
  BTreeDict tree(disks, 0, p);
  // Insert even keys 2..4000 in shuffled order.
  std::vector<Key> keys;
  for (Key k = 2; k <= 4000; k += 2) keys.push_back(k);
  util::SplitMix64 rng(4);
  std::shuffle(keys.begin(), keys.end(), rng);
  for (Key k : keys) tree.insert(k, value_for_key(k, 8));
  tree.erase(100);  // dead records are skipped

  auto hits = tree.range(51, 199);
  // Even keys in [52,198] minus the erased 100 → 74 - 1 = 73.
  ASSERT_EQ(hits.size(), 73u);
  Key prev = 0;
  for (const auto& [k, v] : hits) {
    EXPECT_GT(k, prev) << "range output must be sorted";
    EXPECT_GE(k, 51u);
    EXPECT_LE(k, 199u);
    EXPECT_NE(k, 100u);
    EXPECT_EQ(v, value_for_key(k, 8));
    prev = k;
  }
  // Edge windows.
  EXPECT_EQ(tree.range(0, 1).size(), 0u);
  EXPECT_EQ(tree.range(4000, 4000).size(), 1u);
  EXPECT_EQ(tree.range(2, 4000).size(), 1999u);  // all minus erased 100
  EXPECT_EQ(tree.range(10, 5).size(), 0u);
}

TEST(BTree, DuplicateRejected) {
  auto disks = make_disks(4, 16, 16);
  BTreeParams p;
  p.universe_size = 1 << 24;
  p.value_bytes = 8;
  BTreeDict tree(disks, 0, p);
  EXPECT_TRUE(tree.insert(9, value_for_key(9, 8)));
  EXPECT_FALSE(tree.insert(9, value_for_key(9, 8, 1)));
  EXPECT_EQ(tree.lookup(9).value, value_for_key(9, 8));
}

}  // namespace
}  // namespace pddict::baselines
