// Tests for the store manifest (superblock) and open/close lifecycle.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/manifest.hpp"
#include "pdm/file_backend.hpp"
#include "pdm/io_stats.hpp"

namespace pddict::core {
namespace {

BasicDictParams cli_params() {
  BasicDictParams p;
  p.universe_size = std::uint64_t{1} << 40;
  p.capacity = 5000;
  p.value_bytes = 16;
  p.degree = 16;
  p.seed = 0xabc;
  return p;
}

TEST(Manifest, RoundTripAllFields) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  StoreManifest m;
  m.params = cli_params();
  m.params.load_headroom = 1.75;
  m.params.bucket_blocks = 2;
  m.base_block = 7;
  m.record_count = 1234;
  m.count_valid = true;
  write_manifest(disks, m);
  auto back = read_manifest(disks);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(Manifest, FreshDiskHasNone) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  EXPECT_FALSE(read_manifest(disks).has_value());
}

TEST(Manifest, OpenCreatesThenReopensWithPersistedParams) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  {
    BasicDict store = open_store(disks, cli_params());
    store.insert(1, value_for_key(1, 16));
    store.insert(2, value_for_key(2, 16));
    close_store(disks, store);
  }
  // Reopen with DIFFERENT fresh params: the persisted manifest must win.
  BasicDictParams other = cli_params();
  other.seed = 0xdead;
  other.capacity = 99;
  BasicDict store = open_store(disks, other);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.lookup(1).value, value_for_key(1, 16));
  EXPECT_EQ(store.lookup(2).value, value_for_key(2, 16));
}

TEST(Manifest, CleanCloseSkipsRecoveryScanCrashDoesNot) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  {
    BasicDict store = open_store(disks, cli_params());
    for (Key k = 1; k <= 100; ++k) store.insert(k, value_for_key(k, 16));
    close_store(disks, store);
  }
  {
    pdm::IoProbe probe(disks);
    BasicDict store = open_store(disks, cli_params());
    EXPECT_EQ(store.size(), 100u);
    EXPECT_LE(probe.ios(), 3u) << "clean open must not scan";
    // "Crash": destroy without close_store.
    store.insert(500, value_for_key(500, 16));
  }
  {
    pdm::IoProbe probe(disks);
    BasicDict store = open_store(disks, cli_params());
    EXPECT_EQ(store.size(), 101u) << "crash recovery must rescan";
    EXPECT_GT(probe.ios(), 10u);
  }
}

TEST(Manifest, WorksOnFileBackendAcrossReopen) {
  auto dir = std::filesystem::temp_directory_path() / "pddict_manifest_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  pdm::Geometry geom{16, 64, 16, 0};
  {
    pdm::DiskArray disks(geom, pdm::Model::kParallelDisks,
                         std::make_unique<pdm::FileBackend>(geom, dir));
    BasicDict store = open_store(disks, cli_params());
    store.insert(77, value_for_key(77, 16));
    close_store(disks, store);
  }
  pdm::DiskArray disks(geom, pdm::Model::kParallelDisks,
                       std::make_unique<pdm::FileBackend>(geom, dir));
  BasicDict store = open_store(disks, cli_params());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.lookup(77).found);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pddict::core
