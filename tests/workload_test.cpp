// Tests for the deterministic workload generators.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "workload/workload.hpp"

namespace pddict::workload {
namespace {

TEST(KeyGen, AllPatternsProduceDistinctKeysInUniverse) {
  const std::uint64_t n = 2000, u = std::uint64_t{1} << 32;
  for (auto pattern :
       {KeyPattern::kDenseSequential, KeyPattern::kSparseRandom,
        KeyPattern::kClustered, KeyPattern::kSharedLowBits}) {
    auto keys = generate_keys(pattern, n, u, 5);
    EXPECT_EQ(keys.size(), n);
    std::set<core::Key> uniq(keys.begin(), keys.end());
    EXPECT_EQ(uniq.size(), n) << "duplicates in pattern";
    for (auto k : keys) {
      EXPECT_LT(k, u);
      EXPECT_NE(k, core::kTombstone);
    }
  }
}

TEST(KeyGen, DeterministicPerSeed) {
  auto a = generate_keys(KeyPattern::kSparseRandom, 100, 1 << 20, 7);
  auto b = generate_keys(KeyPattern::kSparseRandom, 100, 1 << 20, 7);
  auto c = generate_keys(KeyPattern::kSparseRandom, 100, 1 << 20, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(KeyGen, SharedLowBitsReallyShareThem) {
  auto keys = generate_keys(KeyPattern::kSharedLowBits, 500,
                            std::uint64_t{1} << 40, 3);
  std::uint64_t low = keys[0] & 0xfff;
  for (auto k : keys) EXPECT_EQ(k & 0xfff, low);
}

TEST(KeyGen, RejectsOverDenseRequest) {
  EXPECT_THROW(generate_keys(KeyPattern::kSparseRandom, 600, 1000, 1),
               std::invalid_argument);
}

TEST(Zipf, SkewedTowardLowRanks) {
  ZipfSampler z(1000, 1.1, 9);
  std::uint64_t low = 0, total = 20000;
  for (std::uint64_t i = 0; i < total; ++i)
    if (z.next() < 10) ++low;
  // Top-10 ranks should carry far more than the uniform 1% of the mass.
  EXPECT_GT(low, total / 20);
}

TEST(Zipf, ThetaZeroIsUniformish) {
  ZipfSampler z(100, 0.0, 9);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[z.next()];
  for (int c : counts) {
    EXPECT_GT(c, 250);
    EXPECT_LT(c, 900);
  }
}

TEST(QueryTrace, HitFractionRespected) {
  auto keys = generate_keys(KeyPattern::kSparseRandom, 500,
                            std::uint64_t{1} << 32, 2);
  auto trace =
      make_query_trace(keys, std::uint64_t{1} << 32, 4000, 0.75, 1.0, 11);
  EXPECT_EQ(trace.queries.size(), 4000u);
  std::unordered_set<core::Key> members(keys.begin(), keys.end());
  std::uint64_t hits = 0;
  for (auto q : trace.queries) hits += members.contains(q);
  EXPECT_EQ(hits, trace.expected_hits);
  EXPECT_NEAR(static_cast<double>(hits) / 4000.0, 0.75, 0.05);
}

TEST(QueryTrace, PureMissTrace) {
  auto keys = generate_keys(KeyPattern::kSparseRandom, 100,
                            std::uint64_t{1} << 32, 2);
  auto trace =
      make_query_trace(keys, std::uint64_t{1} << 32, 500, 0.0, 1.0, 11);
  EXPECT_EQ(trace.expected_hits, 0u);
  std::unordered_set<core::Key> members(keys.begin(), keys.end());
  for (auto q : trace.queries) EXPECT_FALSE(members.contains(q));
}

TEST(FsTrace, AccessesHitExistingBlocks) {
  auto trace = make_fs_trace(200, 16, 5000, 1.0, 13);
  EXPECT_EQ(trace.num_files, 200u);
  EXPECT_GT(trace.all_blocks.size(), 200u);
  std::unordered_set<core::Key> blocks(trace.all_blocks.begin(),
                                       trace.all_blocks.end());
  EXPECT_EQ(blocks.size(), trace.all_blocks.size()) << "block keys distinct";
  for (auto a : trace.accesses)
    EXPECT_TRUE(blocks.contains(a)) << "access to a non-existent block";
}

}  // namespace
}  // namespace pddict::workload
