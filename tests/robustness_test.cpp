// Robustness and failure-injection tests: corrupted on-disk state must be
// detected (not silently decoded), capacity-bounded disks must surface
// errors, and the structures must behave across a sweep of PDM geometries.
#include <gtest/gtest.h>

#include "core/basic_dict.hpp"
#include "core/dynamic_dict.hpp"
#include "core/static_dict.hpp"
#include "pdm/allocator.hpp"
#include "workload/workload.hpp"

namespace pddict::core {
namespace {

// ---- corruption injection ----

TEST(Corruption, StaticDictDetectsMangledFields) {
  pdm::DiskArray disks(pdm::Geometry{32, 64, 16, 0});
  pdm::DiskAllocator alloc;
  StaticDictParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.capacity = 200;
  p.value_bytes = 16;
  p.degree = 16;
  p.layout = StaticLayout::kIdentifiers;
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, 200,
                                      p.universe_size, 9);
  std::vector<std::byte> values;
  for (Key k : keys) {
    auto v = value_for_key(k, 16);
    values.insert(values.end(), v.begin(), v.end());
  }
  StaticDict dict(disks, 0, alloc, p, keys, values);
  ASSERT_TRUE(dict.lookup(keys[0]).found);

  // Zero one of keys[0]'s field blocks: one slice disappears, so the
  // identifier loses its strict majority count of exactly need fields.
  // The decoder must notice the inconsistency rather than return garbage.
  bool detected_or_missing = false;
  for (std::uint32_t disk = 0; disk < 16 && !detected_or_missing; ++disk) {
    // Find a block on this disk holding data (sparse store): mangle the
    // first one the structure wrote.
    pdm::Block zero(disks.geometry().block_bytes(), std::byte{0});
    // Probe blocks of keys[0] live at its neighbor addresses; zero them one
    // at a time until decoding changes behaviour.
    // (Addresses are internal; we reach them by brute force over the field
    // array region: block 0..4 of each disk.)
    for (std::uint64_t b = 0; b < 5; ++b) {
      pdm::Block orig = disks.peek({disk, b});
      disks.poke({disk, b}, zero);
      try {
        auto r = dict.lookup(keys[0]);
        if (!r.found || r.value != value_for_key(keys[0], 16))
          detected_or_missing = true;  // corruption changed the answer shape
      } catch (const std::logic_error&) {
        detected_or_missing = true;    // or was detected loudly — also fine
      }
      disks.poke({disk, b}, orig);
    }
  }
  EXPECT_TRUE(detected_or_missing)
      << "zeroing field blocks must not be silently survivable";
  // After restoring everything, lookups are intact.
  EXPECT_EQ(dict.lookup(keys[0]).value, value_for_key(keys[0], 16));
}

TEST(Corruption, BasicDictCountFieldMangled) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  BasicDictParams p;
  p.universe_size = 1 << 20;
  p.capacity = 100;
  p.value_bytes = 8;
  p.degree = 16;
  BasicDict dict(disks, 0, 0, p);
  dict.insert(5, value_for_key(5, 8));
  // Zeroing the bucket that holds key 5 makes it a miss, never a crash.
  for (std::uint32_t disk = 0; disk < 16; ++disk)
    for (std::uint64_t b = 0; b < dict.blocks_per_disk(); ++b)
      disks.poke({disk, b},
                 pdm::Block(disks.geometry().block_bytes(), std::byte{0}));
  EXPECT_FALSE(dict.lookup(5).found);
}

// ---- bounded disks surface errors ----

TEST(BoundedDisks, StructuresFailLoudlyBeyondCapacity) {
  // Disk with only 2 blocks per disk: the dictionary needs more.
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 2});
  BasicDictParams p;
  p.universe_size = 1 << 20;
  p.capacity = 10000;  // needs many buckets per stripe
  p.value_bytes = 8;
  p.degree = 16;
  BasicDict dict(disks, 0, 0, p);
  EXPECT_THROW(
      {
        for (Key k = 1; k < 5000; ++k) dict.insert(k, value_for_key(k, 8));
      },
      std::out_of_range);
}

// ---- geometry sweep (property-style) ----

struct GeomCase {
  std::uint32_t disks, block_items, item_bytes;
  std::uint64_t n;
};

class GeometrySweep : public ::testing::TestWithParam<GeomCase> {};

TEST_P(GeometrySweep, BasicDictHoldsGuaranteesEverywhere) {
  auto [d, items, item_bytes, n] = GetParam();
  pdm::DiskArray disks(pdm::Geometry{d, items, item_bytes, 0});
  BasicDictParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.capacity = n;
  p.value_bytes = 8;
  p.degree = d;
  BasicDict dict(disks, 0, 0, p);
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, n,
                                      p.universe_size, d * 1000 + items);
  for (Key k : keys) {
    pdm::IoProbe probe(disks);
    ASSERT_TRUE(dict.insert(k, value_for_key(k, 8)));
    ASSERT_EQ(probe.ios(), 2u) << "d=" << d << " B=" << items;
  }
  for (Key k : keys) {
    pdm::IoProbe probe(disks);
    ASSERT_TRUE(dict.lookup(k).found);
    ASSERT_EQ(probe.ios(), 1u);
  }
  EXPECT_LE(dict.peek_max_load(), dict.bucket_capacity());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Values(GeomCase{8, 64, 16, 1000},   // few big-block disks
                      GeomCase{16, 64, 16, 2000},  // baseline
                      GeomCase{32, 64, 16, 2000},  // many disks
                      GeomCase{16, 16, 16, 1000},  // small blocks
                      GeomCase{16, 128, 8, 2000},  // small items
                      GeomCase{16, 32, 64, 800},   // fat items
                      GeomCase{64, 8, 32, 500}));  // extreme width

class DynamicGeometrySweep : public ::testing::TestWithParam<GeomCase> {};

TEST_P(DynamicGeometrySweep, DynamicDictHoldsGuaranteesEverywhere) {
  auto [d_half, items, item_bytes, n] = GetParam();
  std::uint32_t d = d_half;
  pdm::DiskArray disks(pdm::Geometry{2 * d, items, item_bytes, 0});
  pdm::DiskAllocator alloc;
  DynamicDictParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.capacity = n;
  p.value_bytes = 8;
  p.degree = d;
  p.epsilon_op = 1.0;  // requires d > 12
  DynamicDict dict(disks, 0, alloc, p);
  auto keys = workload::generate_keys(workload::KeyPattern::kClustered, n,
                                      p.universe_size, d + items);
  pdm::IoProbe ins(disks);
  for (Key k : keys) ASSERT_TRUE(dict.insert(k, value_for_key(k, 8)));
  EXPECT_LE(static_cast<double>(ins.ios()) / n, 3.0);
  pdm::IoProbe look(disks);
  for (Key k : keys) ASSERT_TRUE(dict.lookup(k).found);
  EXPECT_LE(static_cast<double>(look.ios()) / n, 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DynamicGeometrySweep,
    ::testing::Values(GeomCase{16, 64, 16, 1000}, GeomCase{24, 64, 16, 1500},
                      GeomCase{16, 32, 16, 800}, GeomCase{16, 128, 8, 1500}));

}  // namespace
}  // namespace pddict::core
