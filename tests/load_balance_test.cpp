// Tests for the Section 3 deterministic load balancing scheme and Lemma 3.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/load_balance.hpp"
#include "expander/seeded_expander.hpp"
#include "expander/table_expander.hpp"

namespace pddict::core {
namespace {

TEST(LoadBalancer, GreedyPicksLeastLoaded) {
  // x has neighbors {0, 2} and {1, 3}; after loading bucket 0 manually via
  // another vertex, x must avoid it.
  std::vector<std::uint64_t> table{0, 2, 0, 3, 1, 2};
  expander::TableExpander g(4, 2, table, true);
  LoadBalancer lb(g, 1);
  EXPECT_EQ(lb.assign(0), (std::vector<std::uint64_t>{0}));  // ties → lowest
  EXPECT_EQ(lb.assign(1), (std::vector<std::uint64_t>{3}));  // avoids 0
  EXPECT_EQ(lb.assign(2), (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(lb.max_load(), 1u);
  EXPECT_EQ(lb.total_items(), 3u);
}

TEST(LoadBalancer, MultipleItemsMaySharebucket) {
  // One vertex, k=3 items, d=2 buckets: loads must be {2,1} or {1,2}.
  std::vector<std::uint64_t> table{0, 1};
  expander::TableExpander g(2, 2, table, true);
  LoadBalancer lb(g, 3);
  auto placed = lb.assign(0);
  EXPECT_EQ(placed.size(), 3u);
  EXPECT_EQ(lb.load(0) + lb.load(1), 3u);
  EXPECT_EQ(lb.max_load(), 2u);
}

TEST(LoadBalancer, RejectsZeroK) {
  auto g = expander::TableExpander::random(8, 4, 2, true, 1);
  EXPECT_THROW(LoadBalancer(g, 0), std::invalid_argument);
}

TEST(Lemma3Bound, MatchesFormula) {
  // kn/((1-δ)v)/(1-ε) + log_{(1-ε)d/k} v
  double b = lemma3_bound(1000, 500, 16, 1, 0.25, 0.5);
  double expected = (1000.0 / (0.5 * 500)) / 0.75 +
                    std::log(500.0) / std::log(0.75 * 16);
  EXPECT_NEAR(b, expected, 1e-9);
  EXPECT_THROW(lemma3_bound(10, 10, 4, 4, 0.5, 0.5), std::invalid_argument);
  EXPECT_THROW(lemma3_bound(10, 0, 4, 1, 0.1, 0.1), std::invalid_argument);
}

struct BalanceCase {
  std::uint64_t n;
  std::uint32_t d;
  std::uint32_t k;
};

class BalanceSweep : public ::testing::TestWithParam<BalanceCase> {};

TEST_P(BalanceSweep, MaxLoadWithinLemma3Bound) {
  auto [n, d, k] = GetParam();
  // v sized like the dictionaries do: enough buckets that average load is
  // Θ(log n)-ish.
  std::uint64_t v = std::max<std::uint64_t>(d, (k * n / 8 / d + 1) * d);
  expander::SeededExpander g(std::uint64_t{1} << 30, v, d, 42 + n);
  LoadBalancer lb(g, k);
  util::SplitMix64 rng(n * 977 + d);
  for (std::uint64_t i = 0; i < n; ++i) lb.assign(rng.next_below(g.left_size()));
  // Compare against Lemma 3 with the ε/δ the paper's dictionaries use.
  double bound = lemma3_bound(n, v, d, k, 1.0 / 6, 1.0 / 2);
  EXPECT_LE(static_cast<double>(lb.max_load()), bound)
      << "n=" << n << " d=" << d << " k=" << k << " v=" << v;
  // And the trivial lower bound: max >= average.
  EXPECT_GE(static_cast<double>(lb.max_load()),
            static_cast<double>(k) * n / v);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BalanceSweep,
    ::testing::Values(BalanceCase{1 << 10, 8, 1}, BalanceCase{1 << 12, 8, 1},
                      BalanceCase{1 << 14, 16, 1}, BalanceCase{1 << 12, 16, 4},
                      BalanceCase{1 << 12, 16, 8}, BalanceCase{1 << 10, 32, 8},
                      BalanceCase{1 << 13, 32, 16}));

TEST(LoadBalancer, DeterministicAcrossRuns) {
  expander::SeededExpander g(1 << 20, 16 * 256, 16, 9);
  LoadBalancer a(g, 2), b(g, 2);
  for (std::uint64_t x = 0; x < 500; ++x) EXPECT_EQ(a.assign(x), b.assign(x));
  EXPECT_EQ(a.loads(), b.loads());
}

}  // namespace
}  // namespace pddict::core
