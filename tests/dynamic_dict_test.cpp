// Tests for the Section 4.3 dynamic dictionary (Theorem 7).
#include <gtest/gtest.h>

#include "core/dynamic_dict.hpp"
#include "pdm/io_stats.hpp"
#include "workload/workload.hpp"

namespace pddict::core {
namespace {

pdm::DiskArray make_disks(std::uint32_t d = 64) {
  return pdm::DiskArray(pdm::Geometry{d, 64, 16, 0});
}

DynamicDictParams params_for(std::uint64_t capacity, std::size_t value_bytes,
                             double epsilon = 0.5) {
  DynamicDictParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.capacity = capacity;
  p.value_bytes = value_bytes;
  p.epsilon_op = epsilon;
  p.degree = 24;  // > 6(1 + 1/0.5) = 18
  return p;
}

TEST(DynamicDict, InsertLookupEraseRoundTrip) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  DynamicDict dict(disks, 0, alloc, params_for(500, 32));
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, 500,
                                      std::uint64_t{1} << 32, 1);
  for (Key k : keys) ASSERT_TRUE(dict.insert(k, value_for_key(k, 32)));
  EXPECT_EQ(dict.size(), 500u);
  for (Key k : keys) {
    auto r = dict.lookup(k);
    ASSERT_TRUE(r.found) << k;
    EXPECT_EQ(r.value, value_for_key(k, 32));
  }
  for (Key k : keys) EXPECT_TRUE(dict.erase(k));
  EXPECT_EQ(dict.size(), 0u);
  for (Key k : keys) EXPECT_FALSE(dict.lookup(k).found);
}

TEST(DynamicDict, UnsuccessfulSearchIsOneIo) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  DynamicDict dict(disks, 0, alloc, params_for(300, 16));
  for (Key k = 0; k < 300; ++k) dict.insert(k * 7 + 1, value_for_key(k, 16));
  for (Key probe_key : {Key{2}, Key{100000}, Key{5}}) {
    pdm::IoProbe probe(disks);
    EXPECT_FALSE(dict.lookup(probe_key).found);
    EXPECT_EQ(probe.ios(), 1u) << "Theorem 7: unsuccessful search = 1 I/O";
  }
}

TEST(DynamicDict, AverageLookupWithinOnePlusEpsilon) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  const double eps = 0.5;
  const std::uint64_t n = 1000;
  DynamicDict dict(disks, 0, alloc, params_for(n, 16, eps));
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, n,
                                      std::uint64_t{1} << 32, 3);
  for (Key k : keys) ASSERT_TRUE(dict.insert(k, value_for_key(k, 16)));
  pdm::IoProbe probe(disks);
  for (Key k : keys) ASSERT_TRUE(dict.lookup(k).found);
  double avg = static_cast<double>(probe.ios()) / n;
  EXPECT_LE(avg, 1.0 + eps) << "Theorem 7: successful lookups 1+eps average";
  EXPECT_GE(avg, 1.0);
}

TEST(DynamicDict, AverageInsertWithinTwoPlusEpsilon) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  const double eps = 0.5;
  const std::uint64_t n = 1000;
  DynamicDict dict(disks, 0, alloc, params_for(n, 16, eps));
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, n,
                                      std::uint64_t{1} << 32, 9);
  pdm::IoProbe probe(disks);
  for (Key k : keys) ASSERT_TRUE(dict.insert(k, value_for_key(k, 16)));
  double avg = static_cast<double>(probe.ios()) / n;
  EXPECT_LE(avg, 2.0 + eps) << "Theorem 7: updates 2+eps average";
  EXPECT_GE(avg, 2.0);
}

TEST(DynamicDict, MostElementsLiveInLevelOne) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  const std::uint64_t n = 1000;
  DynamicDict dict(disks, 0, alloc, params_for(n, 16));
  for (Key k = 0; k < n; ++k) dict.insert(k * 3 + 5, value_for_key(k, 16));
  const auto& pop = dict.level_population();
  // The Lemma 5 cascade: spill fraction per level is at most ~6ε < 1.
  EXPECT_GE(pop[0], n * 7 / 10);
  std::uint64_t total = 0;
  for (auto c : pop) total += c;
  EXPECT_EQ(total, n);
}

TEST(DynamicDict, DuplicateCostsOneIo) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  DynamicDict dict(disks, 0, alloc, params_for(100, 8));
  dict.insert(7, value_for_key(7, 8));
  pdm::IoProbe probe(disks);
  EXPECT_FALSE(dict.insert(7, value_for_key(7, 8)));
  EXPECT_EQ(probe.ios(), 1u);
}

TEST(DynamicDict, EraseFreesFieldsForReuse) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  const std::uint64_t n = 200;
  DynamicDict dict(disks, 0, alloc, params_for(n, 16));
  // Fill, erase, refill repeatedly: space must be reused, not leak levels.
  for (int round = 0; round < 4; ++round) {
    for (Key k = 0; k < n; ++k)
      ASSERT_TRUE(dict.insert(k + round * 100000, value_for_key(k, 16)))
          << "round " << round;
    for (Key k = 0; k < n; ++k)
      ASSERT_TRUE(dict.erase(k + round * 100000));
  }
  EXPECT_EQ(dict.size(), 0u);
}

TEST(DynamicDict, GeometricLevelSizes) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  DynamicDict dict(disks, 0, alloc, params_for(4000, 8));
  EXPECT_GE(dict.levels(), 2u);
  EXPECT_LT(dict.shrink_ratio(), 1.0 / (1.0 + 1.0 / 0.5));
  EXPECT_GT(dict.shrink_ratio(), 0.0);
}

TEST(DynamicDict, DegreeRequirementEnforced) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  DynamicDictParams p = params_for(100, 8, 0.1);  // needs d > 66
  p.degree = 32;
  EXPECT_THROW(DynamicDict(disks, 0, alloc, p), std::invalid_argument);
  p.degree = 0;  // auto: must pick d > 66
  EXPECT_GT(DynamicDict::degree_for(p), 66u);
}

TEST(DynamicDict, ZeroValueBytes) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  DynamicDict dict(disks, 0, alloc, params_for(100, 0));
  EXPECT_TRUE(dict.insert(11, {}));
  EXPECT_TRUE(dict.lookup(11).found);
  EXPECT_FALSE(dict.lookup(12).found);
  EXPECT_TRUE(dict.erase(11));
}

TEST(DynamicDict, CapacityEnforced) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  DynamicDict dict(disks, 0, alloc, params_for(16, 8));
  for (Key k = 0; k < 16; ++k)
    ASSERT_TRUE(dict.insert(k + 1, value_for_key(k, 8)));
  EXPECT_THROW(dict.insert(99, value_for_key(99, 8)), CapacityError);
}

}  // namespace
}  // namespace pddict::core
