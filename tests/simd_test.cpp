// Property tests for the SIMD kernel layer: every compiled variant must be
// bit-identical to the scalar reference on every input shape — randomized
// sizes, strides, base alignments, duplicate keys, and all the tail/empty
// edge cases. These are the tests that make "dispatch never changes counted
// metrics" a checked invariant rather than a hope.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "util/hash.hpp"
#include "util/prng.hpp"
#include "util/simd/simd.hpp"

namespace pddict::util::simd {
namespace {

// The non-scalar variants compiled in AND runnable on this machine. Tests
// comparing variants iterate this (possibly empty on exotic hardware: then
// the dispatch tests still run and the equivalence tests trivially pass).
std::vector<IsaLevel> vector_levels() {
  std::vector<IsaLevel> out;
  for (IsaLevel level : compiled_levels())
    if (level != IsaLevel::kScalar && level_available(level))
      out.push_back(level);
  return out;
}

TEST(SimdDispatch, ScalarAlwaysPresent) {
  ASSERT_NE(kernels_for(IsaLevel::kScalar), nullptr);
  EXPECT_TRUE(level_available(IsaLevel::kScalar));
  auto levels = compiled_levels();
  EXPECT_EQ(levels.front(), IsaLevel::kScalar);
}

TEST(SimdDispatch, ActiveLevelHonorsSetAndRestores) {
  IsaLevel before = active_level();
  ASSERT_TRUE(set_active_level(IsaLevel::kScalar));
  EXPECT_EQ(active_level(), IsaLevel::kScalar);
  ASSERT_TRUE(set_active_level(before));
  EXPECT_EQ(active_level(), before);
}

TEST(SimdDispatch, UnavailableLevelRejectedWithoutChange) {
  // At least one of the four levels is guaranteed unavailable only if not
  // compiled in; synthesize the check from compiled_levels instead.
  IsaLevel before = active_level();
  for (IsaLevel level : {IsaLevel::kSse42, IsaLevel::kAvx2, IsaLevel::kAvx512})
    if (!level_available(level)) {
      EXPECT_FALSE(set_active_level(level));
      EXPECT_EQ(active_level(), before);
    }
}

TEST(SimdDispatch, ActiveNeverExceedsBestSupported) {
  EXPECT_LE(static_cast<int>(active_level()),
            static_cast<int>(best_supported_level()));
}

TEST(SimdDispatch, IsaNamesRoundTrip) {
  EXPECT_STREQ(isa_name(IsaLevel::kScalar), "scalar");
  EXPECT_STREQ(isa_name(IsaLevel::kSse42), "sse42");
  EXPECT_STREQ(isa_name(IsaLevel::kAvx2), "avx2");
  EXPECT_STREQ(isa_name(IsaLevel::kAvx512), "avx512");
  EXPECT_FALSE(cpu_model_string().empty());
}

// ---------------------------------------------------------------------------
// find_key / count_key equivalence.

struct ScanCase {
  std::vector<std::byte> buf;  // over-allocated so odd offsets stay in-bounds
  const std::byte* base;
  std::size_t stride;
  std::uint32_t count;
};

// Builds a slot array of `count` keys at the given stride, starting at an
// intentionally misaligned base (align_off bytes past a vector boundary).
ScanCase make_scan(std::mt19937_64& rng, std::uint32_t count,
                   std::size_t stride, std::size_t align_off,
                   const std::vector<std::uint64_t>& keys) {
  ScanCase c;
  c.buf.assign(align_off + stride * count + 64, std::byte{0xEE});
  c.base = c.buf.data() + align_off;
  c.stride = stride;
  c.count = count;
  for (std::uint32_t s = 0; s < count; ++s) {
    std::uint64_t k = keys.empty() ? rng() : keys[rng() % keys.size()];
    std::memcpy(c.buf.data() + align_off + s * stride, &k, sizeof(k));
  }
  return c;
}

TEST(SimdEquivalence, FindAndCountAcrossShapes) {
  const Kernels& ref = *kernels_for(IsaLevel::kScalar);
  std::mt19937_64 rng(20260808);
  // A small key universe forces duplicates (count > 1, first-match index
  // actually exercised); the empty pool gives all-distinct keys.
  const std::vector<std::uint64_t> dup_pool{1, 2, 3, ~0ull, 0};
  for (IsaLevel level : vector_levels()) {
    const Kernels& k = *kernels_for(level);
    for (std::size_t stride : {std::size_t{8}, std::size_t{9}, std::size_t{11},
                               std::size_t{16}, std::size_t{24},
                               std::size_t{40}}) {
      for (std::uint32_t count : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u,
                                  16u, 17u, 63u, 64u, 255u, 1000u}) {
        for (std::size_t align_off : {std::size_t{0}, std::size_t{1},
                                      std::size_t{3}, std::size_t{7}}) {
          for (bool dups : {false, true}) {
            ScanCase c = make_scan(rng, count, stride, align_off,
                                   dups ? dup_pool
                                        : std::vector<std::uint64_t>{});
            // Probe with present keys, absent keys, and the 0xEE.. padding
            // pattern (which must never be read as a slot).
            std::vector<std::uint64_t> probes{0, 1, ~0ull, rng(),
                                              0xEEEEEEEEEEEEEEEEull};
            if (count > 0) {
              std::uint64_t first, last;
              std::memcpy(&first, c.base, 8);
              std::memcpy(&last, c.base + (count - 1) * stride, 8);
              probes.push_back(first);
              probes.push_back(last);
            }
            for (std::uint64_t key : probes) {
              ASSERT_EQ(k.find_key(c.base, stride, count, key),
                        ref.find_key(c.base, stride, count, key))
                  << isa_name(level) << " stride=" << stride
                  << " count=" << count << " off=" << align_off;
              ASSERT_EQ(k.count_key(c.base, stride, count, key),
                        ref.count_key(c.base, stride, count, key))
                  << isa_name(level) << " stride=" << stride
                  << " count=" << count << " off=" << align_off;
            }
          }
        }
      }
    }
  }
}

TEST(SimdEquivalence, FindReturnsFirstOfManyDuplicates) {
  // All slots hold the same key: every variant must report slot 0 and the
  // exact total. count=1000 crosses all vector widths and tail paths.
  for (IsaLevel level : vector_levels()) {
    const Kernels& k = *kernels_for(level);
    for (std::size_t stride : {std::size_t{8}, std::size_t{24}}) {
      std::vector<std::byte> buf(stride * 1000, std::byte{0});
      const std::uint64_t key = 0x0123456789abcdefull;
      for (std::uint32_t s = 0; s < 1000; ++s)
        std::memcpy(buf.data() + s * stride, &key, 8);
      EXPECT_EQ(k.find_key(buf.data(), stride, 1000, key), 0u)
          << isa_name(level);
      EXPECT_EQ(k.count_key(buf.data(), stride, 1000, key), 1000u)
          << isa_name(level);
      EXPECT_EQ(k.find_key(buf.data(), stride, 1000, key + 1), kNotFound)
          << isa_name(level);
    }
  }
}

// ---------------------------------------------------------------------------
// Hash kernel equivalence: checked against the library formulas directly, so
// a bug in the shared reference loop cannot hide behind "both agree".

TEST(SimdEquivalence, HashSaltsMatchesSaltedMixFormula) {
  std::mt19937_64 rng(7);
  std::vector<IsaLevel> levels = vector_levels();
  levels.insert(levels.begin(), IsaLevel::kScalar);
  for (IsaLevel level : levels) {
    const Kernels& k = *kernels_for(level);
    for (std::uint32_t d : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 33u}) {
      std::uint64_t x = rng(), salt_base = rng();
      std::vector<std::uint64_t> out(d + 1, 0xAAull);
      k.hash_salts(x, salt_base, d, out.data());
      for (std::uint32_t i = 0; i < d; ++i)
        ASSERT_EQ(out[i], util::salted_mix(x, salt_base + i))
            << isa_name(level) << " d=" << d << " i=" << i;
      EXPECT_EQ(out[d], 0xAAull) << isa_name(level);  // no overwrite past d
    }
  }
}

TEST(SimdEquivalence, MixKeysMatchesMix64Formula) {
  std::mt19937_64 rng(8);
  std::vector<IsaLevel> levels = vector_levels();
  levels.insert(levels.begin(), IsaLevel::kScalar);
  for (IsaLevel level : levels) {
    const Kernels& k = *kernels_for(level);
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                          std::size_t{8}, std::size_t{13}, std::size_t{257}}) {
      std::uint64_t salt = rng();
      std::vector<std::uint64_t> xs(n), out(n + 1, 0xBBull);
      for (auto& x : xs) x = rng();
      k.mix_keys(xs.data(), n, salt, out.data());
      for (std::size_t j = 0; j < n; ++j)
        ASSERT_EQ(out[j], util::mix64(xs[j] ^ salt))
            << isa_name(level) << " n=" << n << " j=" << j;
      EXPECT_EQ(out[n], 0xBBull) << isa_name(level);
    }
  }
}

// ---------------------------------------------------------------------------
// min_load_select equivalence: ties and duplicate candidates are the
// interesting inputs — the deterministic balancer's behavior hangs on the
// exact (load, candidate, first-occurrence) order.

TEST(SimdEquivalence, MinLoadSelectAcrossShapes) {
  const Kernels& ref = *kernels_for(IsaLevel::kScalar);
  std::mt19937_64 rng(99);
  for (IsaLevel level : vector_levels()) {
    const Kernels& k = *kernels_for(level);
    for (std::uint32_t count : {1u, 2u, 3u, 4u, 7u, 8u, 9u, 15u, 16u, 17u,
                                64u, 100u, 333u}) {
      for (int tie_density = 0; tie_density < 3; ++tie_density) {
        // tie_density 0: loads all distinct; 1: loads from {0,1,2};
        // 2: all loads equal AND candidates drawn with repeats.
        std::uint32_t table = 64;
        std::vector<std::uint64_t> loads(table);
        for (auto& l : loads)
          l = tie_density == 0 ? rng() : tie_density == 1 ? rng() % 3 : 5;
        std::vector<std::uint64_t> cands(count);
        for (auto& c : cands)
          c = tie_density == 2 ? rng() % 4 : rng() % table;
        ASSERT_EQ(k.min_load_select(loads.data(), cands.data(), count),
                  ref.min_load_select(loads.data(), cands.data(), count))
            << isa_name(level) << " count=" << count
            << " ties=" << tie_density;
      }
    }
  }
}

TEST(SimdEquivalence, MinLoadSelectFullTieReturnsFirstPosition) {
  // Identical candidate repeated: position 0 must win at every level.
  std::vector<std::uint64_t> loads{7, 7, 7, 7};
  std::vector<std::uint64_t> cands(40, 2);
  std::vector<IsaLevel> levels = vector_levels();
  levels.insert(levels.begin(), IsaLevel::kScalar);
  for (IsaLevel level : levels)
    EXPECT_EQ(kernels_for(level)->min_load_select(
                  loads.data(), cands.data(),
                  static_cast<std::uint32_t>(cands.size())),
              0u)
        << isa_name(level);
}

// ---------------------------------------------------------------------------
// Concurrency: flipping the active level mid-run is documented safe because
// all variants agree bit-for-bit. Exercised here so the TSan suite verifies
// the atomic table swap has no data race.

TEST(SimdConcurrency, LevelFlipDuringScansIsRaceFree) {
  std::vector<std::byte> buf(8 * 512);
  const std::uint64_t key = 42;
  for (std::uint32_t s = 0; s < 512; ++s) {
    std::uint64_t k = (s == 300) ? key : s + 1000;
    std::memcpy(buf.data() + s * 8, &k, 8);
  }
  IsaLevel before = active_level();
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    auto levels = compiled_levels();
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      IsaLevel level = levels[i++ % levels.size()];
      if (level_available(level)) set_active_level(level);
    }
  });
  for (int iter = 0; iter < 20000; ++iter)
    ASSERT_EQ(kernels().find_key(buf.data(), 8, 512, key), 300u);
  stop.store(true, std::memory_order_relaxed);
  flipper.join();
  set_active_level(before);
}

}  // namespace
}  // namespace pddict::util::simd
