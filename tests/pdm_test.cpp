// Tests for the parallel disk model simulator: I/O round accounting, striping,
// record streams and the external sort.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>

#include "pdm/allocator.hpp"
#include "pdm/block.hpp"
#include "pdm/disk_array.hpp"
#include "pdm/ext_sort.hpp"
#include "pdm/record_stream.hpp"
#include "pdm/striped_view.hpp"
#include "util/prng.hpp"

namespace pddict::pdm {
namespace {

Geometry small_geom(std::uint32_t disks = 4, std::uint32_t block_items = 8,
                    std::uint32_t item_bytes = 8) {
  return Geometry{disks, block_items, item_bytes, 0};
}

TEST(Geometry, DerivedQuantities) {
  Geometry g{4, 16, 8, 0};
  EXPECT_EQ(g.block_bytes(), 128u);
  EXPECT_EQ(g.stripe_bytes(), 512u);
  EXPECT_EQ(g.stripe_items(), 64u);
  EXPECT_TRUE(g.valid());
  EXPECT_FALSE((Geometry{0, 1, 1, 0}).valid());
}

// load_pod/store_pod must stay memcpy-based: block layouts put u64 keys at
// odd byte offsets (record strides like 9 or 24 over the 8-byte bucket
// header), so a cast-and-dereference implementation would be UB the UBSan
// build variant flags. Round-trip every misaligned offset in one word.
TEST(BlockPod, MisalignedOffsetsRoundTrip) {
  std::vector<std::byte> buf(64, std::byte{0xA5});
  for (std::size_t off : {1u, 2u, 3u, 5u, 7u, 9u, 11u, 13u, 15u}) {
    const std::uint64_t v64 = 0x0123456789abcdefULL + off;
    store_pod<std::uint64_t>(buf, off, v64);
    EXPECT_EQ(load_pod<std::uint64_t>(buf, off), v64) << "offset " << off;
    const std::uint32_t v32 = 0xcafef00d + static_cast<std::uint32_t>(off);
    store_pod<std::uint32_t>(buf, off + 16, v32);
    EXPECT_EQ(load_pod<std::uint32_t>(buf, off + 16), v32) << "offset " << off;
  }
  // Adjacent misaligned words must not clobber each other.
  store_pod<std::uint64_t>(buf, 33, 0x1111111111111111ULL);
  store_pod<std::uint64_t>(buf, 41, 0x2222222222222222ULL);
  EXPECT_EQ(load_pod<std::uint64_t>(buf, 33), 0x1111111111111111ULL);
  EXPECT_EQ(load_pod<std::uint64_t>(buf, 41), 0x2222222222222222ULL);
}

TEST(DiskArray, ReadBackWhatWasWritten) {
  DiskArray disks(small_geom());
  Block b(disks.geometry().block_bytes(), std::byte{0});
  store_pod<std::uint64_t>(b, 0, 0xdeadbeef);
  disks.write_block({2, 5}, b);
  Block r = disks.read_block({2, 5});
  EXPECT_EQ(load_pod<std::uint64_t>(r, 0), 0xdeadbeefULL);
}

TEST(DiskArray, UnwrittenBlocksReadZero) {
  DiskArray disks(small_geom());
  Block r = disks.read_block({0, 1234});
  for (auto byte : r) EXPECT_EQ(byte, std::byte{0});
}

TEST(DiskArray, OneBlockPerDiskIsOneParallelIo) {
  DiskArray disks(small_geom(4));
  std::vector<BlockAddr> addrs{{0, 0}, {1, 7}, {2, 3}, {3, 9}};
  std::vector<Block> out;
  EXPECT_EQ(disks.read_batch(addrs, out), 1u);
  EXPECT_EQ(disks.stats().parallel_ios, 1u);
  EXPECT_EQ(disks.stats().blocks_read, 4u);
}

TEST(DiskArray, SameDiskRequestsSerialize) {
  DiskArray disks(small_geom(4));
  std::vector<BlockAddr> addrs{{0, 0}, {0, 1}, {0, 2}, {1, 0}};
  std::vector<Block> out;
  EXPECT_EQ(disks.read_batch(addrs, out), 3u);  // three blocks on disk 0
}

TEST(DiskArray, DuplicateAddressesCountOnce) {
  DiskArray disks(small_geom(4));
  std::vector<BlockAddr> addrs{{0, 5}, {0, 5}, {0, 5}};
  std::vector<Block> out;
  EXPECT_EQ(disks.read_batch(addrs, out), 1u);
  EXPECT_EQ(out.size(), 3u);
}

TEST(DiskArray, ParallelHeadModeCountsCeilOverD) {
  DiskArray disks(small_geom(4), Model::kParallelHeads);
  // 6 blocks, all on disk 0: the head model fetches any D=4 per round.
  std::vector<BlockAddr> addrs;
  for (std::uint64_t i = 0; i < 6; ++i) addrs.push_back({0, i});
  std::vector<Block> out;
  EXPECT_EQ(disks.read_batch(addrs, out), 2u);
}

TEST(DiskArray, WriteBatchLastWriteWins) {
  DiskArray disks(small_geom());
  Block b1(disks.geometry().block_bytes(), std::byte{1});
  Block b2(disks.geometry().block_bytes(), std::byte{2});
  std::vector<std::pair<BlockAddr, Block>> writes{{{1, 1}, b1}, {{1, 1}, b2}};
  EXPECT_EQ(disks.write_batch(writes), 1u);
  EXPECT_EQ(disks.peek({1, 1})[0], std::byte{2});
}

TEST(DiskArray, BoundsChecking) {
  Geometry g{2, 4, 8, 10};
  DiskArray disks(g);
  EXPECT_THROW(disks.read_block({2, 0}), std::out_of_range);
  EXPECT_THROW(disks.read_block({0, 10}), std::out_of_range);
  EXPECT_THROW(disks.write_block({0, 0}, Block(3)), std::invalid_argument);
}

TEST(DiskArray, PeekAndPokeCostNoIo) {
  DiskArray disks(small_geom());
  disks.poke({0, 0}, Block(disks.geometry().block_bytes(), std::byte{7}));
  Block b = disks.peek({0, 0});
  EXPECT_EQ(b[0], std::byte{7});
  EXPECT_EQ(disks.stats().parallel_ios, 0u);
}

TEST(DiskArray, DiscardReleasesBlocks) {
  DiskArray disks(small_geom());
  disks.poke({0, 3}, Block(disks.geometry().block_bytes(), std::byte{9}));
  EXPECT_EQ(disks.blocks_in_use(), 1u);
  disks.discard_blocks(0, 1, 3, 1);
  EXPECT_EQ(disks.blocks_in_use(), 0u);
  EXPECT_EQ(disks.peek({0, 3})[0], std::byte{0});
}

TEST(DiskArray, DiscardRangeOverflowClamps) {
  // Regression: first_disk + num_disks wrapping uint32_t (and base + count
  // wrapping uint64_t) used to turn the discard into a silent no-op.
  DiskArray disks(small_geom());
  disks.poke({0, 3}, Block(disks.geometry().block_bytes(), std::byte{9}));
  disks.poke({3, 7}, Block(disks.geometry().block_bytes(), std::byte{9}));
  EXPECT_EQ(disks.blocks_in_use(), 2u);
  disks.discard_blocks(0, std::numeric_limits<std::uint32_t>::max(), 0,
                       std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(disks.blocks_in_use(), 0u);
  EXPECT_EQ(disks.peek({0, 3})[0], std::byte{0});
  EXPECT_EQ(disks.peek({3, 7})[0], std::byte{0});

  // Wrapping base + count with a nonzero base.
  disks.poke({1, 5}, Block(disks.geometry().block_bytes(), std::byte{8}));
  disks.discard_blocks(1, 1, 4,
                       std::numeric_limits<std::uint64_t>::max() - 1);
  EXPECT_EQ(disks.blocks_in_use(), 0u);

  // Blocks outside the range stay put.
  disks.poke({2, 1}, Block(disks.geometry().block_bytes(), std::byte{7}));
  disks.discard_blocks(2, std::numeric_limits<std::uint32_t>::max(), 2,
                       std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(disks.blocks_in_use(), 1u);
  EXPECT_EQ(disks.peek({2, 1})[0], std::byte{7});
}

TEST(IoProbe, MeasuresDelta) {
  DiskArray disks(small_geom());
  disks.read_block({0, 0});
  IoProbe probe(disks);
  disks.read_block({0, 1});
  disks.write_block({1, 0}, Block(disks.geometry().block_bytes()));
  EXPECT_EQ(probe.ios(), 2u);
  EXPECT_EQ(probe.delta().read_rounds, 1u);
  EXPECT_EQ(probe.delta().write_rounds, 1u);
  probe.reset();
  EXPECT_EQ(probe.ios(), 0u);
}

TEST(IoProbe, SaturatesAcrossStatsReset) {
  // Regression: reset_stats() mid-probe rebased the live counters below the
  // probe's start snapshot; the wrapping subtraction then reported ~2^64
  // parallel I/Os and poisoned every report derived from the delta.
  DiskArray disks(small_geom());
  disks.read_block({0, 0});
  disks.read_block({0, 1});
  IoProbe probe(disks);
  disks.read_block({0, 2});
  disks.reset_stats();
  IoStats d = probe.delta();
  EXPECT_EQ(d.parallel_ios, 0u);
  EXPECT_EQ(d.read_rounds, 0u);
  EXPECT_EQ(d.blocks_read, 0u);
  // The probe keeps measuring sensibly from the rebased counters upward.
  disks.read_block({1, 0});
  EXPECT_EQ(probe.delta().parallel_ios, 0u);  // still below the old start
  probe.reset();
  disks.read_block({1, 1});
  EXPECT_EQ(probe.ios(), 1u);
}

TEST(StripedView, RoundTripAndCost) {
  DiskArray disks(small_geom(4, 8, 8));
  StripedView view(disks, 10, 5);
  std::vector<std::byte> data(view.logical_block_bytes());
  util::SplitMix64 rng(5);
  for (auto& b : data) b = static_cast<std::byte>(rng.next() & 0xff);
  view.write(3, data);
  EXPECT_EQ(disks.stats().parallel_ios, 1u);
  EXPECT_EQ(view.read(3), data);
  EXPECT_EQ(disks.stats().parallel_ios, 2u);
  EXPECT_THROW(view.read(5), std::out_of_range);
}

TEST(RecordStream, WriteThenReadBack) {
  DiskArray disks(small_geom(4, 8, 8));
  StripedView view(disks, 0, 0);
  const std::size_t rec = 24;
  RecordWriter w(view, 0, rec);
  std::vector<std::byte> buf(rec);
  for (std::uint64_t i = 0; i < 100; ++i) {
    std::memcpy(buf.data(), &i, 8);
    w.push(buf);
  }
  w.finish();
  RecordReader r(view, 0, 100, rec);
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_FALSE(r.exhausted());
    std::uint64_t got;
    std::memcpy(&got, r.head().data(), 8);
    EXPECT_EQ(got, i);
    r.pop();
  }
  EXPECT_TRUE(r.exhausted());
}

TEST(Allocator, MonotonicNonOverlapping) {
  DiskAllocator alloc(100);
  EXPECT_EQ(alloc.reserve(10), 100u);
  EXPECT_EQ(alloc.reserve(0), 110u);
  EXPECT_EQ(alloc.reserve(5), 110u);
  EXPECT_EQ(alloc.high_water_mark(), 115u);
}

// ---- external sort ----

struct SortCase {
  std::uint64_t num_records;
  std::size_t record_bytes;
  std::size_t memory_bytes;
};

class ExtSortTest : public ::testing::TestWithParam<SortCase> {};

TEST_P(ExtSortTest, SortsArbitraryData) {
  auto [n, rec, mem] = GetParam();
  DiskArray disks(small_geom(4, 16, 8));
  DiskAllocator alloc;
  std::uint64_t blocks =
      n / records_per_logical_block(disks.geometry(), rec) + 2;
  StripedView in(disks, alloc.reserve(blocks), blocks);
  StripedView scratch(disks, alloc.reserve(blocks), blocks);

  util::SplitMix64 rng(n * 31 + rec);
  std::vector<std::byte> data(n * rec);
  std::vector<std::uint64_t> keys(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    keys[i] = rng.next_below(n / 2 + 1);  // force duplicates
    std::memcpy(data.data() + i * rec, &keys[i], 8);
    data[i * rec + 8] = static_cast<std::byte>(i & 0xff);  // payload marker
  }
  write_records(in, data, rec);
  auto key_fn = [](std::span<const std::byte> r) {
    std::uint64_t k;
    std::memcpy(&k, r.data(), 8);
    return k;
  };
  SortStats st = external_sort(in, scratch, n, rec, key_fn, mem);
  EXPECT_GE(st.initial_runs, 1u);

  std::vector<std::byte> out = read_records(in, n, rec);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t k;
    std::memcpy(&k, out.data() + i * rec, 8);
    EXPECT_GE(k, prev);
    prev = k;
  }
  // Same multiset of keys.
  std::vector<std::uint64_t> sorted_in = keys, sorted_out(n);
  std::sort(sorted_in.begin(), sorted_in.end());
  for (std::uint64_t i = 0; i < n; ++i)
    std::memcpy(&sorted_out[i], out.data() + i * rec, 8);
  EXPECT_EQ(sorted_in, sorted_out);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ExtSortTest,
    ::testing::Values(SortCase{1, 16, 4096}, SortCase{10, 16, 4096},
                      SortCase{500, 16, 2048}, SortCase{500, 24, 2048},
                      SortCase{2000, 16, 2048}, SortCase{333, 40, 1600},
                      SortCase{4096, 16, 8192}));

TEST(ExtSort, StableOnEqualKeys) {
  DiskArray disks(small_geom(2, 8, 8));
  DiskAllocator alloc;
  const std::size_t rec = 16;
  const std::uint64_t n = 300;
  std::uint64_t blocks = n / records_per_logical_block(disks.geometry(), rec) + 2;
  StripedView in(disks, alloc.reserve(blocks), blocks);
  StripedView scratch(disks, alloc.reserve(blocks), blocks);
  std::vector<std::byte> data(n * rec);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t k = i % 3;  // heavy duplication
    std::memcpy(data.data() + i * rec, &k, 8);
    std::memcpy(data.data() + i * rec + 8, &i, 8);  // original index
  }
  write_records(in, data, rec);
  external_sort(in, scratch, n, rec,
                [](std::span<const std::byte> r) {
                  std::uint64_t k;
                  std::memcpy(&k, r.data(), 8);
                  return k;
                },
                1024);
  auto out = read_records(in, n, rec);
  std::uint64_t prev_key = 0, prev_idx = 0;
  bool first = true;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t k, idx;
    std::memcpy(&k, out.data() + i * rec, 8);
    std::memcpy(&idx, out.data() + i * rec + 8, 8);
    if (!first && k == prev_key) {
      EXPECT_GT(idx, prev_idx) << "instability";
    }
    prev_key = k;
    prev_idx = idx;
    first = false;
  }
}

TEST(ExtSort, IoScalesWithDataNotQuadratically) {
  DiskArray disks(small_geom(4, 16, 8));
  DiskAllocator alloc;
  const std::size_t rec = 16;
  const std::uint64_t n = 4000;
  std::uint64_t blocks = n / records_per_logical_block(disks.geometry(), rec) + 2;
  StripedView in(disks, alloc.reserve(blocks), blocks);
  StripedView scratch(disks, alloc.reserve(blocks), blocks);
  std::vector<std::byte> data(n * rec);
  util::SplitMix64 rng(1);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t k = rng.next();
    std::memcpy(data.data() + i * rec, &k, 8);
  }
  write_records(in, data, rec);
  SortStats st = external_sort(in, scratch, n, rec,
                               [](std::span<const std::byte> r) {
                                 std::uint64_t k;
                                 std::memcpy(&k, r.data(), 8);
                                 return k;
                               },
                               8192);
  std::uint64_t data_blocks =
      n / records_per_logical_block(disks.geometry(), rec) + 1;
  // Each pass reads + writes the data once; a handful of passes at most.
  EXPECT_LE(st.io.parallel_ios, 2 * data_blocks * (st.merge_passes + 2));
  EXPECT_LE(st.merge_passes, 6u);
}

TEST(ExtSort, EmptyAndRecordTooLarge) {
  DiskArray disks(small_geom(2, 4, 8));
  DiskAllocator alloc;
  StripedView in(disks, alloc.reserve(4), 4);
  StripedView scratch(disks, alloc.reserve(4), 4);
  auto key_fn = [](std::span<const std::byte>) { return std::uint64_t{0}; };
  SortStats st = external_sort(in, scratch, 0, 16, key_fn, 1024);
  EXPECT_EQ(st.io.parallel_ios, 0u);
  EXPECT_THROW(records_per_logical_block(disks.geometry(), 100000),
               std::invalid_argument);
}

}  // namespace
}  // namespace pddict::pdm
