// Concurrency stress for the observability attach points: worker threads
// hammer a ConcurrentBasicDict while a chaos thread attaches/detaches sinks,
// resets stats and reads snapshots. Under ThreadSanitizer
// (-DPDDICT_SANITIZE=thread) this is the regression test for the
// set_sink/add_sink data race and the Span/OpScope unlocked counter reads;
// without TSan it still verifies the dictionary stays consistent while the
// observability plumbing churns. A second case runs the same chaos against a
// CachedDiskArray to exercise the buffer pool's sharded latches.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstring>
#include <thread>
#include <vector>

#include "core/concurrent_dict.hpp"
#include "obs/sink.hpp"
#include "pdm/disk_array.hpp"

namespace pddict::core {
namespace {

pdm::Geometry geom() { return pdm::Geometry{8, 64, 16, 0}; }

BasicDictParams params() {
  BasicDictParams p;
  p.universe_size = 1u << 20;
  p.capacity = 4096;
  p.value_bytes = 8;
  p.degree = 8;
  return p;
}

/// Sink doing enough real work (mutation under its own lock) for TSan to
/// observe unsynchronized emission if the attach path ever races again.
class CountingSink final : public obs::Sink {
 public:
  void on_io(const obs::IoEvent& event) override {
    std::lock_guard<std::mutex> lock(mutex_);
    ++events_;
    rounds_ += event.rounds;
  }
  void on_span(const obs::SpanRecord& record) override {
    std::lock_guard<std::mutex> lock(mutex_);
    ++spans_;
    rounds_ += record.io.parallel_ios;
  }
  void on_op(const obs::OpRecord&) override {
    std::lock_guard<std::mutex> lock(mutex_);
    ++ops_;
  }
  std::uint64_t events() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

 private:
  mutable std::mutex mutex_;
  std::uint64_t events_ = 0;
  std::uint64_t spans_ = 0;
  std::uint64_t ops_ = 0;
  std::uint64_t rounds_ = 0;
};

void hammer_with_observability_chaos(pdm::DiskArray& disks) {
  ConcurrentBasicDict dict(disks, 0, 0, params());

  constexpr int kWorkers = 4;
  constexpr Key kKeysPerWorker = 300;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> inserted{0};

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      std::vector<std::byte> value(8);
      for (Key i = 1; i <= kKeysPerWorker; ++i) {
        Key key = static_cast<Key>(w) * kKeysPerWorker + i;
        std::memcpy(value.data(), &key, sizeof(Key));
        if (dict.insert(key, value)) inserted.fetch_add(1);
        auto r = dict.lookup(key);
        EXPECT_TRUE(r.found);
        if (i % 3 == 0) {
          EXPECT_TRUE(dict.erase(key));
          inserted.fetch_sub(1);
        }
      }
    });
  }

  // Chaos thread: the exact operations that used to race with account_batch
  // and the Span/OpScope constructors — attach, stack another sink, detach,
  // rebase the counters, read snapshots.
  std::thread chaos([&] {
    int round = 0;
    while (!stop.load()) {
      auto sink = std::make_shared<CountingSink>();
      disks.set_sink(sink);
      disks.add_sink(std::make_shared<CountingSink>());
      (void)disks.stats_snapshot();
      (void)disks.disk_counters();
      (void)disks.cache_stats();
      if (++round % 4 == 0) disks.reset_stats();
      disks.set_sink(nullptr);
      std::this_thread::yield();
    }
  });

  for (auto& t : workers) t.join();
  stop.store(true);
  chaos.join();
  disks.set_sink(nullptr);

  // The dictionary itself stayed consistent through the churn.
  EXPECT_EQ(dict.size(), inserted.load());
  for (Key key = 1; key <= kKeysPerWorker; ++key) {
    auto r = dict.lookup(key);
    EXPECT_EQ(r.found, key % 3 != 0);
    if (r.found) {
      Key stored;
      std::memcpy(&stored, r.value.data(), sizeof(Key));
      EXPECT_EQ(stored, key);
    }
  }
}

TEST(SinkStress, AttachDetachResetUnderConcurrentTraffic) {
  pdm::DiskArray disks(geom());
  hammer_with_observability_chaos(disks);
}

TEST(SinkStress, SameChaosOverCachedArray) {
  pdm::CachedDiskArray disks(geom(), /*frames=*/32);
  hammer_with_observability_chaos(disks);
  // Reconciliation survives concurrent traffic + mid-run resets: counters
  // were rebased together, so the invariants hold from the last epoch.
  disks.flush_cache();
  pdm::CacheStats c = disks.cache_stats();
  pdm::IoStats io = disks.stats_snapshot();
  EXPECT_EQ(io.blocks_read, c.misses);
  EXPECT_EQ(io.blocks_written, c.flushed_blocks);
}

}  // namespace
}  // namespace pddict::core
