// Trace-level verification: the one-probe property, disk balance and the
// composable-batch structure are checked on the actual I/O event stream,
// not just on round counts.
#include <gtest/gtest.h>

#include <set>

#include "core/basic_dict.hpp"
#include "core/dynamic_dict.hpp"
#include "core/static_dict.hpp"
#include "workload/workload.hpp"

namespace pddict::core {
namespace {

TEST(Trace, BasicDictLookupIsOneBatchAcrossAllItsDisks) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  BasicDictParams p;
  p.universe_size = 1 << 30;
  p.capacity = 100;
  p.value_bytes = 8;
  p.degree = 16;
  BasicDict dict(disks, 0, 0, p);
  dict.insert(7, value_for_key(7, 8));
  disks.enable_trace();
  dict.lookup(7);
  disks.disable_trace();
  const auto& trace = disks.trace();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_FALSE(trace[0].write);
  EXPECT_EQ(trace[0].rounds, 1u);
  ASSERT_EQ(trace[0].addrs.size(), 16u);
  std::set<std::uint32_t> disks_touched;
  for (const auto& a : trace[0].addrs) disks_touched.insert(a.disk);
  EXPECT_EQ(disks_touched.size(), 16u) << "one block per disk = striping";
}

TEST(Trace, StaticDictOneProbeAtEventLevel) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  pdm::DiskAllocator alloc;
  StaticDictParams p;
  p.universe_size = 1 << 30;
  p.capacity = 300;
  p.value_bytes = 16;
  p.degree = 16;
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, 300,
                                      p.universe_size, 2);
  std::vector<std::byte> values(300 * 16, std::byte{1});
  StaticDict dict(disks, 0, alloc, p, keys, values);
  disks.enable_trace();
  dict.lookup(keys[5]);
  const auto& trace = disks.trace();
  ASSERT_EQ(trace.size(), 1u) << "exactly one read batch";
  EXPECT_EQ(trace[0].rounds, 1u);
  std::set<std::uint32_t> disks_touched;
  for (const auto& a : trace[0].addrs) disks_touched.insert(a.disk);
  EXPECT_EQ(disks_touched.size(), trace[0].addrs.size())
      << "no two probe blocks share a disk";
}

TEST(Trace, DynamicDictInsertIsReadBatchesThenOneWriteBatch) {
  pdm::DiskArray disks(pdm::Geometry{48, 64, 16, 0});
  pdm::DiskAllocator alloc;
  DynamicDictParams p;
  p.universe_size = 1 << 30;
  p.capacity = 100;
  p.value_bytes = 16;
  p.degree = 24;
  DynamicDict dict(disks, 0, alloc, p);
  disks.enable_trace();
  dict.insert(42, value_for_key(42, 16));
  const auto& trace = disks.trace();
  ASSERT_GE(trace.size(), 2u);
  // Every event except the last is a read; the last is the single combined
  // write batch (fields + membership on disjoint halves, 1 round).
  for (std::size_t i = 0; i + 1 < trace.size(); ++i)
    EXPECT_FALSE(trace[i].write) << i;
  EXPECT_TRUE(trace.back().write);
  EXPECT_EQ(trace.back().rounds, 1u);
}

TEST(Trace, RingCapacityBoundsRetainedEvents) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  BasicDictParams p;
  p.universe_size = 1 << 30;
  p.capacity = 200;
  p.value_bytes = 8;
  p.degree = 16;
  BasicDict dict(disks, 0, 0, p);
  disks.enable_trace(8);
  for (Key k = 1; k <= 100; ++k) dict.insert(k, value_for_key(k, 8));
  EXPECT_LE(disks.trace().size(), 8u);
  EXPECT_GT(disks.trace_dropped(), 0u)
      << "100 inserts must overflow an 8-event ring";
}

TEST(Trace, PerDiskCountersAgreeWithTraceEvents) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  BasicDictParams p;
  p.universe_size = 1 << 30;
  p.capacity = 100;
  p.value_bytes = 8;
  p.degree = 16;
  BasicDict dict(disks, 0, 0, p);
  disks.enable_trace();
  disks.reset_stats();
  for (Key k = 1; k <= 20; ++k) dict.insert(k, value_for_key(k, 8));
  // Re-derive the per-disk write counters from the trace (write events carry
  // deduplicated addresses, so they match the accounting exactly).
  std::vector<std::uint64_t> writes_from_trace(16, 0);
  for (const auto& ev : disks.trace())
    if (ev.write)
      for (const auto& a : ev.addrs) ++writes_from_trace[a.disk];
  auto counters = disks.disk_counters();
  for (std::size_t d = 0; d < 16; ++d)
    EXPECT_EQ(counters[d].blocks_written, writes_from_trace[d]) << d;
}

TEST(Trace, RoundUtilizationInvariantUnderTracedWorkload) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  BasicDictParams p;
  p.universe_size = 1 << 30;
  p.capacity = 200;
  p.value_bytes = 8;
  p.degree = 16;
  BasicDict dict(disks, 0, 0, p);
  disks.enable_trace();
  for (Key k = 1; k <= 50; ++k) dict.insert(k, value_for_key(k, 8));
  for (Key k = 1; k <= 50; ++k) dict.lookup(k);
  auto hist = disks.round_utilization();
  std::uint64_t weighted = 0, rounds = 0;
  for (std::size_t w = 0; w < hist.size(); ++w) {
    weighted += w * hist[w];
    rounds += hist[w];
  }
  EXPECT_EQ(weighted,
            disks.stats().blocks_read + disks.stats().blocks_written);
  EXPECT_EQ(rounds, disks.stats().parallel_ios);
}

TEST(Trace, WorkloadSpreadsAcrossDisksEvenly) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  BasicDictParams p;
  p.universe_size = std::uint64_t{1} << 36;
  p.capacity = 3000;
  p.value_bytes = 8;
  p.degree = 16;
  BasicDict dict(disks, 0, 0, p);
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom,
                                      3000, p.universe_size, 3);
  disks.enable_trace();
  for (Key k : keys) dict.insert(k, value_for_key(k, 8));
  std::vector<std::uint64_t> per_disk(16, 0);
  for (const auto& ev : disks.trace())
    for (const auto& a : ev.addrs) ++per_disk[a.disk];
  std::uint64_t total = 0, max_disk = 0;
  for (auto c : per_disk) {
    total += c;
    max_disk = std::max(max_disk, c);
  }
  double avg = static_cast<double>(total) / 16.0;
  EXPECT_LT(max_disk, avg * 1.1)
      << "striping must balance traffic across disks";
}

}  // namespace
}  // namespace pddict::core
