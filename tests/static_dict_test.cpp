// Tests for the Section 4.2 one-probe static dictionary (Theorem 6),
// both case (b) (identifiers) and case (a) (head pointers).
#include <gtest/gtest.h>

#include "core/static_dict.hpp"
#include "pdm/io_stats.hpp"
#include "workload/workload.hpp"

namespace pddict::core {
namespace {

struct StaticCase {
  StaticLayout layout;
  std::uint64_t n;
  std::size_t value_bytes;
};

pdm::DiskArray make_disks(std::uint32_t d = 32) {
  return pdm::DiskArray(pdm::Geometry{d, 64, 16, 0});
}

StaticDictParams params_for(StaticLayout layout, std::uint64_t n,
                            std::size_t value_bytes) {
  StaticDictParams p;
  p.universe_size = std::uint64_t{1} << 32;
  p.capacity = n;
  p.value_bytes = value_bytes;
  p.degree = 16;
  p.layout = layout;
  p.memory_bytes = 1 << 16;
  return p;
}

class StaticDictSweep : public ::testing::TestWithParam<StaticCase> {};

TEST_P(StaticDictSweep, BuildsAndAnswersEverything) {
  auto [layout, n, vb] = GetParam();
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, n,
                                      std::uint64_t{1} << 32, 31 + n);
  std::vector<std::byte> values;
  for (Key k : keys) {
    auto v = value_for_key(k, vb);
    values.insert(values.end(), v.begin(), v.end());
  }
  StaticDict dict(disks, 0, alloc, params_for(layout, n, vb), keys, values);
  EXPECT_EQ(dict.size(), n);
  EXPECT_GE(dict.build_stats().levels, 1u);

  // Every member found with the right satellite data, in EXACTLY one I/O.
  for (Key k : keys) {
    pdm::IoProbe probe(disks);
    auto r = dict.lookup(k);
    EXPECT_EQ(probe.ios(), 1u) << "one-probe violated";
    ASSERT_TRUE(r.found) << k;
    EXPECT_EQ(r.value, value_for_key(k, vb));
  }
  // Non-members rejected, also in one I/O.
  auto trace = workload::make_query_trace(keys, std::uint64_t{1} << 32, 300,
                                          0.0, 1.0, 5);
  for (Key q : trace.queries) {
    pdm::IoProbe probe(disks);
    EXPECT_FALSE(dict.lookup(q).found) << q;
    EXPECT_EQ(probe.ios(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, StaticDictSweep,
    ::testing::Values(
        StaticCase{StaticLayout::kIdentifiers, 64, 8},
        StaticCase{StaticLayout::kIdentifiers, 500, 16},
        StaticCase{StaticLayout::kIdentifiers, 500, 0},    // membership only
        StaticCase{StaticLayout::kIdentifiers, 2000, 32},
        StaticCase{StaticLayout::kIdentifiers, 500, 100},  // wide satellite
        StaticCase{StaticLayout::kHeadPointers, 64, 8},
        StaticCase{StaticLayout::kHeadPointers, 500, 16},
        StaticCase{StaticLayout::kHeadPointers, 2000, 32},
        StaticCase{StaticLayout::kHeadPointers, 500, 100}));

TEST(StaticDict, DirectConstructionEquivalentToSortBased) {
  // Both Theorem 6 construction procedures must produce a working one-probe
  // dictionary; the direct one costs O(n) I/Os (a read+write round pair per
  // key plus membership work), the sort-based one Θ(sort(nd)).
  for (auto layout :
       {StaticLayout::kIdentifiers, StaticLayout::kHeadPointers}) {
    auto disks = make_disks();
    pdm::DiskAllocator alloc;
    const std::uint64_t n = 800;
    auto p = params_for(layout, n, 24);
    p.algorithm = BuildAlgorithm::kDirect;
    auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom,
                                        n, p.universe_size, 55);
    std::vector<std::byte> values;
    for (Key k : keys) {
      auto v = value_for_key(k, 24);
      values.insert(values.end(), v.begin(), v.end());
    }
    StaticDict dict(disks, 0, alloc, p, keys, values);
    for (Key k : keys) {
      pdm::IoProbe probe(disks);
      auto r = dict.lookup(k);
      ASSERT_EQ(probe.ios(), 1u);
      ASSERT_TRUE(r.found);
      ASSERT_EQ(r.value, value_for_key(k, 24));
    }
    EXPECT_FALSE(dict.lookup(keys[0] ^ 0x80000000).found);
    // O(n) I/Os: ~2 rounds per key (+2n membership for case (a)).
    std::uint64_t bound = layout == StaticLayout::kIdentifiers ? 3 * n : 6 * n;
    EXPECT_LE(dict.build_stats().total_io.parallel_ios, bound);
  }
}

TEST(StaticDict, DirectConstructionRejectsDuplicates) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  auto p = params_for(StaticLayout::kIdentifiers, 4, 8);
  p.algorithm = BuildAlgorithm::kDirect;
  std::vector<Key> dup{5, 5};
  std::vector<std::byte> vals(16);
  EXPECT_THROW(StaticDict(disks, 0, alloc, p, dup, vals),
               std::invalid_argument);
}

TEST(StaticDict, EmptySetAnswersNo) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  StaticDict dict(disks, 0, alloc,
                  params_for(StaticLayout::kIdentifiers, 16, 8), {}, {});
  EXPECT_EQ(dict.size(), 0u);
  EXPECT_FALSE(dict.lookup(123).found);
}

TEST(StaticDict, SingleKey) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  std::vector<Key> keys{42};
  auto v = value_for_key(42, 24);
  StaticDict dict(disks, 0, alloc,
                  params_for(StaticLayout::kIdentifiers, 4, 24), keys, v);
  EXPECT_EQ(dict.lookup(42).value, v);
  EXPECT_FALSE(dict.lookup(43).found);
}

TEST(StaticDict, RejectsDuplicatesAndBadParams) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  std::vector<Key> dup{5, 5};
  std::vector<std::byte> vals(16);
  EXPECT_THROW(StaticDict(disks, 0, alloc,
                          params_for(StaticLayout::kIdentifiers, 4, 8), dup,
                          vals),
               std::invalid_argument);
  auto p = params_for(StaticLayout::kIdentifiers, 4, 8);
  p.degree = 12;  // Theorem 6 requires d > 12
  std::vector<Key> one{5};
  std::vector<std::byte> v8(8);
  EXPECT_THROW(StaticDict(disks, 0, alloc, p, one, v8),
               std::invalid_argument);
  auto p2 = params_for(StaticLayout::kHeadPointers, 4, 8);
  // 2d = 32 disks exist, but starting at disk 8 exceeds the array.
  EXPECT_THROW(StaticDict(disks, 8, alloc, p2, one, v8),
               std::invalid_argument);
}

TEST(StaticDict, ConstructionIoProportionalToSorting) {
  // Theorem 6: construction ≍ sorting nd records. Verify the I/O count is
  // within a small constant of the measured sort cost share.
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  const std::uint64_t n = 2000;
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, n,
                                      std::uint64_t{1} << 32, 3);
  std::vector<std::byte> values(n * 16);
  StaticDict dict(disks, 0, alloc,
                  params_for(StaticLayout::kIdentifiers, n, 16), keys, values);
  const auto& st = dict.build_stats();
  EXPECT_GT(st.sort_io.parallel_ios, 0u);
  // Sorting dominates: everything else is linear scans of the same data.
  EXPECT_LE(st.total_io.parallel_ios, 8 * st.sort_io.parallel_ios);
  EXPECT_LE(st.levels, 8u);
  EXPECT_EQ(st.assigned_fields, n * dict.fields_required());
}

TEST(StaticDict, DisksNeededByLayout) {
  auto p = params_for(StaticLayout::kIdentifiers, 16, 8);
  EXPECT_EQ(StaticDict::disks_needed(p), 16u);
  p.layout = StaticLayout::kHeadPointers;
  EXPECT_EQ(StaticDict::disks_needed(p), 32u);
}

TEST(StaticDict, DenseSequentialKeys) {
  auto disks = make_disks();
  pdm::DiskAllocator alloc;
  const std::uint64_t n = 1000;
  auto keys = workload::generate_keys(workload::KeyPattern::kDenseSequential,
                                      n, std::uint64_t{1} << 32, 17);
  std::vector<std::byte> values;
  for (Key k : keys) {
    auto v = value_for_key(k, 8);
    values.insert(values.end(), v.begin(), v.end());
  }
  StaticDict dict(disks, 0, alloc,
                  params_for(StaticLayout::kHeadPointers, n, 8), keys, values);
  for (Key k : keys) EXPECT_TRUE(dict.lookup(k).found);
  EXPECT_FALSE(dict.lookup(keys.front() - 1).found);
}

}  // namespace
}  // namespace pddict::core
