// Concurrency tests (paper §1.1: bucket-granular locking suffices because
// there is no central directory and records never move).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unordered_set>

#include "core/concurrent_dict.hpp"
#include "workload/workload.hpp"

namespace pddict::core {
namespace {

BasicDictParams params_for(std::uint64_t capacity) {
  BasicDictParams p;
  p.universe_size = std::uint64_t{1} << 36;
  p.capacity = capacity;
  p.value_bytes = 16;
  p.degree = 16;
  return p;
}

TEST(ConcurrentDict, ParallelInsertersDisjointRanges) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  const std::uint64_t per_thread = 500;
  const unsigned threads = 4;
  ConcurrentBasicDict dict(disks, 0, 0, params_for(per_thread * threads));

  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> inserted{0};
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        Key k = (static_cast<Key>(t) << 32) | (i + 1);
        if (dict.insert(k, value_for_key(k, 16))) ++inserted;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(inserted.load(), per_thread * threads);
  EXPECT_EQ(dict.size(), per_thread * threads);
  for (unsigned t = 0; t < threads; ++t)
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      Key k = (static_cast<Key>(t) << 32) | (i + 1);
      auto r = dict.lookup(k);
      ASSERT_TRUE(r.found) << "t=" << t << " i=" << i;
      ASSERT_EQ(r.value, value_for_key(k, 16));
    }
}

TEST(ConcurrentDict, MixedReadersWritersAndErasers) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  ConcurrentBasicDict dict(disks, 0, 0, params_for(4000));
  // Pre-populate a stable read set.
  for (Key k = 1; k <= 300; ++k) dict.insert(k, value_for_key(k, 16));

  std::atomic<bool> corrupt{false};
  std::thread reader([&] {
    for (int round = 0; round < 40 && !corrupt; ++round)
      for (Key k = 1; k <= 300; ++k) {
        auto r = dict.lookup(k);
        if (!r.found || r.value != value_for_key(k, 16)) corrupt = true;
      }
  });
  std::thread writer([&] {
    for (Key k = 10000; k < 11500; ++k)
      dict.insert(k, value_for_key(k, 16));
  });
  std::thread churner([&] {
    for (int round = 0; round < 30; ++round) {
      for (Key k = 20000; k < 20050; ++k) dict.insert(k, value_for_key(k, 16));
      for (Key k = 20000; k < 20050; ++k) dict.erase(k);
    }
  });
  reader.join();
  writer.join();
  churner.join();
  EXPECT_FALSE(corrupt.load()) << "stable records were disturbed";
  EXPECT_EQ(dict.size(), 300u + 1500u);
}

TEST(ConcurrentDict, RacingOnTheSameKeyInsertsExactlyOnce) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  ConcurrentBasicDict dict(disks, 0, 0, params_for(100));
  std::atomic<int> wins{0};
  std::vector<std::thread> racers;
  for (int t = 0; t < 8; ++t)
    racers.emplace_back([&, t] {
      if (dict.insert(42, value_for_key(42, 16, t))) ++wins;
    });
  for (auto& r : racers) r.join();
  EXPECT_EQ(wins.load(), 1) << "duplicate-insert race must have one winner";
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_TRUE(dict.lookup(42).found);
}

TEST(ConcurrentDict, LockFootprintIsBucketGranular) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  // Conflict probability between two random keys is ~d/stripe_size, so it
  // shrinks with the structure: size the table realistically (10^5 keys).
  ConcurrentBasicDict dict(disks, 0, 0, params_for(100000));
  // The conflict footprint of any operation is exactly d buckets, and for a
  // random pair of keys the footprints rarely intersect — the structural
  // reason concurrent operations almost never contend.
  util::SplitMix64 rng(5);
  std::uint64_t overlapping_pairs = 0;
  const int pairs = 2000;
  for (int i = 0; i < pairs; ++i) {
    Key a = rng.next_below(std::uint64_t{1} << 36);
    Key b = rng.next_below(std::uint64_t{1} << 36);
    auto fa = dict.lock_footprint(a);
    auto fb = dict.lock_footprint(b);
    EXPECT_EQ(fa.size(), 16u);
    std::unordered_set<std::uint64_t> sa(fa.begin(), fa.end());
    bool overlap = false;
    for (auto x : fb) overlap = overlap || sa.contains(x);
    overlapping_pairs += overlap;
  }
  // d^2 / v expected collisions: 256 / num_buckets — a few percent at most.
  EXPECT_LT(overlapping_pairs, pairs / 4);
}

}  // namespace
}  // namespace pddict::core
