// I/O attribution profiles: IoProbe reset/delta arithmetic, the
// self-vs-child rollup, hot-path ranking and the reconciliation property —
// the flame table's self column sums exactly to the run's IoStats delta.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/basic_dict.hpp"
#include "obs/profile.hpp"
#include "obs/span.hpp"
#include "pdm/disk_array.hpp"
#include "pdm/io_stats.hpp"
#include "workload/workload.hpp"

namespace pddict {
namespace {

void read_one(pdm::DiskArray& disks, std::uint32_t disk, std::uint64_t block) {
  std::vector<pdm::BlockAddr> addrs{{disk, block}};
  std::vector<pdm::Block> out;
  disks.read_batch(addrs, out);
}

// ---- IoProbe ----

TEST(IoProbe, DeltaAndResetRebase) {
  pdm::DiskArray disks(pdm::Geometry{4, 8, 8, 0});
  read_one(disks, 0, 0);  // history before the probe must not count
  pdm::IoProbe probe(disks);
  read_one(disks, 1, 0);
  read_one(disks, 2, 0);
  EXPECT_EQ(probe.ios(), 2u);
  EXPECT_EQ(probe.delta().blocks_read, 2u);
  probe.reset();
  EXPECT_EQ(probe.ios(), 0u);
  EXPECT_EQ(probe.delta(), pdm::IoStats{});
  read_one(disks, 3, 0);
  EXPECT_EQ(probe.ios(), 1u);  // only post-reset I/O
  EXPECT_EQ(probe.delta().read_rounds, 1u);
}

TEST(IoProbe, NestedProbesDoNotDoubleCount) {
  // Regression test: summing sibling scopes' costs used to double-count the
  // rounds a nested probe measured. exclusive() subtracts closed children,
  // so a probe tree partitions the run's I/O exactly once.
  pdm::DiskArray disks(pdm::Geometry{4, 8, 8, 0});
  pdm::IoProbe outer(disks);
  read_one(disks, 0, 0);  // outer's own work: 1 round
  {
    pdm::IoProbe inner(disks);
    read_one(disks, 1, 0);
    read_one(disks, 2, 0);
    EXPECT_EQ(inner.ios(), 2u);
    EXPECT_EQ(inner.exclusive().parallel_ios, 2u);  // no children of its own
  }
  read_one(disks, 3, 0);  // more of outer's own work
  EXPECT_EQ(outer.ios(), 4u);                       // delta() stays inclusive
  EXPECT_EQ(outer.exclusive().parallel_ios, 2u);    // child's 2 rounds excluded
  EXPECT_EQ(outer.exclusive().blocks_read, 2u);

  // reset() rebases and forgets closed children.
  outer.reset();
  read_one(disks, 0, 1);
  EXPECT_EQ(outer.exclusive().parallel_ios, 1u);
}

TEST(IoProbe, ExclusiveHandlesGrandchildren) {
  // A child that itself had children folds its *inclusive* delta into the
  // parent exactly once — grandchild I/O must not be subtracted twice.
  pdm::DiskArray disks(pdm::Geometry{4, 8, 8, 0});
  pdm::IoProbe outer(disks);
  {
    pdm::IoProbe mid(disks);
    read_one(disks, 0, 0);
    {
      pdm::IoProbe leaf(disks);
      read_one(disks, 1, 0);
    }
    EXPECT_EQ(mid.exclusive().parallel_ios, 1u);
  }
  read_one(disks, 2, 0);
  EXPECT_EQ(outer.ios(), 3u);
  EXPECT_EQ(outer.exclusive().parallel_ios, 1u);  // only its own round
}

TEST(IoStats, DifferenceIsFieldwise) {
  pdm::IoStats a{10, 6, 4, 100, 50};
  pdm::IoStats b{3, 2, 1, 40, 10};
  pdm::IoStats d = a - b;
  EXPECT_EQ(d.parallel_ios, 7u);
  EXPECT_EQ(d.read_rounds, 4u);
  EXPECT_EQ(d.write_rounds, 3u);
  EXPECT_EQ(d.blocks_read, 60u);
  EXPECT_EQ(d.blocks_written, 40u);
  b += d;
  EXPECT_EQ(b, a);  // (a - b) + b round-trips
}

// ---- self-vs-child rollup on hand-built trees ----

obs::SpanAggregator::Node node(std::uint64_t ios, std::uint64_t blocks,
                               std::uint32_t depth, std::uint64_t count = 1,
                               std::uint64_t wall_ns = 0) {
  obs::SpanAggregator::Node n;
  n.count = count;
  n.io.parallel_ios = ios;
  n.io.read_rounds = ios;
  n.io.blocks_read = blocks;
  n.wall_ns = wall_ns;
  n.depth = depth;
  return n;
}

TEST(Profile, SelfIsTotalMinusDirectChildren) {
  std::map<std::string, obs::SpanAggregator::Node> nodes;
  nodes["a"] = node(10, 100, 0, 1, 1000);
  nodes["a/b"] = node(4, 40, 1, 2, 300);
  nodes["a/b/c"] = node(1, 10, 2, 1, 50);
  nodes["a/x"] = node(3, 30, 1, 1, 200);
  nodes["d"] = node(5, 50, 0);
  auto profile = obs::Profile::from_nodes(nodes);

  std::map<std::string, obs::ProfileNode> by_path;
  for (const auto& n : profile.nodes()) by_path[n.path] = n;
  ASSERT_EQ(by_path.size(), 5u);
  EXPECT_EQ(by_path["a"].self.parallel_ios, 3u);    // 10 - 4 - 3
  EXPECT_EQ(by_path["a"].self.blocks_read, 30u);    // 100 - 40 - 30
  EXPECT_EQ(by_path["a"].self_wall_ns, 500u);       // 1000 - 300 - 200
  EXPECT_EQ(by_path["a/b"].self.parallel_ios, 3u);  // 4 - 1 (grandchild
  EXPECT_EQ(by_path["a/b/c"].self.parallel_ios, 1u);  // charged to b, not a)
  EXPECT_EQ(by_path["a/x"].self.parallel_ios, 3u);  // leaf: self == total
  EXPECT_EQ(by_path["d"].self.parallel_ios, 5u);

  // Reconciliation: selves sum back to the roots' totals.
  EXPECT_EQ(profile.self_sum().parallel_ios, 15u);
  EXPECT_EQ(profile.self_sum().blocks_read, 150u);
}

TEST(Profile, SelfSubtractionSaturatesAtZero) {
  // Concurrent attribution can charge a child more than its parent (another
  // thread's I/O lands in the child's delta); self must clamp, not wrap.
  std::map<std::string, obs::SpanAggregator::Node> nodes;
  nodes["p"] = node(2, 20, 0);
  nodes["p/q"] = node(5, 50, 1);
  auto profile = obs::Profile::from_nodes(nodes);
  for (const auto& n : profile.nodes()) {
    if (n.path == "p") {
      EXPECT_EQ(n.self.parallel_ios, 0u);
      EXPECT_EQ(n.self.blocks_read, 0u);
    }
    if (n.path == "p/q") {
      EXPECT_EQ(n.self.parallel_ios, 5u);
    }
  }
}

TEST(Profile, SimilarPrefixIsNotAChild) {
  // "ab" must not be treated as a child of "a" (prefix without slash).
  std::map<std::string, obs::SpanAggregator::Node> nodes;
  nodes["a"] = node(4, 0, 0);
  nodes["ab"] = node(3, 0, 0);
  nodes["a/b"] = node(1, 0, 1);
  auto profile = obs::Profile::from_nodes(nodes);
  for (const auto& n : profile.nodes()) {
    if (n.path == "a") {
      EXPECT_EQ(n.self.parallel_ios, 3u);  // 4 - 1
    }
    if (n.path == "ab") {
      EXPECT_EQ(n.self.parallel_ios, 3u);  // untouched
    }
  }
  EXPECT_EQ(profile.self_sum().parallel_ios, 7u);  // two roots: 4 + 3
}

TEST(Profile, HotPathsRankBySelfCost) {
  std::map<std::string, obs::SpanAggregator::Node> nodes;
  nodes["op"] = node(12, 0, 0);       // self 12 - 10 = 2
  nodes["op/hot"] = node(10, 90, 1);  // self 10
  nodes["cold"] = node(1, 5, 0);      // self 1
  auto profile = obs::Profile::from_nodes(nodes);
  auto top = profile.hot_paths(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].path, "op/hot");
  EXPECT_EQ(top[1].path, "op");
  EXPECT_EQ(profile.hot_paths(0).size(), 3u);  // k = 0 -> everything
  // Machine-readable export preserves the ranking.
  obs::Json j = profile.to_json(2);
  ASSERT_TRUE(j.is_array());
  ASSERT_EQ(j.as_array().size(), 2u);
  EXPECT_EQ(j.as_array()[0].find("path")->as_string(), "op/hot");
  EXPECT_EQ(j.as_array()[0].find("self_parallel_ios")->as_int(), 10);
  EXPECT_EQ(j.as_array()[0].find("total_parallel_ios")->as_int(), 10);
}

// ---- reconciliation against a real dictionary workload ----

TEST(Profile, FlameTotalsReconcileWithIoStatsDelta) {
  pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
  auto agg = std::make_shared<obs::SpanAggregator>();
  disks.set_sink(agg);
  core::BasicDictParams p;
  p.universe_size = std::uint64_t{1} << 36;
  p.capacity = 800;
  p.value_bytes = 8;
  p.degree = 16;
  pdm::IoStats before = disks.stats();
  core::BasicDict dict(disks, 0, 0, p);
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, 600,
                                      p.universe_size, 31);
  {
    obs::Span session(disks, "session");  // root span covers everything
    {
      obs::Span phase(disks, "inserts");
      for (core::Key k : keys) dict.insert(k, core::value_for_key(k, 8));
    }
    {
      obs::Span phase(disks, "lookups");
      for (core::Key k : keys) EXPECT_TRUE(dict.lookup(k).found);
    }
  }
  pdm::IoStats delta = disks.stats() - before;
  auto profile = agg->profile();
  // Every I/O ran under the root span, so the self columns must sum exactly
  // to the run's IoStats delta — the property that makes the flame table a
  // partition of the real cost rather than an estimate.
  EXPECT_EQ(profile.self_sum(), delta);
  std::string flame = profile.render_flame(10);
  EXPECT_NE(flame.find("session/inserts"), std::string::npos) << flame;
  EXPECT_NE(flame.find("session/lookups"), std::string::npos) << flame;
  // SpanAggregator::profile() and Profile::from_nodes agree.
  auto direct = obs::Profile::from_nodes(agg->nodes());
  EXPECT_EQ(direct.self_sum(), profile.self_sum());
  disks.set_sink(nullptr);
}

}  // namespace
}  // namespace pddict
