// Property-style parameterized sweeps over the library's invariants:
// codec round-trips under random operation sequences, statistical properties
// of the hash family, sorting under adversarial input orders, and
// static-dictionary invariants across its parameter space.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>

#include "core/static_dict.hpp"
#include "pdm/allocator.hpp"
#include "pdm/ext_sort.hpp"
#include "util/bits.hpp"
#include "util/hash.hpp"
#include "util/prng.hpp"
#include "workload/workload.hpp"

namespace pddict {
namespace {

// ---- BitVector fuzz: random field writes vs. a reference bit model ----

class BitVectorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitVectorFuzz, MatchesReferenceModel) {
  util::SplitMix64 rng(GetParam());
  const std::size_t bits = 777;
  util::BitVector bv(bits);
  std::vector<bool> ref(bits, false);
  for (int op = 0; op < 2000; ++op) {
    unsigned width = 1 + static_cast<unsigned>(rng.next_below(64));
    std::size_t pos = rng.next_below(bits - width);
    std::uint64_t value = rng.next();
    if (width < 64) value &= (std::uint64_t{1} << width) - 1;
    bv.set_field(pos, width, value);
    for (unsigned i = 0; i < width; ++i) ref[pos + i] = (value >> i) & 1;
    // Verify a random window.
    unsigned w2 = 1 + static_cast<unsigned>(rng.next_below(64));
    std::size_t p2 = rng.next_below(bits - w2);
    std::uint64_t got = bv.get_field(p2, w2);
    for (unsigned i = 0; i < w2; ++i)
      ASSERT_EQ((got >> i) & 1, static_cast<std::uint64_t>(ref[p2 + i]))
          << "op " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVectorFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 1234));

// ---- unary + field mixed codec fuzz ----

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, WriterReaderAgreeOnRandomStreams) {
  util::SplitMix64 rng(GetParam());
  util::BitVector bv(4096);
  struct Item {
    bool unary;
    std::uint64_t value;
    unsigned width;
  };
  std::vector<Item> items;
  util::BitWriter w(bv, 7, 4096);
  while (w.remaining() > 128) {
    if (rng.next_below(2)) {
      std::uint64_t v = rng.next_below(40);
      w.write_unary(v);
      items.push_back({true, v, 0});
    } else {
      unsigned width = 1 + static_cast<unsigned>(rng.next_below(64));
      std::uint64_t v = rng.next();
      if (width < 64) v &= (std::uint64_t{1} << width) - 1;
      w.write_field(width, v);
      items.push_back({false, v, width});
    }
  }
  util::BitReader r(bv, 7, 4096);
  for (const auto& item : items) {
    if (item.unary)
      ASSERT_EQ(r.read_unary(), item.value);
    else
      ASSERT_EQ(r.read_field(item.width), item.value);
  }
  EXPECT_EQ(r.position(), w.position());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(11, 22, 33, 44));

// ---- PolyHash: empirical pairwise independence ----

TEST(PolyHashProperty, PairwiseCollisionRateMatchesUniform) {
  // For a 2-wise independent family, Pr[h(x) = h(y)] = 1/range for x != y.
  const std::uint64_t range = 256;
  const int trials = 60000;
  util::SplitMix64 rng(5);
  int collisions = 0;
  util::PolyHash h(2, range, 777);
  for (int t = 0; t < trials; ++t) {
    std::uint64_t x = rng.next(), y = rng.next();
    if (x == y) continue;
    collisions += (h(x) == h(y));
  }
  double rate = static_cast<double>(collisions) / trials;
  EXPECT_NEAR(rate, 1.0 / range, 1.5e-3);
}

TEST(PolyHashProperty, HigherIndependenceStillUniformPerBucket) {
  const std::uint64_t range = 32;
  util::PolyHash h(16, range, 9);
  std::vector<int> counts(range, 0);
  for (std::uint64_t x = 0; x < 32000; ++x) ++counts[h(x * 2654435761u)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 250);
}

// ---- external sort under adversarial input orders ----

class SortOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(SortOrderTest, SortsRegardlessOfInputOrder) {
  pdm::DiskArray disks(pdm::Geometry{4, 16, 8, 0});
  pdm::DiskAllocator alloc;
  const std::size_t rec = 16;
  const std::uint64_t n = 1500;
  std::uint64_t blocks =
      n / pdm::records_per_logical_block(disks.geometry(), rec) + 2;
  pdm::StripedView in(disks, alloc.reserve(blocks), blocks);
  pdm::StripedView scratch(disks, alloc.reserve(blocks), blocks);
  std::vector<std::uint64_t> keys(n);
  switch (GetParam()) {
    case 0:  // already sorted
      for (std::uint64_t i = 0; i < n; ++i) keys[i] = i;
      break;
    case 1:  // reverse sorted
      for (std::uint64_t i = 0; i < n; ++i) keys[i] = n - i;
      break;
    case 2:  // all equal
      std::fill(keys.begin(), keys.end(), 7);
      break;
    case 3: {  // organ pipe
      for (std::uint64_t i = 0; i < n; ++i)
        keys[i] = i < n / 2 ? i : n - i;
      break;
    }
    default: {  // few distinct values
      util::SplitMix64 rng(3);
      for (auto& k : keys) k = rng.next_below(4);
      break;
    }
  }
  std::vector<std::byte> data(n * rec);
  for (std::uint64_t i = 0; i < n; ++i)
    std::memcpy(data.data() + i * rec, &keys[i], 8);
  pdm::write_records(in, data, rec);
  pdm::external_sort(in, scratch, n, rec,
                     [](std::span<const std::byte> r) {
                       std::uint64_t k;
                       std::memcpy(&k, r.data(), 8);
                       return k;
                     },
                     1024);
  auto out = pdm::read_records(in, n, rec);
  std::sort(keys.begin(), keys.end());
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t k;
    std::memcpy(&k, out.data() + i * rec, 8);
    ASSERT_EQ(k, keys[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, SortOrderTest, ::testing::Range(0, 5));

// ---- static dictionary invariants across its parameter space ----

struct StaticParamCase {
  double stripe_factor;
  core::BuildAlgorithm algorithm;
  core::StaticLayout layout;
  std::uint32_t degree;
};

class StaticParamSweep : public ::testing::TestWithParam<StaticParamCase> {};

TEST_P(StaticParamSweep, OneProbeInvariantAcrossParameterSpace) {
  auto [factor, algorithm, layout, degree] = GetParam();
  pdm::DiskArray disks(pdm::Geometry{2 * degree, 64, 16, 0});
  pdm::DiskAllocator alloc;
  core::StaticDictParams p;
  p.universe_size = std::uint64_t{1} << 36;
  p.capacity = 400;
  p.value_bytes = 16;
  p.degree = degree;
  p.layout = layout;
  p.algorithm = algorithm;
  p.stripe_factor = factor;
  auto keys = workload::generate_keys(workload::KeyPattern::kSparseRandom, 400,
                                      p.universe_size, degree * 7);
  std::vector<std::byte> values;
  for (auto k : keys) {
    auto v = core::value_for_key(k, 16);
    values.insert(values.end(), v.begin(), v.end());
  }
  core::StaticDict dict(disks, 0, alloc, p, keys, values);
  for (auto k : keys) {
    pdm::IoProbe probe(disks);
    auto r = dict.lookup(k);
    ASSERT_EQ(probe.ios(), 1u);
    ASSERT_TRUE(r.found);
    ASSERT_EQ(r.value, core::value_for_key(k, 16));
  }
  // Uniqueness of field ownership: total assigned fields = n * need.
  EXPECT_EQ(dict.build_stats().assigned_fields,
            400u * dict.fields_required());
}

INSTANTIATE_TEST_SUITE_P(
    Params, StaticParamSweep,
    ::testing::Values(
        StaticParamCase{8.0, core::BuildAlgorithm::kSortBased,
                        core::StaticLayout::kIdentifiers, 16},
        StaticParamCase{4.0, core::BuildAlgorithm::kSortBased,
                        core::StaticLayout::kHeadPointers, 16},
        StaticParamCase{2.5, core::BuildAlgorithm::kSortBased,
                        core::StaticLayout::kIdentifiers, 16},
        StaticParamCase{4.0, core::BuildAlgorithm::kDirect,
                        core::StaticLayout::kIdentifiers, 16},
        StaticParamCase{4.0, core::BuildAlgorithm::kDirect,
                        core::StaticLayout::kHeadPointers, 16},
        StaticParamCase{4.0, core::BuildAlgorithm::kSortBased,
                        core::StaticLayout::kIdentifiers, 24},
        StaticParamCase{4.0, core::BuildAlgorithm::kDirect,
                        core::StaticLayout::kIdentifiers, 32}));

// ---- workload determinism across modules ----

TEST(Determinism, EndToEndRunsAreBitIdentical) {
  // Two complete runs of the same seeded pipeline must produce identical
  // disk images — the property every EXPERIMENTS.md number relies on.
  auto run = [] {
    pdm::DiskArray disks(pdm::Geometry{16, 64, 16, 0});
    core::BasicDictParams p;
    p.universe_size = 1 << 24;
    p.capacity = 500;
    p.value_bytes = 8;
    p.degree = 16;
    core::BasicDict dict(disks, 0, 0, p);
    auto keys = workload::generate_keys(workload::KeyPattern::kClustered, 500,
                                        1 << 24, 42);
    for (auto k : keys) dict.insert(k, core::value_for_key(k, 8));
    for (auto k : keys)
      if (k % 3 == 0) dict.erase(k);
    // Serialize the reachable image.
    std::vector<std::byte> image;
    for (std::uint32_t d = 0; d < 16; ++d)
      for (std::uint64_t b = 0; b < dict.blocks_per_disk(); ++b) {
        auto blk = disks.peek({d, b});
        image.insert(image.end(), blk.begin(), blk.end());
      }
    return image;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace pddict
