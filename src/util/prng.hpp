// Deterministic pseudo-random number generation.
//
// Everything in this library must be reproducible run-to-run, so no
// std::random_device is used anywhere; all randomness flows from explicit
// 64-bit seeds through SplitMix64 (a full-period, well-mixed generator that is
// also our hash finalizer).
#pragma once

#include <cstdint>

namespace pddict::util {

/// SplitMix64 finalizer: bijective 64-bit mixing function.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Minimal deterministic PRNG (SplitMix64 stream).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() { return mix64(state_ += 0x9e3779b97f4a7c15ULL); }

  /// Uniform value in [0, bound) with negligible modulo bias for bound << 2^64.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // UniformRandomBitGenerator interface, so the PRNG plugs into <algorithm>.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  constexpr result_type operator()() { return next(); }

 private:
  std::uint64_t state_;
};

}  // namespace pddict::util
