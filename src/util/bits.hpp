// Bit-level storage used by the field arrays of the Section 4.2 dictionaries.
//
// BitVector stores a flat sequence of bits and supports reading/writing
// fixed-width fields (up to 64 bits) at arbitrary bit offsets. BitReader /
// BitWriter provide sequential access for the variable-length encodings of the
// paper (the unary relative pointers of Theorem 6 case (a)).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pddict::util {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  std::size_t size_bits() const { return num_bits_; }
  std::size_t size_words() const { return words_.size(); }

  void resize(std::size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign((num_bits + 63) / 64, 0);
  }

  void clear_all();

  bool get_bit(std::size_t pos) const {
    return (words_[pos >> 6] >> (pos & 63)) & 1u;
  }

  void set_bit(std::size_t pos, bool value) {
    std::uint64_t mask = std::uint64_t{1} << (pos & 63);
    if (value)
      words_[pos >> 6] |= mask;
    else
      words_[pos >> 6] &= ~mask;
  }

  /// Read `width` bits (0 < width <= 64) starting at bit offset `pos`.
  std::uint64_t get_field(std::size_t pos, unsigned width) const;

  /// Write the low `width` bits of `value` at bit offset `pos`.
  void set_field(std::size_t pos, unsigned width, std::uint64_t value);

  /// Raw word access (serialization onto disk blocks).
  const std::uint64_t* data() const { return words_.data(); }
  std::uint64_t* data() { return words_.data(); }

  bool operator==(const BitVector&) const = default;

 private:
  std::size_t num_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Copy `nbits` bits from a raw byte buffer (bit offset `src_bit`, LSB-first
/// within each byte) into a BitVector at `dst_bit`. Used to lift bit-packed
/// fields out of disk blocks.
void copy_bits_from_bytes(const std::byte* src, std::size_t src_bit,
                          BitVector& dst, std::size_t dst_bit,
                          std::size_t nbits);

/// Copy `nbits` bits from a BitVector into a raw byte buffer.
void copy_bits_to_bytes(const BitVector& src, std::size_t src_bit,
                        std::byte* dst, std::size_t dst_bit, std::size_t nbits);

/// Sequential reader over a BitVector region.
class BitReader {
 public:
  BitReader(const BitVector& bv, std::size_t start_bit, std::size_t end_bit)
      : bv_(&bv), pos_(start_bit), end_(end_bit) {}

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return end_ - pos_; }

  bool read_bit() { return bv_->get_bit(pos_++); }

  std::uint64_t read_field(unsigned width) {
    std::uint64_t v = bv_->get_field(pos_, width);
    pos_ += width;
    return v;
  }

  /// Unary code: `n` one-bits followed by a zero-bit decodes to n.
  /// Returns the decoded value; consumes the terminating zero.
  std::uint64_t read_unary();

 private:
  const BitVector* bv_;
  std::size_t pos_;
  std::size_t end_;
};

/// Sequential writer over a BitVector region.
class BitWriter {
 public:
  BitWriter(BitVector& bv, std::size_t start_bit, std::size_t end_bit)
      : bv_(&bv), pos_(start_bit), end_(end_bit) {}

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return end_ - pos_; }

  void write_bit(bool b) { bv_->set_bit(pos_++, b); }

  void write_field(unsigned width, std::uint64_t value) {
    bv_->set_field(pos_, width, value);
    pos_ += width;
  }

  /// Unary code matching BitReader::read_unary.
  void write_unary(std::uint64_t n);

 private:
  BitVector* bv_;
  std::size_t pos_;
  std::size_t end_;
};

}  // namespace pddict::util
