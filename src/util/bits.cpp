#include "util/bits.hpp"

#include <algorithm>
#include <cassert>

namespace pddict::util {

void BitVector::clear_all() { std::fill(words_.begin(), words_.end(), 0); }

std::uint64_t BitVector::get_field(std::size_t pos, unsigned width) const {
  assert(width >= 1 && width <= 64);
  assert(pos + width <= num_bits_);
  std::size_t word = pos >> 6;
  unsigned offset = pos & 63;
  std::uint64_t lo = words_[word] >> offset;
  if (offset + width > 64) {
    lo |= words_[word + 1] << (64 - offset);
  }
  if (width == 64) return lo;
  return lo & ((std::uint64_t{1} << width) - 1);
}

void BitVector::set_field(std::size_t pos, unsigned width, std::uint64_t value) {
  assert(width >= 1 && width <= 64);
  assert(pos + width <= num_bits_);
  if (width < 64) value &= (std::uint64_t{1} << width) - 1;
  std::size_t word = pos >> 6;
  unsigned offset = pos & 63;
  std::uint64_t lo_mask =
      (width == 64 && offset == 0) ? ~std::uint64_t{0}
      : ((offset + width >= 64)
             ? (~std::uint64_t{0} << offset)
             : (((std::uint64_t{1} << width) - 1) << offset));
  words_[word] = (words_[word] & ~lo_mask) | ((value << offset) & lo_mask);
  if (offset + width > 64) {
    unsigned hi_bits = offset + width - 64;
    std::uint64_t hi_mask = (std::uint64_t{1} << hi_bits) - 1;
    words_[word + 1] =
        (words_[word + 1] & ~hi_mask) | ((value >> (64 - offset)) & hi_mask);
  }
}

namespace {

std::uint64_t load_bits_from_bytes(const std::byte* src, std::size_t bit,
                                   unsigned width) {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < width; ++i) {
    std::size_t p = bit + i;
    std::uint64_t b =
        (static_cast<std::uint64_t>(src[p >> 3]) >> (p & 7)) & 1u;
    v |= b << i;
  }
  return v;
}

void store_bits_to_bytes(std::byte* dst, std::size_t bit, unsigned width,
                         std::uint64_t v) {
  for (unsigned i = 0; i < width; ++i) {
    std::size_t p = bit + i;
    std::byte mask = std::byte{1} << (p & 7);
    if ((v >> i) & 1u)
      dst[p >> 3] |= mask;
    else
      dst[p >> 3] &= ~mask;
  }
}

}  // namespace

void copy_bits_from_bytes(const std::byte* src, std::size_t src_bit,
                          BitVector& dst, std::size_t dst_bit,
                          std::size_t nbits) {
  std::size_t done = 0;
  while (done < nbits) {
    unsigned chunk = static_cast<unsigned>(std::min<std::size_t>(64, nbits - done));
    dst.set_field(dst_bit + done, chunk,
                  load_bits_from_bytes(src, src_bit + done, chunk));
    done += chunk;
  }
}

void copy_bits_to_bytes(const BitVector& src, std::size_t src_bit,
                        std::byte* dst, std::size_t dst_bit,
                        std::size_t nbits) {
  std::size_t done = 0;
  while (done < nbits) {
    unsigned chunk = static_cast<unsigned>(std::min<std::size_t>(64, nbits - done));
    store_bits_to_bytes(dst, dst_bit + done, chunk,
                        src.get_field(src_bit + done, chunk));
    done += chunk;
  }
}

std::uint64_t BitReader::read_unary() {
  std::uint64_t n = 0;
  while (pos_ < end_ && bv_->get_bit(pos_)) {
    ++n;
    ++pos_;
  }
  assert(pos_ < end_ && "unary code missing terminator");
  ++pos_;  // consume the terminating 0-bit
  return n;
}

void BitWriter::write_unary(std::uint64_t n) {
  assert(pos_ + n + 1 <= end_ && "unary code overflows region");
  for (std::uint64_t i = 0; i < n; ++i) bv_->set_bit(pos_++, true);
  bv_->set_bit(pos_++, false);
}

}  // namespace pddict::util
