#include "util/hash.hpp"

#include <cassert>

namespace pddict::util {

PolyHash::PolyHash(unsigned independence, std::uint64_t range,
                   std::uint64_t seed)
    : range_(range) {
  assert(independence >= 1);
  assert(range >= 1);
  SplitMix64 rng(seed);
  coeffs_.resize(independence);
  for (auto& c : coeffs_) c = rng.next() % kMersenne61;
  // Force full degree so independence is genuinely k-wise.
  if (coeffs_.back() == 0) coeffs_.back() = 1;
}

std::uint64_t PolyHash::operator()(std::uint64_t x) const {
  std::uint64_t xm = x % kMersenne61;
  std::uint64_t acc = 0;
  for (auto it = coeffs_.rbegin(); it != coeffs_.rend(); ++it) {
    acc = addmod61(mulmod61(acc, xm), *it);
  }
  return acc % range_;
}

}  // namespace pddict::util
