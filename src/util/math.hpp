// Integer math helpers shared across the library.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <type_traits>

namespace pddict::util {

/// Ceiling division for non-negative integers.
template <typename T>
  requires std::is_unsigned_v<T>
constexpr T ceil_div(T a, T b) {
  assert(b != 0);
  return (a + b - 1) / b;
}

/// floor(log2(x)) for x >= 1.
constexpr unsigned floor_log2(std::uint64_t x) {
  assert(x >= 1);
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/// ceil(log2(x)) for x >= 1. ceil_log2(1) == 0.
constexpr unsigned ceil_log2(std::uint64_t x) {
  assert(x >= 1);
  return x == 1 ? 0u : floor_log2(x - 1) + 1u;
}

/// Number of bits needed to store values in [0, n). bits_for(1) == 1 so that a
/// field always has positive width.
constexpr unsigned bits_for(std::uint64_t n) {
  assert(n >= 1);
  return n == 1 ? 1u : ceil_log2(n);
}

constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

constexpr std::uint64_t round_up_pow2(std::uint64_t x) {
  return x <= 1 ? 1 : std::uint64_t{1} << ceil_log2(x);
}

/// Round `x` up to the next multiple of `m` (m > 0).
constexpr std::uint64_t round_up(std::uint64_t x, std::uint64_t m) {
  assert(m != 0);
  return ceil_div(x, m) * m;
}

/// Integer power with 64-bit wraparound semantics (inputs kept small by callers).
constexpr std::uint64_t ipow(std::uint64_t base, unsigned exp) {
  std::uint64_t r = 1;
  while (exp--) r *= base;
  return r;
}

}  // namespace pddict::util
