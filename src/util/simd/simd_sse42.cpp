// SSE4.2 kernel variant: 2 x u64 lanes.
//
// This tier vectorizes the packed (stride == 8) scans and the two hash
// batches; strided gathers do not exist before AVX2, so the generic-stride
// scan and the candidate select use the reference loops (trivially
// bit-identical). Compiled with -msse4.2 only in this TU.
#include <nmmintrin.h>

#include "util/simd/simd_internal.hpp"
#include "util/simd/simd_tables.hpp"

namespace pddict::util::simd::detail {

namespace {

// 64-bit lane-wise a*b (mod 2^64): SSE has no 64-bit mullo, so synthesize it
// from 32x32->64 partial products. b's high word contributes b_hi*a_lo only
// (everything above bit 63 drops).
inline __m128i mullo64(__m128i a, __m128i b) {
  __m128i lo = _mm_mul_epu32(a, b);
  __m128i mid = _mm_add_epi64(_mm_mul_epu32(_mm_srli_epi64(a, 32), b),
                              _mm_mul_epu32(a, _mm_srli_epi64(b, 32)));
  return _mm_add_epi64(lo, _mm_slli_epi64(mid, 32));
}

// Lane-wise SplitMix64 finalizer, bit-identical to util::mix64.
inline __m128i mix64v(__m128i z) {
  z = _mm_add_epi64(z, _mm_set1_epi64x(0x9e3779b97f4a7c15ULL));
  z = mullo64(_mm_xor_si128(z, _mm_srli_epi64(z, 30)),
              _mm_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  z = mullo64(_mm_xor_si128(z, _mm_srli_epi64(z, 27)),
              _mm_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm_xor_si128(z, _mm_srli_epi64(z, 31));
}

std::uint32_t sse42_find_key(const std::byte* base, std::size_t stride,
                             std::uint32_t count, std::uint64_t key) {
  if (stride != sizeof(std::uint64_t))
    return ref_find_key(base, stride, count, key);
  const __m128i vkey = _mm_set1_epi64x(static_cast<long long>(key));
  std::uint32_t s = 0;
  for (; s + 2 <= count; s += 2) {
    __m128i keys = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(base + s * sizeof(std::uint64_t)));
    int m = _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(keys, vkey)));
    if (m) return s + static_cast<std::uint32_t>(__builtin_ctz(m));
  }
  for (; s < count; ++s)
    if (ref_load_key(base + s * sizeof(std::uint64_t)) == key) return s;
  return kNotFound;
}

std::uint32_t sse42_count_key(const std::byte* base, std::size_t stride,
                              std::uint32_t count, std::uint64_t key) {
  if (stride != sizeof(std::uint64_t))
    return ref_count_key(base, stride, count, key);
  const __m128i vkey = _mm_set1_epi64x(static_cast<long long>(key));
  __m128i acc = _mm_setzero_si128();  // per-lane match counts (eq mask = -1)
  std::uint32_t s = 0;
  for (; s + 2 <= count; s += 2) {
    __m128i keys = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(base + s * sizeof(std::uint64_t)));
    acc = _mm_sub_epi64(acc, _mm_cmpeq_epi64(keys, vkey));
  }
  std::uint32_t n = static_cast<std::uint32_t>(
      _mm_cvtsi128_si64(acc) + _mm_extract_epi64(acc, 1));
  for (; s < count; ++s)
    n += ref_load_key(base + s * sizeof(std::uint64_t)) == key;
  return n;
}

void sse42_hash_salts(std::uint64_t x, std::uint64_t salt_base,
                      std::uint32_t d, std::uint64_t* out) {
  const std::uint64_t inner = util::mix64(x ^ 0x2545f4914f6cdd1dULL);
  const __m128i vinner = _mm_set1_epi64x(static_cast<long long>(inner));
  std::uint32_t i = 0;
  for (; i + 2 <= d; i += 2) {
    __m128i salts =
        _mm_set_epi64x(static_cast<long long>(salt_base + i + 1),
                       static_cast<long long>(salt_base + i));
    __m128i h = mix64v(_mm_xor_si128(vinner, salts));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), h);
  }
  for (; i < d; ++i) out[i] = util::mix64(inner ^ (salt_base + i));
}

void sse42_mix_keys(const std::uint64_t* xs, std::size_t n, std::uint64_t salt,
                    std::uint64_t* out) {
  const __m128i vsalt = _mm_set1_epi64x(static_cast<long long>(salt));
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    __m128i keys =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(xs + j));
    __m128i h = mix64v(_mm_xor_si128(keys, vsalt));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + j), h);
  }
  for (; j < n; ++j) out[j] = util::mix64(xs[j] ^ salt);
}

}  // namespace

const Kernels kSse42Kernels = {
    sse42_find_key,  sse42_count_key,
    sse42_hash_salts, sse42_mix_keys,
    // No gather before AVX2: the reference select is already the best here.
    [](const std::uint64_t* loads, const std::uint64_t* candidates,
       std::uint32_t count) {
      return ref_min_load_select(loads, candidates, count);
    },
};

}  // namespace pddict::util::simd::detail
