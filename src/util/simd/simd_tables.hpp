// Internal: the per-ISA kernel tables each variant TU exports.
//
// simd.cpp (the dispatcher) is the only consumer. Which tables exist is a
// build-time fact (CMake option PDDICT_SIMD_LEVELS -> PDDICT_SIMD_HAVE_*
// definitions on the pddict_util target); which one runs is a runtime fact
// (CPUID capped by the PDDICT_SIMD environment override).
#pragma once

#include "util/simd/simd.hpp"

namespace pddict::util::simd::detail {

extern const Kernels kScalarKernels;
#ifdef PDDICT_SIMD_HAVE_SSE42
extern const Kernels kSse42Kernels;
#endif
#ifdef PDDICT_SIMD_HAVE_AVX2
extern const Kernels kAvx2Kernels;
#endif
#ifdef PDDICT_SIMD_HAVE_AVX512
extern const Kernels kAvx512Kernels;
#endif

}  // namespace pddict::util::simd::detail
