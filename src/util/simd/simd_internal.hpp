// Internal-linkage scalar reference kernels, shared by every variant TU.
//
// Included ONLY by the simd_*.cpp translation units. Everything here lives in
// an anonymous namespace on purpose: TUs compiled with -mavx2/-mavx512f get
// their own private copies, so the compiler can never merge (or auto-
// vectorize with a wider ISA) a symbol that a scalar-only TU also emits —
// the dispatch seam stays the one and only place ISA selection happens.
//
// These loops are the semantic ground truth: every vector kernel must return
// exactly what they return, for every input (tests/simd_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "util/prng.hpp"

namespace pddict::util::simd {
namespace {

inline std::uint64_t ref_load_key(const std::byte* p) {
  std::uint64_t k;
  std::memcpy(&k, p, sizeof(k));  // alignment-agnostic by construction
  return k;
}

inline std::uint32_t ref_find_key(const std::byte* base, std::size_t stride,
                                  std::uint32_t count, std::uint64_t key) {
  for (std::uint32_t s = 0; s < count; ++s)
    if (ref_load_key(base + s * stride) == key) return s;
  return ~std::uint32_t{0};
}

inline std::uint32_t ref_count_key(const std::byte* base, std::size_t stride,
                                   std::uint32_t count, std::uint64_t key) {
  std::uint32_t n = 0;
  for (std::uint32_t s = 0; s < count; ++s)
    n += ref_load_key(base + s * stride) == key;
  return n;
}

inline void ref_hash_salts(std::uint64_t x, std::uint64_t salt_base,
                           std::uint32_t d, std::uint64_t* out) {
  // salted_mix(x, salt) = mix64(mix64(x ^ C) ^ salt): the inner mix is
  // salt-independent, so it is hoisted here exactly as the vector variants
  // hoist it — same operations, same results.
  const std::uint64_t inner = util::mix64(x ^ 0x2545f4914f6cdd1dULL);
  for (std::uint32_t i = 0; i < d; ++i)
    out[i] = util::mix64(inner ^ (salt_base + i));
}

inline void ref_mix_keys(const std::uint64_t* xs, std::size_t n,
                         std::uint64_t salt, std::uint64_t* out) {
  for (std::size_t j = 0; j < n; ++j) out[j] = util::mix64(xs[j] ^ salt);
}

inline std::uint32_t ref_min_load_select(const std::uint64_t* loads,
                                         const std::uint64_t* candidates,
                                         std::uint32_t count) {
  std::uint32_t best = 0;
  for (std::uint32_t j = 1; j < count; ++j) {
    std::uint64_t lj = loads[candidates[j]], lb = loads[candidates[best]];
    if (lj < lb || (lj == lb && candidates[j] < candidates[best])) best = j;
  }
  return best;
}

}  // namespace
}  // namespace pddict::util::simd
