// AVX-512 kernel variant: 8 x u64 lanes, AVX-512F intrinsics only.
//
// Deliberately restricted to the F subset so the variant runs on every
// AVX-512 part: 64-bit multiplies are synthesized from _mm512_mul_epu32
// (mullo needs DQ), while compares use the native unsigned mask forms F does
// provide. Strided scans gather with byte offsets exactly as the AVX2 tier.
// Compiled with -mavx512f only in this TU.
#include <immintrin.h>

#include "util/simd/simd_internal.hpp"
#include "util/simd/simd_tables.hpp"

namespace pddict::util::simd::detail {

namespace {

inline __m512i mullo64(__m512i a, __m512i b) {
  __m512i lo = _mm512_mul_epu32(a, b);
  __m512i mid =
      _mm512_add_epi64(_mm512_mul_epu32(_mm512_srli_epi64(a, 32), b),
                       _mm512_mul_epu32(a, _mm512_srli_epi64(b, 32)));
  return _mm512_add_epi64(lo, _mm512_slli_epi64(mid, 32));
}

// Lane-wise SplitMix64 finalizer, bit-identical to util::mix64.
inline __m512i mix64v(__m512i z) {
  z = _mm512_add_epi64(z, _mm512_set1_epi64(0x9e3779b97f4a7c15ULL));
  z = mullo64(
      _mm512_xor_si512(z, _mm512_srli_epi64(z, 30)),
      _mm512_set1_epi64(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  z = mullo64(
      _mm512_xor_si512(z, _mm512_srli_epi64(z, 27)),
      _mm512_set1_epi64(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm512_xor_si512(z, _mm512_srli_epi64(z, 31));
}

inline __m512i index_ramp() { return _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0); }

// Keys for slots {s, ..., s+7}: contiguous load for packed u64 arrays,
// byte-offset gather for record strides.
inline __m512i load_keys8(const std::byte* base, std::size_t stride,
                          std::uint32_t s) {
  if (stride == sizeof(std::uint64_t))
    return _mm512_loadu_si512(base + s * sizeof(std::uint64_t));
  __m512i offs = _mm512_add_epi64(
      _mm512_set1_epi64(static_cast<long long>(std::uint64_t{s} * stride)),
      mullo64(index_ramp(), _mm512_set1_epi64(static_cast<long long>(stride))));
  return _mm512_i64gather_epi64(offs, base, 1);
}

std::uint32_t avx512_find_key(const std::byte* base, std::size_t stride,
                              std::uint32_t count, std::uint64_t key) {
  const __m512i vkey = _mm512_set1_epi64(static_cast<long long>(key));
  std::uint32_t s = 0;
  for (; s + 8 <= count; s += 8) {
    __mmask8 m = _mm512_cmpeq_epu64_mask(load_keys8(base, stride, s), vkey);
    if (m) return s + static_cast<std::uint32_t>(__builtin_ctz(m));
  }
  for (; s < count; ++s)
    if (ref_load_key(base + s * stride) == key) return s;
  return kNotFound;
}

std::uint32_t avx512_count_key(const std::byte* base, std::size_t stride,
                               std::uint32_t count, std::uint64_t key) {
  const __m512i vkey = _mm512_set1_epi64(static_cast<long long>(key));
  std::uint32_t n = 0;
  std::uint32_t s = 0;
  for (; s + 8 <= count; s += 8)
    n += static_cast<std::uint32_t>(__builtin_popcount(
        _mm512_cmpeq_epu64_mask(load_keys8(base, stride, s), vkey)));
  for (; s < count; ++s) n += ref_load_key(base + s * stride) == key;
  return n;
}

void avx512_hash_salts(std::uint64_t x, std::uint64_t salt_base,
                       std::uint32_t d, std::uint64_t* out) {
  const std::uint64_t inner = util::mix64(x ^ 0x2545f4914f6cdd1dULL);
  const __m512i vinner = _mm512_set1_epi64(static_cast<long long>(inner));
  std::uint32_t i = 0;
  for (; i + 8 <= d; i += 8) {
    __m512i salts = _mm512_add_epi64(
        _mm512_set1_epi64(static_cast<long long>(salt_base + i)),
        index_ramp());
    _mm512_storeu_si512(out + i, mix64v(_mm512_xor_si512(vinner, salts)));
  }
  for (; i < d; ++i) out[i] = util::mix64(inner ^ (salt_base + i));
}

void avx512_mix_keys(const std::uint64_t* xs, std::size_t n,
                     std::uint64_t salt, std::uint64_t* out) {
  const __m512i vsalt = _mm512_set1_epi64(static_cast<long long>(salt));
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m512i keys = _mm512_loadu_si512(xs + j);
    _mm512_storeu_si512(out + j, mix64v(_mm512_xor_si512(keys, vsalt)));
  }
  for (; j < n; ++j) out[j] = util::mix64(xs[j] ^ salt);
}

std::uint32_t avx512_min_load_select(const std::uint64_t* loads,
                                     const std::uint64_t* candidates,
                                     std::uint32_t count) {
  if (count < 16) return ref_min_load_select(loads, candidates, count);
  // Per-lane running minimum of the (load, candidate, position) triple; see
  // the AVX2 variant for the first-occurrence argument.
  __m512i best_cand = _mm512_loadu_si512(candidates);
  __m512i best_load = _mm512_i64gather_epi64(best_cand, loads, 8);
  __m512i best_pos = index_ramp();
  std::uint32_t j = 8;
  for (; j + 8 <= count; j += 8) {
    __m512i cand = _mm512_loadu_si512(candidates + j);
    __m512i load = _mm512_i64gather_epi64(cand, loads, 8);
    __m512i pos = _mm512_add_epi64(_mm512_set1_epi64(j), index_ramp());
    __mmask8 better =
        _mm512_cmplt_epu64_mask(load, best_load) |
        (_mm512_cmpeq_epu64_mask(load, best_load) &
         _mm512_cmplt_epu64_mask(cand, best_cand));
    best_load = _mm512_mask_blend_epi64(better, best_load, load);
    best_cand = _mm512_mask_blend_epi64(better, best_cand, cand);
    best_pos = _mm512_mask_blend_epi64(better, best_pos, pos);
  }
  alignas(64) std::uint64_t bl[8], bc[8], bp[8];
  _mm512_store_si512(bl, best_load);
  _mm512_store_si512(bc, best_cand);
  _mm512_store_si512(bp, best_pos);
  std::uint64_t load = bl[0], cand = bc[0], pos = bp[0];
  for (int l = 1; l < 8; ++l) {
    if (bl[l] < load || (bl[l] == load && bc[l] < cand) ||
        (bl[l] == load && bc[l] == cand && bp[l] < pos)) {
      load = bl[l];
      cand = bc[l];
      pos = bp[l];
    }
  }
  for (; j < count; ++j) {
    std::uint64_t lj = loads[candidates[j]];
    if (lj < load || (lj == load && candidates[j] < cand)) {
      load = lj;
      cand = candidates[j];
      pos = j;
    }
  }
  return static_cast<std::uint32_t>(pos);
}

}  // namespace

const Kernels kAvx512Kernels = {
    avx512_find_key, avx512_count_key, avx512_hash_salts, avx512_mix_keys,
    avx512_min_load_select,
};

}  // namespace pddict::util::simd::detail
