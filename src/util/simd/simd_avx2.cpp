// AVX2 kernel variant: 4 x u64 lanes.
//
// Strided slot scans use i64 gathers with BYTE offsets (scale = 1), so any
// record stride and any base alignment works; stride == 8 (packed key
// arrays) takes plain unaligned vector loads instead. 64-bit multiplies and
// unsigned compares are synthesized (no AVX-512DQ here): mullo64 from three
// 32x32->64 partial products, unsigned less-than from a sign-bias XOR.
// Compiled with -mavx2 only in this TU.
#include <immintrin.h>

#include "util/simd/simd_internal.hpp"
#include "util/simd/simd_tables.hpp"

namespace pddict::util::simd::detail {

namespace {

inline __m256i mullo64(__m256i a, __m256i b) {
  __m256i lo = _mm256_mul_epu32(a, b);
  __m256i mid =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                       _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(mid, 32));
}

// Lane-wise SplitMix64 finalizer, bit-identical to util::mix64.
inline __m256i mix64v(__m256i z) {
  z = _mm256_add_epi64(z, _mm256_set1_epi64x(0x9e3779b97f4a7c15ULL));
  z = mullo64(
      _mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
      _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  z = mullo64(
      _mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
      _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

// Unsigned a < b per lane: AVX2 only has signed 64-bit compares, so flip the
// sign bit of both operands first.
inline __m256i ltu64(__m256i a, __m256i b) {
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  return _mm256_cmpgt_epi64(_mm256_xor_si256(b, bias),
                            _mm256_xor_si256(a, bias));
}

// Keys for slots {s, s+1, s+2, s+3}: contiguous load when the layout is a
// packed u64 array, byte-offset gather for record strides.
inline __m256i load_keys4(const std::byte* base, std::size_t stride,
                          std::uint32_t s) {
  if (stride == sizeof(std::uint64_t))
    return _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(base + s * sizeof(std::uint64_t)));
  const long long o0 = static_cast<long long>(std::uint64_t{s} * stride);
  const long long st = static_cast<long long>(stride);
  __m256i offs = _mm256_set_epi64x(o0 + 3 * st, o0 + 2 * st, o0 + st, o0);
  return _mm256_i64gather_epi64(reinterpret_cast<const long long*>(base),
                                offs, 1);
}

std::uint32_t avx2_find_key(const std::byte* base, std::size_t stride,
                            std::uint32_t count, std::uint64_t key) {
  const __m256i vkey = _mm256_set1_epi64x(static_cast<long long>(key));
  std::uint32_t s = 0;
  for (; s + 4 <= count; s += 4) {
    __m256i eq = _mm256_cmpeq_epi64(load_keys4(base, stride, s), vkey);
    int m = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
    if (m) return s + static_cast<std::uint32_t>(__builtin_ctz(m));
  }
  for (; s < count; ++s)
    if (ref_load_key(base + s * stride) == key) return s;
  return kNotFound;
}

std::uint32_t avx2_count_key(const std::byte* base, std::size_t stride,
                             std::uint32_t count, std::uint64_t key) {
  const __m256i vkey = _mm256_set1_epi64x(static_cast<long long>(key));
  __m256i acc = _mm256_setzero_si256();  // eq mask is -1 per matching lane
  std::uint32_t s = 0;
  for (; s + 4 <= count; s += 4)
    acc = _mm256_sub_epi64(acc,
                           _mm256_cmpeq_epi64(load_keys4(base, stride, s),
                                              vkey));
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint32_t n =
      static_cast<std::uint32_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; s < count; ++s) n += ref_load_key(base + s * stride) == key;
  return n;
}

void avx2_hash_salts(std::uint64_t x, std::uint64_t salt_base, std::uint32_t d,
                     std::uint64_t* out) {
  const std::uint64_t inner = util::mix64(x ^ 0x2545f4914f6cdd1dULL);
  const __m256i vinner = _mm256_set1_epi64x(static_cast<long long>(inner));
  const __m256i step = _mm256_set_epi64x(3, 2, 1, 0);
  std::uint32_t i = 0;
  for (; i + 4 <= d; i += 4) {
    __m256i salts = _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<long long>(salt_base + i)), step);
    __m256i h = mix64v(_mm256_xor_si256(vinner, salts));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
  }
  for (; i < d; ++i) out[i] = util::mix64(inner ^ (salt_base + i));
}

void avx2_mix_keys(const std::uint64_t* xs, std::size_t n, std::uint64_t salt,
                   std::uint64_t* out) {
  const __m256i vsalt = _mm256_set1_epi64x(static_cast<long long>(salt));
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256i keys =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + j));
    __m256i h = mix64v(_mm256_xor_si256(keys, vsalt));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j), h);
  }
  for (; j < n; ++j) out[j] = util::mix64(xs[j] ^ salt);
}

std::uint32_t avx2_min_load_select(const std::uint64_t* loads,
                                   const std::uint64_t* candidates,
                                   std::uint32_t count) {
  if (count < 8) return ref_min_load_select(loads, candidates, count);
  // Per-lane running minimum of the (load, candidate, position) triple.
  // Within a lane positions only grow, so "replace on strict (load, cand)
  // improvement" preserves the first-occurrence rule; the horizontal reduce
  // at the end breaks full ties by smallest position.
  __m256i best_cand = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(candidates));
  __m256i best_load = _mm256_i64gather_epi64(
      reinterpret_cast<const long long*>(loads), best_cand, 8);
  __m256i best_pos = _mm256_set_epi64x(3, 2, 1, 0);
  std::uint32_t j = 4;
  for (; j + 4 <= count; j += 4) {
    __m256i cand = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(candidates + j));
    __m256i load = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(loads), cand, 8);
    __m256i pos = _mm256_add_epi64(_mm256_set1_epi64x(j),
                                   _mm256_set_epi64x(3, 2, 1, 0));
    __m256i better = _mm256_or_si256(
        ltu64(load, best_load),
        _mm256_and_si256(_mm256_cmpeq_epi64(load, best_load),
                         ltu64(cand, best_cand)));
    best_load = _mm256_blendv_epi8(best_load, load, better);
    best_cand = _mm256_blendv_epi8(best_cand, cand, better);
    best_pos = _mm256_blendv_epi8(best_pos, pos, better);
  }
  alignas(32) std::uint64_t bl[4], bc[4], bp[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(bl), best_load);
  _mm256_store_si256(reinterpret_cast<__m256i*>(bc), best_cand);
  _mm256_store_si256(reinterpret_cast<__m256i*>(bp), best_pos);
  std::uint64_t load = bl[0], cand = bc[0], pos = bp[0];
  for (int l = 1; l < 4; ++l) {
    if (bl[l] < load || (bl[l] == load && bc[l] < cand) ||
        (bl[l] == load && bc[l] == cand && bp[l] < pos)) {
      load = bl[l];
      cand = bc[l];
      pos = bp[l];
    }
  }
  for (; j < count; ++j) {
    std::uint64_t lj = loads[candidates[j]];
    if (lj < load || (lj == load && candidates[j] < cand)) {
      load = lj;
      cand = candidates[j];
      pos = j;
    }
  }
  return static_cast<std::uint32_t>(pos);
}

}  // namespace

const Kernels kAvx2Kernels = {
    avx2_find_key, avx2_count_key, avx2_hash_salts, avx2_mix_keys,
    avx2_min_load_select,
};

}  // namespace pddict::util::simd::detail
