// Scalar kernel variant: the reference implementations, always compiled in.
#include "util/simd/simd_internal.hpp"
#include "util/simd/simd_tables.hpp"

namespace pddict::util::simd::detail {

namespace {

std::uint32_t scalar_find_key(const std::byte* base, std::size_t stride,
                              std::uint32_t count, std::uint64_t key) {
  return ref_find_key(base, stride, count, key);
}

std::uint32_t scalar_count_key(const std::byte* base, std::size_t stride,
                               std::uint32_t count, std::uint64_t key) {
  return ref_count_key(base, stride, count, key);
}

void scalar_hash_salts(std::uint64_t x, std::uint64_t salt_base,
                       std::uint32_t d, std::uint64_t* out) {
  ref_hash_salts(x, salt_base, d, out);
}

void scalar_mix_keys(const std::uint64_t* xs, std::size_t n,
                     std::uint64_t salt, std::uint64_t* out) {
  ref_mix_keys(xs, n, salt, out);
}

std::uint32_t scalar_min_load_select(const std::uint64_t* loads,
                                     const std::uint64_t* candidates,
                                     std::uint32_t count) {
  return ref_min_load_select(loads, candidates, count);
}

}  // namespace

const Kernels kScalarKernels = {
    scalar_find_key, scalar_count_key, scalar_hash_salts, scalar_mix_keys,
    scalar_min_load_select,
};

}  // namespace pddict::util::simd::detail
