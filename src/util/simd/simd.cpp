// Dispatch seam: pick the kernel table once at startup, expose the hooks.
//
// Compiled WITHOUT any -m flags — this TU must be runnable before dispatch
// has happened, so it contains no intrinsics, only table pointers.
#include "util/simd/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <fstream>

#include "util/simd/simd_tables.hpp"

namespace pddict::util::simd {

namespace {

const Kernels* table_for(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return &detail::kScalarKernels;
    case IsaLevel::kSse42:
#ifdef PDDICT_SIMD_HAVE_SSE42
      return &detail::kSse42Kernels;
#else
      return nullptr;
#endif
    case IsaLevel::kAvx2:
#ifdef PDDICT_SIMD_HAVE_AVX2
      return &detail::kAvx2Kernels;
#else
      return nullptr;
#endif
    case IsaLevel::kAvx512:
#ifdef PDDICT_SIMD_HAVE_AVX512
      return &detail::kAvx512Kernels;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

bool cpu_supports(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return true;
    case IsaLevel::kSse42:
      return __builtin_cpu_supports("sse4.2");
    case IsaLevel::kAvx2:
      return __builtin_cpu_supports("avx2");
    case IsaLevel::kAvx512:
      return __builtin_cpu_supports("avx512f");
  }
  return false;
}

IsaLevel parse_level(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "scalar") return IsaLevel::kScalar;
  if (name == "sse42") return IsaLevel::kSse42;
  if (name == "avx2") return IsaLevel::kAvx2;
  if (name == "avx512") return IsaLevel::kAvx512;
  *ok = false;
  return IsaLevel::kScalar;
}

struct Dispatch {
  std::string override_name;  // honored PDDICT_SIMD value ("" if none)
  IsaLevel best;              // compiled in AND CPU-supported, env ignored
  IsaLevel startup;           // best capped by the env override
};

Dispatch compute_dispatch() {
  Dispatch d;
  d.best = IsaLevel::kScalar;
  for (IsaLevel level : {IsaLevel::kSse42, IsaLevel::kAvx2, IsaLevel::kAvx512})
    if (table_for(level) != nullptr && cpu_supports(level)) d.best = level;
  d.startup = d.best;
  if (const char* env = std::getenv("PDDICT_SIMD")) {
    bool ok = false;
    IsaLevel cap = parse_level(env, &ok);
    if (ok && table_for(cap) != nullptr && cpu_supports(cap)) {
      d.override_name = env;
      if (cap < d.startup) d.startup = cap;
    }
  }
  return d;
}

const Dispatch& dispatch() {
  static const Dispatch d = compute_dispatch();
  return d;
}

std::atomic<const Kernels*>& active_table() {
  static std::atomic<const Kernels*> table{table_for(dispatch().startup)};
  return table;
}

}  // namespace

const Kernels& kernels() {
  return *active_table().load(std::memory_order_relaxed);
}

const Kernels* kernels_for(IsaLevel level) { return table_for(level); }

IsaLevel active_level() {
  const Kernels* t = active_table().load(std::memory_order_relaxed);
  for (IsaLevel level : {IsaLevel::kScalar, IsaLevel::kSse42, IsaLevel::kAvx2,
                         IsaLevel::kAvx512})
    if (table_for(level) == t) return level;
  return IsaLevel::kScalar;  // unreachable: the table is always one of ours
}

IsaLevel best_supported_level() { return dispatch().best; }

std::vector<IsaLevel> compiled_levels() {
  std::vector<IsaLevel> levels;
  for (IsaLevel level : {IsaLevel::kScalar, IsaLevel::kSse42, IsaLevel::kAvx2,
                         IsaLevel::kAvx512})
    if (table_for(level) != nullptr) levels.push_back(level);
  return levels;
}

bool level_available(IsaLevel level) {
  return table_for(level) != nullptr && cpu_supports(level);
}

bool set_active_level(IsaLevel level) {
  if (!level_available(level)) return false;
  active_table().store(table_for(level), std::memory_order_relaxed);
  return true;
}

const std::string& env_override() { return dispatch().override_name; }

const char* isa_name(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kSse42:
      return "sse42";
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kAvx512:
      return "avx512";
  }
  return "scalar";
}

const std::string& cpu_model_string() {
  static const std::string model = [] {
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
      auto colon = line.find(':');
      if (colon == std::string::npos) continue;
      if (line.compare(0, 10, "model name") == 0) {
        auto start = line.find_first_not_of(" \t", colon + 1);
        if (start != std::string::npos) return line.substr(start);
      }
    }
    return std::string("unknown");
  }();
  return model;
}

}  // namespace pddict::util::simd
