// Runtime-dispatched SIMD kernels for the in-memory hot paths.
//
// The paper's I/O counts are optimal by construction and (since the executor
// PRs) fully overlapped, so wall time is dominated by scalar in-memory work:
// per-block key scans in the dictionaries, evaluating the d seeded expander
// hash functions one at a time, and the load balancer's candidate sweep.
// This layer vectorizes exactly those three kernel families:
//
//   (a) block scans   — find_key / count_key over packed slot layouts
//                       (slot s's key is the u64 at base + s*stride, any
//                       stride >= 8, any alignment);
//   (b) d-way hashing — hash_salts (one lane per seeded expander function)
//                       and mix_keys (one lane per key, fixed salt);
//   (c) selection     — min_load_select, the deterministic least-loaded
//                       candidate choice of Section 3 (lexicographic min of
//                       (load, candidate), first occurrence).
//
// Every variant is BIT-IDENTICAL to the scalar reference for all inputs —
// alignment-agnostic and tail-safe — so counted I/O metrics, bound monitors
// and committed bench baselines do not move under any dispatch decision
// (tests/simd_test.cpp enforces this property across all compiled-in
// variants; bench_simd_kernels measures the speedups).
//
// Dispatch: the best variant that is both compiled in (CMake option
// PDDICT_SIMD_LEVELS, per-TU -mavx2/-mavx512f flags — no global -march) and
// supported by the CPU is selected once at startup. The environment variable
// PDDICT_SIMD=scalar|sse42|avx2|avx512 caps the choice (for testing the
// dispatch seam both ways); set_active_level() is the programmatic hook the
// equivalence tests and the micro-bench use. Because all variants agree
// bit-for-bit, flipping levels mid-run is safe (the table pointer is atomic).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pddict::util::simd {

/// ISA tiers, ordered: dispatch picks the highest available one.
enum class IsaLevel : std::uint8_t {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// Returned by find_key when no slot matches.
inline constexpr std::uint32_t kNotFound = ~std::uint32_t{0};

/// One dispatch table: every entry has identical semantics across levels.
struct Kernels {
  /// Index of the first slot s in [0, count) with key(s) == key, where
  /// key(s) is the little-endian u64 at base + s*stride; kNotFound if none.
  std::uint32_t (*find_key)(const std::byte* base, std::size_t stride,
                            std::uint32_t count, std::uint64_t key);
  /// Number of slots s in [0, count) with key(s) == key.
  std::uint32_t (*count_key)(const std::byte* base, std::size_t stride,
                             std::uint32_t count, std::uint64_t key);
  /// out[i] = salted_mix(x, salt_base + i) for i in [0, d): the d seeded
  /// expander hash functions of one key, one lane per function.
  void (*hash_salts)(std::uint64_t x, std::uint64_t salt_base, std::uint32_t d,
                     std::uint64_t* out);
  /// out[j] = mix64(xs[j] ^ salt) for j in [0, n): batch key mixing with a
  /// fixed salt (the ParallelDictGroup instance assignment).
  void (*mix_keys)(const std::uint64_t* xs, std::size_t n, std::uint64_t salt,
                   std::uint64_t* out);
  /// Index j in [0, count) minimizing (loads[candidates[j]], candidates[j])
  /// lexicographically; first occurrence on full ties. count must be >= 1.
  std::uint32_t (*min_load_select)(const std::uint64_t* loads,
                                   const std::uint64_t* candidates,
                                   std::uint32_t count);
};

/// The active table. Cheap (one relaxed atomic load); callers on hot paths
/// may cache the reference for a loop — entries never dangle (tables are
/// immutable statics).
const Kernels& kernels();

/// Table for one specific level; null when not compiled in. The equivalence
/// tests iterate these directly.
const Kernels* kernels_for(IsaLevel level);

/// Level selected at startup (CPUID capped by PDDICT_SIMD), or overridden
/// via set_active_level since.
IsaLevel active_level();

/// Highest level this binary + CPU can run (ignores the env override).
IsaLevel best_supported_level();

/// Levels compiled into this binary (always contains kScalar).
std::vector<IsaLevel> compiled_levels();

/// Compiled in AND runnable on this CPU.
bool level_available(IsaLevel level);

/// Switch the active table (testing / benchmarking hook). Returns false —
/// and leaves the table unchanged — when the level is unavailable.
bool set_active_level(IsaLevel level);

/// The PDDICT_SIMD value honored at startup ("" when unset or unrecognized).
const std::string& env_override();

/// "scalar" / "sse42" / "avx2" / "avx512".
const char* isa_name(IsaLevel level);

/// "model name" from /proc/cpuinfo (or "unknown"): recorded in bench-report
/// host sections so baselines say what hardware produced their wall times.
const std::string& cpu_model_string();

}  // namespace pddict::util::simd
