// Hash families used by the randomized baselines and the seeded expanders.
//
// The paper's external-memory setting assumes internal memory can hold
// O(log n) keys, which permits O(log n)-wise independent hash functions
// (Section 1.1). PolyHash implements exactly that: a degree-(k-1) polynomial
// over the Mersenne-prime field Z_{2^61-1}, evaluated by Horner's rule.
#pragma once

#include <cstdint>
#include <vector>

#include "util/prng.hpp"

namespace pddict::util {

/// The Mersenne prime 2^61 - 1.
inline constexpr std::uint64_t kMersenne61 = (std::uint64_t{1} << 61) - 1;

/// (a * b) mod (2^61 - 1) without overflow, via 128-bit intermediate.
constexpr std::uint64_t mulmod61(std::uint64_t a, std::uint64_t b) {
  unsigned __int128 p = static_cast<unsigned __int128>(a) * b;
  std::uint64_t lo = static_cast<std::uint64_t>(p & kMersenne61);
  std::uint64_t hi = static_cast<std::uint64_t>(p >> 61);
  std::uint64_t s = lo + hi;
  if (s >= kMersenne61) s -= kMersenne61;
  return s;
}

constexpr std::uint64_t addmod61(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a + b;
  if (s >= kMersenne61) s -= kMersenne61;
  return s;
}

/// k-wise independent polynomial hash family over Z_{2^61-1}.
///
/// h(x) = (c_{k-1} x^{k-1} + ... + c_1 x + c_0 mod p) mod range.
/// Coefficients are drawn deterministically from `seed`; the leading
/// coefficient is forced nonzero so the polynomial has full degree.
class PolyHash {
 public:
  /// `independence` = k (>= 2 for pairwise, typically ceil(log2 n) for the
  /// baselines); `range` = size of the output domain.
  PolyHash(unsigned independence, std::uint64_t range, std::uint64_t seed);

  std::uint64_t operator()(std::uint64_t x) const;

  std::uint64_t range() const { return range_; }
  unsigned independence() const { return static_cast<unsigned>(coeffs_.size()); }

 private:
  std::vector<std::uint64_t> coeffs_;  // c_0 .. c_{k-1}
  std::uint64_t range_;
};

/// Cheap strongly-mixed hash for one 64-bit key and a salt; used where full
/// independence is not required (e.g. seeded expander neighbor functions).
constexpr std::uint64_t salted_mix(std::uint64_t x, std::uint64_t salt) {
  return mix64(mix64(x ^ 0x2545f4914f6cdd1dULL) ^ salt);
}

}  // namespace pddict::util
