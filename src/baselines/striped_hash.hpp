// Randomized baseline: linear-space hash table over striped disks
// (paper §1.1, the "Hashing, no overflow whp" row of Figure 1).
//
// The D disks are treated as one disk with block size B·D (striping). Keys
// hash into bucket-stripes with an O(log n)-wise independent polynomial hash
// — the explicit family the paper's internal-memory assumption allows. With
// B·D = Ω(log n) and a suitable linear-space constant, no bucket overflows
// with high probability, so lookups take 1 I/O whp and updates 2 I/Os whp.
// When a bucket does overflow, a chain of overflow stripes forms and
// operations on it degrade — exactly the whp caveat the deterministic
// structures remove.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/dictionary.hpp"
#include "pdm/striped_view.hpp"
#include "util/hash.hpp"
#include "util/math.hpp"

namespace pddict::baselines {

struct StripedHashParams {
  std::uint64_t universe_size = 0;
  std::uint64_t capacity = 0;
  std::size_t value_bytes = 0;
  /// Target fill of a bucket stripe (lower → fewer overflows).
  double fill_target = 0.5;
  std::uint64_t seed = 0x4a54;
  /// Ablation knob: replace the O(log n)-wise independent polynomial hash
  /// with the textbook weak scheme — masking the low bits (a power-of-two
  /// table). Structured key sets then pile into few buckets — the failure
  /// the paper's internal-memory hash-function requirement (§1.1) prevents.
  bool use_weak_modulo_hash = false;
};

class StripedHashDict final : public core::Dictionary {
 public:
  StripedHashDict(pdm::DiskArray& disks, std::uint64_t base_block,
                  const StripedHashParams& params);

  bool insert(core::Key key, std::span<const std::byte> value) override;
  core::LookupResult lookup(core::Key key) override;
  bool erase(core::Key key) override;
  std::uint64_t size() const override { return size_; }
  std::size_t value_bytes() const override { return value_bytes_; }

  std::uint64_t num_buckets() const { return num_buckets_; }
  std::uint64_t overflow_blocks_allocated() const { return overflow_used_; }
  /// Longest chain (in stripes) any operation may have to walk.
  std::uint64_t longest_chain() const;

 private:
  struct Slot {
    std::uint64_t stripe;  // logical block index in the view
    std::uint32_t index;   // record slot within the stripe
  };
  std::uint64_t bucket_of(core::Key key) const {
    // Weak scheme: low-bit masking (power-of-two table size, clamped into
    // range) — fast, common, and exactly what structured keys defeat.
    return weak_hash_ ? (key & (util::round_up_pow2(num_buckets_) - 1)) %
                            num_buckets_
                      : (*hash_)(key);
  }
  /// Walks the chain of `bucket`; returns blocks visited (1 I/O each).
  std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> walk_chain(
      std::uint64_t bucket);

  pdm::DiskArray* disks_;
  std::unique_ptr<pdm::StripedView> view_;
  std::uint64_t universe_size_;
  std::size_t value_bytes_;
  std::size_t record_bytes_;
  std::uint32_t records_per_stripe_;
  std::uint64_t num_buckets_;
  std::uint64_t overflow_base_;   // first overflow stripe
  std::uint64_t overflow_used_ = 0;
  std::uint64_t size_ = 0;
  bool weak_hash_ = false;
  std::unique_ptr<util::PolyHash> hash_;
  /// Instrumentation: chain length (in stripes) per overflowed bucket.
  std::unordered_map<std::uint64_t, std::uint64_t> chain_len_;
};

}  // namespace pddict::baselines
