#include "baselines/btree.hpp"

#include <cstring>
#include <functional>

#include "pdm/block.hpp"

namespace pddict::baselines {

namespace {
constexpr std::size_t kHeader = 8;  // [u32 is_leaf][u32 count]
}  // namespace

BTreeDict::BTreeDict(pdm::DiskArray& disks, std::uint64_t base_block,
                     const BTreeParams& p)
    : universe_size_(p.universe_size), value_bytes_(p.value_bytes) {
  if (p.universe_size < 2)
    throw std::invalid_argument("degenerate parameters");
  view_ = std::make_unique<pdm::StripedView>(disks, base_block, 0);
  std::size_t stripe = view_->logical_block_bytes();
  leaf_record_bytes_ = 16 + value_bytes_;  // key + alive/pad + value
  if (kHeader + leaf_record_bytes_ > stripe)
    throw std::invalid_argument("leaf record does not fit in a stripe");
  max_internal_ = static_cast<std::uint32_t>((stripe - kHeader - 8) / 16);
  max_leaf_ =
      static_cast<std::uint32_t>((stripe - kHeader) / leaf_record_bytes_);
  if (max_internal_ < 3 || max_leaf_ < 2)
    throw std::invalid_argument("stripe too small for a B-tree node");
  // Root starts as an empty leaf.
  root_ = alloc_node(true);
  std::vector<std::byte> empty(stripe, std::byte{0});
  pdm::store_pod<std::uint32_t>(empty, 0, 1);  // is_leaf
  view_->write(root_, empty);
}

BTreeDict::NodeRef BTreeDict::load(std::uint64_t block) {
  return {block, view_->read(block)};
}

void BTreeDict::store(const NodeRef& node) {
  view_->write(node.block, node.bytes);
}

std::uint64_t BTreeDict::alloc_node(bool) { return next_node_++; }

std::uint32_t BTreeDict::node_count(const std::vector<std::byte>& n) {
  return pdm::load_pod<std::uint32_t>(n, 4);
}

bool BTreeDict::node_is_leaf(const std::vector<std::byte>& n) {
  return pdm::load_pod<std::uint32_t>(n, 0) == 1;
}

core::Key BTreeDict::leaf_key(const std::vector<std::byte>& n,
                              std::uint32_t i) const {
  return pdm::load_pod<core::Key>(n, kHeader + i * leaf_record_bytes_);
}

core::Key BTreeDict::internal_key(const std::vector<std::byte>& n,
                                  std::uint32_t i) const {
  return pdm::load_pod<core::Key>(n, kHeader + static_cast<std::size_t>(i) * 8);
}

std::uint64_t BTreeDict::child_at(const std::vector<std::byte>& n,
                                  std::uint32_t i) const {
  std::size_t base = kHeader + static_cast<std::size_t>(max_internal_) * 8;
  return pdm::load_pod<std::uint64_t>(n, base + static_cast<std::size_t>(i) * 8);
}

void BTreeDict::set_child(std::vector<std::byte>& n, std::uint32_t i,
                          std::uint64_t child) const {
  std::size_t base = kHeader + static_cast<std::size_t>(max_internal_) * 8;
  pdm::store_pod<std::uint64_t>(n, base + static_cast<std::size_t>(i) * 8,
                                child);
}

void BTreeDict::split_child(NodeRef& parent, std::uint32_t ci,
                            NodeRef& child) {
  std::size_t stripe = view_->logical_block_bytes();
  NodeRef sibling{alloc_node(node_is_leaf(child.bytes)),
                  std::vector<std::byte>(stripe, std::byte{0})};
  core::Key separator;
  if (node_is_leaf(child.bytes)) {
    std::uint32_t count = node_count(child.bytes);
    std::uint32_t m = count / 2;
    std::uint32_t right = count - m;
    pdm::store_pod<std::uint32_t>(sibling.bytes, 0, 1);
    pdm::store_pod<std::uint32_t>(sibling.bytes, 4, right);
    std::memcpy(sibling.bytes.data() + kHeader,
                child.bytes.data() + kHeader + m * leaf_record_bytes_,
                static_cast<std::size_t>(right) * leaf_record_bytes_);
    pdm::store_pod<std::uint32_t>(child.bytes, 4, m);
    separator = leaf_key(sibling.bytes, 0);
  } else {
    std::uint32_t count = node_count(child.bytes);
    std::uint32_t m = count / 2;
    std::uint32_t right = count - m - 1;
    separator = internal_key(child.bytes, m);
    pdm::store_pod<std::uint32_t>(sibling.bytes, 0, 0);
    pdm::store_pod<std::uint32_t>(sibling.bytes, 4, right);
    for (std::uint32_t i = 0; i < right; ++i) {
      pdm::store_pod<core::Key>(sibling.bytes, kHeader + i * 8,
                                internal_key(child.bytes, m + 1 + i));
      set_child(sibling.bytes, i, child_at(child.bytes, m + 1 + i));
    }
    set_child(sibling.bytes, right, child_at(child.bytes, count));
    pdm::store_pod<std::uint32_t>(child.bytes, 4, m);
  }
  // Insert separator and sibling pointer into the parent at position ci.
  std::uint32_t pcount = node_count(parent.bytes);
  for (std::uint32_t i = pcount; i > ci; --i) {
    pdm::store_pod<core::Key>(parent.bytes, kHeader + i * 8,
                              internal_key(parent.bytes, i - 1));
  }
  for (std::uint32_t i = pcount + 1; i > ci + 1; --i) {
    set_child(parent.bytes, i, child_at(parent.bytes, i - 1));
  }
  pdm::store_pod<core::Key>(parent.bytes, kHeader + ci * 8, separator);
  set_child(parent.bytes, ci + 1, sibling.block);
  pdm::store_pod<std::uint32_t>(parent.bytes, 4, pcount + 1);
  store(parent);
  store(child);
  store(sibling);
}

bool BTreeDict::insert(core::Key key, std::span<const std::byte> value) {
  if (key == core::kTombstone || key >= universe_size_)
    throw std::invalid_argument("key outside universe");
  if (value.size() != value_bytes_)
    throw std::invalid_argument("value size mismatch");

  NodeRef cur = load(root_);
  // Grow the tree if the root is full (proactive splitting).
  bool root_full = node_is_leaf(cur.bytes)
                       ? node_count(cur.bytes) >= max_leaf_
                       : node_count(cur.bytes) >= max_internal_;
  if (root_full) {
    std::size_t stripe = view_->logical_block_bytes();
    std::uint64_t old_root = root_;
    NodeRef new_root{alloc_node(false),
                     std::vector<std::byte>(stripe, std::byte{0})};
    set_child(new_root.bytes, 0, old_root);
    split_child(new_root, 0, cur);
    root_ = new_root.block;
    ++height_;
    cur = std::move(new_root);  // already written by split_child
  }

  while (!node_is_leaf(cur.bytes)) {
    std::uint32_t count = node_count(cur.bytes);
    std::uint32_t ci = 0;
    while (ci < count && key >= internal_key(cur.bytes, ci)) ++ci;
    NodeRef child = load(child_at(cur.bytes, ci));
    bool full = node_is_leaf(child.bytes)
                    ? node_count(child.bytes) >= max_leaf_
                    : node_count(child.bytes) >= max_internal_;
    if (full) {
      split_child(cur, ci, child);
      // Re-choose: the new separator may redirect us to the sibling.
      if (key >= internal_key(cur.bytes, ci))
        child = load(child_at(cur.bytes, ci + 1));
      else
        child = load(child_at(cur.bytes, ci));
    }
    cur = std::move(child);
  }

  // Leaf: find position; revive dead records in place.
  std::uint32_t count = node_count(cur.bytes);
  std::uint32_t pos = 0;
  while (pos < count && leaf_key(cur.bytes, pos) < key) ++pos;
  if (pos < count && leaf_key(cur.bytes, pos) == key) {
    std::size_t off = kHeader + pos * leaf_record_bytes_;
    if (cur.bytes[off + 8] != std::byte{0}) return false;  // live duplicate
    cur.bytes[off + 8] = std::byte{1};
    std::memcpy(cur.bytes.data() + off + 16, value.data(), value_bytes_);
    store(cur);
    ++size_;
    return true;
  }
  std::memmove(
      cur.bytes.data() + kHeader + (pos + 1) * leaf_record_bytes_,
      cur.bytes.data() + kHeader + pos * leaf_record_bytes_,
      static_cast<std::size_t>(count - pos) * leaf_record_bytes_);
  std::size_t off = kHeader + pos * leaf_record_bytes_;
  pdm::store_pod<core::Key>(cur.bytes, off, key);
  cur.bytes[off + 8] = std::byte{1};
  std::memset(cur.bytes.data() + off + 9, 0, 7);
  std::memcpy(cur.bytes.data() + off + 16, value.data(), value_bytes_);
  pdm::store_pod<std::uint32_t>(cur.bytes, 4, count + 1);
  store(cur);
  ++size_;
  return true;
}

core::LookupResult BTreeDict::lookup(core::Key key) {
  if (key == core::kTombstone || key >= universe_size_)
    throw std::invalid_argument("key outside universe");
  NodeRef cur = load(root_);
  while (!node_is_leaf(cur.bytes)) {
    std::uint32_t count = node_count(cur.bytes);
    std::uint32_t ci = 0;
    while (ci < count && key >= internal_key(cur.bytes, ci)) ++ci;
    cur = load(child_at(cur.bytes, ci));
  }
  std::uint32_t count = node_count(cur.bytes);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (leaf_key(cur.bytes, i) == key) {
      std::size_t off = kHeader + i * leaf_record_bytes_;
      if (cur.bytes[off + 8] == std::byte{0}) return {};  // dead
      return {true,
              std::vector<std::byte>(
                  cur.bytes.begin() + static_cast<std::ptrdiff_t>(off + 16),
                  cur.bytes.begin() + static_cast<std::ptrdiff_t>(
                                          off + 16 + value_bytes_))};
    }
  }
  return {};
}

std::vector<std::pair<core::Key, std::vector<std::byte>>> BTreeDict::range(
    core::Key lo, core::Key hi) {
  std::vector<std::pair<core::Key, std::vector<std::byte>>> out;
  if (lo > hi) return out;
  // Ordered depth-first descent into every subtree whose key interval
  // intersects [lo, hi]; children are visited left-to-right so the output is
  // sorted without leaf chaining.
  std::function<void(std::uint64_t)> visit = [&](std::uint64_t block) {
    NodeRef node = load(block);
    std::uint32_t count = node_count(node.bytes);
    if (node_is_leaf(node.bytes)) {
      for (std::uint32_t i = 0; i < count; ++i) {
        core::Key k = leaf_key(node.bytes, i);
        if (k < lo || k > hi) continue;
        std::size_t off = kHeader + i * leaf_record_bytes_;
        if (node.bytes[off + 8] == std::byte{0}) continue;  // dead
        out.emplace_back(
            k, std::vector<std::byte>(
                   node.bytes.begin() + static_cast<std::ptrdiff_t>(off + 16),
                   node.bytes.begin() + static_cast<std::ptrdiff_t>(
                                            off + 16 + value_bytes_)));
      }
      return;
    }
    for (std::uint32_t ci = 0; ci <= count; ++ci) {
      // Child ci covers [key_{ci-1}, key_ci) with ±infinity at the ends.
      bool below = ci < count && internal_key(node.bytes, ci) <= lo;
      bool above = ci > 0 && internal_key(node.bytes, ci - 1) > hi;
      if (below || above) continue;
      visit(child_at(node.bytes, ci));
    }
  };
  visit(root_);
  return out;
}

bool BTreeDict::erase(core::Key key) {
  if (key == core::kTombstone || key >= universe_size_)
    throw std::invalid_argument("key outside universe");
  NodeRef cur = load(root_);
  while (!node_is_leaf(cur.bytes)) {
    std::uint32_t count = node_count(cur.bytes);
    std::uint32_t ci = 0;
    while (ci < count && key >= internal_key(cur.bytes, ci)) ++ci;
    cur = load(child_at(cur.bytes, ci));
  }
  std::uint32_t count = node_count(cur.bytes);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (leaf_key(cur.bytes, i) == key) {
      std::size_t off = kHeader + i * leaf_record_bytes_;
      if (cur.bytes[off + 8] == std::byte{0}) return false;
      cur.bytes[off + 8] = std::byte{0};
      store(cur);
      --size_;
      return true;
    }
  }
  return false;
}

}  // namespace pddict::baselines
