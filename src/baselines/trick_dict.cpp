#include "baselines/trick_dict.hpp"

#include <cstring>

#include "pdm/block.hpp"
#include "util/math.hpp"

namespace pddict::baselines {

namespace {
// Front cell stripe: [u64 state][u64 key][value σ].
constexpr std::size_t kHeader = 16;
}  // namespace

std::size_t TrickDict::max_bandwidth(const pdm::Geometry& geometry) {
  std::size_t s = geometry.stripe_bytes();
  return s > kHeader ? s - kHeader : 0;
}

TrickDict::TrickDict(pdm::DiskArray& disks, std::uint64_t front_base_block,
                     std::uint64_t back_base_block, const TrickDictParams& p)
    : universe_size_(p.universe_size), value_bytes_(p.value_bytes) {
  if (p.universe_size < 2 || p.capacity < 1)
    throw std::invalid_argument("degenerate parameters");
  if (p.epsilon <= 0.0 || p.epsilon > 1.0)
    throw std::invalid_argument("epsilon must be in (0, 1]");
  if (value_bytes_ + kHeader > disks.geometry().stripe_bytes())
    throw std::invalid_argument("record exceeds the Θ(BD) front cell");
  // Collision fraction ≈ n/m; m = 2n/ɛ keeps the expected fraction of
  // operations hitting the backstop below ɛ/2.
  cells_ = static_cast<std::uint64_t>(
               std::max(2.0, 2.0 / p.epsilon) *
               static_cast<double>(p.capacity)) + 1;
  front_ = std::make_unique<pdm::StripedView>(disks, front_base_block, cells_);
  unsigned independence = std::max(2u, util::ceil_log2(p.capacity + 2));
  hash_ = std::make_unique<util::PolyHash>(independence, cells_, p.seed);

  DhpDictParams bp;
  bp.universe_size = p.universe_size;
  bp.capacity = p.capacity;  // safe under the all-collide worst case
  bp.value_bytes = p.value_bytes;
  bp.seed = p.seed + 0xbac;
  back_ = std::make_unique<DhpDict>(disks, back_base_block, bp);
}

bool TrickDict::insert(core::Key key, std::span<const std::byte> value) {
  if (key == core::kTombstone || key >= universe_size_)
    throw std::invalid_argument("key outside universe");
  if (value.size() != value_bytes_)
    throw std::invalid_argument("value size mismatch");
  std::uint64_t cell = cell_of(key);
  std::vector<std::byte> block = front_->read(cell);  // 1 I/O
  std::uint64_t state = pdm::load_pod<std::uint64_t>(block, 0);
  if (state == kEmpty) {
    pdm::store_pod<std::uint64_t>(block, 0, kOccupied);
    pdm::store_pod<core::Key>(block, 8, key);
    std::memcpy(block.data() + kHeader, value.data(), value_bytes_);
    front_->write(cell, block);  // 1 I/O → the common 2-I/O insert
    ++size_;
    return true;
  }
  if (state == kOccupied) {
    core::Key occupant = pdm::load_pod<core::Key>(block, 8);
    if (occupant == key) return false;
    // First collision at this cell: evict the occupant to the backstop, mark
    // the cell, and send the new key to the backstop too (the rare ɛ path).
    std::vector<std::byte> occupant_value(
        block.begin() + kHeader,
        block.begin() + static_cast<std::ptrdiff_t>(kHeader + value_bytes_));
    back_->insert(occupant, occupant_value);
    std::fill(block.begin(), block.end(), std::byte{0});
    pdm::store_pod<std::uint64_t>(block, 0, kMarked);
    front_->write(cell, block);
    ++marked_;
    if (!back_->insert(key, value)) return false;
    ++size_;
    return true;
  }
  // Marked cell: everything for this cell lives in the backstop.
  if (!back_->insert(key, value)) return false;
  ++size_;
  return true;
}

core::LookupResult TrickDict::lookup(core::Key key) {
  if (key == core::kTombstone || key >= universe_size_)
    throw std::invalid_argument("key outside universe");
  std::uint64_t cell = cell_of(key);
  std::vector<std::byte> block = front_->read(cell);  // 1 I/O
  std::uint64_t state = pdm::load_pod<std::uint64_t>(block, 0);
  if (state == kEmpty) return {};
  if (state == kOccupied) {
    if (pdm::load_pod<core::Key>(block, 8) != key) return {};
    return {true, std::vector<std::byte>(
                      block.begin() + kHeader,
                      block.begin() + static_cast<std::ptrdiff_t>(
                                          kHeader + value_bytes_))};
  }
  return back_->lookup(key);  // +1 I/O on the ɛ path
}

bool TrickDict::erase(core::Key key) {
  if (key == core::kTombstone || key >= universe_size_)
    throw std::invalid_argument("key outside universe");
  std::uint64_t cell = cell_of(key);
  std::vector<std::byte> block = front_->read(cell);
  std::uint64_t state = pdm::load_pod<std::uint64_t>(block, 0);
  if (state == kEmpty) return false;
  if (state == kOccupied) {
    if (pdm::load_pod<core::Key>(block, 8) != key) return false;
    std::fill(block.begin(), block.end(), std::byte{0});
    front_->write(cell, block);
    --size_;
    return true;
  }
  if (back_->erase(key)) {
    --size_;
    return true;
  }
  return false;
}

}  // namespace pddict::baselines
