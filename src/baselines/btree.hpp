// Baseline: B-tree over striped disks — the file-system comparator of the
// paper's motivation (§1.2).
//
// Nodes are logical stripe blocks, so the branching factor is Θ(B·D) and a
// lookup costs the tree height, Θ(log_{BD} n) parallel I/Os — typically the
// "3 disk accesses before the contents of the block is available" the paper's
// introduction cites for commercial file systems (plus no improvement from
// striping beyond the fanout). Insertion uses proactive splitting on the way
// down, so updates also cost O(height) I/Os.
#pragma once

#include <cstdint>
#include <memory>

#include "core/dictionary.hpp"
#include "pdm/striped_view.hpp"

namespace pddict::baselines {

struct BTreeParams {
  std::uint64_t universe_size = 0;
  std::size_t value_bytes = 0;
};

class BTreeDict final : public core::Dictionary {
 public:
  BTreeDict(pdm::DiskArray& disks, std::uint64_t base_block,
            const BTreeParams& params);

  bool insert(core::Key key, std::span<const std::byte> value) override;
  core::LookupResult lookup(core::Key key) override;
  bool erase(core::Key key) override;  // lazy: marks the leaf record dead
  std::uint64_t size() const override { return size_; }
  std::size_t value_bytes() const override { return value_bytes_; }

  /// Range scan: every live (key, value) with lo <= key <= hi, in key order.
  /// This is the capability the paper notes dictionaries give up ("one does
  /// not need the additional properties of B-trees, such as range
  /// searching") — kept here so the trade-off is measurable. Costs
  /// O(height + matching leaves) parallel I/Os.
  std::vector<std::pair<core::Key, std::vector<std::byte>>> range(
      core::Key lo, core::Key hi);

  std::uint32_t height() const { return height_; }
  std::uint32_t internal_fanout() const { return max_internal_; }
  std::uint32_t leaf_capacity() const { return max_leaf_; }
  std::uint64_t nodes_allocated() const { return next_node_; }

 private:
  // Node stripe layout:
  //   header: [u32 is_leaf][u32 count]
  //   leaf:     count × [key u64][u8 alive][7 pad][value σ]
  //   internal: count × [key u64]  then  (count+1) × [child u64]
  struct NodeRef {
    std::uint64_t block;
    std::vector<std::byte> bytes;
  };
  NodeRef load(std::uint64_t block);
  void store(const NodeRef& node);
  std::uint64_t alloc_node(bool leaf);

  static std::uint32_t node_count(const std::vector<std::byte>& n);
  static bool node_is_leaf(const std::vector<std::byte>& n);
  core::Key leaf_key(const std::vector<std::byte>& n, std::uint32_t i) const;
  core::Key internal_key(const std::vector<std::byte>& n,
                         std::uint32_t i) const;
  std::uint64_t child_at(const std::vector<std::byte>& n,
                         std::uint32_t i) const;
  void set_child(std::vector<std::byte>& n, std::uint32_t i,
                 std::uint64_t child) const;

  /// Splits full child `ci` of `parent`; both and the new sibling are
  /// written back.
  void split_child(NodeRef& parent, std::uint32_t ci, NodeRef& child);

  std::unique_ptr<pdm::StripedView> view_;
  std::uint64_t universe_size_;
  std::size_t value_bytes_;
  std::size_t leaf_record_bytes_;
  std::uint32_t max_internal_;  // max keys in an internal node
  std::uint32_t max_leaf_;      // max records in a leaf
  std::uint64_t root_ = 0;
  std::uint64_t next_node_ = 0;
  std::uint32_t height_ = 1;
  std::uint64_t size_ = 0;
};

}  // namespace pddict::baselines
