#include "baselines/striped_hash.hpp"

#include <cstring>

#include "pdm/block.hpp"
#include "util/math.hpp"
#include "util/simd/simd.hpp"

namespace pddict::baselines {

namespace {
// Stripe layout: [u32 count][u32 pad][u64 next (0 = none, else 1+stripe)]
// followed by records of [key u64][value σ].
constexpr std::size_t kHeader = 16;
}  // namespace

StripedHashDict::StripedHashDict(pdm::DiskArray& disks,
                                 std::uint64_t base_block,
                                 const StripedHashParams& p)
    : disks_(&disks),
      universe_size_(p.universe_size),
      value_bytes_(p.value_bytes) {
  if (p.universe_size < 2 || p.capacity < 1)
    throw std::invalid_argument("degenerate hash table parameters");
  record_bytes_ = sizeof(core::Key) + value_bytes_;
  std::size_t stripe_bytes = disks.geometry().stripe_bytes();
  if (record_bytes_ + kHeader > stripe_bytes)
    throw std::invalid_argument("record does not fit in a stripe");
  records_per_stripe_ =
      static_cast<std::uint32_t>((stripe_bytes - kHeader) / record_bytes_);
  std::uint64_t per_bucket = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(records_per_stripe_ * p.fill_target));
  num_buckets_ = util::ceil_div<std::uint64_t>(p.capacity, per_bucket) + 1;
  overflow_base_ = num_buckets_;
  // Unbounded view: overflow stripes are appended past the main table.
  view_ = std::make_unique<pdm::StripedView>(disks, base_block, 0);
  weak_hash_ = p.use_weak_modulo_hash;
  unsigned independence = std::max(2u, util::ceil_log2(p.capacity + 2));
  hash_ = std::make_unique<util::PolyHash>(independence, num_buckets_, p.seed);
}

std::vector<std::pair<std::uint64_t, std::vector<std::byte>>>
StripedHashDict::walk_chain(std::uint64_t bucket) {
  std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> chain;
  std::uint64_t stripe = bucket;
  while (true) {
    std::vector<std::byte> block = view_->read(stripe);  // 1 parallel I/O
    std::uint64_t next = pdm::load_pod<std::uint64_t>(block, 8);
    chain.emplace_back(stripe, std::move(block));
    if (next == 0) break;
    stripe = next - 1;
  }
  return chain;
}

bool StripedHashDict::insert(core::Key key, std::span<const std::byte> value) {
  if (key == core::kTombstone || key >= universe_size_)
    throw std::invalid_argument("key outside universe");
  if (value.size() != value_bytes_)
    throw std::invalid_argument("value size mismatch");
  auto chain = walk_chain(bucket_of(key));
  // Duplicate scan over the whole chain.
  for (auto& [stripe, block] : chain) {
    std::uint32_t count = pdm::load_pod<std::uint32_t>(block, 0);
    if (util::simd::kernels().find_key(block.data() + kHeader, record_bytes_,
                                       count, key) != util::simd::kNotFound)
      return false;
  }
  auto& [last_stripe, last_block] = chain.back();
  std::uint32_t count = pdm::load_pod<std::uint32_t>(last_block, 0);
  if (count < records_per_stripe_) {
    std::size_t off = kHeader + count * record_bytes_;
    pdm::store_pod<core::Key>(last_block, off, key);
    std::memcpy(last_block.data() + off + sizeof(core::Key), value.data(),
                value_bytes_);
    pdm::store_pod<std::uint32_t>(last_block, 0, count + 1);
    view_->write(last_stripe, last_block);  // 1 I/O
  } else {
    // Overflow: allocate a chain stripe — the whp caveat materializing.
    std::uint64_t fresh = overflow_base_ + overflow_used_++;
    std::vector<std::byte> nb(view_->logical_block_bytes(), std::byte{0});
    pdm::store_pod<std::uint32_t>(nb, 0, 1);
    pdm::store_pod<core::Key>(nb, kHeader, key);
    std::memcpy(nb.data() + kHeader + sizeof(core::Key), value.data(),
                value_bytes_);
    pdm::store_pod<std::uint64_t>(last_block, 8, fresh + 1);
    view_->write(last_stripe, last_block);
    view_->write(fresh, nb);
    ++chain_len_[bucket_of(key)];
  }
  ++size_;
  return true;
}

core::LookupResult StripedHashDict::lookup(core::Key key) {
  if (key == core::kTombstone || key >= universe_size_)
    throw std::invalid_argument("key outside universe");
  std::uint64_t stripe = bucket_of(key);
  while (true) {
    std::vector<std::byte> block = view_->read(stripe);
    std::uint32_t count = pdm::load_pod<std::uint32_t>(block, 0);
    std::uint32_t s = util::simd::kernels().find_key(block.data() + kHeader,
                                                     record_bytes_, count, key);
    if (s != util::simd::kNotFound) {
      std::size_t off = kHeader + s * record_bytes_;
      std::vector<std::byte> value(
          block.begin() + static_cast<std::ptrdiff_t>(off + sizeof(core::Key)),
          block.begin() + static_cast<std::ptrdiff_t>(off + record_bytes_));
      return {true, std::move(value)};
    }
    std::uint64_t next = pdm::load_pod<std::uint64_t>(block, 8);
    if (next == 0) return {};
    stripe = next - 1;
  }
}

bool StripedHashDict::erase(core::Key key) {
  if (key == core::kTombstone || key >= universe_size_)
    throw std::invalid_argument("key outside universe");
  std::uint64_t stripe = bucket_of(key);
  while (true) {
    std::vector<std::byte> block = view_->read(stripe);
    std::uint32_t count = pdm::load_pod<std::uint32_t>(block, 0);
    std::uint32_t s = util::simd::kernels().find_key(block.data() + kHeader,
                                                     record_bytes_, count, key);
    if (s != util::simd::kNotFound) {
      std::size_t off = kHeader + s * record_bytes_;
      pdm::store_pod<core::Key>(block, off, core::kTombstone);
      view_->write(stripe, block);
      --size_;
      return true;
    }
    std::uint64_t next = pdm::load_pod<std::uint64_t>(block, 8);
    if (next == 0) return false;
    stripe = next - 1;
  }
}

std::uint64_t StripedHashDict::longest_chain() const {
  std::uint64_t worst = 1;
  // chain_len_ counts overflow stripes; total chain length includes the
  // bucket's home stripe.
  for (const auto& [bucket, overflows] : chain_len_)
    worst = std::max(worst, overflows + 1);
  return worst;
}

}  // namespace pddict::baselines
