// Randomized baseline: reliable bucketed hashing in the style of
// Dietzfelbinger–Gil–Matias–Pippenger [7] — the "[7]" row of Figure 1.
//
// Keys hash into bucket stripes with an O(log n)-wise independent polynomial
// hash. Every bucket is exactly one striped logical block, so lookups are
// *always* one parallel I/O (that is the reliability the paper cites: O(1)
// I/Os with probability 1 − O(n^{-c})). The rare event is on the update path:
// if an insertion would overflow its bucket, the entire table is rebuilt with
// a fresh hash function until no bucket overflows — O(1) amortized whp, but a
// worst-case linear rebuild, which is precisely the behaviour the
// deterministic dictionaries eliminate.
#pragma once

#include <cstdint>
#include <memory>

#include "core/dictionary.hpp"
#include "pdm/striped_view.hpp"
#include "util/hash.hpp"

namespace pddict::baselines {

struct DhpDictParams {
  std::uint64_t universe_size = 0;
  std::uint64_t capacity = 0;
  std::size_t value_bytes = 0;
  double fill_target = 0.4;
  std::uint64_t seed = 0xd1e7;
  std::uint32_t max_rebuild_attempts = 64;
};

class DhpDict final : public core::Dictionary {
 public:
  DhpDict(pdm::DiskArray& disks, std::uint64_t base_block,
          const DhpDictParams& params);

  bool insert(core::Key key, std::span<const std::byte> value) override;
  core::LookupResult lookup(core::Key key) override;  // always 1 I/O
  bool erase(core::Key key) override;
  std::uint64_t size() const override { return size_; }
  std::size_t value_bytes() const override { return value_bytes_; }

  std::uint64_t rebuilds() const { return rebuilds_; }
  std::uint64_t num_buckets() const { return num_buckets_; }

 private:
  void rebuild_with_fresh_hash(core::Key pending_key,
                               std::span<const std::byte> pending_value);
  bool try_place_all(
      const std::vector<std::pair<core::Key, std::vector<std::byte>>>& records,
      std::uint64_t seed_attempt,
      std::vector<std::vector<std::uint32_t>>& layout) const;

  std::unique_ptr<pdm::StripedView> view_;
  std::uint64_t universe_size_;
  std::size_t value_bytes_;
  std::size_t record_bytes_;
  std::uint32_t records_per_bucket_;
  std::uint64_t num_buckets_;
  std::uint64_t size_ = 0;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t seed_;
  std::uint64_t hash_generation_ = 0;
  unsigned independence_;
  std::unique_ptr<util::PolyHash> hash_;
};

}  // namespace pddict::baselines
