#include "baselines/cuckoo_dict.hpp"

#include <cstring>

#include "pdm/block.hpp"
#include "util/math.hpp"

namespace pddict::baselines {

namespace {
// Cell byte stream (concatenated across the table's D/2 blocks):
// [u64 tag: 0 empty / 1 occupied][u64 key][value σ].
constexpr std::size_t kCellHeader = 16;
}  // namespace

std::size_t CuckooDict::max_bandwidth(const pdm::Geometry& geometry) {
  std::size_t half = geometry.stripe_bytes() / 2;
  return half > kCellHeader ? half - kCellHeader : 0;
}

CuckooDict::CuckooDict(pdm::DiskArray& disks, std::uint64_t base_block,
                       const CuckooDictParams& p)
    : disks_(&disks),
      base_block_(base_block),
      universe_size_(p.universe_size),
      value_bytes_(p.value_bytes),
      seed_(p.seed) {
  if (p.universe_size < 2 || p.capacity < 1)
    throw std::invalid_argument("degenerate parameters");
  if (disks.geometry().num_disks < 2 || disks.geometry().num_disks % 2 != 0)
    throw std::invalid_argument("cuckoo tables need an even number of disks");
  if (p.load_factor <= 0.0 || p.load_factor >= 0.5)
    throw std::invalid_argument("cuckoo load factor must be in (0, 0.5)");
  half_disks_ = disks.geometry().num_disks / 2;
  std::size_t cell_bytes =
      static_cast<std::size_t>(half_disks_) * disks.geometry().block_bytes();
  if (value_bytes_ + kCellHeader > cell_bytes)
    throw std::invalid_argument(
        "record exceeds the BD/2 bandwidth of cuckoo hashing");
  cells_ = static_cast<std::uint64_t>(
               static_cast<double>(p.capacity) / (2.0 * p.load_factor)) + 1;
  max_walk_ = 16 + 4 * util::ceil_log2(cells_ + 2);
  unsigned independence = std::max(2u, util::ceil_log2(p.capacity + 2));
  hash_[0] = std::make_unique<util::PolyHash>(independence, cells_, seed_);
  hash_[1] = std::make_unique<util::PolyHash>(independence, cells_, seed_ + 1);
}

std::vector<pdm::BlockAddr> CuckooDict::cell_addrs(std::uint32_t table,
                                                   std::uint64_t cell) const {
  std::vector<pdm::BlockAddr> addrs;
  addrs.reserve(half_disks_);
  for (std::uint32_t d = 0; d < half_disks_; ++d)
    addrs.push_back({table * half_disks_ + d, base_block_ + cell});
  return addrs;
}

CuckooDict::Cell CuckooDict::parse(std::span<const pdm::Block> blocks) const {
  // Cells hold exactly one record, so unlike the bucketed dictionaries there
  // is no multi-slot scan to vectorize here; the hot-path win is skipping the
  // half-stripe concatenation whenever the whole record fits in the first
  // block (the common case — values near the BD/2 bandwidth limit still take
  // the copying path below).
  Cell c;
  if (kCellHeader + value_bytes_ <= blocks[0].size()) {
    const pdm::Block& first = blocks[0];
    c.occupied = pdm::load_pod<std::uint64_t>(first, 0) == 1;
    if (c.occupied) {
      c.key = pdm::load_pod<core::Key>(first, 8);
      c.value.assign(first.begin() + kCellHeader,
                     first.begin() + kCellHeader +
                         static_cast<std::ptrdiff_t>(value_bytes_));
    }
    return c;
  }
  std::vector<std::byte> bytes;
  for (const auto& b : blocks) bytes.insert(bytes.end(), b.begin(), b.end());
  c.occupied = pdm::load_pod<std::uint64_t>(bytes, 0) == 1;
  if (c.occupied) {
    c.key = pdm::load_pod<core::Key>(bytes, 8);
    c.value.assign(bytes.begin() + kCellHeader,
                   bytes.begin() + kCellHeader +
                       static_cast<std::ptrdiff_t>(value_bytes_));
  }
  return c;
}

CuckooDict::Cell CuckooDict::read_cell(std::uint32_t table,
                                       std::uint64_t cell) {
  auto addrs = cell_addrs(table, cell);
  std::vector<pdm::Block> blocks;
  disks_->read_batch(addrs, blocks);
  return parse(blocks);
}

void CuckooDict::write_cell(std::uint32_t table, std::uint64_t cell,
                            const Cell& c) {
  std::size_t block_bytes = disks_->geometry().block_bytes();
  std::vector<std::byte> bytes(half_disks_ * block_bytes, std::byte{0});
  if (c.occupied) {
    pdm::store_pod<std::uint64_t>(bytes, 0, 1);
    pdm::store_pod<core::Key>(bytes, 8, c.key);
    std::memcpy(bytes.data() + kCellHeader, c.value.data(), value_bytes_);
  }
  auto addrs = cell_addrs(table, cell);
  std::vector<std::pair<pdm::BlockAddr, pdm::Block>> writes;
  for (std::uint32_t d = 0; d < half_disks_; ++d) {
    pdm::Block b(bytes.begin() + static_cast<std::ptrdiff_t>(d * block_bytes),
                 bytes.begin() +
                     static_cast<std::ptrdiff_t>((d + 1) * block_bytes));
    writes.emplace_back(addrs[d], std::move(b));
  }
  disks_->write_batch(writes);
}

bool CuckooDict::insert(core::Key key, std::span<const std::byte> value) {
  if (key == core::kTombstone || key >= universe_size_)
    throw std::invalid_argument("key outside universe");
  if (value.size() != value_bytes_)
    throw std::invalid_argument("value size mismatch");
  std::uint64_t c0 = hash_of(0, key), c1 = hash_of(1, key);
  // Both candidate cells in one parallel I/O (they live on disjoint halves).
  std::vector<pdm::BlockAddr> addrs = cell_addrs(0, c0);
  auto a1 = cell_addrs(1, c1);
  addrs.insert(addrs.end(), a1.begin(), a1.end());
  std::vector<pdm::Block> blocks;
  disks_->read_batch(addrs, blocks);
  Cell cell0 = parse(std::span(blocks).subspan(0, half_disks_));
  Cell cell1 = parse(std::span(blocks).subspan(half_disks_));
  if ((cell0.occupied && cell0.key == key) ||
      (cell1.occupied && cell1.key == key))
    return false;

  Cell incoming{true, key,
                std::vector<std::byte>(value.begin(), value.end())};
  if (!cell0.occupied) {
    write_cell(0, c0, incoming);
  } else if (!cell1.occupied) {
    write_cell(1, c1, incoming);
  } else {
    // Eviction walk starting at table 0.
    std::uint32_t table = 0;
    std::uint64_t cell = c0;
    Cell displaced = cell0;
    write_cell(0, c0, incoming);
    std::uint64_t walk = 1;
    for (;; ++walk) {
      if (walk > max_walk_) {
        longest_walk_ = std::max(longest_walk_, walk);
        rehash(displaced);
        ++size_;
        return true;
      }
      table = 1 - table;
      cell = hash_of(table, displaced.key);
      Cell occupant = read_cell(table, cell);
      write_cell(table, cell, displaced);
      if (!occupant.occupied) break;
      displaced = occupant;
    }
    longest_walk_ = std::max(longest_walk_, walk);
  }
  ++size_;
  return true;
}

core::LookupResult CuckooDict::lookup(core::Key key) {
  if (key == core::kTombstone || key >= universe_size_)
    throw std::invalid_argument("key outside universe");
  std::uint64_t c0 = hash_of(0, key), c1 = hash_of(1, key);
  std::vector<pdm::BlockAddr> addrs = cell_addrs(0, c0);
  auto a1 = cell_addrs(1, c1);
  addrs.insert(addrs.end(), a1.begin(), a1.end());
  std::vector<pdm::Block> blocks;
  disks_->read_batch(addrs, blocks);
  Cell cell0 = parse(std::span(blocks).subspan(0, half_disks_));
  if (cell0.occupied && cell0.key == key)
    return {true, std::move(cell0.value)};
  Cell cell1 = parse(std::span(blocks).subspan(half_disks_));
  if (cell1.occupied && cell1.key == key)
    return {true, std::move(cell1.value)};
  return {};
}

bool CuckooDict::erase(core::Key key) {
  if (key == core::kTombstone || key >= universe_size_)
    throw std::invalid_argument("key outside universe");
  for (std::uint32_t t = 0; t < 2; ++t) {
    std::uint64_t c = hash_of(t, key);
    Cell cell = read_cell(t, c);
    if (cell.occupied && cell.key == key) {
      write_cell(t, c, Cell{});
      --size_;
      return true;
    }
  }
  return false;
}

void CuckooDict::rehash(Cell pending) {
  ++rehashes_;
  // Collect everything: cell c of both tables in one round each.
  std::vector<Cell> records;
  records.reserve(size_ + 1);
  for (std::uint64_t c = 0; c < cells_; ++c) {
    std::vector<pdm::BlockAddr> addrs = cell_addrs(0, c);
    auto a1 = cell_addrs(1, c);
    addrs.insert(addrs.end(), a1.begin(), a1.end());
    std::vector<pdm::Block> blocks;
    disks_->read_batch(addrs, blocks);
    Cell c0 = parse(std::span(blocks).subspan(0, half_disks_));
    Cell c1 = parse(std::span(blocks).subspan(half_disks_));
    if (c0.occupied) records.push_back(std::move(c0));
    if (c1.occupied) records.push_back(std::move(c1));
  }
  records.push_back(std::move(pending));

  // Find a seed pair that places everything (simulated in memory).
  unsigned independence = hash_[0]->independence();
  std::vector<std::int32_t> slot[2];
  for (std::uint64_t attempt = 1;; ++attempt) {
    if (attempt > 64)
      throw core::CapacityError("cuckoo rehash failed repeatedly (too full)");
    std::uint64_t s = seed_ + 7919 * (++generation_);
    util::PolyHash h0(independence, cells_, s), h1(independence, cells_, s + 1);
    slot[0].assign(cells_, -1);
    slot[1].assign(cells_, -1);
    bool ok = true;
    for (std::size_t i = 0; i < records.size() && ok; ++i) {
      std::uint32_t table = 0;
      std::int32_t item = static_cast<std::int32_t>(i);
      std::uint64_t walk = 0;
      while (item >= 0) {
        if (++walk > max_walk_ + records.size()) {
          ok = false;
          break;
        }
        std::uint64_t c = (table == 0 ? h0 : h1)(records[static_cast<std::size_t>(item)].key);
        std::swap(item, slot[table][c]);
        table = 1 - table;
      }
    }
    if (ok) {
      hash_[0] = std::make_unique<util::PolyHash>(independence, cells_, s);
      hash_[1] = std::make_unique<util::PolyHash>(independence, cells_, s + 1);
      break;
    }
  }

  // Write both tables back.
  for (std::uint32_t t = 0; t < 2; ++t)
    for (std::uint64_t c = 0; c < cells_; ++c) {
      if (slot[t][c] >= 0)
        write_cell(t, c, records[static_cast<std::size_t>(slot[t][c])]);
      else
        write_cell(t, c, Cell{});
    }
}

}  // namespace pddict::baselines
