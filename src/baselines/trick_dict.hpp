// Randomized baseline: the folklore "[7] + trick" construction
// (paper §1.1, last row block of Figure 1).
//
// A front hash table stores every key that does not collide with another key
// in that table; locations where a collision ever happened are marked, and
// all colliding keys live in a reliable backstop dictionary ([7], our
// DhpDict). Sizing the front table with a suitably large constant makes the
// fraction of operations that touch the backstop arbitrarily small, so
// lookups average 1 + ɛ I/Os and updates 2 + ɛ, with bandwidth Θ(BD): a
// front cell is a whole logical stripe.
#pragma once

#include <cstdint>
#include <memory>

#include "baselines/dhp_dict.hpp"
#include "core/dictionary.hpp"
#include "pdm/striped_view.hpp"
#include "util/hash.hpp"

namespace pddict::baselines {

struct TrickDictParams {
  std::uint64_t universe_size = 0;
  std::uint64_t capacity = 0;
  std::size_t value_bytes = 0;
  /// The paper's ɛ: front table gets ~capacity/ɛ cells.
  double epsilon = 0.25;
  std::uint64_t seed = 0x791c;
};

class TrickDict final : public core::Dictionary {
 public:
  TrickDict(pdm::DiskArray& disks, std::uint64_t front_base_block,
            std::uint64_t back_base_block, const TrickDictParams& params);

  bool insert(core::Key key, std::span<const std::byte> value) override;
  core::LookupResult lookup(core::Key key) override;
  bool erase(core::Key key) override;
  std::uint64_t size() const override { return size_; }
  std::size_t value_bytes() const override { return value_bytes_; }

  std::uint64_t front_cells() const { return cells_; }
  std::uint64_t marked_cells() const { return marked_; }
  std::uint64_t backstop_size() const { return back_->size(); }

  /// Max satellite bytes: a whole stripe minus the cell header — Θ(BD).
  static std::size_t max_bandwidth(const pdm::Geometry& geometry);

 private:
  enum CellState : std::uint64_t { kEmpty = 0, kOccupied = 1, kMarked = 2 };
  std::uint64_t cell_of(core::Key key) const { return (*hash_)(key); }

  std::unique_ptr<pdm::StripedView> front_;
  std::unique_ptr<DhpDict> back_;
  std::uint64_t universe_size_;
  std::size_t value_bytes_;
  std::uint64_t cells_;
  std::uint64_t marked_ = 0;
  std::uint64_t size_ = 0;
  std::unique_ptr<util::PolyHash> hash_;
};

}  // namespace pddict::baselines
