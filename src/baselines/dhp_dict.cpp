#include "baselines/dhp_dict.hpp"

#include <cstring>

#include "pdm/block.hpp"
#include "util/math.hpp"
#include "util/simd/simd.hpp"

namespace pddict::baselines {

namespace {
// Bucket stripe: [u32 count][u32 pad] then records [key u64][value σ].
constexpr std::size_t kHeader = 8;
}  // namespace

DhpDict::DhpDict(pdm::DiskArray& disks, std::uint64_t base_block,
                 const DhpDictParams& p)
    : universe_size_(p.universe_size),
      value_bytes_(p.value_bytes),
      seed_(p.seed) {
  if (p.universe_size < 2 || p.capacity < 1)
    throw std::invalid_argument("degenerate parameters");
  record_bytes_ = sizeof(core::Key) + value_bytes_;
  std::size_t stripe_bytes = disks.geometry().stripe_bytes();
  if (record_bytes_ + kHeader > stripe_bytes)
    throw std::invalid_argument("record does not fit in a stripe");
  records_per_bucket_ =
      static_cast<std::uint32_t>((stripe_bytes - kHeader) / record_bytes_);
  std::uint64_t per_bucket = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(records_per_bucket_ * p.fill_target));
  num_buckets_ = util::ceil_div<std::uint64_t>(p.capacity, per_bucket) + 1;
  view_ = std::make_unique<pdm::StripedView>(disks, base_block, num_buckets_);
  independence_ = std::max(2u, util::ceil_log2(p.capacity + 2));
  hash_ = std::make_unique<util::PolyHash>(independence_, num_buckets_, seed_);
}

bool DhpDict::insert(core::Key key, std::span<const std::byte> value) {
  if (key == core::kTombstone || key >= universe_size_)
    throw std::invalid_argument("key outside universe");
  if (value.size() != value_bytes_)
    throw std::invalid_argument("value size mismatch");
  std::uint64_t bucket = (*hash_)(key);
  std::vector<std::byte> block = view_->read(bucket);
  std::uint32_t count = pdm::load_pod<std::uint32_t>(block, 0);
  if (util::simd::kernels().find_key(block.data() + kHeader, record_bytes_,
                                     count, key) != util::simd::kNotFound)
    return false;
  if (count == records_per_bucket_) {
    // The low-probability event: rebuild with fresh hash functions until the
    // distribution is overflow-free again (worst-case linear work).
    rebuild_with_fresh_hash(key, value);
    ++size_;
    return true;
  }
  std::size_t off = kHeader + count * record_bytes_;
  pdm::store_pod<core::Key>(block, off, key);
  std::memcpy(block.data() + off + sizeof(core::Key), value.data(),
              value_bytes_);
  pdm::store_pod<std::uint32_t>(block, 0, count + 1);
  view_->write(bucket, block);
  ++size_;
  return true;
}

core::LookupResult DhpDict::lookup(core::Key key) {
  if (key == core::kTombstone || key >= universe_size_)
    throw std::invalid_argument("key outside universe");
  std::uint64_t bucket = (*hash_)(key);
  std::vector<std::byte> block = view_->read(bucket);
  std::uint32_t count = pdm::load_pod<std::uint32_t>(block, 0);
  std::uint32_t s = util::simd::kernels().find_key(block.data() + kHeader,
                                                   record_bytes_, count, key);
  if (s != util::simd::kNotFound) {
    std::size_t off = kHeader + s * record_bytes_;
    return {true,
            std::vector<std::byte>(
                block.begin() +
                    static_cast<std::ptrdiff_t>(off + sizeof(core::Key)),
                block.begin() +
                    static_cast<std::ptrdiff_t>(off + record_bytes_))};
  }
  return {};
}

bool DhpDict::erase(core::Key key) {
  if (key == core::kTombstone || key >= universe_size_)
    throw std::invalid_argument("key outside universe");
  std::uint64_t bucket = (*hash_)(key);
  std::vector<std::byte> block = view_->read(bucket);
  std::uint32_t count = pdm::load_pod<std::uint32_t>(block, 0);
  std::uint32_t s = util::simd::kernels().find_key(block.data() + kHeader,
                                                   record_bytes_, count, key);
  if (s != util::simd::kNotFound) {
    std::size_t off = kHeader + s * record_bytes_;
    // Swap-remove with the last record so buckets stay dense.
    std::size_t last = kHeader + (count - 1) * record_bytes_;
    if (last != off)
      std::memmove(block.data() + off, block.data() + last, record_bytes_);
    pdm::store_pod<std::uint32_t>(block, 0, count - 1);
    view_->write(bucket, block);
    --size_;
    return true;
  }
  return false;
}

bool DhpDict::try_place_all(
    const std::vector<std::pair<core::Key, std::vector<std::byte>>>& records,
    std::uint64_t seed_attempt,
    std::vector<std::vector<std::uint32_t>>& layout) const {
  util::PolyHash h(independence_, num_buckets_, seed_attempt);
  layout.assign(num_buckets_, {});
  for (std::uint32_t i = 0; i < records.size(); ++i) {
    std::uint64_t b = h(records[i].first);
    if (layout[b].size() == records_per_bucket_) return false;
    layout[b].push_back(i);
  }
  return true;
}

void DhpDict::rebuild_with_fresh_hash(core::Key pending_key,
                                      std::span<const std::byte> pending_value) {
  ++rebuilds_;
  // Collect every stored record (linear scan: num_buckets_ parallel I/Os).
  std::vector<std::pair<core::Key, std::vector<std::byte>>> records;
  records.reserve(size_ + 1);
  for (std::uint64_t b = 0; b < num_buckets_; ++b) {
    std::vector<std::byte> block = view_->read(b);
    std::uint32_t count = pdm::load_pod<std::uint32_t>(block, 0);
    for (std::uint32_t s = 0; s < count; ++s) {
      std::size_t off = kHeader + s * record_bytes_;
      core::Key k = pdm::load_pod<core::Key>(block, off);
      if (k == core::kTombstone) continue;
      records.emplace_back(
          k, std::vector<std::byte>(
                 block.begin() +
                     static_cast<std::ptrdiff_t>(off + sizeof(core::Key)),
                 block.begin() +
                     static_cast<std::ptrdiff_t>(off + record_bytes_)));
    }
  }
  records.emplace_back(pending_key, std::vector<std::byte>(
                                        pending_value.begin(),
                                        pending_value.end()));

  std::vector<std::vector<std::uint32_t>> layout;
  std::uint64_t attempt = 0;
  for (;; ++attempt) {
    if (attempt > 64)
      throw core::CapacityError(
          "DHP rebuild cannot find an overflow-free hash (table too full)");
    if (try_place_all(records, seed_ + 1000 * (++hash_generation_), layout))
      break;
  }
  hash_ = std::make_unique<util::PolyHash>(
      independence_, num_buckets_, seed_ + 1000 * hash_generation_);

  // Write the whole table back (num_buckets_ parallel I/Os).
  std::vector<std::byte> block(view_->logical_block_bytes());
  for (std::uint64_t b = 0; b < num_buckets_; ++b) {
    std::fill(block.begin(), block.end(), std::byte{0});
    pdm::store_pod<std::uint32_t>(block, 0,
                                  static_cast<std::uint32_t>(layout[b].size()));
    for (std::uint32_t s = 0; s < layout[b].size(); ++s) {
      const auto& [k, v] = records[layout[b][s]];
      std::size_t off = kHeader + s * record_bytes_;
      pdm::store_pod<core::Key>(block, off, k);
      std::memcpy(block.data() + off + sizeof(core::Key), v.data(),
                  value_bytes_);
    }
    view_->write(b, block);
  }
}

}  // namespace pddict::baselines
