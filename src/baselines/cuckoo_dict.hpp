// Randomized baseline: cuckoo hashing [13] in the parallel disk model —
// the "[13]" row of Figure 1.
//
// The D disks are split into two halves, one per cuckoo table; a table cell
// spans one block on each of its D/2 disks, so a record (key + satellite) can
// occupy up to B·D/2 items — the bandwidth BD/2 the paper credits to cuckoo
// hashing. A lookup reads the two candidate cells — D blocks on D distinct
// disks — in a single parallel I/O. Insertion is the classic eviction walk
// with a full rehash on failure: constant amortized *expected* cost, with the
// unbounded worst case the deterministic structures avoid.
#pragma once

#include <cstdint>
#include <memory>

#include "core/dictionary.hpp"
#include "pdm/disk_array.hpp"
#include "util/hash.hpp"

namespace pddict::baselines {

struct CuckooDictParams {
  std::uint64_t universe_size = 0;
  std::uint64_t capacity = 0;
  std::size_t value_bytes = 0;
  double load_factor = 0.45;  // per-table occupancy target (< 0.5)
  std::uint64_t seed = 0xcc;
};

class CuckooDict final : public core::Dictionary {
 public:
  CuckooDict(pdm::DiskArray& disks, std::uint64_t base_block,
             const CuckooDictParams& params);

  bool insert(core::Key key, std::span<const std::byte> value) override;
  core::LookupResult lookup(core::Key key) override;  // 1 parallel I/O
  bool erase(core::Key key) override;
  std::uint64_t size() const override { return size_; }
  std::size_t value_bytes() const override { return value_bytes_; }

  std::uint64_t rehashes() const { return rehashes_; }
  std::uint64_t cells_per_table() const { return cells_; }
  /// Longest eviction walk any single insert has performed.
  std::uint64_t longest_walk() const { return longest_walk_; }

  /// Max satellite bytes per record for this geometry: BD/2 minus overhead.
  static std::size_t max_bandwidth(const pdm::Geometry& geometry);

 private:
  struct Cell {
    bool occupied = false;
    core::Key key = 0;
    std::vector<std::byte> value;
  };
  std::vector<pdm::BlockAddr> cell_addrs(std::uint32_t table,
                                         std::uint64_t cell) const;
  Cell parse(std::span<const pdm::Block> blocks) const;
  void write_cell(std::uint32_t table, std::uint64_t cell, const Cell& c);
  Cell read_cell(std::uint32_t table, std::uint64_t cell);
  std::uint64_t hash_of(std::uint32_t table, core::Key key) const {
    return (*hash_[table])(key);
  }
  void rehash(Cell pending);

  pdm::DiskArray* disks_;
  std::uint64_t base_block_;
  std::uint32_t half_disks_;
  std::uint64_t universe_size_;
  std::size_t value_bytes_;
  std::uint64_t cells_;
  std::uint64_t size_ = 0;
  std::uint64_t rehashes_ = 0;
  std::uint64_t longest_walk_ = 0;
  std::uint64_t max_walk_;
  std::uint64_t seed_;
  std::uint64_t generation_ = 0;
  std::unique_ptr<util::PolyHash> hash_[2];
};

}  // namespace pddict::baselines
