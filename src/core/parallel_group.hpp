// Parallel instances of a dictionary (paper, Section 4 introduction).
//
// "We can make any constant number of parallel instances of our dictionaries.
// This allows insertions of a constant number of elements in the same number
// of parallel I/Os as one insertion, and does not influence lookup time. The
// amount of space used and the number of disks increase by a constant
// factor."
//
// ParallelDictGroup runs c Section 4.1 dictionaries on c disjoint groups of d
// disks. Each key belongs to a fixed instance (a deterministic mix of the key
// modulo c), so lookups stay 1 I/O on the key's own group, and a batch of c
// keys with distinct instances is inserted with ONE combined read round and
// ONE combined write round — the same 2 parallel I/Os as a single insertion.
// Batches that collide on an instance serialize only per colliding group.
#pragma once

#include <cstdint>
#include <memory>

#include "core/basic_dict.hpp"
#include "core/dictionary.hpp"
#include "pdm/allocator.hpp"
#include "util/prng.hpp"

namespace pddict::core {

struct ParallelGroupParams {
  std::uint64_t universe_size = 0;
  std::uint64_t capacity = 0;      // total capacity across instances
  std::size_t value_bytes = 0;
  std::uint32_t degree = 0;        // d per instance; 0 → O(log u)
  std::uint32_t instances = 4;     // c
  std::uint64_t seed = 0x9a49;
};

class ParallelDictGroup final : public Dictionary {
 public:
  ParallelDictGroup(pdm::DiskArray& disks, std::uint32_t first_disk,
                    pdm::DiskAllocator& alloc,
                    const ParallelGroupParams& params);

  bool insert(Key key, std::span<const std::byte> value) override;
  LookupResult lookup(Key key) override;  // 1 parallel I/O
  bool erase(Key key) override;
  std::uint64_t size() const override;
  std::size_t value_bytes() const override { return value_bytes_; }

  struct BatchItem {
    Key key;
    std::span<const std::byte> value;
  };
  /// Inserts all items. Items mapping to distinct instances share parallel
  /// I/O rounds; a batch of <= instances() keys with distinct instances costs
  /// exactly 2 parallel I/Os total. Returns per-item "newly inserted".
  std::vector<bool> insert_batch(std::span<const BatchItem> items);

  std::uint32_t instances() const { return static_cast<std::uint32_t>(dicts_.size()); }
  std::uint32_t instance_of(Key key) const {
    return static_cast<std::uint32_t>(util::mix64(key ^ salt_) %
                                      dicts_.size());
  }
  static std::uint32_t disks_needed(const ParallelGroupParams& params);

 private:
  std::size_t value_bytes_;
  std::uint64_t salt_;
  pdm::DiskArray* disks_;
  std::vector<std::unique_ptr<BasicDict>> dicts_;
};

}  // namespace pddict::core
