#include "core/parallel_group.hpp"

#include <algorithm>

#include "util/math.hpp"
#include "util/simd/simd.hpp"

namespace pddict::core {

std::uint32_t ParallelDictGroup::disks_needed(const ParallelGroupParams& p) {
  std::uint32_t d =
      p.degree ? p.degree : expander::recommended_degree(p.universe_size);
  return p.instances * d;
}

ParallelDictGroup::ParallelDictGroup(pdm::DiskArray& disks,
                                     std::uint32_t first_disk,
                                     pdm::DiskAllocator& alloc,
                                     const ParallelGroupParams& p)
    : value_bytes_(p.value_bytes),
      salt_(util::mix64(p.seed)),
      disks_(&disks) {
  if (p.instances < 1) throw std::invalid_argument("need >= 1 instance");
  std::uint32_t d =
      p.degree ? p.degree : expander::recommended_degree(p.universe_size);
  if (first_disk + p.instances * d > disks.geometry().num_disks)
    throw std::invalid_argument("needs instances*d disks");
  // Per-instance capacity with headroom: the mix spreads keys binomially.
  std::uint64_t per = util::ceil_div<std::uint64_t>(p.capacity * 13,
                                                    p.instances * 10) + 16;
  for (std::uint32_t i = 0; i < p.instances; ++i) {
    BasicDictParams bp;
    bp.universe_size = p.universe_size;
    bp.capacity = per;
    bp.value_bytes = p.value_bytes;
    bp.degree = d;
    bp.seed = p.seed + 101 * (i + 1);
    std::uint64_t base = alloc.reserve(0);
    dicts_.push_back(std::make_unique<BasicDict>(
        disks, first_disk + i * d, base, bp));
    alloc.reserve(dicts_.back()->blocks_per_disk());
  }
}

std::uint64_t ParallelDictGroup::size() const {
  std::uint64_t total = 0;
  for (const auto& d : dicts_) total += d->size();
  return total;
}

bool ParallelDictGroup::insert(Key key, std::span<const std::byte> value) {
  return dicts_[instance_of(key)]->insert(key, value);
}

LookupResult ParallelDictGroup::lookup(Key key) {
  return dicts_[instance_of(key)]->lookup(key);
}

bool ParallelDictGroup::erase(Key key) {
  return dicts_[instance_of(key)]->erase(key);
}

std::vector<bool> ParallelDictGroup::insert_batch(
    std::span<const BatchItem> items) {
  std::vector<bool> result(items.size(), false);
  // One batched mix over all keys up front (SIMD: one lane per key) replaces
  // the repeated per-item instance_of evaluations in the wave loop below.
  std::vector<std::uint64_t> keys(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) keys[i] = items[i].key;
  std::vector<std::uint64_t> mixed(items.size());
  util::simd::kernels().mix_keys(keys.data(), keys.size(), salt_,
                                 mixed.data());
  std::vector<std::uint32_t> instance(items.size());
  for (std::size_t i = 0; i < items.size(); ++i)
    instance[i] = static_cast<std::uint32_t>(mixed[i] % dicts_.size());
  // Schedule items into waves: each wave has at most one item per instance,
  // so one combined read round plus one combined write round serve the wave.
  std::vector<std::size_t> pending(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) pending[i] = i;
  while (!pending.empty()) {
    std::vector<std::size_t> wave, rest;
    std::vector<bool> taken(dicts_.size(), false);
    for (std::size_t idx : pending) {
      std::uint32_t inst = instance[idx];
      if (taken[inst]) {
        rest.push_back(idx);
      } else {
        taken[inst] = true;
        wave.push_back(idx);
      }
    }
    // Combined read: every item's probe addresses live on its own instance's
    // disk group, so the whole wave is one parallel I/O round.
    std::vector<pdm::BlockAddr> addrs;
    std::vector<std::size_t> offsets;
    for (std::size_t idx : wave) {
      offsets.push_back(addrs.size());
      auto a = dicts_[instance[idx]]->probe_addrs(items[idx].key);
      addrs.insert(addrs.end(), a.begin(), a.end());
    }
    offsets.push_back(addrs.size());
    std::vector<pdm::Block> blocks;
    disks_->read_batch(addrs, blocks);

    std::vector<std::pair<pdm::BlockAddr, pdm::Block>> writes;
    for (std::size_t w = 0; w < wave.size(); ++w) {
      std::size_t idx = wave[w];
      auto span = std::span(blocks).subspan(offsets[w],
                                            offsets[w + 1] - offsets[w]);
      auto plan = dicts_[instance[idx]]->plan_insert(
          items[idx].key, items[idx].value, span);
      if (plan) {
        result[idx] = true;
        writes.insert(writes.end(), plan->begin(), plan->end());
      }
    }
    if (!writes.empty()) disks_->write_batch(writes);  // one write round
    pending = std::move(rest);
  }
  return result;
}

}  // namespace pddict::core
