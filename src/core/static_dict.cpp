#include "core/static_dict.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_map>

#include "obs/op_context.hpp"
#include "obs/span.hpp"
#include "pdm/block.hpp"
#include "pdm/ext_sort.hpp"
#include "pdm/record_stream.hpp"
#include "util/math.hpp"

namespace pddict::core {

namespace {

// Construction record formats (packed little-endian):
//   input record : [key u64][id u64][value σ bytes]
//   pair record  : [neighbor y u64][key x u64]
//   field record : [field y u64][content ⌈f_bits/8⌉ bytes]
constexpr std::size_t kPairBytes = 16;

std::uint64_t key_at(std::span<const std::byte> rec, std::size_t off) {
  std::uint64_t v;
  std::memcpy(&v, rec.data() + off, 8);
  return v;
}

void put_u64(std::byte* dst, std::uint64_t v) { std::memcpy(dst, &v, 8); }

}  // namespace

std::uint32_t StaticDict::disks_needed(const StaticDictParams& p) {
  std::uint32_t d =
      p.degree ? p.degree : expander::recommended_degree(p.universe_size);
  return p.layout == StaticLayout::kHeadPointers ? 2 * d : d;
}

StaticDict::StaticDict(pdm::DiskArray& disks, std::uint32_t first_disk,
                       pdm::DiskAllocator& alloc,
                       const StaticDictParams& params,
                       std::span<const Key> keys,
                       std::span<const std::byte> values)
    : disks_(&disks),
      first_disk_(first_disk),
      layout_(params.layout),
      universe_size_(params.universe_size),
      value_bytes_(params.value_bytes) {
  if (params.universe_size < 2 || params.capacity < 1)
    throw std::invalid_argument("degenerate static dictionary parameters");
  if (keys.size() > params.capacity)
    throw std::invalid_argument("key set exceeds capacity N");
  if (values.size() != keys.size() * value_bytes_)
    throw std::invalid_argument("values span size mismatch");
  std::uint32_t d = params.degree
                        ? params.degree
                        : expander::recommended_degree(params.universe_size);
  if (d <= 12)
    throw std::invalid_argument(
        "Theorem 6 fixes epsilon = 1/12, which requires degree d > 12");
  if (d > 255)
    throw std::invalid_argument("head pointers require d <= 255");
  if (first_disk + disks_needed(params) > disks.geometry().num_disks)
    throw std::invalid_argument("not enough disks for this layout");

  n_ = keys.size();
  need_ = util::ceil_div<std::uint32_t>(2 * d, 3);

  // Field geometry.
  const std::size_t sigma_bits = value_bytes_ * 8;
  std::uint32_t f_bits;
  if (layout_ == StaticLayout::kIdentifiers) {
    // Case (b): lg n + 3σ/(2d) bits per field; identifier 0 reserved as the
    // empty marker, so identifiers are the 1-based ranks.
    id_bits_ = util::bits_for(n_ + 2);
    slice_bits_ = static_cast<std::uint32_t>(
        util::ceil_div<std::uint64_t>(sigma_bits, need_));
    f_bits = id_bits_ + slice_bits_;
  } else {
    // Case (a): 3σ/(2d) + 4 bits per field, raised if necessary so that the
    // `need` fields can always hold σ bits beside the worst-case unary
    // pointer data (< 2d bits per element, as in the theorem's proof).
    slice_bits_ = static_cast<std::uint32_t>(
        util::ceil_div<std::uint64_t>(3 * sigma_bits, 2 * d));
    f_bits = slice_bits_ + 4;
    std::uint32_t floor_bits = static_cast<std::uint32_t>(
        util::ceil_div<std::uint64_t>(sigma_bits + d + need_, need_));
    f_bits = std::max({f_bits, floor_bits, 2u});
  }

  std::uint64_t per_stripe = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(params.stripe_factor *
                                    static_cast<double>(params.capacity)));
  graph_ = std::make_unique<expander::SeededExpander>(
      params.universe_size, per_stripe * d, d, params.seed);

  std::uint64_t fa_base = alloc.reserve(0);
  fields_ = std::make_unique<FieldArray>(disks, first_disk_, fa_base,
                                         per_stripe * d, f_bits, d);
  alloc.reserve(fields_->blocks_per_stripe());

  if (layout_ == StaticLayout::kHeadPointers) {
    BasicDictParams mp;
    mp.universe_size = params.universe_size;
    mp.capacity = params.capacity;
    mp.value_bytes = 1;  // the lg d-bit head pointer
    mp.degree = d;
    mp.seed = params.seed + 0x111;
    std::uint64_t mbase = alloc.reserve(0);
    membership_ = std::make_unique<BasicDict>(disks, first_disk_ + d, mbase, mp);
    alloc.reserve(membership_->blocks_per_disk());
  }

  build(alloc, params, keys, values);
}

std::vector<std::pair<std::uint64_t, util::BitVector>> StaticDict::encode(
    const Assignment& a) const {
  const std::uint32_t f_bits = fields_->field_bits();
  const std::size_t sigma_bits = value_bytes_ * 8;
  std::vector<std::pair<std::uint64_t, util::BitVector>> out;
  out.reserve(need_);
  if (layout_ == StaticLayout::kIdentifiers) {
    for (std::uint32_t r = 0; r < need_; ++r) {
      util::BitVector bits(f_bits);
      bits.set_field(0, id_bits_, a.id);
      std::size_t start = static_cast<std::size_t>(r) * slice_bits_;
      std::size_t take =
          start < sigma_bits
              ? std::min<std::size_t>(slice_bits_, sigma_bits - start)
              : 0;
      if (take > 0)
        util::copy_bits_from_bytes(a.value.data(), start, bits, id_bits_, take);
      out.emplace_back(a.fields[r], std::move(bits));
    }
  } else {
    const std::uint64_t stripe_size = graph_->stripe_size();
    std::size_t done = 0;
    for (std::uint32_t r = 0; r < need_; ++r) {
      std::uint64_t stripe = a.fields[r] / stripe_size;
      std::uint64_t delta =
          (r + 1 < need_) ? a.fields[r + 1] / stripe_size - stripe : 0;
      util::BitVector bits(f_bits);
      util::BitWriter w(bits, 0, f_bits);
      w.write_unary(delta);  // tail writes unary(0) = a single 0-bit
      std::size_t room = f_bits - w.position();
      std::size_t take = std::min(room, sigma_bits - done);
      if (take > 0)
        util::copy_bits_from_bytes(a.value.data(), done, bits, w.position(),
                                   take);
      done += take;
      out.emplace_back(a.fields[r], std::move(bits));
    }
    if (done != sigma_bits)
      throw std::logic_error("static dict: field capacity accounting is off");
  }
  return out;
}

void StaticDict::build_direct(const StaticDictParams& params,
                              std::span<const Key> keys,
                              std::span<const std::byte> values) {
  // The paper's first construction: per level, compute the unique neighbor
  // nodes of the remaining set (internal memory), pick any ⌈2d/3⌉ of them
  // for every qualifying key, and write those fields in place — a
  // read-modify-write round pair per key, O(n) parallel I/Os in total.
  obs::OpScope op(*disks_, obs::OpKind::kBuild, "static_dict");
  obs::Span span(*disks_, "build_direct");
  pdm::IoProbe probe(*disks_);
  stats_.input_records = n_;
  if (n_ == 0) {
    stats_.total_io = probe.delta();
    return;
  }
  // Identifiers are ranks in sorted key order, 1-based (0 = empty marker).
  std::vector<std::size_t> order(keys.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });
  std::vector<std::uint64_t> id_of(keys.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    if (rank > 0 && keys[order[rank]] == keys[order[rank - 1]])
      throw std::invalid_argument("duplicate key in static dictionary input");
    id_of[order[rank]] = rank + 1;
  }

  std::vector<std::size_t> remaining = order;
  while (!remaining.empty()) {
    if (stats_.levels >= params.max_levels)
      throw ConstructionError("exceeded max_levels (direct construction)");
    ++stats_.levels;
    // Incidence of every right vertex over the remaining set.
    std::unordered_map<std::uint64_t, std::uint32_t> incidence;
    incidence.reserve(remaining.size() * graph_->degree() * 2);
    for (std::size_t idx : remaining)
      for (std::uint64_t y : graph_->neighbors(keys[idx])) ++incidence[y];

    std::vector<std::size_t> next;
    std::uint64_t assigned_here = 0;
    std::vector<std::uint64_t> unique_ys;
    for (std::size_t idx : remaining) {
      unique_ys.clear();
      for (std::uint64_t y : graph_->neighbors(keys[idx]))
        if (incidence.at(y) == 1) unique_ys.push_back(y);
      if (unique_ys.size() < need_) {
        next.push_back(idx);
        continue;
      }
      Assignment a;
      a.key = keys[idx];
      a.id = id_of[idx];
      a.fields.assign(unique_ys.begin(), unique_ys.begin() + need_);
      std::sort(a.fields.begin(), a.fields.end());
      a.value = values.subspan(idx * value_bytes_, value_bytes_);
      // Read-modify-write of the need field blocks: all on distinct disks,
      // so one read round + one write round per key.
      std::vector<pdm::BlockAddr> addrs;
      for (std::uint64_t f : a.fields) addrs.push_back(fields_->addr_of(f));
      std::vector<pdm::Block> blocks;
      disks_->read_batch(addrs, blocks);
      auto encoded = encode(a);
      std::vector<std::pair<pdm::BlockAddr, pdm::Block>> writes;
      for (std::uint32_t r = 0; r < need_; ++r) {
        fields_->set(blocks[r], encoded[r].first, encoded[r].second);
        writes.emplace_back(addrs[r], blocks[r]);
      }
      disks_->write_batch(writes);
      if (layout_ == StaticLayout::kHeadPointers) {
        auto head =
            static_cast<std::uint8_t>(a.fields[0] / graph_->stripe_size());
        std::byte hb{head};
        membership_->insert(a.key, std::span<const std::byte>(&hb, 1));
      }
      ++assigned_here;
      stats_.assigned_fields += need_;
    }
    if (assigned_here == 0)
      throw ConstructionError(
          "no key has enough unique neighbors (Lemma 5 failed; raise "
          "stripe_factor or degree)");
    remaining = std::move(next);
  }
  stats_.total_io = probe.delta();
}

void StaticDict::build(pdm::DiskAllocator& alloc,
                       const StaticDictParams& params,
                       std::span<const Key> keys,
                       std::span<const std::byte> values) {
  if (params.algorithm == BuildAlgorithm::kDirect) {
    build_direct(params, keys, values);
    return;
  }
  obs::OpScope op(*disks_, obs::OpKind::kBuild, "static_dict");
  obs::Span span(*disks_, "build_sorted");
  pdm::IoProbe probe(*disks_);
  stats_.input_records = n_;
  if (n_ == 0) {
    stats_.total_io = probe.delta();
    return;
  }
  const pdm::Geometry& geom = disks_->geometry();
  const std::uint32_t d = graph_->degree();
  const std::size_t in_rec = 16 + value_bytes_;
  const std::size_t f_bytes = util::ceil_div<std::uint64_t>(
      fields_->field_bits(), 8);
  const std::size_t b_rec = 8 + f_bytes;

  const std::uint64_t rpb_in = pdm::records_per_logical_block(geom, in_rec);
  const std::uint64_t rpb_pair = pdm::records_per_logical_block(geom, kPairBytes);
  const std::uint64_t rpb_b = pdm::records_per_logical_block(geom, b_rec);

  const std::uint64_t r_blocks = util::ceil_div<std::uint64_t>(n_, rpb_in) + 1;
  const std::uint64_t p_blocks =
      util::ceil_div<std::uint64_t>(n_ * d, rpb_pair) + 1;
  const std::uint64_t b_blocks =
      util::ceil_div<std::uint64_t>(n_ * need_, rpb_b) + 1;

  // Scratch regions (reused across recursion levels).
  pdm::StripedView ra(*disks_, alloc.reserve(r_blocks), r_blocks);
  pdm::StripedView rb(*disks_, alloc.reserve(r_blocks), r_blocks);
  pdm::StripedView pv(*disks_, alloc.reserve(p_blocks), p_blocks);
  pdm::StripedView ps(*disks_, alloc.reserve(p_blocks), p_blocks);
  pdm::StripedView uv(*disks_, alloc.reserve(p_blocks), p_blocks);
  pdm::StripedView bv(*disks_, alloc.reserve(b_blocks), b_blocks);
  pdm::StripedView bs(*disks_, alloc.reserve(b_blocks), b_blocks);

  auto account_sort = [&](const pdm::SortStats& s) { stats_.sort_io += s.io; };

  // ---- phase 0: write input records, sort by key, assign rank identifiers.
  {
    pdm::RecordWriter w(ra, 0, in_rec);
    std::vector<std::byte> rec(in_rec);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] == kTombstone || keys[i] >= universe_size_)
        throw std::invalid_argument("key outside universe");
      put_u64(rec.data(), keys[i]);
      put_u64(rec.data() + 8, 0);
      if (value_bytes_ > 0)
        std::memcpy(rec.data() + 16, values.data() + i * value_bytes_,
                    value_bytes_);
      w.push(rec);
    }
    w.finish();
  }
  account_sort(pdm::external_sort(
      ra, rb, n_, in_rec,
      [](std::span<const std::byte> r) { return key_at(r, 0); },
      params.memory_bytes));
  {
    // Assign identifiers 1..n in key order; reject duplicates.
    pdm::RecordReader r(ra, 0, n_, in_rec);
    pdm::RecordWriter w(rb, 0, in_rec);
    std::vector<std::byte> rec(in_rec);
    std::uint64_t id = 0;
    Key prev = kTombstone;
    while (!r.exhausted()) {
      std::span<const std::byte> src = r.head();
      Key k = key_at(src, 0);
      if (id > 0 && k == prev)
        throw std::invalid_argument("duplicate key in static dictionary input");
      prev = k;
      std::memcpy(rec.data(), src.data(), in_rec);
      put_u64(rec.data() + 8, ++id);
      w.push(rec);
      r.pop();
    }
    w.finish();
  }

  // ---- recursion: assign unique neighbors, recurse on the rest.
  pdm::StripedView* r_cur = &rb;
  pdm::StripedView* r_next = &ra;
  std::uint64_t remaining = n_;
  pdm::RecordWriter b_writer(bv, 0, b_rec);
  std::vector<std::byte> b_rec_buf(b_rec);

  while (remaining > 0) {
    if (stats_.levels >= params.max_levels)
      throw ConstructionError(
          "static dictionary construction exceeded max_levels");
    ++stats_.levels;

    // 1. Generate (neighbor, key) pairs for every edge of the remaining set.
    {
      pdm::RecordReader r(*r_cur, 0, remaining, in_rec);
      pdm::RecordWriter w(pv, 0, kPairBytes);
      std::vector<std::byte> pair(kPairBytes);
      while (!r.exhausted()) {
        Key x = key_at(r.head(), 0);
        for (std::uint64_t y : graph_->neighbors(x)) {
          put_u64(pair.data(), y);
          put_u64(pair.data() + 8, x);
          w.push(pair);
        }
        r.pop();
      }
      w.finish();
    }
    const std::uint64_t num_pairs = remaining * d;

    // 2. Sort pairs by neighbor; 3. keep singleton neighbors (Φ of the set).
    account_sort(pdm::external_sort(
        pv, ps, num_pairs, kPairBytes,
        [](std::span<const std::byte> r) { return key_at(r, 0); },
        params.memory_bytes));
    std::uint64_t num_unique = 0;
    {
      pdm::RecordReader r(pv, 0, num_pairs, kPairBytes);
      pdm::RecordWriter w(uv, 0, kPairBytes);
      std::vector<std::byte> pending(kPairBytes);
      std::uint64_t run = 0;
      std::uint64_t prev_y = 0;
      while (!r.exhausted()) {
        std::span<const std::byte> pr = r.head();
        std::uint64_t y = key_at(pr, 0);
        if (run > 0 && y == prev_y) {
          ++run;
        } else {
          if (run == 1) {
            w.push(pending);
            ++num_unique;
          }
          run = 1;
          prev_y = y;
          std::memcpy(pending.data(), pr.data(), kPairBytes);
        }
        r.pop();
      }
      if (run == 1) {
        w.push(pending);
        ++num_unique;
      }
      w.finish();
    }

    // 4. Group unique neighbors per key (stable sort keeps them ascending).
    account_sort(pdm::external_sort(
        uv, ps, num_unique, kPairBytes,
        [](std::span<const std::byte> r) { return key_at(r, 8); },
        params.memory_bytes));

    // 5. Co-scan with the (sorted) remaining records: assign keys that have
    //    enough unique neighbors; the rest go to the next level.
    std::uint64_t next_remaining = 0;
    std::uint64_t assigned_here = 0;
    {
      pdm::RecordReader rr(*r_cur, 0, remaining, in_rec);
      pdm::RecordReader ur(uv, 0, num_unique, kPairBytes);
      pdm::RecordWriter nw(*r_next, 0, in_rec);
      std::vector<std::uint64_t> ys;
      std::vector<std::byte> rec(in_rec);
      while (!rr.exhausted()) {
        std::memcpy(rec.data(), rr.head().data(), in_rec);
        rr.pop();
        Key x = key_at(rec, 0);
        ys.clear();
        while (!ur.exhausted() && key_at(ur.head(), 8) == x) {
          ys.push_back(key_at(ur.head(), 0));
          ur.pop();
        }
        if (ys.size() >= need_) {
          Assignment a;
          a.key = x;
          a.id = key_at(rec, 8);
          a.fields.assign(ys.begin(), ys.begin() + need_);
          a.value = std::span<const std::byte>(rec).subspan(16, value_bytes_);
          for (auto& [field, bits] : encode(a)) {
            put_u64(b_rec_buf.data(), field);
            std::fill(b_rec_buf.begin() + 8, b_rec_buf.end(), std::byte{0});
            util::copy_bits_to_bytes(bits, 0, b_rec_buf.data() + 8, 0,
                                     fields_->field_bits());
            b_writer.push(b_rec_buf);
          }
          if (layout_ == StaticLayout::kHeadPointers) {
            auto head = static_cast<std::uint8_t>(a.fields[0] /
                                                  graph_->stripe_size());
            std::byte hb{head};
            membership_->insert(x, std::span<const std::byte>(&hb, 1));
          }
          ++assigned_here;
          stats_.assigned_fields += need_;
        } else {
          nw.push(rec);
          ++next_remaining;
        }
      }
      nw.finish();
    }
    if (assigned_here == 0)
      throw ConstructionError(
          "no key has enough unique neighbors (Lemma 5 failed for this graph "
          "and key set; raise stripe_factor or degree)");
    remaining = next_remaining;
    std::swap(r_cur, r_next);
  }

  // ---- final: sort the global field-content array by field index and fill A
  // (the paper's "most expensive operation in the construction algorithm").
  const std::uint64_t num_b = b_writer.records_written();
  b_writer.finish();
  account_sort(pdm::external_sort(
      bv, bs, num_b, b_rec,
      [](std::span<const std::byte> r) { return key_at(r, 0); },
      params.memory_bytes));
  {
    pdm::RecordReader r(bv, 0, num_b, b_rec);
    bool have_block = false;
    pdm::BlockAddr cur_addr{};
    pdm::Block cur(geom.block_bytes(), std::byte{0});
    while (!r.exhausted()) {
      std::span<const std::byte> rec = r.head();
      std::uint64_t y = key_at(rec, 0);
      pdm::BlockAddr addr = fields_->addr_of(y);
      if (!have_block || !(addr == cur_addr)) {
        if (have_block) disks_->write_block(cur_addr, cur);
        cur_addr = addr;
        std::fill(cur.begin(), cur.end(), std::byte{0});
        have_block = true;
      }
      util::BitVector bits(fields_->field_bits());
      util::copy_bits_from_bytes(rec.data() + 8, 0, bits, 0,
                                 fields_->field_bits());
      fields_->set(cur, y, bits);
      r.pop();
    }
    if (have_block) disks_->write_block(cur_addr, cur);
  }
  stats_.total_io = probe.delta();
}

LookupResult StaticDict::decode_identifiers(
    std::span<const util::BitVector> field_bits) const {
  const std::uint32_t d = graph_->degree();
  std::vector<std::uint64_t> ids(d);
  for (std::uint32_t i = 0; i < d; ++i)
    ids[i] = field_bits[i].get_field(0, id_bits_);

  // Majority identifier among the d fields (paper: "appears in more than
  // half of the fields"); identifier 0 marks an empty field.
  std::uint64_t best_id = 0;
  std::uint32_t best_count = 0;
  for (std::uint32_t i = 0; i < d; ++i) {
    if (ids[i] == 0) continue;
    std::uint32_t count = 0;
    for (std::uint32_t j = 0; j < d; ++j) count += (ids[j] == ids[i]);
    if (count > best_count) {
      best_count = count;
      best_id = ids[i];
    }
  }
  if (best_id == 0 || 2 * best_count <= d) return {};
  if (best_count != need_)
    throw std::logic_error("static dict: majority identifier with wrong "
                           "multiplicity (corrupt array)");

  // Merge the slices in stripe order; no key comparison is needed: no two
  // keys share more than εd < d/2 neighbors, so the majority is authentic.
  const std::size_t sigma_bits = value_bytes_ * 8;
  std::vector<std::byte> value(value_bytes_, std::byte{0});
  std::uint32_t r = 0;
  for (std::uint32_t i = 0; i < d; ++i) {
    if (ids[i] != best_id) continue;
    std::size_t start = static_cast<std::size_t>(r) * slice_bits_;
    std::size_t take =
        start < sigma_bits
            ? std::min<std::size_t>(slice_bits_, sigma_bits - start)
            : 0;
    if (take > 0)
      util::copy_bits_to_bytes(field_bits[i], id_bits_, value.data(), start,
                               take);
    ++r;
  }
  return {true, std::move(value)};
}

LookupResult StaticDict::decode_head_pointers(
    Key key, std::span<const pdm::Block> blocks) const {
  const std::uint32_t d = graph_->degree();
  BasicDict::Probe probe =
      membership_->inspect(key, blocks.subspan(0, membership_->degree()));
  if (!probe.found) return {};
  std::uint32_t cur = static_cast<std::uint8_t>(probe.value.at(0));

  const std::size_t sigma_bits = value_bytes_ * 8;
  std::vector<std::byte> value(value_bytes_, std::byte{0});
  std::size_t collected = 0;
  for (std::uint32_t hops = 0; hops < need_; ++hops) {
    if (cur >= d)
      throw std::logic_error("static dict: head-pointer list walked off the "
                             "stripe range (corrupt array)");
    std::uint64_t field = graph_->neighbor(key, cur);
    util::BitVector bits =
        fields_->get(blocks[membership_->degree() + cur], field);
    util::BitReader r(bits, 0, fields_->field_bits());
    std::uint64_t delta = r.read_unary();
    std::size_t room = fields_->field_bits() - r.position();
    std::size_t take = std::min(room, sigma_bits - collected);
    if (take > 0) {
      util::copy_bits_to_bytes(bits, r.position(), value.data(), collected,
                               take);
      collected += take;
    }
    if (delta == 0) break;  // tail field starts with a 0-bit
    cur += static_cast<std::uint32_t>(delta);
  }
  if (collected != sigma_bits)
    throw std::logic_error("static dict: reassembled record is short "
                           "(corrupt array)");
  return {true, std::move(value)};
}

LookupResult StaticDict::lookup(Key key) {
  if (key == kTombstone || key >= universe_size_)
    throw std::invalid_argument("key outside universe");
  obs::OpScope op(*disks_, obs::OpKind::kLookup, "static_dict");
  obs::Span span(*disks_, "lookup");
  const std::uint32_t d = graph_->degree();
  if (layout_ == StaticLayout::kIdentifiers) {
    std::vector<std::uint64_t> gamma = graph_->neighbors(key);
    std::vector<util::BitVector> field_bits = fields_->read_fields(gamma);
    LookupResult r = decode_identifiers(field_bits);
    op.set_outcome(r.found ? obs::OpOutcome::kHit : obs::OpOutcome::kMiss);
    return r;
  }
  // Case (a): probe the membership dictionary and the retrieval array in the
  // same parallel I/O (they live on disjoint disks).
  std::vector<pdm::BlockAddr> addrs = membership_->probe_addrs(key);
  for (std::uint32_t i = 0; i < d; ++i)
    addrs.push_back(fields_->addr_of(graph_->neighbor(key, i)));
  std::vector<pdm::Block> blocks;
  disks_->read_batch(addrs, blocks);
  LookupResult r = decode_head_pointers(key, blocks);
  op.set_outcome(r.found ? obs::OpOutcome::kHit : obs::OpOutcome::kMiss);
  return r;
}

}  // namespace pddict::core
