// The wide-bandwidth dictionary of Section 4.1 ("with satellite information").
//
// For satellite data of size O(BD / log N) per key, the paper changes the
// load balancing parameters to k = d/2 and v = kN / log N: a record is split
// into k fragments, and the k fragments are placed one by one into currently
// least-loaded buckets among the key's d expander neighborhoods (the
// Section 3 scheme with k items per vertex; several fragments may share a
// bucket). A lookup reads the d candidate buckets — one block per disk, a
// single parallel I/O — and reassembles the fragments found there, so the
// whole satellite record is returned in one probe.
#pragma once

#include <cstdint>
#include <memory>

#include "core/dictionary.hpp"
#include "expander/seeded_expander.hpp"
#include "pdm/disk_array.hpp"

namespace pddict::core {

struct WideDictParams {
  std::uint64_t universe_size = 0;
  std::uint64_t capacity = 0;    // N
  std::size_t value_bytes = 0;   // σ, up to ~ (d/2)·(B − overhead)
  std::uint32_t degree = 0;      // d; 0 → O(log u)
  std::uint32_t fragments = 0;   // k; 0 → d/2 (the paper's choice)
  double load_headroom = 2.0;
  std::uint64_t seed = 0x71de;
};

class WideDict final : public Dictionary {
 public:
  WideDict(pdm::DiskArray& disks, std::uint32_t first_disk,
           std::uint64_t base_block, const WideDictParams& params);

  bool insert(Key key, std::span<const std::byte> value) override;
  LookupResult lookup(Key key) override;
  bool erase(Key key) override;
  std::uint64_t size() const override { return size_; }
  std::size_t value_bytes() const override { return value_bytes_; }

  std::uint32_t degree() const { return graph_->degree(); }
  std::uint32_t fragments() const { return k_; }
  std::size_t fragment_bytes() const { return fragment_bytes_; }
  std::uint64_t num_buckets() const { return graph_->right_size(); }
  std::uint32_t bucket_capacity() const { return bucket_capacity_; }
  std::uint64_t blocks_per_disk() const { return graph_->stripe_size(); }

  /// Largest satellite size (bytes) a geometry can return in one probe with
  /// the given degree — the structure's *bandwidth* in the paper's sense.
  static std::size_t max_bandwidth(const pdm::Geometry& geometry,
                                   std::uint32_t degree,
                                   std::uint64_t capacity);

 private:
  void check_key(Key key) const;
  std::vector<pdm::BlockAddr> probe_addrs(Key key) const;

  pdm::DiskArray* disks_;
  std::uint32_t first_disk_;
  std::uint64_t base_block_;
  std::uint64_t universe_size_;
  std::uint64_t capacity_;
  std::size_t value_bytes_;
  std::uint32_t k_;
  std::size_t fragment_bytes_;
  std::size_t frag_record_bytes_;
  std::uint32_t bucket_capacity_;
  std::uint64_t size_ = 0;
  std::unique_ptr<expander::SeededExpander> graph_;
};

}  // namespace pddict::core
