// The dynamic full-bandwidth dictionary of Section 4.3 (Theorem 7).
//
// Dynamizes the case (a) static dictionary. Two sub-structures share 2d
// disks: the Section 4.1 membership dictionary (disks 0..d−1) stores each key
// with its head pointer and level, and l = Θ(log N) retrieval arrays
// A_1 ⊃ A_2 ⊃ … of geometrically decreasing size (ratio r = 6ε <
// 1/(1 + 1/ɛ)) live on disks d..2d−1, each indexed by its own striped
// expander of the same degree d.
//
// Insertion is first-fit: find the first array with ≥ ⌈2d/3⌉ fields free for
// x "at that moment", thread the satellite slices into those fields with
// unary-coded relative pointers, and record (head, level) in the membership
// dictionary. Lemma 5 bounds the spill to level i+1 by a 6ε fraction, so a
// sequence of n insertions costs n parallel writes and < n(1 + 6ε + (6ε)² +…)
// reads — i.e. 2 + ɛ I/Os on average, with worst case O(log N).
//
// Lookups probe the membership dictionary and A_1 in the same parallel I/O:
// an unsuccessful search therefore takes exactly one I/O, and a successful
// search needs a second I/O only for the ≤ ɛ/(1+ɛ) fraction of elements that
// live below A_1 — 1 + ɛ I/Os averaged over S.
#pragma once

#include <cstdint>
#include <memory>

#include "core/basic_dict.hpp"
#include "core/dictionary.hpp"
#include "core/field_array.hpp"
#include "expander/seeded_expander.hpp"
#include "pdm/allocator.hpp"

namespace pddict::core {

struct DynamicDictParams {
  std::uint64_t universe_size = 0;
  std::uint64_t capacity = 0;   // N
  std::size_t value_bytes = 0;  // σ / 8
  /// The paper's ɛ: average lookups 1+ɛ, updates 2+ɛ.
  double epsilon_op = 0.5;
  /// d; 0 → max(O(log u), 6(1+1/ɛ)+1) as Theorem 7 requires.
  std::uint32_t degree = 0;
  double stripe_factor = 4.0;   // A_1 fields per stripe = factor · N
  std::uint32_t max_levels = 16;
  std::uint64_t min_fields_per_stripe = 8;
  std::uint64_t seed = 0xd1ce;
};

class DynamicDict final : public Dictionary {
 public:
  DynamicDict(pdm::DiskArray& disks, std::uint32_t first_disk,
              pdm::DiskAllocator& alloc, const DynamicDictParams& params);

  bool insert(Key key, std::span<const std::byte> value) override;
  LookupResult lookup(Key key) override;
  bool erase(Key key) override;
  std::uint64_t size() const override { return size_; }
  std::size_t value_bytes() const override { return value_bytes_; }

  static std::uint32_t degree_for(const DynamicDictParams& params);
  static std::uint32_t disks_needed(const DynamicDictParams& params) {
    return 2 * degree_for(params);
  }

  std::uint32_t degree() const { return d_; }
  std::uint32_t levels() const { return static_cast<std::uint32_t>(levels_.size()); }
  double shrink_ratio() const { return shrink_; }
  std::uint32_t fields_required() const { return need_; }
  /// Elements currently stored at each level (level 0 = A_1).
  const std::vector<std::uint64_t>& level_population() const {
    return level_population_;
  }

  /// Global-rebuilding support: removes and returns up to `max_records`
  /// records, advancing an internal scan cursor over the membership buckets.
  /// Returns an empty vector when the structure is drained. Each popped
  /// record costs the bucket scan plus one erase + one lookup.
  std::vector<std::pair<Key, std::vector<std::byte>>> drain_some(
      std::uint32_t max_records);
  /// Buckets left for drain_some to visit (0 = fully drained cursor).
  std::uint64_t drain_remaining_buckets() const;

 private:
  struct Level {
    std::unique_ptr<expander::SeededExpander> graph;
    std::unique_ptr<FieldArray> fields;
  };

  void check_key(Key key) const;
  /// Field-block addresses of Γ_level(x) (one per stripe/disk).
  std::vector<pdm::BlockAddr> level_addrs(std::uint32_t level, Key key) const;
  /// Decode x's record from the level's probe blocks, starting at `head`.
  std::vector<std::byte> decode(std::uint32_t level, Key key,
                                std::uint32_t head,
                                std::span<const pdm::Block> blocks) const;

  pdm::DiskArray* disks_;
  std::uint32_t first_disk_;
  std::uint64_t universe_size_;
  std::uint64_t capacity_;
  std::size_t value_bytes_;
  std::uint32_t d_;
  std::uint32_t need_;
  std::uint32_t field_bits_;
  double shrink_;
  std::uint64_t size_ = 0;
  std::unique_ptr<BasicDict> membership_;
  std::vector<Level> levels_;
  std::vector<std::uint64_t> level_population_;
  std::uint64_t drain_cursor_ = 0;
};

}  // namespace pddict::core
