// Fully dynamic Theorem 7 dictionary: the Section 4 introduction's global
// rebuilding applied to the Section 4.3 structure.
//
// FullDict removes the capacity bound from the *basic* dictionary; this
// wrapper does the same for the full-bandwidth dynamic dictionary, giving an
// unbounded-size, deletion-supporting structure whose operations keep the
// 1+ɛ / 2+ɛ average and O(log N) worst-case I/O character (times the
// constant two-structures factor during migrations). Two DynamicDicts on
// disjoint 2d-disk halves alternate as active/building, with a constant
// number of records migrated per update via DynamicDict::drain_some.
#pragma once

#include <cstdint>
#include <memory>

#include "core/dictionary.hpp"
#include "core/dynamic_dict.hpp"
#include "pdm/allocator.hpp"

namespace pddict::core {

struct FullDynamicParams {
  std::uint64_t universe_size = 0;
  std::size_t value_bytes = 0;
  double epsilon_op = 0.5;
  std::uint32_t degree = 0;  // d; 0 → Theorem 7's requirement
  std::uint64_t initial_capacity = 64;
  std::uint32_t moves_per_op = 4;
  std::uint64_t seed = 0xfd7;
};

class FullDynamicDict final : public Dictionary {
 public:
  /// Uses disks [first_disk, first_disk + 4d): two 2d-disk halves.
  FullDynamicDict(pdm::DiskArray& disks, std::uint32_t first_disk,
                  pdm::DiskAllocator& alloc, const FullDynamicParams& params);

  bool insert(Key key, std::span<const std::byte> value) override;
  LookupResult lookup(Key key) override;
  bool erase(Key key) override;
  std::uint64_t size() const override;
  std::size_t value_bytes() const override { return params_.value_bytes; }

  bool migrating() const { return building_ != nullptr; }
  std::uint64_t rebuilds() const { return rebuilds_; }
  std::uint64_t active_capacity() const { return active_capacity_; }
  static std::uint32_t disks_needed(const FullDynamicParams& params);

 private:
  std::unique_ptr<DynamicDict> make_structure(std::uint64_t capacity,
                                              std::uint32_t half);
  void start_rebuild(std::uint64_t new_capacity);
  void migration_step();

  pdm::DiskArray* disks_;
  std::uint32_t first_disk_;
  pdm::DiskAllocator* alloc_;
  FullDynamicParams params_;
  std::uint32_t degree_;

  std::unique_ptr<DynamicDict> active_;
  std::unique_ptr<DynamicDict> building_;
  std::uint32_t active_half_ = 0;
  std::uint64_t active_capacity_ = 0;
  std::uint64_t building_capacity_ = 0;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t erased_since_rebuild_ = 0;
};

}  // namespace pddict::core
