#include "core/manifest.hpp"

#include "pdm/block.hpp"

namespace pddict::core {

namespace {
constexpr std::uint64_t kMagic = 0x7064646963745354ULL;  // "pddictST"
constexpr std::uint32_t kVersion = 1;

// Manifest block layout (all little-endian):
//   0: magic u64           8: version u32      12: reserved u32
//  16: universe_size u64  24: capacity u64     32: value_bytes u64
//  40: degree u32         44: bucket_blocks u32
//  48: load_headroom f64  56: seed u64         64: base_block u64
//  72: record_count u64   80: count_valid u32
}  // namespace

void write_manifest(pdm::DiskArray& disks, const StoreManifest& m) {
  if (disks.geometry().block_bytes() < 84)
    throw std::invalid_argument("block too small for a manifest");
  pdm::Block block(disks.geometry().block_bytes(), std::byte{0});
  pdm::store_pod<std::uint64_t>(block, 0, kMagic);
  pdm::store_pod<std::uint32_t>(block, 8, kVersion);
  pdm::store_pod<std::uint64_t>(block, 16, m.params.universe_size);
  pdm::store_pod<std::uint64_t>(block, 24, m.params.capacity);
  pdm::store_pod<std::uint64_t>(block, 32, m.params.value_bytes);
  pdm::store_pod<std::uint32_t>(block, 40, m.params.degree);
  pdm::store_pod<std::uint32_t>(block, 44, m.params.bucket_blocks);
  pdm::store_pod<double>(block, 48, m.params.load_headroom);
  pdm::store_pod<std::uint64_t>(block, 56, m.params.seed);
  pdm::store_pod<std::uint64_t>(block, 64, m.base_block);
  pdm::store_pod<std::uint64_t>(block, 72, m.record_count);
  pdm::store_pod<std::uint32_t>(block, 80, m.count_valid ? 1 : 0);
  disks.write_block({0, 0}, std::move(block));
}

std::optional<StoreManifest> read_manifest(pdm::DiskArray& disks) {
  if (disks.geometry().block_bytes() < 84)
    throw std::invalid_argument("block too small for a manifest");
  pdm::Block block = disks.read_block({0, 0});
  if (pdm::load_pod<std::uint64_t>(block, 0) != kMagic) return std::nullopt;
  if (pdm::load_pod<std::uint32_t>(block, 8) != kVersion)
    throw std::runtime_error("manifest version mismatch");
  StoreManifest m;
  m.params.universe_size = pdm::load_pod<std::uint64_t>(block, 16);
  m.params.capacity = pdm::load_pod<std::uint64_t>(block, 24);
  m.params.value_bytes = pdm::load_pod<std::uint64_t>(block, 32);
  m.params.degree = pdm::load_pod<std::uint32_t>(block, 40);
  m.params.bucket_blocks = pdm::load_pod<std::uint32_t>(block, 44);
  m.params.load_headroom = pdm::load_pod<double>(block, 48);
  m.params.seed = pdm::load_pod<std::uint64_t>(block, 56);
  m.base_block = pdm::load_pod<std::uint64_t>(block, 64);
  m.record_count = pdm::load_pod<std::uint64_t>(block, 72);
  m.count_valid = pdm::load_pod<std::uint32_t>(block, 80) != 0;
  return m;
}

BasicDict open_store(pdm::DiskArray& disks,
                     const BasicDictParams& fresh_params) {
  auto existing = read_manifest(disks);
  StoreManifest m;
  if (existing) {
    m = *existing;
  } else {
    m.params = fresh_params;
    m.base_block = 1;
    write_manifest(disks, m);
  }
  BasicDict dict(disks, 0, m.base_block, m.params);
  if (existing) {
    if (m.count_valid) {
      dict.restore_size(m.record_count);
      // Clear the flag: until the next clean close, the count on disk is
      // untrusted (a crash would otherwise resurrect a stale value).
      m.count_valid = false;
      write_manifest(disks, m);
    } else {
      dict.recover_size();  // crash recovery: rescan
    }
  }
  return dict;
}

void close_store(pdm::DiskArray& disks, const BasicDict& store) {
  auto m = read_manifest(disks);
  if (!m) throw std::runtime_error("close_store: no manifest present");
  m->record_count = store.size();
  m->count_valid = true;
  write_manifest(disks, *m);
}

}  // namespace pddict::core
