#include "core/full_dynamic_dict.hpp"

#include <algorithm>

#include "obs/op_context.hpp"
#include "obs/span.hpp"

namespace pddict::core {

std::uint32_t FullDynamicDict::disks_needed(const FullDynamicParams& p) {
  DynamicDictParams dp;
  dp.universe_size = p.universe_size;
  dp.epsilon_op = p.epsilon_op;
  dp.degree = p.degree;
  return 2 * DynamicDict::disks_needed(dp);  // two 2d halves
}

FullDynamicDict::FullDynamicDict(pdm::DiskArray& disks,
                                 std::uint32_t first_disk,
                                 pdm::DiskAllocator& alloc,
                                 const FullDynamicParams& p)
    : disks_(&disks), first_disk_(first_disk), alloc_(&alloc), params_(p) {
  if (p.moves_per_op < 2)
    throw std::invalid_argument("moves_per_op must be >= 2");
  DynamicDictParams dp;
  dp.universe_size = p.universe_size;
  dp.epsilon_op = p.epsilon_op;
  dp.degree = p.degree;
  degree_ = DynamicDict::degree_for(dp);
  if (first_disk + 4 * degree_ > disks.geometry().num_disks)
    throw std::invalid_argument("needs 4d disks (two 2d halves)");
  active_capacity_ = std::max<std::uint64_t>(p.initial_capacity, 16);
  active_ = make_structure(active_capacity_, 0);
}

std::unique_ptr<DynamicDict> FullDynamicDict::make_structure(
    std::uint64_t capacity, std::uint32_t half) {
  DynamicDictParams dp;
  dp.universe_size = params_.universe_size;
  dp.capacity = capacity;
  dp.value_bytes = params_.value_bytes;
  dp.epsilon_op = params_.epsilon_op;
  dp.degree = degree_;
  dp.seed = params_.seed + 0x77 * ++generation_;
  return std::make_unique<DynamicDict>(
      *disks_, first_disk_ + half * 2 * degree_, *alloc_, dp);
}

void FullDynamicDict::start_rebuild(std::uint64_t new_capacity) {
  building_capacity_ = std::max<std::uint64_t>(new_capacity, 16);
  building_ = make_structure(building_capacity_, 1 - active_half_);
}

void FullDynamicDict::migration_step() {
  if (!building_) return;
  obs::OpScope op(*disks_, obs::OpKind::kRebuild, "full_dynamic_dict");
  obs::Span span(*disks_, "rebuild");
  auto records = active_->drain_some(params_.moves_per_op);
  for (auto& [key, value] : records) building_->insert(key, value);
  if (active_->size() == 0 && active_->drain_remaining_buckets() == 0) {
    active_ = std::move(building_);
    active_half_ = 1 - active_half_;
    active_capacity_ = building_capacity_;
    erased_since_rebuild_ = 0;
    ++rebuilds_;
    // Note: the retired structure's disk range is reused by the next
    // generation through the allocator; its blocks were all cleared by the
    // drain (erase zeroes fields and tombstones membership).
  }
}

bool FullDynamicDict::insert(Key key, std::span<const std::byte> value) {
  obs::OpScope op(*disks_, obs::OpKind::kInsert, "full_dynamic_dict");
  obs::Span span(*disks_, "insert");
  if (lookup(key).found) return false;
  if (!building_ && active_->size() >= active_capacity_)
    start_rebuild(active_capacity_ * 2);
  DynamicDict* target = building_ ? building_.get() : active_.get();
  bool inserted = target->insert(key, value);
  migration_step();
  return inserted;
}

LookupResult FullDynamicDict::lookup(Key key) {
  obs::OpScope op(*disks_, obs::OpKind::kLookup, "full_dynamic_dict");
  auto r = active_->lookup(key);
  if (!r.found && building_) r = building_->lookup(key);
  op.set_outcome(r.found ? obs::OpOutcome::kHit : obs::OpOutcome::kMiss);
  return r;
}

bool FullDynamicDict::erase(Key key) {
  obs::OpScope op(*disks_, obs::OpKind::kErase, "full_dynamic_dict");
  obs::Span span(*disks_, "erase");
  bool erased = active_->erase(key);
  if (!erased && building_) erased = building_->erase(key);
  if (erased) {
    ++erased_since_rebuild_;
    if (!building_ && erased_since_rebuild_ > size() + 1)
      start_rebuild(std::max<std::uint64_t>(2 * size(),
                                            params_.initial_capacity));
  }
  migration_step();
  return erased;
}

std::uint64_t FullDynamicDict::size() const {
  return active_->size() + (building_ ? building_->size() : 0);
}

}  // namespace pddict::core
