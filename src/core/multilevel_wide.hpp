// The Section 6 ("Open problems") sketch: full bandwidth with 1-I/O lookups
// AND updates — "apply the load balancing scheme with k = Ω(d), recursively,
// for some constant number of levels before relying on a brute-force
// approach. However, this makes the time for updates non-constant."
//
// This is the paper's future-work construction, implemented per its sketch:
// a constant number ℓ of fragment arrays, each a §4.1-style wide dictionary
// level with k = d/2 load balancing, living on ℓ·d *disjoint* disk groups.
// A lookup reads the candidate buckets of ALL levels in a single parallel
// I/O (one block per disk across ℓ·d disks) and reassembles the fragments
// from whichever level holds them — full bandwidth, one probe, worst case.
//
// Insertion is first-fit over levels under a per-level load cap τ: the k
// fragments go to the first level whose candidate buckets can absorb them
// without exceeding τ; the last level ("brute force") accepts anything up to
// physical block capacity. Because insertion reads all levels at once, the
// common path is still read + write = 2 I/Os; the non-constant part the
// paper warns about shows up as the growing in-memory rebalancing work and,
// if the caps are mis-tuned, as CapacityError at the brute-force tail — both
// measured by bench_ext_sec6.
#pragma once

#include <cstdint>
#include <memory>

#include "core/dictionary.hpp"
#include "core/wide_dict.hpp"
#include "expander/seeded_expander.hpp"
#include "pdm/allocator.hpp"

namespace pddict::core {

struct MultiLevelWideParams {
  std::uint64_t universe_size = 0;
  std::uint64_t capacity = 0;    // N
  std::size_t value_bytes = 0;   // σ — full bandwidth, up to ~(d/2)·block
  std::uint32_t degree = 0;      // d per level; 0 → O(log u)
  std::uint32_t levels = 3;      // ℓ, the paper's "constant number of levels"
  /// Level shrink ratio (level i+1 has ratio × the buckets of level i).
  double shrink = 0.25;
  /// Load cap τ as a fraction of physical bucket capacity for levels < ℓ−1.
  double cap_fraction = 0.5;
  std::uint64_t seed = 0x6a11;
};

class MultiLevelWideDict final : public Dictionary {
 public:
  MultiLevelWideDict(pdm::DiskArray& disks, std::uint32_t first_disk,
                     pdm::DiskAllocator& alloc,
                     const MultiLevelWideParams& params);

  bool insert(Key key, std::span<const std::byte> value) override;
  /// Exactly one parallel I/O, hit or miss, full record returned.
  LookupResult lookup(Key key) override;
  bool erase(Key key) override;
  std::uint64_t size() const override { return size_; }
  std::size_t value_bytes() const override { return value_bytes_; }

  static std::uint32_t disks_needed(const MultiLevelWideParams& params);
  std::uint32_t degree() const { return d_; }
  std::uint32_t num_levels() const { return static_cast<std::uint32_t>(levels_.size()); }
  std::uint32_t fragments() const { return k_; }
  const std::vector<std::uint64_t>& level_population() const {
    return level_population_;
  }

 private:
  struct Level {
    std::unique_ptr<expander::SeededExpander> graph;
    std::uint32_t first_disk;
    std::uint64_t base_block;
    std::uint32_t cap;  // fragment cap per bucket at this level
  };
  void check_key(Key key) const;
  /// Candidate block addresses of every level, level-major (ℓ·d entries).
  std::vector<pdm::BlockAddr> probe_addrs(Key key) const;
  std::uint32_t bucket_count(const pdm::Block& b) const;

  pdm::DiskArray* disks_;
  std::uint64_t universe_size_;
  std::uint64_t capacity_;
  std::size_t value_bytes_;
  std::uint32_t d_;
  std::uint32_t k_;
  std::size_t fragment_bytes_;
  std::size_t frag_record_bytes_;
  std::uint32_t bucket_capacity_;  // physical fragments per block
  std::uint64_t size_ = 0;
  std::vector<Level> levels_;
  std::vector<std::uint64_t> level_population_;
};

}  // namespace pddict::core
