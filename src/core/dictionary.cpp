#include "core/dictionary.hpp"

#include <cstring>

#include "util/prng.hpp"

namespace pddict::core {

std::vector<std::byte> make_value(std::uint64_t payload, std::size_t bytes) {
  std::vector<std::byte> v(bytes, std::byte{0});
  std::memcpy(v.data(), &payload, std::min(bytes, sizeof(payload)));
  return v;
}

std::vector<std::byte> value_for_key(Key key, std::size_t bytes,
                                     std::uint64_t salt) {
  std::vector<std::byte> v(bytes);
  util::SplitMix64 rng(util::mix64(key) ^ salt);
  for (auto& b : v) b = static_cast<std::byte>(rng.next() & 0xff);
  return v;
}

}  // namespace pddict::core
