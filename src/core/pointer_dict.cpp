#include "core/pointer_dict.hpp"

#include "obs/op_context.hpp"
#include "pdm/block.hpp"

namespace pddict::core {

PointerDict::PointerDict(pdm::DiskArray& disks, std::uint32_t first_disk,
                         pdm::DiskAllocator& alloc,
                         const PointerDictParams& p) {
  BasicDictParams bp;
  bp.universe_size = p.universe_size;
  bp.capacity = p.capacity;
  bp.value_bytes = sizeof(std::uint64_t);  // the extent id
  bp.degree = p.degree;
  bp.seed = p.seed;
  std::uint64_t base = alloc.reserve(0);
  index_ = std::make_unique<BasicDict>(disks, first_disk, base, bp);
  alloc.reserve(index_->blocks_per_disk());
  // Extent region: generous sparse reservation (address space is free).
  std::uint64_t extent_base = alloc.reserve(std::uint64_t{1} << 32);
  extents_ = std::make_unique<pdm::ExtentStore>(
      pdm::StripedView(disks, extent_base, std::uint64_t{1} << 32));
}

bool PointerDict::insert(Key key, std::span<const std::byte> record) {
  obs::OpScope op(index_->disks(), obs::OpKind::kInsert, "pointer_dict");
  // Composable probe: duplicate check and index insert share one read round,
  // so the total is 1 read + extent write(s) + 1 index write.
  auto addrs = index_->probe_addrs(key);
  std::vector<pdm::Block> blocks;
  index_->disks().read_batch(addrs, blocks);
  if (index_->inspect(key, blocks).found) return false;  // no extent leaked
  std::uint64_t id = extents_->append(record);
  std::vector<std::byte> value(sizeof(std::uint64_t));
  pdm::store_pod<std::uint64_t>(value, 0, id);
  auto writes = index_->plan_insert(key, value, blocks);
  if (!writes) return false;
  index_->disks().write_batch(*writes);
  return true;
}

LookupResult PointerDict::lookup(Key key) {
  obs::OpScope op(index_->disks(), obs::OpKind::kLookup, "pointer_dict");
  LookupResult pointer = index_->lookup(key);
  if (!pointer.found) {
    op.set_outcome(obs::OpOutcome::kMiss);
    return {};
  }
  op.set_outcome(obs::OpOutcome::kHit);
  std::uint64_t id = pdm::load_pod<std::uint64_t>(pointer.value, 0);
  return {true, extents_->read(id)};
}

bool PointerDict::erase(Key key) {
  obs::OpScope op(index_->disks(), obs::OpKind::kErase, "pointer_dict");
  return index_->erase(key);
}

}  // namespace pddict::core
