// Pointer-indirection dictionary (paper, §1.1 / §4.1 satellite remarks).
//
// "One can always use the dictionary to retrieve a pointer to satellite
// information of size BD, which can then be retrieved in an extra I/O."
//
// PointerDict composes the Section 4.1 dictionary (storing an 8-byte extent
// id per key) with an ExtentStore holding arbitrarily large satellite
// records. Lookups cost exactly 2 parallel I/Os for records up to a full
// stripe (1 to find the pointer, 1 to follow it), insertions 3 (extent write
// + dictionary read + write), with NO upper bound on the record size other
// than linear growth in I/Os — the escape hatch for data beyond every
// in-dictionary bandwidth in Figure 1.
#pragma once

#include <cstdint>
#include <memory>

#include "core/basic_dict.hpp"
#include "core/dictionary.hpp"
#include "pdm/allocator.hpp"
#include "pdm/extent_store.hpp"

namespace pddict::core {

struct PointerDictParams {
  std::uint64_t universe_size = 0;
  std::uint64_t capacity = 0;
  std::uint32_t degree = 0;  // d; 0 → O(log u)
  std::uint64_t seed = 0x90d1;
};

/// Values are variable-length per call (unlike the fixed-σ Dictionary
/// interface), so PointerDict exposes its own API.
class PointerDict {
 public:
  PointerDict(pdm::DiskArray& disks, std::uint32_t first_disk,
              pdm::DiskAllocator& alloc, const PointerDictParams& params);

  /// Inserts key with an arbitrarily large record. Returns false on
  /// duplicate (the extent is not written in that case).
  bool insert(Key key, std::span<const std::byte> record);

  /// 1 I/O for the pointer + ceil(size / BD) I/Os for the record.
  LookupResult lookup(Key key);

  bool erase(Key key);  // the extent becomes unreferenced (space reclaimed
                        // by global rebuilding in a full system)
  std::uint64_t size() const { return index_->size(); }

  std::uint32_t disks_needed() const { return index_->num_disks_used(); }
  const pdm::ExtentStore& extents() const { return *extents_; }

 private:
  std::unique_ptr<BasicDict> index_;
  std::unique_ptr<pdm::ExtentStore> extents_;
};

}  // namespace pddict::core
