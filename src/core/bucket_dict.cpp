#include "core/bucket_dict.hpp"

#include "util/math.hpp"

namespace pddict::core {

BasicDictParams bucket_dict_params(std::uint64_t universe_size,
                                   std::uint64_t capacity,
                                   std::size_t value_bytes,
                                   const pdm::Geometry& geometry,
                                   std::uint32_t min_bucket_capacity,
                                   std::uint32_t degree,
                                   std::uint64_t seed) {
  BasicDictParams p;
  p.universe_size = universe_size;
  p.capacity = capacity;
  p.value_bytes = value_bytes;
  p.degree = degree;
  p.seed = seed;
  const std::size_t record_bytes = sizeof(Key) + value_bytes;
  const std::size_t header = 8;
  // Blocks needed so the bucket holds min_bucket_capacity records.
  std::size_t bytes_needed = header + record_bytes * min_bucket_capacity;
  p.bucket_blocks = static_cast<std::uint32_t>(
      util::ceil_div<std::uint64_t>(bytes_needed, geometry.block_bytes()));
  return p;
}

}  // namespace pddict::core
