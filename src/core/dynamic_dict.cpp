#include "core/dynamic_dict.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/op_context.hpp"
#include "obs/span.hpp"
#include "util/math.hpp"

namespace pddict::core {

// Dynamic field format: [occupied bit][unary relative pointer][payload bits].
// An all-zero field (occupied bit 0) is free, so fresh disks start empty.

std::uint32_t DynamicDict::degree_for(const DynamicDictParams& p) {
  if (p.degree) return p.degree;
  std::uint32_t by_universe = expander::recommended_degree(p.universe_size);
  // Theorem 7: d > 6(1 + 1/ɛ).
  auto by_epsilon = static_cast<std::uint32_t>(
      std::floor(6.0 * (1.0 + 1.0 / p.epsilon_op)) + 1);
  return std::max(by_universe, by_epsilon);
}

DynamicDict::DynamicDict(pdm::DiskArray& disks, std::uint32_t first_disk,
                         pdm::DiskAllocator& alloc,
                         const DynamicDictParams& p)
    : disks_(&disks),
      first_disk_(first_disk),
      universe_size_(p.universe_size),
      capacity_(p.capacity),
      value_bytes_(p.value_bytes) {
  if (p.universe_size < 2 || p.capacity < 1)
    throw std::invalid_argument("degenerate dynamic dictionary parameters");
  if (p.epsilon_op <= 0.0)
    throw std::invalid_argument("epsilon must be positive");
  d_ = degree_for(p);
  if (d_ <= 6.0 * (1.0 + 1.0 / p.epsilon_op))
    throw std::invalid_argument("Theorem 7 requires d > 6(1 + 1/epsilon)");
  if (d_ > 255) throw std::invalid_argument("head pointers require d <= 255");
  if (first_disk + 2 * d_ > disks.geometry().num_disks)
    throw std::invalid_argument("dynamic dictionary needs 2d disks");
  need_ = util::ceil_div<std::uint32_t>(2 * d_, 3);

  // Shrink ratio r = 6ε: the paper picks ε with 1/d < 6ε < 1/(1 + 1/ɛ); we
  // sit just below the upper end, which maximizes space shrinkage while
  // keeping the geometric read series summing to < 1 + ɛ.
  shrink_ = 0.95 / (1.0 + 1.0 / p.epsilon_op);

  const std::size_t sigma_bits = value_bytes_ * 8;
  std::uint32_t slice_bits = static_cast<std::uint32_t>(
      util::ceil_div<std::uint64_t>(3 * sigma_bits, 2 * d_));
  field_bits_ = slice_bits + 5;  // +4 pointer average, +1 occupied bit
  std::uint32_t floor_bits = static_cast<std::uint32_t>(
      util::ceil_div<std::uint64_t>(sigma_bits + d_ + 2 * need_, need_));
  field_bits_ = std::max({field_bits_, floor_bits, 3u});

  BasicDictParams mp;
  mp.universe_size = p.universe_size;
  mp.capacity = p.capacity;
  mp.value_bytes = 2;  // [head pointer][level]
  mp.degree = d_;
  mp.seed = p.seed + 0x999;
  std::uint64_t mbase = alloc.reserve(0);
  membership_ = std::make_unique<BasicDict>(disks, first_disk_, mbase, mp);
  alloc.reserve(membership_->blocks_per_disk());

  std::uint64_t per_stripe = std::max<std::uint64_t>(
      p.min_fields_per_stripe,
      static_cast<std::uint64_t>(p.stripe_factor *
                                 static_cast<double>(p.capacity)));
  for (std::uint32_t i = 0; i < p.max_levels; ++i) {
    Level level;
    level.graph = std::make_unique<expander::SeededExpander>(
        p.universe_size, per_stripe * d_, d_, p.seed + 13 * (i + 1));
    std::uint64_t base = alloc.reserve(0);
    level.fields = std::make_unique<FieldArray>(
        disks, first_disk_ + d_, base, per_stripe * d_, field_bits_, d_);
    alloc.reserve(level.fields->blocks_per_stripe());
    levels_.push_back(std::move(level));
    if (per_stripe <= p.min_fields_per_stripe) break;
    per_stripe = std::max<std::uint64_t>(
        p.min_fields_per_stripe,
        static_cast<std::uint64_t>(
            std::ceil(shrink_ * static_cast<double>(per_stripe))));
  }
  level_population_.assign(levels_.size(), 0);
}

void DynamicDict::check_key(Key key) const {
  if (key == kTombstone || key >= universe_size_)
    throw std::invalid_argument("key outside universe");
}

std::vector<pdm::BlockAddr> DynamicDict::level_addrs(std::uint32_t level,
                                                     Key key) const {
  const Level& lv = levels_[level];
  std::vector<pdm::BlockAddr> addrs;
  addrs.reserve(d_);
  for (std::uint32_t i = 0; i < d_; ++i)
    addrs.push_back(lv.fields->addr_of(lv.graph->neighbor(key, i)));
  return addrs;
}

std::vector<std::byte> DynamicDict::decode(
    std::uint32_t level, Key key, std::uint32_t head,
    std::span<const pdm::Block> blocks) const {
  const Level& lv = levels_[level];
  const std::size_t sigma_bits = value_bytes_ * 8;
  std::vector<std::byte> value(value_bytes_, std::byte{0});
  std::size_t collected = 0;
  std::uint32_t cur = head;
  for (std::uint32_t hops = 0; hops < need_; ++hops) {
    if (cur >= d_)
      throw std::logic_error("dynamic dict: list walked off stripe range");
    std::uint64_t field = lv.graph->neighbor(key, cur);
    util::BitVector bits = lv.fields->get(blocks[cur], field);
    util::BitReader r(bits, 0, field_bits_);
    if (!r.read_bit())
      throw std::logic_error("dynamic dict: list reached a free field");
    std::uint64_t delta = r.read_unary();
    std::size_t room = field_bits_ - r.position();
    std::size_t take = std::min(room, sigma_bits - collected);
    if (take > 0) {
      util::copy_bits_to_bytes(bits, r.position(), value.data(), collected,
                               take);
      collected += take;
    }
    if (delta == 0) break;
    cur += static_cast<std::uint32_t>(delta);
  }
  if (collected != sigma_bits)
    throw std::logic_error("dynamic dict: reassembled record is short");
  return value;
}

bool DynamicDict::insert(Key key, std::span<const std::byte> value) {
  obs::OpScope op(*disks_, obs::OpKind::kInsert, "dynamic_dict");
  obs::Span span(*disks_, "insert");
  check_key(key);
  if (value.size() != value_bytes_)
    throw std::invalid_argument("value size mismatch");

  // Round 1: membership probe and A_1 probe in one parallel I/O (disjoint
  // disk halves).
  std::vector<pdm::BlockAddr> addrs = membership_->probe_addrs(key);
  const std::size_t mem_blocks = addrs.size();
  {
    auto a1 = level_addrs(0, key);
    addrs.insert(addrs.end(), a1.begin(), a1.end());
  }
  std::vector<pdm::Block> blocks;
  disks_->read_batch(addrs, blocks);
  if (membership_->inspect(key, std::span(blocks).subspan(0, mem_blocks))
          .found)
    return false;
  if (size_ >= capacity_)
    throw CapacityError("dynamic dictionary at capacity N");

  // First-fit level search: the first array with >= need free fields for x
  // "at that moment" (free = occupied bit clear).
  std::uint32_t chosen_level = 0;
  std::vector<pdm::Block> level_blocks(blocks.begin() +
                                           static_cast<std::ptrdiff_t>(mem_blocks),
                                       blocks.end());
  std::vector<std::uint32_t> free_stripes;
  for (std::uint32_t level = 0;; ++level) {
    if (level == levels_.size())
      throw CapacityError(
          "no level has enough free fields (first-fit exhausted; Lemma 5 "
          "failed for this graph family)");
    if (level > 0) {
      auto la = level_addrs(level, key);
      disks_->read_batch(la, level_blocks);  // one more parallel I/O
    }
    const Level& lv = levels_[level];
    free_stripes.clear();
    for (std::uint32_t i = 0; i < d_; ++i) {
      std::uint64_t field = lv.graph->neighbor(key, i);
      if (lv.fields->is_empty(level_blocks[i], field))
        free_stripes.push_back(i);
      if (free_stripes.size() == need_) break;
    }
    if (free_stripes.size() >= need_) {
      chosen_level = level;
      break;
    }
  }

  // Encode the record into the need chosen fields (ascending stripes).
  const Level& lv = levels_[chosen_level];
  const std::size_t sigma_bits = value_bytes_ * 8;
  std::size_t done = 0;
  std::vector<std::pair<pdm::BlockAddr, pdm::Block>> writes;
  for (std::uint32_t r = 0; r < need_; ++r) {
    std::uint32_t stripe = free_stripes[r];
    std::uint64_t delta = (r + 1 < need_) ? free_stripes[r + 1] - stripe : 0;
    util::BitVector bits(field_bits_);
    util::BitWriter w(bits, 0, field_bits_);
    w.write_bit(true);  // occupied
    w.write_unary(delta);
    std::size_t room = field_bits_ - w.position();
    std::size_t take = std::min(room, sigma_bits - done);
    if (take > 0) {
      util::copy_bits_from_bytes(value.data(), done, bits, w.position(), take);
      done += take;
    }
    std::uint64_t field = lv.graph->neighbor(key, stripe);
    lv.fields->set(level_blocks[stripe], field, bits);
    writes.emplace_back(lv.fields->addr_of(field), level_blocks[stripe]);
  }
  if (done != sigma_bits)
    throw std::logic_error("dynamic dict: field capacity accounting is off");

  // Membership record: [head stripe][level]; written in the same parallel
  // round as the field blocks (disjoint disk halves).
  std::array<std::byte, 2> head_level{
      static_cast<std::byte>(static_cast<std::uint8_t>(free_stripes[0])),
      static_cast<std::byte>(static_cast<std::uint8_t>(chosen_level))};
  auto mem_writes = membership_->plan_insert(
      key, std::span<const std::byte>(head_level.data(), 2),
      std::span(blocks).subspan(0, mem_blocks));
  if (!mem_writes)
    throw std::logic_error("dynamic dict: membership disagrees with probe");
  writes.insert(writes.end(), mem_writes->begin(), mem_writes->end());
  disks_->write_batch(writes);
  ++size_;
  ++level_population_[chosen_level];
  return true;
}

LookupResult DynamicDict::lookup(Key key) {
  obs::OpScope op(*disks_, obs::OpKind::kLookup, "dynamic_dict");
  obs::Span span(*disks_, "lookup");
  check_key(key);
  std::vector<pdm::BlockAddr> addrs = membership_->probe_addrs(key);
  const std::size_t mem_blocks = addrs.size();
  {
    auto a1 = level_addrs(0, key);
    addrs.insert(addrs.end(), a1.begin(), a1.end());
  }
  std::vector<pdm::Block> blocks;
  disks_->read_batch(addrs, blocks);
  BasicDict::Probe probe =
      membership_->inspect(key, std::span(blocks).subspan(0, mem_blocks));
  if (!probe.found) {
    op.set_outcome(obs::OpOutcome::kMiss);
    return {};  // unsuccessful search: exactly one I/O
  }
  op.set_outcome(obs::OpOutcome::kHit);

  auto head = static_cast<std::uint8_t>(probe.value.at(0));
  auto level = static_cast<std::uint8_t>(probe.value.at(1));
  std::vector<pdm::Block> level_blocks(
      blocks.begin() + static_cast<std::ptrdiff_t>(mem_blocks), blocks.end());
  if (level > 0) {
    // The A_1 blocks fetched speculatively miss; one extra I/O for the
    // (geometrically rare) deeper levels.
    auto la = level_addrs(level, key);
    disks_->read_batch(la, level_blocks);
  }
  return {true, decode(level, key, head, level_blocks)};
}

bool DynamicDict::erase(Key key) {
  obs::OpScope op(*disks_, obs::OpKind::kErase, "dynamic_dict");
  obs::Span span(*disks_, "erase");
  check_key(key);
  std::vector<pdm::BlockAddr> addrs = membership_->probe_addrs(key);
  const std::size_t mem_blocks = addrs.size();
  {
    auto a1 = level_addrs(0, key);
    addrs.insert(addrs.end(), a1.begin(), a1.end());
  }
  std::vector<pdm::Block> blocks;
  disks_->read_batch(addrs, blocks);
  BasicDict::Probe probe =
      membership_->inspect(key, std::span(blocks).subspan(0, mem_blocks));
  if (!probe.found) return false;

  auto head = static_cast<std::uint8_t>(probe.value.at(0));
  auto level = static_cast<std::uint8_t>(probe.value.at(1));
  std::vector<pdm::Block> level_blocks(
      blocks.begin() + static_cast<std::ptrdiff_t>(mem_blocks), blocks.end());
  std::vector<pdm::BlockAddr> la = level_addrs(level, key);
  if (level > 0) disks_->read_batch(la, level_blocks);

  // Walk the list, clearing each field back to the free (all-zero) state so
  // its space is reused by later insertions.
  const Level& lv = levels_[level];
  util::BitVector zero(field_bits_);
  std::vector<std::pair<pdm::BlockAddr, pdm::Block>> writes;
  std::uint32_t cur = head;
  for (std::uint32_t hops = 0; hops < need_; ++hops) {
    if (cur >= d_)
      throw std::logic_error("dynamic dict: list walked off stripe range");
    std::uint64_t field = lv.graph->neighbor(key, cur);
    util::BitVector bits = lv.fields->get(level_blocks[cur], field);
    util::BitReader r(bits, 0, field_bits_);
    if (!r.read_bit())
      throw std::logic_error("dynamic dict: erase reached a free field");
    std::uint64_t delta = r.read_unary();
    lv.fields->set(level_blocks[cur], field, zero);
    writes.emplace_back(la[cur], level_blocks[cur]);
    if (delta == 0) break;
    cur += static_cast<std::uint32_t>(delta);
  }
  membership_->erase(key);  // tombstone write on the membership half
  disks_->write_batch(writes);
  --size_;
  --level_population_[level];
  return true;
}

std::vector<std::pair<Key, std::vector<std::byte>>> DynamicDict::drain_some(
    std::uint32_t max_records) {
  std::vector<std::pair<Key, std::vector<std::byte>>> out;
  // Bound bucket visits as well as records so a call stays O(max_records)
  // I/Os even over long runs of empty buckets.
  std::uint32_t visits = 0;
  while (out.size() < max_records && visits++ < 2 * max_records &&
         drain_cursor_ < membership_->num_buckets()) {
    auto members = membership_->scan_bucket(drain_cursor_);
    if (members.empty()) {
      ++drain_cursor_;
      continue;
    }
    // Pop at most the remaining budget; a heavy bucket is revisited on the
    // next call, keeping each call O(max_records) I/Os.
    std::size_t take =
        std::min<std::size_t>(members.size(), max_records - out.size());
    for (std::size_t i = 0; i < take; ++i) {
      auto& [key, head_level] = members[i];
      auto record = lookup(key);
      if (!record.found)
        throw std::logic_error("membership lists a key with no record");
      erase(key);
      out.emplace_back(key, std::move(record.value));
    }
    if (take == members.size()) ++drain_cursor_;
  }
  return out;
}

std::uint64_t DynamicDict::drain_remaining_buckets() const {
  std::uint64_t total = membership_->num_buckets();
  return drain_cursor_ >= total ? 0 : total - drain_cursor_;
}

}  // namespace pddict::core
