// The on-disk array A of bit-packed fields (paper, Section 4.2).
//
// The static and dynamic dictionaries store their data in an array A of v
// small fields, indexed by right vertices of a striped expander. Stripe s of
// the expander maps to one disk, so the d fields of Γ(x) live on d distinct
// disks and are fetched in a single parallel I/O.
//
// Layout: stripe s occupies consecutive blocks on disk (first_disk + s);
// fields are packed fields_per_block per block and never straddle a block
// boundary (padding at the end of each block), preserving the one-probe
// property. A field of all-zero bits is the reserved "empty field" marker, so
// freshly zeroed disks start empty for free.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pdm/disk_array.hpp"
#include "util/bits.hpp"

namespace pddict::core {

class FieldArray {
 public:
  /// `num_fields` must be a positive multiple of `num_stripes`; `field_bits`
  /// must fit in one block.
  FieldArray(pdm::DiskArray& disks, std::uint32_t first_disk,
             std::uint64_t base_block, std::uint64_t num_fields,
             std::uint32_t field_bits, std::uint32_t num_stripes);

  std::uint64_t num_fields() const { return num_fields_; }
  std::uint32_t field_bits() const { return field_bits_; }
  std::uint32_t num_stripes() const { return num_stripes_; }
  std::uint64_t fields_per_stripe() const { return num_fields_ / num_stripes_; }
  std::uint64_t fields_per_block() const { return fields_per_block_; }
  std::uint64_t blocks_per_stripe() const { return blocks_per_stripe_; }
  /// Blocks occupied across all stripes (space accounting).
  std::uint64_t total_blocks() const {
    return blocks_per_stripe_ * num_stripes_;
  }
  pdm::DiskArray& disks() { return *disks_; }

  pdm::BlockAddr addr_of(std::uint64_t field) const;

  /// Extract field `field` from a block previously read at addr_of(field).
  util::BitVector get(const pdm::Block& block, std::uint64_t field) const;

  /// True iff the field is the all-zero empty marker.
  bool is_empty(const pdm::Block& block, std::uint64_t field) const;

  /// Overwrite field `field` inside an in-memory block image.
  void set(pdm::Block& block, std::uint64_t field,
           const util::BitVector& bits) const;

  /// Batched read of arbitrary fields; parallel I/O rounds are counted by the
  /// DiskArray (fields in distinct stripes cost one round together).
  std::vector<util::BitVector> read_fields(
      std::span<const std::uint64_t> fields) const;

 private:
  std::size_t bit_offset(std::uint64_t field) const;

  pdm::DiskArray* disks_;
  std::uint32_t first_disk_;
  std::uint64_t base_block_;
  std::uint64_t num_fields_;
  std::uint32_t field_bits_;
  std::uint32_t num_stripes_;
  std::uint64_t fields_per_block_;
  std::uint64_t blocks_per_stripe_;
};

}  // namespace pddict::core
