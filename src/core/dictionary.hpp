// Common dictionary vocabulary.
//
// A dictionary stores a set of keys from a bounded universe U together with
// fixed-size satellite data, supporting lookups and (for dynamic structures)
// insertions and deletions (paper, Section 1). All structures in this library
// — the paper's deterministic dictionaries and the randomized baselines —
// implement this interface, which is what the Figure 1 benchmark drives.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace pddict::core {

using Key = std::uint64_t;

/// Reserved key marking a deleted slot (tombstone). Structures reject it as
/// an input key; the universe is [0, universe_size) with
/// universe_size < 2^64, so reserving the top value loses nothing.
inline constexpr Key kTombstone = ~Key{0};

struct LookupResult {
  bool found = false;
  std::vector<std::byte> value;  // satellite data; empty if none stored
};

/// Thrown when a deterministic structure's capacity precondition is violated
/// (bucket overflow / no level with enough free fields / size beyond N).
/// Under the expansion guarantees these cannot happen; the ablation
/// benchmarks deliberately provoke them.
class CapacityError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a static construction cannot make progress (Lemma 5 failed
/// for the given graph and key set).
class ConstructionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Uniform interface so benchmarks drive every structure identically.
class Dictionary {
 public:
  virtual ~Dictionary() = default;

  /// Inserts key with `value` (must be value_bytes() long). Returns false if
  /// the key is already present (no change).
  virtual bool insert(Key key, std::span<const std::byte> value) = 0;

  virtual LookupResult lookup(Key key) = 0;

  /// Removes key; returns false if absent. Optional (static structures and
  /// capacity-bounded building blocks may not support it).
  virtual bool erase([[maybe_unused]] Key key) {
    throw std::logic_error("erase not supported by this structure");
  }

  virtual std::uint64_t size() const = 0;
  virtual std::size_t value_bytes() const = 0;
};

/// Helper: pack a uint64 into a value buffer (examples/tests convenience).
std::vector<std::byte> make_value(std::uint64_t payload, std::size_t bytes);

/// Helper: deterministic pseudo-random value derived from a key, `bytes`
/// long; used pervasively by tests to verify satellite round-trips.
std::vector<std::byte> value_for_key(Key key, std::size_t bytes,
                                     std::uint64_t salt = 0);

}  // namespace pddict::core
