// The basic dictionary of Section 4.1.
//
// A striped expander G with v buckets indexes an array of bucket blocks
// spread over D = d disks (stripe i ↔ disk i). Keys are placed by the
// deterministic load balancing scheme of Section 3 with k = 1: an insertion
// reads the d candidate buckets (one parallel I/O — one block per disk), puts
// the record into a currently least-loaded bucket and writes it back (one
// more I/O, the minimum possible since a block must be read before written).
// Lookups read the d candidate buckets in one parallel I/O and scan them.
//
// With B = Ω(log N) every bucket fits in O(1) blocks; choosing v = O(N/B)
// with enough headroom makes the max load (average + the Lemma 3 log term)
// fit a single block, giving 1-I/O membership queries. The bucket_blocks > 1
// configuration is the paper's "no constraints on B" variant, where a bucket
// spans O(1) blocks and operations stay O(1) I/Os (see bucket_dict.hpp).
//
// Small satellite values (a constant factor of the key size) are stored
// inline with the keys and returned by the same read, as in the paper's
// "with satellite information" remark.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/dictionary.hpp"
#include "expander/seeded_expander.hpp"
#include "pdm/disk_array.hpp"

namespace pddict::core {

struct BasicDictParams {
  std::uint64_t universe_size = 0;  // u
  std::uint64_t capacity = 0;       // N (size() may not exceed this)
  std::size_t value_bytes = 0;      // σ, stored inline
  std::uint32_t degree = 0;         // d = number of disks used; 0 → O(log u)
  /// Bucket-capacity headroom over the average load (the Lemma 3 slack).
  double load_headroom = 2.0;
  /// Blocks per bucket (1 = one-probe configuration; >1 = small-B variant).
  std::uint32_t bucket_blocks = 1;
  std::uint64_t seed = 0xba51c;

  friend bool operator==(const BasicDictParams&,
                         const BasicDictParams&) = default;
};

class BasicDict final : public Dictionary {
 public:
  /// Uses disks [first_disk, first_disk + degree) and blocks
  /// [base_block, base_block + blocks_per_disk()) on each.
  BasicDict(pdm::DiskArray& disks, std::uint32_t first_disk,
            std::uint64_t base_block, const BasicDictParams& params);

  // ---- Dictionary interface ----
  // insert/lookup/erase run write-behind: the bucket write-back of operation
  // k is submitted asynchronously and joined only after operation k+1 has
  // submitted its probe read, so the write's device time overlaps the next
  // op's planning (the executor's per-disk FIFO keeps the read ordered after
  // the write, and accounting happens at submit time, so every I/O count is
  // identical to the fully synchronous sequence). A deferred write error
  // therefore surfaces on the *next* operation (or join_pending()).
  bool insert(Key key, std::span<const std::byte> value) override;
  LookupResult lookup(Key key) override;
  bool erase(Key key) override;
  std::uint64_t size() const override { return size_; }
  std::size_t value_bytes() const override { return value_bytes_; }

  /// Joins the previous operation's outstanding write-back, rethrowing any
  /// error it hit. No-op when nothing is pending. Benchmarks call this after
  /// every op to emulate the historical synchronous schedule.
  void join_pending();

  // ---- composable batch API ----
  // Higher-level structures (the Section 4.2/4.3 dictionaries, the global
  // rebuilding wrapper) merge these probes with their own disk requests so a
  // combined operation still costs one parallel I/O round.

  /// Addresses of the d·bucket_blocks candidate blocks of `key`
  /// (one bucket per stripe, in stripe order).
  std::vector<pdm::BlockAddr> probe_addrs(Key key) const;

  struct Probe {
    bool found = false;
    std::vector<std::byte> value;
    std::uint32_t found_stripe = 0;
  };
  /// Interpret blocks previously read at probe_addrs(key).
  Probe inspect(Key key, std::span<const pdm::Block> blocks) const;

  /// Given the probe blocks, plan the block write(s) that insert (key,
  /// value) into a least-loaded candidate bucket. Returns std::nullopt if the
  /// key is already present; throws CapacityError if every candidate bucket
  /// is full. Mutates `blocks` in place; the returned (addr, block) pairs are
  /// what the caller must write.
  std::optional<std::vector<std::pair<pdm::BlockAddr, pdm::Block>>>
  plan_insert(Key key, std::span<const std::byte> value,
              std::span<pdm::Block> blocks);

  /// Given the probe blocks, plan the block write that tombstones `key`'s
  /// slot. Returns std::nullopt when the key is absent; otherwise mutates
  /// `blocks` in place, decrements the size counter and returns the (addr,
  /// block) pair(s) the caller must write. The read–plan–write counterpart
  /// of plan_insert: concurrent wrappers keep their metadata lock around
  /// this in-memory step only, never across the disk I/O.
  std::optional<std::vector<std::pair<pdm::BlockAddr, pdm::Block>>>
  plan_erase(Key key, std::span<pdm::Block> blocks);

  // ---- geometry / introspection ----
  std::uint32_t degree() const { return graph_->degree(); }
  std::uint32_t num_disks_used() const { return graph_->degree(); }
  std::uint64_t num_buckets() const { return graph_->right_size(); }
  std::uint32_t bucket_capacity() const { return bucket_capacity_; }
  std::uint64_t blocks_per_disk() const;
  const expander::NeighborFunction& graph() const { return *graph_; }

  /// Read one bucket (by global bucket index) and return its live records —
  /// the sequential-scan primitive used by global rebuilding migration.
  /// Costs the bucket's read round(s).
  std::vector<std::pair<Key, std::vector<std::byte>>> scan_bucket(
      std::uint64_t bucket_index);

  /// scan_bucket + clear: returns the live records and resets the bucket to
  /// empty (one read round + one write round). Used by global rebuilding so a
  /// migrated record exists in exactly one structure.
  std::vector<std::pair<Key, std::vector<std::byte>>> drain_bucket(
      std::uint64_t bucket_index);

  std::uint64_t base_block() const { return base_block_; }
  std::uint32_t first_disk() const { return first_disk_; }
  std::uint32_t bucket_blocks() const { return bucket_blocks_; }
  pdm::DiskArray& disks() { return *disks_; }

  /// Maximum live records in any bucket, via accounting-free peeks
  /// (test/benchmark instrumentation, costs no simulated I/O).
  std::uint32_t peek_max_load() const;

  /// Recovery after reopening a persistent backend: rescans every bucket to
  /// restore the in-memory size counter (the on-disk state is otherwise
  /// self-describing). Costs one read round per bucket block.
  void recover_size();

  /// Trusted-count recovery (e.g. from a clean-close manifest): restores the
  /// size counter without a scan.
  void restore_size(std::uint64_t size) { size_ = size; }

 private:
  struct SlotRef {
    std::uint32_t block;   // block index within the bucket
    std::size_t offset;    // byte offset within that block
  };
  SlotRef slot_ref(std::uint32_t slot) const;
  std::uint32_t bucket_count(const pdm::Block& first_block) const;
  void set_bucket_count(pdm::Block& first_block, std::uint32_t count) const;
  /// Searches one bucket's blocks for `key`; returns the slot or nullopt.
  std::optional<std::uint32_t> find_slot(Key key,
                                         std::span<const pdm::Block> bucket,
                                         std::uint32_t count) const;
  void check_key(Key key) const;

  pdm::DiskArray* disks_;
  std::uint32_t first_disk_;
  std::uint64_t base_block_;
  std::size_t value_bytes_;
  std::uint64_t universe_size_;
  std::uint64_t capacity_;
  std::uint32_t bucket_blocks_;
  std::uint32_t bucket_capacity_;
  std::size_t record_bytes_;
  std::uint64_t size_ = 0;
  std::unique_ptr<expander::SeededExpander> graph_;
  /// Write-behind slot: the not-yet-joined bucket write-back of the most
  /// recent insert/erase. At most one is outstanding; every member operation
  /// that touches disk joins it (after submitting its own read).
  pdm::BatchFuture pending_write_;
};

}  // namespace pddict::core
