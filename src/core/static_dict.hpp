// The almost-optimal one-probe static dictionary of Section 4.2 (Theorem 6).
//
// Data lives in an array A of v = O(n·d) bit-packed fields indexed by a
// striped (N, ε)-expander with ε = 1/12 (which requires d > 12). For each
// stored key x, a fraction 2/3 of the fields referenced by Γ(x) hold parts of
// x's record; a lookup reads all d fields (one per stripe = one per disk, a
// single parallel I/O) and reassembles the record.
//
// Two layouts, exactly as in the theorem:
//
//  case (b) — kIdentifiers: every field carries a lg n-bit identifier unique
//    to its owner plus a slice of the satellite data. A lookup keeps the
//    fields whose identifier holds a strict majority among the d fields read;
//    since no two keys share more than εd < d/2 neighbors, a majority can
//    only belong to x itself. Uses d disks.
//
//  case (a) — kHeadPointers: when a block holds Ω(log n) keys, identifiers
//    are avoided. Two sub-dictionaries run in parallel on 2d disks: the
//    Section 4.1 membership dictionary stores each key with a lg d-bit "head
//    pointer", and a retrieval array stores satellite slices threaded into a
//    linked list by unary-coded relative stripe pointers (a 0-bit separates
//    pointer from record data; the tail field starts with a 0-bit). Both
//    sub-structures are probed in the same parallel I/O.
//
// Construction (Theorem 6): repeatedly assign records to *unique neighbor
// nodes* (Lemmas 4, 5 with λ = 1/3: at least half the remaining keys have
// ≥ 2d/3 unique neighbors), recursing on the unassigned rest. Implemented as
// the paper's "improved" external pipeline — generate (neighbor, key) pairs,
// sort by neighbor, filter singletons, sort by key, co-scan with the sorted
// input — with every sort running through pdm::external_sort so the I/O cost
// is genuinely proportional to sorting n·d records.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/basic_dict.hpp"
#include "core/dictionary.hpp"
#include "core/field_array.hpp"
#include "expander/seeded_expander.hpp"
#include "pdm/allocator.hpp"
#include "pdm/disk_array.hpp"

namespace pddict::core {

enum class StaticLayout {
  kIdentifiers,   // Theorem 6 case (b): d disks, lg n-bit identifiers
  kHeadPointers,  // Theorem 6 case (a): 2d disks, head pointers + unary lists
};

/// Theorem 6 describes two construction procedures; both are implemented.
enum class BuildAlgorithm {
  /// "Improving the construction": the fully external pipeline — generate
  /// (neighbor, key) pairs, external-sort by neighbor, filter singletons,
  /// sort by key, co-scan; cost Θ(sort(n·d)). The default.
  kSortBased,
  /// The paper's first version: per recursion level, determine Φ(S) and S′
  /// and write each assigned key's fields directly — "less than c·n parallel
  /// I/Os". Assumes the key set fits in internal memory during construction
  /// (the external variant is kSortBased).
  kDirect,
};

struct StaticDictParams {
  std::uint64_t universe_size = 0;
  std::uint64_t capacity = 0;  // N
  std::size_t value_bytes = 0; // σ / 8
  std::uint32_t degree = 0;    // d > 12 (ε = 1/12); 0 → O(log u)
  StaticLayout layout = StaticLayout::kIdentifiers;
  BuildAlgorithm algorithm = BuildAlgorithm::kSortBased;
  /// Fields per stripe = ceil(stripe_factor · N); v = d · that (v = O(Nd)).
  double stripe_factor = 4.0;
  /// Internal memory for the construction's external sorts.
  std::size_t memory_bytes = std::size_t{1} << 20;
  std::uint64_t seed = 0x57a7;
  std::uint32_t max_levels = 64;
};

struct StaticBuildStats {
  std::uint32_t levels = 0;          // recursion depth used
  std::uint64_t input_records = 0;   // n
  std::uint64_t assigned_fields = 0; // total fields written
  pdm::IoStats total_io;             // full construction cost
  pdm::IoStats sort_io;              // portion spent inside external sorts
};

class StaticDict {
 public:
  /// Builds the dictionary for `keys` (distinct, each < universe_size) with
  /// packed satellite `values` (keys.size() · value_bytes bytes, aligned with
  /// `keys`). Uses disks [first_disk, first_disk + disks_needed(params));
  /// block ranges (for the field array, the membership dictionary and all
  /// construction scratch regions) are taken from `alloc`.
  StaticDict(pdm::DiskArray& disks, std::uint32_t first_disk,
             pdm::DiskAllocator& alloc, const StaticDictParams& params,
             std::span<const Key> keys, std::span<const std::byte> values);

  /// Exactly one parallel I/O.
  LookupResult lookup(Key key);

  static std::uint32_t disks_needed(const StaticDictParams& params);

  const StaticBuildStats& build_stats() const { return stats_; }
  std::uint64_t size() const { return n_; }
  std::size_t value_bytes() const { return value_bytes_; }
  std::uint32_t degree() const { return graph_->degree(); }
  std::uint32_t fields_required() const { return need_; }  // ⌈2d/3⌉
  std::uint32_t field_bits() const { return fields_->field_bits(); }
  std::uint64_t num_fields() const { return fields_->num_fields(); }

 private:
  struct Assignment {
    Key key;
    std::uint64_t id;                       // 1-based rank (case (b))
    std::vector<std::uint64_t> fields;      // `need_` field indices, ascending
    std::span<const std::byte> value;
  };
  void build(pdm::DiskAllocator& alloc, const StaticDictParams& params,
             std::span<const Key> keys, std::span<const std::byte> values);
  void build_direct(const StaticDictParams& params, std::span<const Key> keys,
                    std::span<const std::byte> values);
  /// Encode one assignment into (field, content-bits) pairs.
  std::vector<std::pair<std::uint64_t, util::BitVector>> encode(
      const Assignment& a) const;
  LookupResult decode_identifiers(std::span<const util::BitVector> fields) const;
  LookupResult decode_head_pointers(Key key,
                                    std::span<const pdm::Block> blocks) const;

  pdm::DiskArray* disks_;
  std::uint32_t first_disk_;
  StaticLayout layout_;
  std::uint64_t universe_size_;
  std::size_t value_bytes_;
  std::uint64_t n_ = 0;
  std::uint32_t need_ = 0;       // ⌈2d/3⌉ fields per key
  std::uint32_t id_bits_ = 0;    // case (b)
  std::uint32_t slice_bits_ = 0; // payload bits per field (case (b))
  std::unique_ptr<expander::SeededExpander> graph_;   // retrieval expander
  std::unique_ptr<FieldArray> fields_;
  std::unique_ptr<BasicDict> membership_;             // case (a) only
  StaticBuildStats stats_;
};

}  // namespace pddict::core
