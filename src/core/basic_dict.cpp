#include "core/basic_dict.hpp"

#include <algorithm>
#include <optional>
#include <tuple>
#include <cstring>

#include "obs/op_context.hpp"
#include "obs/span.hpp"
#include "pdm/block.hpp"
#include "util/math.hpp"
#include "util/simd/simd.hpp"

namespace pddict::core {

namespace {
// First block of a bucket: [uint32 count][4 bytes pad][records...].
constexpr std::size_t kBucketHeaderBytes = 8;

// The occupied slots of a bucket, as per-block runs of uniform stride: block
// 0 carries its slots after the count header, blocks >= 1 from offset 0.
// Calls fn(block, byte_offset, first_slot, run_length) per non-empty run
// until fn returns false. This is the shape the SIMD scan kernels consume.
template <typename Fn>
void for_each_slot_run(std::size_t block_bytes, std::size_t record_bytes,
                       std::uint32_t count, Fn&& fn) {
  const auto c0 = static_cast<std::uint32_t>(
      (block_bytes - kBucketHeaderBytes) / record_bytes);
  const auto ci = static_cast<std::uint32_t>(block_bytes / record_bytes);
  std::uint32_t first = 0;
  for (std::uint32_t b = 0; first < count; ++b) {
    const std::uint32_t cap = b == 0 ? c0 : ci;
    const std::size_t off = b == 0 ? kBucketHeaderBytes : 0;
    const std::uint32_t run = std::min(cap, count - first);
    if (!fn(b, off, first, run)) return;
    first += run;
  }
}
}  // namespace

BasicDict::BasicDict(pdm::DiskArray& disks, std::uint32_t first_disk,
                     std::uint64_t base_block, const BasicDictParams& p)
    : disks_(&disks),
      first_disk_(first_disk),
      base_block_(base_block),
      value_bytes_(p.value_bytes),
      universe_size_(p.universe_size),
      capacity_(p.capacity),
      bucket_blocks_(p.bucket_blocks) {
  if (p.universe_size < 2 || p.capacity < 1)
    throw std::invalid_argument("degenerate dictionary parameters");
  if (p.bucket_blocks < 1)
    throw std::invalid_argument("bucket_blocks must be >= 1");
  std::uint32_t d =
      p.degree ? p.degree : expander::recommended_degree(p.universe_size);
  if (first_disk + d > disks.geometry().num_disks)
    throw std::invalid_argument(
        "basic dictionary needs D >= d disks (paper: D = Omega(log u))");

  record_bytes_ = sizeof(Key) + value_bytes_;
  const std::size_t block_bytes = disks.geometry().block_bytes();
  if (record_bytes_ + kBucketHeaderBytes > block_bytes)
    throw std::invalid_argument("record does not fit in one block");
  const std::uint32_t c0 = static_cast<std::uint32_t>(
      (block_bytes - kBucketHeaderBytes) / record_bytes_);
  const std::uint32_t ci =
      static_cast<std::uint32_t>(block_bytes / record_bytes_);
  bucket_capacity_ = c0 + (bucket_blocks_ - 1) * ci;
  if (bucket_capacity_ < 2)
    throw std::invalid_argument(
        "bucket capacity < 2; raise bucket_blocks (small-B variant) or B");

  // v = O(N/B) with headroom: average load = capacity / headroom, leaving the
  // Lemma 3 log-term slack inside the bucket.
  std::uint64_t avg_target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(bucket_capacity_ / p.load_headroom));
  std::uint64_t per_stripe =
      util::ceil_div<std::uint64_t>(p.capacity, avg_target * d) + 1;
  graph_ = std::make_unique<expander::SeededExpander>(
      p.universe_size, per_stripe * d, d, p.seed);
}

std::uint64_t BasicDict::blocks_per_disk() const {
  return graph_->stripe_size() * bucket_blocks_;
}

void BasicDict::check_key(Key key) const {
  if (key == kTombstone || key >= universe_size_)
    throw std::invalid_argument("key outside universe");
}

BasicDict::SlotRef BasicDict::slot_ref(std::uint32_t slot) const {
  const std::size_t block_bytes = disks_->geometry().block_bytes();
  const std::uint32_t c0 = static_cast<std::uint32_t>(
      (block_bytes - kBucketHeaderBytes) / record_bytes_);
  if (slot < c0) return {0, kBucketHeaderBytes + slot * record_bytes_};
  const std::uint32_t ci =
      static_cast<std::uint32_t>(block_bytes / record_bytes_);
  std::uint32_t rest = slot - c0;
  return {1 + rest / ci, static_cast<std::size_t>(rest % ci) * record_bytes_};
}

std::uint32_t BasicDict::bucket_count(const pdm::Block& first_block) const {
  return pdm::load_pod<std::uint32_t>(first_block, 0);
}

void BasicDict::set_bucket_count(pdm::Block& first_block,
                                 std::uint32_t count) const {
  pdm::store_pod<std::uint32_t>(first_block, 0, count);
}

std::vector<pdm::BlockAddr> BasicDict::probe_addrs(Key key) const {
  // One batched hash evaluation for all d stripes (SIMD: one lane per seeded
  // function) instead of d scalar salted_mix calls.
  std::vector<std::uint64_t> locals(degree());
  graph_->stripe_locals(key, locals.data());
  std::vector<pdm::BlockAddr> addrs;
  addrs.reserve(static_cast<std::size_t>(degree()) * bucket_blocks_);
  for (std::uint32_t i = 0; i < degree(); ++i)
    for (std::uint32_t b = 0; b < bucket_blocks_; ++b)
      addrs.push_back({first_disk_ + i,
                       base_block_ + locals[i] * bucket_blocks_ + b});
  return addrs;
}

std::optional<std::uint32_t> BasicDict::find_slot(
    Key key, std::span<const pdm::Block> bucket, std::uint32_t count) const {
  const auto& kn = util::simd::kernels();
  std::optional<std::uint32_t> found;
  for_each_slot_run(
      disks_->geometry().block_bytes(), record_bytes_, count,
      [&](std::uint32_t b, std::size_t off, std::uint32_t first,
          std::uint32_t run) {
        std::uint32_t s =
            kn.find_key(bucket[b].data() + off, record_bytes_, run, key);
        if (s == util::simd::kNotFound) return true;
        found = first + s;
        return false;
      });
  return found;
}

BasicDict::Probe BasicDict::inspect(Key key,
                                    std::span<const pdm::Block> blocks) const {
  Probe probe;
  for (std::uint32_t i = 0; i < degree(); ++i) {
    std::span<const pdm::Block> bucket =
        blocks.subspan(static_cast<std::size_t>(i) * bucket_blocks_,
                       bucket_blocks_);
    std::uint32_t count = bucket_count(bucket[0]);
    if (auto slot = find_slot(key, bucket, count)) {
      SlotRef ref = slot_ref(*slot);
      probe.found = true;
      probe.found_stripe = i;
      const pdm::Block& blk = bucket[ref.block];
      probe.value.assign(
          blk.begin() + static_cast<std::ptrdiff_t>(ref.offset + sizeof(Key)),
          blk.begin() +
              static_cast<std::ptrdiff_t>(ref.offset + record_bytes_));
      return probe;
    }
  }
  return probe;
}

std::optional<std::vector<std::pair<pdm::BlockAddr, pdm::Block>>>
BasicDict::plan_insert(Key key, std::span<const std::byte> value,
                       std::span<pdm::Block> blocks) {
  if (value.size() != value_bytes_)
    throw std::invalid_argument("value size mismatch");
  if (inspect(key, blocks).found) return std::nullopt;
  if (size_ >= capacity_)
    throw CapacityError("basic dictionary at capacity N");

  // Greedy deterministic load balancing (Section 3, k = 1) on *live* loads
  // (tombstones don't count as items). Ties prefer a bucket holding a
  // tombstone slot we can reuse — the paper allows arbitrary tie-breaking —
  // then the lowest stripe. Reusing a tombstone slot moves no live record
  // (reference stability holds for live data) and keeps erase/insert
  // workloads from inflating bucket counts.
  struct Candidate {
    std::uint32_t live;
    bool no_tombstone;
    std::uint32_t stripe;
    std::uint32_t count;
    std::int32_t tombstone_slot;
    auto rank() const { return std::tuple(live, no_tombstone, stripe); }
  };
  std::optional<Candidate> best;
  for (std::uint32_t i = 0; i < degree(); ++i) {
    std::span<const pdm::Block> bucket_view =
        blocks.subspan(static_cast<std::size_t>(i) * bucket_blocks_,
                       bucket_blocks_);
    std::uint32_t count = bucket_count(bucket_view[0]);
    std::int32_t tomb = -1;
    std::uint32_t live = count;
    const auto& kn = util::simd::kernels();
    for_each_slot_run(
        disks_->geometry().block_bytes(), record_bytes_, count,
        [&](std::uint32_t b, std::size_t off, std::uint32_t first,
            std::uint32_t run) {
          const std::byte* base = bucket_view[b].data() + off;
          std::uint32_t dead = kn.count_key(base, record_bytes_, run,
                                            kTombstone);
          live -= dead;
          if (dead > 0 && tomb < 0)
            tomb = static_cast<std::int32_t>(
                first + kn.find_key(base, record_bytes_, run, kTombstone));
          return true;
        });
    if (count >= bucket_capacity_ && tomb < 0) continue;  // physically full
    Candidate cand{live, tomb < 0, i, count, tomb};
    if (!best || cand.rank() < best->rank()) best = cand;
  }
  if (!best)
    throw CapacityError(
        "all candidate buckets full (expansion headroom exhausted)");
  std::uint32_t best_stripe = best->stripe;
  std::uint32_t best_count = best->count;

  std::span<pdm::Block> bucket = blocks.subspan(
      static_cast<std::size_t>(best_stripe) * bucket_blocks_, bucket_blocks_);
  bool reused = best->tombstone_slot >= 0;
  std::uint32_t target_slot =
      reused ? static_cast<std::uint32_t>(best->tombstone_slot) : best_count;
  SlotRef ref = slot_ref(target_slot);
  pdm::store_pod<Key>(bucket[ref.block], ref.offset, key);
  std::memcpy(bucket[ref.block].data() + ref.offset + sizeof(Key),
              value.data(), value_bytes_);
  if (!reused) set_bucket_count(bucket[0], best_count + 1);

  std::uint64_t local = graph_->stripe_local(key, best_stripe);
  std::vector<std::pair<pdm::BlockAddr, pdm::Block>> writes;
  writes.emplace_back(
      pdm::BlockAddr{first_disk_ + best_stripe,
                     base_block_ + local * bucket_blocks_},
      bucket[0]);
  if (ref.block != 0)
    writes.emplace_back(
        pdm::BlockAddr{first_disk_ + best_stripe,
                       base_block_ + local * bucket_blocks_ + ref.block},
        bucket[ref.block]);
  ++size_;
  return writes;
}

void BasicDict::join_pending() {
  if (!pending_write_.valid()) return;
  pdm::BatchFuture write = std::move(pending_write_);
  write.wait();  // rethrows a deferred write-back error
}

bool BasicDict::insert(Key key, std::span<const std::byte> value) {
  obs::OpScope op(*disks_, obs::OpKind::kInsert, "basic_dict");
  obs::Span span(*disks_, "insert");
  check_key(key);
  auto addrs = probe_addrs(key);
  // Submit this op's probe read *before* joining the previous op's
  // write-back: the per-disk FIFO already orders the read behind the write,
  // so the two overlap instead of serializing.
  pdm::BatchFuture read = disks_->submit_read_batch(addrs);
  join_pending();
  std::vector<pdm::Block> blocks;
  read.get(blocks);
  auto writes = plan_insert(key, value, blocks);
  if (!writes) return false;
  pending_write_ = disks_->submit_write_batch(*writes);
  return true;
}

LookupResult BasicDict::lookup(Key key) {
  obs::OpScope op(*disks_, obs::OpKind::kLookup, "basic_dict");
  obs::Span span(*disks_, "lookup");
  check_key(key);
  auto addrs = probe_addrs(key);
  pdm::BatchFuture read = disks_->submit_read_batch(addrs);
  join_pending();
  std::vector<pdm::Block> blocks;
  read.get(blocks);
  Probe probe = inspect(key, blocks);
  op.set_outcome(probe.found ? obs::OpOutcome::kHit : obs::OpOutcome::kMiss);
  return {probe.found, std::move(probe.value)};
}

std::optional<std::vector<std::pair<pdm::BlockAddr, pdm::Block>>>
BasicDict::plan_erase(Key key, std::span<pdm::Block> blocks) {
  for (std::uint32_t i = 0; i < degree(); ++i) {
    std::span<pdm::Block> bucket = blocks.subspan(
        static_cast<std::size_t>(i) * bucket_blocks_, bucket_blocks_);
    std::uint32_t count = bucket_count(bucket[0]);
    if (auto slot = find_slot(key, bucket, count)) {
      // Mark deleted without moving other records (paper, Section 4): the
      // slot becomes a tombstone; space is reclaimed by global rebuilding.
      SlotRef ref = slot_ref(*slot);
      pdm::store_pod<Key>(bucket[ref.block], ref.offset, kTombstone);
      std::uint64_t local = graph_->stripe_local(key, i);
      std::vector<std::pair<pdm::BlockAddr, pdm::Block>> writes;
      writes.emplace_back(
          pdm::BlockAddr{first_disk_ + i,
                         base_block_ + local * bucket_blocks_ + ref.block},
          bucket[ref.block]);
      --size_;
      return writes;
    }
  }
  return std::nullopt;
}

bool BasicDict::erase(Key key) {
  obs::OpScope op(*disks_, obs::OpKind::kErase, "basic_dict");
  obs::Span span(*disks_, "erase");
  check_key(key);
  auto addrs = probe_addrs(key);
  pdm::BatchFuture read = disks_->submit_read_batch(addrs);
  join_pending();
  std::vector<pdm::Block> blocks;
  read.get(blocks);
  auto writes = plan_erase(key, blocks);
  if (!writes) return false;
  pending_write_ = disks_->submit_write_batch(*writes);
  return true;
}

std::vector<std::pair<Key, std::vector<std::byte>>> BasicDict::scan_bucket(
    std::uint64_t bucket_index) {
  join_pending();
  if (bucket_index >= num_buckets())
    throw std::out_of_range("bucket index out of range");
  std::uint32_t stripe =
      static_cast<std::uint32_t>(bucket_index / graph_->stripe_size());
  std::uint64_t local = bucket_index % graph_->stripe_size();
  std::vector<pdm::BlockAddr> addrs;
  for (std::uint32_t b = 0; b < bucket_blocks_; ++b)
    addrs.push_back(
        {first_disk_ + stripe, base_block_ + local * bucket_blocks_ + b});
  std::vector<pdm::Block> bucket;
  disks_->read_batch(addrs, bucket);
  std::vector<std::pair<Key, std::vector<std::byte>>> out;
  std::uint32_t count = bucket_count(bucket[0]);
  for (std::uint32_t s = 0; s < count; ++s) {
    SlotRef ref = slot_ref(s);
    Key k = pdm::load_pod<Key>(bucket[ref.block], ref.offset);
    if (k == kTombstone) continue;
    const pdm::Block& blk = bucket[ref.block];
    out.emplace_back(
        k, std::vector<std::byte>(
               blk.begin() +
                   static_cast<std::ptrdiff_t>(ref.offset + sizeof(Key)),
               blk.begin() +
                   static_cast<std::ptrdiff_t>(ref.offset + record_bytes_)));
  }
  return out;
}

std::vector<std::pair<Key, std::vector<std::byte>>> BasicDict::drain_bucket(
    std::uint64_t bucket_index) {
  auto records = scan_bucket(bucket_index);
  std::uint32_t stripe =
      static_cast<std::uint32_t>(bucket_index / graph_->stripe_size());
  std::uint64_t local = bucket_index % graph_->stripe_size();
  std::vector<std::pair<pdm::BlockAddr, pdm::Block>> writes;
  for (std::uint32_t b = 0; b < bucket_blocks_; ++b)
    writes.emplace_back(
        pdm::BlockAddr{first_disk_ + stripe,
                       base_block_ + local * bucket_blocks_ + b},
        pdm::Block(disks_->geometry().block_bytes(), std::byte{0}));
  disks_->write_batch(writes);
  size_ -= records.size();
  return records;
}

void BasicDict::recover_size() {
  size_ = 0;
  for (std::uint64_t bucket = 0; bucket < num_buckets(); ++bucket)
    size_ += scan_bucket(bucket).size();
}

std::uint32_t BasicDict::peek_max_load() const {
  std::uint32_t worst = 0;
  for (std::uint64_t bucket = 0; bucket < num_buckets(); ++bucket) {
    std::uint32_t stripe =
        static_cast<std::uint32_t>(bucket / graph_->stripe_size());
    std::uint64_t local = bucket % graph_->stripe_size();
    pdm::Block first = disks_->peek(
        {first_disk_ + stripe, base_block_ + local * bucket_blocks_});
    worst = std::max(worst, bucket_count(first));
  }
  return worst;
}

}  // namespace pddict::core
