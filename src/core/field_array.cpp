#include "core/field_array.hpp"

#include <cassert>
#include <stdexcept>

#include "util/math.hpp"

namespace pddict::core {

FieldArray::FieldArray(pdm::DiskArray& disks, std::uint32_t first_disk,
                       std::uint64_t base_block, std::uint64_t num_fields,
                       std::uint32_t field_bits, std::uint32_t num_stripes)
    : disks_(&disks),
      first_disk_(first_disk),
      base_block_(base_block),
      num_fields_(num_fields),
      field_bits_(field_bits),
      num_stripes_(num_stripes) {
  if (num_stripes == 0 || num_fields == 0 || num_fields % num_stripes != 0)
    throw std::invalid_argument(
        "field array needs num_fields a positive multiple of num_stripes");
  if (first_disk + num_stripes > disks.geometry().num_disks)
    throw std::invalid_argument("field array stripes exceed available disks");
  std::size_t block_bits = disks.geometry().block_bytes() * 8;
  if (field_bits == 0 || field_bits > block_bits)
    throw std::invalid_argument(
        "field must be non-empty and fit in one block (larger satellite data "
        "needs more disks; see Theorem 6 remarks)");
  fields_per_block_ = block_bits / field_bits;
  blocks_per_stripe_ = util::ceil_div(fields_per_stripe(), fields_per_block_);
}

pdm::BlockAddr FieldArray::addr_of(std::uint64_t field) const {
  assert(field < num_fields_);
  std::uint64_t stripe = field / fields_per_stripe();
  std::uint64_t local = field % fields_per_stripe();
  return {static_cast<std::uint32_t>(first_disk_ + stripe),
          base_block_ + local / fields_per_block_};
}

std::size_t FieldArray::bit_offset(std::uint64_t field) const {
  std::uint64_t local = field % fields_per_stripe();
  return static_cast<std::size_t>(local % fields_per_block_) * field_bits_;
}

util::BitVector FieldArray::get(const pdm::Block& block,
                                std::uint64_t field) const {
  util::BitVector bits(field_bits_);
  util::copy_bits_from_bytes(block.data(), bit_offset(field), bits, 0,
                             field_bits_);
  return bits;
}

bool FieldArray::is_empty(const pdm::Block& block, std::uint64_t field) const {
  util::BitVector bits = get(block, field);
  for (std::size_t w = 0; w < bits.size_words(); ++w)
    if (bits.data()[w] != 0) return false;
  return true;
}

void FieldArray::set(pdm::Block& block, std::uint64_t field,
                     const util::BitVector& bits) const {
  assert(bits.size_bits() == field_bits_);
  util::copy_bits_to_bytes(bits, 0, block.data(), bit_offset(field),
                           field_bits_);
}

std::vector<util::BitVector> FieldArray::read_fields(
    std::span<const std::uint64_t> fields) const {
  std::vector<pdm::BlockAddr> addrs;
  addrs.reserve(fields.size());
  for (std::uint64_t f : fields) addrs.push_back(addr_of(f));
  std::vector<pdm::Block> blocks;
  disks_->read_batch(addrs, blocks);
  std::vector<util::BitVector> out;
  out.reserve(fields.size());
  for (std::size_t i = 0; i < fields.size(); ++i)
    out.push_back(get(blocks[i], fields[i]));
  return out;
}

}  // namespace pddict::core
