#include "core/full_dict.hpp"

#include <algorithm>

#include "obs/op_context.hpp"
#include "obs/span.hpp"

namespace pddict::core {

std::uint32_t FullDict::disks_needed(const FullDictParams& p) {
  std::uint32_t d =
      p.degree ? p.degree : expander::recommended_degree(p.universe_size);
  return 2 * d;
}

FullDict::FullDict(pdm::DiskArray& disks, std::uint32_t first_disk,
                   pdm::DiskAllocator& alloc, const FullDictParams& p)
    : disks_(&disks), first_disk_(first_disk), alloc_(&alloc), params_(p) {
  if (p.moves_per_op < 2)
    throw std::invalid_argument("moves_per_op must be >= 2");
  degree_ =
      p.degree ? p.degree : expander::recommended_degree(p.universe_size);
  if (first_disk + 2 * degree_ > disks.geometry().num_disks)
    throw std::invalid_argument("global rebuilding needs 2d disks");
  active_capacity_ = std::max<std::uint64_t>(p.initial_capacity, 8);
  active_ = make_structure(active_capacity_);
  active_base_ = building_base_;  // set by make_structure
}

std::unique_ptr<BasicDict> FullDict::make_structure(std::uint64_t capacity) {
  BasicDictParams bp;
  bp.universe_size = params_.universe_size;
  bp.capacity = capacity;
  bp.value_bytes = params_.value_bytes;
  bp.degree = degree_;
  bp.seed = params_.seed + 0x1e7 * ++generation_;
  std::uint32_t half = active_ ? 1 - active_half_ : 0;
  std::uint64_t base = alloc_->reserve(0);
  auto dict = std::make_unique<BasicDict>(
      *disks_, first_disk_ + half * degree_, base, bp);
  alloc_->reserve(dict->blocks_per_disk());
  building_base_ = base;
  return dict;
}

void FullDict::start_rebuild(std::uint64_t new_capacity) {
  building_capacity_ = std::max<std::uint64_t>(new_capacity, 8);
  building_ = make_structure(building_capacity_);
  scan_cursor_ = 0;
}

void FullDict::migration_step() {
  if (!building_) return;
  obs::OpScope op(*disks_, obs::OpKind::kRebuild, "full_dict");
  obs::Span span(*disks_, "rebuild");
  std::uint32_t moved = 0;
  while (moved < params_.moves_per_op &&
         scan_cursor_ < active_->num_buckets()) {
    auto records = active_->drain_bucket(scan_cursor_++);
    for (auto& [key, value] : records) {
      building_->insert(key, value);
      ++moved;
    }
  }
  if (scan_cursor_ >= active_->num_buckets()) finish_rebuild();
}

void FullDict::finish_rebuild() {
  // Retire the drained structure and release its disk range.
  disks_->discard_blocks(first_disk_ + active_half_ * degree_, degree_,
                         active_base_, active_->blocks_per_disk());
  active_ = std::move(building_);
  active_half_ = 1 - active_half_;
  active_base_ = building_base_;
  active_capacity_ = building_capacity_;
  tombstones_ = 0;
  ++rebuilds_;
}

bool FullDict::insert(Key key, std::span<const std::byte> value) {
  obs::OpScope op(*disks_, obs::OpKind::kInsert, "full_dict");
  obs::Span span(*disks_, "insert");
  // Combined duplicate probe: both structures in one parallel I/O (disjoint
  // disk halves).
  auto addrs = active_->probe_addrs(key);
  std::size_t active_blocks = addrs.size();
  if (building_) {
    auto ba = building_->probe_addrs(key);
    addrs.insert(addrs.end(), ba.begin(), ba.end());
  }
  std::vector<pdm::Block> blocks;
  disks_->read_batch(addrs, blocks);
  if (active_->inspect(key, std::span(blocks).subspan(0, active_blocks)).found)
    return false;
  if (building_ &&
      building_->inspect(key, std::span(blocks).subspan(active_blocks)).found)
    return false;

  if (!building_ && active_->size() >= active_capacity_)
    start_rebuild(active_capacity_ * 2);

  if (building_) {
    // The trigger operation lacks fresh building blocks only when the
    // rebuild started this very call; a plain insert (read + write) keeps the
    // worst case constant.
    if (blocks.size() > active_blocks) {
      auto writes = building_->plan_insert(
          key, value, std::span(blocks).subspan(active_blocks));
      if (writes) disks_->write_batch(*writes);
    } else {
      building_->insert(key, value);
    }
  } else {
    auto writes = active_->plan_insert(
        key, value, std::span(blocks).subspan(0, active_blocks));
    if (writes) disks_->write_batch(*writes);
  }
  ++size_;
  migration_step();
  return true;
}

LookupResult FullDict::lookup(Key key) {
  obs::OpScope op(*disks_, obs::OpKind::kLookup, "full_dict");
  obs::Span span(*disks_, "lookup");
  auto addrs = active_->probe_addrs(key);
  std::size_t active_blocks = addrs.size();
  if (building_) {
    auto ba = building_->probe_addrs(key);
    addrs.insert(addrs.end(), ba.begin(), ba.end());
  }
  std::vector<pdm::Block> blocks;
  disks_->read_batch(addrs, blocks);
  auto probe =
      active_->inspect(key, std::span(blocks).subspan(0, active_blocks));
  if (!probe.found && building_)
    probe = building_->inspect(key, std::span(blocks).subspan(active_blocks));
  op.set_outcome(probe.found ? obs::OpOutcome::kHit : obs::OpOutcome::kMiss);
  return {probe.found, std::move(probe.value)};
}

bool FullDict::erase(Key key) {
  obs::OpScope op(*disks_, obs::OpKind::kErase, "full_dict");
  obs::Span span(*disks_, "erase");
  bool erased = active_->erase(key);
  if (!erased && building_) erased = building_->erase(key);
  if (erased) {
    --size_;
    ++tombstones_;
    // Reclaim space once tombstones dominate the live set.
    if (!building_ && tombstones_ > size_ + 1)
      start_rebuild(std::max<std::uint64_t>(2 * size_,
                                            params_.initial_capacity));
  }
  migration_step();
  return erased;
}

}  // namespace pddict::core
