#include "core/load_balance.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "obs/bound_monitor.hpp"
#include "util/simd/simd.hpp"

namespace pddict::core {

LoadBalancer::LoadBalancer(const expander::NeighborFunction& graph,
                           std::uint32_t items_per_vertex)
    : graph_(&graph), k_(items_per_vertex),
      loads_(graph.right_size(), 0) {
  if (k_ == 0) throw std::invalid_argument("k must be >= 1");
}

std::vector<std::uint64_t> LoadBalancer::assign(std::uint64_t x) {
  std::vector<std::uint64_t> candidates = graph_->neighbors(x);
  std::vector<std::uint64_t> chosen;
  chosen.reserve(k_);
  const auto& kn = util::simd::kernels();
  for (std::uint32_t item = 0; item < k_; ++item) {
    // Least-loaded neighboring bucket; ties to the lowest index, matching the
    // deterministic tie-break the PDM dictionaries use. The kernel returns
    // the lexicographic (load, bucket) minimum over the candidate sweep.
    std::uint64_t best = candidates[kn.min_load_select(
        loads_.data(), candidates.data(),
        static_cast<std::uint32_t>(candidates.size()))];
    ++loads_[best];
    max_load_ = std::max(max_load_, loads_[best]);
    chosen.push_back(best);
  }
  total_items_ += k_;
  ++vertices_;
  if (monitor_) {
    monitor_->observe(
        "max_load", static_cast<double>(max_load_),
        lemma3_bound(vertices_, loads_.size(), graph_->degree(), k_,
                     monitor_epsilon_, monitor_delta_));
  }
  return chosen;
}

void LoadBalancer::attach_monitor(obs::BoundMonitor* monitor, double epsilon,
                                  double delta) {
  monitor_ = monitor;
  monitor_epsilon_ = epsilon;
  monitor_delta_ = delta;
}

double lemma3_bound(std::uint64_t n, std::uint64_t v, std::uint32_t d,
                    std::uint32_t k, double epsilon, double delta) {
  if (v == 0) throw std::invalid_argument("v must be positive");
  double growth = (1.0 - epsilon) * d / k;
  if (growth <= 1.0)
    throw std::invalid_argument("Lemma 3 needs (1-eps)d/k > 1");
  double mu = static_cast<double>(k) * n / ((1.0 - delta) * v);
  double tail = std::log(static_cast<double>(v)) / std::log(growth);
  return mu / (1.0 - epsilon) + tail;
}

}  // namespace pddict::core
