#include "core/wide_dict.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/op_context.hpp"
#include "pdm/block.hpp"
#include "util/math.hpp"

namespace pddict::core {

namespace {
constexpr std::size_t kHeaderBytes = 8;  // [uint32 count][pad]
// Fragment record: [key u64][u32 fragment index][u32 pad][fragment bytes].
constexpr std::size_t kFragMetaBytes = 16;
}  // namespace

WideDict::WideDict(pdm::DiskArray& disks, std::uint32_t first_disk,
                   std::uint64_t base_block, const WideDictParams& p)
    : disks_(&disks),
      first_disk_(first_disk),
      base_block_(base_block),
      universe_size_(p.universe_size),
      capacity_(p.capacity),
      value_bytes_(p.value_bytes) {
  if (p.universe_size < 2 || p.capacity < 1 || p.value_bytes < 1)
    throw std::invalid_argument("degenerate wide dictionary parameters");
  std::uint32_t d =
      p.degree ? p.degree : expander::recommended_degree(p.universe_size);
  k_ = p.fragments ? p.fragments : std::max<std::uint32_t>(1, d / 2);
  if (k_ >= d)
    throw std::invalid_argument("Lemma 3 requires k < d");
  if (first_disk + d > disks.geometry().num_disks)
    throw std::invalid_argument("wide dictionary needs D >= d disks");

  fragment_bytes_ = util::ceil_div<std::uint64_t>(value_bytes_, k_);
  frag_record_bytes_ = kFragMetaBytes + fragment_bytes_;
  const std::size_t block_bytes = disks.geometry().block_bytes();
  if (frag_record_bytes_ + kHeaderBytes > block_bytes)
    throw std::invalid_argument(
        "fragment does not fit in a block; satellite exceeds the O(BD) "
        "bandwidth of this geometry/degree");
  bucket_capacity_ = static_cast<std::uint32_t>((block_bytes - kHeaderBytes) /
                                                frag_record_bytes_);
  if (bucket_capacity_ < 2)
    throw std::invalid_argument("bucket capacity < 2 fragments");

  std::uint64_t avg_target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(bucket_capacity_ / p.load_headroom));
  std::uint64_t per_stripe = util::ceil_div<std::uint64_t>(
                                 p.capacity * k_, avg_target * d) + 1;
  graph_ = std::make_unique<expander::SeededExpander>(
      p.universe_size, per_stripe * d, d, p.seed);
}

std::size_t WideDict::max_bandwidth(const pdm::Geometry& geometry,
                                    std::uint32_t degree,
                                    std::uint64_t capacity) {
  std::uint32_t k = std::max<std::uint32_t>(1, degree / 2);
  std::size_t block_bytes = geometry.block_bytes();
  if (block_bytes <= kHeaderBytes + kFragMetaBytes) return 0;
  // A fragment may use at most half a block so a bucket holds >= 2; the
  // Θ(log N) load needs headroom, hence the factor.
  double load = std::max(2.0, std::log2(static_cast<double>(capacity)));
  std::size_t per_frag = static_cast<std::size_t>(
      (block_bytes - kHeaderBytes) / load) ;
  if (per_frag <= kFragMetaBytes) return 0;
  return (per_frag - kFragMetaBytes) * k;
}

void WideDict::check_key(Key key) const {
  if (key == kTombstone || key >= universe_size_)
    throw std::invalid_argument("key outside universe");
}

std::vector<pdm::BlockAddr> WideDict::probe_addrs(Key key) const {
  std::vector<pdm::BlockAddr> addrs;
  addrs.reserve(degree());
  for (std::uint32_t i = 0; i < degree(); ++i)
    addrs.push_back(
        {first_disk_ + i, base_block_ + graph_->stripe_local(key, i)});
  return addrs;
}

bool WideDict::insert(Key key, std::span<const std::byte> value) {
  obs::OpScope op(*disks_, obs::OpKind::kInsert, "wide_dict");
  check_key(key);
  if (value.size() != value_bytes_)
    throw std::invalid_argument("value size mismatch");
  auto addrs = probe_addrs(key);
  std::vector<pdm::Block> blocks;
  disks_->read_batch(addrs, blocks);

  std::vector<std::uint32_t> counts(degree());
  for (std::uint32_t i = 0; i < degree(); ++i) {
    counts[i] = pdm::load_pod<std::uint32_t>(blocks[i], 0);
    // Duplicate check: any live fragment carrying this key.
    for (std::uint32_t s = 0; s < counts[i]; ++s) {
      std::size_t off = kHeaderBytes + s * frag_record_bytes_;
      if (pdm::load_pod<Key>(blocks[i], off) == key) return false;
    }
  }
  if (size_ >= capacity_) throw CapacityError("wide dictionary at capacity N");

  // Section 3 with k items: place fragments one by one into the currently
  // least-loaded candidate bucket (several fragments may share a bucket).
  std::vector<bool> dirty(degree(), false);
  for (std::uint32_t frag = 0; frag < k_; ++frag) {
    std::uint32_t best = 0;
    for (std::uint32_t i = 1; i < degree(); ++i)
      if (counts[i] < counts[best]) best = i;
    if (counts[best] >= bucket_capacity_)
      throw CapacityError("all candidate buckets full (wide dictionary)");
    std::size_t off = kHeaderBytes + counts[best] * frag_record_bytes_;
    pdm::store_pod<Key>(blocks[best], off, key);
    pdm::store_pod<std::uint32_t>(blocks[best], off + 8, frag);
    pdm::store_pod<std::uint32_t>(blocks[best], off + 12, 0);
    std::size_t take = std::min(fragment_bytes_,
                                value_bytes_ - frag * fragment_bytes_);
    std::memcpy(blocks[best].data() + off + kFragMetaBytes,
                value.data() + frag * fragment_bytes_, take);
    ++counts[best];
    dirty[best] = true;
  }
  std::vector<std::pair<pdm::BlockAddr, pdm::Block>> writes;
  for (std::uint32_t i = 0; i < degree(); ++i) {
    if (!dirty[i]) continue;
    pdm::store_pod<std::uint32_t>(blocks[i], 0, counts[i]);
    writes.emplace_back(addrs[i], blocks[i]);
  }
  disks_->write_batch(writes);  // distinct disks → one parallel write
  ++size_;
  return true;
}

LookupResult WideDict::lookup(Key key) {
  obs::OpScope op(*disks_, obs::OpKind::kLookup, "wide_dict");
  check_key(key);
  auto addrs = probe_addrs(key);
  std::vector<pdm::Block> blocks;
  disks_->read_batch(addrs, blocks);

  std::vector<std::byte> value(value_bytes_);
  std::uint32_t found_frags = 0;
  for (std::uint32_t i = 0; i < degree(); ++i) {
    std::uint32_t count = pdm::load_pod<std::uint32_t>(blocks[i], 0);
    for (std::uint32_t s = 0; s < count; ++s) {
      std::size_t off = kHeaderBytes + s * frag_record_bytes_;
      if (pdm::load_pod<Key>(blocks[i], off) != key) continue;
      std::uint32_t frag = pdm::load_pod<std::uint32_t>(blocks[i], off + 8);
      std::size_t take = std::min(fragment_bytes_,
                                  value_bytes_ - frag * fragment_bytes_);
      std::memcpy(value.data() + frag * fragment_bytes_,
                  blocks[i].data() + off + kFragMetaBytes, take);
      ++found_frags;
    }
  }
  if (found_frags == 0) {
    op.set_outcome(obs::OpOutcome::kMiss);
    return {};
  }
  if (found_frags != k_)
    throw std::logic_error("wide dictionary: partial record on disk");
  op.set_outcome(obs::OpOutcome::kHit);
  return {true, std::move(value)};
}

bool WideDict::erase(Key key) {
  obs::OpScope op(*disks_, obs::OpKind::kErase, "wide_dict");
  check_key(key);
  auto addrs = probe_addrs(key);
  std::vector<pdm::Block> blocks;
  disks_->read_batch(addrs, blocks);
  std::vector<std::pair<pdm::BlockAddr, pdm::Block>> writes;
  bool found = false;
  for (std::uint32_t i = 0; i < degree(); ++i) {
    std::uint32_t count = pdm::load_pod<std::uint32_t>(blocks[i], 0);
    bool dirty = false;
    for (std::uint32_t s = 0; s < count; ++s) {
      std::size_t off = kHeaderBytes + s * frag_record_bytes_;
      if (pdm::load_pod<Key>(blocks[i], off) == key) {
        pdm::store_pod<Key>(blocks[i], off, kTombstone);
        dirty = found = true;
      }
    }
    if (dirty) writes.emplace_back(addrs[i], blocks[i]);
  }
  if (found) {
    disks_->write_batch(writes);
    --size_;
  }
  return found;
}

}  // namespace pddict::core
