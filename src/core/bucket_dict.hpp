// The "no constraints on B" variant of the Section 4.1 dictionary.
//
// When blocks are too small for a Θ(log N) bucket to fit in O(1) items per
// block, the paper keeps constant-time operations by giving each bucket an
// atomic heap [Fredman–Willard]. In the PDM cost metric only the fact that a
// bucket occupies O(1) blocks matters — the atomic heap's contribution is
// O(1) *RAM time* within the already-fetched blocks, which parallel I/O
// counting does not see. We therefore substitute a plain block-local bucket
// spanning a constant number of blocks (DESIGN.md §3.2): lookups and updates
// remain O(1) parallel I/Os for any B, which is exactly the claim of
// Section 4.1's atomic-heap paragraph. (One-probe lookups are not possible in
// this regime — also matching the paper.)
#pragma once

#include "core/basic_dict.hpp"

namespace pddict::core {

/// Computes parameters for the small-B regime: chooses bucket_blocks (a
/// constant > 1) so each bucket holds at least `min_bucket_capacity` records
/// even when B is tiny.
BasicDictParams bucket_dict_params(std::uint64_t universe_size,
                                   std::uint64_t capacity,
                                   std::size_t value_bytes,
                                   const pdm::Geometry& geometry,
                                   std::uint32_t min_bucket_capacity = 16,
                                   std::uint32_t degree = 0,
                                   std::uint64_t seed = 0xb0c4e7);

/// Convenience constructor for the small-B variant.
inline BasicDict make_bucket_dict(pdm::DiskArray& disks,
                                  std::uint32_t first_disk,
                                  std::uint64_t base_block,
                                  std::uint64_t universe_size,
                                  std::uint64_t capacity,
                                  std::size_t value_bytes,
                                  std::uint32_t min_bucket_capacity = 16,
                                  std::uint32_t degree = 0,
                                  std::uint64_t seed = 0xb0c4e7) {
  return BasicDict(disks, first_disk, base_block,
                   bucket_dict_params(universe_size, capacity, value_bytes,
                                      disks.geometry(), min_bucket_capacity,
                                      degree, seed));
}

}  // namespace pddict::core
