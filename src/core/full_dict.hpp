// Fully dynamic dictionary via global rebuilding (paper, Section 4 intro).
//
// The capacity-bounded structures support only lookups and insertions up to a
// size N fixed at initialization. Because the dictionary problem is a
// decomposable search problem, standard worst-case-efficient global
// rebuilding [Overmars–van Leeuwen] removes both restrictions:
//
//  * two structures are kept active at any time and queried in parallel
//    (they occupy disjoint disk halves, so a combined lookup is still one
//    parallel I/O);
//  * when the active structure fills up, a twice-as-large successor is
//    populated incrementally — a constant number of records migrate per
//    update, so every operation keeps a constant worst-case I/O bound;
//  * deletions mark tombstones without moving other records, and a rebuild
//    reclaims the space once tombstones dominate.
//
// As the paper notes, this costs a constant factor in space and number of
// disks and leaves the per-operation bounds intact.
#pragma once

#include <cstdint>
#include <memory>

#include "core/basic_dict.hpp"
#include "core/dictionary.hpp"
#include "pdm/allocator.hpp"

namespace pddict::core {

struct FullDictParams {
  std::uint64_t universe_size = 0;
  std::size_t value_bytes = 0;
  std::uint32_t degree = 0;  // 0 → O(log u)
  std::uint64_t initial_capacity = 64;
  /// Records migrated per update during a rebuild (>= 2 guarantees the new
  /// structure is ready before it is needed).
  std::uint32_t moves_per_op = 4;
  std::uint64_t seed = 0xf0bb;
};

class FullDict final : public Dictionary {
 public:
  /// Uses disks [first_disk, first_disk + 2·degree): one half per structure
  /// generation, alternating.
  FullDict(pdm::DiskArray& disks, std::uint32_t first_disk,
           pdm::DiskAllocator& alloc, const FullDictParams& params);

  bool insert(Key key, std::span<const std::byte> value) override;
  LookupResult lookup(Key key) override;
  bool erase(Key key) override;
  std::uint64_t size() const override { return size_; }
  std::size_t value_bytes() const override { return params_.value_bytes; }

  bool migrating() const { return building_ != nullptr; }
  std::uint64_t active_capacity() const { return active_capacity_; }
  std::uint64_t rebuilds() const { return rebuilds_; }
  static std::uint32_t disks_needed(const FullDictParams& params);

 private:
  std::unique_ptr<BasicDict> make_structure(std::uint64_t capacity);
  void start_rebuild(std::uint64_t new_capacity);
  void migration_step();
  void finish_rebuild();

  pdm::DiskArray* disks_;
  std::uint32_t first_disk_;
  pdm::DiskAllocator* alloc_;
  FullDictParams params_;
  std::uint32_t degree_;

  std::unique_ptr<BasicDict> active_;
  std::unique_ptr<BasicDict> building_;
  std::uint32_t active_half_ = 0;  // 0 or 1: which disk half active_ uses
  std::uint64_t active_base_ = 0;  // for discarding after migration
  std::uint64_t building_base_ = 0;
  std::uint64_t active_capacity_ = 0;
  std::uint64_t building_capacity_ = 0;
  std::uint64_t scan_cursor_ = 0;  // next bucket of active_ to migrate
  std::uint64_t size_ = 0;         // live records across both structures
  std::uint64_t tombstones_ = 0;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t generation_ = 0;   // seeds differ per generation
};

}  // namespace pddict::core
