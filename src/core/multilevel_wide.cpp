#include "core/multilevel_wide.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/op_context.hpp"
#include "pdm/block.hpp"
#include "util/math.hpp"

namespace pddict::core {

namespace {
constexpr std::size_t kHeaderBytes = 8;    // [u32 count][pad]
constexpr std::size_t kFragMetaBytes = 16; // [key u64][u32 frag][u32 pad]
}  // namespace

std::uint32_t MultiLevelWideDict::disks_needed(const MultiLevelWideParams& p) {
  std::uint32_t d =
      p.degree ? p.degree : expander::recommended_degree(p.universe_size);
  return p.levels * d;
}

MultiLevelWideDict::MultiLevelWideDict(pdm::DiskArray& disks,
                                       std::uint32_t first_disk,
                                       pdm::DiskAllocator& alloc,
                                       const MultiLevelWideParams& p)
    : disks_(&disks),
      universe_size_(p.universe_size),
      capacity_(p.capacity),
      value_bytes_(p.value_bytes) {
  if (p.universe_size < 2 || p.capacity < 1 || p.value_bytes < 1)
    throw std::invalid_argument("degenerate parameters");
  if (p.levels < 2)
    throw std::invalid_argument("the Section 6 sketch needs >= 2 levels");
  if (p.shrink <= 0.0 || p.shrink >= 1.0 || p.cap_fraction <= 0.0 ||
      p.cap_fraction > 1.0)
    throw std::invalid_argument("shrink and cap_fraction must be in (0,1)");
  d_ = p.degree ? p.degree : expander::recommended_degree(p.universe_size);
  k_ = std::max<std::uint32_t>(1, d_ / 2);  // k = Ω(d), the paper's choice
  if (first_disk + p.levels * d_ > disks.geometry().num_disks)
    throw std::invalid_argument("needs levels*d disks");

  fragment_bytes_ = util::ceil_div<std::uint64_t>(value_bytes_, k_);
  frag_record_bytes_ = kFragMetaBytes + fragment_bytes_;
  const std::size_t block_bytes = disks.geometry().block_bytes();
  if (frag_record_bytes_ + kHeaderBytes > block_bytes)
    throw std::invalid_argument("fragment does not fit in a block");
  bucket_capacity_ = static_cast<std::uint32_t>((block_bytes - kHeaderBytes) /
                                                frag_record_bytes_);
  if (bucket_capacity_ < 2)
    throw std::invalid_argument("bucket capacity < 2 fragments");

  std::uint32_t cap = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(bucket_capacity_ * p.cap_fraction));
  std::uint64_t per_stripe = std::max<std::uint64_t>(
      2, util::ceil_div<std::uint64_t>(p.capacity * k_ * 2, cap * d_));
  for (std::uint32_t i = 0; i < p.levels; ++i) {
    Level level;
    level.graph = std::make_unique<expander::SeededExpander>(
        p.universe_size, per_stripe * d_, d_, p.seed + 31 * (i + 1));
    level.first_disk = first_disk + i * d_;
    level.base_block = alloc.reserve(per_stripe);
    // Levels below the last respect the cap τ; the last level is the
    // brute-force tail and may fill its blocks completely.
    level.cap = (i + 1 == p.levels) ? bucket_capacity_ : cap;
    levels_.push_back(std::move(level));
    per_stripe = std::max<std::uint64_t>(
        2, static_cast<std::uint64_t>(
               std::ceil(p.shrink * static_cast<double>(per_stripe))));
  }
  level_population_.assign(levels_.size(), 0);
}

void MultiLevelWideDict::check_key(Key key) const {
  if (key == kTombstone || key >= universe_size_)
    throw std::invalid_argument("key outside universe");
}

std::uint32_t MultiLevelWideDict::bucket_count(const pdm::Block& b) const {
  return pdm::load_pod<std::uint32_t>(b, 0);
}

std::vector<pdm::BlockAddr> MultiLevelWideDict::probe_addrs(Key key) const {
  std::vector<pdm::BlockAddr> addrs;
  addrs.reserve(levels_.size() * d_);
  for (const Level& lv : levels_)
    for (std::uint32_t i = 0; i < d_; ++i)
      addrs.push_back({lv.first_disk + i,
                       lv.base_block + lv.graph->stripe_local(key, i)});
  return addrs;
}

bool MultiLevelWideDict::insert(Key key, std::span<const std::byte> value) {
  obs::OpScope op(*disks_, obs::OpKind::kInsert, "multilevel_wide");
  check_key(key);
  if (value.size() != value_bytes_)
    throw std::invalid_argument("value size mismatch");
  auto addrs = probe_addrs(key);
  std::vector<pdm::Block> blocks;
  disks_->read_batch(addrs, blocks);  // all levels at once: 1 parallel I/O

  // Duplicate scan across every level.
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    std::uint32_t count = bucket_count(blocks[b]);
    for (std::uint32_t s = 0; s < count; ++s) {
      if (pdm::load_pod<Key>(blocks[b],
                             kHeaderBytes + s * frag_record_bytes_) == key)
        return false;
    }
  }
  if (size_ >= capacity_) throw CapacityError("at capacity N");

  // First-fit over levels: greedy k-item balancing under the level cap.
  for (std::uint32_t li = 0; li < levels_.size(); ++li) {
    const Level& lv = levels_[li];
    std::span<pdm::Block> lb =
        std::span(blocks).subspan(static_cast<std::size_t>(li) * d_, d_);
    std::vector<std::uint32_t> counts(d_);
    for (std::uint32_t i = 0; i < d_; ++i) counts[i] = bucket_count(lb[i]);

    // Simulate the greedy placement; accept the level iff no bucket would
    // exceed its cap.
    std::vector<std::uint32_t> chosen(k_);
    std::vector<std::uint32_t> sim = counts;
    bool fits = true;
    for (std::uint32_t frag = 0; frag < k_ && fits; ++frag) {
      std::uint32_t best = 0;
      for (std::uint32_t i = 1; i < d_; ++i)
        if (sim[i] < sim[best]) best = i;
      if (sim[best] >= lv.cap) fits = false;
      chosen[frag] = best;
      ++sim[best];
    }
    if (!fits) continue;

    std::vector<bool> dirty(d_, false);
    for (std::uint32_t frag = 0; frag < k_; ++frag) {
      std::uint32_t i = chosen[frag];
      std::size_t off = kHeaderBytes + counts[i] * frag_record_bytes_;
      pdm::store_pod<Key>(lb[i], off, key);
      pdm::store_pod<std::uint32_t>(lb[i], off + 8, frag);
      pdm::store_pod<std::uint32_t>(lb[i], off + 12, 0);
      std::size_t take = std::min(fragment_bytes_,
                                  value_bytes_ - frag * fragment_bytes_);
      std::memcpy(lb[i].data() + off + kFragMetaBytes,
                  value.data() + frag * fragment_bytes_, take);
      ++counts[i];
      dirty[i] = true;
    }
    std::vector<std::pair<pdm::BlockAddr, pdm::Block>> writes;
    for (std::uint32_t i = 0; i < d_; ++i) {
      if (!dirty[i]) continue;
      pdm::store_pod<std::uint32_t>(lb[i], 0, counts[i]);
      writes.emplace_back(addrs[static_cast<std::size_t>(li) * d_ + i], lb[i]);
    }
    disks_->write_batch(writes);  // distinct disks: 1 parallel I/O
    ++size_;
    ++level_population_[li];
    return true;
  }
  throw CapacityError(
      "brute-force tail full (Section 6 sketch: caps mis-tuned for this "
      "load)");
}

LookupResult MultiLevelWideDict::lookup(Key key) {
  obs::OpScope op(*disks_, obs::OpKind::kLookup, "multilevel_wide");
  check_key(key);
  auto addrs = probe_addrs(key);
  std::vector<pdm::Block> blocks;
  disks_->read_batch(addrs, blocks);  // 1 parallel I/O across levels*d disks

  std::vector<std::byte> value(value_bytes_);
  std::uint32_t found = 0;
  for (const auto& block : blocks) {
    std::uint32_t count = bucket_count(block);
    for (std::uint32_t s = 0; s < count; ++s) {
      std::size_t off = kHeaderBytes + s * frag_record_bytes_;
      if (pdm::load_pod<Key>(block, off) != key) continue;
      std::uint32_t frag = pdm::load_pod<std::uint32_t>(block, off + 8);
      std::size_t take = std::min(fragment_bytes_,
                                  value_bytes_ - frag * fragment_bytes_);
      std::memcpy(value.data() + frag * fragment_bytes_,
                  block.data() + off + kFragMetaBytes, take);
      ++found;
    }
  }
  if (found == 0) {
    op.set_outcome(obs::OpOutcome::kMiss);
    return {};
  }
  if (found != k_) throw std::logic_error("partial record on disk");
  op.set_outcome(obs::OpOutcome::kHit);
  return {true, std::move(value)};
}

bool MultiLevelWideDict::erase(Key key) {
  obs::OpScope op(*disks_, obs::OpKind::kErase, "multilevel_wide");
  check_key(key);
  auto addrs = probe_addrs(key);
  std::vector<pdm::Block> blocks;
  disks_->read_batch(addrs, blocks);
  std::vector<std::pair<pdm::BlockAddr, pdm::Block>> writes;
  bool found = false;
  std::uint32_t found_level = 0;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    std::uint32_t count = bucket_count(blocks[b]);
    bool dirty = false;
    for (std::uint32_t s = 0; s < count; ++s) {
      std::size_t off = kHeaderBytes + s * frag_record_bytes_;
      if (pdm::load_pod<Key>(blocks[b], off) == key) {
        pdm::store_pod<Key>(blocks[b], off, kTombstone);
        dirty = found = true;
        found_level = static_cast<std::uint32_t>(b / d_);
      }
    }
    if (dirty) writes.emplace_back(addrs[b], blocks[b]);
  }
  if (found) {
    disks_->write_batch(writes);
    --size_;
    --level_population_[found_level];
  }
  return found;
}

}  // namespace pddict::core
