// Deterministic d-choice load balancing over expander neighborhoods
// (paper, Section 3).
//
// An unknown set of left vertices arrives on-line; each vertex carries k
// items, and each item must be assigned to a neighboring right vertex
// ("bucket"). The greedy strategy assigns the k items one by one, each to a
// currently least-loaded neighboring bucket (ties broken by lowest bucket
// index; the paper allows arbitrary tie-breaking), possibly placing several
// items of one vertex in the same bucket.
//
// Lemma 3: on a (d, ε, δ)-expander with d > k, the maximum bucket load is at
// most  kn/((1−δ)v) · 1/(1−ε)  +  log_{(1−ε)d/k} v.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "expander/neighbor_function.hpp"

namespace pddict::obs {
class BoundMonitor;
}  // namespace pddict::obs

namespace pddict::core {

class LoadBalancer {
 public:
  /// `items_per_vertex` is the paper's k; requires k < d for the lemma to
  /// apply (larger k is allowed mechanically).
  LoadBalancer(const expander::NeighborFunction& graph,
               std::uint32_t items_per_vertex);

  /// Assign the k items of left vertex x greedily. Returns the chosen bucket
  /// for each item (k entries, possibly repeating buckets).
  std::vector<std::uint64_t> assign(std::uint64_t x);

  std::uint64_t load(std::uint64_t bucket) const { return loads_[bucket]; }
  std::uint64_t max_load() const { return max_load_; }
  std::uint64_t total_items() const { return total_items_; }
  std::uint64_t vertices_placed() const { return vertices_; }
  const std::vector<std::uint64_t>& loads() const { return loads_; }
  std::uint32_t items_per_vertex() const { return k_; }

  /// Attach a live Lemma 3 monitor (obs::lemma3_rules()). After every
  /// assign() the balancer pushes (max load, instantiated bound for the
  /// current vertex count) to the monitor's "max_load" gauge, so the margin
  /// tracks the worst point of the whole arrival sequence, not just the end
  /// state. `epsilon`/`delta` are the expansion parameters the graph is
  /// assumed to have (the caller certifies them; the balancer cannot).
  void attach_monitor(obs::BoundMonitor* monitor, double epsilon,
                      double delta);

 private:
  const expander::NeighborFunction* graph_;
  std::uint32_t k_;
  std::vector<std::uint64_t> loads_;
  std::uint64_t total_items_ = 0;
  std::uint64_t vertices_ = 0;
  std::uint64_t max_load_ = 0;  // maintained incrementally by assign()
  obs::BoundMonitor* monitor_ = nullptr;
  double monitor_epsilon_ = 0.0;
  double monitor_delta_ = 0.0;
};

/// The Lemma 3 bound:  kn/((1−δ)v)/(1−ε) + log_{(1−ε)d/k}(v),
/// for n vertices of k items each on a (d, ε, δ)-expander with v buckets.
/// Requires (1−ε)d/k > 1.
double lemma3_bound(std::uint64_t n, std::uint64_t v, std::uint32_t d,
                    std::uint32_t k, double epsilon, double delta);

}  // namespace pddict::core
