// Concurrent access to the Section 4.1 dictionary (paper, §1.1).
//
// "All of our algorithms share features that make them suitable for an
// environment with many concurrent lookups and updates: there is no notion of
// an index structure or central directory ... no piece of data is ever moved,
// once inserted. This ... simplifies concurrency control mechanisms such as
// locking."
//
// ConcurrentBasicDict makes that concrete: a reader-writer lock per bucket.
// An operation on key x locks only the d candidate buckets of Γ(x) (shared
// for lookups, exclusive for updates), acquired in global bucket order so no
// deadlock is possible. Because records never move and there is no central
// directory, no other locks exist — operations on keys with disjoint
// neighborhoods proceed fully in parallel, which is exactly the property the
// paper credits to the design.
#pragma once

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "core/basic_dict.hpp"

namespace pddict::core {

class ConcurrentBasicDict {
 public:
  ConcurrentBasicDict(pdm::DiskArray& disks, std::uint32_t first_disk,
                      std::uint64_t base_block, const BasicDictParams& params)
      : dict_(disks, first_disk, base_block, params),
        bucket_locks_(dict_.num_buckets()) {}

  bool insert(Key key, std::span<const std::byte> value) {
    auto guard = lock_buckets<std::unique_lock<std::shared_mutex>>(key);
    auto addrs = dict_.probe_addrs(key);
    std::vector<pdm::Block> blocks;
    dict_.disks().read_batch(addrs, blocks);
    std::optional<std::vector<std::pair<pdm::BlockAddr, pdm::Block>>> writes;
    {
      // plan_insert mutates the dictionary's size counter: short exclusive
      // critical section around the in-memory planning step.
      std::lock_guard<std::mutex> meta(meta_);
      writes = dict_.plan_insert(key, value, blocks);
    }
    if (!writes) return false;
    dict_.disks().write_batch(*writes);
    return true;
  }

  LookupResult lookup(Key key) {
    auto guard = lock_buckets<std::shared_lock<std::shared_mutex>>(key);
    auto addrs = dict_.probe_addrs(key);
    std::vector<pdm::Block> blocks;
    dict_.disks().read_batch(addrs, blocks);
    auto probe = dict_.inspect(key, blocks);
    return {probe.found, std::move(probe.value)};
  }

  bool erase(Key key) {
    auto guard = lock_buckets<std::unique_lock<std::shared_mutex>>(key);
    auto addrs = dict_.probe_addrs(key);
    std::vector<pdm::Block> blocks;
    dict_.disks().read_batch(addrs, blocks);
    std::optional<std::vector<std::pair<pdm::BlockAddr, pdm::Block>>> writes;
    {
      // Same read–plan–write shape as insert: meta_ covers only the
      // in-memory planning (which mutates the size counter), never the disk
      // I/O. Holding it across dict_.erase()'s read+write rounds serialized
      // every erase in the system and stalled size()/insert planning.
      std::lock_guard<std::mutex> meta(meta_);
      writes = dict_.plan_erase(key, blocks);
    }
    if (!writes) return false;
    dict_.disks().write_batch(*writes);
    return true;
  }

  std::uint64_t size() {
    std::lock_guard<std::mutex> meta(meta_);
    return dict_.size();
  }

  /// Bucket indices an operation on `key` locks — exposed so tests can
  /// verify the conflict footprint (d buckets, nothing global).
  std::vector<std::uint64_t> lock_footprint(Key key) const {
    std::vector<std::uint64_t> buckets;
    const auto& g = dict_.graph();
    for (std::uint32_t i = 0; i < g.degree(); ++i)
      buckets.push_back(g.neighbor(key, i));
    std::sort(buckets.begin(), buckets.end());
    return buckets;
  }

  BasicDict& underlying() { return dict_; }

 private:
  template <typename Lock>
  std::vector<Lock> lock_buckets(Key key) {
    std::vector<Lock> guards;
    guards.reserve(dict_.degree());
    // Global bucket order ⇒ no deadlocks between concurrent operations.
    for (std::uint64_t b : lock_footprint(key))
      guards.emplace_back(bucket_locks_[b]);
    return guards;
  }

  BasicDict dict_;
  std::vector<std::shared_mutex> bucket_locks_;
  std::mutex meta_;
};

}  // namespace pddict::core
