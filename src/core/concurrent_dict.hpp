// Concurrent access to the Section 4.1 dictionary (paper, §1.1).
//
// "All of our algorithms share features that make them suitable for an
// environment with many concurrent lookups and updates: there is no notion of
// an index structure or central directory ... no piece of data is ever moved,
// once inserted. This ... simplifies concurrency control mechanisms such as
// locking."
//
// ConcurrentBasicDict makes that concrete: a reader-writer lock per bucket.
// An operation on key x locks only the d candidate buckets of Γ(x) (shared
// for lookups, exclusive for updates), acquired in global bucket order so no
// deadlock is possible. Because records never move and there is no central
// directory, no other locks exist — operations on keys with disjoint
// neighborhoods proceed fully in parallel, which is exactly the property the
// paper credits to the design.
#pragma once

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "core/basic_dict.hpp"

namespace pddict::core {

class ConcurrentBasicDict {
 public:
  ConcurrentBasicDict(pdm::DiskArray& disks, std::uint32_t first_disk,
                      std::uint64_t base_block, const BasicDictParams& params)
      : dict_(disks, first_disk, base_block, params),
        bucket_locks_(dict_.num_buckets()) {}

  // Updates drop their bucket locks after *submitting* the write-back, not
  // after it completes: DiskArray accounts and enqueues a batch in submission
  // order under its own mutex, and the executor's per-disk FIFO replays
  // batches in that order, so any conflicting operation that acquires the
  // bucket locks afterwards submits afterwards and is ordered behind the
  // write on every shared disk. The device time of the write-back then
  // overlaps the next operation on the same buckets instead of serializing
  // with it.
  bool insert(Key key, std::span<const std::byte> value) {
    auto guard = lock_buckets<std::unique_lock<std::shared_mutex>>(key);
    auto addrs = dict_.probe_addrs(key);
    pdm::BatchFuture read = dict_.disks().submit_read_batch(addrs);
    std::vector<pdm::Block> blocks;
    read.get(blocks);
    std::optional<std::vector<std::pair<pdm::BlockAddr, pdm::Block>>> writes;
    {
      // plan_insert mutates the dictionary's size counter: short exclusive
      // critical section around the in-memory planning step.
      std::lock_guard<std::mutex> meta(meta_);
      writes = dict_.plan_insert(key, value, blocks);
    }
    if (!writes) return false;
    pdm::BatchFuture write = dict_.disks().submit_write_batch(*writes);
    guard.clear();  // safe once submitted: per-disk FIFO orders later I/O
    write.wait();
    return true;
  }

  LookupResult lookup(Key key) {
    pdm::BatchFuture read;
    {
      auto guard = lock_buckets<std::shared_lock<std::shared_mutex>>(key);
      read = dict_.disks().submit_read_batch(dict_.probe_addrs(key));
      // Locks released here: the snapshot the read returns is fixed by its
      // position in the FIFO, so joining can happen outside the locks.
    }
    std::vector<pdm::Block> blocks;
    read.get(blocks);
    auto probe = dict_.inspect(key, blocks);
    return {probe.found, std::move(probe.value)};
  }

  bool erase(Key key) {
    auto guard = lock_buckets<std::unique_lock<std::shared_mutex>>(key);
    auto addrs = dict_.probe_addrs(key);
    pdm::BatchFuture read = dict_.disks().submit_read_batch(addrs);
    std::vector<pdm::Block> blocks;
    read.get(blocks);
    std::optional<std::vector<std::pair<pdm::BlockAddr, pdm::Block>>> writes;
    {
      // Same read–plan–write shape as insert: meta_ covers only the
      // in-memory planning (which mutates the size counter), never the disk
      // I/O. Holding it across dict_.erase()'s read+write rounds serialized
      // every erase in the system and stalled size()/insert planning.
      std::lock_guard<std::mutex> meta(meta_);
      writes = dict_.plan_erase(key, blocks);
    }
    if (!writes) return false;
    pdm::BatchFuture write = dict_.disks().submit_write_batch(*writes);
    guard.clear();  // safe once submitted: per-disk FIFO orders later I/O
    write.wait();
    return true;
  }

  std::uint64_t size() {
    std::lock_guard<std::mutex> meta(meta_);
    return dict_.size();
  }

  /// Bucket indices an operation on `key` locks — exposed so tests can
  /// verify the conflict footprint (d buckets, nothing global).
  std::vector<std::uint64_t> lock_footprint(Key key) const {
    std::vector<std::uint64_t> buckets;
    const auto& g = dict_.graph();
    for (std::uint32_t i = 0; i < g.degree(); ++i)
      buckets.push_back(g.neighbor(key, i));
    std::sort(buckets.begin(), buckets.end());
    return buckets;
  }

  BasicDict& underlying() { return dict_; }

 private:
  template <typename Lock>
  std::vector<Lock> lock_buckets(Key key) {
    std::vector<Lock> guards;
    guards.reserve(dict_.degree());
    // Global bucket order ⇒ no deadlocks between concurrent operations.
    for (std::uint64_t b : lock_footprint(key))
      guards.emplace_back(bucket_locks_[b]);
    return guards;
  }

  BasicDict dict_;
  std::vector<std::shared_mutex> bucket_locks_;
  std::mutex meta_;
};

}  // namespace pddict::core
