// Store manifest ("superblock"): self-describing persistent stores.
//
// A deterministic dictionary is fully reconstructible from its parameters and
// seed; the manifest persists exactly those in block 0 of disk 0, so a
// file-backed store can be reopened without external metadata. (The paper's
// structures need no on-disk index or directory — the manifest is one block
// of parameters, not a data structure.)
#pragma once

#include <optional>

#include "core/basic_dict.hpp"
#include "pdm/disk_array.hpp"

namespace pddict::core {

struct StoreManifest {
  BasicDictParams params;
  /// First block of the dictionary region (blocks 0..base-1 are reserved for
  /// the manifest and future metadata).
  std::uint64_t base_block = 1;
  /// Record count persisted on clean close. Valid only when count_valid is
  /// set; open_store clears the flag (crash ⇒ fall back to a recovery scan).
  std::uint64_t record_count = 0;
  bool count_valid = false;

  friend bool operator==(const StoreManifest&, const StoreManifest&) = default;
};

/// Writes the manifest into block {disk 0, block 0}. One parallel I/O.
void write_manifest(pdm::DiskArray& disks, const StoreManifest& manifest);

/// Reads and validates the manifest; std::nullopt if the block does not
/// carry one (fresh store). Throws if the magic matches but the version or
/// geometry is incompatible. One parallel I/O.
std::optional<StoreManifest> read_manifest(pdm::DiskArray& disks);

/// Convenience: opens-or-creates a BasicDict store described by a manifest.
/// If the store is fresh, writes `fresh_params` as its manifest; otherwise
/// the persisted parameters win (callers must not assume theirs were used).
/// The returned dictionary has its size counter recovered.
BasicDict open_store(pdm::DiskArray& disks, const BasicDictParams& fresh_params);

/// Marks a clean close: persists the current record count into the manifest
/// so the next open_store skips the recovery scan. One parallel I/O.
void close_store(pdm::DiskArray& disks, const BasicDict& store);

}  // namespace pddict::core
