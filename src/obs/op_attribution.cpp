#include "obs/op_attribution.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pddict::obs {

OpAttributor::OpAttributor(std::size_t worst_k)
    : worst_k_(worst_k ? worst_k : 1) {}

void OpAttributor::on_io(const IoEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (event.op_id == 0) {
    ++untagged_;
    return;
  }
  OpenOp& op = open_[event.op_id];
  op.parallel_ios += event.rounds;
  if (op.per_disk.size() < event.per_disk.size())
    op.per_disk.resize(event.per_disk.size(), 0);
  for (std::size_t d = 0; d < event.per_disk.size(); ++d) {
    op.per_disk[d] += event.per_disk[d];
    op.blocks += event.per_disk[d];
  }
}

void OpAttributor::on_span(const SpanRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (record.op_id == 0) return;
  OpenOp& op = open_[record.op_id];
  if (op.spans.size() < kMaxSpansPerOp)
    op.spans.emplace_back(record.path, record.io.parallel_ios);
  // Amortization: charge spans whose leaf segment is "rebuild". Rebuild
  // spans never nest inside each other, so this never double-counts.
  auto slash = record.path.rfind('/');
  std::string_view leaf =
      slash == std::string::npos
          ? std::string_view(record.path)
          : std::string_view(record.path).substr(slash + 1);
  if (leaf == "rebuild") {
    op.rebuild_ios += record.io.parallel_ios;
    ++op.rebuild_spans;
  }
}

void OpAttributor::on_op(const OpRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  OpenOp op;
  auto it = open_.find(record.id);
  if (it != open_.end()) {
    op = std::move(it->second);
    open_.erase(it);
  }
  ++finished_;

  KindStats& ks = kinds_[op_kind_name(record.kind)];
  if (ks.hist.empty()) ks.hist.assign(kHistBuckets, 0);
  ++ks.ops;
  ks.parallel_ios += op.parallel_ios;
  ks.blocks += op.blocks;
  ks.rebuild_ios += op.rebuild_ios;
  ks.rebuild_spans += op.rebuild_spans;
  std::size_t bucket = static_cast<std::size_t>(
      std::min<std::uint64_t>(op.parallel_ios, kHistBuckets - 1));
  ++ks.hist[bucket];

  // Worst-K ring: sorted by exact cost descending, ties broken by id
  // ascending so the retained set is deterministic.
  bool belongs = worst_.size() < worst_k_ ||
                 op.parallel_ios > worst_.back().parallel_ios ||
                 (op.parallel_ios == worst_.back().parallel_ios &&
                  record.id < worst_.back().record.id);
  if (!belongs) return;
  WorstOp w;
  w.record = record;
  w.parallel_ios = op.parallel_ios;
  w.blocks = op.blocks;
  w.per_disk = std::move(op.per_disk);
  w.spans = std::move(op.spans);
  auto pos = std::upper_bound(
      worst_.begin(), worst_.end(), w, [](const WorstOp& a, const WorstOp& b) {
        if (a.parallel_ios != b.parallel_ios)
          return a.parallel_ios > b.parallel_ios;
        return a.record.id < b.record.id;
      });
  worst_.insert(pos, std::move(w));
  if (worst_.size() > worst_k_) worst_.pop_back();
}

std::map<std::string, OpAttributor::KindStats> OpAttributor::kind_stats()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return kinds_;
}

std::vector<OpAttributor::WorstOp> OpAttributor::worst_ops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return worst_;
}

std::uint64_t OpAttributor::finished_ops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return finished_;
}

std::uint64_t OpAttributor::untagged_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return untagged_;
}

void OpAttributor::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  open_.clear();
  kinds_.clear();
  worst_.clear();
  finished_ = 0;
  untagged_ = 0;
}

std::string OpAttributor::render() const {
  auto kinds = kind_stats();
  auto worst = worst_ops();
  std::ostringstream os;
  char line[256];
  os << "per-operation parallel I/O\n";
  std::snprintf(line, sizeof(line), "%-10s %10s %12s %10s %14s\n", "kind",
                "ops", "par. I/Os", "avg", "rebuild share");
  os << line;
  for (const auto& [name, ks] : kinds) {
    double avg = ks.ops ? static_cast<double>(ks.parallel_ios) /
                              static_cast<double>(ks.ops)
                        : 0.0;
    double share = ks.parallel_ios
                       ? static_cast<double>(ks.rebuild_ios) /
                             static_cast<double>(ks.parallel_ios)
                       : 0.0;
    std::snprintf(line, sizeof(line), "%-10s %10llu %12llu %10.3f %13.1f%%\n",
                  name.c_str(), static_cast<unsigned long long>(ks.ops),
                  static_cast<unsigned long long>(ks.parallel_ios), avg,
                  share * 100.0);
    os << line;
    // Histogram: only the populated buckets, as "cost: count" pairs.
    os << "  hist:";
    for (std::size_t i = 0; i < ks.hist.size(); ++i) {
      if (ks.hist[i] == 0) continue;
      std::snprintf(line, sizeof(line), " %zu%s:%llu", i,
                    i + 1 == kHistBuckets ? "+" : "",
                    static_cast<unsigned long long>(ks.hist[i]));
      os << line;
    }
    os << '\n';
  }
  os << "worst operations (exact per-op cost from tagged events)\n";
  for (const auto& w : worst) {
    std::snprintf(line, sizeof(line),
                  "  op %llu %s%s%s: %llu par. I/Os, %llu blocks\n",
                  static_cast<unsigned long long>(w.record.id),
                  op_kind_name(w.record.kind),
                  w.record.outcome == OpOutcome::kUnknown ? "" : "/",
                  w.record.outcome == OpOutcome::kUnknown
                      ? ""
                      : op_outcome_name(w.record.outcome),
                  static_cast<unsigned long long>(w.parallel_ios),
                  static_cast<unsigned long long>(w.blocks));
    os << line;
    for (const auto& [path, ios] : w.spans) {
      std::snprintf(line, sizeof(line), "    %-40s %llu\n", path.c_str(),
                    static_cast<unsigned long long>(ios));
      os << line;
    }
  }
  std::snprintf(line, sizeof(line), "untagged I/O events: %llu\n",
                static_cast<unsigned long long>(untagged_events()));
  os << line;
  return os.str();
}

Json OpAttributor::to_json() const {
  auto kinds = kind_stats();
  auto worst = worst_ops();
  Json j = Json::object();
  Json jkinds = Json::object();
  for (const auto& [name, ks] : kinds) {
    Json k = Json::object();
    k.set("ops", ks.ops);
    k.set("parallel_ios", ks.parallel_ios);
    k.set("blocks", ks.blocks);
    double avg = ks.ops ? static_cast<double>(ks.parallel_ios) /
                              static_cast<double>(ks.ops)
                        : 0.0;
    k.set("avg_parallel_ios", avg);
    k.set("rebuild_parallel_ios", ks.rebuild_ios);
    k.set("rebuild_spans", ks.rebuild_spans);
    Json hist = Json::array();
    // Trailing zero buckets are trimmed to keep reports small.
    std::size_t last = ks.hist.size();
    while (last > 1 && ks.hist[last - 1] == 0) --last;
    for (std::size_t i = 0; i < last; ++i) hist.push_back(ks.hist[i]);
    k.set("hist", std::move(hist));
    jkinds.set(name, std::move(k));
  }
  j.set("kinds", std::move(jkinds));
  Json jworst = Json::array();
  for (const auto& w : worst) {
    Json o = Json::object();
    o.set("id", w.record.id);
    o.set("kind", op_kind_name(w.record.kind));
    if (w.record.outcome != OpOutcome::kUnknown)
      o.set("outcome", op_outcome_name(w.record.outcome));
    if (!w.record.structure.empty()) o.set("structure", w.record.structure);
    o.set("parallel_ios", w.parallel_ios);
    o.set("blocks", w.blocks);
    Json per_disk = Json::array();
    for (std::uint64_t c : w.per_disk) per_disk.push_back(c);
    o.set("per_disk", std::move(per_disk));
    Json spans = Json::array();
    for (const auto& [path, ios] : w.spans) {
      Json s = Json::object();
      s.set("path", path);
      s.set("parallel_ios", ios);
      spans.push_back(std::move(s));
    }
    o.set("spans", std::move(spans));
    jworst.push_back(std::move(o));
  }
  j.set("worst_ops", std::move(jworst));
  j.set("finished_ops", finished_ops());
  j.set("untagged_events", untagged_events());
  return j;
}

}  // namespace pddict::obs
