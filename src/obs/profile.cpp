#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pddict::obs {

namespace {

std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}

pdm::IoStats sat_sub(const pdm::IoStats& a, const pdm::IoStats& b) {
  pdm::IoStats r;
  r.parallel_ios = sat_sub(a.parallel_ios, b.parallel_ios);
  r.read_rounds = sat_sub(a.read_rounds, b.read_rounds);
  r.write_rounds = sat_sub(a.write_rounds, b.write_rounds);
  r.blocks_read = sat_sub(a.blocks_read, b.blocks_read);
  r.blocks_written = sat_sub(a.blocks_written, b.blocks_written);
  return r;
}

/// True when `child` is a *direct* child path of `parent`
/// ("a/b" of "a", but not "a/b/c").
bool is_direct_child(const std::string& parent, const std::string& child) {
  if (child.size() <= parent.size() + 1) return false;
  if (child.compare(0, parent.size(), parent) != 0) return false;
  if (child[parent.size()] != '/') return false;
  return child.find('/', parent.size() + 1) == std::string::npos;
}

}  // namespace

Profile Profile::from_nodes(
    const std::map<std::string, SpanAggregator::Node>& nodes) {
  Profile p;
  p.nodes_.reserve(nodes.size());
  for (const auto& [path, node] : nodes) {
    ProfileNode out;
    out.path = path;
    out.depth = node.depth;
    out.count = node.count;
    out.total = node.io;
    out.self = node.io;
    out.wall_ns = node.wall_ns;
    out.self_wall_ns = node.wall_ns;
    p.nodes_.push_back(std::move(out));
  }
  // Subtract each node's direct children. The map iterates in path order, so
  // a node's children follow it contiguously before the next sibling; a
  // linear scan forward until the prefix no longer matches covers exactly
  // the subtree.
  for (std::size_t i = 0; i < p.nodes_.size(); ++i) {
    ProfileNode& parent = p.nodes_[i];
    for (std::size_t j = i + 1; j < p.nodes_.size(); ++j) {
      const ProfileNode& cand = p.nodes_[j];
      if (cand.path.compare(0, parent.path.size(), parent.path) != 0) break;
      if (!is_direct_child(parent.path, cand.path)) continue;
      parent.self = sat_sub(parent.self, cand.total);
      parent.self_wall_ns = sat_sub(parent.self_wall_ns, cand.wall_ns);
    }
  }
  return p;
}

std::vector<ProfileNode> Profile::hot_paths(std::size_t k) const {
  std::vector<ProfileNode> ranked = nodes_;
  std::sort(ranked.begin(), ranked.end(),
            [](const ProfileNode& a, const ProfileNode& b) {
              if (a.self.parallel_ios != b.self.parallel_ios)
                return a.self.parallel_ios > b.self.parallel_ios;
              std::uint64_t ab = a.self.blocks_read + a.self.blocks_written;
              std::uint64_t bb = b.self.blocks_read + b.self.blocks_written;
              if (ab != bb) return ab > bb;
              return a.path < b.path;
            });
  if (k != 0 && ranked.size() > k) ranked.resize(k);
  return ranked;
}

pdm::IoStats Profile::self_sum() const {
  pdm::IoStats sum;
  for (const ProfileNode& n : nodes_) sum += n.self;
  return sum;
}

std::string Profile::render_flame(std::size_t top_k) const {
  auto ranked = hot_paths(top_k);
  const pdm::IoStats grand = self_sum();
  const double denom =
      grand.parallel_ios ? static_cast<double>(grand.parallel_ios) : 1.0;
  std::ostringstream os;
  char line[320];
  std::snprintf(line, sizeof(line), "%-44s %10s %10s %7s %7s %10s %12s\n",
                "path (ranked by self I/Os)", "self I/Os", "total", "self%",
                "cum%", "count", "self blocks");
  os << line;
  double cum = 0.0;
  for (const ProfileNode& n : ranked) {
    double share = 100.0 * static_cast<double>(n.self.parallel_ios) / denom;
    cum += share;
    std::snprintf(line, sizeof(line),
                  "%-44s %10llu %10llu %6.1f%% %6.1f%% %10llu %12llu\n",
                  n.path.c_str(),
                  static_cast<unsigned long long>(n.self.parallel_ios),
                  static_cast<unsigned long long>(n.total.parallel_ios), share,
                  cum, static_cast<unsigned long long>(n.count),
                  static_cast<unsigned long long>(n.self.blocks_read +
                                                  n.self.blocks_written));
    os << line;
  }
  std::snprintf(line, sizeof(line), "%-44s %10llu\n", "(self total)",
                static_cast<unsigned long long>(grand.parallel_ios));
  os << line;
  return os.str();
}

Json Profile::to_json(std::size_t top_k) const {
  Json arr = Json::array();
  for (const ProfileNode& n : hot_paths(top_k)) {
    Json j = Json::object();
    j.set("path", n.path);
    j.set("depth", n.depth);
    j.set("count", n.count);
    j.set("self_parallel_ios", n.self.parallel_ios);
    j.set("self_blocks_read", n.self.blocks_read);
    j.set("self_blocks_written", n.self.blocks_written);
    j.set("self_wall_ns", n.self_wall_ns);
    j.set("total_parallel_ios", n.total.parallel_ios);
    j.set("total_blocks_read", n.total.blocks_read);
    j.set("total_blocks_written", n.total.blocks_written);
    j.set("total_wall_ns", n.wall_ns);
    arr.push_back(std::move(j));
  }
  return arr;
}

// Defined here (not span.cpp) so the aggregator's profile entry point lives
// with the rollup math.
Profile SpanAggregator::profile() const { return Profile::from_nodes(nodes()); }

}  // namespace pddict::obs
