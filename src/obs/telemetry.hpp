// Live runtime telemetry: a background sampler producing schema-versioned
// frames, and a health watchdog over the execution engine and caches.
//
// Everything observability built before this layer is post-hoc: metrics and
// bound reports are exported once, at the end of a run. A long-running
// dictionary service needs the opposite — always-on, bounded-memory
// telemetry you can scrape *while it runs*, because under the paper's
// deterministic guarantees a bound breach mid-run is a bug, not noise. Three
// pieces:
//
//   * TelemetrySampler — a background thread that, every interval, asks each
//     registered source for a JSON snapshot and assembles one
//     "pddict-telemetry-frame" (schema v1): monotone seq + ts_ns, the
//     per-source snapshots, and any watchdog alerts. Frames land in a
//     bounded ring (live scraping) and, optionally, an append-only JSONL
//     file (time series; validated by tools/validate_telemetry). The latest
//     frame also renders as Prometheus text exposition.
//
//   * A process-wide default sampler (set_default_telemetry), mirroring
//     obs::set_default_sink: a DiskArray constructed while one is installed
//     registers itself as a source automatically and unregisters — after a
//     final frame is taken, so the time series always ends on the exact
//     end-of-run counters — when it dies. This is how the bench harness
//     observes arrays created deep inside experiment helpers.
//
//   * HealthWatchdog — a passive rule engine over type-erased HealthSample
//     probes (the pdm layer adapts DiskArray / IoExecutor / BufferPool /
//     BoundMonitor into them, keeping this library free of a pdm link edge).
//     check_now() evaluates every source against the configured thresholds
//     and emits structured "pddict-health" events on rising edges: worker
//     stalls (per-worker heartbeats), queue-depth high water, dirty-frame
//     floods, paper-bound margin breaches. The sampler drives it each tick
//     and embeds fresh alerts in the frame; `pddict_cli top` / `doctor`
//     render the same events live.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace pddict::obs {

// ---- health probes (type-erased view of the pdm layer) ----

/// One execution worker's heartbeat, as seen at sampling time.
struct WorkerHealthSample {
  /// Nanoseconds the worker's *current* backend transfer has been running;
  /// 0 when idle. A large value is a stalled (or very slow) disk.
  std::uint64_t busy_ns = 0;
  std::uint32_t busy_disk = 0;    // disk of the in-flight job (if busy)
  std::size_t queue_depth = 0;    // jobs waiting on this worker
  std::uint64_t jobs_done = 0;    // lifetime jobs completed
};

/// Point-in-time health of one watched source. Sections are optional so one
/// struct serves arrays with/without a cache, engine, or bound monitor.
struct HealthSample {
  bool has_exec = false;
  std::vector<WorkerHealthSample> workers;

  bool has_cache = false;
  std::size_t cache_capacity = 0;
  std::size_t cache_dirty_frames = 0;

  bool has_bounds = false;
  double worst_margin = 0.0;          // > 1.0 means a guarantee was breached
  std::uint64_t bound_violations = 0;

  bool has_model = false;
  /// Measured/predicted wall-time ratio over the conformance layer's recent
  /// window (1.0 = the cost model is exact; see obs/cost_conformance.hpp).
  double model_ratio = 1.0;
  std::uint64_t model_batches = 0;  // batches behind the ratio
};

/// Alert thresholds. Defaults are conservative: they only fire on states
/// that are certainly pathological for the simulated-disk workloads.
struct WatchdogConfig {
  /// A worker whose current job has run longer than this is stalled.
  std::uint64_t stall_ns = 500'000'000;  // 500 ms
  /// Alert when any worker's queue reaches this depth.
  std::size_t queue_depth_high_water = 64;
  /// Alert when dirty frames exceed this fraction of cache capacity.
  double dirty_frame_flood = 0.9;
  /// Alert when a bound margin exceeds this (1.0 = the proven guarantee).
  double margin_alert = 1.0;
  /// Alert when the cost model's measured/predicted ratio leaves
  /// [1/model_divergence, model_divergence] — the model no longer describes
  /// the device. Checked only once the ratio window has enough batches.
  double model_divergence = 4.0;
};

/// One structured "pddict-health" event (schema v1 when serialized).
struct HealthEvent {
  std::uint64_t seq = 0;
  std::uint64_t ts_ns = 0;
  std::string source;    // watchdog source name
  std::string kind;      // worker_stall | queue_depth_high_water |
                         // dirty_frame_flood | bound_margin_breach |
                         // model_divergence
  std::string message;   // human one-liner
  double measured = 0.0;
  double threshold = 0.0;
};

Json health_event_to_json(const HealthEvent& event);

class HealthWatchdog {
 public:
  explicit HealthWatchdog(WatchdogConfig config = {});

  const WatchdogConfig& config() const { return config_; }

  /// Register a probe. The callable is invoked from check_now() (the
  /// sampler thread, usually) and must therefore be thread-safe and outlive
  /// the watchdog or be removed first.
  std::uint64_t add_source(std::string name,
                           std::function<HealthSample()> probe);
  void remove_source(std::uint64_t id);

  /// Evaluate every source; returns the events newly raised by this check
  /// (rising edge only — a condition that stays bad across consecutive
  /// checks is reported once until it clears). Also appended to events().
  std::vector<HealthEvent> check_now();

  /// The most recent events (bounded ring of kMaxEvents), oldest first.
  std::vector<HealthEvent> events() const;
  /// Total events ever raised, per kind.
  std::map<std::string, std::uint64_t> alert_counts() const;
  std::uint64_t total_alerts() const;

  /// {"schema":"pddict-health","version":1,"counts":{...},"events":[...]}.
  Json to_json() const;
  /// Human table for `pddict_cli doctor` / `top`.
  std::string render() const;

  static constexpr std::size_t kMaxEvents = 256;

 private:
  struct Source {
    std::uint64_t id = 0;
    std::string name;
    std::function<HealthSample()> probe;
    /// Rising-edge state per alert key ("worker_stall/3", "queue_depth", ...).
    std::map<std::string, bool> active;
    std::uint64_t seen_violations = 0;
  };

  void raise(Source& src, std::string_view key, std::string kind,
             std::string message, double measured, double threshold,
             std::vector<HealthEvent>& out);
  void clear(Source& src, std::string_view key);

  const WatchdogConfig config_;
  mutable std::mutex mutex_;
  std::vector<Source> sources_;
  std::uint64_t next_id_ = 1;
  std::uint64_t event_seq_ = 0;
  std::deque<HealthEvent> events_;
  std::map<std::string, std::uint64_t> counts_;
};

// ---- the sampler ----

class TelemetrySampler {
 public:
  struct Options {
    /// Sampling period of the background thread.
    std::uint64_t interval_ms = 100;
    /// Frames retained in memory for live scraping.
    std::size_t ring_capacity = 512;
    /// Append every frame as one JSON line here ("" = no file).
    std::string jsonl_path;
  };

  TelemetrySampler() : TelemetrySampler(Options()) {}
  explicit TelemetrySampler(Options options);
  ~TelemetrySampler();  // stop()s

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Register a source; its collector returns the JSON snapshot embedded in
  /// every frame under "sources.<name>#<id>". Collectors run under the
  /// sampler lock — they must not call back into the sampler. A frame is
  /// taken immediately (reason "source_added") so even an instantaneous run
  /// leaves a time series.
  std::uint64_t add_source(std::string name, std::function<Json()> collect);
  /// Take one final frame (reason "source_removed") with the source still
  /// attached, then drop it — the series always ends on the source's exact
  /// final counters.
  void remove_source(std::uint64_t id);
  /// Convenience: a MetricsRegistry source (single-lock snapshot per frame).
  std::uint64_t add_registry(std::string name, const MetricsRegistry* registry);

  /// Attach a watchdog: every frame embeds the alerts its check_now()
  /// raised plus the cumulative per-kind counts.
  void set_watchdog(std::shared_ptr<HealthWatchdog> watchdog);
  std::shared_ptr<HealthWatchdog> watchdog() const;

  /// Start / stop the background sampling thread. stop() takes a final
  /// frame (reason "final"), joins and flushes the JSONL stream; safe to
  /// call twice. The destructor stops implicitly.
  void start();
  void stop();
  bool running() const;

  /// Take one frame synchronously (reason defaults to "manual"); returns it.
  Json sample_now(std::string_view reason = "manual");

  /// Ring snapshot, oldest first.
  std::vector<Json> frames() const;
  /// Total frames emitted (ring may have dropped early ones).
  std::uint64_t frames_emitted() const;
  std::uint64_t frames_dropped() const;
  const Options& options() const { return options_; }

  /// Prometheus text exposition of the latest frame: every numeric leaf of
  /// every source becomes one sample, named
  ///   pddict_<sanitized.json.path> {source="<name>#<id>"}
  /// (see prometheus_name() for the sanitization rules; label values are
  /// escaped via prometheus_label_value). Samples are grouped per metric
  /// family, each preceded by its `# HELP` / `# TYPE gauge` header lines.
  /// Empty when no frame exists yet.
  std::string render_prometheus() const;

  static constexpr int kSchemaVersion = 1;
  static constexpr std::string_view kFrameSchema = "pddict-telemetry-frame";

 private:
  struct Source {
    std::uint64_t id = 0;
    std::string name;  // unique key "name#id" precomputed
    std::function<Json()> collect;
  };

  /// Build + record one frame. Caller must NOT hold mutex_.
  Json take_frame(std::string_view reason);

  const Options options_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<Source> sources_;
  std::shared_ptr<HealthWatchdog> watchdog_;
  std::uint64_t next_id_ = 1;
  std::uint64_t seq_ = 0;
  std::uint64_t last_ts_ns_ = 0;
  std::deque<Json> ring_;
  std::uint64_t dropped_ = 0;
  std::unique_ptr<std::ostream> jsonl_;
  std::thread thread_;
  bool running_ = false;
  bool stopping_ = false;
};

/// Process-wide default sampler: a DiskArray constructed while one is set
/// registers itself automatically (and unregisters on destruction). Pass
/// nullptr to clear. Affects only arrays constructed afterwards.
void set_default_telemetry(std::shared_ptr<TelemetrySampler> sampler);
std::shared_ptr<TelemetrySampler> default_telemetry();

// ---- Prometheus text-exposition helpers ----

/// Sanitize an internal dotted metric name into a legal Prometheus metric
/// name: every character outside [a-zA-Z0-9_:] becomes '_', and a leading
/// digit is prefixed with '_'. "pdm.disk.3.blocks_read" →
/// "pdm_disk_3_blocks_read" (write_prometheus below additionally lifts the
/// per-disk index into a {disk="3"} label instead).
std::string prometheus_name(std::string_view name);

/// Escape a string for use inside a Prometheus label value (the text between
/// the quotes of `{label="..."}`): backslash, double quote and newline become
/// \\ , \" and \n per the text exposition format. Everything that renders a
/// label value (write_prometheus, TelemetrySampler::render_prometheus) goes
/// through this one helper.
std::string prometheus_label_value(std::string_view value);

/// Render a MetricsRegistry snapshot as Prometheus text exposition, under
/// `prefix` (default "pddict"). Mapping rules (documented in
/// docs/observability.md):
///   * counters  →  <prefix>_<sanitized>_total, # TYPE counter
///   * gauges    →  <prefix>_<sanitized>,       # TYPE gauge
///   * a ".disk.<N>." path segment pair is lifted into a disk="N" label
///     ("pdm.disk.3.blocks_read" → pddict_pdm_disk_blocks_read{disk="3"})
///   * registry histograms (small index domains, e.g. round utilization)
///     →  <prefix>_<sanitized>{bucket="i"} gauges, one per entry.
/// Every family is preceded by `# HELP` and `# TYPE` header lines, and label
/// values pass through prometheus_label_value.
void write_prometheus(std::ostream& os, const MetricsRegistry::Snapshot& snap,
                      std::string_view prefix = "pddict");

}  // namespace pddict::obs
