// Live monitors comparing measured cost against the paper's proven bounds.
//
// Every structure in this reproduction carries a theorem: Lemma 3 bounds the
// greedy balancer's max load, Theorem 6 gives the static dictionary
// one-probe lookups, Theorem 7 gives the dynamic dictionary its per-op and
// amortized I/O budget, Theorem 12 gives the semi-explicit expander its
// expansion/degree/memory guarantees. A BoundMonitor instantiates those
// bounds with the run's actual parameters and checks every operation (or
// gauge observation) against them as it happens, exporting:
//
//   * margin gauges — measured/bound for upper bounds, bound/measured for
//     lower bounds, so margin <= 1.0 always means "inside the guarantee" and
//     the headroom is 1 - margin,
//   * a violation counter plus bounded structured violation events,
//   * a per-run bound report ({"schema":"pddict-bound-report",...}) that
//     benches embed in pddict-bench-report and tools/bench_diff gates on.
//
// The monitor is a Sink: attach it to a DiskArray (add_sink) and it sees
// every OpRecord the structure's OpScopes emit. Costs come from OpRecord::io
// (exact single-threaded); quantities without an operation stream — max
// load, expansion, degree — are pushed directly via observe().
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "obs/sink.hpp"

namespace pddict::obs {

class MetricsRegistry;

enum class BoundMode : std::uint8_t {
  kPerOp,    // every matching op must satisfy the bound individually
  kAverage,  // the running mean over matching ops must satisfy it
  kGauge,    // externally observed quantity (observe()), worst value kept
};

enum class BoundDirection : std::uint8_t {
  kUpperLimit,  // measured must stay <= bound
  kLowerLimit,  // measured must stay >= bound (expansion)
};

/// One instantiated inequality from the paper.
struct BoundRule {
  std::string name;        // stable key ("lookup_miss", "max_load", ...)
  std::string theorem;     // provenance ("Lemma 3", "Theorem 7", ...)
  std::string expression;  // human form of the instantiation ("2 + eps")
  BoundMode mode = BoundMode::kPerOp;
  BoundDirection direction = BoundDirection::kUpperLimit;
  /// Instantiated numeric bound. Gauge rules may override it per
  /// observation (Lemma 3's bound moves with the number of placed vertices).
  double bound = 0.0;
  /// Filters for per-op / average rules; a rule matches an OpRecord when the
  /// kinds are equal, the outcome filter is kUnknown or equal, and the
  /// structure filter is empty or equal.
  OpKind kind = OpKind::kNone;
  OpOutcome outcome = OpOutcome::kUnknown;
  std::string structure;
};

struct BoundViolation {
  std::string rule;
  double measured = 0.0;
  double bound = 0.0;
  std::uint64_t op_id = 0;  // 0 for gauge observations
  OpKind kind = OpKind::kNone;
  std::uint64_t ts_ns = 0;
};

class BoundMonitor : public Sink {
 public:
  /// `structure` labels the report ("dynamic_dict", "load_balancer", ...).
  BoundMonitor(std::string structure, std::vector<BoundRule> rules);

  void on_io(const IoEvent&) override {}
  void on_span(const SpanRecord&) override {}
  void on_op(const OpRecord& record) override;

  /// Push a gauge observation against rule `rule` (must be kGauge), using
  /// the rule's static bound or an explicit per-observation `bound`.
  void observe(std::string_view rule, double measured);
  void observe(std::string_view rule, double measured, double bound);

  /// Worst margin a rule has seen (0 when it never matched). margin =
  /// measured/bound for upper bounds, bound/measured for lower bounds;
  /// <= 1.0 means the guarantee held.
  double margin(std::string_view rule) const;
  /// Max margin across all rules that matched at least once.
  double worst_margin() const;
  std::uint64_t violations() const;
  /// The most recent violations, capped at kMaxViolationLog.
  std::vector<BoundViolation> violation_log() const;

  /// {"schema":"pddict-bound-report","version":1,"structure":...,
  ///  "rules":[{name,theorem,mode,bound,...,margin,violations}],
  ///  "violations":[...]}  — the shape tools/validate_bench_json checks and
  /// benches embed under "bounds".
  Json report() const;
  /// Human-readable margin table (pddict_cli doctor prints this).
  std::string render() const;
  /// Gauges "<prefix>.<structure>.<rule>.margin" plus a violation counter.
  void export_metrics(MetricsRegistry& registry,
                      std::string_view prefix = "bound") const;

  static constexpr std::size_t kMaxViolationLog = 64;

  /// True when `margin` exceeds 1 beyond float tolerance.
  static bool is_violation(double margin);

 private:
  struct RuleState {
    BoundRule rule;
    std::uint64_t matched = 0;      // ops or observations seen
    double sum = 0.0;               // for kAverage
    double worst_measured = 0.0;
    double worst_margin = 0.0;
    double last_bound = 0.0;        // bound at the worst observation
    std::uint64_t violations = 0;
  };

  void apply(RuleState& st, double measured, double bound, std::uint64_t op_id,
             OpKind kind, std::uint64_t ts_ns);

  const std::string structure_;
  mutable std::mutex mutex_;
  std::vector<RuleState> rules_;
  std::uint64_t violations_ = 0;
  std::vector<BoundViolation> log_;
};

// ---- instantiated rule sets (pure numbers in, no core-layer types) ----

/// Lemma 3: greedy max load <= kn/((1-delta)v)/(1-eps) + log_{(1-eps)d/k}(v).
/// One gauge rule "max_load"; the balancer pushes (measured, bound) pairs.
std::vector<BoundRule> lemma3_rules();

/// Theorem 6: static dictionary lookups take exactly one parallel I/O.
std::vector<BoundRule> thm6_rules();

/// Theorem 7: dynamic dictionary with `levels` size classes and slack eps.
/// Per-op: miss == 1, hit <= 2, insert <= levels + 1, erase <= 5 (the O(1)
/// bound instantiated at the implementation's structural worst case).
/// Amortized: miss avg <= 1, hit avg <= 1 + eps, insert avg <= 2 + eps.
std::vector<BoundRule> thm7_rules(double eps, std::uint32_t levels);

/// Theorem 12 gauges for the semi-explicit expander: "expansion" (lower,
/// >= (1-eps) * d * |S| pushed per sample), "degree" and "memory_words"
/// (upper, bound pushed per observation).
std::vector<BoundRule> thm12_rules(double eps);

/// Section 4.1 dictionary running on a Theorem 12 expander: lookup <= 1,
/// insert <= 2, erase <= 2 parallel I/Os per key batch.
std::vector<BoundRule> expander_dict_rules();

}  // namespace pddict::obs
