#include "obs/bench_baseline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace pddict::obs {

namespace {

/// Top-level / per-report keys that are provenance, not measurements.
/// "host" (cpu model / ISA level) and the "exact_percentiles" footer
/// describe the machine and the flags, not the run — bench_diff compares
/// hosts separately (warning only, since counted metrics are host-invariant).
bool is_metadata_key(const std::string& key) {
  return key == "schema" || key == "version" || key == "git_rev" ||
         key == "label" || key == "generated_by" || key == "bench" ||
         key == "host" || key == "exact_percentiles";
}

void flatten_value(const std::string& prefix, const Json& v,
                   std::vector<FlatMetric>& out) {
  switch (v.type()) {
    case Json::Type::kInt:
    case Json::Type::kDouble:
      out.push_back({prefix, true, v.as_double(), {}});
      return;
    case Json::Type::kBool:
      // Booleans are pass/fail verdicts (within_bounds, ...): flatten
      // numerically so true -> false registers with a direction.
      out.push_back({prefix, true, v.as_bool() ? 1.0 : 0.0, {}});
      return;
    case Json::Type::kString:
      out.push_back({prefix, false, 0.0, v.as_string()});
      return;
    case Json::Type::kNull:
      out.push_back({prefix, false, 0.0, "null"});
      return;
    case Json::Type::kArray: {
      const JsonArray& arr = v.as_array();
      for (std::size_t i = 0; i < arr.size(); ++i)
        flatten_value(prefix + "/" + std::to_string(i), arr[i], out);
      return;
    }
    case Json::Type::kObject:
      for (const auto& [key, child] : v.as_object()) {
        if (is_metadata_key(key)) continue;
        if (key == "rows" && child.is_array()) {
          // Rows are matched by name, not index, so reordering them (or
          // inserting one) does not shift every later row's diff.
          for (const Json& row : child.as_array()) {
            const Json* name = row.find("name");
            std::string label =
                name && name->is_string() ? name->as_string() : "?";
            flatten_value(prefix + "/rows[" + label + "]", row, out);
          }
          continue;
        }
        flatten_value(prefix + "/" + key, child, out);
      }
      return;
  }
}

std::string last_segment(const std::string& path) {
  auto slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool ends_with(const std::string& s, const char* suffix) {
  std::string_view sv(suffix);
  return s.size() >= sv.size() &&
         s.compare(s.size() - sv.size(), sv.size(), sv) == 0;
}

bool is_wall_metric(const std::string& path) {
  std::string leaf = last_segment(path);
  // queue_depth rides with the wall metrics: like wall time it reflects
  // execution scheduling (how transfers landed on workers), not the
  // deterministic round accounting, so it gets the %-band treatment.
  return leaf.find("wall") != std::string::npos || ends_with(leaf, "_ms") ||
         ends_with(leaf, "_ns") || ends_with(leaf, "_us") ||
         ends_with(leaf, "queue_depth");
}

/// Metrics where a larger value is the better one.
bool is_higher_better(const std::string& path) {
  static const std::set<std::string> kHigherBetter = {
      "mean_utilization", "utilization",   "expansion",
      "min_expansion",    "bandwidth",     "speedup",
      "speedup_wall",     "unique_fraction", "within_bounds",
      "ok",               "passed",        "bits_saved",
      "within_2x_frac"};
  return kHigherBetter.count(last_segment(path)) > 0;
}

/// Cost-model conformance ratios (measured/predicted): 1.0 is perfect, so
/// "worse" means farther from 1.0 in either direction, not simply larger.
bool is_ratio_metric(const std::string& path) {
  std::string leaf = last_segment(path);
  return leaf == "ratio" || ends_with(leaf, "_ratio");
}

/// Configuration values: any drift invalidates the comparison, so it gates
/// like a regression instead of masquerading as an improvement (halving n
/// halves every I/O count).
bool is_structural(const std::string& path) {
  if (path.find("/params/") != std::string::npos) return true;
  if (path.find("/geometry/") != std::string::npos) return true;
  static const std::set<std::string> kStructural = {
      "count", "n", "num_disks", "block_items", "item_bytes",
      "eps",   "degree", "capacity", "value_bytes", "seed"};
  return kStructural.count(last_segment(path)) > 0;
}

/// Bound-monitor leaves (pddict-bound-report rules embedded in a report's
/// "bounds" section, or standalone). A margin is measured/bound: above 1.0
/// the paper bound itself is violated, which gates regardless of history.
bool is_margin_leaf(const std::string& path) {
  return last_segment(path) == "margin";
}

bool is_violations_leaf(const std::string& path) {
  return last_segment(path) == "violations";
}

constexpr double kMarginViolation = 1.0 + 1e-9;

double relative_delta(double before, double after) {
  if (before == after) return 0.0;
  if (before == 0.0) return after > 0 ? 1e30 : -1e30;
  return (after - before) / std::fabs(before);
}

int rank_of(DiffKind kind) {
  switch (kind) {
    case DiffKind::kRegression: return 0;
    case DiffKind::kRemoved: return 1;
    case DiffKind::kImprovement: return 2;
    case DiffKind::kChange: return 3;
    case DiffKind::kAdded: return 4;
  }
  return 5;
}

const char* kind_name(DiffKind kind) {
  switch (kind) {
    case DiffKind::kRegression: return "REGRESSION";
    case DiffKind::kRemoved: return "REMOVED";
    case DiffKind::kImprovement: return "improvement";
    case DiffKind::kChange: return "change";
    case DiffKind::kAdded: return "added";
  }
  return "?";
}

}  // namespace

std::vector<FlatMetric> flatten_baseline(const Json& root) {
  if (!root.is_object())
    throw std::runtime_error("baseline document is not a JSON object");
  std::vector<FlatMetric> out;
  const Json* benches = root.find("benches");
  if (benches && benches->is_object()) {
    // Consolidated baseline: one subtree per bench, keyed by bench name.
    for (const auto& [name, entry] : benches->as_object())
      flatten_value(name, entry, out);
    if (const Json* suite = root.find("suite"))
      flatten_value("suite", *suite, out);
  } else {
    // A single pddict-bench-report compares too.
    const Json* bench = root.find("bench");
    std::string prefix =
        bench && bench->is_string() ? bench->as_string() : "report";
    flatten_value(prefix, root, out);
  }
  return out;
}

DiffResult diff_baselines(const Json& before, const Json& after,
                          const DiffOptions& options) {
  std::map<std::string, FlatMetric> old_map, new_map;
  for (FlatMetric& m : flatten_baseline(before))
    old_map.emplace(m.path, std::move(m));
  for (FlatMetric& m : flatten_baseline(after))
    new_map.emplace(m.path, std::move(m));

  DiffResult result;
  auto add = [&](DiffEntry entry) { result.entries.push_back(std::move(entry)); };

  for (const auto& [path, old_metric] : old_map) {
    auto it = new_map.find(path);
    if (it == new_map.end()) {
      // A measurement that vanished gates: silently dropping a metric is
      // how a regression hides from a numeric diff.
      add({path, DiffKind::kRemoved, is_wall_metric(path),
           old_metric.is_number ? old_metric.number : 0.0, 0.0, 0.0});
      ++result.regressions;
      continue;
    }
    const FlatMetric& new_metric = it->second;
    ++result.compared;
    if (!old_metric.is_number || !new_metric.is_number) {
      bool same = old_metric.is_number == new_metric.is_number &&
                  old_metric.text == new_metric.text;
      if (!same) add({path, DiffKind::kChange, false, 0.0, 0.0, 0.0});
      continue;
    }
    double a = old_metric.number, b = new_metric.number;
    double rel = relative_delta(a, b);
    if (is_violations_leaf(path)) {
      // A bound violation on the new side gates even if the old baseline had
      // it too: the gate stays red until the bound holds again.
      if (b > 0) {
        ++result.regressions;
        add({path, DiffKind::kRegression, false, a, b, rel});
      } else if (a > 0) {
        ++result.improvements;
        add({path, DiffKind::kImprovement, false, a, b, rel});
      }
      continue;
    }
    if (is_margin_leaf(path)) {
      if (b > kMarginViolation) {
        ++result.regressions;
        add({path, DiffKind::kRegression, false, a, b, rel});
        continue;
      }
      // Within the guarantee: tolerate small drift, gate on a real march
      // toward the bound, credit movement away from it.
      if (std::fabs(rel) * 100.0 <= options.margin_tol_pct) continue;
      DiffKind kind = b > a ? DiffKind::kRegression : DiffKind::kImprovement;
      if (kind == DiffKind::kRegression) ++result.regressions;
      if (kind == DiffKind::kImprovement) ++result.improvements;
      add({path, kind, false, a, b, rel});
      continue;
    }
    if (is_ratio_metric(path)) {
      if (std::fabs(rel) * 100.0 <= options.ratio_tol_pct) continue;
      // Distance from the ideal 1.0 on a log scale, so 2.0 and 0.5 are
      // equally bad and an 0.8 -> 1.1 move counts as an improvement.
      double da = std::fabs(std::log(std::max(a, 1e-12)));
      double db = std::fabs(std::log(std::max(b, 1e-12)));
      DiffKind kind = db > da ? DiffKind::kRegression : DiffKind::kImprovement;
      if (kind == DiffKind::kRegression && !options.gate_wall)
        kind = DiffKind::kChange;
      if (kind == DiffKind::kRegression) ++result.regressions;
      if (kind == DiffKind::kImprovement) ++result.improvements;
      add({path, kind, true, a, b, rel});
      continue;
    }
    if (is_wall_metric(path)) {
      if (std::fabs(rel) * 100.0 <= options.wall_tol_pct) continue;
      // speedup_wall and friends are wall-derived but higher-better: a DROP
      // is the regression there (e.g. the executor losing its overlap).
      bool worse = is_higher_better(path) ? b < a : b > a;
      DiffKind kind = worse ? DiffKind::kRegression : DiffKind::kImprovement;
      if (kind == DiffKind::kRegression && !options.gate_wall)
        kind = DiffKind::kChange;
      if (kind == DiffKind::kRegression) ++result.regressions;
      if (kind == DiffKind::kImprovement) ++result.improvements;
      add({path, kind, true, a, b, rel});
      continue;
    }
    // Deterministic metrics: exact up to float formatting noise.
    double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
    if (std::fabs(a - b) <= options.float_eps * scale) continue;
    DiffKind kind;
    if (is_structural(path)) {
      kind = DiffKind::kRegression;  // config drift invalidates the compare
    } else if (is_higher_better(path)) {
      kind = b < a ? DiffKind::kRegression : DiffKind::kImprovement;
    } else {
      kind = b > a ? DiffKind::kRegression : DiffKind::kImprovement;
    }
    if (kind == DiffKind::kRegression) ++result.regressions;
    if (kind == DiffKind::kImprovement) ++result.improvements;
    add({path, kind, false, a, b, rel});
  }
  for (const auto& [path, new_metric] : new_map) {
    if (old_map.count(path)) continue;
    // Added metrics never gate — except a bound already violated on arrival.
    if (new_metric.is_number &&
        ((is_margin_leaf(path) && new_metric.number > kMarginViolation) ||
         (is_violations_leaf(path) && new_metric.number > 0))) {
      ++result.regressions;
      add({path, DiffKind::kRegression, false, 0.0, new_metric.number, 1e30});
      continue;
    }
    add({path, DiffKind::kAdded, is_wall_metric(path), 0.0,
         new_metric.is_number ? new_metric.number : 0.0, 0.0});
  }

  std::sort(result.entries.begin(), result.entries.end(),
            [](const DiffEntry& x, const DiffEntry& y) {
              int rx = rank_of(x.kind), ry = rank_of(y.kind);
              if (rx != ry) return rx < ry;
              double dx = std::fabs(x.rel), dy = std::fabs(y.rel);
              if (dx != dy) return dx > dy;
              return x.path < y.path;
            });
  return result;
}

std::string render_diff(const DiffResult& result, std::size_t top_k) {
  std::ostringstream os;
  char line[512];
  std::snprintf(line, sizeof(line), "%-11s %-78s %14s %14s %9s\n", "kind",
                "metric", "before", "after", "delta");
  os << line;
  std::size_t shown = 0;
  for (const DiffEntry& e : result.entries) {
    if (top_k && shown >= top_k) {
      std::snprintf(line, sizeof(line), "... (%zu more)\n",
                    result.entries.size() - shown);
      os << line;
      break;
    }
    ++shown;
    char delta[32];
    if (e.kind == DiffKind::kAdded || e.kind == DiffKind::kRemoved ||
        e.kind == DiffKind::kChange) {
      std::snprintf(delta, sizeof(delta), "-");
    } else if (std::fabs(e.rel) >= 1e29) {
      std::snprintf(delta, sizeof(delta), "new!=0");
    } else {
      std::snprintf(delta, sizeof(delta), "%+.2f%%", e.rel * 100.0);
    }
    std::snprintf(line, sizeof(line), "%-11s %-78s %14.6g %14.6g %9s\n",
                  kind_name(e.kind), e.path.c_str(), e.before, e.after, delta);
    os << line;
  }
  std::snprintf(line, sizeof(line),
                "%zu compared, %zu regression(s), %zu improvement(s), "
                "%zu other change(s)\n",
                result.compared, result.regressions, result.improvements,
                result.entries.size() - result.regressions -
                    result.improvements);
  os << line;
  return os.str();
}

}  // namespace pddict::obs
