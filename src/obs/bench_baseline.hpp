// Consolidated bench baselines ("pddict-bench-baseline" v1) and their diff.
//
// tools/bench_runner merges the 13 per-bench pddict-bench-report documents
// into one baseline file (BENCH_PR<k>.json at the repo root); this module is
// the comparison engine behind tools/bench_diff and the CTest regression
// gate. The rules reflect what the numbers are:
//
//   * parallel-I/O counts and everything derived from them are
//     deterministic in (parameters, seed) — they must match EXACTLY; any
//     increase is a regression, any decrease an improvement;
//   * wall-clock metrics (key contains "wall" or ends in _ms/_ns/_us) are
//     noisy — they compare within a percentage band and only gate when the
//     caller asks (the CI gate passes --ignore-wall: machines differ);
//   * metrics where bigger is better (mean_utilization, expansion, ...)
//     regress downward instead of upward;
//   * rows are matched by their "name" field, benches by their key, so
//     reordering does not produce spurious diffs; added/removed entries are
//     reported (a removed metric gates — silently dropping a measurement is
//     how regressions hide).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace pddict::obs {

inline constexpr const char* kBaselineSchema = "pddict-bench-baseline";
inline constexpr int kBaselineVersion = 1;

enum class DiffKind {
  kRegression,   // got worse beyond tolerance
  kImprovement,  // got better
  kChange,       // changed, direction unknown / non-gating
  kAdded,        // present only in the new baseline
  kRemoved,      // present only in the old baseline
};

struct DiffEntry {
  std::string path;   // "bench_x/rows[name]/lookup/p95"
  DiffKind kind = DiffKind::kChange;
  bool wall = false;  // classified as a wall-clock metric
  double before = 0.0;
  double after = 0.0;
  /// Relative delta (after-before)/|before|; +inf encoded as a large value
  /// when before == 0.
  double rel = 0.0;
};

struct DiffOptions {
  /// Tolerance band for wall-clock metrics, in percent.
  double wall_tol_pct = 50.0;
  /// When false, wall-clock metrics never gate (still reported).
  bool gate_wall = true;
  /// Relative epsilon for floating-point metrics (avg, mean_utilization):
  /// below this a difference is formatting noise, not a change.
  double float_eps = 1e-9;
  /// Drift band for bound-monitor "margin" leaves, in percent: margins are
  /// measured/bound ratios, so small movement is expected; drift toward the
  /// bound beyond this band gates even while the bound still holds.
  /// Independently of the band, ANY new-side margin above 1.0 (the paper
  /// bound itself violated) and any new-side "violations" count above zero
  /// gate unconditionally — including on entries the old baseline lacks.
  double margin_tol_pct = 5.0;
  /// Band for cost-model conformance ratios (measured/predicted leaves named
  /// "ratio" / "*_ratio", from pddict-cost-report sections): 1.0 is a perfect
  /// model, so drift within the band is machine noise and a change beyond it
  /// gates only when the new value is FARTHER from 1.0 than the old one.
  /// Ratios are wall-derived, so --ignore-wall (gate_wall=false) demotes
  /// their regressions to non-gating changes too.
  double ratio_tol_pct = 25.0;
};

struct DiffResult {
  std::vector<DiffEntry> entries;  // ranked: regressions first, by |rel|
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  std::size_t compared = 0;  // metrics present on both sides
  bool ok() const { return regressions == 0; }
};

/// Compare two baseline documents (or two single bench reports). Throws
/// std::runtime_error when either document is structurally unusable.
DiffResult diff_baselines(const Json& before, const Json& after,
                          const DiffOptions& options = {});

/// Ranked human-readable table; top_k = 0 prints every entry.
std::string render_diff(const DiffResult& result, std::size_t top_k = 0);

/// Flatten a baseline/report into path -> value pairs (exposed for tests).
/// Non-numeric leaves are included with is_number == false so string drift
/// (a changed paper-bound annotation) is visible as kChange.
struct FlatMetric {
  std::string path;
  bool is_number = false;
  double number = 0.0;
  std::string text;  // non-numeric leaves, serialized
};
std::vector<FlatMetric> flatten_baseline(const Json& root);

}  // namespace pddict::obs
