#include "obs/sink.hpp"

#include <chrono>
#include <fstream>
#include <stdexcept>

namespace pddict::obs {

std::uint64_t trace_now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kNone: return "none";
    case OpKind::kLookup: return "lookup";
    case OpKind::kInsert: return "insert";
    case OpKind::kErase: return "erase";
    case OpKind::kBuild: return "build";
    case OpKind::kRebuild: return "rebuild";
    case OpKind::kAssign: return "assign";
    case OpKind::kOther: return "other";
  }
  return "none";
}

const char* op_outcome_name(OpOutcome outcome) {
  switch (outcome) {
    case OpOutcome::kUnknown: return "unknown";
    case OpOutcome::kHit: return "hit";
    case OpOutcome::kMiss: return "miss";
  }
  return "unknown";
}

// ---------------------------------------------------------- RingBufferSink

RingBufferSink::RingBufferSink(std::size_t capacity)
    : capacity_(capacity ? capacity : 1) {}

void RingBufferSink::on_io(const IoEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() == capacity_) {
    events_.pop_front();
    ++dropped_events_;
  }
  events_.push_back(event);
}

void RingBufferSink::on_span(const SpanRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() == capacity_) {
    spans_.pop_front();
    ++dropped_spans_;
  }
  spans_.push_back(record);
}

void RingBufferSink::on_op(const OpRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ops_.size() == capacity_) {
    ops_.pop_front();
    ++dropped_ops_;
  }
  ops_.push_back(record);
}

std::vector<IoEvent> RingBufferSink::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {events_.begin(), events_.end()};
}

std::vector<OpRecord> RingBufferSink::ops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ops_.begin(), ops_.end()};
}

std::uint64_t RingBufferSink::dropped_ops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_ops_;
}

std::vector<SpanRecord> RingBufferSink::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {spans_.begin(), spans_.end()};
}

std::uint64_t RingBufferSink::dropped_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_events_;
}

std::uint64_t RingBufferSink::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_spans_;
}

void RingBufferSink::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  spans_.clear();
  ops_.clear();
  dropped_events_ = 0;
  dropped_spans_ = 0;
  dropped_ops_ = 0;
}

// --------------------------------------------------------------- MultiSink

MultiSink::MultiSink(std::vector<std::shared_ptr<Sink>> children)
    : children_(std::make_shared<const Children>(std::move(children))) {}

std::shared_ptr<const MultiSink::Children> MultiSink::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return children_;
}

void MultiSink::add(std::shared_ptr<Sink> child) {
  if (!child) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto next = std::make_shared<Children>(*children_);
  next->push_back(std::move(child));
  children_ = std::move(next);
}

bool MultiSink::remove(const Sink* child) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto next = std::make_shared<Children>(*children_);
  bool found = false;
  for (auto it = next->begin(); it != next->end();) {
    if (it->get() == child) {
      it = next->erase(it);
      found = true;
    } else {
      ++it;
    }
  }
  if (found) children_ = std::move(next);
  return found;
}

std::size_t MultiSink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return children_->size();
}

void MultiSink::on_io(const IoEvent& event) {
  auto children = snapshot();
  for (const auto& child : *children)
    if (child) child->on_io(event);
}

void MultiSink::on_span(const SpanRecord& record) {
  auto children = snapshot();
  for (const auto& child : *children)
    if (child) child->on_span(record);
}

void MultiSink::on_op(const OpRecord& record) {
  auto children = snapshot();
  for (const auto& child : *children)
    if (child) child->on_op(record);
}

void MultiSink::flush() {
  auto children = snapshot();
  for (const auto& child : *children)
    if (child) child->flush();
}

// ------------------------------------------------------------ default sink

namespace {
std::mutex g_default_sink_mutex;
std::shared_ptr<Sink> g_default_sink;
}  // namespace

void set_default_sink(std::shared_ptr<Sink> sink) {
  std::lock_guard<std::mutex> lock(g_default_sink_mutex);
  g_default_sink = std::move(sink);
}

std::shared_ptr<Sink> default_sink() {
  std::lock_guard<std::mutex> lock(g_default_sink_mutex);
  return g_default_sink;
}

// ----------------------------------------------------------- JsonLinesSink

Json io_event_to_json(const IoEvent& event, bool record_addrs) {
  Json j = Json::object();
  j.set("type", "io");
  j.set("write", event.write);
  j.set("rounds", event.rounds);
  j.set("blocks", static_cast<std::uint64_t>(event.addrs.size()));
  j.set("seq", event.seq);
  j.set("ts_ns", event.ts_ns);
  j.set("start_round", event.start_round);
  if (event.op_id != 0) {
    j.set("op_id", event.op_id);
    j.set("op_kind", op_kind_name(event.op_kind));
  }
  if (record_addrs && !event.per_disk.empty()) {
    Json per_disk = Json::array();
    for (std::uint32_t c : event.per_disk) per_disk.push_back(c);
    j.set("per_disk", std::move(per_disk));
  }
  if (record_addrs) {
    Json addrs = Json::array();
    for (const auto& a : event.addrs) {
      Json pair = Json::array();
      pair.push_back(a.disk);
      pair.push_back(a.block);
      addrs.push_back(std::move(pair));
    }
    j.set("addrs", std::move(addrs));
  }
  return j;
}

Json span_record_to_json(const SpanRecord& record) {
  Json j = Json::object();
  j.set("type", "span");
  j.set("path", record.path);
  j.set("depth", record.depth);
  j.set("parallel_ios", record.io.parallel_ios);
  j.set("read_rounds", record.io.read_rounds);
  j.set("write_rounds", record.io.write_rounds);
  j.set("blocks_read", record.io.blocks_read);
  j.set("blocks_written", record.io.blocks_written);
  j.set("wall_ns", record.wall_ns);
  j.set("start_ns", record.start_ns);
  j.set("start_round", record.start_round);
  if (record.op_id != 0) {
    j.set("op_id", record.op_id);
    j.set("op_kind", op_kind_name(record.op_kind));
  }
  return j;
}

Json op_record_to_json(const OpRecord& record) {
  Json j = Json::object();
  j.set("type", "op");
  j.set("id", record.id);
  j.set("kind", op_kind_name(record.kind));
  if (record.outcome != OpOutcome::kUnknown)
    j.set("outcome", op_outcome_name(record.outcome));
  j.set("batch", record.batch);
  if (!record.structure.empty()) j.set("structure", record.structure);
  j.set("parallel_ios", record.io.parallel_ios);
  j.set("read_rounds", record.io.read_rounds);
  j.set("write_rounds", record.io.write_rounds);
  j.set("blocks_read", record.io.blocks_read);
  j.set("blocks_written", record.io.blocks_written);
  j.set("wall_ns", record.wall_ns);
  j.set("ts_ns", record.ts_ns);
  j.set("start_round", record.start_round);
  return j;
}

struct JsonLinesSink::Impl {
  std::ofstream out;
  bool record_addrs = false;
  mutable std::mutex mutex;
  std::uint64_t lines = 0;
};

JsonLinesSink::JsonLinesSink(const std::string& path, bool record_addrs)
    : impl_(std::make_unique<Impl>()) {
  impl_->out.open(path, std::ios::out | std::ios::trunc);
  if (!impl_->out)
    throw std::runtime_error("JsonLinesSink: cannot open " + path);
  impl_->record_addrs = record_addrs;
}

JsonLinesSink::~JsonLinesSink() = default;

void JsonLinesSink::on_io(const IoEvent& event) {
  Json j = io_event_to_json(event, impl_->record_addrs);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->out << j.dump() << '\n';
  ++impl_->lines;
}

void JsonLinesSink::on_span(const SpanRecord& record) {
  Json j = span_record_to_json(record);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->out << j.dump() << '\n';
  ++impl_->lines;
}

void JsonLinesSink::on_op(const OpRecord& record) {
  Json j = op_record_to_json(record);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->out << j.dump() << '\n';
  ++impl_->lines;
}

void JsonLinesSink::flush() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->out.flush();
}

std::uint64_t JsonLinesSink::lines_written() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->lines;
}

}  // namespace pddict::obs
