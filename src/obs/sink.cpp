#include "obs/sink.hpp"

#include <fstream>
#include <stdexcept>

namespace pddict::obs {

// ---------------------------------------------------------- RingBufferSink

RingBufferSink::RingBufferSink(std::size_t capacity)
    : capacity_(capacity ? capacity : 1) {}

void RingBufferSink::on_io(const IoEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() == capacity_) {
    events_.pop_front();
    ++dropped_events_;
  }
  events_.push_back(event);
}

void RingBufferSink::on_span(const SpanRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() == capacity_) {
    spans_.pop_front();
    ++dropped_spans_;
  }
  spans_.push_back(record);
}

std::vector<IoEvent> RingBufferSink::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {events_.begin(), events_.end()};
}

std::vector<SpanRecord> RingBufferSink::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {spans_.begin(), spans_.end()};
}

std::uint64_t RingBufferSink::dropped_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_events_;
}

std::uint64_t RingBufferSink::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_spans_;
}

void RingBufferSink::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  spans_.clear();
  dropped_events_ = 0;
  dropped_spans_ = 0;
}

// ----------------------------------------------------------- JsonLinesSink

Json io_event_to_json(const IoEvent& event, bool record_addrs) {
  Json j = Json::object();
  j.set("type", "io");
  j.set("write", event.write);
  j.set("rounds", event.rounds);
  j.set("blocks", static_cast<std::uint64_t>(event.addrs.size()));
  if (record_addrs) {
    Json addrs = Json::array();
    for (const auto& a : event.addrs) {
      Json pair = Json::array();
      pair.push_back(a.disk);
      pair.push_back(a.block);
      addrs.push_back(std::move(pair));
    }
    j.set("addrs", std::move(addrs));
  }
  return j;
}

Json span_record_to_json(const SpanRecord& record) {
  Json j = Json::object();
  j.set("type", "span");
  j.set("path", record.path);
  j.set("depth", record.depth);
  j.set("parallel_ios", record.io.parallel_ios);
  j.set("read_rounds", record.io.read_rounds);
  j.set("write_rounds", record.io.write_rounds);
  j.set("blocks_read", record.io.blocks_read);
  j.set("blocks_written", record.io.blocks_written);
  j.set("wall_ns", record.wall_ns);
  return j;
}

struct JsonLinesSink::Impl {
  std::ofstream out;
  bool record_addrs = false;
  mutable std::mutex mutex;
  std::uint64_t lines = 0;
};

JsonLinesSink::JsonLinesSink(const std::string& path, bool record_addrs)
    : impl_(std::make_unique<Impl>()) {
  impl_->out.open(path, std::ios::out | std::ios::trunc);
  if (!impl_->out)
    throw std::runtime_error("JsonLinesSink: cannot open " + path);
  impl_->record_addrs = record_addrs;
}

JsonLinesSink::~JsonLinesSink() = default;

void JsonLinesSink::on_io(const IoEvent& event) {
  Json j = io_event_to_json(event, impl_->record_addrs);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->out << j.dump() << '\n';
  ++impl_->lines;
}

void JsonLinesSink::on_span(const SpanRecord& record) {
  Json j = span_record_to_json(record);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->out << j.dump() << '\n';
  ++impl_->lines;
}

void JsonLinesSink::flush() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->out.flush();
}

std::uint64_t JsonLinesSink::lines_written() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->lines;
}

}  // namespace pddict::obs
