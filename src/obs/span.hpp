// Hierarchical RAII spans: structured attribution of parallel I/O to phases.
//
// A Span brackets one phase of work ("lookup", "insert", "rebuild",
// "ext_sort", ...) against a disk array. On destruction it emits a SpanRecord
// — the I/O-stats delta and wall time of the phase — to the array's sink.
// Spans nest: a thread-local stack turns lexical nesting into slash-joined
// paths ("insert/rebuild/ext_sort"), so a SpanAggregator sink can rebuild the
// call tree of a whole run and show where every parallel I/O went.
//
// Cost discipline: when no sink is attached the constructor does one locked
// sink load and a pointer check, nothing else — no clock read, no string, no
// allocation — so the dictionaries keep their spans compiled in
// unconditionally. (The lock is the array's scheduling mutex; sampling the
// sink and counters unlocked was a data race against set_sink/reset_stats
// under concurrent traffic.)
//
// Attribution caveat: deltas are taken from the array's global counters, so
// under concurrent load a span charges all I/O the array performed during its
// lifetime, not only its own thread's. Single-threaded runs are exact.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "obs/sink.hpp"
#include "pdm/io_stats.hpp"

namespace pddict::obs {

class Span {
 public:
  /// Type-erased locked sampler of an array's counters: called with `src` at
  /// open and close. Type-erasing through a function pointer keeps this
  /// header free of a pdm::DiskArray dependency (the template ctor below
  /// supplies a capture-free lambda).
  using StatsFn = pdm::IoStats (*)(const void* src);

  /// Inactive unless `sink` is non-null. Legacy, *unsynchronized* form:
  /// `live` must outlive the span and is read raw at open and close —
  /// single-threaded use only.
  Span(Sink* sink, const pdm::IoStats& live, std::string_view name);

  /// Thread-safe form: the span shares ownership of the sink (it survives a
  /// concurrent set_sink(nullptr)) and samples counters via `sample(src)`,
  /// which must be internally synchronized (DiskArray::stats_snapshot).
  Span(std::shared_ptr<Sink> sink, const void* src, StatsFn sample,
       std::string_view name);

  /// Duck-typed convenience for anything exposing sink() (shared_ptr) and
  /// stats_snapshot() (pdm::DiskArray; avoids an obs -> pdm link dependency).
  template <typename DiskArrayLike>
  Span(DiskArrayLike& disks, std::string_view name)
      : Span(disks.sink(), &disks,
             [](const void* p) {
               return static_cast<const DiskArrayLike*>(p)->stats_snapshot();
             },
             name) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept;
  Span& operator=(Span&&) = delete;

  ~Span() { close(); }

  bool active() const { return sink_ != nullptr; }
  /// Close early (idempotent; the destructor calls it).
  void close();

 private:
  /// Shared tail of the constructors: clock reads + path-stack push.
  void open(std::string_view name);

  Sink* sink_ = nullptr;               // active flag; points into owned_ when set
  std::shared_ptr<Sink> owned_;        // keeps a detached sink alive until close
  const pdm::IoStats* live_ = nullptr; // legacy unsynchronized sampling
  const void* src_ = nullptr;          // synchronized sampling: sample_(src_)
  StatsFn sample_ = nullptr;
  pdm::IoStats start_;
  std::chrono::steady_clock::time_point start_time_;
  std::uint64_t start_ns_ = 0;
  std::string path_;
  std::uint32_t depth_ = 0;
};

class Profile;  // profile.hpp — self-vs-child rollups over the span tree

/// Sink that folds span records into an aggregate tree keyed by path:
/// per path, the number of times it closed and the summed I/O + wall time.
/// I/O events are counted but not retained.
class SpanAggregator : public Sink {
 public:
  struct Node {
    std::uint64_t count = 0;
    pdm::IoStats io;
    std::uint64_t wall_ns = 0;
    std::uint32_t depth = 0;
  };

  void on_io(const IoEvent& event) override;
  void on_span(const SpanRecord& record) override;

  /// Snapshot keyed by path; lexicographic order == preorder of the tree
  /// ('/' sorts before alphanumerics), which is what render() relies on.
  std::map<std::string, Node> nodes() const;
  std::uint64_t io_events() const;

  /// Human-readable indented tree with per-node count / I/O / wall columns.
  std::string render() const;
  /// Machine-readable: array of {path, depth, count, parallel_ios, ...}.
  Json to_json() const;

  /// Self-vs-child I/O attribution over the current snapshot (profile.hpp):
  /// each path's exclusive cost, top-k hot paths, the I/O-flame table.
  Profile profile() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Node> nodes_;
  std::uint64_t io_events_ = 0;
};

}  // namespace pddict::obs
