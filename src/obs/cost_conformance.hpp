// Round-phase wall-time attribution and cost-model conformance.
//
// The paper's guarantees are counted in parallel I/O rounds and the repo
// enforces those counts exactly; this module answers the orthogonal question
// "where does a round's *wall time* go, and does cost_model.hpp predict it?".
// DiskArray feeds one RoundPhaseSample per executed batch (a batch is the
// execution unit of plan_batch — `rounds` accounted rounds dispatched
// together), broken into disjoint caller-clock phases:
//
//   plan       address dedup + round planning + cache classification
//   exec       the backend transfer section (submit to join), subdivided by
//              attribution counters that may overlap across workers:
//     queue      per-job time between submit and a worker dequeuing it
//     transfer   per-job time inside the backend call
//     join       caller time blocked on the completion barrier
//   reconcile  cache install / victim collection / fan-out / accounting
//
// plan + exec + reconcile ≈ total (same clock, disjoint intervals); the gap
// is reported as unattributed_frac and gated by tools/validate_cost_report.
// queue/transfer/join attribute time *within* exec: their sums can exceed
// exec wall when several workers overlap, which is the point — they say what
// the exec section was spent on, not how long it was. With the async batch
// API (DiskArray::submit_* / BatchFuture) the exec section runs while the
// caller computes; `overlap` attributes the part of exec NOT spent blocked on
// the join — the latency the pipelining actually hid. It subdivides exec like
// queue/transfer/join and never enters the attributed/total reconciliation.
//
// Conformance: each batch is paired with the model prediction
//
//   predicted_ns = overhead + seek_ns * runs + transfer_ns_per_block * blocks
//
// where runs/blocks are the coalesced-run and block counts of the batch's
// most-loaded worker (workers run concurrently, so the busiest one bounds the
// section; serial execution is one worker owning every disk). Parameters can
// be configured (e.g. from a FileBackend's simulated seek latency via
// pdm::DiskCostModel::conformance_options) or calibrated: a least-squares fit
// over every recorded batch solves for the unknown parameters, so the
// measured/predicted ratio gates model *shape* (linearity in runs and
// blocks), not machine speed. Aggregation is per round class
// (direction x rounds bucket: "read/r1", "write/r3-4", "flush/r2", ...) plus
// per-phase LatencyHistograms, a worst-K divergent list over a bounded recent
// window, and a live recent_ratio() that DiskArray::health_sample exposes to
// the HealthWatchdog's model_divergence rule.
//
// Everything here is observability: no pdm dependency, no feedback into round
// accounting, and recording is skipped entirely unless a collector is
// attached (set_default_cost_conformance, mirroring obs::set_default_sink).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/json.hpp"

namespace pddict::obs {

/// Phase breakdown of one executed round batch. All _ns fields are wall
/// nanoseconds on the submitting thread's clock except queue/transfer, which
/// are summed across jobs (see file comment).
struct RoundPhaseSample {
  bool write = false;  ///< direction of the moved blocks
  bool flush = false;  ///< cache write-back batch (classed "flush")
  std::uint64_t rounds = 0;  ///< accounted parallel rounds in this batch
  std::uint64_t blocks = 0;  ///< distinct blocks moved
  std::uint32_t busy_disks = 0;  ///< disks with >= 1 transfer

  /// Prediction inputs reduced to the executor topology: entry w holds the
  /// coalesced-run (positioning) and block counts of worker w's disks.
  /// Serial execution passes a single entry covering every disk.
  std::vector<std::uint32_t> worker_runs;
  std::vector<std::uint32_t> worker_blocks;

  std::uint64_t plan_ns = 0;
  std::uint64_t exec_ns = 0;
  std::uint64_t queue_ns = 0;
  std::uint64_t transfer_ns = 0;
  std::uint64_t join_ns = 0;
  /// Part of exec_ns the caller was NOT blocked on the join: latency hidden
  /// by in-flight pipelining (0 on the serial path, where the caller itself
  /// executes the transfers).
  std::uint64_t overlap_ns = 0;
  std::uint64_t reconcile_ns = 0;
  std::uint64_t total_ns = 0;
};

class CostConformance {
 public:
  struct Options {
    /// Model parameters in nanoseconds. A negative value means "unknown":
    /// the calibrator fits it from the recorded batches; a value >= 0 is
    /// configured and held fixed during fitting.
    double seek_ns = -1.0;
    double transfer_ns_per_block = -1.0;
    double overhead_ns = -1.0;
    /// Fit the unknown parameters by least squares (over every batch seen so
    /// far; refreshed lazily). With calibrate=false unknowns stay 0.
    bool calibrate = true;
    /// Recent-batch window for recent_ratio() and the worst-K list.
    std::size_t window = 4096;
    std::size_t worst_k = 8;
  };

  static constexpr std::string_view kSchema = "pddict-cost-report";
  static constexpr int kVersion = 1;
  /// recent_ratio() reports 1.0 (no divergence) below this many batches.
  static constexpr std::size_t kMinRatioBatches = 32;

  CostConformance();  // default Options
  explicit CostConformance(Options opt);

  /// Fold one executed batch in. Thread-safe.
  void record(const RoundPhaseSample& sample);

  std::uint64_t batches() const;

  /// Measured/predicted wall ratio over the recent window under the current
  /// (possibly refitted) model. 1.0 until kMinRatioBatches batches arrived —
  /// the watchdog treats 1.0 as "no divergence".
  double recent_ratio() const;

  /// The full pddict-cost-report v1 document.
  Json report() const;

  /// Compact summary for telemetry frames (per-source "cost" section):
  /// monotone phase totals plus the recent_ratio gauge.
  Json telemetry_json() const;

  /// Human-readable phase table + model line (pddict_cli doctor).
  std::string render() const;
  /// One-line phase/ratio summary (pddict_cli top).
  std::string render_line() const;

 private:
  struct ClassAccum {
    std::string name;
    std::uint64_t batches = 0;
    std::uint64_t rounds = 0;
    std::uint64_t blocks = 0;
    std::uint64_t exec_ns = 0;  // measured sum
    double sum_runs = 0.0;      // modeled-worker run counts
    double sum_blocks = 0.0;    // modeled-worker block counts
  };

  /// Window entry: a batch reduced to what the fit and worst-K list need.
  struct BatchRecord {
    std::uint64_t seq = 0;
    std::uint32_t cls = 0;
    std::uint32_t runs = 0;
    std::uint32_t blocks = 0;
    std::uint64_t rounds = 0;
    std::uint64_t exec_ns = 0;
  };

  struct Model {
    double overhead_ns = 0.0;
    double seek_ns = 0.0;
    double transfer_ns_per_block = 0.0;
  };

  std::uint32_t class_index_locked(bool write, bool flush,
                                   std::uint64_t rounds);
  void refit_if_stale_locked() const;
  Model fit_locked() const;
  double predict(const Model& m, double runs, double blocks) const {
    return m.overhead_ns + m.seek_ns * runs +
           m.transfer_ns_per_block * blocks;
  }
  double recent_ratio_locked() const;

  Options opt_;

  mutable std::mutex mutex_;
  std::uint64_t batches_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t blocks_ = 0;

  LatencyHistogram plan_, queue_, transfer_, join_, overlap_, reconcile_,
      exec_, total_;

  std::vector<ClassAccum> classes_;
  std::deque<BatchRecord> window_;

  // Normal-equation accumulators over every batch: features x = (1, S, B)
  // with S = modeled-worker runs, B = modeled-worker blocks, target
  // y = exec_ns. O(1) memory, so calibration never caps the sample count.
  double n_ = 0, s_ = 0, b_ = 0, ss_ = 0, sb_ = 0, bb_ = 0;
  double y_ = 0, sy_ = 0, by_ = 0;

  mutable Model model_;
  mutable std::uint64_t fitted_at_ = 0;  // batches_ when model_ was fitted
  mutable bool fitted_ = false;
};

/// Process-wide default collector new DiskArrays attach to, mirroring
/// obs::set_default_sink. nullptr (the default) disables phase recording.
void set_default_cost_conformance(std::shared_ptr<CostConformance> cc);
std::shared_ptr<CostConformance> default_cost_conformance();

}  // namespace pddict::obs
