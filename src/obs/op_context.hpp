// Operation context: attribution of the event stream to user-facing calls.
//
// Spans (span.hpp) say *what phase* an I/O belongs to; the OpContext says
// *which operation* caused it. An OpScope brackets one user-facing call
// (lookup / insert / erase / build / assign) against a disk array. While the
// scope is open, a thread-local context carries its id; DiskArray stamps that
// id onto every IoEvent the thread submits and Span stamps it onto every
// SpanRecord that closes. On destruction the scope emits one OpRecord — the
// call's total I/O delta, wall time, batch size and hit/miss outcome — to the
// array's sink.
//
// Ownership rule: only the *outermost* scope on a thread owns the operation.
// A dictionary method called from inside another operation (FullDict::insert
// delegating to BasicDict::insert, rebuild phases re-inserting keys) opens a
// scope that silently inherits the outer id and emits nothing, so each
// user-facing call maps to exactly one OpRecord and attribution follows the
// caller the user actually invoked.
//
// Cost discipline matches Span: with no sink attached the constructor does
// one locked sink load and a pointer check, nothing else, so the
// dictionaries keep their scopes compiled in unconditionally.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>

#include "obs/sink.hpp"
#include "pdm/io_stats.hpp"

namespace pddict::obs {

/// Id of the operation currently open on this thread (0 = none). Ids are
/// process-wide unique and start at 1, so 0 unambiguously means "untagged".
std::uint64_t current_op_id();
OpKind current_op_kind();

class OpScope {
 public:
  /// Type-erased locked counter sampler (see Span::StatsFn).
  using StatsFn = pdm::IoStats (*)(const void* src);

  /// Inactive unless `sink` is non-null. Legacy, *unsynchronized* form:
  /// `live` must outlive the scope and is read raw at open and close —
  /// single-threaded use only.
  OpScope(Sink* sink, const pdm::IoStats& live, OpKind kind,
          const char* structure = "", std::uint32_t batch = 1);

  /// Thread-safe form: shares ownership of the sink and samples counters via
  /// `sample(src)`, which must be internally synchronized
  /// (DiskArray::stats_snapshot).
  OpScope(std::shared_ptr<Sink> sink, const void* src, StatsFn sample,
          OpKind kind, const char* structure = "", std::uint32_t batch = 1);

  /// Duck-typed convenience for anything exposing sink() (shared_ptr) and
  /// stats_snapshot() (pdm::DiskArray; avoids an obs -> pdm link dependency).
  template <typename DiskArrayLike>
  OpScope(DiskArrayLike& disks, OpKind kind, const char* structure = "",
          std::uint32_t batch = 1)
      : OpScope(disks.sink(), &disks,
                [](const void* p) {
                  return static_cast<const DiskArrayLike*>(p)->stats_snapshot();
                },
                kind, structure, batch) {}

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  ~OpScope() { close(); }

  /// True when this scope owns the operation (outermost, sink attached).
  bool owner() const { return owner_; }
  /// The operation id events opened under this scope are tagged with
  /// (0 when no sink is attached anywhere up the chain).
  std::uint64_t id() const;

  /// Record the hit/miss disposition (lookups; inherited scopes forward to
  /// nothing — the owner's outcome wins).
  void set_outcome(OpOutcome outcome);

  /// Close early (idempotent; the destructor calls it).
  void close();

 private:
  /// Shared tail of the constructors: claims ownership of the thread's
  /// operation slot and stamps the record. Returns false when nested.
  bool open(OpKind kind, const char* structure, std::uint32_t batch);

  bool owner_ = false;
  Sink* sink_ = nullptr;               // active flag; points into owned_ when set
  std::shared_ptr<Sink> owned_;        // keeps a detached sink alive until close
  const pdm::IoStats* live_ = nullptr; // legacy unsynchronized sampling
  const void* src_ = nullptr;          // synchronized sampling: sample_(src_)
  StatsFn sample_ = nullptr;
  pdm::IoStats start_;
  std::chrono::steady_clock::time_point start_time_;
  OpRecord record_;
};

}  // namespace pddict::obs
