// MetricsRegistry: a flat, exportable namespace of counters, gauges and
// histograms, in the style of a production metrics endpoint.
//
// Producers (the disk array, dictionaries, bench harnesses) write metrics
// under dotted names ("pdm.disk.3.blocks_read"); exporters serialize the
// whole registry as JSON (nested report consumption) or CSV (spreadsheet /
// plotting consumption). Names are kept sorted so exports are deterministic
// and diffable across runs — the property the BENCH_*.json trajectory
// tracking relies on.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace pddict::obs {

class MetricsRegistry {
 public:
  /// Add `delta` to a monotonically increasing counter (creates at 0).
  void count(std::string_view name, std::uint64_t delta = 1);
  /// Set a point-in-time value.
  void gauge(std::string_view name, double value);
  /// Set a whole histogram: bucket i holds `buckets[i]` observations. Used
  /// for distributions with a natural small index domain (e.g. round
  /// utilization, indexed by slots-in-use 0..D).
  void histogram(std::string_view name, std::vector<std::uint64_t> buckets);

  std::uint64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;
  std::vector<std::uint64_t> histogram_value(std::string_view name) const;

  bool empty() const;
  void clear();

  /// Consistent point-in-time copy of the whole registry, taken under a
  /// single lock acquisition — a sampler reading counters one by one could
  /// otherwise see a torn set (counter A from before a producer's update,
  /// gauge B from after it). Maps keep the keys sorted, so exports built
  /// from a snapshot stay deterministic and diffable.
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, std::vector<std::uint64_t>> histograms;
  };
  Snapshot snapshot() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys
  /// sorted and escaped by the JSON serializer.
  Json to_json() const;
  void to_json(std::ostream& os, int indent = 2) const;
  /// One row per scalar / per histogram bucket:
  /// kind,name,index,value
  /// Names containing a comma, quote or newline are RFC 4180-quoted so a
  /// hostile metric name cannot smuggle extra CSV columns.
  void to_csv(std::ostream& os) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, std::vector<std::uint64_t>> histograms_;
};

}  // namespace pddict::obs
