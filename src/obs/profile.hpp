// Per-span I/O attribution profiles: self-vs-child rollups and hot paths.
//
// A SpanAggregator's tree charges every node the *total* I/O of its subtree
// (an outer span's delta includes everything nested inside it). For "where
// do the parallel I/Os actually go?" the interesting number is the *self*
// cost — total minus what the direct children already account for. This
// module computes that rollup and exports the top-k hot paths as an
// "I/O flame": the flamegraph-style table in which the self columns of all
// paths sum exactly to the whole run's IoStats delta (tested; this is the
// reconciliation property that makes the profile trustworthy).
//
// Caveat inherited from Span: under concurrent load a child can be charged
// I/O that another thread issued, so a child's total may exceed its parent's;
// self subtraction saturates at zero instead of underflowing.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/span.hpp"
#include "pdm/io_stats.hpp"

namespace pddict::obs {

/// One span path with its subtree totals and its self (exclusive) share.
struct ProfileNode {
  std::string path;
  std::uint32_t depth = 0;
  std::uint64_t count = 0;
  pdm::IoStats total;           // everything between open and close
  pdm::IoStats self;            // total minus direct children (saturating)
  std::uint64_t wall_ns = 0;    // subtree wall time
  std::uint64_t self_wall_ns = 0;
};

/// Aggregated attribution profile over a span tree.
class Profile {
 public:
  /// Build from a SpanAggregator snapshot (path-keyed totals). Self costs
  /// are derived here: node.self = node.total - sum(direct children's
  /// totals), clamped at zero per field.
  static Profile from_nodes(const std::map<std::string, SpanAggregator::Node>& nodes);

  /// Preorder (lexicographic by path, '/' sorts before alphanumerics).
  const std::vector<ProfileNode>& nodes() const { return nodes_; }

  /// The k paths with the largest self parallel-I/O cost (ties broken by
  /// self blocks moved, then path, for determinism). k = 0 means all.
  std::vector<ProfileNode> hot_paths(std::size_t k) const;

  /// Sum of the self columns over all nodes == the run's IoStats delta, as
  /// long as every I/O happened under some span (roots absorb the rest of
  /// their subtree by construction).
  pdm::IoStats self_sum() const;

  /// "I/O flame" table: one row per path, ranked by self parallel I/Os,
  /// with self / total / self-share / cumulative-share columns.
  /// top_k = 0 renders every path.
  std::string render_flame(std::size_t top_k = 0) const;

  /// Machine-readable: array of {path, depth, count, self_*, total_*, ...}
  /// ranked like render_flame.
  Json to_json(std::size_t top_k = 0) const;

 private:
  std::vector<ProfileNode> nodes_;
};

}  // namespace pddict::obs
