// Streaming log-linear latency histogram (HDR-style) for always-on telemetry.
//
// The bench harness historically computed percentiles by sorting an unbounded
// vector of per-operation samples — fine for a one-shot report, fatal for a
// long-running server. LatencyHistogram is the bounded-memory replacement:
// values are bucketed into 2^kSubBucketBits linear sub-buckets per power of
// two, so memory is a fixed ~58 KiB regardless of sample count and any
// quantile is answered in O(buckets) with relative error < 2^-kSubBucketBits.
// Values below 2^kSubBucketBits land in unit-width buckets, which makes
// quantiles over small integer domains — parallel-I/O counts per operation,
// the repo's primary metric — *exact*, bit-identical to the nearest-rank
// reference over the full sample vector.
//
// Concurrency: record() is lock-free (relaxed atomic adds; min/max via CAS),
// so many worker threads share one histogram, or each keeps a shard and the
// reader folds them with merge() — adds commute, so the merged result is
// deterministic for a given multiset of recorded values regardless of thread
// interleaving. Queries over a live histogram are racy-consistent (each
// counter individually coherent); quiesce writers for exact totals.
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace pddict::obs {

class LatencyHistogram {
 public:
  /// Linear sub-buckets per octave: 2^7 = 128 unit-exact values, < 0.79%
  /// relative bucket width above that.
  static constexpr unsigned kSubBucketBits = 7;
  /// Total bucket count for the full uint64 value range: one unit-width
  /// group below 2^kSubBucketBits plus one group per octave above it.
  static constexpr std::size_t kNumBuckets =
      (64 - kSubBucketBits + 1) * (std::size_t{1} << kSubBucketBits);

  LatencyHistogram();

  /// Fold `weight` observations of `value` in. Lock-free, callable from any
  /// number of threads concurrently.
  void record(std::uint64_t value, std::uint64_t weight = 1);

  /// Fold another histogram (a per-thread shard) into this one. The result
  /// equals recording both histograms' multisets into one — merge order and
  /// recording interleaving never change it.
  void merge(const LatencyHistogram& other);

  /// Zero every counter (not thread-safe against concurrent record()).
  void reset();

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Exact extremes of the recorded values (0 when empty).
  std::uint64_t min() const;
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;

  /// Nearest-rank quantile, matching bench::percentile's convention on a
  /// sorted sample vector: the (floor(q*count)+1)-th smallest value, clamped
  /// to the largest. Returns the highest value of the containing bucket, so
  /// the answer is >= the exact order statistic and within one log-linear
  /// bucket of it (equal whenever the bucket has unit width, i.e. for values
  /// < 2^kSubBucketBits). 0 when empty.
  std::uint64_t value_at_quantile(double q) const;
  std::uint64_t p50() const { return value_at_quantile(0.50); }
  std::uint64_t p95() const { return value_at_quantile(0.95); }
  std::uint64_t p99() const { return value_at_quantile(0.99); }
  std::uint64_t p999() const { return value_at_quantile(0.999); }

  // ---- bucket geometry (exposed for tests and exporters) ----

  /// Index of the bucket containing `value`.
  static std::size_t bucket_index(std::uint64_t value);
  /// Lowest / highest value mapping to bucket `index`.
  static std::uint64_t bucket_lower(std::size_t index);
  static std::uint64_t bucket_upper(std::size_t index);

  /// {"count":..,"sum":..,"min":..,"max":..,"p50":..,"p95":..,"p99":..,
  ///  "p999":..,"buckets":[[index,count],...]} — buckets sparse, ascending.
  Json to_json() const;

  /// Prometheus text exposition: a classic cumulative histogram family
  /// (`<name>_bucket{le="..."}` per non-empty bucket upper bound + "+Inf",
  /// `<name>_sum`, `<name>_count`). `name` must already be a valid
  /// Prometheus metric name (see telemetry.hpp's prometheus_name()).
  void write_prometheus(std::ostream& os, std::string_view name) const;

 private:
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace pddict::obs
