// Per-operation I/O attribution: histograms, worst-op ring, amortization.
//
// OpAttributor is a Sink that correlates the three event streams by op id:
//
//   * on_io   — folds every tagged batch into the open operation's exact
//     per-op cost (rounds, blocks, per-disk block counts),
//   * on_span — remembers the span subtree that ran under the operation (and
//     the I/O of "rebuild" spans, for amortized accounting of the Theorem 7
//     dynamic dictionary's global-rebuilding phases),
//   * on_op   — finalizes the operation: updates the per-kind parallel-I/O
//     histogram and totals, and keeps it if it ranks among the K worst.
//
// Unlike OpRecord::io (a global-counter delta, exact only single-threaded),
// the per-op costs here are reconstructed from the tagged IoEvents of the
// operation's own thread, so they stay exact under concurrency. Events with
// op_id == 0 are counted as `untagged_events` — the observability gap meter.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/sink.hpp"

namespace pddict::obs {

class OpAttributor : public Sink {
 public:
  /// One finished operation retained in the worst-K ring.
  struct WorstOp {
    OpRecord record;
    /// Exact parallel I/Os reconstructed from this op's tagged events.
    std::uint64_t parallel_ios = 0;
    std::uint64_t blocks = 0;
    /// Distinct blocks the op moved on each disk (grown on demand).
    std::vector<std::uint64_t> per_disk;
    /// Span subtree that closed under the op: (path, parallel_ios) in
    /// close order, capped at kMaxSpansPerOp.
    std::vector<std::pair<std::string, std::uint64_t>> spans;
  };

  /// Per-kind aggregate over all finished operations of that kind.
  struct KindStats {
    std::uint64_t ops = 0;
    std::uint64_t parallel_ios = 0;  // from tagged events (exact)
    std::uint64_t blocks = 0;
    /// Parallel I/Os spent inside "rebuild" spans under ops of this kind —
    /// the numerator of the amortized rebuild share (Thm 7 accounting).
    std::uint64_t rebuild_ios = 0;
    std::uint64_t rebuild_spans = 0;
    /// Histogram of per-op parallel I/Os: index i counts ops that cost
    /// exactly i rounds; the last bucket absorbs >= kHistBuckets - 1.
    std::vector<std::uint64_t> hist;
  };

  static constexpr std::size_t kDefaultWorstK = 8;
  static constexpr std::size_t kHistBuckets = 65;
  static constexpr std::size_t kMaxSpansPerOp = 32;

  explicit OpAttributor(std::size_t worst_k = kDefaultWorstK);

  void on_io(const IoEvent& event) override;
  void on_span(const SpanRecord& record) override;
  void on_op(const OpRecord& record) override;

  /// Aggregates keyed by kind name ("lookup", "insert", ...).
  std::map<std::string, KindStats> kind_stats() const;
  /// The K worst finished ops, most expensive first (ties: lower id first).
  std::vector<WorstOp> worst_ops() const;
  std::uint64_t finished_ops() const;
  /// IoEvents seen with op_id == 0 (ran outside any operation).
  std::uint64_t untagged_events() const;

  /// Human-readable tables: per-kind histogram + averages, then the ring.
  std::string render() const;
  /// {"kinds": {...}, "worst_ops": [...], "untagged_events": n, ...}
  Json to_json() const;

  void clear();

 private:
  struct OpenOp {
    std::uint64_t parallel_ios = 0;
    std::uint64_t blocks = 0;
    std::vector<std::uint64_t> per_disk;
    std::vector<std::pair<std::string, std::uint64_t>> spans;
    std::uint64_t rebuild_ios = 0;
    std::uint64_t rebuild_spans = 0;
  };

  const std::size_t worst_k_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, OpenOp> open_;
  std::map<std::string, KindStats> kinds_;
  std::vector<WorstOp> worst_;  // kept sorted, most expensive first
  std::uint64_t finished_ = 0;
  std::uint64_t untagged_ = 0;
};

}  // namespace pddict::obs
