#include "obs/metrics.hpp"

namespace pddict::obs {

void MetricsRegistry::count(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[std::string(name)] += delta;
}

void MetricsRegistry::gauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[std::string(name)] = value;
}

void MetricsRegistry::histogram(std::string_view name,
                                std::vector<std::uint64_t> buckets) {
  std::lock_guard<std::mutex> lock(mutex_);
  histograms_[std::string(name)] = std::move(buckets);
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(std::string(name));
  return it == gauges_.end() ? 0.0 : it->second;
}

std::vector<std::uint64_t> MetricsRegistry::histogram_value(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(std::string(name));
  return it == histograms_.end() ? std::vector<std::uint64_t>{} : it->second;
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Snapshot{counters_, gauges_, histograms_};
}

Json MetricsRegistry::to_json() const {
  Snapshot snap = snapshot();
  Json counters = Json::object();
  for (const auto& [name, value] : snap.counters) counters.set(name, value);
  Json gauges = Json::object();
  for (const auto& [name, value] : snap.gauges) gauges.set(name, value);
  Json histograms = Json::object();
  for (const auto& [name, buckets] : snap.histograms) {
    Json arr = Json::array();
    for (std::uint64_t b : buckets) arr.push_back(b);
    histograms.set(name, std::move(arr));
  }
  Json root = Json::object();
  root.set("counters", std::move(counters));
  root.set("gauges", std::move(gauges));
  root.set("histograms", std::move(histograms));
  return root;
}

void MetricsRegistry::to_json(std::ostream& os, int indent) const {
  to_json().write(os, indent);
  os << '\n';
}

namespace {
// RFC 4180 quoting for names that would otherwise shift CSV columns.
void write_csv_field(std::ostream& os, const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}
}  // namespace

void MetricsRegistry::to_csv(std::ostream& os) const {
  Snapshot snap = snapshot();
  os << "kind,name,index,value\n";
  for (const auto& [name, value] : snap.counters) {
    os << "counter,";
    write_csv_field(os, name);
    os << ",," << value << '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    os << "gauge,";
    write_csv_field(os, name);
    os << ",," << value << '\n';
  }
  for (const auto& [name, buckets] : snap.histograms)
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      os << "histogram,";
      write_csv_field(os, name);
      os << ',' << i << ',' << buckets[i] << '\n';
    }
}

}  // namespace pddict::obs
