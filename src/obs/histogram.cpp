#include "obs/histogram.hpp"

#include <bit>

namespace pddict::obs {

namespace {

constexpr std::uint64_t kSub = std::uint64_t{1} << LatencyHistogram::kSubBucketBits;

void atomic_min(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (value < cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

std::size_t LatencyHistogram::bucket_index(std::uint64_t value) {
  if (value < kSub) return static_cast<std::size_t>(value);
  // Octave e = floor(log2 value) >= kSubBucketBits; the kSubBucketBits bits
  // after the leading one select the linear sub-bucket within the octave.
  unsigned e = 63 - static_cast<unsigned>(std::countl_zero(value));
  std::uint64_t sub = (value >> (e - kSubBucketBits)) - kSub;
  return static_cast<std::size_t>(
      (std::uint64_t{e - kSubBucketBits + 1} << kSubBucketBits) + sub);
}

std::uint64_t LatencyHistogram::bucket_lower(std::size_t index) {
  std::size_t group = index >> kSubBucketBits;
  std::uint64_t sub = index & (kSub - 1);
  if (group == 0) return sub;
  unsigned shift = static_cast<unsigned>(group - 1);
  return (kSub << shift) + (sub << shift);
}

std::uint64_t LatencyHistogram::bucket_upper(std::size_t index) {
  std::size_t group = index >> kSubBucketBits;
  if (group == 0) return bucket_lower(index);
  std::uint64_t width = std::uint64_t{1} << (group - 1);
  return bucket_lower(index) + width - 1;
}

void LatencyHistogram::record(std::uint64_t value, std::uint64_t weight) {
  if (weight == 0) return;
  buckets_[bucket_index(value)].fetch_add(weight, std::memory_order_relaxed);
  count_.fetch_add(weight, std::memory_order_relaxed);
  sum_.fetch_add(value * weight, std::memory_order_relaxed);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    std::uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  std::uint64_t omin = other.min_.load(std::memory_order_relaxed);
  if (omin != ~std::uint64_t{0}) atomic_min(min_, omin);
  atomic_max(max_, other.max_.load(std::memory_order_relaxed));
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::min() const {
  std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == ~std::uint64_t{0} ? 0 : m;
}

double LatencyHistogram::mean() const {
  std::uint64_t c = count();
  return c ? static_cast<double>(sum()) / static_cast<double>(c) : 0.0;
}

std::uint64_t LatencyHistogram::value_at_quantile(double q) const {
  std::uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  // Nearest rank matching bench::percentile: index floor(q*n) into the
  // sorted sample vector, clamped to the last element.
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (rank >= total) rank = total - 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative > rank) return bucket_upper(i);
  }
  return max();  // racy reader saw fewer bucket counts than count_
}

Json LatencyHistogram::to_json() const {
  Json j = Json::object();
  j.set("count", count());
  j.set("sum", sum());
  j.set("min", min());
  j.set("max", max());
  j.set("p50", p50());
  j.set("p95", p95());
  j.set("p99", p99());
  j.set("p999", p999());
  Json buckets = Json::array();
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (!c) continue;
    Json pair = Json::array();
    pair.push_back(static_cast<std::uint64_t>(i));
    pair.push_back(c);
    buckets.push_back(std::move(pair));
  }
  j.set("buckets", std::move(buckets));
  return j;
}

void LatencyHistogram::write_prometheus(std::ostream& os,
                                        std::string_view name) const {
  os << "# HELP " << name
     << " Log-linear latency distribution (nanoseconds).\n";
  os << "# TYPE " << name << " histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (!c) continue;
    cumulative += c;
    os << name << "_bucket{le=\"" << bucket_upper(i) << "\"} " << cumulative
       << '\n';
  }
  os << name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
  os << name << "_sum " << sum() << '\n';
  os << name << "_count " << count() << '\n';
}

}  // namespace pddict::obs
