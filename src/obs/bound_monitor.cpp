#include "obs/bound_monitor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace pddict::obs {

namespace {
// Float tolerance on the margin itself: a measured == bound op computes
// margin 1.0 exactly in the common integer cases, but averaged rules divide.
constexpr double kMarginEps = 1e-9;

double safe_ratio(double num, double den) {
  if (den <= 0.0) return num > 0.0 ? std::numeric_limits<double>::infinity()
                                   : 0.0;
  return num / den;
}
}  // namespace

bool BoundMonitor::is_violation(double margin) {
  return margin > 1.0 + kMarginEps;
}

BoundMonitor::BoundMonitor(std::string structure, std::vector<BoundRule> rules)
    : structure_(std::move(structure)) {
  rules_.reserve(rules.size());
  for (auto& r : rules) {
    RuleState st;
    st.rule = std::move(r);
    rules_.push_back(std::move(st));
  }
}

void BoundMonitor::apply(RuleState& st, double measured, double bound,
                          std::uint64_t op_id, OpKind kind,
                          std::uint64_t ts_ns) {
  ++st.matched;
  double value = measured;
  if (st.rule.mode == BoundMode::kAverage) {
    st.sum += measured;
    value = st.sum / static_cast<double>(st.matched);
  }
  double margin = st.rule.direction == BoundDirection::kUpperLimit
                      ? safe_ratio(value, bound)
                      : safe_ratio(bound, value);
  if (margin > st.worst_margin) {
    st.worst_margin = margin;
    st.worst_measured = value;
    st.last_bound = bound;
  }
  if (!is_violation(margin)) return;
  ++st.violations;
  ++violations_;
  BoundViolation v;
  v.rule = st.rule.name;
  v.measured = value;
  v.bound = bound;
  v.op_id = op_id;
  v.kind = kind;
  v.ts_ns = ts_ns;
  if (log_.size() == kMaxViolationLog) log_.erase(log_.begin());
  log_.push_back(std::move(v));
}

void BoundMonitor::on_op(const OpRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  const double per_key =
      static_cast<double>(record.io.parallel_ios) /
      static_cast<double>(record.batch ? record.batch : 1);
  for (RuleState& st : rules_) {
    const BoundRule& r = st.rule;
    if (r.mode == BoundMode::kGauge) continue;
    if (r.kind != record.kind) continue;
    if (r.outcome != OpOutcome::kUnknown && r.outcome != record.outcome)
      continue;
    if (!r.structure.empty() && r.structure != record.structure) continue;
    apply(st, per_key, r.bound, record.id, record.kind, record.ts_ns);
  }
}

void BoundMonitor::observe(std::string_view rule, double measured) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (RuleState& st : rules_) {
    if (st.rule.name != rule) continue;
    apply(st, measured, st.rule.bound, 0, OpKind::kNone, trace_now_ns());
    return;
  }
  throw std::invalid_argument("BoundMonitor: unknown rule " +
                              std::string(rule));
}

void BoundMonitor::observe(std::string_view rule, double measured,
                           double bound) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (RuleState& st : rules_) {
    if (st.rule.name != rule) continue;
    apply(st, measured, bound, 0, OpKind::kNone, trace_now_ns());
    return;
  }
  throw std::invalid_argument("BoundMonitor: unknown rule " +
                              std::string(rule));
}

double BoundMonitor::margin(std::string_view rule) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const RuleState& st : rules_)
    if (st.rule.name == rule) return st.worst_margin;
  return 0.0;
}

double BoundMonitor::worst_margin() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double worst = 0.0;
  for (const RuleState& st : rules_)
    worst = std::max(worst, st.worst_margin);
  return worst;
}

std::uint64_t BoundMonitor::violations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return violations_;
}

std::vector<BoundViolation> BoundMonitor::violation_log() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return log_;
}

Json BoundMonitor::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json j = Json::object();
  j.set("schema", "pddict-bound-report");
  j.set("version", static_cast<std::uint64_t>(1));
  j.set("structure", structure_);
  Json rules = Json::array();
  for (const RuleState& st : rules_) {
    Json r = Json::object();
    r.set("name", st.rule.name);
    r.set("theorem", st.rule.theorem);
    if (!st.rule.expression.empty()) r.set("expression", st.rule.expression);
    r.set("mode", st.rule.mode == BoundMode::kPerOp      ? "per_op"
                  : st.rule.mode == BoundMode::kAverage  ? "average"
                                                         : "gauge");
    r.set("direction", st.rule.direction == BoundDirection::kUpperLimit
                           ? "upper"
                           : "lower");
    r.set("bound", st.worst_margin > 0.0 ? st.last_bound : st.rule.bound);
    r.set("ops", st.matched);
    r.set("measured", st.worst_measured);
    r.set("margin", st.worst_margin);
    r.set("violations", st.violations);
    rules.push_back(std::move(r));
  }
  j.set("rules", std::move(rules));
  j.set("violations", violations_);
  Json log = Json::array();
  for (const BoundViolation& v : log_) {
    Json e = Json::object();
    e.set("rule", v.rule);
    e.set("measured", v.measured);
    e.set("bound", v.bound);
    e.set("op_id", v.op_id);
    e.set("kind", op_kind_name(v.kind));
    e.set("ts_ns", v.ts_ns);
    log.push_back(std::move(e));
  }
  j.set("violation_log", std::move(log));
  return j;
}

std::string BoundMonitor::render() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line), "bound margins — %s\n",
                structure_.c_str());
  os << line;
  std::snprintf(line, sizeof(line),
                "%-16s %-10s %-8s %10s %12s %12s %8s %6s\n", "rule", "theorem",
                "mode", "ops", "measured", "bound", "margin", "viol");
  os << line;
  for (const RuleState& st : rules_) {
    std::snprintf(
        line, sizeof(line), "%-16s %-10s %-8s %10llu %12.4f %12.4f %8.3f %6llu\n",
        st.rule.name.c_str(), st.rule.theorem.c_str(),
        st.rule.mode == BoundMode::kPerOp      ? "per-op"
        : st.rule.mode == BoundMode::kAverage  ? "average"
                                               : "gauge",
        static_cast<unsigned long long>(st.matched), st.worst_measured,
        st.worst_margin > 0.0 ? st.last_bound : st.rule.bound,
        st.worst_margin, static_cast<unsigned long long>(st.violations));
    os << line;
  }
  std::snprintf(line, sizeof(line), "total violations: %llu\n",
                static_cast<unsigned long long>(violations_));
  os << line;
  return os.str();
}

void BoundMonitor::export_metrics(MetricsRegistry& registry,
                                  std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string base(prefix);
  base += '.';
  base += structure_;
  for (const RuleState& st : rules_) {
    registry.gauge(base + '.' + st.rule.name + ".margin", st.worst_margin);
    registry.gauge(base + '.' + st.rule.name + ".measured",
                   st.worst_measured);
  }
  registry.count(base + ".violations", violations_);
}

// ------------------------------------------------------- instantiated rules

namespace {
BoundRule per_op(std::string name, std::string theorem, std::string expr,
                 OpKind kind, double bound,
                 OpOutcome outcome = OpOutcome::kUnknown) {
  BoundRule r;
  r.name = std::move(name);
  r.theorem = std::move(theorem);
  r.expression = std::move(expr);
  r.mode = BoundMode::kPerOp;
  r.kind = kind;
  r.outcome = outcome;
  r.bound = bound;
  return r;
}

BoundRule average(std::string name, std::string theorem, std::string expr,
                  OpKind kind, double bound,
                  OpOutcome outcome = OpOutcome::kUnknown) {
  BoundRule r = per_op(std::move(name), std::move(theorem), std::move(expr),
                       kind, bound, outcome);
  r.mode = BoundMode::kAverage;
  return r;
}

BoundRule gauge(std::string name, std::string theorem, std::string expr,
                double bound,
                BoundDirection dir = BoundDirection::kUpperLimit) {
  BoundRule r;
  r.name = std::move(name);
  r.theorem = std::move(theorem);
  r.expression = std::move(expr);
  r.mode = BoundMode::kGauge;
  r.direction = dir;
  r.bound = bound;
  return r;
}
}  // namespace

std::vector<BoundRule> lemma3_rules() {
  // The bound depends on the number of placed vertices, so the balancer
  // pushes (measured max load, instantiated bound) pairs per assignment.
  return {gauge("max_load", "Lemma 3",
                "kn/((1-delta)v)/(1-eps) + log_{(1-eps)d/k}(v)", 0.0)};
}

std::vector<BoundRule> thm6_rules() {
  return {per_op("lookup", "Theorem 6", "1", OpKind::kLookup, 1.0)};
}

std::vector<BoundRule> thm7_rules(double eps, std::uint32_t levels) {
  return {
      per_op("lookup_miss", "Theorem 7", "1", OpKind::kLookup, 1.0,
             OpOutcome::kMiss),
      per_op("lookup_hit", "Theorem 7", "2", OpKind::kLookup, 2.0,
             OpOutcome::kHit),
      per_op("insert", "Theorem 7", "levels + 1", OpKind::kInsert,
             static_cast<double>(levels) + 1.0),
      // O(1) in the theorem; the implementation's structural worst case is 5
      // rounds: combined membership-probe + A_1 read, one deeper-level read,
      // the membership tombstone (a BasicDict erase, <= 2), and the
      // field-clear write-back.
      per_op("erase", "Theorem 7", "5 (O(1))", OpKind::kErase, 5.0),
      average("lookup_miss_avg", "Theorem 7", "1", OpKind::kLookup, 1.0,
              OpOutcome::kMiss),
      average("lookup_hit_avg", "Theorem 7", "1 + eps", OpKind::kLookup,
              1.0 + eps, OpOutcome::kHit),
      average("insert_avg", "Theorem 7", "2 + eps", OpKind::kInsert,
              2.0 + eps),
  };
}

std::vector<BoundRule> thm12_rules(double eps) {
  // Degree and memory are O()-bounds in the theorem, so the gauges compare
  // against the comparators Section 5 names: the Ta-Shma explicit degree
  // (Theorem 8) that the semi-explicit construction must beat, and the full
  // explicit table of u words that pre-processing must avoid. The caller
  // supplies those instantiated comparators per observe().
  return {
      gauge("expansion", "Theorem 12", "min |Gamma(S)| / (d |S|) >= 1 - eps",
            1.0 - eps, BoundDirection::kLowerLimit),
      gauge("degree", "Theorem 12",
            "polylog(u)  vs  Ta-Shma 2^{(log log u)^2 log log N}", 0.0),
      gauge("memory_words", "Theorem 12",
            "O(N^beta)  vs  explicit table of u words", 0.0),
  };
}

std::vector<BoundRule> expander_dict_rules() {
  return {
      per_op("lookup", "Section 4.1", "1", OpKind::kLookup, 1.0),
      per_op("insert", "Section 4.1", "2", OpKind::kInsert, 2.0),
      per_op("erase", "Section 4.1", "2", OpKind::kErase, 2.0),
  };
}

}  // namespace pddict::obs
