// Chrome/Perfetto trace-event export of the I/O event stream.
//
// Renders a RingBufferSink's retained IoEvents and SpanRecords as a
// chrome://tracing "JSON array format" timeline (load the file in Perfetto or
// chrome://tracing directly):
//
//   * one track (thread) per simulated disk under a "disks" process — each
//     batch paints the disks it kept busy;
//   * one track per span path under a "spans" process — each closed span is
//     one complete event.
//
// The clock is *virtual*: one parallel I/O round = 1 µs of trace time, taken
// from the start_round / parallel_ios fields the array stamps on events.
// Wall time would render a simulated disk as a zero-width blip; round time is
// the paper's own metric, so the timeline shows exactly what the I/O bounds
// claim. Wall timestamps survive into each event's args for reference.
//
// Streams from several DiskArrays (their round counters restart at 0) are
// concatenated: a backwards jump of the round counter starts a new virtual
// epoch after the latest end seen so far. Timestamps per track are clamped
// monotone, which the structural validator below re-checks.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "obs/json.hpp"
#include "obs/sink.hpp"

namespace pddict::obs {

/// Process ids used in the exported trace.
inline constexpr int kTraceDiskPid = 1;
inline constexpr int kTraceSpanPid = 2;

/// Build the trace-event JSON array. `num_disks` sizes the disk-track
/// metadata (one track per disk, transferring or not); pass 0 to derive it
/// from the events (max per_disk size / address disk id seen).
Json trace_events_to_json(std::span<const IoEvent> events,
                          std::span<const SpanRecord> spans,
                          std::uint32_t num_disks = 0);

/// Serialize trace_events_to_json() to `path`. Returns false (with a message
/// on stderr) if the file cannot be written.
bool write_trace_event_file(const std::string& path,
                            std::span<const IoEvent> events,
                            std::span<const SpanRecord> spans,
                            std::uint32_t num_disks = 0);

/// Structural validator shared by the unit tests and the CI gate
/// (validate_bench_json --trace-event): the document must be a JSON array of
/// event objects; every "X" event carries name/ts/dur/pid/tid with ts
/// monotone (non-decreasing) per (pid, tid) track; every track used by an
/// "X" event is named by a thread_name metadata event. On failure returns
/// false and stores a one-line diagnostic in `error`.
bool validate_trace_events(const Json& root, std::string* error);

}  // namespace pddict::obs
