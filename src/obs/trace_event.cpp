#include "obs/trace_event.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <utility>
#include <vector>

namespace pddict::obs {

namespace {

Json meta_event(const char* name, int pid, Json args) {
  Json j = Json::object();
  j.set("name", name);
  j.set("ph", "M");
  j.set("pid", pid);
  j.set("args", std::move(args));
  return j;
}

Json thread_name_event(int pid, std::int64_t tid, const std::string& name) {
  Json args = Json::object();
  args.set("name", name);
  Json j = Json::object();
  j.set("name", "thread_name");
  j.set("ph", "M");
  j.set("pid", pid);
  j.set("tid", tid);
  j.set("args", std::move(args));
  return j;
}

/// Maps the sawtooth of per-array round counters onto one increasing virtual
/// clock: a backwards jump of the raw counter opens a new epoch after the
/// latest end seen so far.
class VirtualClock {
 public:
  /// Virtual start of an interval [raw, raw + dur) of rounds.
  std::uint64_t map(std::uint64_t raw, std::uint64_t dur) {
    if (raw < last_raw_) base_ = end_;  // counter restarted: new epoch
    last_raw_ = raw;
    std::uint64_t ts = base_ + raw;
    end_ = std::max(end_, ts + dur);
    return ts;
  }

 private:
  std::uint64_t base_ = 0;      // virtual offset of the current epoch
  std::uint64_t last_raw_ = 0;  // raw counter high-water mark of the epoch
  std::uint64_t end_ = 0;       // latest virtual end seen
};

}  // namespace

Json trace_events_to_json(std::span<const IoEvent> events,
                          std::span<const SpanRecord> spans,
                          std::uint32_t num_disks) {
  if (num_disks == 0) {
    for (const IoEvent& e : events) {
      num_disks = std::max(num_disks,
                           static_cast<std::uint32_t>(e.per_disk.size()));
      for (const auto& a : e.addrs) num_disks = std::max(num_disks, a.disk + 1);
    }
  }

  Json out = Json::array();

  // ---- track metadata ----
  {
    Json disks_name = Json::object();
    disks_name.set("name", "disks (simulated)");
    out.push_back(meta_event("process_name", kTraceDiskPid,
                             std::move(disks_name)));
    Json disks_sort = Json::object();
    disks_sort.set("sort_index", kTraceDiskPid);
    out.push_back(meta_event("process_sort_index", kTraceDiskPid,
                             std::move(disks_sort)));
    for (std::uint32_t d = 0; d < num_disks; ++d)
      out.push_back(thread_name_event(kTraceDiskPid, d,
                                      "disk " + std::to_string(d)));
    Json spans_name = Json::object();
    spans_name.set("name", "spans");
    out.push_back(meta_event("process_name", kTraceSpanPid,
                             std::move(spans_name)));
    Json spans_sort = Json::object();
    spans_sort.set("sort_index", kTraceSpanPid);
    out.push_back(meta_event("process_sort_index", kTraceSpanPid,
                             std::move(spans_sort)));
  }

  // ---- disk tracks: one complete event per (batch, busy disk) ----
  VirtualClock disk_clock;
  std::vector<std::uint64_t> disk_cursor(num_disks, 0);
  for (const IoEvent& e : events) {
    std::uint64_t ts = disk_clock.map(e.start_round, e.rounds);
    for (std::uint32_t d = 0; d < e.per_disk.size(); ++d) {
      std::uint32_t moved = e.per_disk[d];
      if (moved == 0) continue;
      // PDM: a disk with `moved` pending blocks is busy the first `moved`
      // rounds of the batch; in the head model rounds can be fewer.
      std::uint64_t dur = std::min<std::uint64_t>(moved, e.rounds);
      std::uint64_t tts = std::max(ts, disk_cursor[d]);
      disk_cursor[d] = tts;
      Json j = Json::object();
      j.set("name", e.write ? "write" : "read");
      j.set("cat", "io");
      j.set("ph", "X");
      j.set("ts", tts);
      j.set("dur", dur);
      j.set("pid", kTraceDiskPid);
      j.set("tid", d);
      Json args = Json::object();
      args.set("seq", e.seq);
      args.set("rounds", e.rounds);
      args.set("batch_blocks", static_cast<std::uint64_t>(e.addrs.size()));
      args.set("disk_blocks", moved);
      args.set("wall_ts_ns", e.ts_ns);
      j.set("args", std::move(args));
      out.push_back(std::move(j));
    }
  }

  // ---- span tracks: one track per path, one complete event per close ----
  VirtualClock span_clock;
  std::map<std::string, std::int64_t> span_tid;  // path -> track
  std::map<std::int64_t, std::uint64_t> span_cursor;
  for (const SpanRecord& s : spans) {
    auto [it, fresh] = span_tid.try_emplace(
        s.path, static_cast<std::int64_t>(span_tid.size()));
    if (fresh) out.push_back(thread_name_event(kTraceSpanPid, it->second,
                                               s.path));
    std::uint64_t ts = span_clock.map(s.start_round, s.io.parallel_ios);
    std::uint64_t& cursor = span_cursor[it->second];
    ts = std::max(ts, cursor);
    cursor = ts;
    std::string leaf = s.path.substr(s.path.rfind('/') + 1);
    Json j = Json::object();
    j.set("name", leaf);
    j.set("cat", "span");
    j.set("ph", "X");
    j.set("ts", ts);
    j.set("dur", s.io.parallel_ios);
    j.set("pid", kTraceSpanPid);
    j.set("tid", it->second);
    Json args = Json::object();
    args.set("path", s.path);
    args.set("depth", s.depth);
    args.set("parallel_ios", s.io.parallel_ios);
    args.set("blocks_read", s.io.blocks_read);
    args.set("blocks_written", s.io.blocks_written);
    args.set("wall_ns", s.wall_ns);
    j.set("args", std::move(args));
    out.push_back(std::move(j));
  }

  return out;
}

bool write_trace_event_file(const std::string& path,
                            std::span<const IoEvent> events,
                            std::span<const SpanRecord> spans,
                            std::uint32_t num_disks) {
  Json doc = trace_events_to_json(events, spans, num_disks);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "trace_event: cannot write %s\n", path.c_str());
    return false;
  }
  doc.write(out);
  out << '\n';
  return out.good();
}

bool validate_trace_events(const Json& root, std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error) *error = message;
    return false;
  };
  if (!root.is_array()) return fail("trace document is not a JSON array");
  // ts high-water mark and name per (pid, tid) track.
  std::map<std::pair<std::int64_t, std::int64_t>, double> cursor;
  std::map<std::pair<std::int64_t, std::int64_t>, bool> named;
  std::size_t index = 0;
  for (const Json& e : root.as_array()) {
    std::string where = "event[" + std::to_string(index++) + "]";
    if (!e.is_object()) return fail(where + ": not an object");
    const Json* ph = e.find("ph");
    const Json* pid = e.find("pid");
    if (!ph || !ph->is_string()) return fail(where + ": missing ph");
    if (!pid || !pid->is_number()) return fail(where + ": missing pid");
    if (ph->as_string() == "M") {
      const Json* name = e.find("name");
      if (!name || !name->is_string())
        return fail(where + ": metadata without name");
      if (name->as_string() == "thread_name") {
        const Json* tid = e.find("tid");
        const Json* args = e.find("args");
        if (!tid || !tid->is_number())
          return fail(where + ": thread_name without tid");
        if (!args || !args->find("name"))
          return fail(where + ": thread_name without args.name");
        named[{pid->as_int(), tid->as_int()}] = true;
      }
      continue;
    }
    if (ph->as_string() != "X")
      return fail(where + ": unexpected phase \"" + ph->as_string() + "\"");
    const Json* name = e.find("name");
    const Json* ts = e.find("ts");
    const Json* dur = e.find("dur");
    const Json* tid = e.find("tid");
    if (!name || !name->is_string() || name->as_string().empty())
      return fail(where + ": X event without name");
    if (!ts || !ts->is_number() || ts->as_double() < 0)
      return fail(where + ": X event without non-negative ts");
    if (!dur || !dur->is_number() || dur->as_double() < 0)
      return fail(where + ": X event without non-negative dur");
    if (!tid || !tid->is_number()) return fail(where + ": X event without tid");
    auto track = std::make_pair(pid->as_int(), tid->as_int());
    auto it = cursor.find(track);
    if (it != cursor.end() && ts->as_double() < it->second)
      return fail(where + ": ts goes backwards on track pid=" +
                  std::to_string(track.first) +
                  " tid=" + std::to_string(track.second));
    cursor[track] = ts->as_double();
    if (!named.count(track))
      return fail(where + ": track pid=" + std::to_string(track.first) +
                  " tid=" + std::to_string(track.second) +
                  " has no thread_name metadata");
  }
  return true;
}

}  // namespace pddict::obs
