#include "obs/op_context.hpp"

#include <atomic>

namespace pddict::obs {

namespace {

// Process-wide id allocator. Starts at 1: id 0 is reserved for "no
// operation", which the acceptance checks rely on (every IoEvent emitted
// during a dictionary operation carries a non-zero op id).
std::atomic<std::uint64_t> g_next_op_id{1};

struct CurrentOp {
  std::uint64_t id = 0;
  OpKind kind = OpKind::kNone;
};

CurrentOp& current_op() {
  thread_local CurrentOp op;
  return op;
}

}  // namespace

std::uint64_t current_op_id() { return current_op().id; }
OpKind current_op_kind() { return current_op().kind; }

OpScope::OpScope(Sink* sink, const pdm::IoStats& live, OpKind kind,
                 const char* structure, std::uint32_t batch) {
  if (!sink) return;  // inactive: this check is the whole null-sink cost
  if (!open(kind, structure, batch)) return;  // nested: inherit, emit nothing
  sink_ = sink;
  live_ = &live;
  start_ = live;
  record_.start_round = start_.parallel_ios;
}

OpScope::OpScope(std::shared_ptr<Sink> sink, const void* src, StatsFn sample,
                 OpKind kind, const char* structure, std::uint32_t batch) {
  if (!sink) return;  // inactive: this check is the whole null-sink cost
  if (!open(kind, structure, batch)) return;  // nested: inherit, emit nothing
  owned_ = std::move(sink);
  sink_ = owned_.get();
  src_ = src;
  sample_ = sample;
  start_ = sample_(src_);
  record_.start_round = start_.parallel_ios;
}

bool OpScope::open(OpKind kind, const char* structure, std::uint32_t batch) {
  CurrentOp& op = current_op();
  if (op.id != 0) return false;
  owner_ = true;
  start_time_ = std::chrono::steady_clock::now();
  record_.id = g_next_op_id.fetch_add(1, std::memory_order_relaxed);
  record_.kind = kind;
  record_.batch = batch ? batch : 1;
  record_.structure = structure ? structure : "";
  record_.ts_ns = trace_now_ns();
  op.id = record_.id;
  op.kind = kind;
  return true;
}

std::uint64_t OpScope::id() const {
  return owner_ ? record_.id : current_op_id();
}

void OpScope::set_outcome(OpOutcome outcome) {
  if (owner_) record_.outcome = outcome;
}

void OpScope::close() {
  if (!owner_) return;
  owner_ = false;
  auto wall = std::chrono::steady_clock::now() - start_time_;
  // Saturating: reset_stats() may rebase the counters below start_ while the
  // scope is open (see pdm/io_stats.hpp).
  record_.io = pdm::saturating_sub(sample_ ? sample_(src_) : *live_, start_);
  record_.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall).count());
  CurrentOp& op = current_op();
  op.id = 0;
  op.kind = OpKind::kNone;
  Sink* sink = sink_;
  sink_ = nullptr;
  sink->on_op(record_);
  owned_.reset();
}

}  // namespace pddict::obs
