#include "obs/telemetry.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/sink.hpp"  // trace_now_ns

namespace pddict::obs {

// ---- health events & watchdog ----

Json health_event_to_json(const HealthEvent& event) {
  Json j = Json::object();
  j.set("schema", "pddict-health");
  j.set("version", 1);
  j.set("seq", event.seq);
  j.set("ts_ns", event.ts_ns);
  j.set("source", event.source);
  j.set("kind", event.kind);
  j.set("message", event.message);
  j.set("measured", event.measured);
  j.set("threshold", event.threshold);
  return j;
}

HealthWatchdog::HealthWatchdog(WatchdogConfig config) : config_(config) {}

std::uint64_t HealthWatchdog::add_source(std::string name,
                                         std::function<HealthSample()> probe) {
  std::lock_guard<std::mutex> lock(mutex_);
  Source src;
  src.id = next_id_++;
  src.name = std::move(name);
  src.probe = std::move(probe);
  sources_.push_back(std::move(src));
  return sources_.back().id;
}

void HealthWatchdog::remove_source(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(sources_, [&](const Source& s) { return s.id == id; });
}

void HealthWatchdog::raise(Source& src, std::string_view key, std::string kind,
                           std::string message, double measured,
                           double threshold, std::vector<HealthEvent>& out) {
  bool& active = src.active[std::string(key)];
  if (active) return;  // still bad since last check — already reported
  active = true;
  HealthEvent event;
  event.seq = event_seq_++;
  event.ts_ns = trace_now_ns();
  event.source = src.name;
  event.kind = std::move(kind);
  event.message = std::move(message);
  event.measured = measured;
  event.threshold = threshold;
  counts_[event.kind] += 1;
  events_.push_back(event);
  if (events_.size() > kMaxEvents) events_.pop_front();
  out.push_back(std::move(event));
}

void HealthWatchdog::clear(Source& src, std::string_view key) {
  auto it = src.active.find(std::string(key));
  if (it != src.active.end()) it->second = false;
}

std::vector<HealthEvent> HealthWatchdog::check_now() {
  std::vector<HealthEvent> fresh;
  std::lock_guard<std::mutex> lock(mutex_);
  for (Source& src : sources_) {
    HealthSample s = src.probe();

    if (s.has_exec) {
      for (std::size_t i = 0; i < s.workers.size(); ++i) {
        const WorkerHealthSample& w = s.workers[i];
        std::string stall_key = "worker_stall/" + std::to_string(i);
        if (w.busy_ns > config_.stall_ns) {
          raise(src, stall_key, "worker_stall",
                "worker " + std::to_string(i) + " busy " +
                    std::to_string(w.busy_ns / 1'000'000) + " ms on disk " +
                    std::to_string(w.busy_disk),
                static_cast<double>(w.busy_ns),
                static_cast<double>(config_.stall_ns), fresh);
        } else {
          clear(src, stall_key);
        }
        std::string queue_key = "queue_depth/" + std::to_string(i);
        if (w.queue_depth >= config_.queue_depth_high_water) {
          raise(src, queue_key, "queue_depth_high_water",
                "worker " + std::to_string(i) + " queue depth " +
                    std::to_string(w.queue_depth),
                static_cast<double>(w.queue_depth),
                static_cast<double>(config_.queue_depth_high_water), fresh);
        } else {
          clear(src, queue_key);
        }
      }
    }

    if (s.has_cache && s.cache_capacity > 0) {
      double fraction = static_cast<double>(s.cache_dirty_frames) /
                        static_cast<double>(s.cache_capacity);
      if (fraction > config_.dirty_frame_flood) {
        raise(src, "dirty_frames", "dirty_frame_flood",
              std::to_string(s.cache_dirty_frames) + "/" +
                  std::to_string(s.cache_capacity) + " cache frames dirty",
              fraction, config_.dirty_frame_flood, fresh);
      } else {
        clear(src, "dirty_frames");
      }
    }

    if (s.has_bounds) {
      // A new recorded violation re-arms the edge even if the margin never
      // dipped back under the threshold between two checks.
      if (s.bound_violations > src.seen_violations) clear(src, "bound_margin");
      if (s.worst_margin > config_.margin_alert ||
          s.bound_violations > src.seen_violations) {
        raise(src, "bound_margin", "bound_margin_breach",
              "worst bound margin " + std::to_string(s.worst_margin) + " (" +
                  std::to_string(s.bound_violations) + " violations)",
              s.worst_margin, config_.margin_alert, fresh);
      } else {
        clear(src, "bound_margin");
      }
      src.seen_violations = std::max(src.seen_violations, s.bound_violations);
    }

    if (s.has_model && s.model_batches > 0) {
      // The conformance layer reports ratio == 1.0 until its window holds
      // enough batches, so a cold model can never trip this rule.
      double bound = config_.model_divergence;
      bool diverged = bound > 0.0 && s.model_ratio > 0.0 &&
                      (s.model_ratio > bound || s.model_ratio < 1.0 / bound);
      if (diverged) {
        raise(src, "model_divergence", "model_divergence",
              "measured/predicted wall-time ratio " +
                  std::to_string(s.model_ratio) + " over " +
                  std::to_string(s.model_batches) + " batches",
              s.model_ratio, bound, fresh);
      } else {
        clear(src, "model_divergence");
      }
    }
  }
  return fresh;
}

std::vector<HealthEvent> HealthWatchdog::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<HealthEvent>(events_.begin(), events_.end());
}

std::map<std::string, std::uint64_t> HealthWatchdog::alert_counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

std::uint64_t HealthWatchdog::total_alerts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return event_seq_;
}

Json HealthWatchdog::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json j = Json::object();
  j.set("schema", "pddict-health");
  j.set("version", 1);
  j.set("total_alerts", event_seq_);
  Json counts = Json::object();
  for (const auto& [kind, n] : counts_) counts.set(kind, n);
  j.set("counts", std::move(counts));
  Json events = Json::array();
  for (const HealthEvent& e : events_) events.push_back(health_event_to_json(e));
  j.set("events", std::move(events));
  return j;
}

std::string HealthWatchdog::render() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  if (event_seq_ == 0) {
    os << "health: OK (no alerts)\n";
    return os.str();
  }
  os << "health: " << event_seq_ << " alert" << (event_seq_ == 1 ? "" : "s");
  const char* sep = " (";
  for (const auto& [kind, n] : counts_) {
    os << sep << kind << "=" << n;
    sep = ", ";
  }
  os << ")\n";
  for (const HealthEvent& e : events_) {
    os << "  [" << e.seq << "] t+" << e.ts_ns / 1'000'000 << "ms " << e.source
       << ": " << e.kind << " — " << e.message << "\n";
  }
  return os.str();
}

// ---- sampler ----

TelemetrySampler::TelemetrySampler(Options options)
    : options_(std::move(options)) {
  if (!options_.jsonl_path.empty()) {
    jsonl_ = std::make_unique<std::ofstream>(options_.jsonl_path,
                                             std::ios::out | std::ios::trunc);
  }
}

TelemetrySampler::~TelemetrySampler() { stop(); }

std::uint64_t TelemetrySampler::add_source(std::string name,
                                           std::function<Json()> collect) {
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
    Source src;
    src.id = id;
    src.name = std::move(name) + "#" + std::to_string(id);
    src.collect = std::move(collect);
    sources_.push_back(std::move(src));
  }
  take_frame("source_added");
  return id;
}

void TelemetrySampler::remove_source(std::uint64_t id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bool known = std::any_of(sources_.begin(), sources_.end(),
                             [&](const Source& s) { return s.id == id; });
    if (!known) return;
  }
  // Frame first, with the source still attached: the series must end on the
  // source's exact final counters (the end-of-run == last-frame invariant the
  // validator and tests rely on).
  take_frame("source_removed");
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(sources_, [&](const Source& s) { return s.id == id; });
}

std::uint64_t TelemetrySampler::add_registry(std::string name,
                                             const MetricsRegistry* registry) {
  return add_source(std::move(name),
                    [registry]() { return registry->to_json(); });
}

void TelemetrySampler::set_watchdog(std::shared_ptr<HealthWatchdog> watchdog) {
  std::lock_guard<std::mutex> lock(mutex_);
  watchdog_ = std::move(watchdog);
}

std::shared_ptr<HealthWatchdog> TelemetrySampler::watchdog() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return watchdog_;
}

void TelemetrySampler::start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return;
    running_ = true;
    stopping_ = false;
  }
  take_frame("start");
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
      bool woken = wake_.wait_for(
          lock, std::chrono::milliseconds(options_.interval_ms),
          [this] { return stopping_; });
      if (woken) break;
      lock.unlock();
      take_frame("interval");
      lock.lock();
    }
  });
}

void TelemetrySampler::stop() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stopping_ = true;
    worker = std::move(thread_);
  }
  wake_.notify_all();
  if (worker.joinable()) worker.join();
  take_frame("final");
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
  if (jsonl_) jsonl_->flush();
}

bool TelemetrySampler::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

Json TelemetrySampler::sample_now(std::string_view reason) {
  return take_frame(reason);
}

Json TelemetrySampler::take_frame(std::string_view reason) {
  // Run the watchdog before taking the sampler lock: its probes reach into
  // pdm objects that take their own locks, and keeping the chain
  // watchdog→array disjoint from sampler→array means no thread ever holds
  // both the sampler and watchdog mutexes at once.
  std::shared_ptr<HealthWatchdog> dog;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dog = watchdog_;
  }
  std::vector<HealthEvent> fresh;
  if (dog) fresh = dog->check_now();

  std::lock_guard<std::mutex> lock(mutex_);
  Json frame = Json::object();
  frame.set("schema", kFrameSchema);
  frame.set("version", kSchemaVersion);
  frame.set("seq", seq_++);
  std::uint64_t ts = trace_now_ns();
  if (ts < last_ts_ns_) ts = last_ts_ns_;
  last_ts_ns_ = ts;
  frame.set("ts_ns", ts);
  frame.set("reason", std::string(reason));
  Json sources = Json::object();
  for (const Source& src : sources_) sources.set(src.name, src.collect());
  frame.set("sources", std::move(sources));
  if (dog) {
    Json alerts = Json::array();
    for (const HealthEvent& e : fresh)
      alerts.push_back(health_event_to_json(e));
    frame.set("alerts", std::move(alerts));
    Json counts = Json::object();
    for (const auto& [kind, n] : dog->alert_counts()) counts.set(kind, n);
    frame.set("alert_counts", std::move(counts));
  }
  if (jsonl_ && jsonl_->good()) {
    frame.write(*jsonl_);
    *jsonl_ << '\n';
    jsonl_->flush();  // every line is a complete frame even if we die here
  }
  ring_.push_back(frame);
  if (ring_.size() > options_.ring_capacity) {
    ring_.pop_front();
    ++dropped_;
  }
  return frame;
}

std::vector<Json> TelemetrySampler::frames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<Json>(ring_.begin(), ring_.end());
}

std::uint64_t TelemetrySampler::frames_emitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

std::uint64_t TelemetrySampler::frames_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

namespace {

void write_number(std::ostream& os, const Json& v) {
  if (v.type() == Json::Type::kInt) {
    os << v.as_int();
  } else {
    os << v.as_double();
  }
}

// Collect one Prometheus sample line per numeric leaf of `v`, keyed by
// metric family so the renderer can group samples under one HELP/TYPE
// header. The family is the JSON path joined with '.' then sanitized;
// arrays contribute their index as a path segment.
void collect_numeric_leaves(const Json& v, const std::string& path,
                            const std::string& source,
                            std::map<std::string, std::vector<std::string>>&
                                families) {
  if (v.is_number()) {
    std::string family = "pddict_" + prometheus_name(path);
    std::ostringstream line;
    line << family << "{source=\"" << prometheus_label_value(source) << "\"} ";
    write_number(line, v);
    families[family].push_back(line.str());
    return;
  }
  if (v.is_object()) {
    for (const auto& [key, child] : v.as_object())
      collect_numeric_leaves(child, path.empty() ? key : path + "." + key,
                             source, families);
    return;
  }
  if (v.is_array()) {
    const JsonArray& arr = v.as_array();
    for (std::size_t i = 0; i < arr.size(); ++i)
      collect_numeric_leaves(arr[i], path + "." + std::to_string(i), source,
                             families);
  }
}

}  // namespace

std::string TelemetrySampler::render_prometheus() const {
  Json frame;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.empty()) return {};
    frame = ring_.back();
  }
  std::map<std::string, std::vector<std::string>> families;
  const Json* sources = frame.find("sources");
  if (sources && sources->is_object()) {
    for (const auto& [name, snapshot] : sources->as_object())
      collect_numeric_leaves(snapshot, "", name, families);
  }
  std::ostringstream os;
  for (const auto& [family, lines] : families) {
    os << "# HELP " << family
       << " Latest pddict-telemetry-frame value of this JSON leaf.\n";
    os << "# TYPE " << family << " gauge\n";
    for (const std::string& line : lines) os << line << '\n';
  }
  return os.str();
}

// ---- process-wide default sampler ----

namespace {
std::mutex g_default_telemetry_mutex;
std::shared_ptr<TelemetrySampler> g_default_telemetry;
}  // namespace

void set_default_telemetry(std::shared_ptr<TelemetrySampler> sampler) {
  std::lock_guard<std::mutex> lock(g_default_telemetry_mutex);
  g_default_telemetry = std::move(sampler);
}

std::shared_ptr<TelemetrySampler> default_telemetry() {
  std::lock_guard<std::mutex> lock(g_default_telemetry_mutex);
  return g_default_telemetry;
}

// ---- Prometheus exposition of a MetricsRegistry snapshot ----

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

std::string prometheus_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

struct Sample {
  std::string labels;  // rendered "{k=\"v\"}" or ""
  std::string value;
};

// Split a dotted metric name, lifting a ".disk.<N>." segment pair into a
// disk="N" label so all disks of a family share one Prometheus metric.
void family_and_labels(std::string_view prefix, std::string_view name,
                       std::string& family, std::string& labels) {
  std::vector<std::string> segments;
  std::size_t start = 0;
  while (start <= name.size()) {
    std::size_t dot = name.find('.', start);
    if (dot == std::string_view::npos) dot = name.size();
    segments.emplace_back(name.substr(start, dot - start));
    start = dot + 1;
  }
  std::string disk;
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    const std::string& next = segments[i + 1];
    bool digits = !next.empty() && next.find_first_not_of("0123456789") ==
                                       std::string::npos;
    if (segments[i] == "disk" && digits) {
      disk = next;
      segments.erase(segments.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      break;
    }
  }
  std::string joined(prefix);
  for (const std::string& seg : segments) {
    joined += '_';
    joined += seg;
  }
  family = prometheus_name(joined);
  labels =
      disk.empty() ? "" : "{disk=\"" + prometheus_label_value(disk) + "\"}";
}

void write_families(
    std::ostream& os, std::string_view type, std::string_view help,
    const std::map<std::string, std::vector<Sample>>& families) {
  for (const auto& [family, samples] : families) {
    os << "# HELP " << family << ' ' << help << '\n';
    os << "# TYPE " << family << ' ' << type << '\n';
    for (const Sample& s : samples)
      os << family << s.labels << ' ' << s.value << '\n';
  }
}

}  // namespace

void write_prometheus(std::ostream& os, const MetricsRegistry::Snapshot& snap,
                      std::string_view prefix) {
  std::map<std::string, std::vector<Sample>> counters;
  for (const auto& [name, value] : snap.counters) {
    std::string family, labels;
    family_and_labels(prefix, name, family, labels);
    counters[family + "_total"].push_back(
        Sample{labels, std::to_string(value)});
  }
  write_families(os, "counter",
                 "Monotone counter from the pddict metrics registry.",
                 counters);

  std::map<std::string, std::vector<Sample>> gauges;
  for (const auto& [name, value] : snap.gauges) {
    std::string family, labels;
    family_and_labels(prefix, name, family, labels);
    std::ostringstream v;
    v << value;
    gauges[family].push_back(Sample{labels, v.str()});
  }
  write_families(os, "gauge", "Gauge from the pddict metrics registry.",
                 gauges);

  // Registry histograms are small index-domain distributions (e.g. round
  // utilization indexed by slots-in-use), not cumulative le-bucket families —
  // expose each entry as a bucket="i"-labelled gauge.
  std::map<std::string, std::vector<Sample>> hist;
  for (const auto& [name, buckets] : snap.histograms) {
    std::string family, labels;
    family_and_labels(prefix, name, family, labels);
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      std::string l = labels.empty()
                          ? "{bucket=\"" + std::to_string(i) + "\"}"
                          : labels.substr(0, labels.size() - 1) +
                                ",bucket=\"" + std::to_string(i) + "\"}";
      hist[family].push_back(Sample{l, std::to_string(buckets[i])});
    }
  }
  write_families(os, "gauge",
                 "Index-domain distribution from the pddict metrics registry, "
                 "one gauge per bucket.",
                 hist);
}

}  // namespace pddict::obs
