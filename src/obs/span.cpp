#include "obs/span.hpp"

#include <cstdio>
#include <sstream>
#include <vector>

#include "obs/op_context.hpp"

namespace pddict::obs {

namespace {
// Active span paths of this thread, innermost last. Spans are strictly
// RAII-scoped, so closes happen in LIFO order per thread.
std::vector<std::string>& span_stack() {
  thread_local std::vector<std::string> stack;
  return stack;
}
}  // namespace

Span::Span(Sink* sink, const pdm::IoStats& live, std::string_view name) {
  if (!sink) return;  // inactive: this check is the whole null-sink cost
  sink_ = sink;
  live_ = &live;
  start_ = live;
  open(name);
}

Span::Span(std::shared_ptr<Sink> sink, const void* src, StatsFn sample,
           std::string_view name) {
  if (!sink) return;  // inactive: this check is the whole null-sink cost
  owned_ = std::move(sink);
  sink_ = owned_.get();
  src_ = src;
  sample_ = sample;
  start_ = sample_(src_);
  open(name);
}

void Span::open(std::string_view name) {
  start_ns_ = trace_now_ns();
  start_time_ = std::chrono::steady_clock::now();
  auto& stack = span_stack();
  depth_ = static_cast<std::uint32_t>(stack.size());
  if (stack.empty()) {
    path_ = name;
  } else {
    path_ = stack.back();
    path_ += '/';
    path_ += name;
  }
  stack.push_back(path_);
}

Span::Span(Span&& other) noexcept
    : sink_(other.sink_),
      owned_(std::move(other.owned_)),
      live_(other.live_),
      src_(other.src_),
      sample_(other.sample_),
      start_(other.start_),
      start_time_(other.start_time_),
      start_ns_(other.start_ns_),
      path_(std::move(other.path_)),
      depth_(other.depth_) {
  other.sink_ = nullptr;
}

void Span::close() {
  if (!sink_) return;
  auto wall = std::chrono::steady_clock::now() - start_time_;
  SpanRecord record;
  record.path = std::move(path_);
  record.depth = depth_;
  // Saturating: reset_stats() may rebase the counters below start_ while the
  // span is open (see pdm/io_stats.hpp).
  record.io = pdm::saturating_sub(sample_ ? sample_(src_) : *live_, start_);
  record.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall).count());
  record.start_ns = start_ns_;
  record.start_round = start_.parallel_ios;
  record.op_id = current_op_id();
  record.op_kind = current_op_kind();
  auto& stack = span_stack();
  if (!stack.empty()) stack.pop_back();
  Sink* sink = sink_;
  sink_ = nullptr;
  sink->on_span(record);
  owned_.reset();
}

// ---------------------------------------------------------- SpanAggregator

void SpanAggregator::on_io(const IoEvent&) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++io_events_;
}

void SpanAggregator::on_span(const SpanRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  Node& node = nodes_[record.path];
  ++node.count;
  node.io += record.io;
  node.wall_ns += record.wall_ns;
  node.depth = record.depth;
}

std::map<std::string, SpanAggregator::Node> SpanAggregator::nodes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return nodes_;
}

std::uint64_t SpanAggregator::io_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return io_events_;
}

std::string SpanAggregator::render() const {
  auto snapshot = nodes();
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line), "%-40s %10s %12s %12s %10s\n", "span",
                "count", "par. I/Os", "blocks", "wall ms");
  os << line;
  for (const auto& [path, node] : snapshot) {
    // Indent by depth; show only the leaf segment of the path.
    std::string label(static_cast<std::size_t>(node.depth) * 2, ' ');
    auto slash = path.rfind('/');
    label += slash == std::string::npos ? path : path.substr(slash + 1);
    std::snprintf(line, sizeof(line), "%-40s %10llu %12llu %12llu %10.3f\n",
                  label.c_str(), static_cast<unsigned long long>(node.count),
                  static_cast<unsigned long long>(node.io.parallel_ios),
                  static_cast<unsigned long long>(node.io.blocks_read +
                                                  node.io.blocks_written),
                  static_cast<double>(node.wall_ns) / 1e6);
    os << line;
  }
  return os.str();
}

Json SpanAggregator::to_json() const {
  auto snapshot = nodes();
  Json arr = Json::array();
  for (const auto& [path, node] : snapshot) {
    Json j = Json::object();
    j.set("path", path);
    j.set("depth", node.depth);
    j.set("count", node.count);
    j.set("parallel_ios", node.io.parallel_ios);
    j.set("read_rounds", node.io.read_rounds);
    j.set("write_rounds", node.io.write_rounds);
    j.set("blocks_read", node.io.blocks_read);
    j.set("blocks_written", node.io.blocks_written);
    j.set("wall_ns", node.wall_ns);
    arr.push_back(std::move(j));
  }
  return arr;
}

void SpanAggregator::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  nodes_.clear();
  io_events_ = 0;
}

}  // namespace pddict::obs
