// Minimal JSON value tree, serializer and parser.
//
// The observability layer emits machine-readable artifacts (metrics dumps,
// span records, bench reports) and the CI schema gate reads them back, so the
// repo needs a JSON round trip without an external dependency. This is a
// deliberately small implementation: objects preserve insertion order (so
// reports diff cleanly across runs), numbers are stored as double with an
// exact-integer fast path, and the parser accepts strict RFC 8259 JSON.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pddict::obs {

class Json;
using JsonArray = std::vector<Json>;
/// Insertion-ordered object: pairs, with lookup helpers below.
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(std::int64_t i) : type_(Type::kInt), int_(i) {}
  Json(std::uint64_t u)
      : type_(Type::kInt), int_(static_cast<std::int64_t>(u)) {}
  Json(int i) : type_(Type::kInt), int_(i) {}
  Json(unsigned i) : type_(Type::kInt), int_(i) {}
  Json(double d) : type_(Type::kDouble), double_(d) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::kString), string_(s) {}
  Json(JsonArray a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(JsonObject o) : type_(Type::kObject), object_(std::move(o)) {}

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  std::int64_t as_int() const {
    return type_ == Type::kDouble ? static_cast<std::int64_t>(double_) : int_;
  }
  double as_double() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return string_; }
  const JsonArray& as_array() const { return array_; }
  const JsonObject& as_object() const { return object_; }
  JsonArray& as_array() { return array_; }
  JsonObject& as_object() { return object_; }

  // ---- builders ----
  /// Append to an array value (converts a null value to an array).
  Json& push_back(Json v);
  /// Set/overwrite a key on an object value (converts null to object).
  Json& set(std::string_view key, Json v);

  // ---- object lookup ----
  /// Pointer to the member named `key`, or nullptr.
  const Json* find(std::string_view key) const;

  // ---- serialization ----
  /// Compact one-line form.
  std::string dump() const;
  /// Pretty form with `indent` spaces per level.
  std::string dump(int indent) const;
  void write(std::ostream& os, int indent = -1, int depth = 0) const;

  /// Escape and quote one string (exposed for streaming writers).
  static void write_escaped(std::ostream& os, std::string_view s);

 private:
  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

/// Strict parse; returns std::nullopt on malformed input. `error` (optional)
/// receives a one-line diagnostic with the byte offset.
std::optional<Json> parse_json(std::string_view text,
                               std::string* error = nullptr);

}  // namespace pddict::obs
