// Observability sinks: where the disk array's structured event stream goes.
//
// The simulator is the measurement instrument of this reproduction, so its
// event stream (every batch it schedules, every instrumented span) is routed
// through a pluggable Sink instead of an unbounded in-object vector:
//
//   * no sink attached  — the default; emitting is a null-pointer check, so
//     uninstrumented runs pay nothing,
//   * RingBufferSink    — keeps the last `capacity` events (bounded memory;
//     what DiskArray tracing now runs on),
//   * JsonLinesSink     — streams one JSON object per event to a file, for
//     offline analysis of full runs,
//   * SpanAggregator    — see span.hpp; folds span records into a tree.
//
// Sinks must be thread-safe: the concurrent dictionary issues batches from
// many threads, and DiskArray calls on_io() under its own scheduling lock.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "pdm/geometry.hpp"
#include "pdm/io_stats.hpp"

namespace pddict::obs {

/// Nanoseconds since a process-wide steady epoch (the first call). All event
/// timestamps share this epoch so different arrays' streams interleave on one
/// timeline (trace_event.hpp renders it).
std::uint64_t trace_now_ns();

/// Kind of the user-facing dictionary / balancer operation an event belongs
/// to. Stamped on IoEvents and SpanRecords via the thread-local OpContext
/// (op_context.hpp); kNone means the event ran outside any operation.
enum class OpKind : std::uint8_t {
  kNone = 0,
  kLookup,
  kInsert,
  kErase,
  kBuild,    // static construction (StaticDict build, expander setup)
  kRebuild,  // global rebuilding phases of the dynamic dictionaries
  kAssign,   // load-balancer placement
  kOther,
};

/// Hit/miss disposition of an operation, for bounds that distinguish them
/// (Thm 7: a miss costs exactly 1 I/O, a hit averages 1 + epsilon).
enum class OpOutcome : std::uint8_t {
  kUnknown = 0,  // not reported (inserts) or used as "match any" in filters
  kHit,
  kMiss,
};

const char* op_kind_name(OpKind kind);
const char* op_outcome_name(OpOutcome outcome);

/// One batch scheduled by the disk array (the unit of parallel I/O
/// accounting). `addrs` is the block list in submission order for reads and
/// the deduplicated list for writes, matching the historical trace semantics.
struct IoEvent {
  bool write = false;
  std::uint64_t rounds = 0;
  std::vector<pdm::BlockAddr> addrs;
  /// Monotone per-array emission index (0-based).
  std::uint64_t seq = 0;
  /// Emission time (trace_now_ns() epoch).
  std::uint64_t ts_ns = 0;
  /// The array's cumulative parallel_ios *before* this batch — the batch
  /// occupies virtual rounds [start_round, start_round + rounds).
  std::uint64_t start_round = 0;
  /// Distinct blocks this batch moved on each disk (size = D). In PDM mode
  /// per_disk[d] is also the number of rounds disk d is busy.
  std::vector<std::uint32_t> per_disk;
  /// Operation that caused this batch (0 / kNone when none was open on the
  /// submitting thread). Attribution is exact even under concurrency: the
  /// id is read from the submitting thread's own context.
  std::uint64_t op_id = 0;
  OpKind op_kind = OpKind::kNone;
};

/// One closed span (see obs::Span): a named phase of an operation with the
/// I/O and wall time spent between open and close. `path` is the
/// slash-joined nesting chain ("insert/rebuild/ext_sort"); `depth` its level.
struct SpanRecord {
  std::string path;
  std::uint32_t depth = 0;
  pdm::IoStats io;
  std::uint64_t wall_ns = 0;
  /// Open time (trace_now_ns() epoch) and the array's cumulative
  /// parallel_ios at open — the span covers virtual rounds
  /// [start_round, start_round + io.parallel_ios).
  std::uint64_t start_ns = 0;
  std::uint64_t start_round = 0;
  /// Operation this span closed under (0 when none; see IoEvent::op_id).
  std::uint64_t op_id = 0;
  OpKind op_kind = OpKind::kNone;
};

/// One closed operation (see obs::OpScope): a user-facing dictionary or
/// balancer call with its total I/O delta and wall time. Emitted once, when
/// the outermost scope of the operation closes.
struct OpRecord {
  std::uint64_t id = 0;
  OpKind kind = OpKind::kNone;
  OpOutcome outcome = OpOutcome::kUnknown;
  /// Keys the operation covered (1 for point ops, n for batched ops); bounds
  /// are per key, so monitors divide by this.
  std::uint32_t batch = 1;
  /// Owning structure ("dynamic_dict", "static_dict", ...).
  std::string structure;
  /// I/O delta of the owning array over the operation. Exact when the array
  /// serves one thread; under concurrency it may over-charge (same caveat as
  /// SpanRecord) — OpAttributor reconstructs exact per-op cost from the
  /// tagged IoEvents instead.
  pdm::IoStats io;
  std::uint64_t wall_ns = 0;
  std::uint64_t ts_ns = 0;       // open time (trace_now_ns() epoch)
  std::uint64_t start_round = 0; // array parallel_ios at open
};

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_io(const IoEvent& event) = 0;
  virtual void on_span(const SpanRecord& record) = 0;
  /// Operation records are a later addition; sinks that do not care inherit
  /// this no-op so every pre-existing Sink subclass stays source-compatible.
  virtual void on_op(const OpRecord& record) { (void)record; }
  virtual void flush() {}
};

/// Swallows everything. Attaching it is equivalent to (but measurably no
/// cheaper than) attaching nothing; it exists so overhead can be measured and
/// as a base class for sinks that only care about one event kind.
class NullSink : public Sink {
 public:
  void on_io(const IoEvent&) override {}
  void on_span(const SpanRecord&) override {}
};

/// Bounded in-memory sink: keeps the most recent `capacity` I/O events and
/// span records, counting what it had to drop. This is the memory-safe
/// replacement for the old DiskArray::trace_ vector, which grew without
/// bound for the lifetime of the array.
class RingBufferSink : public Sink {
 public:
  explicit RingBufferSink(std::size_t capacity);

  void on_io(const IoEvent& event) override;
  void on_span(const SpanRecord& record) override;
  void on_op(const OpRecord& record) override;

  std::size_t capacity() const { return capacity_; }
  /// Snapshots in arrival order (oldest first).
  std::vector<IoEvent> events() const;
  std::vector<SpanRecord> spans() const;
  std::vector<OpRecord> ops() const;
  std::uint64_t dropped_events() const;
  std::uint64_t dropped_spans() const;
  std::uint64_t dropped_ops() const;
  void clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<IoEvent> events_;
  std::deque<SpanRecord> spans_;
  std::deque<OpRecord> ops_;
  std::uint64_t dropped_events_ = 0;
  std::uint64_t dropped_spans_ = 0;
  std::uint64_t dropped_ops_ = 0;
};

/// Streams every event as one JSON object per line (JSON-lines / ndjson):
///   {"type":"io","write":false,"rounds":1,"blocks":16,"disks":[...]}
///   {"type":"span","path":"insert","ios":2,...}
/// Block addresses are emitted as [disk, block] pairs only when
/// `record_addrs` is set — full address streams are large.
class JsonLinesSink : public Sink {
 public:
  explicit JsonLinesSink(const std::string& path, bool record_addrs = false);
  ~JsonLinesSink() override;

  void on_io(const IoEvent& event) override;
  void on_span(const SpanRecord& record) override;
  void on_op(const OpRecord& record) override;
  void flush() override;

  std::uint64_t lines_written() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Fans every event out to a set of child sinks (aggregate + stream + ring at
/// once). The child list may change while events are in flight: emission
/// walks an immutable snapshot taken under the lock, so add()/remove() are
/// cheap copy-on-write swaps. Teardown-order guarantee: once remove(child)
/// returns, no *new* event delivery to that child starts; a delivery already
/// iterating an older snapshot may still complete, and the snapshot's shared
/// ownership keeps the child alive until it does (no use-after-free).
/// Children do their own locking.
class MultiSink : public Sink {
 public:
  explicit MultiSink(std::vector<std::shared_ptr<Sink>> children);

  void add(std::shared_ptr<Sink> child);
  /// Detach `child`; returns false if it was not attached.
  bool remove(const Sink* child);
  std::size_t size() const;

  void on_io(const IoEvent& event) override;
  void on_span(const SpanRecord& record) override;
  void on_op(const OpRecord& record) override;
  void flush() override;

 private:
  using Children = std::vector<std::shared_ptr<Sink>>;
  std::shared_ptr<const Children> snapshot() const;

  mutable std::mutex mutex_;
  std::shared_ptr<const Children> children_;
};

/// Process-wide default sink: a DiskArray constructed while one is set
/// attaches it automatically. This is how the bench trace harness
/// (bench_util's TraceSession) observes arrays created deep inside the
/// experiment functions without threading a sink through every signature.
/// Pass nullptr to clear. Affects only arrays constructed afterwards.
void set_default_sink(std::shared_ptr<Sink> sink);
std::shared_ptr<Sink> default_sink();

/// JSON shape shared by JsonLinesSink and tests.
Json io_event_to_json(const IoEvent& event, bool record_addrs);
Json span_record_to_json(const SpanRecord& record);
Json op_record_to_json(const OpRecord& record);

}  // namespace pddict::obs
