#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace pddict::obs {

Json& Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray)
    throw std::logic_error("Json::push_back on non-array");
  array_.push_back(std::move(v));
  return *this;
}

Json& Json::set(std::string_view key, Json v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) throw std::logic_error("Json::set on non-object");
  for (auto& [k, val] : object_) {
    if (k == key) {
      val = std::move(v);
      return *this;
    }
  }
  object_.emplace_back(std::string(key), std::move(v));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

void Json::write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

namespace {
void newline_indent(std::ostream& os, int indent, int depth) {
  if (indent < 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}
}  // namespace

void Json::write(std::ostream& os, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: os << "null"; break;
    case Type::kBool: os << (bool_ ? "true" : "false"); break;
    case Type::kInt: os << int_; break;
    case Type::kDouble: {
      if (std::isfinite(double_)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.10g", double_);
        os << buf;
      } else {
        os << "null";  // JSON has no Inf/NaN
      }
      break;
    }
    case Type::kString: write_escaped(os, string_); break;
    case Type::kArray: {
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) os << ',';
        newline_indent(os, indent, depth + 1);
        array_[i].write(os, indent, depth + 1);
      }
      if (!array_.empty()) newline_indent(os, indent, depth);
      os << ']';
      break;
    }
    case Type::kObject: {
      os << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) os << ',';
        newline_indent(os, indent, depth + 1);
        write_escaped(os, object_[i].first);
        os << (indent < 0 ? ":" : ": ");
        object_[i].second.write(os, indent, depth + 1);
      }
      if (!object_.empty()) newline_indent(os, indent, depth);
      os << '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

// ---------------------------------------------------------------- parser ----

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Json> run() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return v;
  }

 private:
  std::optional<Json> fail(const char* what) {
    if (error_) {
      std::ostringstream os;
      os << "JSON parse error at byte " << pos_ << ": " << what;
      *error_ = os.str();
    }
    return std::nullopt;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      auto s = string();
      if (!s) return std::nullopt;
      return Json(std::move(*s));
    }
    if (literal("true")) return Json(true);
    if (literal("false")) return Json(false);
    if (literal("null")) return Json(nullptr);
    return number();
  }

  std::optional<Json> number() {
    std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("invalid value");
    std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.find_first_of(".eE") == std::string_view::npos) {
      std::int64_t i = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (ec == std::errc() && p == tok.data() + tok.size()) return Json(i);
    }
    double d = 0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || p != tok.data() + tok.size())
      return fail("malformed number");
    return Json(d);
  }

  std::optional<std::string> string() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return std::nullopt;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad \\u escape");
                return std::nullopt;
              }
            }
            // UTF-8 encode (BMP only; surrogate pairs are not needed by our
            // own artifacts and are rejected as lone code units).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape");
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> array() {
    consume('[');
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      auto v = value();
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return arr;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  std::optional<Json> object() {
    consume('{');
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      auto key = string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      auto v = value();
      if (!v) return std::nullopt;
      obj.set(*key, std::move(*v));
      skip_ws();
      if (consume('}')) return obj;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> parse_json(std::string_view text, std::string* error) {
  return Parser(text, error).run();
}

}  // namespace pddict::obs
