#include "obs/cost_conformance.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace pddict::obs {

namespace {

std::mutex g_default_mutex;
std::shared_ptr<CostConformance> g_default;  // guarded by g_default_mutex

/// Power-of-two rounds bucket: r1, r2, r3-4, r5-8, r9-16, ...
std::string rounds_bucket(std::uint64_t rounds) {
  if (rounds <= 2) return "r" + std::to_string(rounds);
  std::uint64_t hi = 4;
  while (hi < rounds) hi <<= 1;
  return "r" + std::to_string(hi / 2 + 1) + "-" + std::to_string(hi);
}

/// Solve the k x k system a * x = rhs (k <= 3) by Gaussian elimination with
/// partial pivoting. Returns false when a pivot is numerically zero relative
/// to the matrix scale (collinear features).
bool solve_normal(double a[3][3], double rhs[3], int k, double* x) {
  double scale = 0.0;
  for (int i = 0; i < k; ++i)
    for (int j = 0; j < k; ++j) scale = std::max(scale, std::fabs(a[i][j]));
  if (scale == 0.0) return false;
  int perm[3] = {0, 1, 2};
  for (int col = 0; col < k; ++col) {
    int best = col;
    for (int row = col + 1; row < k; ++row)
      if (std::fabs(a[row][col]) > std::fabs(a[best][col])) best = row;
    if (best != col) {
      for (int j = 0; j < k; ++j) std::swap(a[col][j], a[best][j]);
      std::swap(rhs[col], rhs[best]);
      std::swap(perm[col], perm[best]);
    }
    if (std::fabs(a[col][col]) < 1e-9 * scale) return false;
    for (int row = col + 1; row < k; ++row) {
      double f = a[row][col] / a[col][col];
      for (int j = col; j < k; ++j) a[row][j] -= f * a[col][j];
      rhs[row] -= f * rhs[col];
    }
  }
  for (int col = k - 1; col >= 0; --col) {
    double v = rhs[col];
    for (int j = col + 1; j < k; ++j) v -= a[col][j] * x[j];
    x[col] = v / a[col][col];
  }
  (void)perm;
  return true;
}

double pct(std::uint64_t part, std::uint64_t whole) {
  return whole ? 100.0 * static_cast<double>(part) / static_cast<double>(whole)
               : 0.0;
}

}  // namespace

CostConformance::CostConformance() : CostConformance(Options{}) {}

CostConformance::CostConformance(Options opt) : opt_(opt) {
  if (opt_.window == 0) opt_.window = 1;
}

std::uint32_t CostConformance::class_index_locked(bool write, bool flush,
                                                  std::uint64_t rounds) {
  std::string name = (flush ? "flush" : write ? "write" : "read");
  name += "/";
  name += rounds_bucket(rounds);
  for (std::uint32_t i = 0; i < classes_.size(); ++i)
    if (classes_[i].name == name) return i;
  classes_.push_back(ClassAccum{name, 0, 0, 0, 0, 0.0, 0.0});
  return static_cast<std::uint32_t>(classes_.size() - 1);
}

void CostConformance::record(const RoundPhaseSample& sample) {
  // The model charges the batch to its most-loaded worker: workers transfer
  // concurrently, so the busiest one bounds the exec section. Ties prefer
  // more runs (more positioning latency).
  std::uint32_t runs = 0, blocks = 0;
  for (std::size_t w = 0; w < sample.worker_blocks.size(); ++w) {
    std::uint32_t wb = sample.worker_blocks[w];
    std::uint32_t wr = w < sample.worker_runs.size() ? sample.worker_runs[w] : 0;
    if (wb > blocks || (wb == blocks && wr > runs)) {
      blocks = wb;
      runs = wr;
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  ++batches_;
  rounds_ += sample.rounds;
  blocks_ += sample.blocks;

  plan_.record(sample.plan_ns);
  queue_.record(sample.queue_ns);
  transfer_.record(sample.transfer_ns);
  join_.record(sample.join_ns);
  overlap_.record(sample.overlap_ns);
  reconcile_.record(sample.reconcile_ns);
  exec_.record(sample.exec_ns);
  total_.record(sample.total_ns);

  std::uint32_t cls =
      class_index_locked(sample.write, sample.flush, sample.rounds);
  ClassAccum& acc = classes_[cls];
  ++acc.batches;
  acc.rounds += sample.rounds;
  acc.blocks += sample.blocks;
  acc.exec_ns += sample.exec_ns;
  acc.sum_runs += runs;
  acc.sum_blocks += blocks;

  window_.push_back(BatchRecord{batches_ - 1, cls, runs, blocks, sample.rounds,
                                sample.exec_ns});
  while (window_.size() > opt_.window) window_.pop_front();

  double S = runs, B = blocks, y = static_cast<double>(sample.exec_ns);
  n_ += 1;
  s_ += S;
  b_ += B;
  ss_ += S * S;
  sb_ += S * B;
  bb_ += B * B;
  y_ += y;
  sy_ += S * y;
  by_ += B * y;
}

std::uint64_t CostConformance::batches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batches_;
}

CostConformance::Model CostConformance::fit_locked() const {
  Model m;
  m.overhead_ns = std::max(0.0, opt_.overhead_ns);
  m.seek_ns = std::max(0.0, opt_.seek_ns);
  m.transfer_ns_per_block = std::max(0.0, opt_.transfer_ns_per_block);
  if (!opt_.calibrate || n_ == 0) return m;

  const bool fix_o = opt_.overhead_ns >= 0;
  const bool fix_s = opt_.seek_ns >= 0;
  const bool fix_t = opt_.transfer_ns_per_block >= 0;
  if (fix_o && fix_s && fix_t) return m;

  // Subtract the fixed parameters' contribution from the target sums, then
  // least-squares the unknowns. Gram sums of the features (1, S, B):
  //   <1,1>=n  <1,S>=s  <1,B>=b  <S,S>=ss  <S,B>=sb  <B,B>=bb
  double fo = fix_o ? m.overhead_ns : 0.0;
  double fs = fix_s ? m.seek_ns : 0.0;
  double ft = fix_t ? m.transfer_ns_per_block : 0.0;
  double ry = y_ - fo * n_ - fs * s_ - ft * b_;
  double rsy = sy_ - fo * s_ - fs * ss_ - ft * sb_;
  double rby = by_ - fo * b_ - fs * sb_ - ft * bb_;

  // Candidate unknown sets, in decreasing richness. The fallback chain
  // handles collinear shapes: runs == blocks for every batch (seek-free
  // backends) or constant shape across batches.
  enum Feat { kOne, kSeek, kXfer };
  const double gram[3][3] = {{n_, s_, b_}, {s_, ss_, sb_}, {b_, sb_, bb_}};
  const double target[3] = {ry, rsy, rby};
  std::vector<std::vector<Feat>> candidates;
  {
    std::vector<Feat> full;
    if (!fix_o) full.push_back(kOne);
    if (!fix_s) full.push_back(kSeek);
    if (!fix_t) full.push_back(kXfer);
    candidates.push_back(full);
    if (!fix_s && full.size() > 1) {
      std::vector<Feat> no_seek;
      for (Feat f : full)
        if (f != kSeek) no_seek.push_back(f);
      candidates.push_back(no_seek);
    }
    if (!fix_t) candidates.push_back({kXfer});
    if (!fix_o) candidates.push_back({kOne});
  }

  for (const std::vector<Feat>& feats : candidates) {
    if (feats.empty()) continue;
    int k = static_cast<int>(feats.size());
    double a[3][3] = {};
    double rhs[3] = {};
    for (int i = 0; i < k; ++i) {
      rhs[i] = target[feats[static_cast<std::size_t>(i)]];
      for (int j = 0; j < k; ++j)
        a[i][j] = gram[feats[static_cast<std::size_t>(i)]]
                      [feats[static_cast<std::size_t>(j)]];
    }
    double x[3] = {};
    if (!solve_normal(a, rhs, k, x)) continue;
    Model fit = m;
    if (!fix_o) fit.overhead_ns = 0.0;
    if (!fix_s) fit.seek_ns = 0.0;
    if (!fix_t) fit.transfer_ns_per_block = 0.0;
    for (int i = 0; i < k; ++i) {
      double v = std::max(0.0, x[i]);
      switch (feats[static_cast<std::size_t>(i)]) {
        case kOne: fit.overhead_ns = v; break;
        case kSeek: fit.seek_ns = v; break;
        case kXfer: fit.transfer_ns_per_block = v; break;
      }
    }
    return fit;
  }
  return m;  // every fit degenerate: fixed/zero parameters
}

void CostConformance::refit_if_stale_locked() const {
  // Refit lazily so the live divergence probe tracks a drifting workload
  // without paying a solve per batch.
  if (fitted_ && batches_ - fitted_at_ < 256) return;
  model_ = fit_locked();
  fitted_at_ = batches_;
  fitted_ = true;
}

double CostConformance::recent_ratio_locked() const {
  if (window_.size() < kMinRatioBatches) return 1.0;
  refit_if_stale_locked();
  double measured = 0.0, predicted = 0.0;
  for (const BatchRecord& r : window_) {
    measured += static_cast<double>(r.exec_ns);
    predicted += predict(model_, r.runs, r.blocks);
  }
  if (predicted <= 0.0 || measured <= 0.0) return 1.0;
  return measured / predicted;
}

double CostConformance::recent_ratio() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recent_ratio_locked();
}

Json CostConformance::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  model_ = fit_locked();  // report always reflects every recorded batch
  fitted_at_ = batches_;
  fitted_ = true;

  Json j = Json::object();
  j.set("schema", kSchema);
  j.set("version", kVersion);
  j.set("batches", batches_);
  j.set("rounds", rounds_);
  j.set("blocks", blocks_);

  Json model = Json::object();
  model.set("overhead_ns", model_.overhead_ns);
  model.set("seek_ns", model_.seek_ns);
  model.set("transfer_ns_per_block", model_.transfer_ns_per_block);
  model.set("calibrated", opt_.calibrate);
  Json fixed = Json::object();
  fixed.set("overhead_ns", opt_.overhead_ns >= 0);
  fixed.set("seek_ns", opt_.seek_ns >= 0);
  fixed.set("transfer_ns_per_block", opt_.transfer_ns_per_block >= 0);
  model.set("fixed", std::move(fixed));
  j.set("model", std::move(model));

  Json phases = Json::object();
  phases.set("plan", plan_.to_json());
  phases.set("queue", queue_.to_json());
  phases.set("transfer", transfer_.to_json());
  phases.set("join", join_.to_json());
  phases.set("overlap", overlap_.to_json());
  phases.set("reconcile", reconcile_.to_json());
  phases.set("exec", exec_.to_json());
  phases.set("total", total_.to_json());
  j.set("phases", std::move(phases));

  // plan/exec/reconcile are disjoint sub-intervals of total on the same
  // clock, so attributed <= total up to timer granularity; the validator
  // gates the unattributed fraction.
  std::uint64_t attributed = plan_.sum() + exec_.sum() + reconcile_.sum();
  std::uint64_t total = total_.sum();
  std::uint64_t unattributed = total > attributed ? total - attributed : 0;
  Json attribution = Json::object();
  attribution.set("attributed_ns", attributed);
  attribution.set("total_ns", total);
  attribution.set("unattributed_ns", unattributed);
  attribution.set("unattributed_frac",
                  total ? static_cast<double>(unattributed) /
                              static_cast<double>(total)
                        : 0.0);
  j.set("attribution", std::move(attribution));

  Json classes = Json::array();
  for (const ClassAccum& acc : classes_) {
    Json c = Json::object();
    c.set("name", acc.name);
    c.set("batches", acc.batches);
    c.set("rounds", acc.rounds);
    c.set("blocks", acc.blocks);
    double predicted = model_.overhead_ns * static_cast<double>(acc.batches) +
                       model_.seek_ns * acc.sum_runs +
                       model_.transfer_ns_per_block * acc.sum_blocks;
    c.set("measured_ns", acc.exec_ns);
    c.set("predicted_ns", predicted);
    c.set("ratio", predicted > 0.0 && acc.exec_ns > 0
                       ? static_cast<double>(acc.exec_ns) / predicted
                       : 1.0);
    classes.push_back(std::move(c));
  }
  j.set("classes", std::move(classes));

  // Worst-K divergent batches over the recent window (bounded memory — the
  // list is windowed, not lifetime-global; see docs/observability.md).
  std::vector<const BatchRecord*> ranked;
  ranked.reserve(window_.size());
  for (const BatchRecord& r : window_) ranked.push_back(&r);
  auto divergence = [&](const BatchRecord& r) {
    double p = std::max(1.0, predict(model_, r.runs, r.blocks));
    double m = std::max(1.0, static_cast<double>(r.exec_ns));
    double ratio = m / p;
    return ratio >= 1.0 ? ratio : 1.0 / ratio;
  };
  std::size_t k = std::min(opt_.worst_k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<long>(k),
                    ranked.end(),
                    [&](const BatchRecord* a, const BatchRecord* b) {
                      return divergence(*a) > divergence(*b);
                    });
  std::uint64_t within = 0;
  for (const BatchRecord& r : window_)
    if (divergence(r) <= 2.0) ++within;
  Json worst = Json::array();
  for (std::size_t i = 0; i < k; ++i) {
    const BatchRecord& r = *ranked[i];
    double p = predict(model_, r.runs, r.blocks);
    Json w = Json::object();
    w.set("class", classes_[r.cls].name);
    w.set("seq", r.seq);
    w.set("rounds", r.rounds);
    w.set("blocks", static_cast<std::uint64_t>(r.blocks));
    w.set("runs", static_cast<std::uint64_t>(r.runs));
    w.set("measured_ns", r.exec_ns);
    w.set("predicted_ns", p);
    w.set("ratio", p > 0.0 ? static_cast<double>(r.exec_ns) / p : 1.0);
    worst.push_back(std::move(w));
  }
  j.set("worst", std::move(worst));

  Json fit = Json::object();
  fit.set("window_batches", static_cast<std::uint64_t>(window_.size()));
  fit.set("ratio", recent_ratio_locked());
  fit.set("within_2x_frac",
          window_.empty() ? 1.0
                          : static_cast<double>(within) /
                                static_cast<double>(window_.size()));
  j.set("fit", std::move(fit));
  return j;
}

Json CostConformance::telemetry_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json j = Json::object();
  j.set("batches", batches_);
  j.set("recent_ratio", recent_ratio_locked());
  Json phase = Json::object();
  phase.set("plan", plan_.sum());
  phase.set("queue", queue_.sum());
  phase.set("transfer", transfer_.sum());
  phase.set("join", join_.sum());
  phase.set("overlap", overlap_.sum());
  phase.set("reconcile", reconcile_.sum());
  phase.set("exec", exec_.sum());
  phase.set("total", total_.sum());
  j.set("phase_ns", std::move(phase));
  return j;
}

std::string CostConformance::render() const {
  std::lock_guard<std::mutex> lock(mutex_);
  refit_if_stale_locked();
  std::ostringstream os;
  std::uint64_t total = total_.sum();
  os << "round phases (" << batches_ << " batches, " << rounds_
     << " rounds):\n";
  char line[160];
  auto row = [&](const char* name, const LatencyHistogram& h) {
    std::snprintf(line, sizeof line,
                  "  %-9s %8.1f ms  %5.1f%%  mean %8.1f us  p95 %8.1f us\n",
                  name, static_cast<double>(h.sum()) / 1e6,
                  pct(h.sum(), total), h.mean() / 1e3,
                  static_cast<double>(h.p95()) / 1e3);
    os << line;
  };
  row("plan", plan_);
  row("exec", exec_);
  row("  queue", queue_);
  row("  transfer", transfer_);
  row("  join", join_);
  row("  overlap", overlap_);
  row("reconcile", reconcile_);
  row("total", total_);
  std::snprintf(line, sizeof line,
                "model: %.2f us + %.2f us/run + %.3f us/block (%s), "
                "recent ratio %.2f\n",
                model_.overhead_ns / 1e3, model_.seek_ns / 1e3,
                model_.transfer_ns_per_block / 1e3,
                opt_.calibrate ? "calibrated" : "configured",
                recent_ratio_locked());
  os << line;
  return os.str();
}

std::string CostConformance::render_line() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = total_.sum();
  char line[160];
  std::snprintf(line, sizeof line,
                "phases plan %.0f%% exec %.0f%% reconcile %.0f%% | "
                "model ratio %.2f (%llu batches)",
                pct(plan_.sum(), total), pct(exec_.sum(), total),
                pct(reconcile_.sum(), total), recent_ratio_locked(),
                static_cast<unsigned long long>(batches_));
  return line;
}

void set_default_cost_conformance(std::shared_ptr<CostConformance> cc) {
  std::lock_guard<std::mutex> lock(g_default_mutex);
  g_default = std::move(cc);
}

std::shared_ptr<CostConformance> default_cost_conformance() {
  std::lock_guard<std::mutex> lock(g_default_mutex);
  return g_default;
}

}  // namespace pddict::obs
