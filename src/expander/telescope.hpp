// The telescope product of expanders (paper, Lemma 10) and the trivial
// striping adapter (end of Section 5).
//
// Lemma 10: if F1 : U1 × [d1] → V1 is a (c1·v1/d1, ε1)-expander and
// F2 : V1 × [d2] → V2 is a (c2·v2/d2, ε2)-expander with c1 ≥ c2, then
// F2(F1(x, e1), e2) — with appropriate re-mapping of multi-edges — is a
// (c2·v2/(d1·d2), 1 − (1−ε1)(1−ε2))-expander of degree d1·d2.
//
// Multi-edge re-mapping: evaluating one neighbor requires evaluating all
// neighbors of x (the paper notes this does not hurt the dictionaries, which
// always evaluate all neighbors); duplicates beyond the first occurrence are
// re-mapped by a fixed rule (linear probing to the next value not already in
// the neighbor set), which cannot decrease expansion.
#pragma once

#include <cstdint>
#include <memory>

#include "expander/neighbor_function.hpp"

namespace pddict::expander {

class TelescopeProduct final : public NeighborFunction {
 public:
  /// Both factors are held by shared_ptr so recursively built families
  /// (Lemma 11) can share base expanders.
  TelescopeProduct(std::shared_ptr<const NeighborFunction> first,
                   std::shared_ptr<const NeighborFunction> second);

  std::uint64_t left_size() const override { return first_->left_size(); }
  std::uint64_t right_size() const override { return second_->right_size(); }
  std::uint32_t degree() const override {
    return first_->degree() * second_->degree();
  }

  std::uint64_t neighbor(std::uint64_t x, std::uint32_t i) const override {
    return neighbors(x)[i];
  }

  /// All d1·d2 neighbors, de-duplicated by the fixed re-mapping rule.
  std::vector<std::uint64_t> neighbors(std::uint64_t x) const override;

 private:
  std::shared_ptr<const NeighborFunction> first_;
  std::shared_ptr<const NeighborFunction> second_;
};

/// Trivial striping of an arbitrary expander (paper, end of Section 5):
/// make a copy V_i of the right side for each stripe i; the i-th neighbor of
/// x is F(x, i) inside copy V_i. Right side grows by a factor d — the space
/// penalty the paper calls out for using unstriped explicit constructions in
/// the parallel disk model.
class TrivialStripe final : public NeighborFunction {
 public:
  explicit TrivialStripe(std::shared_ptr<const NeighborFunction> base);

  std::uint64_t left_size() const override { return base_->left_size(); }
  std::uint64_t right_size() const override {
    return base_->right_size() * base_->degree();
  }
  std::uint32_t degree() const override { return base_->degree(); }
  bool striped() const override { return true; }

  std::uint64_t neighbor(std::uint64_t x, std::uint32_t i) const override {
    return static_cast<std::uint64_t>(i) * base_->right_size() +
           base_->neighbor(x, i);
  }

 private:
  std::shared_ptr<const NeighborFunction> base_;
};

}  // namespace pddict::expander
