#include "expander/preprocessed.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/prng.hpp"

namespace pddict::expander {

PreprocessedExpander::PreprocessedExpander(std::uint64_t left_size,
                                           std::uint64_t right_size,
                                           std::uint32_t degree,
                                           double epsilon, std::uint64_t seed,
                                           unsigned c)
    : u_(left_size), v_(right_size), d_(degree) {
  if (degree == 0 || right_size == 0)
    throw std::invalid_argument("degenerate expander dimensions");
  if (epsilon <= 0.0 || epsilon >= 1.0)
    throw std::invalid_argument("epsilon must be in (0,1)");
  double ratio = static_cast<double>(u_) / static_cast<double>(v_);
  double words = std::pow(std::max(ratio, 1.0), c) / std::pow(epsilon, c);
  auto budget = static_cast<std::uint64_t>(std::ceil(words));
  budget = std::clamp<std::uint64_t>(budget, 64, std::uint64_t{1} << 22);
  table_.resize(budget);
  util::SplitMix64 rng(seed);
  for (auto& w : table_) w = rng.next();
}

std::uint64_t PreprocessedExpander::neighbor(std::uint64_t x,
                                             std::uint32_t i) const {
  // Multi-round table-lookup mixing: each round folds one pre-processed word
  // into the state, so the output genuinely depends on the stored tables.
  const std::uint64_t w = table_.size();
  std::uint64_t y = util::mix64(x ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
  for (unsigned round = 0; round < 4; ++round) {
    std::uint64_t t = table_[(y + round) % w];
    y = util::mix64(y ^ t ^ (static_cast<std::uint64_t>(i) << 32));
  }
  return y % v_;
}

}  // namespace pddict::expander
