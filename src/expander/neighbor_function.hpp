// Bipartite left-regular graphs as neighbor functions (paper, Section 2).
//
// A graph G = (U, V, E) with every left vertex of degree d is represented by
// its neighbor function F : U × [d] → V; F(x, i) is the i-th neighbor of x.
// Definition 1: G is a (d, ε, δ)-expander if every S ⊆ U has at least
// min((1−ε)d|S|, (1−δ)|V|) neighbors. Definition 2: G is an (N, ε)-expander
// if every S with |S| ≤ N has at least (1−ε)d|S| neighbors.
//
// The parallel disk model additionally needs *striped* graphs: the right side
// is partitioned into d equal stripes and every left vertex has exactly one
// neighbor per stripe, so the d candidate blocks of a key live on d distinct
// disks and can be fetched in one parallel I/O.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace pddict::expander {

/// Parameters of an (N, ε)-expander guarantee (Definition 2).
struct ExpanderParams {
  std::uint64_t left_size = 0;   // u = |U|
  std::uint64_t right_size = 0;  // v = |V|
  std::uint32_t degree = 0;      // d
  std::uint64_t expansion_bound = 0;  // N: sets up to this size expand
  double epsilon = 0.0;               // ε
};

class NeighborFunction {
 public:
  virtual ~NeighborFunction() = default;

  virtual std::uint64_t left_size() const = 0;   // u
  virtual std::uint64_t right_size() const = 0;  // v
  virtual std::uint32_t degree() const = 0;      // d

  /// The i-th neighbor of left vertex x, 0 <= i < degree().
  virtual std::uint64_t neighbor(std::uint64_t x, std::uint32_t i) const = 0;

  /// Whether neighbor(x, i) always lies in stripe i (see stripe helpers).
  virtual bool striped() const { return false; }

  /// All d neighbors of x, in stripe order. Implementations where computing
  /// one neighbor requires computing all (the telescope product) override
  /// this for efficiency.
  virtual std::vector<std::uint64_t> neighbors(std::uint64_t x) const {
    std::vector<std::uint64_t> out(degree());
    for (std::uint32_t i = 0; i < degree(); ++i) out[i] = neighbor(x, i);
    return out;
  }

  // ---- stripe geometry (valid when striped()) ----

  std::uint64_t stripe_size() const { return right_size() / degree(); }
  std::uint64_t stripe_begin(std::uint32_t i) const {
    return static_cast<std::uint64_t>(i) * stripe_size();
  }
  /// Striped explicit form (paper, Section 2): Γ(x) returned as (i, j) where
  /// i is the stripe index and j the index within the stripe.
  std::uint64_t stripe_local(std::uint64_t x, std::uint32_t i) const {
    assert(striped());
    std::uint64_t y = neighbor(x, i);
    assert(y >= stripe_begin(i) && y < stripe_begin(i) + stripe_size());
    return y - stripe_begin(i);
  }
  /// All d stripe-local indices of x at once into out[0..degree()).
  /// Implementations whose hash family evaluates the d functions in a batch
  /// (SeededExpander via the SIMD kernels) override this; results must equal
  /// stripe_local(x, i) exactly.
  virtual void stripe_locals(std::uint64_t x, std::uint64_t* out) const {
    for (std::uint32_t i = 0; i < degree(); ++i) out[i] = stripe_local(x, i);
  }
};

}  // namespace pddict::expander
