// Base expanders backed by pre-processed internal memory (paper, Theorem 9 /
// Corollary 1).
//
// Theorem 9 (Capalbo et al. + probabilistic step): an (Θ(v/d · ε), ε)-expander
// F : U × [d] → V computable in polylog time from s = poly(u/v, 1/ε) bits of
// pre-processed tables, which "can be found probabilistically in time
// poly(s)".
//
// Substitution record (DESIGN.md §3.3): we realize the probabilistic step by
// filling exactly the budgeted number of words with seeded randomness and
// *using them* during evaluation (multi-round table-lookup mixing, i.e. a
// tabulation-style hash). Fixing the seed after a verification pass makes the
// object deterministic, which is precisely what "found probabilistically, then
// hard-wired" means operationally. The internal-memory accounting — the
// quantity Theorem 12's space bound is about — follows the paper's formula.
#pragma once

#include <cstdint>
#include <vector>

#include "expander/neighbor_function.hpp"

namespace pddict::expander {

class PreprocessedExpander final : public NeighborFunction {
 public:
  /// Budgeted words: ceil((u/v)^c / ε^c), clamped to [64, 1<<22]. `c` is the
  /// fixed constant of Corollary 1 (default 2).
  PreprocessedExpander(std::uint64_t left_size, std::uint64_t right_size,
                       std::uint32_t degree, double epsilon,
                       std::uint64_t seed, unsigned c = 2);

  std::uint64_t left_size() const override { return u_; }
  std::uint64_t right_size() const override { return v_; }
  std::uint32_t degree() const override { return d_; }

  std::uint64_t neighbor(std::uint64_t x, std::uint32_t i) const override;

  /// Words of pre-processed internal memory this expander occupies — the
  /// quantity Theorem 12 bounds by O(N^β).
  std::uint64_t internal_memory_words() const { return table_.size(); }

 private:
  std::uint64_t u_, v_;
  std::uint32_t d_;
  std::vector<std::uint64_t> table_;
};

}  // namespace pddict::expander
