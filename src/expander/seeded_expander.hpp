// Seeded pseudorandom striped expander.
//
// Substitution record (see DESIGN.md §3.1): optimal *explicit* unbalanced
// expanders of degree O(log u) are not known; the paper assumes access to one
// "for free" and notes (§6) that "practical and truly simple constructions
// could exist, e.g., a subset of d functions from some efficient family of
// hash functions". This class is exactly that instantiation: d independent
// seeded mixing functions, one per stripe. Random striped graphs of these
// parameters are (N, ε)-expanders with high probability (§2), and
// expander/verify.hpp measures the expansion empirically.
#pragma once

#include <cstdint>

#include "expander/neighbor_function.hpp"
#include "util/hash.hpp"

namespace pddict::expander {

class SeededExpander final : public NeighborFunction {
 public:
  /// `right_size` must be a multiple of `degree` (stripe structure).
  SeededExpander(std::uint64_t left_size, std::uint64_t right_size,
                 std::uint32_t degree, std::uint64_t seed);

  std::uint64_t left_size() const override { return u_; }
  std::uint64_t right_size() const override { return v_; }
  std::uint32_t degree() const override { return d_; }
  bool striped() const override { return true; }

  std::uint64_t neighbor(std::uint64_t x, std::uint32_t i) const override {
    return stripe_begin(i) + util::salted_mix(x, salt_base_ + i) % stripe_size();
  }

  /// Batched forms: the d salted mixes are data-parallel (consecutive salts,
  /// same key), so they evaluate through the SIMD hash kernel — one lane per
  /// seeded function — with bit-identical results to neighbor().
  std::vector<std::uint64_t> neighbors(std::uint64_t x) const override;
  void stripe_locals(std::uint64_t x, std::uint64_t* out) const override;

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t u_, v_;
  std::uint32_t d_;
  std::uint64_t seed_;
  std::uint64_t salt_base_;
};

/// Degree recommended by the paper for a universe of size u: d = O(log u).
/// `factor` scales the constant (default 1 → d = ceil(log2 u), min 8).
std::uint32_t recommended_degree(std::uint64_t universe_size,
                                 double factor = 1.0);

}  // namespace pddict::expander
