#include "expander/semi_explicit.hpp"

#include <cmath>
#include <stdexcept>

#include "expander/telescope.hpp"
#include "util/math.hpp"

namespace pddict::expander {

namespace {

std::uint32_t base_degree(std::uint64_t top_universe, double eps_prime) {
  // Corollary 1: per-level degree poly(log u / ε′). Linear suffices for the
  // seeded realization; the growth *shape* (polylog per level, multiplied
  // across k = O(1) levels) is what Theorem 12 is about.
  double d = std::log2(static_cast<double>(top_universe)) / eps_prime;
  auto v = static_cast<std::uint32_t>(std::ceil(d));
  return v < 4 ? 4 : v;
}

struct Plan {
  std::vector<std::uint64_t> sizes;  // u_0, u_1, ..., u_k (right sides)
  std::uint32_t levels = 0;
};

Plan plan_recursion(const SemiExplicitParams& p, double eps_prime) {
  Plan plan;
  plan.sizes.push_back(p.universe_size);
  const double q = 1.0 - p.beta / static_cast<double>(p.c);
  std::uint32_t d_base = base_degree(p.universe_size, eps_prime);
  std::uint64_t d_total = 1;
  std::uint64_t cur = p.universe_size;
  while (plan.levels < p.max_levels) {
    double next_d = std::pow(static_cast<double>(cur), q);
    auto next = static_cast<std::uint64_t>(std::ceil(next_d));
    if (next >= cur) next = cur - 1;  // force progress on tiny universes
    if (next < 2) next = 2;
    // Telescope de-duplication needs composed degree <= |V|; stop before
    // violating it.
    if (d_total * d_base > next) break;
    d_total *= d_base;
    plan.sizes.push_back(next);
    ++plan.levels;
    cur = next;
    if (cur <= p.capacity * d_total) break;  // reached v = O(N d)
  }
  return plan;
}

}  // namespace

SemiExplicitExpander::SemiExplicitExpander(const SemiExplicitParams& p) {
  if (p.universe_size < 2 || p.capacity < 1)
    throw std::invalid_argument("degenerate semi-explicit parameters");
  if (p.beta <= 0.0 || p.beta >= 1.0)
    throw std::invalid_argument("beta must be in (0,1)");
  if (p.epsilon <= 0.0 || p.epsilon >= 1.0)
    throw std::invalid_argument("epsilon must be in (0,1)");

  // Fixpoint over the level count: ε′ depends on k, k (weakly) on ε′.
  double eps_prime = p.epsilon;
  Plan plan = plan_recursion(p, eps_prime);
  for (int iter = 0; iter < 4; ++iter) {
    std::uint32_t k = plan.levels == 0 ? 1 : plan.levels;
    double next_eps = 1.0 - std::pow(1.0 - p.epsilon, 1.0 / k);
    Plan next_plan = plan_recursion(p, next_eps);
    bool stable = next_plan.levels == plan.levels;
    eps_prime = next_eps;
    plan = next_plan;
    if (stable) break;
  }
  if (plan.levels == 0)
    throw std::invalid_argument(
        "semi-explicit construction cannot make progress (universe too small "
        "relative to capacity*degree)");
  eps_prime_ = eps_prime;

  std::uint32_t d_base = base_degree(p.universe_size, eps_prime_);
  std::shared_ptr<const NeighborFunction> top;
  for (std::uint32_t i = 0; i < plan.levels; ++i) {
    auto base = std::make_shared<PreprocessedExpander>(
        plan.sizes[i], plan.sizes[i + 1], d_base, eps_prime_,
        p.seed + 0x1000 * (i + 1), p.c);
    levels_.push_back({plan.sizes[i], plan.sizes[i + 1], d_base,
                       base->internal_memory_words()});
    memory_words_ += base->internal_memory_words();
    if (!top) {
      top = base;
    } else {
      top = std::make_shared<TelescopeProduct>(top, base);
    }
  }
  top_ = std::move(top);
}

}  // namespace pddict::expander
