// Explicit adjacency-table bipartite graphs.
//
// Stores the full neighbor table F(x, i). Used for (i) truly random graphs at
// small scale, where the expansion lemmas can be verified exhaustively, and
// (ii) handcrafted graphs in tests that need precise control over neighbor
// structure (e.g., forcing shared neighborhoods to exercise failure paths).
#pragma once

#include <cstdint>
#include <vector>

#include "expander/neighbor_function.hpp"

namespace pddict::expander {

class TableExpander final : public NeighborFunction {
 public:
  /// `table[x * degree + i]` is the i-th neighbor of x.
  TableExpander(std::uint64_t right_size, std::uint32_t degree,
                std::vector<std::uint64_t> table, bool striped);

  /// Uniformly random graph. If `striped`, neighbor i is uniform in stripe i
  /// (right_size must be a multiple of degree); else uniform in [right_size).
  static TableExpander random(std::uint64_t left_size, std::uint64_t right_size,
                              std::uint32_t degree, bool striped,
                              std::uint64_t seed);

  std::uint64_t left_size() const override { return table_.size() / degree_; }
  std::uint64_t right_size() const override { return v_; }
  std::uint32_t degree() const override { return degree_; }
  bool striped() const override { return striped_; }

  std::uint64_t neighbor(std::uint64_t x, std::uint32_t i) const override {
    return table_[x * degree_ + i];
  }

 private:
  std::uint64_t v_;
  std::uint32_t degree_;
  bool striped_;
  std::vector<std::uint64_t> table_;
};

}  // namespace pddict::expander
