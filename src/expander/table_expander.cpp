#include "expander/table_expander.hpp"

#include <cassert>
#include <stdexcept>

#include "util/prng.hpp"

namespace pddict::expander {

TableExpander::TableExpander(std::uint64_t right_size, std::uint32_t degree,
                             std::vector<std::uint64_t> table, bool striped)
    : v_(right_size), degree_(degree), striped_(striped),
      table_(std::move(table)) {
  if (degree == 0) throw std::invalid_argument("degree must be >= 1");
  if (table_.size() % degree != 0)
    throw std::invalid_argument("table size not a multiple of degree");
  if (striped && v_ % degree != 0)
    throw std::invalid_argument("striped graph needs v divisible by d");
  for (std::size_t idx = 0; idx < table_.size(); ++idx) {
    std::uint64_t y = table_[idx];
    if (y >= v_) throw std::invalid_argument("neighbor out of range");
    if (striped) {
      std::uint64_t stripe = (idx % degree) * (v_ / degree);
      if (y < stripe || y >= stripe + v_ / degree)
        throw std::invalid_argument("neighbor violates stripe structure");
    }
  }
}

TableExpander TableExpander::random(std::uint64_t left_size,
                                    std::uint64_t right_size,
                                    std::uint32_t degree, bool striped,
                                    std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  std::vector<std::uint64_t> table(left_size * degree);
  if (striped) {
    std::uint64_t s = right_size / degree;
    for (std::uint64_t x = 0; x < left_size; ++x)
      for (std::uint32_t i = 0; i < degree; ++i)
        table[x * degree + i] = i * s + rng.next_below(s);
  } else {
    for (auto& t : table) t = rng.next_below(right_size);
  }
  return TableExpander(right_size, degree, std::move(table), striped);
}

}  // namespace pddict::expander
