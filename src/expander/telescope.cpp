#include "expander/telescope.hpp"

#include <stdexcept>
#include <unordered_set>

namespace pddict::expander {

TelescopeProduct::TelescopeProduct(
    std::shared_ptr<const NeighborFunction> first,
    std::shared_ptr<const NeighborFunction> second)
    : first_(std::move(first)), second_(std::move(second)) {
  if (!first_ || !second_) throw std::invalid_argument("null factor");
  if (first_->right_size() > second_->left_size())
    throw std::invalid_argument(
        "telescope product: V1 must embed into the left side of F2");
  if (static_cast<std::uint64_t>(first_->degree()) * second_->degree() >
      second_->right_size())
    throw std::invalid_argument(
        "telescope product: composed degree exceeds |V2|, de-duplication "
        "impossible");
}

std::vector<std::uint64_t> TelescopeProduct::neighbors(std::uint64_t x) const {
  const std::uint32_t d1 = first_->degree();
  const std::uint32_t d2 = second_->degree();
  const std::uint64_t v2 = second_->right_size();
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(d1) * d2);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(d1) * d2 * 2);
  std::vector<std::uint64_t> mid = first_->neighbors(x);
  for (std::uint32_t e1 = 0; e1 < d1; ++e1) {
    std::vector<std::uint64_t> ys = second_->neighbors(mid[e1]);
    for (std::uint32_t e2 = 0; e2 < d2; ++e2) {
      std::uint64_t y = ys[e2];
      // Fixed re-mapping rule for multi-edges: probe forward to the first
      // value not already used as a neighbor of x. Deterministic in x, and
      // can only enlarge Γ(x), so expansion is preserved (Lemma 10).
      while (!seen.insert(y).second) y = (y + 1) % v2;
      out.push_back(y);
    }
  }
  return out;
}

TrivialStripe::TrivialStripe(std::shared_ptr<const NeighborFunction> base)
    : base_(std::move(base)) {
  if (!base_) throw std::invalid_argument("null base expander");
}

}  // namespace pddict::expander
