#include "expander/verify.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "util/prng.hpp"

namespace pddict::expander {

namespace {

void fold_set(ExpansionReport& report, const NeighborFunction& g,
              std::span<const std::uint64_t> set) {
  if (set.empty()) return;
  double ratio = static_cast<double>(neighborhood_size(g, set)) /
                 (static_cast<double>(g.degree()) * set.size());
  ++report.sets_checked;
  if (ratio < report.min_ratio) {
    report.min_ratio = ratio;
    report.worst_set_size = set.size();
  }
}

}  // namespace

std::uint64_t neighborhood_size(const NeighborFunction& g,
                                std::span<const std::uint64_t> set) {
  std::unordered_set<std::uint64_t> gamma;
  gamma.reserve(set.size() * g.degree() * 2);
  for (std::uint64_t x : set)
    for (std::uint64_t y : g.neighbors(x)) gamma.insert(y);
  return gamma.size();
}

ExpansionReport check_expansion_exhaustive(const NeighborFunction& g,
                                           std::uint64_t max_set_size) {
  const std::uint64_t u = g.left_size();
  if (u > 24)
    throw std::invalid_argument("exhaustive check limited to u <= 24");
  ExpansionReport report;
  std::vector<std::uint64_t> set;
  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << u); ++mask) {
    auto size = static_cast<std::uint64_t>(__builtin_popcountll(mask));
    if (size > max_set_size) continue;
    set.clear();
    for (std::uint64_t x = 0; x < u; ++x)
      if (mask & (std::uint64_t{1} << x)) set.push_back(x);
    fold_set(report, g, set);
  }
  return report;
}

ExpansionReport check_expansion_sampled(const NeighborFunction& g,
                                        std::span<const std::uint64_t> set_sizes,
                                        std::uint32_t samples,
                                        std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  ExpansionReport report;
  std::vector<std::uint64_t> set;
  for (std::uint64_t size : set_sizes) {
    for (std::uint32_t s = 0; s < samples; ++s) {
      std::unordered_set<std::uint64_t> chosen;
      while (chosen.size() < size) chosen.insert(rng.next_below(g.left_size()));
      set.assign(chosen.begin(), chosen.end());
      fold_set(report, g, set);
    }
  }
  return report;
}

ExpansionReport check_expansion_greedy(const NeighborFunction& g,
                                       std::uint64_t target_set_size,
                                       std::uint32_t pool_size,
                                       std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  ExpansionReport report;
  std::unordered_set<std::uint64_t> in_set;
  std::unordered_set<std::uint64_t> gamma;
  std::vector<std::uint64_t> set;
  while (set.size() < target_set_size) {
    std::uint64_t best = 0;
    std::int64_t best_overlap = -1;
    for (std::uint32_t c = 0; c < pool_size; ++c) {
      std::uint64_t cand = rng.next_below(g.left_size());
      if (in_set.contains(cand)) continue;
      std::int64_t overlap = 0;
      for (std::uint64_t y : g.neighbors(cand))
        if (gamma.contains(y)) ++overlap;
      if (overlap > best_overlap) {
        best_overlap = overlap;
        best = cand;
      }
    }
    if (best_overlap < 0) break;  // pool exhausted (tiny universes)
    in_set.insert(best);
    set.push_back(best);
    for (std::uint64_t y : g.neighbors(best)) gamma.insert(y);
    // Measure the ratio as the adversarial set grows.
    double ratio = static_cast<double>(gamma.size()) /
                   (static_cast<double>(g.degree()) * set.size());
    ++report.sets_checked;
    if (ratio < report.min_ratio) {
      report.min_ratio = ratio;
      report.worst_set_size = set.size();
    }
  }
  return report;
}

std::vector<std::uint64_t> unique_neighbor_nodes(
    const NeighborFunction& g, std::span<const std::uint64_t> set) {
  std::unordered_map<std::uint64_t, std::uint32_t> incidence;
  incidence.reserve(set.size() * g.degree() * 2);
  for (std::uint64_t x : set)
    for (std::uint64_t y : g.neighbors(x)) ++incidence[y];
  std::vector<std::uint64_t> phi;
  for (const auto& [y, count] : incidence)
    if (count == 1) phi.push_back(y);
  std::sort(phi.begin(), phi.end());
  return phi;
}

std::vector<std::uint32_t> unique_neighbor_counts(
    const NeighborFunction& g, std::span<const std::uint64_t> set) {
  std::unordered_map<std::uint64_t, std::uint32_t> incidence;
  incidence.reserve(set.size() * g.degree() * 2);
  for (std::uint64_t x : set)
    for (std::uint64_t y : g.neighbors(x)) ++incidence[y];
  std::vector<std::uint32_t> counts;
  counts.reserve(set.size());
  for (std::uint64_t x : set) {
    std::uint32_t c = 0;
    for (std::uint64_t y : g.neighbors(x))
      if (incidence.at(y) == 1) ++c;
    counts.push_back(c);
  }
  return counts;
}

double lemma5_fraction(const NeighborFunction& g,
                       std::span<const std::uint64_t> set, double lambda) {
  if (set.empty()) return 1.0;
  auto counts = unique_neighbor_counts(g, set);
  double threshold = (1.0 - lambda) * g.degree();
  std::uint64_t good = 0;
  for (std::uint32_t c : counts)
    if (static_cast<double>(c) >= threshold) ++good;
  return static_cast<double>(good) / static_cast<double>(set.size());
}

}  // namespace pddict::expander
