// Empirical verification of expansion properties.
//
// The dictionaries' guarantees rest on Definition 2 ((N, ε)-expansion) and on
// the unique-neighbor lemmas (Lemma 4: |Φ(S)| ≥ (1−2ε)d|S|; Lemma 5: the set
// S′ of vertices with ≥ (1−λ)d unique neighbors has |S′| ≥ (1 − 2ε/λ)|S|).
// Because our graphs are seeded pseudorandom stand-ins for optimal explicit
// expanders (DESIGN.md §3.1), this module is how the reproduction validates
// that the substitution preserves the behaviour the proofs rely on: exhaustive
// checks at toy scale, sampled and greedy-adversarial checks at realistic
// scale, and direct measurement of the Lemma 4/5 quantities.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "expander/neighbor_function.hpp"

namespace pddict::expander {

/// |Γ(S)| for an explicit subset S of left vertices.
std::uint64_t neighborhood_size(const NeighborFunction& g,
                                std::span<const std::uint64_t> set);

struct ExpansionReport {
  std::uint64_t sets_checked = 0;
  double min_ratio = 1.0;          // min over S of |Γ(S)| / (d·|S|)
  std::uint64_t worst_set_size = 0;
  /// True iff every checked set satisfied |Γ(S)| >= (1−ε)d|S|.
  bool meets(double epsilon) const { return min_ratio >= 1.0 - epsilon; }
};

/// Checks every subset of U with 1 <= |S| <= max_set_size. Exponential —
/// only for toy graphs (u <= ~24).
ExpansionReport check_expansion_exhaustive(const NeighborFunction& g,
                                           std::uint64_t max_set_size);

/// Random subsets: `samples` sets of each size in `set_sizes`, drawn from U.
ExpansionReport check_expansion_sampled(const NeighborFunction& g,
                                        std::span<const std::uint64_t> set_sizes,
                                        std::uint32_t samples,
                                        std::uint64_t seed);

/// Greedy adversarial sets: grow S by repeatedly adding, from a random
/// candidate pool, the vertex whose neighborhood overlaps Γ(S) the most —
/// the natural attack on pseudorandom expansion.
ExpansionReport check_expansion_greedy(const NeighborFunction& g,
                                       std::uint64_t target_set_size,
                                       std::uint32_t pool_size,
                                       std::uint64_t seed);

// ---- unique-neighbor machinery (Lemmas 4 and 5), in-memory reference ----

/// Φ(S): right vertices with exactly one incident edge from S (sorted).
/// Multi-edges from a single x (possible in non-striped pseudorandom graphs)
/// count with multiplicity, matching the multiset semantics of the paper's
/// construction.
std::vector<std::uint64_t> unique_neighbor_nodes(
    const NeighborFunction& g, std::span<const std::uint64_t> set);

/// For each x in `set` (same order), |Γ(x) ∩ Φ(S)|.
std::vector<std::uint32_t> unique_neighbor_counts(
    const NeighborFunction& g, std::span<const std::uint64_t> set);

/// |S′| / |S| where S′ = {x ∈ S : |Γ(x) ∩ Φ(S)| ≥ (1−λ)d} (Lemma 5).
double lemma5_fraction(const NeighborFunction& g,
                       std::span<const std::uint64_t> set, double lambda);

}  // namespace pddict::expander
