// The semi-explicit expander construction of Section 5 (Theorem 12).
//
// For u = poly(N) and any constant 0 < β < 1, builds an (N, ε)-expander
// F : U × [d] → V with d = polylog(u) using O(N^β) words of pre-processed
// internal memory, by recursively applying the telescope product (Lemma 10)
// to a family of slightly-unbalanced base expanders (Corollary 1 /
// Lemma 11): u_{i+1} = u_i^{1 − β′/c}, per-level error ε′ with
// (1 − ε) = (1 − ε′)^k, stopping as soon as the right side is ≤ N·d.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "expander/neighbor_function.hpp"
#include "expander/preprocessed.hpp"

namespace pddict::expander {

struct SemiExplicitParams {
  std::uint64_t universe_size = 0;  // u = poly(N)
  std::uint64_t capacity = 0;       // N
  double beta = 0.5;                // internal memory exponent, 0 < β < 1
  double epsilon = 1.0 / 12;        // target total error ε
  unsigned c = 2;                   // the fixed constant of Corollary 1
  std::uint64_t seed = 0x5ee0;
  std::uint32_t max_levels = 8;     // recursion safety cap (k = O(1) in theory)
};

struct SemiExplicitLevel {
  std::uint64_t left_size;
  std::uint64_t right_size;
  std::uint32_t degree;
  std::uint64_t internal_memory_words;
};

class SemiExplicitExpander final : public NeighborFunction {
 public:
  explicit SemiExplicitExpander(const SemiExplicitParams& params);

  std::uint64_t left_size() const override { return top_->left_size(); }
  std::uint64_t right_size() const override { return top_->right_size(); }
  std::uint32_t degree() const override { return top_->degree(); }

  std::uint64_t neighbor(std::uint64_t x, std::uint32_t i) const override {
    return top_->neighbor(x, i);
  }
  std::vector<std::uint64_t> neighbors(std::uint64_t x) const override {
    return top_->neighbors(x);
  }

  /// Total pre-processed internal memory across all levels — Theorem 12
  /// bounds this by O(N^β).
  std::uint64_t internal_memory_words() const { return memory_words_; }
  std::uint32_t levels() const { return static_cast<std::uint32_t>(levels_.size()); }
  const std::vector<SemiExplicitLevel>& level_info() const { return levels_; }
  double per_level_epsilon() const { return eps_prime_; }

 private:
  std::shared_ptr<const NeighborFunction> top_;
  std::vector<SemiExplicitLevel> levels_;
  std::uint64_t memory_words_ = 0;
  double eps_prime_ = 0.0;
};

}  // namespace pddict::expander
