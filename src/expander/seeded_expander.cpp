#include "expander/seeded_expander.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/math.hpp"
#include "util/prng.hpp"
#include "util/simd/simd.hpp"

namespace pddict::expander {

SeededExpander::SeededExpander(std::uint64_t left_size,
                               std::uint64_t right_size, std::uint32_t degree,
                               std::uint64_t seed)
    : u_(left_size), v_(right_size), d_(degree), seed_(seed),
      salt_base_(util::mix64(seed)) {
  if (degree == 0) throw std::invalid_argument("expander degree must be >= 1");
  if (right_size == 0 || right_size % degree != 0)
    throw std::invalid_argument(
        "striped expander needs right_size to be a positive multiple of degree");
}

std::vector<std::uint64_t> SeededExpander::neighbors(std::uint64_t x) const {
  std::vector<std::uint64_t> out(d_);
  util::simd::kernels().hash_salts(x, salt_base_, d_, out.data());
  const std::uint64_t span = stripe_size();
  for (std::uint32_t i = 0; i < d_; ++i)
    out[i] = stripe_begin(i) + out[i] % span;
  return out;
}

void SeededExpander::stripe_locals(std::uint64_t x, std::uint64_t* out) const {
  util::simd::kernels().hash_salts(x, salt_base_, d_, out);
  const std::uint64_t span = stripe_size();
  for (std::uint32_t i = 0; i < d_; ++i) out[i] %= span;
}

std::uint32_t recommended_degree(std::uint64_t universe_size, double factor) {
  std::uint32_t base = universe_size <= 1 ? 1 : util::ceil_log2(universe_size);
  auto d = static_cast<std::uint32_t>(factor * base);
  return std::max<std::uint32_t>(d, 8);
}

}  // namespace pddict::expander
