#include "workload/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "util/prng.hpp"

namespace pddict::workload {

using util::SplitMix64;

std::vector<core::Key> generate_keys(KeyPattern pattern, std::uint64_t n,
                                     std::uint64_t universe,
                                     std::uint64_t seed) {
  if (n > universe / 2)
    throw std::invalid_argument("key set too dense for this universe");
  SplitMix64 rng(seed);
  std::vector<core::Key> keys;
  keys.reserve(n);
  switch (pattern) {
    case KeyPattern::kDenseSequential: {
      std::uint64_t base = rng.next_below(universe - n);
      for (std::uint64_t i = 0; i < n; ++i) keys.push_back(base + i);
      break;
    }
    case KeyPattern::kSparseRandom: {
      std::unordered_set<core::Key> seen;
      while (seen.size() < n) {
        core::Key k = rng.next_below(universe);
        if (k != core::kTombstone && seen.insert(k).second) keys.push_back(k);
      }
      break;
    }
    case KeyPattern::kClustered: {
      std::uint64_t clusters = std::max<std::uint64_t>(1, n / 256);
      std::uint64_t per = (n + clusters - 1) / clusters;
      std::unordered_set<core::Key> seen;
      while (keys.size() < n) {
        std::uint64_t base = rng.next_below(universe - per - 1);
        for (std::uint64_t i = 0; i < per && keys.size() < n; ++i) {
          if (seen.insert(base + i).second) keys.push_back(base + i);
        }
      }
      break;
    }
    case KeyPattern::kSharedLowBits: {
      // All keys congruent mod 2^12: adversarial for weak modulo hashing.
      std::uint64_t stride = std::uint64_t{1} << 12;
      std::uint64_t low = rng.next_below(stride);
      std::unordered_set<core::Key> seen;
      while (keys.size() < n) {
        std::uint64_t q = rng.next_below(universe / stride - 1);
        core::Key k = q * stride + low;
        if (seen.insert(k).second) keys.push_back(k);
      }
      break;
    }
  }
  return keys;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double theta, std::uint64_t seed)
    : state_(seed) {
  if (n == 0) throw std::invalid_argument("Zipf over empty support");
  cdf_.resize(n);
  double total = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::uint64_t ZipfSampler::next() {
  SplitMix64 rng(state_);
  double u = rng.next_double();
  state_ = rng.next();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

QueryTrace make_query_trace(std::span<const core::Key> present,
                            std::uint64_t universe, std::uint64_t n_queries,
                            double hit_fraction, double zipf_theta,
                            std::uint64_t seed) {
  SplitMix64 rng(seed);
  ZipfSampler zipf(std::max<std::uint64_t>(1, present.size()), zipf_theta,
                   seed ^ 0x5a5a);
  std::unordered_set<core::Key> member(present.begin(), present.end());
  QueryTrace trace;
  trace.queries.reserve(n_queries);
  for (std::uint64_t q = 0; q < n_queries; ++q) {
    if (!present.empty() && rng.next_double() < hit_fraction) {
      trace.queries.push_back(present[zipf.next()]);
      ++trace.expected_hits;
    } else {
      core::Key k;
      do {
        k = rng.next_below(universe);
      } while (k == core::kTombstone || member.contains(k));
      trace.queries.push_back(k);
    }
  }
  return trace;
}

FileSystemTrace make_fs_trace(std::uint64_t num_files,
                              std::uint64_t mean_blocks_per_file,
                              std::uint64_t num_accesses, double zipf_theta,
                              std::uint64_t seed) {
  SplitMix64 rng(seed);
  FileSystemTrace trace;
  trace.num_files = num_files;
  std::vector<std::uint64_t> file_sizes(num_files);
  for (std::uint64_t f = 0; f < num_files; ++f) {
    // Sizes spread around the mean (half to double).
    file_sizes[f] = std::max<std::uint64_t>(
        1, mean_blocks_per_file / 2 + rng.next_below(mean_blocks_per_file + 1));
    for (std::uint64_t b = 0; b < file_sizes[f]; ++b)
      trace.all_blocks.push_back((f << 24) | b);
  }
  ZipfSampler popular(num_files, zipf_theta, seed ^ 0xf11e);
  trace.accesses.reserve(num_accesses);
  for (std::uint64_t a = 0; a < num_accesses; ++a) {
    std::uint64_t f = popular.next();
    std::uint64_t b = rng.next_below(file_sizes[f]);
    trace.accesses.push_back((f << 24) | b);
  }
  return trace;
}

}  // namespace pddict::workload
