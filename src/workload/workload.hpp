// Deterministic workload generators for the experiments.
//
// Everything is seeded: the same (pattern, n, universe, seed) tuple always
// produces the same keys, queries and traces, so benchmark output is
// reproducible run-to-run (there is no global randomness anywhere in this
// library).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/dictionary.hpp"

namespace pddict::workload {

enum class KeyPattern {
  kDenseSequential,  // 0..n-1 shifted to a random base
  kSparseRandom,     // uniform over the universe
  kClustered,        // a few dense runs scattered over the universe
  kSharedLowBits,    // keys agreeing on low bits (stress for weak hashing)
};

/// n distinct keys from [0, universe), per the pattern.
std::vector<core::Key> generate_keys(KeyPattern pattern, std::uint64_t n,
                                     std::uint64_t universe,
                                     std::uint64_t seed);

/// Zipf(θ) sampler over ranks [0, n) via the classic inverse-CDF table.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double theta, std::uint64_t seed);
  std::uint64_t next();

 private:
  std::vector<double> cdf_;
  std::uint64_t state_;
};

struct QueryTrace {
  std::vector<core::Key> queries;
  std::uint64_t expected_hits = 0;
};

/// `n_queries` lookups, a `hit_fraction` of which target `present` keys
/// (Zipf-skewed over the key set), the rest uniform misses.
QueryTrace make_query_trace(std::span<const core::Key> present,
                            std::uint64_t universe, std::uint64_t n_queries,
                            double hit_fraction, double zipf_theta,
                            std::uint64_t seed);

/// File-system workload (paper §1.2): a key is (inode << 24) | block_number,
/// and accesses are random blocks of Zipf-popular files — the webmail / http
/// server pattern the paper motivates.
struct FileSystemTrace {
  std::vector<core::Key> all_blocks;   // every (file, block) key
  std::vector<core::Key> accesses;     // random-access reads
  std::uint64_t num_files = 0;
};

FileSystemTrace make_fs_trace(std::uint64_t num_files,
                              std::uint64_t mean_blocks_per_file,
                              std::uint64_t num_accesses, double zipf_theta,
                              std::uint64_t seed);

}  // namespace pddict::workload
