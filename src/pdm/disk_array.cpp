#include "pdm/disk_array.hpp"

#include <algorithm>

namespace pddict::pdm {

DiskArray::DiskArray(Geometry geom, Model model)
    : DiskArray(geom, model, std::make_unique<MemoryBackend>(geom)) {}

DiskArray::DiskArray(Geometry geom, Model model,
                     std::unique_ptr<BlockBackend> backend)
    : geom_(geom), model_(model), backend_(std::move(backend)) {
  if (!geom_.valid()) throw std::invalid_argument("invalid PDM geometry");
  if (!backend_) throw std::invalid_argument("null block backend");
}

void DiskArray::check_addr(const BlockAddr& addr) const {
  if (addr.disk >= geom_.num_disks)
    throw std::out_of_range("disk index out of range");
  if (geom_.blocks_per_disk != 0 && addr.block >= geom_.blocks_per_disk)
    throw std::out_of_range("block index beyond disk capacity");
}

std::uint64_t DiskArray::rounds_for(std::span<const BlockAddr> addrs) const {
  if (addrs.empty()) return 0;
  if (model_ == Model::kParallelHeads) {
    // D heads over one address space: ceil(#blocks / D) rounds. Duplicates
    // within the batch still occupy a head slot only once.
    std::vector<BlockAddr> uniq(addrs.begin(), addrs.end());
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    return (uniq.size() + geom_.num_disks - 1) / geom_.num_disks;
  }
  // PDM: the round count is the maximum number of distinct blocks requested
  // on any single disk.
  std::vector<BlockAddr> uniq(addrs.begin(), addrs.end());
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  std::vector<std::uint64_t> per_disk(geom_.num_disks, 0);
  std::uint64_t worst = 0;
  for (const auto& a : uniq) worst = std::max(worst, ++per_disk[a.disk]);
  return worst;
}

std::uint64_t DiskArray::read_batch(std::span<const BlockAddr> addrs,
                                    std::vector<Block>& out) {
  out.clear();
  out.reserve(addrs.size());
  for (const auto& a : addrs) check_addr(a);
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t rounds = rounds_for(addrs);
  std::uint64_t distinct = 0;
  {
    std::vector<BlockAddr> uniq(addrs.begin(), addrs.end());
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    distinct = uniq.size();
  }
  for (const auto& a : addrs) out.push_back(backend_->load(a));
  stats_.parallel_ios += rounds;
  stats_.read_rounds += rounds;
  stats_.blocks_read += distinct;
  if (tracing_)
    trace_.push_back({false, rounds,
                      std::vector<BlockAddr>(addrs.begin(), addrs.end())});
  return rounds;
}

std::uint64_t DiskArray::write_batch(
    std::span<const std::pair<BlockAddr, Block>> writes) {
  std::vector<BlockAddr> addrs;
  addrs.reserve(writes.size());
  for (const auto& [a, b] : writes) {
    check_addr(a);
    if (b.size() != geom_.block_bytes())
      throw std::invalid_argument("block size mismatch");
    addrs.push_back(a);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t rounds = rounds_for(addrs);
  std::sort(addrs.begin(), addrs.end());
  addrs.erase(std::unique(addrs.begin(), addrs.end()), addrs.end());
  for (const auto& [a, b] : writes) backend_->store(a, b);
  stats_.parallel_ios += rounds;
  stats_.write_rounds += rounds;
  stats_.blocks_written += addrs.size();
  if (tracing_) trace_.push_back({true, rounds, addrs});
  return rounds;
}

Block DiskArray::read_block(BlockAddr addr) {
  std::vector<Block> out;
  read_batch(std::span<const BlockAddr>(&addr, 1), out);
  return std::move(out.front());
}

void DiskArray::write_block(BlockAddr addr, Block block) {
  std::pair<BlockAddr, Block> w{addr, std::move(block)};
  write_batch(std::span<const std::pair<BlockAddr, Block>>(&w, 1));
}

Block DiskArray::peek(BlockAddr addr) const {
  check_addr(addr);
  std::lock_guard<std::mutex> lock(mutex_);
  return backend_->load(addr);
}

void DiskArray::poke(BlockAddr addr, Block block) {
  check_addr(addr);
  if (block.size() != geom_.block_bytes())
    throw std::invalid_argument("block size mismatch");
  std::lock_guard<std::mutex> lock(mutex_);
  backend_->store(addr, block);
}

void DiskArray::discard_blocks(std::uint32_t first_disk,
                               std::uint32_t num_disks, std::uint64_t base,
                               std::uint64_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  backend_->erase_range(first_disk, num_disks, base, count);
}

std::uint64_t DiskArray::blocks_in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return backend_->blocks_in_use();
}

IoProbe::IoProbe(const DiskArray& disks)
    : disks_(&disks), start_(disks.stats()) {}

IoStats IoProbe::delta() const { return disks_->stats() - start_; }

void IoProbe::reset() { start_ = disks_->stats(); }

}  // namespace pddict::pdm
