#include "pdm/disk_array.hpp"

#include <algorithm>

#include "obs/cost_conformance.hpp"
#include "obs/metrics.hpp"
#include "obs/op_context.hpp"
#include "obs/telemetry.hpp"

namespace pddict::pdm {

namespace {
std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}
}  // namespace

DiskArray::DiskArray(Geometry geom, Model model)
    : DiskArray(geom, model, std::make_unique<MemoryBackend>(geom)) {}

DiskArray::DiskArray(Geometry geom, Model model,
                     std::unique_ptr<BlockBackend> backend)
    : geom_(geom),
      model_(model),
      disk_counters_(geom.num_disks),
      round_hist_(static_cast<std::size_t>(geom.num_disks) + 1, 0),
      backend_(std::move(backend)),
      sink_(obs::default_sink()) {
  if (!geom_.valid()) throw std::invalid_argument("invalid PDM geometry");
  if (!backend_) throw std::invalid_argument("null block backend");
  std::size_t threads =
      IoExecutor::resolve_threads(default_io_threads(), geom_.num_disks);
  if (threads) exec_ = std::make_unique<IoExecutor>(geom_.num_disks, threads);
  conformance_ = obs::default_cost_conformance();
  // Last, with the object fully constructed: the sampler takes a frame the
  // moment a source registers, so the collector must already work.
  if (auto sampler = obs::default_telemetry()) {
    telemetry_ = std::move(sampler);
    if (auto dog = telemetry_->watchdog()) {
      watchdog_ = std::move(dog);
      watchdog_id_ =
          watchdog_->add_source("pdm", [this] { return health_sample(); });
    }
    telemetry_id_ =
        telemetry_->add_source("pdm", [this] { return telemetry_json(); });
  }
}

DiskArray::~DiskArray() {
  // Wait out any still-executing async batches before anything else touches
  // the backend (the dirty-cache flush below bypasses the engine's per-disk
  // queues). Un-joined futures stay consumable — their state outlives us.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    drain_inflight_locked();
  }
  // Unregister from live telemetry next, while the array is fully alive:
  // remove_source takes a final frame with this source still attached, so
  // the time series ends on the exact end-of-run counters.
  if (telemetry_) {
    telemetry_->remove_source(telemetry_id_);
    if (watchdog_) watchdog_->remove_source(watchdog_id_);
  }
  // Durability, not accounting: dirty cached blocks reach the backend (file
  // backends persist them), but a dying array charges no rounds.
  if (!cache_) return;
  auto dirty = cache_->take_dirty();
  std::vector<BlockWrite> writes;
  writes.reserve(dirty.size());
  for (auto& [addr, block] : dirty) writes.push_back({addr, &block});
  backend_->store_batch(writes);
}

void DiskArray::set_io_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t resolved = IoExecutor::resolve_threads(threads, geom_.num_disks);
  if (exec_ && exec_->threads() == resolved) return;
  // Wait out async batches still executing on the old engine: in-flight
  // batches complete on the engine they started with (their futures never
  // touch exec_ again — they wait on their own Completion). Destroying the
  // old engine then joins its idle workers before the new one spawns. The
  // health probe reads exec_ under probe_mutex_ alone, so re-seating the
  // pointer needs both locks.
  drain_inflight_locked();
  std::lock_guard<std::mutex> probe_lock(probe_mutex_);
  exec_.reset();
  if (resolved) exec_ = std::make_unique<IoExecutor>(geom_.num_disks, resolved);
}

void DiskArray::set_cost_conformance(std::shared_ptr<obs::CostConformance> cc) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::lock_guard<std::mutex> probe_lock(probe_mutex_);
  conformance_ = std::move(cc);
}

void DiskArray::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Fold the outgoing counters into the telemetry base first, so the "io.*"
  // series a live sampler emits never moves backwards across a reset.
  telemetry_base_ += stats_;
  stats_ = IoStats{};
  std::fill(disk_counters_.begin(), disk_counters_.end(), DiskCounters{});
  std::fill(round_hist_.begin(), round_hist_.end(), 0);
  if (cache_) cache_->reset_stats();
  if (exec_) exec_->reset_stats();
  cache_flushed_blocks_ = 0;
  cache_flush_rounds_ = 0;
}

void DiskArray::enable_cache(std::size_t frames, std::size_t shards) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Quiesce async batches first: with a cache installed every submit
  // resolves synchronously, and the flush below must not interleave with
  // transfers still in flight from the uncached era.
  drain_inflight_locked();
  if (cache_) {
    // Replacing (or disabling) an active cache must not lose writes: charge
    // one final coalesced flush for whatever is still dirty.
    auto dirty = cache_->take_dirty();
    flush_victims_locked(dirty);
  }
  {
    // Health probes read cache_ under probe_mutex_ alone (see its comment).
    std::lock_guard<std::mutex> probe_lock(probe_mutex_);
    cache_ = frames ? std::make_unique<BufferPool>(frames, shards) : nullptr;
  }
  cache_flushed_blocks_ = 0;
  cache_flush_rounds_ = 0;
}

std::uint64_t DiskArray::flush_cache() {
  std::lock_guard<std::mutex> lock(mutex_);
  drain_inflight_locked();
  if (!cache_) return 0;
  auto dirty = cache_->take_dirty();
  return flush_victims_locked(dirty);
}

CacheStats DiskArray::cache_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!cache_) return CacheStats{};
  CacheStats s = cache_->stats();
  s.flushed_blocks = cache_flushed_blocks_;
  s.flush_rounds = cache_flush_rounds_;
  return s;
}

std::size_t DiskArray::uniq_index(const std::vector<BlockAddr>& uniq,
                                  const BlockAddr& addr) {
  return static_cast<std::size_t>(
      std::lower_bound(uniq.begin(), uniq.end(), addr) - uniq.begin());
}

void DiskArray::fetch_blocks_locked(const std::vector<BlockAddr>& uniq,
                                    std::vector<Block>& blocks,
                                    IoExecutor::BatchTiming* timing) {
  blocks.resize(uniq.size());
  if (uniq.empty()) return;
  if (!exec_) {
    // Serial: one flat batched backend call (FileBackend still coalesces
    // contiguous runs into single preadv calls) on the submitting thread.
    std::vector<BlockRead> reads;
    reads.reserve(uniq.size());
    for (std::size_t i = 0; i < uniq.size(); ++i)
      reads.push_back({uniq[i], &blocks[i]});
    std::uint64_t start = timing ? obs::trace_now_ns() : 0;
    backend_->load_batch(reads);
    if (timing) {
      timing->wall_ns = obs::trace_now_ns() - start;
      timing->transfer_ns = timing->wall_ns;
    }
    return;
  }
  std::vector<std::vector<BlockRead>> per_disk(geom_.num_disks);
  for (std::size_t i = 0; i < uniq.size(); ++i)
    per_disk[uniq[i].disk].push_back({uniq[i], &blocks[i]});
  exec_->execute_reads(*backend_, per_disk, timing);
}

void DiskArray::store_blocks_locked(const std::vector<BlockAddr>& uniq,
                                    const std::vector<const Block*>& src,
                                    IoExecutor::BatchTiming* timing) {
  if (uniq.empty()) return;
  if (!exec_) {
    std::vector<BlockWrite> writes;
    writes.reserve(uniq.size());
    for (std::size_t i = 0; i < uniq.size(); ++i)
      writes.push_back({uniq[i], src[i]});
    std::uint64_t start = timing ? obs::trace_now_ns() : 0;
    backend_->store_batch(writes);
    if (timing) {
      timing->wall_ns = obs::trace_now_ns() - start;
      timing->transfer_ns = timing->wall_ns;
    }
    return;
  }
  std::vector<std::vector<BlockWrite>> per_disk(geom_.num_disks);
  for (std::size_t i = 0; i < uniq.size(); ++i)
    per_disk[uniq[i].disk].push_back({uniq[i], src[i]});
  exec_->execute_writes(*backend_, per_disk, timing);
}

obs::RoundPhaseSample DiskArray::make_phase_sample_locked(
    const BatchPlan& plan, bool write, bool flush) const {
  obs::RoundPhaseSample s;
  s.write = write;
  s.flush = flush;
  s.rounds = plan.rounds;
  s.blocks = plan.uniq.size();
  for (std::uint32_t c : plan.per_disk)
    if (c) ++s.busy_disks;
  // Reduce the batch to the executor topology: worker w owns the disks
  // congruent to it mod threads; serial execution is one worker owning every
  // disk. uniq is sorted by (disk, block), so a coalesced run — what a
  // positioned backend pays one seek for — breaks exactly where the disk
  // changes or the block index jumps.
  std::size_t threads = exec_ ? exec_->threads() : 0;
  std::size_t width = threads ? threads : 1;
  s.worker_runs.assign(width, 0);
  s.worker_blocks.assign(width, 0);
  for (std::size_t i = 0; i < plan.uniq.size(); ++i) {
    const BlockAddr& a = plan.uniq[i];
    std::size_t w = threads ? a.disk % threads : 0;
    ++s.worker_blocks[w];
    if (i == 0 || plan.uniq[i - 1].disk != a.disk ||
        plan.uniq[i - 1].block + 1 != a.block)
      ++s.worker_runs[w];
  }
  return s;
}

void DiskArray::record_phase_locked(const BatchPlan& plan, bool write,
                                    bool flush,
                                    const IoExecutor::BatchTiming& timing,
                                    std::uint64_t plan_ns,
                                    std::uint64_t exec_ns,
                                    std::uint64_t reconcile_ns,
                                    std::uint64_t total_ns) {
  if (!conformance_ || plan.uniq.empty()) return;
  obs::RoundPhaseSample s = make_phase_sample_locked(plan, write, flush);
  s.plan_ns = plan_ns;
  s.exec_ns = exec_ns;
  s.queue_ns = timing.queue_ns;
  s.transfer_ns = timing.transfer_ns;
  s.join_ns = timing.join_ns;
  // The barrier-form exec section overlaps nothing on the serial path (the
  // caller executes the transfers itself); with an engine the slice of exec
  // not spent blocked in the join is submit/dispatch overhead the caller
  // kept for itself.
  s.overlap_ns = exec_ ? sat_sub(exec_ns, timing.join_ns) : 0;
  s.reconcile_ns = reconcile_ns;
  s.total_ns = total_ns;
  conformance_->record(s);
}

std::uint64_t DiskArray::flush_victims_locked(
    std::vector<std::pair<BlockAddr, Block>>& victims) {
  if (victims.empty()) return 0;
  const bool prof = conformance_ != nullptr;
  std::uint64_t t0 = prof ? obs::trace_now_ns() : 0;
  std::vector<BlockAddr> addrs;
  addrs.reserve(victims.size());
  for (const auto& [addr, block] : victims) addrs.push_back(addr);
  BatchPlan plan = plan_batch(addrs);
  // One executed round batch over the distinct victims. A duplicate address
  // (a block evicted dirty, refilled and evicted dirty again within one
  // batch) keeps its LAST contents, exactly like the sequential stores this
  // replaces.
  std::vector<const Block*> src(plan.uniq.size(), nullptr);
  for (const auto& [addr, block] : victims)
    src[uniq_index(plan.uniq, addr)] = &block;
  std::uint64_t t1 = prof ? obs::trace_now_ns() : 0;
  IoExecutor::BatchTiming timing;
  store_blocks_locked(plan.uniq, src, prof ? &timing : nullptr);
  std::uint64_t t2 = prof ? obs::trace_now_ns() : 0;
  account_batch(plan, /*write=*/true, addrs);
  cache_flushed_blocks_ += plan.uniq.size();
  cache_flush_rounds_ += plan.rounds;
  if (prof) {
    std::uint64_t t3 = obs::trace_now_ns();
    record_phase_locked(plan, /*write=*/true, /*flush=*/true, timing, t1 - t0,
                        t2 - t1, t3 - t2, t3 - t0);
  }
  return plan.rounds;
}

void DiskArray::check_addr(const BlockAddr& addr) const {
  if (addr.disk >= geom_.num_disks)
    throw std::out_of_range("disk index out of range");
  if (geom_.blocks_per_disk != 0 && addr.block >= geom_.blocks_per_disk)
    throw std::out_of_range("block index beyond disk capacity");
}

DiskArray::BatchPlan DiskArray::plan_batch(
    std::span<const BlockAddr> addrs) const {
  BatchPlan plan;
  plan.per_disk.assign(geom_.num_disks, 0);
  if (addrs.empty()) return plan;
  plan.uniq.assign(addrs.begin(), addrs.end());
  std::sort(plan.uniq.begin(), plan.uniq.end());
  plan.uniq.erase(std::unique(plan.uniq.begin(), plan.uniq.end()),
                  plan.uniq.end());
  for (const auto& a : plan.uniq) ++plan.per_disk[a.disk];
  if (model_ == Model::kParallelHeads) {
    // D heads over one address space: ceil(#blocks / D) rounds. Duplicates
    // within the batch still occupy a head slot only once.
    plan.rounds = (plan.uniq.size() + geom_.num_disks - 1) / geom_.num_disks;
  } else {
    // PDM: the round count is the maximum number of distinct blocks
    // requested on any single disk.
    for (std::uint32_t c : plan.per_disk)
      plan.rounds = std::max<std::uint64_t>(plan.rounds, c);
  }
  return plan;
}

void DiskArray::account_batch(const BatchPlan& plan, bool write,
                              std::span<const BlockAddr> submitted) {
  const std::uint64_t distinct = plan.uniq.size();
  const std::uint64_t start_round = stats_.parallel_ios;
  stats_.parallel_ios += plan.rounds;
  (write ? stats_.write_rounds : stats_.read_rounds) += plan.rounds;
  (write ? stats_.blocks_written : stats_.blocks_read) += distinct;

  for (std::uint32_t disk = 0; disk < geom_.num_disks; ++disk) {
    DiskCounters& c = disk_counters_[disk];
    std::uint32_t moved = plan.per_disk[disk];
    (write ? c.blocks_written : c.blocks_read) += moved;
    c.rounds_active += moved;
    if (model_ == Model::kParallelDisks) c.idle_slots += plan.rounds - moved;
  }

  // Utilization histogram: how many of the D slots each of this batch's
  // rounds used. PDM: round t serves every disk with > t pending blocks, so
  // the number of rounds using exactly k slots falls out of the per-disk
  // load multiset via one suffix sum. Head model: every round moves D blocks
  // except a final partial round.
  if (plan.rounds > 0) {
    if (model_ == Model::kParallelDisks) {
      std::vector<std::uint64_t> disks_with_load(plan.rounds + 1, 0);
      for (std::uint32_t c : plan.per_disk)
        if (c > 0) ++disks_with_load[c];
      std::uint64_t busy = 0;  // disks with >= t pending blocks
      for (std::uint64_t t = plan.rounds; t >= 1; --t) {
        busy += disks_with_load[t];
        ++round_hist_[busy];
      }
    } else {
      std::uint64_t tail = distinct % geom_.num_disks;
      round_hist_[geom_.num_disks] += plan.rounds - (tail ? 1 : 0);
      if (tail) ++round_hist_[tail];
    }
  }

  // Documented round-utilization invariant (docs/observability.md): entry 0
  // counts rounds that moved zero blocks, which cannot exist — every round
  // the scheduler emits transfers at least one block. Enforced always (not
  // an NDEBUG-stripped assert): it guards the accounting the whole
  // reproduction's measurements rest on, and it is one load per batch.
  if (round_hist_[0] != 0)
    throw std::logic_error(
        "DiskArray: round-utilization invariant violated (h[0] != 0)");

  if (tracing_ || sink_) {
    obs::IoEvent event;
    event.write = write;
    event.rounds = plan.rounds;
    // Reads historically traced the submitted order (duplicates included),
    // writes the deduplicated set; preserved for trace-level tests.
    event.addrs = write ? plan.uniq
                        : std::vector<BlockAddr>(submitted.begin(),
                                                 submitted.end());
    event.seq = event_seq_++;
    event.ts_ns = obs::trace_now_ns();
    event.start_round = start_round;
    event.per_disk = plan.per_disk;
    // Operation attribution reads the *submitting thread's* context, so it
    // stays exact even when several threads share the array.
    event.op_id = obs::current_op_id();
    event.op_kind = obs::current_op_kind();
    if (tracing_ && trace_ring_) trace_ring_->on_io(event);
    if (sink_) sink_->on_io(event);
  }
}

std::vector<DiskCounters> DiskArray::disk_counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return disk_counters_;
}

std::vector<std::uint64_t> DiskArray::round_utilization() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return round_hist_;
}

double DiskArray::mean_utilization() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t rounds = 0, slots_used = 0;
  for (std::size_t k = 1; k < round_hist_.size(); ++k) {
    rounds += round_hist_[k];
    slots_used += k * round_hist_[k];
  }
  if (rounds == 0) return 1.0;
  return static_cast<double>(slots_used) /
         (static_cast<double>(rounds) * geom_.num_disks);
}

void DiskArray::export_metrics(obs::MetricsRegistry& registry,
                               std::string_view prefix) const {
  std::string p(prefix);
  IoStats stats;
  std::vector<DiskCounters> disks;
  std::vector<std::uint64_t> hist;
  std::uint64_t in_use = 0;
  bool cached = false;
  CacheStats cache;
  std::size_t cache_capacity = 0, cache_resident = 0;
  bool parallel = false;
  std::size_t exec_threads = 0;
  IoExecutor::Stats exec;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (exec_) {
      parallel = true;
      exec_threads = exec_->threads();
      // Snapshot BEFORE quiescing, so the in-flight gauge reflects the
      // pipelining depth this call happened to observe.
      exec = exec_->stats();
    }
    // blocks_in_use walks backend state the workers may be mutating.
    drain_inflight_locked();
    stats = stats_;
    disks = disk_counters_;
    hist = round_hist_;
    in_use = backend_->blocks_in_use();
    if (cache_) {
      cached = true;
      cache = cache_->stats();
      cache.flushed_blocks = cache_flushed_blocks_;
      cache.flush_rounds = cache_flush_rounds_;
      cache_capacity = cache_->capacity();
      cache_resident = cache_->size();
    }
  }
  if (cached) {
    registry.count(p + ".cache.hits", cache.hits);
    registry.count(p + ".cache.misses", cache.misses);
    registry.count(p + ".cache.evictions", cache.evictions);
    registry.count(p + ".cache.dirty_evictions", cache.dirty_evictions);
    registry.count(p + ".cache.flushed_blocks", cache.flushed_blocks);
    registry.count(p + ".cache.flush_rounds", cache.flush_rounds);
    registry.gauge(p + ".cache.frames", static_cast<double>(cache_capacity));
    registry.gauge(p + ".cache.resident", static_cast<double>(cache_resident));
    double total = static_cast<double>(cache.hits + cache.misses);
    registry.gauge(p + ".cache.hit_rate",
                   total > 0 ? static_cast<double>(cache.hits) / total : 0.0);
  }
  registry.count(p + ".parallel_ios", stats.parallel_ios);
  registry.count(p + ".read_rounds", stats.read_rounds);
  registry.count(p + ".write_rounds", stats.write_rounds);
  registry.count(p + ".blocks_read", stats.blocks_read);
  registry.count(p + ".blocks_written", stats.blocks_written);
  registry.gauge(p + ".blocks_in_use", static_cast<double>(in_use));
  registry.gauge(p + ".mean_utilization", mean_utilization());
  registry.histogram(p + ".round_utilization", std::move(hist));
  for (std::uint32_t d = 0; d < disks.size(); ++d) {
    std::string dp = p + ".disk." + std::to_string(d);
    registry.count(dp + ".blocks_read", disks[d].blocks_read);
    registry.count(dp + ".blocks_written", disks[d].blocks_written);
    registry.count(dp + ".rounds_active", disks[d].rounds_active);
    registry.count(dp + ".idle_slots", disks[d].idle_slots);
  }
  // Execution-engine metrics exist only when a parallel engine is attached,
  // so serial (io_threads = 0) exports stay byte-identical to the seed.
  if (parallel) {
    registry.gauge(p + ".exec.io_threads", static_cast<double>(exec_threads));
    registry.count(p + ".exec.batches", exec.batches);
    registry.count(p + ".exec.jobs", exec.jobs);
    registry.count(p + ".exec.wall_ns", exec.wall_ns);
    registry.gauge(p + ".exec.max_queue_depth",
                   static_cast<double>(exec.max_queue_depth));
    registry.gauge(p + ".exec.inflight_batches",
                   static_cast<double>(exec.inflight_batches));
    registry.count(p + ".exec.suppressed_errors", exec.suppressed_errors);
    for (std::uint32_t d = 0; d < exec.disk_busy_ns.size(); ++d) {
      std::string dp = p + ".exec.disk." + std::to_string(d);
      registry.count(dp + ".busy_ns", exec.disk_busy_ns[d]);
      registry.count(dp + ".jobs", exec.disk_jobs[d]);
    }
  }
}

obs::Json DiskArray::telemetry_json() const {
  // Sampler → array is the only permitted lock order, and this runs under
  // the sampler lock — so take mutex_ exactly once and compute everything
  // inline (public accessors like mean_utilization() lock again).
  std::lock_guard<std::mutex> lock(mutex_);
  // Snapshot the engine BEFORE quiescing (the in-flight gauge should show
  // the pipelining depth this frame happened to catch), then drain:
  // blocks_in_use below walks backend state the workers may be mutating.
  // The counters themselves never need the drain (accounted at submit).
  IoExecutor::Stats es;
  if (exec_) es = exec_->stats();
  drain_inflight_locked();
  obs::Json j = obs::Json::object();
  obs::Json io = obs::Json::object();
  // Base + current: reset_stats() folds the outgoing counters into
  // telemetry_base_, so this series is monotone over the array's lifetime
  // even when a bench ladder resets between rungs.
  io.set("parallel_ios", telemetry_base_.parallel_ios + stats_.parallel_ios);
  io.set("read_rounds", telemetry_base_.read_rounds + stats_.read_rounds);
  io.set("write_rounds", telemetry_base_.write_rounds + stats_.write_rounds);
  io.set("blocks_read", telemetry_base_.blocks_read + stats_.blocks_read);
  io.set("blocks_written",
         telemetry_base_.blocks_written + stats_.blocks_written);
  j.set("io", std::move(io));
  j.set("disks", geom_.num_disks);
  j.set("blocks_in_use", backend_->blocks_in_use());
  std::uint64_t rounds = 0, slots_used = 0;
  for (std::size_t k = 1; k < round_hist_.size(); ++k) {
    rounds += round_hist_[k];
    slots_used += k * round_hist_[k];
  }
  j.set("mean_utilization",
        rounds == 0 ? 1.0
                    : static_cast<double>(slots_used) /
                          (static_cast<double>(rounds) * geom_.num_disks));
  if (cache_) {
    CacheStats cs = cache_->stats();
    obs::Json cache = obs::Json::object();
    cache.set("hits", cs.hits);
    cache.set("misses", cs.misses);
    cache.set("evictions", cs.evictions);
    cache.set("dirty_evictions", cs.dirty_evictions);
    cache.set("flushed_blocks", cache_flushed_blocks_);
    cache.set("flush_rounds", cache_flush_rounds_);
    cache.set("frames", static_cast<std::uint64_t>(cache_->capacity()));
    cache.set("resident", static_cast<std::uint64_t>(cache_->size()));
    cache.set("dirty", static_cast<std::uint64_t>(cache_->dirty_frames()));
    j.set("cache", std::move(cache));
  }
  if (exec_) {
    obs::Json exec = obs::Json::object();
    exec.set("io_threads", static_cast<std::uint64_t>(exec_->threads()));
    exec.set("batches", es.batches);
    exec.set("jobs", es.jobs);
    exec.set("wall_ns", es.wall_ns);
    exec.set("queue_wait_ns", es.queue_wait_ns);
    exec.set("join_wait_ns", es.join_wait_ns);
    exec.set("max_queue_depth", es.max_queue_depth);
    exec.set("inflight_batches", es.inflight_batches);
    exec.set("suppressed_errors", es.suppressed_errors);
    // Per-worker busy/idle attribution: busy is time inside backend calls on
    // the worker's disks; idle_frac is the remainder of its lifetime.
    obs::Json workers = obs::Json::array();
    for (std::uint64_t busy : es.worker_busy_ns) {
      obs::Json w = obs::Json::object();
      w.set("busy_ns", busy);
      w.set("idle_frac",
            es.lifetime_ns > 0 && busy < es.lifetime_ns
                ? static_cast<double>(es.lifetime_ns - busy) /
                      static_cast<double>(es.lifetime_ns)
                : 0.0);
      workers.push_back(std::move(w));
    }
    exec.set("workers", std::move(workers));
    j.set("exec", std::move(exec));
  }
  if (conformance_) j.set("cost", conformance_->telemetry_json());
  return j;
}

obs::HealthSample DiskArray::health_sample() const {
  // Deliberately NOT under mutex_ (see probe_mutex_'s comment): stall
  // detection must run while a batch is stuck mid-execution holding the
  // scheduling lock. Worker heartbeats are atomics and the pool's dirty scan
  // uses its own shard latches, so bypassing mutex_ is safe once the
  // pointers themselves are pinned.
  std::lock_guard<std::mutex> lock(probe_mutex_);
  obs::HealthSample s;
  if (exec_) {
    s.has_exec = true;
    for (const IoExecutor::WorkerHealth& w : exec_->worker_health()) {
      obs::WorkerHealthSample ws;
      ws.busy_ns = w.busy_ns;
      ws.busy_disk = w.busy_disk;
      ws.queue_depth = w.queue_depth;
      ws.jobs_done = w.jobs_done;
      s.workers.push_back(ws);
    }
  }
  if (cache_) {
    s.has_cache = true;
    s.cache_capacity = cache_->capacity();
    s.cache_dirty_frames = cache_->dirty_frames();
  }
  if (conformance_) {
    // recent_ratio() takes the collector's own lock only — no path back into
    // this array — so probing it from under probe_mutex_ cannot deadlock.
    s.has_model = true;
    s.model_ratio = conformance_->recent_ratio();
    s.model_batches = conformance_->batches();
  }
  return s;
}

void DiskArray::set_exec_job_delay_for_testing(std::uint64_t delay_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (exec_) exec_->set_job_delay_for_testing(delay_ns);
}

void DiskArray::enable_trace(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!trace_ring_ || trace_ring_->capacity() != capacity)
    trace_ring_ = std::make_shared<obs::RingBufferSink>(capacity);
  tracing_ = true;
}

std::vector<DiskArray::TraceEvent> DiskArray::trace() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!trace_ring_) return {};
  return trace_ring_->events();
}

std::uint64_t DiskArray::trace_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trace_ring_ ? trace_ring_->dropped_events() : 0;
}

void DiskArray::clear_trace() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (trace_ring_) trace_ring_->clear();
}

std::uint64_t DiskArray::read_batch(std::span<const BlockAddr> addrs,
                                    std::vector<Block>& out) {
  return submit_read_batch(addrs).get(out);
}

std::uint64_t DiskArray::write_batch(
    std::span<const std::pair<BlockAddr, Block>> writes) {
  return submit_write_batch(writes).wait();
}

BatchFuture DiskArray::submit_read_batch(std::span<const BlockAddr> addrs) {
  for (const auto& a : addrs) check_addr(a);
  auto state = std::make_shared<detail::BatchState>();
  std::lock_guard<std::mutex> lock(mutex_);
  prune_inflight_locked();
  const bool prof = conformance_ != nullptr;

  if (cache_) {
    // Cached batches resolve at submit: hit/miss classification, victim
    // flushing and their accounting must happen in submission order.
    state->out.reserve(addrs.size());
    state->rounds = read_cached_locked(addrs, state->out);
    state->ready = true;
    return BatchFuture(std::move(state));
  }

  std::uint64_t t0 = prof ? obs::trace_now_ns() : 0;
  BatchPlan plan = plan_batch(addrs);

  if (!exec_ || plan.uniq.empty()) {
    // Serial (or empty) batch: execute eagerly on the submitting thread,
    // bit-for-bit the historical path. Load each DISTINCT block exactly
    // once and fan the fetched blocks out to the submitted order.
    std::uint64_t t1 = prof ? obs::trace_now_ns() : 0;
    std::vector<Block> fetched;
    IoExecutor::BatchTiming timing;
    fetch_blocks_locked(plan.uniq, fetched, prof ? &timing : nullptr);
    std::uint64_t t2 = prof ? obs::trace_now_ns() : 0;
    account_batch(plan, /*write=*/false, addrs);
    state->out.reserve(addrs.size());
    for (const auto& a : addrs)
      state->out.push_back(fetched[uniq_index(plan.uniq, a)]);
    if (prof) {
      std::uint64_t t3 = obs::trace_now_ns();
      record_phase_locked(plan, /*write=*/false, /*flush=*/false, timing,
                          t1 - t0, t2 - t1, t3 - t2, t3 - t0);
    }
    state->rounds = plan.rounds;
    state->ready = true;
    return BatchFuture(std::move(state));
  }

  // Async path: account NOW (submission order, under the lock — counts stay
  // byte-identical to the eager path), then enqueue the per-disk transfer
  // lists and return without waiting. The state owns every byte the workers
  // touch, so it may outlive this array's engine — and us.
  account_batch(plan, /*write=*/false, addrs);
  state->rounds = plan.rounds;
  state->submitted.assign(addrs.begin(), addrs.end());
  state->blocks.resize(plan.uniq.size());
  state->per_disk_reads.resize(geom_.num_disks);
  for (std::size_t i = 0; i < plan.uniq.size(); ++i)
    state->per_disk_reads[plan.uniq[i].disk].push_back(
        {plan.uniq[i], &state->blocks[i]});
  if (prof) {
    state->conformance = conformance_;
    state->sample =
        make_phase_sample_locked(plan, /*write=*/false, /*flush=*/false);
  }
  state->uniq = std::move(plan.uniq);
  // plan covers everything on the submitting thread before the handoff
  // (dedup, accounting, state building); exec starts at submit_end_ns.
  if (prof) state->sample.plan_ns = sat_sub(obs::trace_now_ns(), t0);
  exec_->submit_reads(*backend_, state->per_disk_reads, state->completion);
  state->submit_end_ns = obs::trace_now_ns();
  inflight_.push_back(state);
  return BatchFuture(std::move(state));
}

std::uint64_t DiskArray::read_cached_locked(std::span<const BlockAddr> addrs,
                                            std::vector<Block>& out) {
  const bool prof = conformance_ != nullptr;
  // Deduplicate first so every distinct block is looked up —
  // and hence hit/miss-counted — exactly once per batch, which is what makes
  // the reconciliation invariant blocks_read == misses exact.
  std::uint64_t t0 = prof ? obs::trace_now_ns() : 0;
  std::vector<BlockAddr> uniq(addrs.begin(), addrs.end());
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());

  std::vector<std::pair<BlockAddr, Block>> resolved;
  resolved.reserve(uniq.size());
  std::vector<BlockAddr> missed;
  for (const auto& a : uniq) {
    Block b;
    if (cache_->lookup(a, b))
      resolved.emplace_back(a, std::move(b));
    else
      missed.push_back(a);
  }

  std::uint64_t rounds = 0;
  std::vector<std::pair<BlockAddr, Block>> victims;
  if (!missed.empty()) {
    // `missed` preserves uniq's order, so it is already sorted + distinct:
    // fetch all misses as one executed round batch, then install them.
    BatchPlan plan = plan_batch(missed);
    std::uint64_t t1 = prof ? obs::trace_now_ns() : 0;
    std::vector<Block> fetched;
    IoExecutor::BatchTiming timing;
    fetch_blocks_locked(missed, fetched, prof ? &timing : nullptr);
    std::uint64_t t2 = prof ? obs::trace_now_ns() : 0;
    for (std::size_t i = 0; i < missed.size(); ++i) {
      // Installing the fetched block may evict dirty frames; collect them
      // and write them back as ONE coalesced batch after the reads. (A
      // victim can never itself be in `missed`: it was resident, so its
      // lookup above was a hit.)
      for (auto& v : cache_->put(missed[i], fetched[i], /*dirty=*/false))
        victims.push_back(std::move(v));
      resolved.emplace_back(missed[i], std::move(fetched[i]));
    }
    account_batch(plan, /*write=*/false, missed);
    rounds = plan.rounds;
    if (prof) {
      // The miss fetch's sample: plan covers dedup + cache classification,
      // reconcile covers install/victim collection/accounting. The fan-out
      // below and any victim flush charge their own time elsewhere (the
      // flush batch records a separate "flush" sample).
      std::uint64_t t3 = obs::trace_now_ns();
      record_phase_locked(plan, /*write=*/false, /*flush=*/false, timing,
                          t1 - t0, t2 - t1, t3 - t2, t3 - t0);
    }
  }

  std::sort(resolved.begin(), resolved.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  for (const auto& a : addrs) {
    auto it = std::lower_bound(
        resolved.begin(), resolved.end(), a,
        [](const auto& p, const BlockAddr& key) { return p.first < key; });
    out.push_back(it->second);
  }
  return rounds + flush_victims_locked(victims);
}

BatchFuture DiskArray::submit_write_batch(
    std::span<const std::pair<BlockAddr, Block>> writes) {
  std::vector<BlockAddr> addrs;
  addrs.reserve(writes.size());
  for (const auto& [a, b] : writes) {
    check_addr(a);
    if (b.size() != geom_.block_bytes())
      throw std::invalid_argument("block size mismatch");
    addrs.push_back(a);
  }
  auto state = std::make_shared<detail::BatchState>();
  state->write = true;
  std::lock_guard<std::mutex> lock(mutex_);
  prune_inflight_locked();
  const bool prof = conformance_ != nullptr;

  if (cache_) {
    state->rounds = write_cached_locked(writes);
    state->ready = true;
    return BatchFuture(std::move(state));
  }

  std::uint64_t t0 = prof ? obs::trace_now_ns() : 0;
  BatchPlan plan = plan_batch(addrs);

  if (!exec_ || plan.uniq.empty()) {
    // Serial (or empty) batch, executed eagerly: store each DISTINCT block
    // once; a duplicate address keeps its LAST block, exactly like the
    // sequential store loop this replaces.
    std::vector<const Block*> src(plan.uniq.size(), nullptr);
    for (const auto& [a, b] : writes) src[uniq_index(plan.uniq, a)] = &b;
    std::uint64_t t1 = prof ? obs::trace_now_ns() : 0;
    IoExecutor::BatchTiming timing;
    store_blocks_locked(plan.uniq, src, prof ? &timing : nullptr);
    std::uint64_t t2 = prof ? obs::trace_now_ns() : 0;
    account_batch(plan, /*write=*/true, addrs);
    if (prof) {
      std::uint64_t t3 = obs::trace_now_ns();
      record_phase_locked(plan, /*write=*/true, /*flush=*/false, timing,
                          t1 - t0, t2 - t1, t3 - t2, t3 - t0);
    }
    state->rounds = plan.rounds;
    state->ready = true;
    return BatchFuture(std::move(state));
  }

  // Async path: account now, copy the winning block per distinct address
  // into the state (the caller's span dies at submit; the workers need
  // storage that doesn't), enqueue, return.
  account_batch(plan, /*write=*/true, addrs);
  state->rounds = plan.rounds;
  state->blocks.resize(plan.uniq.size());
  for (const auto& [a, b] : writes) state->blocks[uniq_index(plan.uniq, a)] = b;
  state->per_disk_writes.resize(geom_.num_disks);
  for (std::size_t i = 0; i < plan.uniq.size(); ++i)
    state->per_disk_writes[plan.uniq[i].disk].push_back(
        {plan.uniq[i], &state->blocks[i]});
  if (prof) {
    state->conformance = conformance_;
    state->sample =
        make_phase_sample_locked(plan, /*write=*/true, /*flush=*/false);
  }
  state->uniq = std::move(plan.uniq);
  if (prof) state->sample.plan_ns = sat_sub(obs::trace_now_ns(), t0);
  exec_->submit_writes(*backend_, state->per_disk_writes, state->completion);
  state->submit_end_ns = obs::trace_now_ns();
  inflight_.push_back(state);
  return BatchFuture(std::move(state));
}

std::uint64_t DiskArray::write_cached_locked(
    std::span<const std::pair<BlockAddr, Block>> writes) {
  // Install every write dirty (in submission order, so a duplicate address
  // keeps the last write) for zero I/Os. The only rounds charged are the
  // coalesced write-back of whatever this batch evicted.
  std::vector<std::pair<BlockAddr, Block>> victims;
  for (const auto& [a, b] : writes)
    for (auto& v : cache_->put(a, b, /*dirty=*/true))
      victims.push_back(std::move(v));
  return flush_victims_locked(victims);
}

void DiskArray::prune_inflight_locked() {
  std::erase_if(inflight_,
                [](const std::shared_ptr<detail::BatchState>& s) {
                  return s->done();
                });
}

void DiskArray::drain_inflight_locked() const {
  for (const auto& s : inflight_) s->wait_done();
  inflight_.clear();
}

Block DiskArray::read_block(BlockAddr addr) {
  std::vector<Block> out;
  read_batch(std::span<const BlockAddr>(&addr, 1), out);
  return std::move(out.front());
}

void DiskArray::write_block(BlockAddr addr, Block block) {
  std::pair<BlockAddr, Block> w{addr, std::move(block)};
  write_batch(std::span<const std::pair<BlockAddr, Block>>(&w, 1));
}

Block DiskArray::peek(BlockAddr addr) const {
  check_addr(addr);
  std::lock_guard<std::mutex> lock(mutex_);
  // An async write to this block may still be executing; peek promises the
  // latest submitted contents.
  drain_inflight_locked();
  if (cache_) {
    // A dirty frame holds newer contents than the backend; serve it
    // (accounting-free, like the rest of peek).
    Block b;
    if (cache_->peek(addr, b)) return b;
  }
  return backend_->load(addr);
}

void DiskArray::poke(BlockAddr addr, Block block) {
  check_addr(addr);
  if (block.size() != geom_.block_bytes())
    throw std::invalid_argument("block size mismatch");
  std::lock_guard<std::mutex> lock(mutex_);
  // Poke bypasses the engine's per-disk queues: quiesce first so an
  // in-flight transfer cannot race the direct store (and a still-executing
  // async write cannot land on top of the poked contents).
  drain_inflight_locked();
  // Drop any cached frame so a stale dirty copy cannot overwrite the poked
  // contents on a later flush.
  if (cache_) cache_->invalidate(addr);
  backend_->store(addr, block);
}

void DiskArray::discard_blocks(std::uint32_t first_disk,
                               std::uint32_t num_disks, std::uint64_t base,
                               std::uint64_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  drain_inflight_locked();
  if (cache_) cache_->invalidate_range(first_disk, num_disks, base, count);
  backend_->erase_range(first_disk, num_disks, base, count);
}

std::uint64_t DiskArray::blocks_in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // A just-submitted async write may not have reached the backend yet.
  drain_inflight_locked();
  return backend_->blocks_in_use();
}

void DiskArray::set_sink(std::shared_ptr<obs::Sink> sink) {
  // account_batch reads sink_ under mutex_; mutating it unlocked here was a
  // data race whenever a monitor was attached mid-run under concurrent
  // traffic (the ConcurrentBasicDict + BoundMonitor combination).
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

void DiskArray::add_sink(std::shared_ptr<obs::Sink> sink) {
  if (!sink) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!sink_) {
    sink_ = std::move(sink);
    return;
  }
  if (auto multi = std::dynamic_pointer_cast<obs::MultiSink>(sink_)) {
    multi->add(std::move(sink));
    return;
  }
  sink_ = std::make_shared<obs::MultiSink>(
      std::vector<std::shared_ptr<obs::Sink>>{sink_, std::move(sink)});
}

namespace {
// Open probes of this thread, innermost last (all arrays mixed; the parent
// search matches on the array). Probes are scope-bound in practice, so LIFO
// per thread holds; a probe destroyed out of order is simply skipped here.
std::vector<IoProbe*>& probe_stack() {
  thread_local std::vector<IoProbe*> stack;
  return stack;
}
}  // namespace

IoProbe::IoProbe(const DiskArray& disks)
    : disks_(&disks), start_(disks.stats_snapshot()) {
  auto& stack = probe_stack();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if ((*it)->disks_ == disks_) {
      parent_ = *it;
      break;
    }
  }
  stack.push_back(this);
}

IoProbe::~IoProbe() {
  auto& stack = probe_stack();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (*it == this) {
      stack.erase(std::next(it).base());
      break;
    }
  }
  if (parent_) parent_->nested_ += delta();
}

// Saturating, not wrapping: DiskArray::reset_stats() run mid-probe rebases
// the live counters below start_, and a wrapped delta poisons every bench
// report computed from it (see io_stats.hpp).
IoStats IoProbe::delta() const {
  return saturating_sub(disks_->stats_snapshot(), start_);
}

IoStats IoProbe::exclusive() const {
  IoStats d = delta();
  // Saturating: a child may legitimately have measured more than the parent
  // has left (reset() rebases the parent but not already-closed children).
  d.parallel_ios = sat_sub(d.parallel_ios, nested_.parallel_ios);
  d.read_rounds = sat_sub(d.read_rounds, nested_.read_rounds);
  d.write_rounds = sat_sub(d.write_rounds, nested_.write_rounds);
  d.blocks_read = sat_sub(d.blocks_read, nested_.blocks_read);
  d.blocks_written = sat_sub(d.blocks_written, nested_.blocks_written);
  return d;
}

void IoProbe::reset() {
  start_ = disks_->stats_snapshot();
  nested_ = IoStats{};
}

}  // namespace pddict::pdm
