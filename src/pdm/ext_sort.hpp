// External multiway mergesort in the parallel disk model (striped).
//
// Theorem 6 charges the static dictionary construction to "the time it takes
// to sort nd records"; this module is that sorting substrate, and the
// bench_thm6_static benchmark compares construction I/Os against its cost.
//
// Records are fixed-size byte strings packed into striped logical blocks
// (block size B·D). The sort is the classical run-formation + k-way merge
// with fan-in limited by the internal memory capacity, achieving
// O((n/BD) log_{M/BD} (n/BD)) parallel I/Os.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "pdm/io_stats.hpp"
#include "pdm/striped_view.hpp"

namespace pddict::pdm {

/// Extracts the sort key from one record.
using SortKeyFn = std::function<std::uint64_t(std::span<const std::byte>)>;

struct SortStats {
  std::uint64_t initial_runs = 0;
  std::uint64_t merge_passes = 0;
  IoStats io;  // I/O spent by the sort alone
};

/// Records per striped logical block for a given record size.
std::uint64_t records_per_logical_block(const Geometry& geom,
                                        std::size_t record_bytes);

/// Sorts `num_records` records of `record_bytes` bytes each, stored packed in
/// the `input` region, using `scratch` (a disjoint region of at least equal
/// size) as temporary space. `memory_bytes` bounds internal memory. The sorted
/// records end up packed in `input`. Ties are kept in original order (stable).
SortStats external_sort(StripedView input, StripedView scratch,
                        std::uint64_t num_records, std::size_t record_bytes,
                        const SortKeyFn& key, std::size_t memory_bytes);

// ---- convenience record I/O over striped regions ----

/// Writes records packed into the region starting at logical block 0.
/// Returns parallel I/Os spent.
std::uint64_t write_records(StripedView region,
                            std::span<const std::byte> records,
                            std::size_t record_bytes);

/// Reads `num_records` packed records back out of the region.
std::vector<std::byte> read_records(StripedView region,
                                    std::uint64_t num_records,
                                    std::size_t record_bytes);

}  // namespace pddict::pdm
