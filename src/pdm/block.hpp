// Typed views over raw block storage.
//
// A block is a fixed-size byte buffer holding B item slots. Dictionaries lay
// out records inside blocks themselves; these helpers centralize the
// (de)serialization of POD values and item slots so layout bugs surface in one
// place.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace pddict::pdm {

using Block = std::vector<std::byte>;

/// Read a trivially-copyable value at byte offset `off`.
template <typename T>
T load_pod(std::span<const std::byte> bytes, std::size_t off) {
  static_assert(std::is_trivially_copyable_v<T>);
  assert(off + sizeof(T) <= bytes.size());
  T v;
  std::memcpy(&v, bytes.data() + off, sizeof(T));
  return v;
}

/// Write a trivially-copyable value at byte offset `off`.
template <typename T>
void store_pod(std::span<std::byte> bytes, std::size_t off, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  assert(off + sizeof(T) <= bytes.size());
  std::memcpy(bytes.data() + off, &v, sizeof(T));
}

/// View of item slot `i` (of `item_bytes` each) inside a block.
inline std::span<std::byte> item_slot(Block& b, std::uint32_t i,
                                      std::uint32_t item_bytes) {
  assert(static_cast<std::size_t>(i + 1) * item_bytes <= b.size());
  return {b.data() + static_cast<std::size_t>(i) * item_bytes, item_bytes};
}

inline std::span<const std::byte> item_slot(const Block& b, std::uint32_t i,
                                            std::uint32_t item_bytes) {
  assert(static_cast<std::size_t>(i + 1) * item_bytes <= b.size());
  return {b.data() + static_cast<std::size_t>(i) * item_bytes, item_bytes};
}

}  // namespace pddict::pdm
