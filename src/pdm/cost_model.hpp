// Optional wall-clock cost model over parallel I/O counts.
//
// The paper's metric is parallel I/Os; this helper translates an IoStats
// delta into estimated elapsed time for a concrete storage technology, which
// the motivation section reasons about informally ("making just one disk read
// instead of 3 can have a tremendous impact"). Each parallel round pays one
// positioning latency (all disks seek concurrently) plus the transfer of one
// block per disk.
#pragma once

#include "pdm/geometry.hpp"
#include "pdm/io_stats.hpp"

namespace pddict::pdm {

struct DiskCostModel {
  double seek_ms = 0.0;                 // per parallel round
  double transfer_ms_per_mib = 0.0;     // sequential bandwidth (per disk)

  /// Estimated elapsed milliseconds for the given I/O trace: rounds seek in
  /// parallel; transfers of one block per disk overlap across disks.
  double elapsed_ms(const IoStats& io, const Geometry& geom) const {
    double block_mib =
        static_cast<double>(geom.block_bytes()) / (1024.0 * 1024.0);
    return static_cast<double>(io.parallel_ios) *
           (seek_ms + transfer_ms_per_mib * block_mib);
  }

  /// 7200rpm spinning disk array: ~8ms positioning, ~6.7ms/MiB (150 MiB/s).
  static constexpr DiskCostModel spinning() { return {8.0, 6.7}; }
  /// NVMe flash: ~80us random access, ~0.3ms/MiB (3 GiB/s).
  static constexpr DiskCostModel nvme() { return {0.08, 0.0003 * 1024}; }
};

}  // namespace pddict::pdm
