// Optional wall-clock cost model over parallel I/O counts.
//
// The paper's metric is parallel I/Os; this helper translates an IoStats
// delta into estimated elapsed time for a concrete storage technology, which
// the motivation section reasons about informally ("making just one disk read
// instead of 3 can have a tremendous impact"). Each parallel round pays one
// positioning latency (all disks seek concurrently) plus the transfer of one
// block per disk.
#pragma once

#include "obs/cost_conformance.hpp"
#include "pdm/geometry.hpp"
#include "pdm/io_stats.hpp"

namespace pddict::pdm {

/// Shape of one executed round batch, reduced to its most-loaded worker:
/// workers transfer concurrently, so the busiest one bounds the batch's wall
/// time. Serial execution is one worker owning every disk, so the counts are
/// whole-batch totals there.
struct RoundShape {
  std::uint64_t max_worker_runs = 0;    // coalesced contiguous runs (seeks)
  std::uint64_t max_worker_blocks = 0;  // blocks transferred
};

struct DiskCostModel {
  double seek_ms = 0.0;                 // per parallel round
  double transfer_ms_per_mib = 0.0;     // sequential bandwidth (per disk)

  /// Estimated elapsed milliseconds for the given I/O trace: rounds seek in
  /// parallel; transfers of one block per disk overlap across disks.
  double elapsed_ms(const IoStats& io, const Geometry& geom) const {
    double block_mib =
        static_cast<double>(geom.block_bytes()) / (1024.0 * 1024.0);
    return static_cast<double>(io.parallel_ios) *
           (seek_ms + transfer_ms_per_mib * block_mib);
  }

  /// Predicted wall nanoseconds for one executed batch: every coalesced run
  /// pays one positioning latency, every block one transfer, and disks
  /// overlap — the finer-grained form of elapsed_ms that the conformance
  /// layer checks against measured phase timings. Contiguous blocks coalesce
  /// into a single positioned transfer (FileBackend merges them into one
  /// preadv/pwritev), which is why runs, not rounds, carry the seek term.
  double batch_wall_ns(const RoundShape& shape, const Geometry& geom) const {
    double block_mib =
        static_cast<double>(geom.block_bytes()) / (1024.0 * 1024.0);
    return static_cast<double>(shape.max_worker_runs) * seek_ms * 1e6 +
           static_cast<double>(shape.max_worker_blocks) *
               transfer_ms_per_mib * block_mib * 1e6;
  }

  /// Conformance options with this model's nonzero parameters held fixed.
  /// Zero parameters stay unknown — the calibrator fits them — so e.g.
  /// simulated() pins the injected seek latency while the real memcpy
  /// transfer cost is still learned. Overhead is always left to the
  /// calibrator: dispatch cost is harness, not disk.
  obs::CostConformance::Options conformance_options(
      const Geometry& geom) const {
    obs::CostConformance::Options opt;
    double block_mib =
        static_cast<double>(geom.block_bytes()) / (1024.0 * 1024.0);
    if (seek_ms > 0.0) opt.seek_ns = seek_ms * 1e6;
    if (transfer_ms_per_mib > 0.0)
      opt.transfer_ns_per_block = transfer_ms_per_mib * block_mib * 1e6;
    return opt;
  }

  /// 7200rpm spinning disk array: ~8ms positioning, ~6.7ms/MiB (150 MiB/s).
  static constexpr DiskCostModel spinning() { return {8.0, 6.7}; }
  /// NVMe flash: ~80us random access, ~0.3ms/MiB (3 GiB/s).
  static constexpr DiskCostModel nvme() { return {0.08, 0.0003 * 1024}; }
  /// A FileBackend with simulated positioning latency: the sleep dominates,
  /// transfer time is left to the calibrator.
  static constexpr DiskCostModel simulated(std::uint32_t seek_latency_us) {
    return {static_cast<double>(seek_latency_us) / 1000.0, 0.0};
  }
};

}  // namespace pddict::pdm
