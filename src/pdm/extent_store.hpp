// Extent store: allocate-once bulk satellite storage.
//
// Section 4.1: "Larger satellite data can be retrieved in one additional I/O
// by following a pointer" — and generally "one can always use the dictionary
// to retrieve a pointer to satellite information of size BD, which can then
// be retrieved in an extra I/O". The extent store is the target of those
// pointers: an append-only region of striped extents, each spanning one or
// more logical blocks, addressed by a stable 64-bit extent id. Extents are
// never moved once written (the paper's reference-stability property).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pdm/striped_view.hpp"

namespace pddict::pdm {

class ExtentStore {
 public:
  /// Extents are carved from `region` starting at logical block 0.
  explicit ExtentStore(StripedView region);

  /// Appends `bytes` as a new extent; returns its id. Costs
  /// ceil(bytes / (B·D)) parallel write I/Os.
  std::uint64_t append(std::span<const std::byte> bytes);

  /// Reads extent `id` back. Costs ceil(size / (B·D)) parallel read I/Os —
  /// exactly one I/O for extents up to a full stripe.
  std::vector<std::byte> read(std::uint64_t id);

  std::uint64_t num_extents() const { return directory_.size(); }
  std::uint64_t blocks_used() const { return next_block_; }

 private:
  struct Extent {
    std::uint64_t first_block;
    std::uint64_t size_bytes;
  };
  StripedView region_;
  std::uint64_t next_block_ = 0;
  // The directory is internal-memory metadata (block index + length per
  // extent); dictionaries store the extent id as their satellite value.
  std::vector<Extent> directory_;
};

}  // namespace pddict::pdm
