#include "pdm/ext_sort.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <queue>
#include <stdexcept>
#include <vector>

#include "obs/span.hpp"

namespace pddict::pdm {

namespace {

struct Run {
  std::uint64_t first_block = 0;   // logical block index of first record
  std::uint64_t num_records = 0;
};

/// Streaming reader over one run, buffering one logical block.
class RunReader {
 public:
  RunReader(StripedView& view, Run run, std::size_t record_bytes,
            std::uint64_t records_per_block)
      : view_(&view),
        run_(run),
        record_bytes_(record_bytes),
        rpb_(records_per_block) {}

  bool exhausted() const { return consumed_ == run_.num_records; }

  /// Key of the record at the head of the run (run must not be exhausted).
  std::uint64_t head_key(const SortKeyFn& key) {
    fill();
    return key(head());
  }

  std::span<const std::byte> head() {
    fill();
    std::size_t idx = consumed_ % rpb_;
    return {buffer_.data() + idx * record_bytes_, record_bytes_};
  }

  void pop() {
    ++consumed_;
    if (consumed_ % rpb_ == 0) buffer_valid_ = false;
  }

 private:
  // Double-buffered: filling block i also submits the read of block i+1 (if
  // the run extends that far), so in a multi-way merge the next block of
  // each run streams in while records of the current one are being merged.
  // Blocks are consumed strictly in order and every block of a run is
  // eventually read, so when prefetch_ is valid it always holds exactly the
  // block fill() wants next and the multiset of reads — hence every I/O
  // count — is identical to the unprefetched reader.
  void fill() {
    assert(!exhausted());
    if (buffer_valid_) return;
    std::uint64_t cur = run_.first_block + consumed_ / rpb_;
    if (prefetch_.valid())
      buffer_ = view_->join_read(std::move(prefetch_));
    else
      buffer_ = view_->read(cur);
    buffer_valid_ = true;
    std::uint64_t last = run_.first_block + (run_.num_records - 1) / rpb_;
    if (cur < last) prefetch_ = view_->submit_read(cur + 1);
  }

  StripedView* view_;
  Run run_;
  std::size_t record_bytes_;
  std::uint64_t rpb_;
  std::uint64_t consumed_ = 0;
  std::vector<std::byte> buffer_;
  bool buffer_valid_ = false;
  BatchFuture prefetch_;
};

/// Buffered block writer appending records to a region.
class RunWriter {
 public:
  RunWriter(StripedView& view, std::uint64_t first_block,
            std::size_t record_bytes, std::uint64_t records_per_block)
      : view_(&view),
        block_(first_block),
        record_bytes_(record_bytes),
        rpb_(records_per_block),
        buffer_(view.logical_block_bytes(), std::byte{0}) {}

  void push(std::span<const std::byte> record) {
    std::memcpy(buffer_.data() + fill_ * record_bytes_, record.data(),
                record_bytes_);
    if (++fill_ == rpb_) flush();
  }

  void finish() {
    if (fill_ > 0) flush();
  }

 private:
  void flush() {
    view_->write(block_++, buffer_);
    std::fill(buffer_.begin(), buffer_.end(), std::byte{0});
    fill_ = 0;
  }

  StripedView* view_;
  std::uint64_t block_;
  std::size_t record_bytes_;
  std::uint64_t rpb_;
  std::vector<std::byte> buffer_;
  std::uint64_t fill_ = 0;
};

}  // namespace

std::uint64_t records_per_logical_block(const Geometry& geom,
                                        std::size_t record_bytes) {
  if (record_bytes == 0 || record_bytes > geom.stripe_bytes())
    throw std::invalid_argument("record does not fit in a logical block");
  return geom.stripe_bytes() / record_bytes;
}

SortStats external_sort(StripedView input, StripedView scratch,
                        std::uint64_t num_records, std::size_t record_bytes,
                        const SortKeyFn& key, std::size_t memory_bytes) {
  SortStats st;
  obs::Span span(input.disks(), "ext_sort");
  IoProbe probe(input.disks());
  const std::uint64_t rpb =
      records_per_logical_block(input.geometry(), record_bytes);
  if (num_records == 0) return st;

  const std::size_t lbb = input.logical_block_bytes();
  // Internal memory in logical blocks; need >= 3 for a 2-way merge
  // (two input buffers + one output buffer).
  const std::uint64_t mem_blocks = std::max<std::uint64_t>(3, memory_bytes / lbb);
  const std::uint64_t fanin = mem_blocks - 1;
  const std::uint64_t total_blocks = (num_records + rpb - 1) / rpb;

  // ---- run formation: input -> scratch ----
  struct KeyedRecord {
    std::uint64_t key;
    std::uint64_t seq;  // original order, for stability
    std::vector<std::byte> bytes;
  };
  std::vector<Run> runs;
  {
    std::uint64_t record_cursor = 0;
    for (std::uint64_t b0 = 0; b0 < total_blocks; b0 += mem_blocks) {
      std::uint64_t blocks_here = std::min<std::uint64_t>(mem_blocks, total_blocks - b0);
      std::vector<KeyedRecord> recs;
      recs.reserve(blocks_here * rpb);
      for (std::uint64_t b = 0; b < blocks_here; ++b) {
        std::vector<std::byte> block = input.read(b0 + b);
        for (std::uint64_t r = 0; r < rpb && record_cursor < num_records; ++r) {
          std::span<const std::byte> rec{block.data() + r * record_bytes,
                                         record_bytes};
          recs.push_back({key(rec), record_cursor++,
                          std::vector<std::byte>(rec.begin(), rec.end())});
        }
      }
      std::sort(recs.begin(), recs.end(), [](const auto& a, const auto& b) {
        return a.key != b.key ? a.key < b.key : a.seq < b.seq;
      });
      RunWriter w(scratch, b0, record_bytes, rpb);
      for (const auto& r : recs) w.push(r.bytes);
      w.finish();
      runs.push_back({b0, static_cast<std::uint64_t>(recs.size())});
    }
  }
  st.initial_runs = runs.size();

  // ---- merge passes, ping-ponging scratch <-> input ----
  StripedView* src = &scratch;
  StripedView* dst = &input;
  while (runs.size() > 1) {
    ++st.merge_passes;
    std::vector<Run> next_runs;
    std::uint64_t out_block = 0;
    for (std::size_t g = 0; g < runs.size(); g += fanin) {
      std::size_t group_end = std::min(runs.size(), g + fanin);
      std::vector<RunReader> readers;
      readers.reserve(group_end - g);
      std::uint64_t group_records = 0;
      for (std::size_t i = g; i < group_end; ++i) {
        readers.emplace_back(*src, runs[i], record_bytes, rpb);
        group_records += runs[i].num_records;
      }
      RunWriter w(*dst, out_block, record_bytes, rpb);
      // (key, reader index): reader index doubles as the stability tiebreak
      // because earlier runs contain earlier records.
      using Head = std::pair<std::uint64_t, std::size_t>;
      std::priority_queue<Head, std::vector<Head>, std::greater<>> heap;
      for (std::size_t i = 0; i < readers.size(); ++i)
        if (!readers[i].exhausted()) heap.push({readers[i].head_key(key), i});
      while (!heap.empty()) {
        auto [k, i] = heap.top();
        heap.pop();
        w.push(readers[i].head());
        readers[i].pop();
        if (!readers[i].exhausted()) heap.push({readers[i].head_key(key), i});
      }
      w.finish();
      next_runs.push_back({out_block, group_records});
      out_block += (group_records + rpb - 1) / rpb;
    }
    runs = std::move(next_runs);
    std::swap(src, dst);
  }

  // `src` now points at the region holding the single sorted run (we swapped
  // after the last pass). Copy over if it is not the input region.
  if (src != &input) {
    for (std::uint64_t b = 0; b < total_blocks; ++b)
      input.write(b, scratch.read(b));
  }
  st.io = probe.delta();
  return st;
}

std::uint64_t write_records(StripedView region,
                            std::span<const std::byte> records,
                            std::size_t record_bytes) {
  IoProbe probe(region.disks());
  const std::uint64_t rpb =
      records_per_logical_block(region.geometry(), record_bytes);
  if (record_bytes == 0 || records.size() % record_bytes != 0)
    throw std::invalid_argument("records byte length not a record multiple");
  const std::uint64_t n = records.size() / record_bytes;
  RunWriter w(region, 0, record_bytes, rpb);
  for (std::uint64_t i = 0; i < n; ++i)
    w.push(records.subspan(i * record_bytes, record_bytes));
  w.finish();
  return probe.ios();
}

std::vector<std::byte> read_records(StripedView region,
                                    std::uint64_t num_records,
                                    std::size_t record_bytes) {
  const std::uint64_t rpb =
      records_per_logical_block(region.geometry(), record_bytes);
  std::vector<std::byte> out;
  out.reserve(num_records * record_bytes);
  const std::uint64_t total_blocks = (num_records + rpb - 1) / rpb;
  std::uint64_t remaining = num_records;
  for (std::uint64_t b = 0; b < total_blocks; ++b) {
    std::vector<std::byte> block = region.read(b);
    std::uint64_t here = std::min<std::uint64_t>(rpb, remaining);
    out.insert(out.end(), block.begin(),
               block.begin() + static_cast<std::ptrdiff_t>(here * record_bytes));
    remaining -= here;
  }
  return out;
}

}  // namespace pddict::pdm
