// Geometry of a parallel disk model instance (Vitter–Shriver).
//
// There are D storage devices, each an array of blocks with capacity for B
// data items; one parallel I/O moves one block of B items from/to each of the
// D disks. An item is "sufficiently large to hold a pointer value or a key
// value" (paper, Section 1); we make the item size explicit in bytes.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace pddict::pdm {

struct Geometry {
  std::uint32_t num_disks = 1;       // D
  std::uint32_t block_items = 1;     // B
  std::uint32_t item_bytes = 8;      // size of one data item
  std::uint64_t blocks_per_disk = 0; // capacity; 0 = unbounded (grow on write)

  constexpr std::size_t block_bytes() const {
    return static_cast<std::size_t>(block_items) * item_bytes;
  }
  /// Bytes moved by one full-width parallel I/O.
  constexpr std::size_t stripe_bytes() const {
    return block_bytes() * num_disks;
  }
  /// Items moved by one full-width parallel I/O (the "BD" of the paper).
  constexpr std::uint64_t stripe_items() const {
    return static_cast<std::uint64_t>(block_items) * num_disks;
  }

  constexpr bool valid() const {
    return num_disks >= 1 && block_items >= 1 && item_bytes >= 1;
  }
};

/// Address of one physical block.
struct BlockAddr {
  std::uint32_t disk = 0;
  std::uint64_t block = 0;

  friend constexpr bool operator==(const BlockAddr&, const BlockAddr&) = default;
  friend constexpr auto operator<=>(const BlockAddr&, const BlockAddr&) = default;
};

}  // namespace pddict::pdm
