// Completion-based handle for one in-flight round batch.
//
// DiskArray::submit_read_batch / submit_write_batch plan and *account* a
// batch at submit time (in submission order, under the scheduling lock — so
// every parallel-I/O count, cache counter and IoEvent is byte-identical to
// the synchronous read_batch/write_batch path for any io_threads value) and
// hand the planned transfers to the IoExecutor without waiting. The returned
// BatchFuture is the only way to observe the data: get()/wait() join the
// batch, rethrow the first worker error, and (for reads) fan the fetched
// distinct blocks back out to the submitted request order. Between submit and
// join the caller is free to plan its next batch — that window is the round
// pipelining this module exists for, and it is what the `overlap` phase of
// obs::CostConformance measures.
//
// Lifetime: the shared BatchState owns everything the workers touch (the
// per-disk transfer lists and the block storage they point into) plus the
// IoExecutor::Completion itself, so a future may outlive the DiskArray's
// engine — set_io_threads() and the destructor drain in-flight completions
// before re-seating the executor, and join() waits on the Completion
// directly, never through the executor. A future is move-only and
// single-shot; dropping one un-joined joins in the destructor (swallowing any
// worker error, but still recording the batch's phase sample).
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "obs/cost_conformance.hpp"
#include "pdm/block.hpp"
#include "pdm/geometry.hpp"
#include "pdm/io_executor.hpp"

namespace pddict::pdm {

namespace detail {

/// Everything one submitted batch needs after the submitting frame returns.
/// Built and filled by DiskArray under its scheduling lock; afterwards the
/// workers write only through `completion` and the BlockRead targets, the
/// owning BatchFuture mutates only from its (single) owner thread, and
/// DiskArray's drain path calls the const-shaped waiters. Those three never
/// share mutable state outside Completion's own mutex.
struct BatchState {
  bool write = false;
  std::uint64_t rounds = 0;

  /// True when the batch was resolved synchronously at submit (cache served
  /// every block, empty plan, or serial execution): `out` is already final,
  /// `completion` was never armed, and the phase sample was recorded at
  /// submit by DiskArray itself.
  bool ready = false;

  /// Reads: request-order result blocks. Filled at submit when `ready`,
  /// otherwise at join by fanning `blocks` out through `uniq`.
  std::vector<Block> out;

  /// Reads: the submitted addresses in request order (duplicates included).
  std::vector<BlockAddr> submitted;
  /// Sorted distinct addresses of the batch (plan_batch's uniq).
  std::vector<BlockAddr> uniq;
  /// Reads: fetch targets, indexed like `uniq`. Writes: stable copies of the
  /// winning source block per distinct address (the caller's span dies at
  /// submit; the workers need storage that doesn't).
  std::vector<Block> blocks;

  /// Per-disk transfer lists the executor jobs point at (exactly one
  /// direction is populated). Entries reference `blocks`.
  std::vector<std::vector<BlockRead>> per_disk_reads;
  std::vector<std::vector<BlockWrite>> per_disk_writes;

  IoExecutor::Completion completion;

  /// Phase-sample skeleton (shape + plan_ns) built at submit; the timing
  /// fields are filled and recorded against `conformance` at join. Null
  /// conformance = recording off.
  std::shared_ptr<obs::CostConformance> conformance;
  obs::RoundPhaseSample sample;
  /// Timestamp right after the executor accepted the batch: the exec phase
  /// of an async batch is finish_ns - submit_end_ns.
  std::uint64_t submit_end_ns = 0;

  /// First worker error, captured at join and sticky (get() and wait() both
  /// rethrow it).
  std::exception_ptr error;
  bool joined = false;

  /// Owner-side join: wait for the completion, capture the error, fan reads
  /// out to request order, record the phase sample. Idempotent; never
  /// throws the worker error itself (the future rethrows after).
  void join();
  /// Drain-side wait (DiskArray quiescing before peek/reconfigure/teardown):
  /// blocks until the workers retired every job, mutates nothing, never
  /// steals the error.
  void wait_done();
  /// Nonblocking "workers are finished" check (prune heuristic).
  bool done();
};

}  // namespace detail

/// Move-only handle to one submitted batch. See file comment.
class BatchFuture {
 public:
  BatchFuture() = default;
  explicit BatchFuture(std::shared_ptr<detail::BatchState> state)
      : state_(std::move(state)) {}

  BatchFuture(BatchFuture&&) noexcept = default;
  BatchFuture& operator=(BatchFuture&& other) noexcept {
    if (this != &other) {
      release();
      state_ = std::move(other.state_);
    }
    return *this;
  }
  BatchFuture(const BatchFuture&) = delete;
  BatchFuture& operator=(const BatchFuture&) = delete;

  /// Joins an un-joined batch, swallowing any worker error (the phase sample
  /// is still recorded). Join explicitly via get()/wait() to see errors.
  ~BatchFuture() { release(); }

  bool valid() const { return state_ != nullptr; }

  /// Rounds accounted for this batch at submit time (0 for a fully cached
  /// batch). Valid immediately — accounting never waits for execution.
  std::uint64_t rounds() const { return state_ ? state_->rounds : 0; }

  /// Nonblocking: true when the workers have retired every transfer (the
  /// data may still need its join-side fan-out).
  bool done() const { return state_ && state_->done(); }

  /// Join a read batch: blocks until the data arrived, rethrows the first
  /// worker error, moves the request-order blocks into `out`. Returns
  /// rounds(). Single-shot — a second call yields an empty result.
  std::uint64_t get(std::vector<Block>& out);

  /// Join without consuming data (the write-future form). Rethrows the
  /// first worker error; returns rounds().
  std::uint64_t wait();

 private:
  void release() {
    if (state_ && !state_->joined) state_->join();
    state_.reset();
  }

  std::shared_ptr<detail::BatchState> state_;
};

}  // namespace pddict::pdm
