#include "pdm/record_stream.hpp"

#include <cassert>

#include "pdm/ext_sort.hpp"

namespace pddict::pdm {

RecordWriter::RecordWriter(StripedView& view, std::uint64_t first_block,
                           std::size_t record_bytes)
    : view_(&view),
      first_block_(first_block),
      next_block_(first_block),
      record_bytes_(record_bytes),
      rpb_(records_per_logical_block(view.geometry(), record_bytes)),
      buffer_(view.logical_block_bytes(), std::byte{0}) {}

void RecordWriter::push(std::span<const std::byte> record) {
  assert(record.size() == record_bytes_);
  std::memcpy(buffer_.data() + fill_ * record_bytes_, record.data(),
              record_bytes_);
  ++records_;
  if (++fill_ == rpb_) {
    view_->write(next_block_++, buffer_);
    std::fill(buffer_.begin(), buffer_.end(), std::byte{0});
    fill_ = 0;
  }
}

void RecordWriter::finish() {
  if (fill_ > 0) {
    view_->write(next_block_++, buffer_);
    std::fill(buffer_.begin(), buffer_.end(), std::byte{0});
    fill_ = 0;
  }
}

RecordReader::RecordReader(StripedView& view, std::uint64_t first_block,
                           std::uint64_t num_records, std::size_t record_bytes)
    : view_(&view),
      first_block_(first_block),
      num_records_(num_records),
      record_bytes_(record_bytes),
      rpb_(records_per_logical_block(view.geometry(), record_bytes)) {}

void RecordReader::fill() {
  assert(!exhausted());
  if (!buffer_valid_) {
    buffer_ = view_->read(first_block_ + consumed_ / rpb_);
    buffer_valid_ = true;
  }
}

std::span<const std::byte> RecordReader::head() {
  fill();
  std::size_t idx = consumed_ % rpb_;
  return {buffer_.data() + idx * record_bytes_, record_bytes_};
}

void RecordReader::pop() {
  ++consumed_;
  if (consumed_ % rpb_ == 0) buffer_valid_ = false;
}

}  // namespace pddict::pdm
