#include "pdm/extent_store.hpp"

#include <cstring>
#include <stdexcept>

#include "util/math.hpp"

namespace pddict::pdm {

ExtentStore::ExtentStore(StripedView region) : region_(std::move(region)) {}

std::uint64_t ExtentStore::append(std::span<const std::byte> bytes) {
  if (bytes.empty()) throw std::invalid_argument("empty extent");
  const std::size_t lbb = region_.logical_block_bytes();
  std::uint64_t blocks = util::ceil_div<std::uint64_t>(bytes.size(), lbb);
  std::uint64_t id = directory_.size();
  directory_.push_back({next_block_, bytes.size()});
  std::vector<std::byte> block(lbb, std::byte{0});
  for (std::uint64_t b = 0; b < blocks; ++b) {
    std::size_t off = b * lbb;
    std::size_t take = std::min(lbb, bytes.size() - off);
    std::fill(block.begin(), block.end(), std::byte{0});
    std::memcpy(block.data(), bytes.data() + off, take);
    region_.write(next_block_++, block);
  }
  return id;
}

std::vector<std::byte> ExtentStore::read(std::uint64_t id) {
  if (id >= directory_.size()) throw std::out_of_range("unknown extent");
  const Extent& e = directory_[id];
  const std::size_t lbb = region_.logical_block_bytes();
  std::uint64_t blocks = util::ceil_div<std::uint64_t>(e.size_bytes, lbb);
  std::vector<std::byte> out;
  out.reserve(e.size_bytes);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    std::vector<std::byte> block = region_.read(e.first_block + b);
    std::size_t off = b * lbb;
    std::size_t take = std::min(lbb, e.size_bytes - off);
    out.insert(out.end(), block.begin(),
               block.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

}  // namespace pddict::pdm
