#include "pdm/file_backend.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <time.h>
#include <unistd.h>

#ifdef __linux__
#include <linux/falloc.h>  // FALLOC_FL_PUNCH_HOLE
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace pddict::pdm {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

// Linux caps one vectored call at IOV_MAX (1024) segments; stay under it.
constexpr std::size_t kMaxIov = 512;

}  // namespace

FileBackend::FileBackend(const Geometry& geom, const std::string& directory,
                         std::uint32_t seek_latency_us)
    : block_bytes_(geom.block_bytes()), seek_latency_us_(seek_latency_us) {
  fds_.reserve(geom.num_disks);
  for (std::uint32_t d = 0; d < geom.num_disks; ++d) {
    std::string path = directory + "/disk_" + std::to_string(d) + ".bin";
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) throw_errno("opening " + path);
    fds_.push_back(fd);
  }
}

FileBackend::~FileBackend() {
  for (int fd : fds_)
    if (fd >= 0) ::close(fd);
}

void FileBackend::simulate_seek() const {
  if (seek_latency_us_ == 0) return;
  struct timespec ts;
  ts.tv_sec = seek_latency_us_ / 1000000;
  ts.tv_nsec = static_cast<long>(seek_latency_us_ % 1000000) * 1000;
  // Sleeping (not spinning) is the point: a simulated seek occupies the disk,
  // not a CPU, so concurrent workers overlap seeks the way real disks do.
  ::nanosleep(&ts, nullptr);
}

ssize_t FileBackend::do_pread(int fd, void* buf, std::size_t count,
                              off_t offset) {
  if (fault_.eintr_every != 0 &&
      (fault_syscalls_.fetch_add(1, std::memory_order_relaxed) + 1) %
              fault_.eintr_every ==
          0) {
    errno = EINTR;
    return -1;
  }
  if (fault_.max_transfer_bytes != 0)
    count = std::min(count, fault_.max_transfer_bytes);
  return ::pread(fd, buf, count, offset);
}

ssize_t FileBackend::do_pwrite(int fd, const void* buf, std::size_t count,
                               off_t offset) {
  if (fault_.eintr_every != 0 &&
      (fault_syscalls_.fetch_add(1, std::memory_order_relaxed) + 1) %
              fault_.eintr_every ==
          0) {
    errno = EINTR;
    return -1;
  }
  if (fault_.zero_writes) return 0;
  if (fault_.max_transfer_bytes != 0)
    count = std::min(count, fault_.max_transfer_bytes);
  return ::pwrite(fd, buf, count, offset);
}

ssize_t FileBackend::do_preadv(int fd, struct iovec* iov, int iovcnt,
                               off_t offset) {
  // Under fault injection, degrade to one (capped / interruptible) pread of
  // the first segment: a legitimate short result that forces the vectored
  // continuation loop to iterate.
  if (faults_active()) return do_pread(fd, iov[0].iov_base, iov[0].iov_len,
                                       offset);
  return ::preadv(fd, iov, iovcnt, offset);
}

ssize_t FileBackend::do_pwritev(int fd, struct iovec* iov, int iovcnt,
                                off_t offset) {
  if (faults_active())
    return do_pwrite(fd, iov[0].iov_base, iov[0].iov_len, offset);
  return ::pwritev(fd, iov, iovcnt, offset);
}

Block FileBackend::load(const BlockAddr& addr) {
  simulate_seek();
  Block block(block_bytes_, std::byte{0});
  off_t offset = static_cast<off_t>(addr.block) *
                 static_cast<off_t>(block_bytes_);
  // Loop to a full block or true EOF: POSIX lets pread return fewer bytes
  // than asked for reasons other than end-of-file (signals, pipe-ish
  // filesystems, RLIMIT_FSIZE). The old single-shot call treated ANY short
  // read as EOF and silently served a corrupt zero tail for the mid-file
  // case; only got == 0 actually means "past EOF" (fresh-disk zeros).
  std::size_t done = 0;
  while (done < block_bytes_) {
    ssize_t got = do_pread(fds_[addr.disk], block.data() + done,
                           block_bytes_ - done,
                           offset + static_cast<off_t>(done));
    if (got < 0) {
      if (errno == EINTR) continue;
      throw_errno("pread");
    }
    if (got == 0) break;  // EOF: the remaining zero tail is fresh-disk zeros
    done += static_cast<std::size_t>(got);
  }
  return block;
}

void FileBackend::store(const BlockAddr& addr, const Block& block) {
  simulate_seek();
  off_t offset = static_cast<off_t>(addr.block) *
                 static_cast<off_t>(block_bytes_);
  std::size_t done = 0;
  while (done < block.size()) {
    ssize_t put = do_pwrite(fds_[addr.disk], block.data() + done,
                            block.size() - done,
                            offset + static_cast<off_t>(done));
    if (put < 0) {
      if (errno == EINTR) continue;
      throw_errno("pwrite");
    }
    if (put == 0)
      throw ShortWriteError("pwrite accepted 0 bytes (device full or quota?)");
    done += static_cast<std::size_t>(put);
  }
}

void FileBackend::load_batch(std::span<BlockRead> reads) {
  std::sort(reads.begin(), reads.end(),
            [](const BlockRead& x, const BlockRead& y) {
              return x.addr < y.addr;
            });
  std::size_t i = 0;
  while (i < reads.size()) {
    // Extend a run of contiguous blocks on one disk.
    std::size_t j = i + 1;
    while (j < reads.size() && j - i < kMaxIov &&
           reads[j].addr.disk == reads[i].addr.disk &&
           reads[j].addr.block == reads[j - 1].addr.block + 1)
      ++j;
    std::vector<struct iovec> iov;
    iov.reserve(j - i);
    for (std::size_t k = i; k < j; ++k) {
      reads[k].out->assign(block_bytes_, std::byte{0});
      iov.push_back({reads[k].out->data(), block_bytes_});
    }
    simulate_seek();
    int fd = fds_[reads[i].addr.disk];
    off_t offset = static_cast<off_t>(reads[i].addr.block) *
                   static_cast<off_t>(block_bytes_);
    std::size_t done = 0;
    const std::size_t total = (j - i) * block_bytes_;
    std::size_t iov_at = 0;
    while (done < total) {
      ssize_t got = do_preadv(fd, iov.data() + iov_at,
                              static_cast<int>(iov.size() - iov_at),
                              offset + static_cast<off_t>(done));
      if (got < 0) {
        if (errno == EINTR) continue;  // interrupted, nothing transferred
        throw_errno("preadv");
      }
      if (got == 0) break;  // EOF: the pre-zeroed tail is fresh-disk zeros
      done += static_cast<std::size_t>(got);
      // Advance past fully transferred segments; resize a partial one so the
      // next call continues exactly where this one stopped.
      while (iov_at < iov.size() && iov[iov_at].iov_len <= static_cast<std::size_t>(got)) {
        got -= static_cast<ssize_t>(iov[iov_at].iov_len);
        ++iov_at;
      }
      if (iov_at < iov.size() && got > 0) {
        iov[iov_at].iov_base = static_cast<char*>(iov[iov_at].iov_base) + got;
        iov[iov_at].iov_len -= static_cast<std::size_t>(got);
      }
    }
    i = j;
  }
}

void FileBackend::store_batch(std::span<BlockWrite> writes) {
  std::sort(writes.begin(), writes.end(),
            [](const BlockWrite& x, const BlockWrite& y) {
              return x.addr < y.addr;
            });
  std::size_t i = 0;
  while (i < writes.size()) {
    std::size_t j = i + 1;
    while (j < writes.size() && j - i < kMaxIov &&
           writes[j].addr.disk == writes[i].addr.disk &&
           writes[j].addr.block == writes[j - 1].addr.block + 1)
      ++j;
    std::vector<struct iovec> iov;
    iov.reserve(j - i);
    for (std::size_t k = i; k < j; ++k)
      iov.push_back({const_cast<std::byte*>(writes[k].block->data()),
                     writes[k].block->size()});
    simulate_seek();
    int fd = fds_[writes[i].addr.disk];
    off_t offset = static_cast<off_t>(writes[i].addr.block) *
                   static_cast<off_t>(block_bytes_);
    std::size_t done = 0;
    const std::size_t total = (j - i) * block_bytes_;
    std::size_t iov_at = 0;
    while (done < total) {
      ssize_t put = do_pwritev(fd, iov.data() + iov_at,
                               static_cast<int>(iov.size() - iov_at),
                               offset + static_cast<off_t>(done));
      if (put < 0) {
        if (errno == EINTR) continue;  // interrupted, nothing transferred
        throw_errno("pwritev");
      }
      // put == 0 is not an errno failure — the old `throw_errno("pwritev")`
      // here reported stale errno from some earlier syscall.
      if (put == 0)
        throw ShortWriteError(
            "pwritev accepted 0 bytes (device full or quota?)");
      done += static_cast<std::size_t>(put);
      while (iov_at < iov.size() && iov[iov_at].iov_len <= static_cast<std::size_t>(put)) {
        put -= static_cast<ssize_t>(iov[iov_at].iov_len);
        ++iov_at;
      }
      if (iov_at < iov.size() && put > 0) {
        iov[iov_at].iov_base = static_cast<char*>(iov[iov_at].iov_base) + put;
        iov[iov_at].iov_len -= static_cast<std::size_t>(put);
      }
    }
    i = j;
  }
}

void FileBackend::erase_range(std::uint32_t first_disk,
                              std::uint32_t num_disks, std::uint64_t base,
                              std::uint64_t count) {
  // Checked arithmetic, mirroring MemoryBackend: the unclamped
  // `first_disk + num_disks` / `base + count` bounds wrapped and turned the
  // discard into a no-op. Clamp the block range to EOF first so the byte
  // extent `n * block_bytes_` provably cannot overflow.
  std::uint64_t end_disk = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(first_disk) + num_disks, fds_.size());
  for (std::uint64_t d = first_disk; d < end_disk; ++d) {
    struct stat st{};
    if (::fstat(fds_[d], &st) != 0) throw_errno("fstat");
    std::uint64_t eof_blocks =
        (static_cast<std::uint64_t>(st.st_size) + block_bytes_ - 1) /
        block_bytes_;
    if (base >= eof_blocks) continue;  // beyond EOF: already zero
    std::uint64_t n = std::min(count, eof_blocks - base);
#ifdef FALLOC_FL_PUNCH_HOLE
    if (punch_hole_) {
      // One hole-punch per disk instead of one zero-write per block; the
      // punched extent reads back as zeros (fresh-disk semantics) and the
      // file size is kept so blocks_in_use stays the same approximation the
      // zero-write path produces.
      if (::fallocate(fds_[d], FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                      static_cast<off_t>(base * block_bytes_),
                      static_cast<off_t>(n * block_bytes_)) == 0)
        continue;
      // EOPNOTSUPP & friends: fall through to the portable zero-write loop.
    }
#endif
    Block zero(block_bytes_, std::byte{0});
    for (std::uint64_t b = base; b < base + n; ++b)
      store({static_cast<std::uint32_t>(d), b}, zero);
  }
}

std::uint64_t FileBackend::blocks_in_use() const {
  // Approximation from file sizes: blocks within [0, EOF). Holes in sparse
  // files are counted — acceptable for space reporting on this backend.
  std::uint64_t total = 0;
  for (int fd : fds_) {
    struct stat st{};
    if (::fstat(fd, &st) != 0) throw_errno("fstat");
    total += static_cast<std::uint64_t>(st.st_size + block_bytes_ - 1) /
             block_bytes_;
  }
  return total;
}

}  // namespace pddict::pdm
