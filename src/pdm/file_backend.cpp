#include "pdm/file_backend.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace pddict::pdm {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

FileBackend::FileBackend(const Geometry& geom, const std::string& directory)
    : block_bytes_(geom.block_bytes()) {
  fds_.reserve(geom.num_disks);
  for (std::uint32_t d = 0; d < geom.num_disks; ++d) {
    std::string path = directory + "/disk_" + std::to_string(d) + ".bin";
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) throw_errno("opening " + path);
    fds_.push_back(fd);
  }
}

FileBackend::~FileBackend() {
  for (int fd : fds_)
    if (fd >= 0) ::close(fd);
}

Block FileBackend::load(const BlockAddr& addr) {
  Block block(block_bytes_, std::byte{0});
  off_t offset = static_cast<off_t>(addr.block) *
                 static_cast<off_t>(block_bytes_);
  ssize_t got = ::pread(fds_[addr.disk], block.data(), block_bytes_, offset);
  if (got < 0) throw_errno("pread");
  // Short reads (past EOF) leave the zero tail in place — fresh-disk
  // semantics.
  return block;
}

void FileBackend::store(const BlockAddr& addr, const Block& block) {
  off_t offset = static_cast<off_t>(addr.block) *
                 static_cast<off_t>(block_bytes_);
  ssize_t put = ::pwrite(fds_[addr.disk], block.data(), block.size(), offset);
  if (put < 0 || static_cast<std::size_t>(put) != block.size())
    throw_errno("pwrite");
}

void FileBackend::erase_range(std::uint32_t first_disk,
                              std::uint32_t num_disks, std::uint64_t base,
                              std::uint64_t count) {
  Block zero(block_bytes_, std::byte{0});
  // Checked arithmetic, mirroring MemoryBackend: the unclamped
  // `first_disk + num_disks` / `base + count` bounds wrapped and turned the
  // discard into a no-op. Clamp the block range to EOF first so the loop
  // bound `base + n` provably cannot overflow.
  std::uint64_t end_disk = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(first_disk) + num_disks, fds_.size());
  for (std::uint64_t d = first_disk; d < end_disk; ++d) {
    struct stat st{};
    if (::fstat(fds_[d], &st) != 0) throw_errno("fstat");
    std::uint64_t eof_blocks =
        (static_cast<std::uint64_t>(st.st_size) + block_bytes_ - 1) /
        block_bytes_;
    if (base >= eof_blocks) continue;  // beyond EOF: already zero
    std::uint64_t n = std::min(count, eof_blocks - base);
    for (std::uint64_t b = base; b < base + n; ++b)
      store({static_cast<std::uint32_t>(d), b}, zero);
  }
}

std::uint64_t FileBackend::blocks_in_use() const {
  // Approximation from file sizes: blocks within [0, EOF). Holes in sparse
  // files are counted — acceptable for space reporting on this backend.
  std::uint64_t total = 0;
  for (int fd : fds_) {
    struct stat st{};
    if (::fstat(fd, &st) != 0) throw_errno("fstat");
    total += static_cast<std::uint64_t>(st.st_size + block_bytes_ - 1) /
             block_bytes_;
  }
  return total;
}

}  // namespace pddict::pdm
