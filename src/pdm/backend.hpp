// Storage backends for the simulated disk array.
//
// The I/O *accounting* (parallel rounds) lives in DiskArray and is identical
// for every backend; the backend only decides where block bytes live:
//   * MemoryBackend — sparse in-memory maps (default; tests and benchmarks)
//   * FileBackend   — one sparse file per simulated disk (file_backend.hpp),
//     which makes structures persistent across processes: the deterministic
//     dictionaries reconstruct from their parameters + seeds, so reopening
//     the same geometry on the same directory restores the store.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "pdm/block.hpp"
#include "pdm/geometry.hpp"

namespace pddict::pdm {

/// One block transfer of a batched backend call. The executor (io_executor)
/// hands each disk worker a span of these; `out` / `block` point into
/// caller-owned storage that stays alive for the duration of the call.
struct BlockRead {
  BlockAddr addr;
  Block* out;
};

struct BlockWrite {
  BlockAddr addr;
  const Block* block;
};

class BlockBackend {
 public:
  virtual ~BlockBackend() = default;

  /// Read a block; blocks never written read back as all-zero.
  virtual Block load(const BlockAddr& addr) = 0;
  virtual void store(const BlockAddr& addr, const Block& block) = 0;

  // ---- batched transfers (the executor's entry points) ----
  //
  // Contract shared by both directions:
  //   * Addresses within one call are DISTINCT (DiskArray dedups first, so a
  //     backend may reorder the span in place — FileBackend sorts it to merge
  //     contiguous blocks into single preadv/pwritev calls).
  //   * Concurrent batched calls are only ever issued for DISJOINT disks (the
  //     per-disk worker engine guarantees this), so a backend is safe iff its
  //     per-disk state is independent — true for MemoryBackend's per-disk
  //     maps and FileBackend's per-disk fds.
  // The default implementations loop over the virtual single-block hooks, so
  // existing backends keep working unmodified.

  virtual void load_batch(std::span<BlockRead> reads) {
    for (BlockRead& r : reads) *r.out = load(r.addr);
  }

  virtual void store_batch(std::span<BlockWrite> writes) {
    for (const BlockWrite& w : writes) store(w.addr, *w.block);
  }

  /// Release blocks [base, base+count) on the given disks (read as zero
  /// afterwards).
  virtual void erase_range(std::uint32_t first_disk, std::uint32_t num_disks,
                           std::uint64_t base, std::uint64_t count) = 0;
  /// Distinct blocks currently written (space accounting).
  virtual std::uint64_t blocks_in_use() const = 0;
};

class MemoryBackend final : public BlockBackend {
 public:
  explicit MemoryBackend(const Geometry& geom)
      : block_bytes_(geom.block_bytes()), disks_(geom.num_disks) {}

  Block load(const BlockAddr& addr) override {
    const auto& disk = disks_[addr.disk];
    auto it = disk.find(addr.block);
    return it == disk.end() ? Block(block_bytes_, std::byte{0}) : it->second;
  }

  void store(const BlockAddr& addr, const Block& block) override {
    disks_[addr.disk][addr.block] = block;
  }

  // Batched forms walk the per-disk sharded maps directly: one virtual call
  // per disk run instead of one per block, and no temporary Block per load.
  // Disjoint-disk concurrency is safe because each disk owns its own map.
  void load_batch(std::span<BlockRead> reads) override {
    for (BlockRead& r : reads) {
      const auto& disk = disks_[r.addr.disk];
      auto it = disk.find(r.addr.block);
      if (it == disk.end())
        r.out->assign(block_bytes_, std::byte{0});
      else
        *r.out = it->second;
    }
  }

  void store_batch(std::span<BlockWrite> writes) override {
    for (const BlockWrite& w : writes)
      disks_[w.addr.disk][w.addr.block] = *w.block;
  }

  void erase_range(std::uint32_t first_disk, std::uint32_t num_disks,
                   std::uint64_t base, std::uint64_t count) override {
    // Checked arithmetic: `first_disk + num_disks` can wrap uint32_t and
    // `base + count` can wrap uint64_t, and the old upper-bound comparisons
    // then made the whole discard a silent no-op. Widen the disk bound and
    // test block membership subtractively (wrap-free); iterating the sparse
    // map keeps a huge `count` at O(blocks in use), not O(count).
    std::uint64_t end_disk = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(first_disk) + num_disks, disks_.size());
    for (std::uint64_t d = first_disk; d < end_disk; ++d) {
      auto& disk = disks_[static_cast<std::size_t>(d)];
      for (auto it = disk.begin(); it != disk.end();) {
        if (it->first >= base && it->first - base < count)
          it = disk.erase(it);
        else
          ++it;
      }
    }
  }

  std::uint64_t blocks_in_use() const override {
    std::uint64_t total = 0;
    for (const auto& disk : disks_) total += disk.size();
    return total;
  }

 private:
  std::size_t block_bytes_;
  std::vector<std::unordered_map<std::uint64_t, Block>> disks_;
};

}  // namespace pddict::pdm
