// Storage backends for the simulated disk array.
//
// The I/O *accounting* (parallel rounds) lives in DiskArray and is identical
// for every backend; the backend only decides where block bytes live:
//   * MemoryBackend — sparse in-memory maps (default; tests and benchmarks)
//   * FileBackend   — one sparse file per simulated disk (file_backend.hpp),
//     which makes structures persistent across processes: the deterministic
//     dictionaries reconstruct from their parameters + seeds, so reopening
//     the same geometry on the same directory restores the store.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pdm/block.hpp"
#include "pdm/geometry.hpp"

namespace pddict::pdm {

class BlockBackend {
 public:
  virtual ~BlockBackend() = default;

  /// Read a block; blocks never written read back as all-zero.
  virtual Block load(const BlockAddr& addr) = 0;
  virtual void store(const BlockAddr& addr, const Block& block) = 0;
  /// Release blocks [base, base+count) on the given disks (read as zero
  /// afterwards).
  virtual void erase_range(std::uint32_t first_disk, std::uint32_t num_disks,
                           std::uint64_t base, std::uint64_t count) = 0;
  /// Distinct blocks currently written (space accounting).
  virtual std::uint64_t blocks_in_use() const = 0;
};

class MemoryBackend final : public BlockBackend {
 public:
  explicit MemoryBackend(const Geometry& geom)
      : block_bytes_(geom.block_bytes()), disks_(geom.num_disks) {}

  Block load(const BlockAddr& addr) override {
    const auto& disk = disks_[addr.disk];
    auto it = disk.find(addr.block);
    return it == disk.end() ? Block(block_bytes_, std::byte{0}) : it->second;
  }

  void store(const BlockAddr& addr, const Block& block) override {
    disks_[addr.disk][addr.block] = block;
  }

  void erase_range(std::uint32_t first_disk, std::uint32_t num_disks,
                   std::uint64_t base, std::uint64_t count) override {
    // Checked arithmetic: `first_disk + num_disks` can wrap uint32_t and
    // `base + count` can wrap uint64_t, and the old upper-bound comparisons
    // then made the whole discard a silent no-op. Widen the disk bound and
    // test block membership subtractively (wrap-free); iterating the sparse
    // map keeps a huge `count` at O(blocks in use), not O(count).
    std::uint64_t end_disk = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(first_disk) + num_disks, disks_.size());
    for (std::uint64_t d = first_disk; d < end_disk; ++d) {
      auto& disk = disks_[static_cast<std::size_t>(d)];
      for (auto it = disk.begin(); it != disk.end();) {
        if (it->first >= base && it->first - base < count)
          it = disk.erase(it);
        else
          ++it;
      }
    }
  }

  std::uint64_t blocks_in_use() const override {
    std::uint64_t total = 0;
    for (const auto& disk : disks_) total += disk.size();
    return total;
  }

 private:
  std::size_t block_bytes_;
  std::vector<std::unordered_map<std::uint64_t, Block>> disks_;
};

}  // namespace pddict::pdm
